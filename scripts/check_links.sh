#!/usr/bin/env bash
# Markdown link checker for the user-facing documentation set
# (README.md, ROADMAP.md, docs/*.md): every *relative* link must resolve
# to an existing file or directory, dead links fail the build. External
# (http/https/mailto) and pure-anchor links are not checked.
#
#   scripts/check_links.sh [REPO_ROOT]
#
# Wired into CI (.github/workflows/ci.yml, docs-links job) and into
# CTest as `docs.links`, so a dead link fails tier-1 locally too.
set -euo pipefail

ROOT="${1:-.}"
fail=0
checked=0

files=("$ROOT/README.md" "$ROOT/ROADMAP.md")
if [[ -d "$ROOT/docs" ]]; then
  while IFS= read -r f; do files+=("$f"); done \
    < <(find "$ROOT/docs" -name '*.md' | sort)
fi

for f in "${files[@]}"; do
  if [[ ! -f "$f" ]]; then
    echo "check_links: missing documentation file: $f" >&2
    fail=1
    continue
  fi
  dir=$(dirname "$f")
  # Every "](target)" occurrence, inline links and images alike.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"   # drop any #anchor suffix
    [[ -z "$path" ]] && continue
    checked=$((checked + 1))
    if [[ ! -e "$dir/$path" ]]; then
      echo "check_links: dead link in $f -> ($target)" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [[ "$fail" -ne 0 ]]; then
  echo "check_links: FAILED" >&2
  exit 1
fi
echo "check_links: OK ($checked relative links across ${#files[@]} files)"
