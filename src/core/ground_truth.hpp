// Exact (omniscient) top-k computation used for validation and for the
// offline-optimal algorithm. Ordering is by value descending with ties
// broken toward the smaller node id — the same total order every protocol
// in this library uses, so strict identity checks are meaningful.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/cluster.hpp"
#include "util/types.hpp"

namespace topkmon {

/// Ids of the k largest values, ordered by rank (best first).
std::vector<NodeId> true_topk_ordered(std::span<const Value> values,
                                      std::size_t k);

/// Ids of the k largest values, sorted by id (canonical set representation
/// for set-equality checks).
std::vector<NodeId> true_topk_set(std::span<const Value> values,
                                  std::size_t k);

/// Convenience overloads reading current values from a cluster.
std::vector<NodeId> true_topk_ordered(const Cluster& cluster, std::size_t k);
std::vector<NodeId> true_topk_set(const Cluster& cluster, std::size_t k);

/// The j-th largest value (j is 1-based; j <= n). Copies into a reusable
/// per-thread scratch buffer (no steady-state allocation).
Value nth_value(std::span<const Value> values, std::size_t j);

/// Allocation-free variant for callers that own a mutable buffer: selects
/// via std::nth_element directly on `values` (partially reordering it)
/// and returns the j-th largest.
Value nth_value_inplace(std::span<Value> values, std::size_t j);

/// Weak validity: `candidate` (any order) is *a* correct top-k answer iff
/// every member's value >= every non-member's value. Under pairwise
/// distinct values this is equivalent to set equality with the ground
/// truth; under ties any tie-break is accepted.
bool is_valid_topk(std::span<const Value> values,
                   std::span<const NodeId> candidate);

bool is_valid_topk(const Cluster& cluster, std::span<const NodeId> candidate);

/// ε-relaxed validity: `candidate` is an acceptable ε-approximate top-k
/// answer iff every member's value >= every non-member's value − eps
/// (eps = 0 recovers exact validity). This is the guarantee the
/// ApproxTopkMonitor trades message volume against.
bool is_valid_topk_eps(std::span<const Value> values,
                       std::span<const NodeId> candidate, Value eps);

bool is_valid_topk_eps(const Cluster& cluster,
                       std::span<const NodeId> candidate, Value eps);

/// The largest exactness violation of `candidate`: max over (i in set,
/// j outside) of v_j − v_i, clamped below at 0. Zero iff the answer is an
/// exact valid top-k; an ε-approximate monitor keeps this <= ε ("regret").
Value topk_regret(std::span<const Value> values,
                  std::span<const NodeId> candidate);

}  // namespace topkmon
