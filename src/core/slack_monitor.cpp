#include "core/slack_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topkmon {

SlackMonitor::SlackMonitor(std::size_t k) : SlackMonitor(k, Options{}) {}

SlackMonitor::SlackMonitor(std::size_t k, Options opts) : k_(k), opts_(opts) {
  if (k == 0) throw std::invalid_argument("SlackMonitor: k must be >= 1");
  if (!(opts.alpha > 0.0 && opts.alpha < 1.0)) {
    throw std::invalid_argument("SlackMonitor: alpha must be in (0, 1)");
  }
}

void SlackMonitor::initialize(Cluster& cluster) {
  const std::size_t n = cluster.size();
  if (k_ > n) throw std::invalid_argument("SlackMonitor: k > n");
  filters_.assign(n, Filter{});
  in_topk_.assign(n, 0);
  degenerate_ = (k_ == n);
  if (degenerate_) {
    std::fill(in_topk_.begin(), in_topk_.end(), char{1});
    rebuild_id_lists();
    return;
  }
  reset(cluster);
}

const std::vector<std::pair<NodeId, Value>>& SlackMonitor::poll(
    Cluster& cluster, const std::vector<NodeId>& side) {
  Network& net = cluster.net();
  Message shout;
  shout.kind = MsgKind::kProtocolStart;
  net.coord_broadcast(shout);
  for (const NodeId id : side) {
    net.drain_node(id, mail_);
    Message report;
    report.kind = MsgKind::kValueReport;
    report.a = cluster.value(id);
    net.node_send(id, report);
  }
  mstats_.polls += side.size();
  poll_out_.clear();
  net.drain_coordinator(mail_);
  for (const Message& m : mail_) {
    if (m.kind != MsgKind::kValueReport) continue;
    poll_out_.emplace_back(m.from, m.a);
  }
  return poll_out_;
}

void SlackMonitor::step(Cluster& cluster, TimeStep) {
  if (degenerate_) return;
  const std::size_t n = cluster.size();

  std::vector<NodeId>& viol_top = viol_top_;
  std::vector<NodeId>& viol_bot = viol_bot_;
  viol_top.clear();
  viol_bot.clear();
  for (NodeId id = 0; id < n; ++id) {
    if (filters_[id].contains(cluster.value(id))) continue;
    (in_topk_[id] ? viol_top : viol_bot).push_back(id);
  }
  if (viol_top.empty() && viol_bot.empty()) return;

  ++mstats_.violation_steps;
  mstats_.violations += viol_top.size() + viol_bot.size();
  top_violations_ += viol_top.size();
  bot_violations_ += viol_bot.size();

  Network& net = cluster.net();
  // B&O-style: every violator reports its fresh value directly.
  for (const NodeId id : viol_top) {
    Message m;
    m.kind = MsgKind::kViolation;
    m.a = cluster.value(id);
    m.b = -1;
    net.node_send(id, m);
  }
  for (const NodeId id : viol_bot) {
    Message m;
    m.kind = MsgKind::kViolation;
    m.a = cluster.value(id);
    m.b = +1;
    net.node_send(id, m);
  }
  Value viol_min = kPlusInf;   // min over violating top-k values
  Value viol_max = kMinusInf;  // max over violating outsider values
  net.drain_coordinator(mail_);
  for (const Message& m : mail_) {
    if (m.kind != MsgKind::kViolation) continue;
    if (m.b < 0) viol_min = std::min(viol_min, m.a);
    else viol_max = std::max(viol_max, m.a);
  }

  ++mstats_.handler_calls;
  // Resolution: poll the side whose extremum the violations did not
  // deliver (same information requirement as Algorithm 1's handler, but
  // satisfied by a full-side poll).
  std::optional<Value> min_v;
  std::optional<Value> max_v;
  if (!viol_top.empty()) min_v = viol_min;
  if (!viol_bot.empty()) max_v = viol_max;
  if (!max_v.has_value()) {
    Value best = kMinusInf;
    for (const auto& [id, v] : poll(cluster, rest_list_)) {
      best = std::max(best, v);
    }
    max_v = best;
  } else {
    Value best = kPlusInf;
    for (const auto& [id, v] : poll(cluster, topk_list_)) {
      best = std::min(best, v);
    }
    min_v = best;
  }

  tplus_ = std::min(tplus_, *min_v);
  tminus_ = std::max(tminus_, *max_v);

  if (tplus_ < tminus_) {
    reset(cluster);
  } else {
    ++mstats_.midpoint_updates;
    const double a = effective_alpha();
    const auto gap = static_cast<double>(tplus_ - tminus_);
    Value b = tminus_ + static_cast<Value>(std::floor(a * gap));
    b = std::clamp(b, tminus_, tplus_);
    apply_boundary(cluster, b);
  }
}

double SlackMonitor::effective_alpha() const noexcept {
  if (!opts_.adaptive) return opts_.alpha;
  // Give more head-room to the side violating more often: frequent
  // outsider (rising) violations push the boundary up, and vice versa.
  const double bot = static_cast<double>(bot_violations_) + 1.0;
  const double top = static_cast<double>(top_violations_) + 1.0;
  return bot / (bot + top);
}

void SlackMonitor::reset(Cluster& cluster) {
  ++mstats_.filter_resets;
  // Poll everyone (B&O's resolution ultimately touches all participating
  // nodes), rank locally, place the boundary inside the (v_k, v_{k+1}) gap.
  const auto& all = poll(cluster, cluster.all_ids());
  std::vector<std::pair<Value, NodeId>> order;
  order.reserve(all.size());
  for (const auto& [id, v] : all) order.emplace_back(v, id);
  std::sort(order.begin(), order.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });

  std::fill(in_topk_.begin(), in_topk_.end(), char{0});
  for (std::size_t i = 0; i < k_; ++i) in_topk_[order[i].second] = 1;
  rebuild_id_lists();

  tplus_ = order[k_ - 1].first;
  tminus_ = order[k_].first;
  top_violations_ = 0;
  bot_violations_ = 0;

  const double a = effective_alpha();
  const auto gap = static_cast<double>(tplus_ - tminus_);
  Value b = tminus_ + static_cast<Value>(std::floor(a * gap));
  b = std::clamp(b, tminus_, tplus_);
  apply_boundary(cluster, b);
}

void SlackMonitor::apply_boundary(Cluster& cluster, Value b) {
  bound_ = b;
  Message update;
  update.kind = MsgKind::kFilterUpdate;
  update.a = b;
  cluster.net().coord_broadcast(update);
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    filters_[i] = in_topk_[i] ? Filter{b, kPlusInf} : Filter{kMinusInf, b};
  }
}

void SlackMonitor::rebuild_id_lists() {
  topk_ids_.clear();
  topk_list_.clear();
  rest_list_.clear();
  for (NodeId id = 0; id < in_topk_.size(); ++id) {
    if (in_topk_[id]) {
      topk_ids_.push_back(id);
      topk_list_.push_back(id);
    } else {
      rest_list_.push_back(id);
    }
  }
}

}  // namespace topkmon
