// Bridges a legacy lock-step MonitorBase into the role-separated API.
//
// The wrapped monitor owns both roles' state and drives the network to
// quiescence synchronously inside step(); the adapter therefore runs it in
// on_step_begin and contributes inert node algos. This only makes sense
// under the instant NetworkSpec — the scenario runner rejects adapter-
// backed monitors on any other policy — but it lets every monitor in the
// registry participate in Scenario-driven experiments today while native
// ports land one by one (Algorithm 1 and the naive baseline are native;
// see core/filter_roles.hpp, core/naive_roles.hpp).
#pragma once

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/monitor.hpp"
#include "core/roles.hpp"

namespace topkmon {

/// Placeholder node algorithm: the wrapped MonitorBase already simulates
/// the node side internally, so per-node observes are no-ops and the node
/// opts out of the sparse driver's observe set entirely.
class LockstepNode final : public NodeAlgo {
 public:
  void on_init(NodeCtx& ctx, Value) override { ctx.set_needs_observe(false); }
};

class LockstepAdapter final : public CoordinatorAlgo {
 public:
  /// `cluster` must be the cluster the SimDriver runs on (the wrapped
  /// monitor needs full access — that is exactly what makes it lock-step).
  LockstepAdapter(std::unique_ptr<MonitorBase> monitor, Cluster& cluster)
      : monitor_(std::move(monitor)), cluster_(cluster) {
    if (!monitor_) {
      throw std::invalid_argument("LockstepAdapter: null monitor");
    }
    if (!cluster_.net().spec().is_instant()) {
      throw std::invalid_argument(
          "LockstepAdapter: lock-step monitors require the instant "
          "NetworkSpec; use a native role implementation for delay/drop "
          "scenarios");
    }
  }

  std::string_view name() const override { return monitor_->name(); }

  void on_init(CoordCtx&) override { monitor_->initialize(cluster_); }

  void on_step_begin(CoordCtx&, TimeStep t) override {
    monitor_->step(cluster_, t);
  }

  const std::vector<NodeId>& topk() const override { return monitor_->topk(); }

  const MonitorStats& monitor_stats() const noexcept override {
    return monitor_->monitor_stats();
  }

  /// The wrapped implementation (validation introspection, e.g. the
  /// ordered monitor's rank order).
  const MonitorBase* lockstep() const noexcept { return monitor_.get(); }

 private:
  std::unique_ptr<MonitorBase> monitor_;
  Cluster& cluster_;
};

}  // namespace topkmon
