// Native role-separated implementation of the paper's Algorithm 1 (the
// randomized filter-based Top-k-Position monitor) with Algorithm 2 (the
// randomized extremum protocol) embedded as event-driven sessions.
//
// This is the same algorithm as core/topk_monitor.hpp, restructured into
// the coordinator/node split of core/roles.hpp so it runs on *any*
// NetworkSpec: under the instant policy it is message-for-message and
// coin-flip-for-coin-flip identical to the lock-step TopkFilterMonitor
// (asserted by tests/core/test_role_equivalence.cpp); under delay, jitter,
// drop or tick-budget policies it degrades gracefully — stale beacons
// weaken round pruning (more reports), lost filter updates or winner
// announcements desynchronize node state until the next violation repairs
// it, and the validation layer records the resulting error steps.
//
// Division of state, mirroring a real deployment:
//  * FilterNode owns the node's filter interval, its top-k membership
//    belief, and its per-session protocol state (round counter, beacon
//    view, activation). All of it is updated exclusively from local
//    observations and received (control) broadcasts.
//  * FilterCoordinator owns the violation-cycle state machine
//    (violation sessions -> missing-side session -> midpoint/reset), the
//    T+/T- accumulators and the answer set.
//
// The uncharged control plane carries exactly the synchronization the
// lock-step model grants for free: "your side's protocol execution starts
// now, epoch e, bound log N" and "a reset selection begins". Everything
// that the paper charges — reports, beacons, winner announcements, filter
// updates, protocol-start broadcasts — flows through the Network.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/filter.hpp"
#include "core/roles.hpp"
#include "protocols/extremum.hpp"

namespace topkmon {

/// Control opcodes of the filter monitor's control plane.
enum class FilterControlOp : std::int64_t {
  /// a = direction (0 = max, 1 = min), b = participant group
  /// (FilterSessionGroup), c = (epoch << 8) | log_n.
  kStartSession = 1,
  /// A FILTERRESET selection begins: clear membership/exclusion state.
  /// No payload — each node derives membership from the announce order
  /// and its deployed k.
  kStartSelection = 2,
};

/// Who participates in a protocol session (each node decides locally).
enum class FilterSessionGroup : std::int64_t {
  kViolTop = 0,    ///< nodes holding an unconsumed top-side violation
  kViolBot = 1,    ///< nodes holding an unconsumed bottom-side violation
  kAllTop = 2,     ///< nodes believing they are top-k members
  kAllBot = 3,     ///< nodes believing they are outsiders
  kSelectRest = 4, ///< selection participants not yet announced as winners
};

/// Node-side half of Algorithm 1. With a non-zero epsilon the node runs
/// the ε-approximate variant (core/approx_monitor.hpp): every boundary it
/// installs is widened by ε/2 on its own side, so values within ε/2 of
/// the boundary never violate. ε is a deployment constant — every node
/// and the coordinator are configured with the same value.
class FilterNode final : public NodeAlgo {
 public:
  explicit FilterNode(std::size_t k, Value epsilon = 0)
      : k_(k), half_(epsilon / 2) {}

  void on_init(NodeCtx& ctx, Value v0) override;
  void on_observe(NodeCtx& ctx, Value v, TimeStep t) override;
  void on_message(NodeCtx& ctx, const Message& m) override;
  void on_control(NodeCtx& ctx, const Control& c) override;
  void on_timer(NodeCtx& ctx) override;
  void on_recover(NodeCtx& ctx) override;

  // -- introspection for tests ---------------------------------------------
  const Filter& filter() const noexcept { return filter_; }
  bool member() const noexcept { return member_; }

 private:
  /// Filter for boundary m under the node's membership belief: members
  /// watch [m - ε/2, +inf], outsiders (-inf, m + ε/2] (ε = 0 exact).
  Filter boundary_filter(Value m, bool member) const noexcept {
    return member ? Filter{m - half_, kPlusInf} : Filter{kMinusInf, m + half_};
  }

  std::size_t k_;
  Value half_;  ///< ε/2 (0 in the exact deployment)

  // Persistent node state (what a deployed node stores).
  Filter filter_{};       ///< [-inf, +inf] until the first boundary arrives
  bool member_ = false;   ///< top-k membership belief

  // Violation pending consumption by the next matching session.
  enum class Pending : std::uint8_t { kNone, kTop, kBot };
  Pending pending_ = Pending::kNone;

  // Current protocol session (valid while in_session_).
  bool in_session_ = false;
  bool active_ = false;
  Direction dir_ = Direction::kMax;
  std::uint32_t epoch_ = 0;
  std::uint32_t log_n_ = 0;
  std::uint32_t round_ = 0;
  bool has_beacon_ = false;
  Value beacon_value_ = 0;
  NodeId beacon_holder_ = kNoHolder;

  // Reset-selection bookkeeping.
  bool selecting_ = false;
  bool excluded_ = false;
  std::uint32_t announces_seen_ = 0;
};

/// Coordinator-side half of Algorithm 1.
class FilterCoordinator final : public CoordinatorAlgo {
 public:
  struct Options {
    /// Forwarded to every protocol session (beacon-suppression ablation).
    bool suppress_idle_broadcasts = false;
    /// Sharded-deployment mode (core/shard_coordinator.hpp). When set, the
    /// coordinator runs one shard of a hierarchical deployment: whenever
    /// the accumulated [T-, T+] gap contains the root's shared boundary
    /// (*pinned_boundary, once engaged), the coordinator anchors the node
    /// filters on it instead of halving the gap — Algorithm 1 admits any
    /// boundary inside the gap — so "boundary() != pin" becomes the exact
    /// shard-crossed-the-root-filter predicate. Sharded mode also lifts
    /// the k >= 1 requirement (a shard's quota may be renegotiated to 0)
    /// and runs the full machinery at k == n (a full shard must still
    /// watch its minimum against the root boundary). The pointee may be
    /// updated between steps; nullptr selects the monolithic behaviour,
    /// which is message-for-message identical to pre-sharding builds.
    const std::optional<Value>* pinned_boundary = nullptr;
    /// Exponential backoff for the defensive full rebuild in
    /// on_step_begin. Without it, a FILTERRESET that keeps aborting under
    /// heavy loss (drop > 0.5) is re-attempted every observation step —
    /// each attempt a full k+1-selection's worth of traffic. With backoff
    /// the retry waits 0, 1, 3, 7, ... steps (capped at 63) plus a small
    /// deterministic jitter drawn from the coordinator's seeded RNG, and
    /// the wait resets once an answer is established. Off by default:
    /// enabling it changes message traces, so lossy fingerprints (e15)
    /// only match historical ones with the flag off.
    bool reset_backoff = false;
    /// Suspicion state machine for adversarially degraded nodes
    /// (sim/fault_plan.hpp lag/stale/mute). The coordinator gets no
    /// failure-detector event for a degradation — it must *infer* it:
    ///  * silence — a node that signals a violation but whose charged
    ///    reports never arrive (mute, or lagging beyond the session
    ///    window) accumulates silence strikes; at kSilenceStrikes the
    ///    coordinator suspects it (MonitorStats::suspicions) and probes
    ///    with a tick-driven deadline and capped-backoff resends;
    ///  * contradiction — a node whose fresh signal says its true value
    ///    crossed the boundary while its reports keep landing on the
    ///    other side (stale) accumulates strikes; at kStaleStrikes it is
    ///    quarantined directly (MonitorStats::stale_detections).
    /// A suspect that exhausts kSuspectAttempts probe deadlines is
    /// *quarantined* (MonitorStats::quarantines): its signals and
    /// session reports are ignored, it is removed from the answer (a
    /// structural removal aborts the cycle and re-runs the selection —
    /// the defensive boundary widen), and selection_target() shrinks so
    /// resets stop waiting for it. Quarantined nodes are re-probed with
    /// step-driven capped backoff forever; a probe reply releases the
    /// quarantine and re-admits the node through the re-sync path, so a
    /// healed node converges back to the exact answer. Off by default:
    /// the machinery changes no trace until enabled AND a node actually
    /// degrades. Tuned for instant/delayed networks; under heavy drop
    /// the strike thresholds absorb most — not all — false positives.
    bool suspect = false;
    /// Warm-standby recovery: when a node recovers (or joins) while the
    /// answer is established and no cycle is in flight, replay the
    /// coordinator's collapsed assignment log — the node's membership
    /// and the current boundary — as one kFilterAssign instead of the
    /// probe/reply/assign handshake (MonitorStats::assign_replays).
    /// Cuts the re-sync probe storm on join-heavy churn plans; falls
    /// back to the handshake whenever the answer is not established or
    /// a cycle is running. Off by default (changes e19 traces).
    bool replay = false;
    /// ε-approximate mode (core/approx_monitor.hpp): the answer only has
    /// to be correct for value vectors perturbed by at most ε/2 per node.
    /// The coordinator tolerates a T+/T- inversion up to 2·⌊ε/2⌋ before
    /// resetting, stamps ε into every kFilterUpdate (payload b), and
    /// classifies re-sync replies against the ε/2-widened outsider
    /// filter. The paired FilterNode must be constructed with the same ε.
    /// With approx set, name() reports "approx_topk"; ε = 0 is the exact
    /// special case and produces byte-identical traces to topk_filter.
    bool approx = false;
    Value epsilon = 0;
  };

  explicit FilterCoordinator(std::size_t k) : FilterCoordinator(k, {}) {}
  FilterCoordinator(std::size_t k, Options opts);

  std::string_view name() const override {
    return opts_.approx ? "approx_topk" : "topk_filter";
  }
  void on_init(CoordCtx& ctx) override;
  void on_step_begin(CoordCtx& ctx, TimeStep t) override;
  void on_message(CoordCtx& ctx, const Message& m) override;
  void on_timer(CoordCtx& ctx) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  // -- fault hooks (sim/fault_plan.hpp) -------------------------------------
  // Crash: the node is dropped from the answer; if it was a member (or a
  // selection winner of an in-flight FILTERRESET) the k-th position must
  // be re-found, so the cycle aborts and a fresh selection runs over the
  // remaining live nodes. Recovery: a re-sync handshake — the coordinator
  // probes the node (kProbe), the node replies with its current value
  // (kValueReport, b = 1), and the coordinator re-admits it as an
  // outsider anchored on the established boundary (kFilterAssign),
  // treating a boundary-violating reply as a fresh bottom-side violation.
  // Probes lost to the network are resent from the coordinator timer with
  // capped exponential backoff (MonitorStats::resync_retries).
  void on_node_down(CoordCtx& ctx, NodeId id) override;
  void on_node_up(CoordCtx& ctx, NodeId id) override;
  /// Dynamic k: warm renegotiation — membership is recomputed by one
  /// FILTERRESET selection at the new k over current values; node
  /// machine state and the T+/T- accumulation epoch restart, nothing
  /// else is torn down.
  void on_set_k(CoordCtx& ctx, std::size_t k) override;

  /// Sharded-deployment hook: re-anchors the node filters on the current
  /// pinned boundary (Options::pinned_boundary) when it moved since the
  /// last cycle. Adopts the pin in place (one kFilterUpdate broadcast)
  /// when the accumulated gap contains it; otherwise falls back to a full
  /// FILTERRESET. No-op while a cycle is in flight, when unpinned, or when
  /// the boundary already equals the pin. The caller must pump the driver
  /// afterwards to flush the injected traffic.
  void reanchor(CoordCtx& ctx);

  // -- introspection for tests ---------------------------------------------
  Value boundary() const noexcept { return mid_; }
  Value t_plus() const noexcept { return tplus_; }
  Value t_minus() const noexcept { return tminus_; }

 private:
  /// Where the violation cycle currently stands.
  enum class Phase : std::uint8_t {
    kIdle,      ///< no cycle running
    kViolMin,   ///< MINIMUMPROTOCOL(k) over top-side violators
    kViolMax,   ///< MAXIMUMPROTOCOL(n-k) over bottom-side violators
    kFullSide,  ///< handler's run over the whole missing side
    kReset,     ///< FILTERRESET: k+1 repeated selections
  };

  void start_cycle(CoordCtx& ctx);
  void start_session(CoordCtx& ctx, Direction dir, FilterSessionGroup group,
                     std::uint64_t n_upper, bool announce);
  void conclude_session(CoordCtx& ctx);
  void handler_transition(CoordCtx& ctx);
  void decide(CoordCtx& ctx);
  void begin_reset(CoordCtx& ctx);
  void finish_reset(CoordCtx& ctx);
  void apply_boundary(CoordCtx& ctx, Value m);
  void cycle_done(CoordCtx& ctx);
  void abort_cycle();
  /// Decrements re-sync countdowns, resends timed-out probes (capped
  /// exponential backoff), keeps the coordinator timer armed while any
  /// re-sync is pending. No-op with no pending re-sync.
  void tick_resyncs(CoordCtx& ctx);
  /// A kValueReport with b == 1: the probed node's answer. Deferred while
  /// a cycle is in flight (re-integrating mid-session would corrupt it).
  void handle_resync_reply(CoordCtx& ctx, NodeId from, Value v);
  /// Probe round trip plus slack under the deployed network policy.
  std::uint64_t probe_timeout(CoordCtx& ctx) const {
    return 2 * ctx.flush_ticks() + 2;
  }

  // -- suspicion machinery (active only with Options::suspect) --------------
  void send_probe(CoordCtx& ctx, NodeId id);
  /// Puts `id` under suspicion (if not already) and sends the first
  /// deadline-tracked probe.
  void suspect_node(CoordCtx& ctx, NodeId id);
  /// Escalates `id` to quarantine: ignore its signals and reports, drop
  /// it from the answer (structural removals re-run the selection), and
  /// switch its probing to the step-driven release schedule.
  void quarantine_node(CoordCtx& ctx, NodeId id, bool stale);
  /// Tick-driven probe deadlines of pre-quarantine suspects (capped
  /// backoff; kSuspectAttempts lost probes escalate to quarantine).
  void tick_suspects(CoordCtx& ctx);
  /// Step-driven release probes of quarantined nodes (capped backoff).
  void tick_release_probes(CoordCtx& ctx);
  /// A probe reply from a quarantined node: release the quarantine and
  /// re-admit through the established-boundary assignment (deferred
  /// mid-cycle, like a re-sync reply).
  void handle_release_reply(CoordCtx& ctx, NodeId from, Value v);
  /// Signal-vs-report contradiction check (stale detection): a fresh
  /// signal fixes which side of the boundary the node's *true* value is
  /// on; a report landing on the other side is a strike.
  void check_stale_report(CoordCtx& ctx, NodeId from, Value v);
  /// Clears every per-node suspicion trace for `id` (crash, release).
  void clear_suspicion_state(NodeId id);

  /// Boundary for a concluded cycle: the pinned root boundary when the
  /// gap contains it (sharded mode), the gap midpoint otherwise.
  Value choose_boundary() const;
  /// FILTERRESET selection count: k+1 monolithically, capped at the live
  /// non-quarantined node count so a full-quota shard (k == n) selects
  /// everyone exactly once and a selection under churn or quarantine
  /// never waits on a participant that cannot answer.
  std::size_t selection_target() const noexcept {
    return std::min(k_ + 1, n_live_ - std::min(n_quarantined_, n_live_));
  }

  std::size_t k_;
  Options opts_;
  std::size_t n_ = 0;       ///< provisioned node count (incl. not-yet-joined)
  std::size_t n_live_ = 0;  ///< currently-live nodes (== n_ without faults)
  bool degenerate_ = false;  ///< k == n: the answer can never change

  // Answer / membership (coordinator's view).
  std::vector<char> in_topk_;
  std::vector<NodeId> topk_ids_;
  Value tplus_ = 0;
  Value tminus_ = 0;
  Value mid_ = 0;

  // Violations signalled but not yet consumed by a cycle.
  bool pending_top_ = false;
  bool pending_bot_ = false;

  // Current cycle.
  Phase phase_ = Phase::kIdle;
  bool cycle_top_ = false;
  bool cycle_bot_ = false;
  std::optional<Value> min_v_;
  std::optional<Value> max_v_;

  // Current protocol session.
  bool session_active_ = false;
  Direction sdir_ = Direction::kMax;
  std::uint32_t sepoch_ = 0;
  std::uint32_t slog_n_ = 0;
  std::uint32_t sround_ = 0;
  std::uint64_t sflush_ = 0;  ///< post-final-round delay drain (0 on instant)
  bool have_best_ = false;
  bool improved_ = false;
  Value best_value_ = 0;
  NodeId best_holder_ = kNoHolder;
  bool announce_at_end_ = false;

  // Reset selection progress.
  struct Winner {
    NodeId id;
    Value value;
  };
  std::vector<Winner> sel_winners_;
  bool pending_select_ = false;   ///< next iteration waits for announce lag
  std::uint64_t select_gap_ = 0;  ///< remaining inter-iteration gap ticks

  // Pending crash-recovery re-syncs, in recovery order.
  struct Resync {
    NodeId id;
    std::uint64_t countdown;  ///< ticks until the probe is declared lost
    std::uint32_t attempt;    ///< resend count (bounds the backoff shift)
  };
  std::vector<Resync> resync_;

  // Defensive-rebuild backoff (active only with Options::reset_backoff).
  std::uint32_t backoff_wait_ = 0;     ///< steps left before the next retry
  std::uint32_t backoff_attempt_ = 0;  ///< consecutive failed rebuilds

  // Suspicion / quarantine state (allocated only with Options::suspect).
  struct Suspect {
    NodeId id;
    std::uint64_t countdown;  ///< ticks until the suspicion probe is lost
    std::uint32_t attempt;    ///< pre-quarantine probe deadlines missed
    bool quarantined;
    std::uint32_t release_wait;     ///< steps until the next release probe
    std::uint32_t release_attempt;  ///< failed release probes (caps backoff)
  };
  std::vector<Suspect> suspects_;
  std::vector<char> quarantined_;  ///< fast membership test for suspects_
  std::size_t n_quarantined_ = 0;
  std::vector<std::uint32_t> silent_steps_;  ///< signalled-but-silent streak
  std::vector<std::uint8_t> sig_side_;  ///< last signalled side (1 top, 2 bot)
  std::vector<TimeStep> sig_step_;      ///< step of that signal
  std::vector<std::uint8_t> stale_strikes_;
  TimeStep cur_step_ = 0;  ///< step of the last on_step_begin
};

}  // namespace topkmon
