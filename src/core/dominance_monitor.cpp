#include "core/dominance_monitor.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

DominanceMonitor::DominanceMonitor(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("DominanceMonitor: k must be >= 1");
}

Value DominanceMonitor::to_w(NodeId id, Value v) const noexcept {
  // Order-preserving, tie-breaking toward smaller ids; injective per node.
  return v * static_cast<Value>(n_) +
         (static_cast<Value>(n_) - 1 - static_cast<Value>(id));
}

void DominanceMonitor::initialize(Cluster& cluster) {
  n_ = cluster.size();
  if (k_ > n_) throw std::invalid_argument("DominanceMonitor: k > n");
  filters_.assign(n_, Filter{});

  // One shout-echo cycle: every node reports (id, w); the coordinator
  // sorts and assigns the initial midpoint slots by unicast.
  Network& net = cluster.net();
  Message shout;
  shout.kind = MsgKind::kProtocolStart;
  net.coord_broadcast(shout);
  for (NodeId id = 0; id < n_; ++id) {
    net.drain_node(id, mail_);
    Message report;
    report.kind = MsgKind::kValueReport;
    report.a = to_w(id, cluster.value(id));
    net.node_send(id, report);
  }

  std::vector<std::pair<Value, NodeId>> order;  // (w, id)
  net.drain_coordinator(mail_);
  for (const Message& m : mail_) {
    if (m.kind != MsgKind::kValueReport) continue;
    order.emplace_back(m.a, m.from);
  }
  std::sort(order.begin(), order.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });

  slots_.clear();
  slots_.reserve(n_);
  for (std::size_t j = 0; j < order.size(); ++j) {
    Slot s;
    s.owner = order[j].second;
    s.known_w = order[j].first;
    s.hi = (j == 0) ? kPlusInf : midpoint(order[j].first, order[j - 1].first);
    s.lo = (j + 1 == order.size())
               ? kMinusInf
               : midpoint(order[j + 1].first, order[j].first);
    slots_.push_back(s);
    assign_filter(cluster, *s.owner, s.lo, s.hi);
  }
  refresh_topk();
}

void DominanceMonitor::assign_filter(Cluster& cluster, NodeId id, Value lo_w,
                                     Value hi_w) {
  Message assign;
  assign.kind = MsgKind::kFilterAssign;
  assign.a = lo_w;
  assign.b = hi_w;
  cluster.net().coord_unicast(id, assign);
  // Node-side effect of receiving the assignment.
  cluster.net().drain_node(id, mail_);
  filters_[id] = Filter{lo_w, hi_w};
}

std::size_t DominanceMonitor::find_slot(Value w) const {
  // Slots are descending and tile the axis; find the first (highest) slot
  // whose lower bound is <= w.
  std::size_t lo = 0;
  std::size_t hi = slots_.size();  // search in [lo, hi)
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (slots_[mid].lo <= w) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == slots_.size()) {
    throw std::logic_error("DominanceMonitor: slot tiling broken");
  }
  return lo;
}

void DominanceMonitor::step(Cluster& cluster, TimeStep) {
  // Node-local violation checks in w-space.
  std::vector<std::pair<Value, NodeId>>& violators = violators_;
  violators.clear();
  for (NodeId id = 0; id < n_; ++id) {
    const Value w = to_w(id, cluster.value(id));
    if (filters_[id].contains(w)) continue;
    violators.emplace_back(w, id);
  }
  if (violators.empty()) return;
  ++mstats_.violation_steps;
  mstats_.violations += violators.size();

  Network& net = cluster.net();

  // Each violator reports its fresh value (one upstream message each).
  for (const auto& [w, id] : violators) {
    Message report;
    report.kind = MsgKind::kViolation;
    report.a = w;
    net.node_send(id, report);
  }
  net.drain_coordinator(mail_);  // coordinator absorbs the reports

  // Vacate all violators' slots first so violators can land in each
  // other's former positions, then place in descending w order.
  for (const auto& [w, id] : violators) {
    for (auto& s : slots_) {
      if (s.owner == id) {
        s.owner.reset();
        break;
      }
    }
  }
  std::sort(violators.begin(), violators.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  for (const auto& [w, id] : violators) place_violator(cluster, id, w);

  compact_slots();
  refresh_topk();
}

void DominanceMonitor::compact_slots() {
  // Merge runs of adjacent vacated slots so the tiling stays O(n) slots
  // regardless of how many moves have happened (a purely coordinator-local
  // bookkeeping step; no messages).
  std::vector<Slot> merged;
  merged.reserve(slots_.size());
  for (const auto& s : slots_) {
    if (!merged.empty() && !merged.back().owner.has_value() &&
        !s.owner.has_value()) {
      merged.back().lo = s.lo;  // extend the empty run downward
      continue;
    }
    merged.push_back(s);
  }
  slots_ = std::move(merged);
}

void DominanceMonitor::place_violator(Cluster& cluster, NodeId id, Value w) {
  const std::size_t at = find_slot(w);
  Slot& slot = slots_[at];

  if (!slot.owner.has_value()) {
    // Vacated gap: occupy it wholesale.
    slot.owner = id;
    slot.known_w = w;
    assign_filter(cluster, id, slot.lo, slot.hi);
    return;
  }

  // Occupied: probe the owner for its fresh w (unicast probe + report),
  // then split the slot at the fresh midpoint.
  const NodeId other = *slot.owner;
  Network& net = cluster.net();
  Message probe;
  probe.kind = MsgKind::kProbe;
  net.coord_unicast(other, probe);
  net.drain_node(other, mail_);
  Message reply;
  reply.kind = MsgKind::kValueReport;
  reply.a = to_w(other, cluster.value(other));
  net.node_send(other, reply);
  ++mstats_.polls;
  Value other_w = reply.a;
  net.drain_coordinator(mail_);
  for (const Message& m : mail_) {
    if (m.kind == MsgKind::kValueReport && m.from == other) other_w = m.a;
  }

  // w-space values are injective per node, and two distinct nodes cannot
  // share a w (the id term differs), so strict comparison is total.
  const bool violator_above = w > other_w;
  const Value upper_w = violator_above ? w : other_w;
  const Value lower_w = violator_above ? other_w : w;
  const NodeId upper_id = violator_above ? id : other;
  const NodeId lower_id = violator_above ? other : id;
  const Value split = midpoint(lower_w, upper_w);  // lower_w <= split < upper_w

  const Slot original = slot;
  Slot upper{upper_id, split, original.hi, upper_w};
  Slot lower{lower_id, original.lo, split, lower_w};
  slots_[at] = upper;
  slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(at) + 1, lower);

  assign_filter(cluster, upper_id, upper.lo, upper.hi);
  assign_filter(cluster, lower_id, lower.lo, lower.hi);
}

void DominanceMonitor::refresh_topk() {
  topk_ids_.clear();
  for (const auto& s : slots_) {
    if (!s.owner.has_value()) continue;
    topk_ids_.push_back(*s.owner);
    if (topk_ids_.size() == k_) break;
  }
  std::sort(topk_ids_.begin(), topk_ids_.end());
}

std::vector<NodeId> DominanceMonitor::full_order() const {
  std::vector<NodeId> order;
  for (const auto& s : slots_) {
    if (s.owner.has_value()) order.push_back(*s.owner);
  }
  return order;
}

}  // namespace topkmon
