#include "core/multik_monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/select_topk.hpp"

namespace topkmon {

MultiKMonitor::MultiKMonitor(std::vector<std::size_t> ks)
    : MultiKMonitor(std::move(ks), Options{}) {}

MultiKMonitor::MultiKMonitor(std::vector<std::size_t> ks, Options opts)
    : ks_(std::move(ks)), opts_(opts) {
  if (ks_.empty()) {
    throw std::invalid_argument("MultiKMonitor: need at least one k");
  }
  if (ks_.size() > 200) {
    throw std::invalid_argument("MultiKMonitor: too many boundaries");
  }
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    if (ks_[i] == 0 || (i > 0 && ks_[i] <= ks_[i - 1])) {
      throw std::invalid_argument(
          "MultiKMonitor: ks must be positive and strictly increasing");
    }
  }
  popts_.suppress_idle_broadcasts = opts_.suppress_idle_broadcasts;
}

Value MultiKMonitor::to_w(NodeId id, Value v) const noexcept {
  return v * static_cast<Value>(n_) +
         (static_cast<Value>(n_) - 1 - static_cast<Value>(id));
}

void MultiKMonitor::initialize(Cluster& cluster) {
  n_ = cluster.size();
  if (ks_.back() > n_) {
    throw std::invalid_argument("MultiKMonitor: largest k > n");
  }
  boundaries_.clear();
  for (const std::size_t k : ks_) {
    if (k < n_) boundaries_.push_back(Boundary{k, 0, 0, 0});
  }
  band_.assign(n_, 0);
  filters_w_.assign(n_, Filter{});
  if (boundaries_.empty()) {
    // Only k == n was requested: the answer is static.
    topk_smallest_ = std::vector<NodeId>(cluster.all_ids());
    return;
  }
  full_reset(cluster);
}

std::vector<NodeId> MultiKMonitor::side_above(std::size_t j) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < n_; ++id) {
    if (band_[id] <= j) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> MultiKMonitor::side_below(std::size_t j) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < n_; ++id) {
    if (band_[id] > j) out.push_back(id);
  }
  return out;
}

void MultiKMonitor::step(Cluster& cluster, TimeStep) {
  if (boundaries_.empty()) return;
  const std::size_t m = boundaries_.size();

  struct Violation {
    NodeId id;
    Value w;
    std::uint8_t band;
    bool went_up;
  };
  std::vector<Violation> violations;
  for (NodeId id = 0; id < n_; ++id) {
    const Value w = to_w(id, cluster.value(id));
    const int side = filters_w_[id].violation_side(w);
    if (side == 0) continue;
    violations.push_back(Violation{id, w, band_[id], side > 0});
  }
  if (violations.empty()) return;
  ++mstats_.violation_steps;
  mstats_.violations += violations.size();

  // Classify crossings; a multi-band jump escalates to a shared reset
  // (conservative but correct, and rare on gradual streams).
  std::vector<std::vector<NodeId>> up_crossers(m);    // per boundary j
  std::vector<std::vector<NodeId>> down_crossers(m);  // per boundary j
  for (const auto& v : violations) {
    if (v.went_up) {
      // Node from band b rose above boundary b-1.
      std::size_t crossed = 0;
      for (std::size_t j = v.band; j-- > 0;) {
        if (v.w > boundaries_[j].mid_w) ++crossed;
        else break;
      }
      if (crossed != 1) {
        full_reset(cluster);
        return;
      }
      up_crossers[v.band - 1].push_back(v.id);
    } else {
      // Node from band b fell below boundary b.
      std::size_t crossed = 0;
      for (std::size_t j = v.band; j < m; ++j) {
        if (v.w < boundaries_[j].mid_w) ++crossed;
        else break;
      }
      if (crossed != 1) {
        full_reset(cluster);
        return;
      }
      down_crossers[v.band].push_back(v.id);
    }
  }

  // Per-boundary Algorithm 1 handler. Single-band crossings keep each
  // boundary's violators disjoint from other boundaries' sides' extrema
  // (see header), so the boundaries can be processed independently.
  for (std::size_t j = 0; j < m; ++j) {
    if (up_crossers[j].empty() && down_crossers[j].empty()) continue;
    Boundary& b = boundaries_[j];
    ++mstats_.handler_calls;

    std::optional<Value> min_w;
    std::optional<Value> max_w;
    if (!down_crossers[j].empty()) {
      const auto res = run_min_protocol(cluster, down_crossers[j], b.k, popts_);
      ++mstats_.protocol_runs;
      min_w = to_w(res.winner, res.extremum);
    }
    if (!up_crossers[j].empty()) {
      const auto res =
          run_max_protocol(cluster, up_crossers[j], n_ - b.k, popts_);
      ++mstats_.protocol_runs;
      max_w = to_w(res.winner, res.extremum);
    }
    if (!max_w.has_value()) {
      Message start;
      start.kind = MsgKind::kProtocolStart;
      start.a = static_cast<std::int64_t>(j);
      cluster.net().coord_broadcast(start);
      const auto below = side_below(j);
      const auto res = run_max_protocol(cluster, below, n_ - b.k, popts_);
      ++mstats_.protocol_runs;
      max_w = to_w(res.winner, res.extremum);
    } else {
      Message start;
      start.kind = MsgKind::kProtocolStart;
      start.a = static_cast<std::int64_t>(j);
      cluster.net().coord_broadcast(start);
      const auto above = side_above(j);
      const auto res = run_min_protocol(cluster, above, b.k, popts_);
      ++mstats_.protocol_runs;
      min_w = to_w(res.winner, res.extremum);
    }

    b.tplus_w = std::min(b.tplus_w, *min_w);
    b.tminus_w = std::max(b.tminus_w, *max_w);

    if (b.tplus_w < b.tminus_w) {
      full_reset(cluster);  // shared: rebuilds every boundary at once
      return;
    }
    ++mstats_.midpoint_updates;
    b.mid_w = midpoint(b.tminus_w, b.tplus_w);
    Message update;
    update.kind = MsgKind::kFilterUpdate;
    update.a = b.mid_w;
    update.b = static_cast<std::int64_t>(j);
    cluster.net().coord_broadcast(update);
  }
  refresh_filters();
}

void MultiKMonitor::full_reset(Cluster& cluster) {
  ++mstats_.filter_resets;
  const std::size_t k_max = boundaries_.back().k;
  const auto sel = select_extreme(cluster, cluster.all_ids(), k_max + 1, n_,
                                  Direction::kMax, popts_);
  mstats_.protocol_runs += sel.winners.size();
  if (sel.winners.size() != k_max + 1) {
    throw std::logic_error("MultiKMonitor: reset selection incomplete");
  }

  // Band of rank r (1-based): number of boundaries with k < r. Non-winners
  // sit below every boundary.
  band_.assign(n_, static_cast<std::uint8_t>(boundaries_.size()));
  std::vector<Value> rank_w(sel.winners.size());
  for (std::size_t r = 0; r < sel.winners.size(); ++r) {
    const auto& win = sel.winners[r];
    rank_w[r] = to_w(win.id, win.value);
    std::uint8_t bd = 0;
    for (const auto& b : boundaries_) {
      if (b.k < r + 1) ++bd;
    }
    band_[win.id] = bd;
  }

  for (auto& b : boundaries_) {
    b.tplus_w = rank_w[b.k - 1];
    b.tminus_w = rank_w[b.k];
    b.mid_w = midpoint(b.tminus_w, b.tplus_w);
  }
  refresh_filters();
}

void MultiKMonitor::refresh_filters() {
  const auto m = static_cast<std::uint8_t>(boundaries_.size());
  for (NodeId id = 0; id < n_; ++id) {
    const std::uint8_t b = band_[id];
    const Value lo = (b == m) ? kMinusInf : boundaries_[b].mid_w;
    const Value hi = (b == 0) ? kPlusInf : boundaries_[b - 1].mid_w;
    filters_w_[id] = Filter{lo, hi};
  }
  topk_smallest_.clear();
  for (NodeId id = 0; id < n_; ++id) {
    if (band_[id] == 0) topk_smallest_.push_back(id);
  }
}

std::vector<NodeId> MultiKMonitor::topk_for(std::size_t k) const {
  if (k == n_) {
    std::vector<NodeId> all(n_);
    for (NodeId id = 0; id < n_; ++id) all[id] = id;
    return all;
  }
  std::size_t j = boundaries_.size();
  for (std::size_t i = 0; i < boundaries_.size(); ++i) {
    if (boundaries_[i].k == k) {
      j = i;
      break;
    }
  }
  if (j == boundaries_.size()) {
    throw std::invalid_argument("MultiKMonitor: k is not monitored");
  }
  std::vector<NodeId> out;
  for (NodeId id = 0; id < n_; ++id) {
    if (band_[id] <= j) out.push_back(id);
  }
  return out;
}

}  // namespace topkmon
