// The offline optimal filter-based algorithm OPT that Theorem 3.3 compares
// against. OPT knows the entire future; the analysis charges it only for
// *filter updates*, so its cost is the minimum number of filter-set epochs
// needed to cover the trace.
//
// Lemma 3.2 and its converse characterize feasibility: a time interval
// admits one static valid filter set iff T+(t0, t) >= T-(t0, t), where T+
// is the running minimum over the (fixed) top-k side and T- the running
// maximum over the complement. Greedy furthest extension therefore yields
// the optimal epoch partition (classical exchange argument: any feasible
// partition's i-th boundary can only be moved later, never earlier, by
// switching to the greedy one).
#pragma once

#include <cstddef>
#include <vector>

#include "streams/trace.hpp"
#include "util/types.hpp"

namespace topkmon {

struct OfflineOptResult {
  /// Number of filter-set epochs covering the trace (>= 1). The paper's
  /// OPT cost lower bound counts one communication per epoch beyond the
  /// initial one, plus the initial setup; we report epochs directly and
  /// `updates() == epochs - 1` as the charged update count.
  std::size_t epochs = 0;

  /// Time step at which each epoch after the first begins.
  std::vector<TimeStep> update_times;

  /// Refined (per-node-message) cost: for each update, 1 broadcast plus
  /// one unicast per node whose top-k membership changed. The paper's §5
  /// notes that bounding OPT's per-node messages is open; this refined
  /// count is reported for context in the experiment tables.
  std::uint64_t refined_messages = 0;

  std::size_t updates() const noexcept { return epochs == 0 ? 0 : epochs - 1; }
};

/// Computes OPT's optimal epoch partition for monitoring the k largest
/// values over the full trace. Row 0 of the trace is the initialization
/// observation.
OfflineOptResult compute_offline_opt(const TraceMatrix& trace, std::size_t k);

/// Maximum over the trace of (v_k - v_{k+1}), the Δ of Theorem 3.3.
/// Requires k < n. Useful for reporting log Δ next to competitive ratios.
Value trace_delta(const TraceMatrix& trace, std::size_t k);

}  // namespace topkmon
