// Full-order ("dominance") tracking with the midpoint strategy of Lam,
// Liu & Ting, adapted to one dimension — the approach §3.1 of the paper
// discusses and rejects for Top-k-Position Monitoring: it maintains the
// *entire* value order of all n nodes, so it pays for order changes far
// from the k-boundary that an optimal top-k algorithm ignores; it is
// therefore not c-competitive for any c (experiment E8 demonstrates the
// blow-up).
//
// Implementation: the coordinator maintains n "slots" — closed intervals
// that tile the value axis, boundaries at midpoints between value-adjacent
// nodes — and each node's filter is its slot. On violation the node
// reports, the coordinator locates the containing slot, probes its owner
// (one unicast + one report) if any, splits the slot at the fresh midpoint
// and unicasts the updated filters. All arithmetic runs in the
// tie-free transformed space w = v*n + (n-1-id), which both end points can
// compute locally, so the monitor is deterministic even on tied inputs.
#pragma once

#include <optional>
#include <utility>

#include "core/filter.hpp"
#include "core/monitor.hpp"
#include "sim/message.hpp"

namespace topkmon {

class DominanceMonitor final : public MonitorBase {
 public:
  explicit DominanceMonitor(std::size_t k);

  std::string_view name() const override { return "dominance_midpoint"; }
  void initialize(Cluster& cluster) override;
  void step(Cluster& cluster, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  /// Full current order (best first) — dominance tracking maintains it as
  /// a by-product.
  std::vector<NodeId> full_order() const;

 private:
  /// One slot of the axis tiling, ordered best-first in `slots_`.
  struct Slot {
    std::optional<NodeId> owner;  ///< nullopt: vacated by a moved node
    Value lo = kMinusInf;         ///< in w-space
    Value hi = kPlusInf;          ///< in w-space
    Value known_w = 0;            ///< owner's w at last report/probe
  };

  Value to_w(NodeId id, Value v) const noexcept;
  std::size_t find_slot(Value w) const;
  void place_violator(Cluster& cluster, NodeId id, Value w);
  void compact_slots();
  void assign_filter(Cluster& cluster, NodeId id, Value lo_w, Value hi_w);
  void refresh_topk();

  std::size_t k_;
  std::size_t n_ = 0;
  std::vector<Slot> slots_;          ///< descending in w
  std::vector<Filter> filters_;      ///< node-side, in w-space
  std::vector<NodeId> topk_ids_;

  // Hot-path scratch buffers, reused across steps.
  std::vector<Message> mail_;
  std::vector<std::pair<Value, NodeId>> violators_;  // (new w, id)
};

}  // namespace topkmon
