// Native role-separated implementation of the ordered top-k monitor
// (core/ordered_topk_monitor.hpp): the hybrid of the shared k-th/(k+1)-st
// boundary (filter monitor) below with per-member midpoint slots
// (dominance monitor) above, all in the injective w-space
// w = v·n + (n-1-id). Members guard their rank slot, outsiders guard the
// boundary, and every repair runs the randomized extremum protocol as
// event-driven sessions (core/role_session.hpp).
//
// Under the instant NetworkSpec the port is message-for-message and
// coin-flip-for-coin-flip identical to the lock-step OrderedTopkMonitor
// (differential harness, tests/core/role_port_harness.hpp): the same
// session sequence per violating step (below-crossers' min, outsiders'
// max, the missing side under a charged kProtocolStart, then a k-round
// member re-selection whenever the order above the boundary may have
// changed), the same kFilterUpdate boundary broadcasts, the same
// announce-driven FILTERRESET selections, and the same counters.
//
// Membership, rank and slot intervals are derived by each node locally
// from the selection announce order — the same free knowledge the
// lock-step model grants — so no extra charged messages are needed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/filter.hpp"
#include "core/role_session.hpp"
#include "core/roles.hpp"

namespace topkmon {

/// Control opcodes of the ordered monitor's control plane.
enum class OrderedControlOp : std::int64_t {
  /// a = direction (0 = max, 1 = min), b = participant group
  /// (OrderedSessionGroup), c = (epoch << 8) | log_n.
  kStartSession = 1,
  /// A selection begins: a = number of winners to announce, b = type
  /// (0 = full reset over everyone, 1 = member re-rank), c = current k.
  kStartSelection = 2,
};

/// Who participates in a protocol session (each node decides locally).
enum class OrderedSessionGroup : std::int64_t {
  kViolBelow = 0,     ///< members holding an unconsumed below-boundary fall
  kViolOut = 1,       ///< outsiders holding an unconsumed violation
  kAllMembers = 2,    ///< nodes believing they are members
  kAllOutsiders = 3,  ///< nodes believing they are outsiders
  kSelectAll = 4,     ///< full-reset participants not yet announced
  kSelectMembers = 5, ///< member re-rank participants not yet announced
};

/// Node-side half: w-space slot/boundary check, violation signals,
/// session participation, and announce-derived rank bookkeeping.
class OrderedNode final : public NodeAlgo {
 public:
  explicit OrderedNode(std::size_t k) : k_(k) {}

  void on_init(NodeCtx& ctx, Value v0) override;
  void on_observe(NodeCtx& ctx, Value v, TimeStep t) override;
  void on_message(NodeCtx& ctx, const Message& m) override;
  void on_control(NodeCtx& ctx, const Control& c) override;
  void on_timer(NodeCtx& ctx) override;
  void on_recover(NodeCtx& ctx) override;

  // -- introspection for tests ---------------------------------------------
  bool member() const noexcept { return member_; }

 private:
  enum class Pending : std::uint8_t { kNone, kBelow, kOut };
  enum class SelType : std::uint8_t { kFull, kInternal };

  Value to_w(const NodeCtx& ctx, Value v) const noexcept;
  bool boundary_active(const NodeCtx& ctx) const noexcept {
    return k_ < ctx.n();
  }
  void finish_selection(NodeCtx& ctx);
  void rebuild_slot(NodeCtx& ctx);

  std::size_t k_;
  bool member_ = false;
  std::size_t rank_ = 0;  ///< 0-based; valid while member_
  Value mid_w_ = kMinusInf;
  Value slot_hi_ = kPlusInf;  ///< own slot's upper bound (members)
  Filter filter_{};           ///< current guard interval in w-space
  Pending pending_ = Pending::kNone;
  NodeProtoSession sess_;

  // Announce-derived selection state.
  bool selecting_ = false;
  bool excluded_ = false;
  SelType sel_type_ = SelType::kFull;
  std::size_t sel_want_ = 0;
  std::size_t announces_seen_ = 0;
  std::vector<Value> sel_w_;  ///< winners' w in announce (rank) order
  std::optional<std::size_t> sel_own_rank_;
};

/// Coordinator-side half: the violation-cycle state machine, the
/// T+/T- accumulators, the member order, and the selections.
class OrderedCoordinator final : public CoordinatorAlgo {
 public:
  struct Options {
    /// Skip session-round beacons that would repeat the running extremum
    /// (the lock-step grammar's `nobeacon`).
    bool suppress_idle_broadcasts = false;
  };

  explicit OrderedCoordinator(std::size_t k) : OrderedCoordinator(k, {}) {}
  OrderedCoordinator(std::size_t k, Options opts);

  std::string_view name() const override { return "ordered_topk"; }
  void on_init(CoordCtx& ctx) override;
  void on_step_begin(CoordCtx& ctx, TimeStep t) override;
  void on_message(CoordCtx& ctx, const Message& m) override;
  void on_timer(CoordCtx& ctx) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  // -- fault hooks (sim/fault_plan.hpp) -------------------------------------
  void on_node_down(CoordCtx& ctx, NodeId id) override;
  void on_node_up(CoordCtx& ctx, NodeId id) override;
  void on_set_k(CoordCtx& ctx, std::size_t k) override;

  // -- introspection for tests / answer validation --------------------------
  /// The monitored order, best first (mirrors
  /// OrderedTopkMonitor::ordered_topk()).
  const std::vector<NodeId>& ordered_topk() const noexcept { return order_; }

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kViolBelow,  ///< min session over below-boundary fallers
    kViolOut,    ///< max session over violating outsiders
    kFullSide,   ///< missing-side session
    kSelect,     ///< a selection (full reset or member re-rank) runs
  };
  enum class SelType : std::uint8_t { kFull, kInternal };

  Value to_w(NodeId id, Value v) const noexcept;
  void start_cycle(CoordCtx& ctx);
  void start_session(CoordCtx& ctx, Direction dir, OrderedSessionGroup group,
                     std::uint64_t n_upper);
  void conclude_session(CoordCtx& ctx);
  void handler_transition(CoordCtx& ctx);
  void decide(CoordCtx& ctx);
  void begin_full_reset(CoordCtx& ctx);
  void begin_internal_rebuild(CoordCtx& ctx);
  void start_selection_iteration(CoordCtx& ctx);
  void finish_selection(CoordCtx& ctx);
  void cycle_done(CoordCtx& ctx);
  void abort_cycle();
  void rebuild_id_lists();

  std::size_t k_;
  std::size_t n_ = 0;
  bool boundary_active_ = false;  ///< k < n: the shared boundary exists

  // Answer (coordinator's view).
  std::vector<NodeId> order_;    ///< member ids, best rank first
  std::vector<Value> known_w_;   ///< members' w at the last re-rank
  std::vector<char> in_topk_;
  std::vector<NodeId> topk_ids_;  ///< order_ sorted by id (the answer set)
  Value tplus_w_ = 0;
  Value tminus_w_ = 0;
  Value mid_w_ = kMinusInf;

  // Current repair cycle.
  Phase phase_ = Phase::kIdle;
  bool pending_below_ = false;
  bool pending_out_ = false;
  bool pending_internal_ = false;
  bool cycle_below_ = false;
  bool cycle_out_ = false;
  bool cycle_internal_ = false;
  std::optional<Value> min_w_;
  std::optional<Value> max_w_;
  CoordProtoSession sess_;

  // Selection state.
  SelType sel_type_ = SelType::kFull;
  std::size_t sel_want_ = 0;
  std::vector<std::pair<Value, NodeId>> sel_winners_;  ///< (raw value, id)
  bool pending_select_ = false;
  std::uint64_t select_gap_ = 0;

  bool resync_pending_ = false;  ///< a recovery asked for a fresh reset
};

}  // namespace topkmon
