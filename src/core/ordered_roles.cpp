#include "core/ordered_roles.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

// ---------------------------------------------------------------------------
// OrderedNode
// ---------------------------------------------------------------------------

Value OrderedNode::to_w(const NodeCtx& ctx, Value v) const noexcept {
  const auto n = static_cast<Value>(ctx.n());
  return v * n + (n - 1 - static_cast<Value>(ctx.id()));
}

void OrderedNode::on_init(NodeCtx& ctx, Value) {
  // The initial guard interval is [-inf, +inf]; the coordinator's init
  // reset assigns real slots through the announce order.
  ctx.set_needs_observe(false);
}

void OrderedNode::on_observe(NodeCtx& ctx, Value v, TimeStep) {
  const Value w = to_w(ctx, v);
  if (filter_.contains(w)) {
    ctx.set_needs_observe(false);
    return;
  }
  ctx.set_needs_observe(true);
  // Mirror of OrderedTopkMonitor::step()'s classification, evaluated on
  // the node's own beliefs (synchronized by updates and announces):
  // outsiders raise a boundary-side violation, members below the shared
  // boundary a below-fall, everything else is internal churn that only
  // re-ranks the members.
  if (!member_) {
    pending_ = Pending::kOut;
    ctx.signal(0);
  } else if (boundary_active(ctx) && w < mid_w_) {
    pending_ = Pending::kBelow;
    ctx.signal(1);
  } else {
    pending_ = Pending::kNone;
    ctx.signal(2);
  }
}

void OrderedNode::on_message(NodeCtx& ctx, const Message& m) {
  switch (m.kind) {
    case MsgKind::kRoundBeacon:
      sess_.handle_beacon(m);
      break;
    case MsgKind::kWinnerAnnounce: {
      // The announce order is common knowledge: rank r of the selection
      // is the r-th announce. Each node derives its own rank, membership
      // and slot interval locally — no extra charged messages.
      if (!selecting_) break;
      const auto beacon = unpack_beacon_b(m.b);
      const auto n = static_cast<Value>(ctx.n());
      sel_w_.push_back(m.a * n + (n - 1 - static_cast<Value>(beacon.holder)));
      if (beacon.holder == ctx.id()) {
        excluded_ = true;
        sel_own_rank_ = announces_seen_;
      }
      ++announces_seen_;
      if (announces_seen_ == sel_want_) finish_selection(ctx);
      break;
    }
    case MsgKind::kFilterUpdate: {
      // Boundary move: only the outsiders' upper bound and the lowest
      // member's lower bound depend on the shared boundary.
      selecting_ = false;
      mid_w_ = m.a;
      if (!member_) {
        filter_ = Filter{kMinusInf, mid_w_};
      } else if (rank_ + 1 == k_) {
        filter_ = Filter{mid_w_, slot_hi_};
      }
      ctx.set_needs_observe(!filter_.contains(to_w(ctx, ctx.value())));
      break;
    }
    default:
      break;  // kProtocolStart is informational for nodes
  }
}

void OrderedNode::on_control(NodeCtx& ctx, const Control& c) {
  switch (static_cast<OrderedControlOp>(c.op)) {
    case OrderedControlOp::kStartSelection: {
      selecting_ = true;
      excluded_ = false;
      announces_seen_ = 0;
      sel_w_.clear();
      sel_own_rank_.reset();
      sel_want_ = static_cast<std::size_t>(c.a);
      sel_type_ = c.b == 1 ? SelType::kInternal : SelType::kFull;
      k_ = static_cast<std::size_t>(c.c);
      // The selection supersedes any unconsumed violation (reachable
      // only when a reset begins without the usual violator sessions:
      // recovery, dynamic k, or the defensive rebuild).
      pending_ = Pending::kNone;
      // A full reset re-derives membership from scratch; a member
      // re-rank keeps it (only members participate).
      if (sel_type_ == SelType::kFull) member_ = false;
      break;
    }
    case OrderedControlOp::kStartSession: {
      const auto group = static_cast<OrderedSessionGroup>(c.b);
      bool join = false;
      switch (group) {
        case OrderedSessionGroup::kViolBelow:
          join = (pending_ == Pending::kBelow);
          if (join) pending_ = Pending::kNone;
          break;
        case OrderedSessionGroup::kViolOut:
          join = (pending_ == Pending::kOut);
          if (join) pending_ = Pending::kNone;
          break;
        case OrderedSessionGroup::kAllMembers:
          join = member_;
          break;
        case OrderedSessionGroup::kAllOutsiders:
          join = !member_;
          break;
        case OrderedSessionGroup::kSelectAll:
          join = selecting_ && !excluded_;
          break;
        case OrderedSessionGroup::kSelectMembers:
          join = selecting_ && member_ && !excluded_;
          break;
      }
      if (join) {
        sess_.join(ctx, unpack_session_start(c));
      } else {
        sess_.skip();
      }
      break;
    }
  }
}

void OrderedNode::on_timer(NodeCtx& ctx) { sess_.run_round(ctx, ctx.value()); }

void OrderedNode::on_recover(NodeCtx& ctx) {
  // Machine state (filter_, member_, rank_, the RNG) survives the
  // outage; session- and selection-scoped state must not. The filter may
  // predate slots renegotiated during the outage — stay in the observe
  // set until the coordinator's recovery reset re-ranks everyone.
  sess_.reset();
  selecting_ = false;
  excluded_ = false;
  announces_seen_ = 0;
  pending_ = Pending::kNone;
  ctx.set_needs_observe(true);
}

void OrderedNode::finish_selection(NodeCtx& ctx) {
  selecting_ = false;
  if (sel_type_ == SelType::kFull) {
    member_ = sel_own_rank_.has_value() && *sel_own_rank_ < k_;
    if (member_) rank_ = *sel_own_rank_;
    // boundary_active: T- is the (k+1)-st announce, T+ the k-th.
    mid_w_ = boundary_active(ctx) ? midpoint(sel_w_[k_], sel_w_[k_ - 1])
                                  : kMinusInf;
  } else if (sel_own_rank_.has_value()) {
    member_ = true;
    rank_ = *sel_own_rank_;
  }
  rebuild_slot(ctx);
}

void OrderedNode::rebuild_slot(NodeCtx& ctx) {
  if (member_ && rank_ >= sel_w_.size()) {
    // Stale membership belief (possible only under message loss): the
    // announce order did not cover this rank. Keep the old filter; the
    // node's next violation or the coordinator's next reset repairs it.
    return;
  }
  if (member_) {
    slot_hi_ = rank_ == 0 ? kPlusInf : midpoint(sel_w_[rank_], sel_w_[rank_ - 1]);
    const Value lo = rank_ + 1 == k_ ? mid_w_
                                     : midpoint(sel_w_[rank_ + 1], sel_w_[rank_]);
    filter_ = Filter{lo, slot_hi_};
  } else {
    filter_ = Filter{kMinusInf, mid_w_};
  }
  ctx.set_needs_observe(!filter_.contains(to_w(ctx, ctx.value())));
}

// ---------------------------------------------------------------------------
// OrderedCoordinator
// ---------------------------------------------------------------------------

OrderedCoordinator::OrderedCoordinator(std::size_t k, Options opts) : k_(k) {
  if (k == 0) {
    throw std::invalid_argument("OrderedCoordinator: k must be >= 1");
  }
  sess_.suppress_idle = opts.suppress_idle_broadcasts;
}

Value OrderedCoordinator::to_w(NodeId id, Value v) const noexcept {
  return v * static_cast<Value>(n_) +
         (static_cast<Value>(n_) - 1 - static_cast<Value>(id));
}

void OrderedCoordinator::on_init(CoordCtx& ctx) {
  n_ = ctx.n();
  if (k_ > n_) {
    throw std::invalid_argument("OrderedCoordinator: k > n");
  }
  boundary_active_ = k_ < n_;
  in_topk_.assign(n_, 0);
  // Unlike the unordered monitors there is no degenerate k == n shortcut:
  // the order itself must be established and maintained.
  begin_full_reset(ctx);
}

void OrderedCoordinator::on_step_begin(CoordCtx& ctx, TimeStep) {
  const auto& signals = ctx.signals();
  if (!signals.empty()) {
    ++mstats_.violation_steps;
    mstats_.violations += signals.size();
    for (const Signal& s : signals) {
      if (s.code == 0) {
        pending_out_ = true;
      } else if (s.code == 1) {
        pending_below_ = true;
      } else {
        pending_internal_ = true;
      }
    }
  }
  if (phase_ != Phase::kIdle) return;
  if (order_.size() != k_) {
    // The order was never established — a reset selection aborted under
    // message loss. Defensively re-run it; no filter violation can
    // convene repair while the nodes hold no real slots.
    ++mstats_.full_rebuilds;
    begin_full_reset(ctx);
    return;
  }
  if (pending_below_ || pending_out_ || pending_internal_) start_cycle(ctx);
}

void OrderedCoordinator::on_message(CoordCtx&, const Message& m) {
  if (m.kind != MsgKind::kValueReport) return;
  sess_.fold(m);
}

void OrderedCoordinator::on_timer(CoordCtx& ctx) {
  if (!sess_.active) {
    // Inter-iteration gap of a selection: the previous iteration's winner
    // announcement is in flight; convening the next iteration before it
    // lands would let the winner re-join. Zero ticks under instant.
    if (pending_select_) {
      if (select_gap_ > 0) {
        --select_gap_;
        ctx.arm_timer();
        return;
      }
      pending_select_ = false;
      start_selection_iteration(ctx);
    }
    return;
  }
  if (!sess_.advance(ctx)) return;
  conclude_session(ctx);
}

void OrderedCoordinator::start_cycle(CoordCtx& ctx) {
  cycle_below_ = pending_below_;
  cycle_out_ = pending_out_;
  cycle_internal_ = pending_internal_;
  pending_below_ = pending_out_ = pending_internal_ = false;
  min_w_.reset();
  max_w_.reset();
  if (cycle_below_ || cycle_out_) {
    if (cycle_below_) {
      phase_ = Phase::kViolBelow;
      start_session(ctx, Direction::kMin, OrderedSessionGroup::kViolBelow, k_);
    } else {
      phase_ = Phase::kViolOut;
      start_session(ctx, Direction::kMax, OrderedSessionGroup::kViolOut,
                    n_ - k_);
    }
  } else {
    // Pure internal churn: the boundary holds, only the order above it
    // may have changed.
    begin_internal_rebuild(ctx);
  }
}

void OrderedCoordinator::start_session(CoordCtx& ctx, Direction dir,
                                       OrderedSessionGroup group,
                                       std::uint64_t n_upper) {
  ++mstats_.protocol_runs;
  sess_.begin(ctx, static_cast<std::int64_t>(OrderedControlOp::kStartSession),
              dir, static_cast<std::int64_t>(group), n_upper);
}

void OrderedCoordinator::conclude_session(CoordCtx& ctx) {
  // A selection iteration announces its winner even when it repeats —
  // the redundant announcement is what tells a repeated winner it is
  // excluded (see FilterCoordinator::conclude_session).
  if (phase_ == Phase::kSelect) sess_.announce(ctx);
  if (!sess_.have_best) {
    // Only possible under message loss: every report was dropped.
    abort_cycle();
    return;
  }
  switch (phase_) {
    case Phase::kViolBelow:
      min_w_ = to_w(sess_.best_holder, sess_.best_value);
      if (cycle_out_) {
        phase_ = Phase::kViolOut;
        start_session(ctx, Direction::kMax, OrderedSessionGroup::kViolOut,
                      n_ - k_);
      } else {
        handler_transition(ctx);
      }
      break;
    case Phase::kViolOut:
      max_w_ = to_w(sess_.best_holder, sess_.best_value);
      handler_transition(ctx);
      break;
    case Phase::kFullSide:
      if (sess_.dir == Direction::kMax) {
        max_w_ = to_w(sess_.best_holder, sess_.best_value);
      } else {
        min_w_ = to_w(sess_.best_holder, sess_.best_value);
      }
      decide(ctx);
      break;
    case Phase::kSelect: {
      for (const auto& w : sel_winners_) {
        if (w.second == sess_.best_holder) {
          // A repeat winner (lost announce, drops only): the selection
          // order is corrupted beyond local repair — abandon the reset;
          // the defensive rebuild or the next violation retries.
          abort_cycle();
          return;
        }
      }
      sel_winners_.emplace_back(sess_.best_value, sess_.best_holder);
      if (sel_winners_.size() < sel_want_) {
        const std::uint64_t gap = ctx.flush_ticks();
        if (gap == 0) {
          start_selection_iteration(ctx);
        } else {
          pending_select_ = true;
          select_gap_ = gap;
          ctx.arm_timer();
        }
      } else {
        finish_selection(ctx);
      }
      break;
    }
    case Phase::kIdle:
      break;  // unreachable
  }
}

void OrderedCoordinator::handler_transition(CoordCtx& ctx) {
  // Obtain the side extremum the violations did not deliver (announced
  // by a charged kProtocolStart); violating outsiders force a fresh
  // minimum over every member, which re-certifies T+ after the boundary
  // side grew (the same overwrite the lock-step monitor performs).
  ++mstats_.handler_calls;
  phase_ = Phase::kFullSide;
  Message start;
  start.kind = MsgKind::kProtocolStart;
  if (!max_w_.has_value()) {
    start.a = 0;  // side: non-top-k
    ctx.broadcast(start);
    start_session(ctx, Direction::kMax, OrderedSessionGroup::kAllOutsiders,
                  n_ - k_);
  } else {
    start.a = 1;  // side: top-k
    ctx.broadcast(start);
    start_session(ctx, Direction::kMin, OrderedSessionGroup::kAllMembers, k_);
  }
}

void OrderedCoordinator::decide(CoordCtx& ctx) {
  tplus_w_ = std::min(tplus_w_, *min_w_);
  tminus_w_ = std::max(tminus_w_, *max_w_);
  if (tplus_w_ < tminus_w_) {
    // The membership may have changed; recompute from scratch.
    begin_full_reset(ctx);
    return;
  }
  ++mstats_.midpoint_updates;
  mid_w_ = midpoint(tminus_w_, tplus_w_);
  Message update;
  update.kind = MsgKind::kFilterUpdate;
  update.a = mid_w_;
  ctx.broadcast(update);
  if (cycle_below_ || cycle_internal_) {
    // Members moved (below-fall repaired, or internal churn rode along):
    // re-rank the k members.
    begin_internal_rebuild(ctx);
  } else {
    cycle_done(ctx);
  }
}

void OrderedCoordinator::begin_full_reset(CoordCtx& ctx) {
  ++mstats_.filter_resets;
  phase_ = Phase::kSelect;
  sel_type_ = SelType::kFull;
  sel_want_ = boundary_active_ ? k_ + 1 : k_;
  sel_winners_.clear();
  Control sel;
  sel.op = static_cast<std::int64_t>(OrderedControlOp::kStartSelection);
  sel.a = static_cast<std::int64_t>(sel_want_);
  sel.b = 0;
  sel.c = static_cast<std::int64_t>(k_);
  ctx.control_broadcast(sel);
  start_selection_iteration(ctx);
}

void OrderedCoordinator::begin_internal_rebuild(CoordCtx& ctx) {
  phase_ = Phase::kSelect;
  sel_type_ = SelType::kInternal;
  sel_want_ = k_;
  sel_winners_.clear();
  Control sel;
  sel.op = static_cast<std::int64_t>(OrderedControlOp::kStartSelection);
  sel.a = static_cast<std::int64_t>(sel_want_);
  sel.b = 1;
  sel.c = static_cast<std::int64_t>(k_);
  ctx.control_broadcast(sel);
  start_selection_iteration(ctx);
}

void OrderedCoordinator::start_selection_iteration(CoordCtx& ctx) {
  if (sel_type_ == SelType::kFull) {
    start_session(ctx, Direction::kMax, OrderedSessionGroup::kSelectAll, n_);
  } else {
    start_session(ctx, Direction::kMax, OrderedSessionGroup::kSelectMembers,
                  k_);
  }
}

void OrderedCoordinator::finish_selection(CoordCtx& ctx) {
  if (sel_type_ == SelType::kFull) {
    order_.clear();
    known_w_.clear();
    std::fill(in_topk_.begin(), in_topk_.end(), char{0});
    for (std::size_t r = 0; r < k_; ++r) {
      const auto& win = sel_winners_[r];
      order_.push_back(win.second);
      known_w_.push_back(to_w(win.second, win.first));
      in_topk_[win.second] = 1;
    }
    rebuild_id_lists();
    if (boundary_active_) {
      tplus_w_ = known_w_[k_ - 1];
      tminus_w_ = to_w(sel_winners_[k_].second, sel_winners_[k_].first);
      mid_w_ = midpoint(tminus_w_, tplus_w_);
    } else {
      mid_w_ = kMinusInf;
    }
  } else {
    order_.clear();
    known_w_.clear();
    for (const auto& win : sel_winners_) {
      order_.push_back(win.second);
      known_w_.push_back(to_w(win.second, win.first));
    }
  }
  cycle_done(ctx);
}

void OrderedCoordinator::cycle_done(CoordCtx& ctx) {
  phase_ = Phase::kIdle;
  min_w_.reset();
  max_w_.reset();
  cycle_below_ = cycle_out_ = cycle_internal_ = false;
  if (resync_pending_) {
    resync_pending_ = false;
    begin_full_reset(ctx);
    return;
  }
  // Violations that arrived while the cycle ran (possible only under a
  // tick budget or delay) convene the next cycle immediately.
  if (pending_below_ || pending_out_ || pending_internal_) start_cycle(ctx);
}

void OrderedCoordinator::abort_cycle() {
  phase_ = Phase::kIdle;
  sess_.active = false;
  pending_select_ = false;
  select_gap_ = 0;
  min_w_.reset();
  max_w_.reset();
  cycle_below_ = cycle_out_ = cycle_internal_ = false;
}

void OrderedCoordinator::rebuild_id_lists() {
  topk_ids_.clear();
  for (NodeId id = 0; id < n_; ++id) {
    if (in_topk_[id]) topk_ids_.push_back(id);
  }
}

// ---------------------------------------------------------------------------
// Fault hooks: crash, recovery, dynamic k
// ---------------------------------------------------------------------------

void OrderedCoordinator::on_node_down(CoordCtx& ctx, NodeId id) {
  bool structural = in_topk_[id] != 0;
  if (phase_ == Phase::kSelect) {
    for (const auto& w : sel_winners_) {
      structural = structural || w.second == id;
    }
  }
  if (in_topk_[id]) {
    in_topk_[id] = 0;
    for (std::size_t r = 0; r < order_.size(); ++r) {
      if (order_[r] == id) {
        order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(r));
        known_w_.erase(known_w_.begin() + static_cast<std::ptrdiff_t>(r));
        break;
      }
    }
    rebuild_id_lists();
  }
  if (structural) {
    // A member (or in-flight selection winner) took its rank with it:
    // re-establish the whole order over the remaining live nodes.
    abort_cycle();
    begin_full_reset(ctx);
  }
  // A crashed non-member mid-session is just a lost report, which the
  // session machinery already tolerates.
}

void OrderedCoordinator::on_node_up(CoordCtx& ctx, NodeId) {
  // The returning node's rank is unknowable without fresh values and its
  // outage may have shifted every slot: re-rank everyone. The reset's
  // announce order doubles as the re-sync assignment, so no probe
  // round-trip machinery is needed.
  ++mstats_.resyncs;
  if (phase_ == Phase::kIdle && !sess_.active) {
    begin_full_reset(ctx);
  } else {
    resync_pending_ = true;
  }
}

void OrderedCoordinator::on_set_k(CoordCtx& ctx, std::size_t k) {
  if (k == 0 || k > n_) {
    throw std::invalid_argument("OrderedCoordinator: set_k out of range");
  }
  k_ = k;
  boundary_active_ = k_ < n_;
  abort_cycle();
  begin_full_reset(ctx);
}

}  // namespace topkmon
