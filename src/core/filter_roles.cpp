#include "core/filter_roles.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/beacon.hpp"

namespace topkmon {

namespace {

constexpr std::int64_t pack_session_c(std::uint32_t epoch,
                                      std::uint32_t log_n) noexcept {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(epoch) << 8) | log_n);
}

// Suspicion thresholds (Options::suspect). A healthy violating node's
// report lands within the step that convened the repair (instant /
// flushed-delay policies), so three consecutive signalled-but-silent
// steps clear honest latency while catching mute and heavily lagging
// nodes quickly. Two lost probe deadlines (the second already backed
// off) escalate to quarantine; two contradicting reports confirm
// staleness against boundary races.
constexpr std::uint32_t kSilenceStrikes = 3;
constexpr std::uint32_t kSuspectAttempts = 2;
constexpr std::uint8_t kStaleStrikes = 2;

}  // namespace

// ---------------------------------------------------------------------------
// FilterNode
// ---------------------------------------------------------------------------

void FilterNode::on_init(NodeCtx& ctx, Value) {
  // The initial filter is [-inf, +inf]: every value is contained, so an
  // unchanged value can never need an observe until a boundary arrives.
  ctx.set_needs_observe(false);
}

void FilterNode::on_observe(NodeCtx& ctx, Value v, TimeStep) {
  // Algorithm 1, lines 2-9 (node side): check the filter locally; a
  // violation is free knowledge in the model, raised as a control signal.
  // Needs-observe contract: while the value violates the filter the node
  // re-raises its signal every step (the coordinator counts every one,
  // and under message loss a re-raise is what restarts an aborted
  // repair), so it must stay in the observe set even when the value is
  // unchanged; a contained value makes on_observe a no-op.
  if (filter_.contains(v)) {
    ctx.set_needs_observe(false);
    return;
  }
  ctx.set_needs_observe(true);
  pending_ = member_ ? Pending::kTop : Pending::kBot;
  ctx.signal(member_ ? 1 : 0);
}

void FilterNode::on_message(NodeCtx& ctx, const Message& m) {
  switch (m.kind) {
    case MsgKind::kRoundBeacon: {
      if (!in_session_) break;
      const auto beacon = unpack_beacon_b(m.b);
      if (beacon.epoch != epoch_) break;
      // A beacon without a holder means "no report seen yet" and carries
      // no deactivation power.
      if (beacon.holder == kNoHolder) break;
      has_beacon_ = true;
      beacon_value_ = m.a;
      beacon_holder_ = beacon.holder;
      break;
    }
    case MsgKind::kWinnerAnnounce: {
      // During FILTERRESET the announce order is common knowledge: the
      // first k winners are the new top-k, the (k+1)-st is the best
      // outsider. Each node derives its own membership locally.
      if (!selecting_) break;
      ++announces_seen_;
      if (unpack_beacon_b(m.b).holder == ctx.id()) {
        excluded_ = true;
        member_ = (announces_seen_ <= k_);
      }
      break;
    }
    case MsgKind::kFilterUpdate: {
      // Node-side effect of the boundary broadcast: rebuild the filter
      // from (M, own membership belief). Ends any selection phase. The
      // new boundary may exclude the current value — the next step's
      // observe must then run (and signal) even if the value is static.
      selecting_ = false;
      filter_ = boundary_filter(m.a, member_);
      ctx.set_needs_observe(!filter_.contains(ctx.value()));
      break;
    }
    case MsgKind::kProbe: {
      // Crash-recovery re-sync, node side: report the current value.
      // b = 1 distinguishes the reply from protocol-session reports.
      Message reply;
      reply.kind = MsgKind::kValueReport;
      reply.a = ctx.value();
      reply.b = 1;
      ctx.send(reply);
      break;
    }
    case MsgKind::kFilterAssign: {
      // Re-sync completion: an explicit per-node (membership, boundary)
      // assignment — unlike kFilterUpdate it overrides the local
      // membership belief, which may be stale after an outage. Delivered
      // as a unicast, it re-anchors only this node; everyone else's
      // filter is untouched. A violating value primes pending_, so the
      // kStartSession control the coordinator convenes for it (delivered
      // the same tick, after this message) finds the node ready to join.
      member_ = m.a != 0;
      filter_ = boundary_filter(m.b, member_);
      selecting_ = false;
      in_session_ = false;
      active_ = false;
      if (filter_.contains(ctx.value())) {
        pending_ = Pending::kNone;
        ctx.set_needs_observe(false);
      } else {
        pending_ = member_ ? Pending::kTop : Pending::kBot;
        ctx.set_needs_observe(true);
      }
      break;
    }
    default:
      break;  // kProtocolStart etc. are informational for nodes
  }
}

void FilterNode::on_control(NodeCtx& ctx, const Control& c) {
  switch (static_cast<FilterControlOp>(c.op)) {
    case FilterControlOp::kStartSelection: {
      selecting_ = true;
      excluded_ = false;
      announces_seen_ = 0;
      member_ = false;
      break;
    }
    case FilterControlOp::kStartSession: {
      const auto dir = c.a == 1 ? Direction::kMin : Direction::kMax;
      const auto group = static_cast<FilterSessionGroup>(c.b);
      const auto epoch = static_cast<std::uint32_t>(c.c >> 8);
      const auto log_n = static_cast<std::uint32_t>(c.c & 0xFF);

      bool join = false;
      switch (group) {
        case FilterSessionGroup::kViolTop:
          join = (pending_ == Pending::kTop);
          if (join) pending_ = Pending::kNone;
          break;
        case FilterSessionGroup::kViolBot:
          join = (pending_ == Pending::kBot);
          if (join) pending_ = Pending::kNone;
          break;
        case FilterSessionGroup::kAllTop:
          join = member_;
          break;
        case FilterSessionGroup::kAllBot:
          join = !member_;
          break;
        case FilterSessionGroup::kSelectRest:
          join = selecting_ && !excluded_;
          break;
      }
      in_session_ = join;
      if (!join) break;
      active_ = true;
      dir_ = dir;
      epoch_ = epoch;
      log_n_ = log_n;
      round_ = 0;
      has_beacon_ = false;
      beacon_holder_ = kNoHolder;
      ctx.arm_timer();
      break;
    }
  }
}

void FilterNode::on_timer(NodeCtx& ctx) {
  // One protocol round (Algorithm 2, node side).
  if (!in_session_ || !active_) return;
  const std::uint32_t r = round_++;

  // Line 8: a node beaten by the broadcast extremum deactivates.
  if (has_beacon_ &&
      !beats(dir_, ctx.value(), ctx.id(), beacon_value_, beacon_holder_)) {
    active_ = false;
    return;
  }

  // Line 11: Bernoulli(2^r / N) coin flip; the final round has p = 1.
  if (ctx.rng().bernoulli_pow2(r, log_n_)) {
    Message report;
    report.kind = MsgKind::kValueReport;
    report.a = ctx.value();
    ctx.send(report);
    active_ = false;
    return;
  }
  if (r >= log_n_) {
    active_ = false;  // defensive; the final-round coin always succeeds
    return;
  }
  ctx.arm_timer();
}

void FilterNode::on_recover(NodeCtx& ctx) {
  // Machine state (filter_, member_, the RNG) survives the outage; the
  // session-scoped state must not — any protocol execution convened
  // while this node was down proceeded without it, so replaying a stale
  // round counter, beacon view or selection role would corrupt the run.
  in_session_ = false;
  active_ = false;
  selecting_ = false;
  excluded_ = false;
  announces_seen_ = 0;
  pending_ = Pending::kNone;
  has_beacon_ = false;
  beacon_holder_ = kNoHolder;
  // The surviving filter may predate boundaries renegotiated during the
  // outage: stay in the observe set until the re-sync handshake
  // re-anchors it (kFilterAssign re-certifies via its contains check).
  ctx.set_needs_observe(true);
}

// ---------------------------------------------------------------------------
// FilterCoordinator
// ---------------------------------------------------------------------------

FilterCoordinator::FilterCoordinator(std::size_t k, Options opts)
    : k_(k), opts_(opts) {
  // A zero quota is meaningful only for a shard of a hierarchical
  // deployment: every node is an outsider whose filter watches the root
  // boundary from below.
  if (k == 0 && opts_.pinned_boundary == nullptr) {
    throw std::invalid_argument("FilterCoordinator: k must be >= 1");
  }
  if (opts_.epsilon < 0) {
    throw std::invalid_argument("FilterCoordinator: epsilon must be >= 0");
  }
}

void FilterCoordinator::on_init(CoordCtx& ctx) {
  n_ = ctx.n();
  n_live_ = ctx.live_count();
  if (k_ > n_) {
    throw std::invalid_argument("FilterCoordinator: k > n");
  }
  in_topk_.assign(n_, 0);
  if (opts_.suspect) {
    suspects_.clear();
    quarantined_.assign(n_, 0);
    n_quarantined_ = 0;
    silent_steps_.assign(n_, 0);
    sig_side_.assign(n_, 0);
    sig_step_.assign(n_, 0);
    stale_strikes_.assign(n_, 0);
  }
  // A sharded full-quota coordinator cannot take the degenerate shortcut:
  // its minimum must keep watching the root boundary from above.
  degenerate_ = (k_ == n_) && opts_.pinned_boundary == nullptr;
  if (degenerate_) {
    // All nodes are the answer forever; unbounded filters, zero messages.
    std::fill(in_topk_.begin(), in_topk_.end(), char{1});
    topk_ids_.clear();
    for (NodeId id = 0; id < n_; ++id) topk_ids_.push_back(id);
    return;
  }
  begin_reset(ctx);
}

void FilterCoordinator::on_step_begin(CoordCtx& ctx, TimeStep t) {
  if (degenerate_) return;
  cur_step_ = t;
  const auto& signals = ctx.signals();
  if (!signals.empty()) {
    if (opts_.suspect) {
      // Quarantined nodes' signals are ignored: their violation cannot
      // be repaired through reports the coordinator distrusts, and
      // convening sessions for them would thrash aborts every step.
      std::uint64_t counted = 0;
      for (const Signal& s : signals) {
        if (quarantined_[s.from] != 0) continue;
        ++counted;
        (s.code == 1 ? pending_top_ : pending_bot_) = true;
        sig_side_[s.from] = s.code == 1 ? 1 : 2;
        sig_step_[s.from] = t;
        // A node that keeps signalling without any charged message
        // landing is mute or lagging past the repair window.
        if (++silent_steps_[s.from] >= kSilenceStrikes) {
          suspect_node(ctx, s.from);
        }
      }
      if (counted > 0) {
        ++mstats_.violation_steps;
        mstats_.violations += counted;
      }
    } else {
      ++mstats_.violation_steps;
      mstats_.violations += signals.size();
      for (const Signal& s : signals) {
        (s.code == 1 ? pending_top_ : pending_bot_) = true;
      }
    }
  }
  if (opts_.suspect && !suspects_.empty()) tick_release_probes(ctx);
  if (phase_ != Phase::kIdle) return;
  if (topk_ids_.size() != k_) {
    // The answer was never established — a FILTERRESET aborted under
    // message loss before any boundary reached the nodes, so no filter
    // violation can ever convene repair. Defensively re-run the
    // selection — every step by default; under Options::reset_backoff
    // the retry waits an exponentially growing, RNG-jittered number of
    // steps, so heavy loss cannot thrash a full selection's traffic per
    // step (each skip is counted in reset_backoffs).
    if (opts_.reset_backoff && backoff_wait_ > 0) {
      --backoff_wait_;
      ++mstats_.reset_backoffs;
      return;
    }
    ++mstats_.full_rebuilds;
    if (opts_.reset_backoff) {
      const auto window = std::uint32_t{1} << std::min(backoff_attempt_, 6u);
      const auto jitter = ctx.rng().uniform_below(window);
      backoff_wait_ = window - 1 + static_cast<std::uint32_t>(jitter);
      ++backoff_attempt_;
    }
    begin_reset(ctx);
    return;
  }
  backoff_wait_ = 0;
  backoff_attempt_ = 0;
  if (pending_top_ || pending_bot_) start_cycle(ctx);
}

void FilterCoordinator::on_message(CoordCtx& ctx, const Message& m) {
  if (opts_.suspect && quarantined_[m.from] != 0) {
    // The only message the coordinator trusts from a quarantined node is
    // a probe reply — it proves the node answers again and releases the
    // quarantine; session reports are exactly what quarantine distrusts.
    if (m.kind == MsgKind::kValueReport && m.b == 1) {
      handle_release_reply(ctx, m.from, m.a);
    }
    return;
  }
  if (opts_.suspect && m.kind == MsgKind::kValueReport) {
    // A charged report clears the silence streak and any pending
    // pre-quarantine suspicion — but only when it is *useful*: it lands
    // while a session or selection is still collecting, or it is an
    // explicit liveness reply (b == 1, re-sync / probe). A node lagging
    // beyond the session window keeps producing stragglers that arrive
    // after the repair already aborted; those must not launder its
    // silence, or a laggard is never convicted.
    if (session_active_ || phase_ != Phase::kIdle || m.b == 1) {
      silent_steps_[m.from] = 0;
      std::erase_if(suspects_, [&](const Suspect& s) {
        return s.id == m.from && !s.quarantined;
      });
    }
    check_stale_report(ctx, m.from, m.a);
    if (quarantined_[m.from] != 0) return;  // the check just escalated
  }
  if (m.kind == MsgKind::kValueReport && m.b == 1) {
    // Re-sync reply (session reports leave b at 0).
    handle_resync_reply(ctx, m.from, m.a);
    return;
  }
  if (!session_active_ || m.kind != MsgKind::kValueReport) return;
  if (!have_best_ ||
      beats(sdir_, m.a, m.from, best_value_, best_holder_)) {
    have_best_ = true;
    best_value_ = m.a;
    best_holder_ = m.from;
    improved_ = true;
  }
}

void FilterCoordinator::on_timer(CoordCtx& ctx) {
  tick_resyncs(ctx);
  if (opts_.suspect && !suspects_.empty()) tick_suspects(ctx);
  if (!session_active_) {
    // Inter-iteration gap of a FILTERRESET selection: the previous
    // iteration's winner announcement is in flight; convening the next
    // iteration before it lands would let the winner re-join. Zero ticks
    // under instant delivery.
    if (pending_select_) {
      if (select_gap_ > 0) {
        --select_gap_;
        ctx.arm_timer();
        return;
      }
      pending_select_ = false;
      start_session(ctx, Direction::kMax, FilterSessionGroup::kSelectRest, n_,
                    /*announce=*/true);
    }
    return;
  }
  // End of round sround_ (Algorithm 2, coordinator side): the round's
  // reports have been folded in via on_message.
  if (sround_ < slog_n_) {
    // Line 18: broadcast the running extremum (optionally only on change).
    if (!opts_.suppress_idle_broadcasts || improved_) {
      Message beacon;
      beacon.kind = MsgKind::kRoundBeacon;
      beacon.a = have_best_ ? best_value_ : kMinusInf;
      beacon.b = pack_beacon_b(sepoch_, have_best_ ? best_holder_ : kNoHolder);
      ctx.broadcast(beacon);
    }
    improved_ = false;
    ++sround_;
    ctx.arm_timer();
    return;
  }
  // Final round complete. Under a delayed policy, reports may still be in
  // flight: wait out the network's worst-case lag before concluding (zero
  // extra ticks under instant delivery).
  if (sflush_ > 0) {
    --sflush_;
    ctx.arm_timer();
    return;
  }
  // Under lossless delivery every still-active participant reported, so
  // the extremum is exact.
  conclude_session(ctx);
}

void FilterCoordinator::start_cycle(CoordCtx& ctx) {
  cycle_top_ = pending_top_;
  cycle_bot_ = pending_bot_;
  pending_top_ = pending_bot_ = false;
  min_v_.reset();
  max_v_.reset();
  if (cycle_top_) {
    // Line 5: violating former members run MINIMUMPROTOCOL(k).
    phase_ = Phase::kViolMin;
    start_session(ctx, Direction::kMin, FilterSessionGroup::kViolTop, k_,
                  /*announce=*/false);
  } else {
    // Line 7: violating outsiders run MAXIMUMPROTOCOL(n-k).
    phase_ = Phase::kViolMax;
    start_session(ctx, Direction::kMax, FilterSessionGroup::kViolBot, n_ - k_,
                  /*announce=*/false);
  }
}

void FilterCoordinator::start_session(CoordCtx& ctx, Direction dir,
                                      FilterSessionGroup group,
                                      std::uint64_t n_upper, bool announce) {
  ++mstats_.protocol_runs;
  sdir_ = dir;
  sepoch_ = ctx.next_protocol_epoch();
  slog_n_ = floor_log2(next_pow2(n_upper));
  sround_ = 0;
  sflush_ = ctx.flush_ticks();
  have_best_ = false;
  improved_ = false;
  best_holder_ = kNoHolder;
  session_active_ = true;
  announce_at_end_ = announce;

  Control start;
  start.op = static_cast<std::int64_t>(FilterControlOp::kStartSession);
  start.a = dir == Direction::kMin ? 1 : 0;
  start.b = static_cast<std::int64_t>(group);
  start.c = pack_session_c(sepoch_, slog_n_);
  ctx.control_broadcast(start);
  ctx.arm_timer();
}

void FilterCoordinator::conclude_session(CoordCtx& ctx) {
  session_active_ = false;
  if (announce_at_end_ && have_best_) {
    Message announce;
    announce.kind = MsgKind::kWinnerAnnounce;
    announce.a = best_value_;
    announce.b = pack_beacon_b(sepoch_, best_holder_);
    ctx.broadcast(announce);
  }
  if (!have_best_) {
    // Only possible under message loss: every report of the session was
    // dropped. Abandon the cycle; the next violation restarts repair.
    abort_cycle();
    return;
  }

  switch (phase_) {
    case Phase::kViolMin:
      min_v_ = best_value_;
      if (cycle_bot_) {
        phase_ = Phase::kViolMax;
        start_session(ctx, Direction::kMax, FilterSessionGroup::kViolBot,
                      n_ - k_, /*announce=*/false);
      } else {
        handler_transition(ctx);
      }
      break;
    case Phase::kViolMax:
      max_v_ = best_value_;
      handler_transition(ctx);
      break;
    case Phase::kFullSide:
      if (sdir_ == Direction::kMax) {
        max_v_ = best_value_;
      } else {
        min_v_ = best_value_;
      }
      decide(ctx);
      break;
    case Phase::kReset:
      // A repeat winner means its earlier announce was lost on its own
      // link (possible only under drops): it re-joined and won again, so
      // the selection order is corrupted beyond local repair — abandon
      // the reset. Deliberately checked AFTER the announce broadcast
      // above: the "redundant" announcement is what finally tells the
      // repeated winner it is excluded, so the next reset attempt can
      // succeed; suppressing it measured severalfold higher error rates
      // under loss (e15) for one saved message.
      for (const Winner& w : sel_winners_) {
        if (w.id == best_holder_) {
          abort_cycle();
          return;
        }
      }
      sel_winners_.push_back(Winner{best_holder_, best_value_});
      if (sel_winners_.size() < selection_target()) {
        const std::uint64_t gap = ctx.flush_ticks();
        if (gap == 0) {
          start_session(ctx, Direction::kMax, FilterSessionGroup::kSelectRest,
                        n_, /*announce=*/true);
        } else {
          pending_select_ = true;
          select_gap_ = gap;
          ctx.arm_timer();
        }
      } else {
        finish_reset(ctx);
      }
      break;
    case Phase::kIdle:
      break;  // unreachable
  }
}

void FilterCoordinator::handler_transition(CoordCtx& ctx) {
  // FILTERVIOLATIONHANDLER, lines 22-26: obtain the side extremum the
  // violations did not deliver (announced by a charged kProtocolStart).
  ++mstats_.handler_calls;
  // Sharded edge quotas: the missing side can be empty (k == n leaves no
  // outsiders, k == 0 leaves no members). Its extremum is the identity of
  // the empty max/min — running a session over zero participants would
  // only abort the cycle. Unreachable monolithically (1 <= k <= n-1 once
  // the degenerate k == n shortcut is taken).
  if (!max_v_.has_value() && k_ == n_) {
    max_v_ = kMinusInf;
    decide(ctx);
    return;
  }
  if (max_v_.has_value() && k_ == 0) {
    min_v_ = kPlusInf;
    decide(ctx);
    return;
  }
  phase_ = Phase::kFullSide;
  Message start;
  start.kind = MsgKind::kProtocolStart;
  if (!max_v_.has_value()) {
    start.a = 0;  // side: non-top-k
    ctx.broadcast(start);
    start_session(ctx, Direction::kMax, FilterSessionGroup::kAllBot, n_ - k_,
                  /*announce=*/false);
  } else {
    start.a = 1;  // side: top-k
    ctx.broadcast(start);
    start_session(ctx, Direction::kMin, FilterSessionGroup::kAllTop, k_,
                  /*announce=*/false);
  }
}

void FilterCoordinator::decide(CoordCtx& ctx) {
  // Lines 27-28: accumulate T+ and T- since the last reset.
  tplus_ = std::min(tplus_, *min_v_);
  tminus_ = std::max(tminus_, *max_v_);
  // Approx mode tolerates an inversion of up to 2·⌊ε/2⌋ before resetting
  // (core/approx_monitor.cpp explains the even rounding); ε = 0 exact.
  const Value slack = 2 * (opts_.epsilon / 2);
  if (tplus_ < tminus_ - slack) {
    // Line 30: the top-k set may have changed; recompute from scratch.
    begin_reset(ctx);
  } else {
    // Lines 32-33: halve the gap; at most log Δ times between resets.
    ++mstats_.midpoint_updates;
    apply_boundary(ctx, choose_boundary());
    cycle_done(ctx);
  }
}

void FilterCoordinator::begin_reset(CoordCtx& ctx) {
  // FILTERRESET, lines 37-39: k+1 repeated MAXIMUMPROTOCOL(n) runs; each
  // winner announcement doubles as the membership notification.
  ++mstats_.filter_resets;
  phase_ = Phase::kReset;
  sel_winners_.clear();
  Control sel;
  sel.op = static_cast<std::int64_t>(FilterControlOp::kStartSelection);
  ctx.control_broadcast(sel);
  start_session(ctx, Direction::kMax, FilterSessionGroup::kSelectRest, n_,
                /*announce=*/true);
}

void FilterCoordinator::finish_reset(CoordCtx& ctx) {
  // Under churn or quarantine the selection can finish with fewer than k
  // winners (selection_target() capped below k+1): install the partial
  // answer — topk_ids_.size() != k_ then keeps the defensive rebuild
  // retrying — instead of indexing past the winner list.
  const std::size_t members = std::min(k_, sel_winners_.size());
  std::fill(in_topk_.begin(), in_topk_.end(), char{0});
  for (std::size_t i = 0; i < members; ++i) in_topk_[sel_winners_[i].id] = 1;
  topk_ids_.clear();
  for (NodeId id = 0; id < n_; ++id) {
    if (in_topk_[id]) topk_ids_.push_back(id);
  }
  // Restart the T+/T- accumulation epoch at the fresh k-th/(k+1)-st values.
  // Sharded edge quotas substitute the identity of the empty side: k == 0
  // has no k-th member (T+ = +inf), k == n no (k+1)-st outsider
  // (T- = -inf). Monolithically both indices exist (the selection drew
  // k+1 <= n winners).
  tplus_ = members > 0 ? sel_winners_[members - 1].value : kPlusInf;
  tminus_ = k_ < sel_winners_.size() ? sel_winners_[k_].value : kMinusInf;
  // Lines 40-41.
  apply_boundary(ctx, choose_boundary());
  cycle_done(ctx);
}

Value FilterCoordinator::choose_boundary() const {
  // Algorithm 1 admits any boundary inside [T-, T+] (every member's value
  // is >= T+, every outsider's <= T-). Monolithic deployments halve the
  // gap; a shard adopts the root's shared boundary whenever the gap
  // contains it, so that in steady state every shard is anchored on one
  // global threshold and "boundary() != pin" detects exactly the shards
  // whose local top-k boundary crossed the root filter.
  if (opts_.pinned_boundary != nullptr && opts_.pinned_boundary->has_value()) {
    const Value r = **opts_.pinned_boundary;
    if (tminus_ <= r && r <= tplus_) return r;
  }
  return midpoint(tminus_, tplus_);
}

void FilterCoordinator::reanchor(CoordCtx& ctx) {
  if (degenerate_ || phase_ != Phase::kIdle || session_active_) return;
  if (opts_.pinned_boundary == nullptr ||
      !opts_.pinned_boundary->has_value()) {
    return;
  }
  const Value r = **opts_.pinned_boundary;
  if (mid_ == r) return;
  if (topk_ids_.size() == k_ && tminus_ <= r && r <= tplus_) {
    // The new root boundary lies inside the accumulated gap: re-anchor the
    // node filters on it without touching membership.
    ++mstats_.midpoint_updates;
    apply_boundary(ctx, r);
  } else {
    // The pin fell outside [T-, T+] (the root moved the boundary right
    // after this shard resolved a cycle on its own, or the answer was
    // never established): a fresh selection re-establishes the gap around
    // current values and re-evaluates the pin.
    begin_reset(ctx);
  }
}

void FilterCoordinator::apply_boundary(CoordCtx& ctx, Value m) {
  mid_ = m;
  Message update;
  update.kind = MsgKind::kFilterUpdate;
  update.a = m;
  update.b = opts_.epsilon;
  ctx.broadcast(update);
}

void FilterCoordinator::cycle_done(CoordCtx& ctx) {
  phase_ = Phase::kIdle;
  min_v_.reset();
  max_v_.reset();
  // Violations that arrived while the cycle ran (possible only under a
  // tick budget) convene the next cycle immediately.
  if (pending_top_ || pending_bot_) start_cycle(ctx);
}

void FilterCoordinator::abort_cycle() {
  phase_ = Phase::kIdle;
  session_active_ = false;
  pending_select_ = false;
  select_gap_ = 0;
  min_v_.reset();
  max_v_.reset();
}

// ---------------------------------------------------------------------------
// Fault hooks: crash, recovery re-sync, dynamic k
// ---------------------------------------------------------------------------

void FilterCoordinator::on_node_down(CoordCtx& ctx, NodeId id) {
  if (degenerate_) return;  // a crash under k == n is rejected by the plan
  n_live_ = ctx.live_count();
  std::erase_if(resync_, [id](const Resync& r) { return r.id == id; });
  if (opts_.suspect) clear_suspicion_state(id);
  // Structural loss: a member of the answer (or a winner of the in-flight
  // FILTERRESET selection, which would otherwise be installed dead) takes
  // the k-th position with it — re-find it over the remaining live nodes.
  // A crashed non-member mid-session is just a lost report, which the
  // session machinery already tolerates.
  bool structural = in_topk_[id] != 0;
  if (phase_ == Phase::kReset) {
    for (const Winner& w : sel_winners_) {
      structural = structural || w.id == id;
    }
  }
  if (in_topk_[id]) {
    in_topk_[id] = 0;
    topk_ids_.erase(std::remove(topk_ids_.begin(), topk_ids_.end(), id),
                    topk_ids_.end());
  }
  if (structural) {
    abort_cycle();
    begin_reset(ctx);
  }
}

void FilterCoordinator::on_node_up(CoordCtx& ctx, NodeId id) {
  if (degenerate_) return;
  n_live_ = ctx.live_count();
  for (const Resync& r : resync_) {
    if (r.id == id) return;  // already pending (defensive; cleared on down)
  }
  if (opts_.replay && phase_ == Phase::kIdle && !session_active_ &&
      topk_ids_.size() == k_) {
    // Warm-standby recovery: the coordinator's own state is the collapsed
    // assignment log — the node's membership (an outage always cleared
    // it) and the established boundary — so replay it in one message
    // instead of the probe/reply/assign round trip. The node's contains
    // check on the assignment primes a violation signal if its returning
    // value belongs above the boundary, which convenes repair exactly
    // like a signalled violation; no re-sync entry, no retry storm.
    ++mstats_.assign_replays;
    Message assign;
    assign.kind = MsgKind::kFilterAssign;
    assign.a = in_topk_[id];
    assign.b = mid_;
    ctx.unicast(id, assign);
    return;
  }
  ++mstats_.resyncs;
  resync_.push_back(Resync{id, probe_timeout(ctx), 0});
  Message probe;
  probe.kind = MsgKind::kProbe;
  ctx.unicast(id, probe);
  ctx.arm_timer();  // drive the retry countdown
}

void FilterCoordinator::on_set_k(CoordCtx& ctx, std::size_t k) {
  if (k == k_) return;
  k_ = k;
  backoff_wait_ = 0;
  backoff_attempt_ = 0;
  abort_cycle();
  // Violations signalled against the old k's filters are stale: the
  // selection below re-evaluates every node anyway.
  pending_top_ = pending_bot_ = false;
  if (k_ == n_ && opts_.pinned_boundary == nullptr) {
    // Growing into the degenerate configuration: all nodes are the answer
    // forever (the plan guarantees they are all live at this point).
    degenerate_ = true;
    std::fill(in_topk_.begin(), in_topk_.end(), char{1});
    topk_ids_.clear();
    for (NodeId id = 0; id < n_; ++id) topk_ids_.push_back(id);
    return;
  }
  degenerate_ = false;
  begin_reset(ctx);
}

void FilterCoordinator::tick_resyncs(CoordCtx& ctx) {
  if (resync_.empty()) return;
  for (Resync& r : resync_) {
    if (r.countdown > 0) {
      --r.countdown;
      continue;
    }
    // The probe or its reply was lost (or the reply arrived mid-cycle and
    // was deferred): resend, with capped exponential backoff so a long
    // outage of the return path cannot flood the link.
    ++mstats_.resync_retries;
    r.countdown = probe_timeout(ctx)
                  << std::min<std::uint32_t>(++r.attempt, 6);
    Message probe;
    probe.kind = MsgKind::kProbe;
    ctx.unicast(r.id, probe);
  }
  ctx.arm_timer();  // keep the countdown ticking while any re-sync pends
}

void FilterCoordinator::handle_resync_reply(CoordCtx& ctx, NodeId from,
                                            Value v) {
  auto it = std::find_if(resync_.begin(), resync_.end(),
                         [from](const Resync& r) { return r.id == from; });
  if (it == resync_.end()) return;  // late duplicate of a completed re-sync
  if (phase_ != Phase::kIdle || session_active_) {
    // Re-admitting mid-cycle would corrupt the running session's quorum;
    // park the reply — the retry probe finds the coordinator idle later.
    it->countdown = probe_timeout(ctx);
    return;
  }
  resync_.erase(it);
  if (topk_ids_.size() != k_) {
    // No established answer to re-admit into: the next selection
    // re-integrates the node along with everyone else.
    begin_reset(ctx);
    return;
  }
  // Re-admit as an outsider anchored on the established boundary. The
  // assignment unicast lands before any control queued below (messages
  // precede controls within a node phase), so a violating node is primed
  // to join the repair session its own violation convenes.
  Message assign;
  assign.kind = MsgKind::kFilterAssign;
  assign.a = 0;  // non-member: the crash removed it from the answer
  assign.b = mid_;
  ctx.unicast(from, assign);
  if (v > mid_ + opts_.epsilon / 2) {
    // The returning value belongs above the (ε/2-widened) boundary:
    // handle it exactly like a signalled bottom-side filter violation.
    ++mstats_.violations;
    pending_bot_ = true;
    start_cycle(ctx);
  }
}

// ---------------------------------------------------------------------------
// Suspicion / quarantine (Options::suspect)
// ---------------------------------------------------------------------------

void FilterCoordinator::send_probe(CoordCtx& ctx, NodeId id) {
  Message probe;
  probe.kind = MsgKind::kProbe;
  ctx.unicast(id, probe);
}

void FilterCoordinator::suspect_node(CoordCtx& ctx, NodeId id) {
  for (const Suspect& s : suspects_) {
    if (s.id == id) return;  // already suspected or quarantined
  }
  ++mstats_.suspicions;
  suspects_.push_back(Suspect{id, probe_timeout(ctx), 0, false, 0, 0});
  send_probe(ctx, id);
  ctx.arm_timer();  // drive the probe deadline
}

void FilterCoordinator::quarantine_node(CoordCtx& ctx, NodeId id, bool stale) {
  Suspect* entry = nullptr;
  for (Suspect& s : suspects_) {
    if (s.id == id) entry = &s;
  }
  if (entry == nullptr) {
    // Stale detection quarantines directly, without a silence suspicion.
    suspects_.push_back(Suspect{id, 0, 0, false, 0, 0});
    entry = &suspects_.back();
  }
  if (entry->quarantined) return;
  entry->quarantined = true;
  entry->release_wait = 1;  // first release probe next step
  entry->release_attempt = 0;
  quarantined_[id] = 1;
  ++n_quarantined_;
  ++mstats_.quarantines;
  if (stale) ++mstats_.stale_detections;
  // Defensive removal, exactly like a crash: a quarantined member (or
  // selection winner) would pin a value the coordinator distrusts into
  // the answer, so the k-th position is re-found over the nodes it still
  // trusts — the reset's fresh boundary is the defensive widen that
  // covers the vacated slot.
  bool structural = in_topk_[id] != 0;
  if (phase_ == Phase::kReset) {
    for (const Winner& w : sel_winners_) {
      structural = structural || w.id == id;
    }
  }
  if (in_topk_[id]) {
    in_topk_[id] = 0;
    topk_ids_.erase(std::remove(topk_ids_.begin(), topk_ids_.end(), id),
                    topk_ids_.end());
  }
  if (structural) {
    abort_cycle();
    begin_reset(ctx);
  }
}

void FilterCoordinator::tick_suspects(CoordCtx& ctx) {
  bool ticking = false;
  for (Suspect& s : suspects_) {
    if (s.quarantined) continue;  // release probing is step-driven
    if (s.countdown > 0) {
      --s.countdown;
      ticking = true;
      continue;
    }
    if (++s.attempt >= kSuspectAttempts) {
      quarantine_node(ctx, s.id, /*stale=*/false);
      continue;
    }
    s.countdown = probe_timeout(ctx) << std::min(s.attempt, 6u);
    send_probe(ctx, s.id);
    ticking = true;
  }
  if (ticking) ctx.arm_timer();
}

void FilterCoordinator::tick_release_probes(CoordCtx& ctx) {
  // Step-driven (not tick-driven) on purpose: a mute node answers no
  // probe until it heals, and a tick-driven deadline would keep the
  // coordinator timer armed forever — the settle loop would never
  // quiesce under an unbudgeted network policy.
  for (Suspect& s : suspects_) {
    if (!s.quarantined) continue;
    if (s.release_wait > 0) {
      --s.release_wait;
      continue;
    }
    // Cap the backoff at 16 steps: a release probe is one unicast per
    // window, and a healed node should not sit excluded for most of a
    // run because its quarantine happened to be old.
    s.release_wait = std::uint32_t{1}
                     << std::min(++s.release_attempt, 4u);
    send_probe(ctx, s.id);
  }
}

void FilterCoordinator::handle_release_reply(CoordCtx& ctx, NodeId from,
                                             Value v) {
  auto it = std::find_if(suspects_.begin(), suspects_.end(),
                         [from](const Suspect& s) { return s.id == from; });
  if (it == suspects_.end() || !it->quarantined) return;
  if (phase_ != Phase::kIdle || session_active_) {
    // Re-admitting mid-cycle would corrupt the running session's quorum;
    // the next release probe finds the coordinator idle later.
    it->release_wait = 1;
    it->release_attempt = 0;
    return;
  }
  clear_suspicion_state(from);
  if (topk_ids_.size() != k_) {
    begin_reset(ctx);  // the selection re-integrates it with everyone else
    return;
  }
  // Re-admit as an outsider anchored on the established boundary, exactly
  // like a crash-recovery re-sync completion. A stale node that answered
  // with its frozen value simply earns its next quarantine through the
  // contradiction strikes; a healed one converges here.
  Message assign;
  assign.kind = MsgKind::kFilterAssign;
  assign.a = 0;
  assign.b = mid_;
  ctx.unicast(from, assign);
  if (v > mid_ + opts_.epsilon / 2) {
    ++mstats_.violations;
    pending_bot_ = true;
    start_cycle(ctx);
  }
}

void FilterCoordinator::check_stale_report(CoordCtx& ctx, NodeId from,
                                           Value v) {
  // A signal pins which side of the boundary the node's *true* value is
  // on (signals come from the uncharged control plane — the degradations
  // cannot forge them): side 1 means a member fell below the boundary,
  // side 2 an outsider rose above it. A report landing on the
  // contradicted side is a strike; consistency clears the record
  // (boundary races can produce isolated contradictions). The anchor
  // must be from the *current* step: a persistent violator re-raises
  // its signal every step (the needs-observe contract), so a truly
  // stale node always has a same-step anchor — while an honest node
  // whose value hovers across the boundary stops signalling the moment
  // its violation clears, and its in-flight reports are never judged
  // against the outdated side.
  if (sig_side_[from] == 0 || sig_step_[from] != cur_step_) {
    return;
  }
  const Value half = opts_.epsilon / 2;
  const bool contradicts = (sig_side_[from] == 1 && v >= mid_ - half) ||
                           (sig_side_[from] == 2 && v <= mid_ + half);
  if (!contradicts) {
    stale_strikes_[from] = 0;
    return;
  }
  if (++stale_strikes_[from] >= kStaleStrikes) {
    quarantine_node(ctx, from, /*stale=*/true);
  }
}

void FilterCoordinator::clear_suspicion_state(NodeId id) {
  std::erase_if(suspects_, [&](const Suspect& s) {
    if (s.id != id) return false;
    if (s.quarantined) {
      quarantined_[id] = 0;
      --n_quarantined_;
    }
    return true;
  });
  silent_steps_[id] = 0;
  sig_side_[id] = 0;
  sig_step_[id] = 0;
  stale_strikes_[id] = 0;
}

}  // namespace topkmon
