#include "core/filter_roles.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/beacon.hpp"

namespace topkmon {

namespace {

constexpr std::int64_t pack_session_c(std::uint32_t epoch,
                                      std::uint32_t log_n) noexcept {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(epoch) << 8) | log_n);
}

}  // namespace

// ---------------------------------------------------------------------------
// FilterNode
// ---------------------------------------------------------------------------

void FilterNode::on_init(NodeCtx& ctx, Value) {
  // The initial filter is [-inf, +inf]: every value is contained, so an
  // unchanged value can never need an observe until a boundary arrives.
  ctx.set_needs_observe(false);
}

void FilterNode::on_observe(NodeCtx& ctx, Value v, TimeStep) {
  // Algorithm 1, lines 2-9 (node side): check the filter locally; a
  // violation is free knowledge in the model, raised as a control signal.
  // Needs-observe contract: while the value violates the filter the node
  // re-raises its signal every step (the coordinator counts every one,
  // and under message loss a re-raise is what restarts an aborted
  // repair), so it must stay in the observe set even when the value is
  // unchanged; a contained value makes on_observe a no-op.
  if (filter_.contains(v)) {
    ctx.set_needs_observe(false);
    return;
  }
  ctx.set_needs_observe(true);
  pending_ = member_ ? Pending::kTop : Pending::kBot;
  ctx.signal(member_ ? 1 : 0);
}

void FilterNode::on_message(NodeCtx& ctx, const Message& m) {
  switch (m.kind) {
    case MsgKind::kRoundBeacon: {
      if (!in_session_) break;
      const auto beacon = unpack_beacon_b(m.b);
      if (beacon.epoch != epoch_) break;
      // A beacon without a holder means "no report seen yet" and carries
      // no deactivation power.
      if (beacon.holder == kNoHolder) break;
      has_beacon_ = true;
      beacon_value_ = m.a;
      beacon_holder_ = beacon.holder;
      break;
    }
    case MsgKind::kWinnerAnnounce: {
      // During FILTERRESET the announce order is common knowledge: the
      // first k winners are the new top-k, the (k+1)-st is the best
      // outsider. Each node derives its own membership locally.
      if (!selecting_) break;
      ++announces_seen_;
      if (unpack_beacon_b(m.b).holder == ctx.id()) {
        excluded_ = true;
        member_ = (announces_seen_ <= k_);
      }
      break;
    }
    case MsgKind::kFilterUpdate: {
      // Node-side effect of the boundary broadcast: rebuild the filter
      // from (M, own membership belief). Ends any selection phase. The
      // new boundary may exclude the current value — the next step's
      // observe must then run (and signal) even if the value is static.
      selecting_ = false;
      filter_ = member_ ? Filter{m.a, kPlusInf} : Filter{kMinusInf, m.a};
      ctx.set_needs_observe(!filter_.contains(ctx.value()));
      break;
    }
    default:
      break;  // kProtocolStart etc. are informational for nodes
  }
}

void FilterNode::on_control(NodeCtx& ctx, const Control& c) {
  switch (static_cast<FilterControlOp>(c.op)) {
    case FilterControlOp::kStartSelection: {
      selecting_ = true;
      excluded_ = false;
      announces_seen_ = 0;
      member_ = false;
      break;
    }
    case FilterControlOp::kStartSession: {
      const auto dir = c.a == 1 ? Direction::kMin : Direction::kMax;
      const auto group = static_cast<FilterSessionGroup>(c.b);
      const auto epoch = static_cast<std::uint32_t>(c.c >> 8);
      const auto log_n = static_cast<std::uint32_t>(c.c & 0xFF);

      bool join = false;
      switch (group) {
        case FilterSessionGroup::kViolTop:
          join = (pending_ == Pending::kTop);
          if (join) pending_ = Pending::kNone;
          break;
        case FilterSessionGroup::kViolBot:
          join = (pending_ == Pending::kBot);
          if (join) pending_ = Pending::kNone;
          break;
        case FilterSessionGroup::kAllTop:
          join = member_;
          break;
        case FilterSessionGroup::kAllBot:
          join = !member_;
          break;
        case FilterSessionGroup::kSelectRest:
          join = selecting_ && !excluded_;
          break;
      }
      in_session_ = join;
      if (!join) break;
      active_ = true;
      dir_ = dir;
      epoch_ = epoch;
      log_n_ = log_n;
      round_ = 0;
      has_beacon_ = false;
      beacon_holder_ = kNoHolder;
      ctx.arm_timer();
      break;
    }
  }
}

void FilterNode::on_timer(NodeCtx& ctx) {
  // One protocol round (Algorithm 2, node side).
  if (!in_session_ || !active_) return;
  const std::uint32_t r = round_++;

  // Line 8: a node beaten by the broadcast extremum deactivates.
  if (has_beacon_ &&
      !beats(dir_, ctx.value(), ctx.id(), beacon_value_, beacon_holder_)) {
    active_ = false;
    return;
  }

  // Line 11: Bernoulli(2^r / N) coin flip; the final round has p = 1.
  if (ctx.rng().bernoulli_pow2(r, log_n_)) {
    Message report;
    report.kind = MsgKind::kValueReport;
    report.a = ctx.value();
    ctx.send(report);
    active_ = false;
    return;
  }
  if (r >= log_n_) {
    active_ = false;  // defensive; the final-round coin always succeeds
    return;
  }
  ctx.arm_timer();
}

// ---------------------------------------------------------------------------
// FilterCoordinator
// ---------------------------------------------------------------------------

FilterCoordinator::FilterCoordinator(std::size_t k, Options opts)
    : k_(k), opts_(opts) {
  // A zero quota is meaningful only for a shard of a hierarchical
  // deployment: every node is an outsider whose filter watches the root
  // boundary from below.
  if (k == 0 && opts_.pinned_boundary == nullptr) {
    throw std::invalid_argument("FilterCoordinator: k must be >= 1");
  }
}

void FilterCoordinator::on_init(CoordCtx& ctx) {
  n_ = ctx.n();
  if (k_ > n_) {
    throw std::invalid_argument("FilterCoordinator: k > n");
  }
  in_topk_.assign(n_, 0);
  // A sharded full-quota coordinator cannot take the degenerate shortcut:
  // its minimum must keep watching the root boundary from above.
  degenerate_ = (k_ == n_) && opts_.pinned_boundary == nullptr;
  if (degenerate_) {
    // All nodes are the answer forever; unbounded filters, zero messages.
    std::fill(in_topk_.begin(), in_topk_.end(), char{1});
    topk_ids_.clear();
    for (NodeId id = 0; id < n_; ++id) topk_ids_.push_back(id);
    return;
  }
  begin_reset(ctx);
}

void FilterCoordinator::on_step_begin(CoordCtx& ctx, TimeStep) {
  if (degenerate_) return;
  const auto& signals = ctx.signals();
  if (!signals.empty()) {
    ++mstats_.violation_steps;
    mstats_.violations += signals.size();
    for (const Signal& s : signals) {
      (s.code == 1 ? pending_top_ : pending_bot_) = true;
    }
  }
  if (phase_ != Phase::kIdle) return;
  if (topk_ids_.size() != k_) {
    // The answer was never established — a FILTERRESET aborted under
    // message loss before any boundary reached the nodes, so no filter
    // violation can ever convene repair. Defensively re-run the
    // selection, once per observation step.
    ++mstats_.full_rebuilds;
    begin_reset(ctx);
    return;
  }
  if (pending_top_ || pending_bot_) start_cycle(ctx);
}

void FilterCoordinator::on_message(CoordCtx&, const Message& m) {
  if (!session_active_ || m.kind != MsgKind::kValueReport) return;
  if (!have_best_ ||
      beats(sdir_, m.a, m.from, best_value_, best_holder_)) {
    have_best_ = true;
    best_value_ = m.a;
    best_holder_ = m.from;
    improved_ = true;
  }
}

void FilterCoordinator::on_timer(CoordCtx& ctx) {
  if (!session_active_) {
    // Inter-iteration gap of a FILTERRESET selection: the previous
    // iteration's winner announcement is in flight; convening the next
    // iteration before it lands would let the winner re-join. Zero ticks
    // under instant delivery.
    if (pending_select_) {
      if (select_gap_ > 0) {
        --select_gap_;
        ctx.arm_timer();
        return;
      }
      pending_select_ = false;
      start_session(ctx, Direction::kMax, FilterSessionGroup::kSelectRest, n_,
                    /*announce=*/true);
    }
    return;
  }
  // End of round sround_ (Algorithm 2, coordinator side): the round's
  // reports have been folded in via on_message.
  if (sround_ < slog_n_) {
    // Line 18: broadcast the running extremum (optionally only on change).
    if (!opts_.suppress_idle_broadcasts || improved_) {
      Message beacon;
      beacon.kind = MsgKind::kRoundBeacon;
      beacon.a = have_best_ ? best_value_ : kMinusInf;
      beacon.b = pack_beacon_b(sepoch_, have_best_ ? best_holder_ : kNoHolder);
      ctx.broadcast(beacon);
    }
    improved_ = false;
    ++sround_;
    ctx.arm_timer();
    return;
  }
  // Final round complete. Under a delayed policy, reports may still be in
  // flight: wait out the network's worst-case lag before concluding (zero
  // extra ticks under instant delivery).
  if (sflush_ > 0) {
    --sflush_;
    ctx.arm_timer();
    return;
  }
  // Under lossless delivery every still-active participant reported, so
  // the extremum is exact.
  conclude_session(ctx);
}

void FilterCoordinator::start_cycle(CoordCtx& ctx) {
  cycle_top_ = pending_top_;
  cycle_bot_ = pending_bot_;
  pending_top_ = pending_bot_ = false;
  min_v_.reset();
  max_v_.reset();
  if (cycle_top_) {
    // Line 5: violating former members run MINIMUMPROTOCOL(k).
    phase_ = Phase::kViolMin;
    start_session(ctx, Direction::kMin, FilterSessionGroup::kViolTop, k_,
                  /*announce=*/false);
  } else {
    // Line 7: violating outsiders run MAXIMUMPROTOCOL(n-k).
    phase_ = Phase::kViolMax;
    start_session(ctx, Direction::kMax, FilterSessionGroup::kViolBot, n_ - k_,
                  /*announce=*/false);
  }
}

void FilterCoordinator::start_session(CoordCtx& ctx, Direction dir,
                                      FilterSessionGroup group,
                                      std::uint64_t n_upper, bool announce) {
  ++mstats_.protocol_runs;
  sdir_ = dir;
  sepoch_ = ctx.next_protocol_epoch();
  slog_n_ = floor_log2(next_pow2(n_upper));
  sround_ = 0;
  sflush_ = ctx.flush_ticks();
  have_best_ = false;
  improved_ = false;
  best_holder_ = kNoHolder;
  session_active_ = true;
  announce_at_end_ = announce;

  Control start;
  start.op = static_cast<std::int64_t>(FilterControlOp::kStartSession);
  start.a = dir == Direction::kMin ? 1 : 0;
  start.b = static_cast<std::int64_t>(group);
  start.c = pack_session_c(sepoch_, slog_n_);
  ctx.control_broadcast(start);
  ctx.arm_timer();
}

void FilterCoordinator::conclude_session(CoordCtx& ctx) {
  session_active_ = false;
  if (announce_at_end_ && have_best_) {
    Message announce;
    announce.kind = MsgKind::kWinnerAnnounce;
    announce.a = best_value_;
    announce.b = pack_beacon_b(sepoch_, best_holder_);
    ctx.broadcast(announce);
  }
  if (!have_best_) {
    // Only possible under message loss: every report of the session was
    // dropped. Abandon the cycle; the next violation restarts repair.
    abort_cycle();
    return;
  }

  switch (phase_) {
    case Phase::kViolMin:
      min_v_ = best_value_;
      if (cycle_bot_) {
        phase_ = Phase::kViolMax;
        start_session(ctx, Direction::kMax, FilterSessionGroup::kViolBot,
                      n_ - k_, /*announce=*/false);
      } else {
        handler_transition(ctx);
      }
      break;
    case Phase::kViolMax:
      max_v_ = best_value_;
      handler_transition(ctx);
      break;
    case Phase::kFullSide:
      if (sdir_ == Direction::kMax) {
        max_v_ = best_value_;
      } else {
        min_v_ = best_value_;
      }
      decide(ctx);
      break;
    case Phase::kReset:
      // A repeat winner means its earlier announce was lost on its own
      // link (possible only under drops): it re-joined and won again, so
      // the selection order is corrupted beyond local repair — abandon
      // the reset. Deliberately checked AFTER the announce broadcast
      // above: the "redundant" announcement is what finally tells the
      // repeated winner it is excluded, so the next reset attempt can
      // succeed; suppressing it measured severalfold higher error rates
      // under loss (e15) for one saved message.
      for (const Winner& w : sel_winners_) {
        if (w.id == best_holder_) {
          abort_cycle();
          return;
        }
      }
      sel_winners_.push_back(Winner{best_holder_, best_value_});
      if (sel_winners_.size() < selection_target()) {
        const std::uint64_t gap = ctx.flush_ticks();
        if (gap == 0) {
          start_session(ctx, Direction::kMax, FilterSessionGroup::kSelectRest,
                        n_, /*announce=*/true);
        } else {
          pending_select_ = true;
          select_gap_ = gap;
          ctx.arm_timer();
        }
      } else {
        finish_reset(ctx);
      }
      break;
    case Phase::kIdle:
      break;  // unreachable
  }
}

void FilterCoordinator::handler_transition(CoordCtx& ctx) {
  // FILTERVIOLATIONHANDLER, lines 22-26: obtain the side extremum the
  // violations did not deliver (announced by a charged kProtocolStart).
  ++mstats_.handler_calls;
  // Sharded edge quotas: the missing side can be empty (k == n leaves no
  // outsiders, k == 0 leaves no members). Its extremum is the identity of
  // the empty max/min — running a session over zero participants would
  // only abort the cycle. Unreachable monolithically (1 <= k <= n-1 once
  // the degenerate k == n shortcut is taken).
  if (!max_v_.has_value() && k_ == n_) {
    max_v_ = kMinusInf;
    decide(ctx);
    return;
  }
  if (max_v_.has_value() && k_ == 0) {
    min_v_ = kPlusInf;
    decide(ctx);
    return;
  }
  phase_ = Phase::kFullSide;
  Message start;
  start.kind = MsgKind::kProtocolStart;
  if (!max_v_.has_value()) {
    start.a = 0;  // side: non-top-k
    ctx.broadcast(start);
    start_session(ctx, Direction::kMax, FilterSessionGroup::kAllBot, n_ - k_,
                  /*announce=*/false);
  } else {
    start.a = 1;  // side: top-k
    ctx.broadcast(start);
    start_session(ctx, Direction::kMin, FilterSessionGroup::kAllTop, k_,
                  /*announce=*/false);
  }
}

void FilterCoordinator::decide(CoordCtx& ctx) {
  // Lines 27-28: accumulate T+ and T- since the last reset.
  tplus_ = std::min(tplus_, *min_v_);
  tminus_ = std::max(tminus_, *max_v_);
  if (tplus_ < tminus_) {
    // Line 30: the top-k set may have changed; recompute from scratch.
    begin_reset(ctx);
  } else {
    // Lines 32-33: halve the gap; at most log Δ times between resets.
    ++mstats_.midpoint_updates;
    apply_boundary(ctx, choose_boundary());
    cycle_done(ctx);
  }
}

void FilterCoordinator::begin_reset(CoordCtx& ctx) {
  // FILTERRESET, lines 37-39: k+1 repeated MAXIMUMPROTOCOL(n) runs; each
  // winner announcement doubles as the membership notification.
  ++mstats_.filter_resets;
  phase_ = Phase::kReset;
  sel_winners_.clear();
  Control sel;
  sel.op = static_cast<std::int64_t>(FilterControlOp::kStartSelection);
  ctx.control_broadcast(sel);
  start_session(ctx, Direction::kMax, FilterSessionGroup::kSelectRest, n_,
                /*announce=*/true);
}

void FilterCoordinator::finish_reset(CoordCtx& ctx) {
  std::fill(in_topk_.begin(), in_topk_.end(), char{0});
  for (std::size_t i = 0; i < k_; ++i) in_topk_[sel_winners_[i].id] = 1;
  topk_ids_.clear();
  for (NodeId id = 0; id < n_; ++id) {
    if (in_topk_[id]) topk_ids_.push_back(id);
  }
  // Restart the T+/T- accumulation epoch at the fresh k-th/(k+1)-st values.
  // Sharded edge quotas substitute the identity of the empty side: k == 0
  // has no k-th member (T+ = +inf), k == n no (k+1)-st outsider
  // (T- = -inf). Monolithically both indices exist (the selection drew
  // k+1 <= n winners).
  tplus_ = k_ > 0 ? sel_winners_[k_ - 1].value : kPlusInf;
  tminus_ = k_ < sel_winners_.size() ? sel_winners_[k_].value : kMinusInf;
  // Lines 40-41.
  apply_boundary(ctx, choose_boundary());
  cycle_done(ctx);
}

Value FilterCoordinator::choose_boundary() const {
  // Algorithm 1 admits any boundary inside [T-, T+] (every member's value
  // is >= T+, every outsider's <= T-). Monolithic deployments halve the
  // gap; a shard adopts the root's shared boundary whenever the gap
  // contains it, so that in steady state every shard is anchored on one
  // global threshold and "boundary() != pin" detects exactly the shards
  // whose local top-k boundary crossed the root filter.
  if (opts_.pinned_boundary != nullptr && opts_.pinned_boundary->has_value()) {
    const Value r = **opts_.pinned_boundary;
    if (tminus_ <= r && r <= tplus_) return r;
  }
  return midpoint(tminus_, tplus_);
}

void FilterCoordinator::reanchor(CoordCtx& ctx) {
  if (degenerate_ || phase_ != Phase::kIdle || session_active_) return;
  if (opts_.pinned_boundary == nullptr ||
      !opts_.pinned_boundary->has_value()) {
    return;
  }
  const Value r = **opts_.pinned_boundary;
  if (mid_ == r) return;
  if (topk_ids_.size() == k_ && tminus_ <= r && r <= tplus_) {
    // The new root boundary lies inside the accumulated gap: re-anchor the
    // node filters on it without touching membership.
    ++mstats_.midpoint_updates;
    apply_boundary(ctx, r);
  } else {
    // The pin fell outside [T-, T+] (the root moved the boundary right
    // after this shard resolved a cycle on its own, or the answer was
    // never established): a fresh selection re-establishes the gap around
    // current values and re-evaluates the pin.
    begin_reset(ctx);
  }
}

void FilterCoordinator::apply_boundary(CoordCtx& ctx, Value m) {
  mid_ = m;
  Message update;
  update.kind = MsgKind::kFilterUpdate;
  update.a = m;
  ctx.broadcast(update);
}

void FilterCoordinator::cycle_done(CoordCtx& ctx) {
  phase_ = Phase::kIdle;
  min_v_.reset();
  max_v_.reset();
  // Violations that arrived while the cycle ran (possible only under a
  // tick budget) convene the next cycle immediately.
  if (pending_top_ || pending_bot_) start_cycle(ctx);
}

void FilterCoordinator::abort_cycle() {
  phase_ = Phase::kIdle;
  session_active_ = false;
  pending_select_ = false;
  select_gap_ = 0;
  min_v_.reset();
  max_v_.reset();
}

}  // namespace topkmon
