// Shard tier of the hierarchical multi-coordinator deployment.
//
// A sharded deployment (core/root_merge.hpp) partitions the n nodes into c
// contiguous shards. Each shard is a complete, independent role-based
// deployment — its own Cluster (network, RNG streams, message accounting),
// its own coordinator running the existing monitor protocol over a quota
// q_s of the global k (sum of quotas == k), and its own SimDriver. The
// global answer is the union of the per-shard member sets.
//
// This file provides the per-shard machinery:
//
//  * partition_shards()   word-aligned contiguous ranges, so a shard's
//                         nodes occupy whole bitset words (the same
//                         substrate the parallel tick loop shards by) and
//                         shard s can later map 1:1 onto worker s;
//  * initial_shard_quotas() largest-remainder split of k over the ranges;
//  * ShardAdapter         the root tier's handle on one shard: poll the
//                         boundary-crossing predicate, read/refresh the
//                         shard extrema (U_s = weakest member's value,
//                         L_s = strongest outsider's value), change the
//                         quota, and re-anchor on the root boundary R;
//  * NaiveShardAdapter    naive/naive_chg shard. The coordinator's value
//                         replica already holds every node's last report,
//                         so quota changes and extrema queries are
//                         coordinator-local (no node traffic);
//  * FilterShardAdapter   Algorithm 1 shard. Extrema are exact only right
//                         after a FILTERRESET (the T+/T- accumulators go
//                         stale between resets), so refreshes and quota
//                         changes rebuild the shard deployment on its warm
//                         cluster — the reset's k+1 selections produce
//                         exact extrema and charge the node<->shard tier.
//
// Exactness invariant (instant delivery): every shard keeps its filters
// anchored on one shared root boundary R with L_s <= R <= U_s. Then every
// member of any shard outranks every outsider of any shard, so the union
// of the member sets is the true global top-k. A shard whose extrema
// drift across R reports to the root (crossing() turns true), which
// renegotiates quotas and re-anchors — the steady state stays entirely
// within shards.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/driver.hpp"
#include "core/filter_roles.hpp"
#include "core/naive_roles.hpp"
#include "core/roles.hpp"
#include "sim/cluster.hpp"

namespace topkmon {

/// One shard's contiguous global-id range: [base, base + size).
struct ShardRange {
  NodeId base = 0;
  std::size_t size = 0;
};

/// Splits n nodes into `shards` contiguous non-empty ranges. When the
/// bitset word count (ceil(n/64)) is >= shards, boundaries are
/// word-aligned (balanced in words); otherwise the split balances node
/// counts directly. Requires 1 <= shards <= n.
std::vector<ShardRange> partition_shards(std::size_t n, std::size_t shards);

/// Largest-remainder split of the global k over the shard sizes: each
/// quota is proportional to its shard's size, capped by it, and the
/// quotas sum to exactly k. Requires k <= n.
std::vector<std::size_t> initial_shard_quotas(
    std::span<const ShardRange> ranges, std::size_t n, std::size_t k);

/// Deterministic per-shard cluster seed: shard 0 keeps the scenario seed
/// verbatim (a 1-shard deployment is then seed-identical to the
/// monolithic path), later shards derive via SplitMix64.
std::uint64_t shard_seed(std::uint64_t base_seed, std::size_t shard) noexcept;

/// Field-wise sum of MonitorStats (per-shard totals -> deployment total).
inline void add_monitor_stats(MonitorStats& into,
                              const MonitorStats& from) noexcept {
  into.violation_steps += from.violation_steps;
  into.violations += from.violations;
  into.handler_calls += from.handler_calls;
  into.midpoint_updates += from.midpoint_updates;
  into.filter_resets += from.filter_resets;
  into.protocol_runs += from.protocol_runs;
  into.polls += from.polls;
  into.full_rebuilds += from.full_rebuilds;
  into.resyncs += from.resyncs;
  into.resync_retries += from.resync_retries;
  into.reset_backoffs += from.reset_backoffs;
  into.suspicions += from.suspicions;
  into.quarantines += from.quarantines;
  into.stale_detections += from.stale_detections;
  into.assign_replays += from.assign_replays;
}

/// The shard extrema the root tier merges over.
struct ShardExtrema {
  Value weakest_member = kPlusInf;     ///< U_s; +inf at quota 0
  Value strongest_outsider = kMinusInf;  ///< L_s; -inf at quota == size
};

/// Construction parameters shared by the shard adapters.
struct ShardConfig {
  std::size_t n = 0;        ///< shard size (incl. not-yet-joined ids)
  std::size_t quota = 0;    ///< initial per-shard k
  std::uint64_t seed = 0;   ///< shard cluster seed (see shard_seed)
  NetworkSpec network{};    ///< node<->shard delivery policy
  std::size_t workers = 1;  ///< inner tick-scan workers (1-shard runs only)
  bool dense_loop = false;  ///< diagnostic dense driver loop
  /// True in a c > 1 deployment: engages the pinned-boundary protocol and
  /// the quota-0 / quota-n edge cases. False at c == 1, where the shard
  /// must be message-for-message identical to the monolithic path.
  bool sharded = true;
  /// Shard-local fault schedule (nullptr = fault-free). Must outlive the
  /// adapter. The filter shard re-attaches it across rebuilds with the
  /// retired driver's cursor preserved, so events the old driver already
  /// fired never replay on the fresh one.
  const FaultPlan* faults = nullptr;
  /// Trailing shard-local ids provisioned for a later join event: ids
  /// [n - join_reserve, n) start down (transport off, on_init deferred)
  /// and go live when their join fires in the shard's fault schedule.
  std::size_t join_reserve = 0;
};

/// The root tier's handle on one shard deployment.
///
/// Threading: step() calls on distinct adapters are independent (each
/// adapter owns its cluster/driver) and may run on pool threads; all
/// other methods — the root coordinator's renegotiation plumbing — run on
/// the owner thread between steps.
class ShardAdapter {
 public:
  virtual ~ShardAdapter() = default;

  /// Builds and initializes the shard deployment (values already set).
  virtual void initialize() = 0;

  /// One observation step; `changed` holds shard-local ids.
  virtual void step(TimeStep t, std::span<const NodeId> changed) = 0;

  /// True when the shard's extrema may straddle the root boundary and the
  /// root must renegotiate. Always false before the first set_pin.
  virtual bool crossing() = 0;

  /// Current extrema belief (cheap; may be conservative/stale for the
  /// filter shard between resets — good enough to *report* a crossing,
  /// never used for quota decisions).
  virtual ShardExtrema extrema() = 0;

  /// Exact extrema refresh. The filter shard rebuilds (full FILTERRESET
  /// on the warm cluster, charged to the node<->shard tier); the naive
  /// shard's replica is already current.
  virtual ShardExtrema requery() = 0;

  /// Renegotiated quota (0 <= q <= size); returns fresh extrema.
  virtual ShardExtrema set_quota(std::size_t q) = 0;

  /// Anchors the shard on the root boundary R (filters re-anchor and the
  /// injected traffic is pumped before this returns).
  virtual void set_pin(Value r) = 0;

  /// Current member set, shard-local ids ascending.
  virtual const std::vector<NodeId>& members() const = 0;

  virtual std::size_t quota() const = 0;
  virtual Cluster& cluster() = 0;
  virtual const MonitorStats& monitor_stats() const = 0;

  /// Inner-driver delivery ticks consumed so far. Monotonic across filter
  /// shard rebuilds (the clock lives on the warm cluster's network);
  /// recovery-window accounting in the sharded scenario runner keys on it.
  virtual SimTime ticks() const = 0;
};

/// naive / naive_chg shard (see file comment).
class NaiveShardAdapter final : public ShardAdapter {
 public:
  NaiveShardAdapter(const ShardConfig& cfg, bool send_on_change_only);

  void initialize() override;
  void step(TimeStep t, std::span<const NodeId> changed) override;
  bool crossing() override;
  ShardExtrema extrema() override;
  ShardExtrema requery() override { return extrema(); }
  ShardExtrema set_quota(std::size_t q) override;
  void set_pin(Value r) override { pin_ = r; }
  const std::vector<NodeId>& members() const override {
    return coord_->topk();
  }
  std::size_t quota() const override { return quota_; }
  Cluster& cluster() override { return cluster_; }
  const MonitorStats& monitor_stats() const override {
    return coord_->monitor_stats();
  }
  SimTime ticks() const override { return driver_->now(); }

 private:
  ShardConfig cfg_;
  std::size_t quota_;
  Cluster cluster_;
  std::optional<Value> pin_;
  std::unique_ptr<NaiveCoordinator> coord_;
  std::vector<std::unique_ptr<NodeAlgo>> nodes_;
  std::unique_ptr<SimDriver> driver_;
};

/// topk_filter shard (see file comment).
class FilterShardAdapter final : public ShardAdapter {
 public:
  FilterShardAdapter(const ShardConfig& cfg, bool suppress_idle_broadcasts);

  void initialize() override;
  void step(TimeStep t, std::span<const NodeId> changed) override;
  bool crossing() override;
  ShardExtrema extrema() override;
  ShardExtrema requery() override;
  ShardExtrema set_quota(std::size_t q) override;
  void set_pin(Value r) override;
  const std::vector<NodeId>& members() const override {
    return coord_->topk();
  }
  std::size_t quota() const override { return quota_; }
  Cluster& cluster() override { return cluster_; }
  const MonitorStats& monitor_stats() const override {
    mstats_combined_ = mstats_retired_;
    add_monitor_stats(mstats_combined_, coord_->monitor_stats());
    return mstats_combined_;
  }
  SimTime ticks() const override { return driver_ ? driver_->now() : 0; }

 private:
  /// (Re)creates coordinator + nodes + driver on the warm cluster and
  /// runs the driver's initialization (a full FILTERRESET over current
  /// values). Folds the outgoing coordinator's counters into
  /// mstats_retired_ first — CommStats live on the persistent cluster and
  /// accumulate on their own.
  void rebuild();

  ShardConfig cfg_;
  bool nobeacon_;
  std::size_t quota_;
  Cluster cluster_;
  /// Stable pin storage; FilterCoordinator::Options points here, so the
  /// root can move the boundary without touching the coordinator.
  std::optional<Value> pin_;
  std::unique_ptr<FilterCoordinator> coord_;
  std::vector<std::unique_ptr<NodeAlgo>> nodes_;
  std::unique_ptr<SimDriver> driver_;
  MonitorStats mstats_retired_;  ///< counters of retired coordinators
  mutable MonitorStats mstats_combined_;  ///< retired + current (scratch)
};

}  // namespace topkmon
