#include "core/driver.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

namespace topkmon {

namespace {

/// Defensive bound on delivery ticks within one observation step: a
/// correct protocol session needs O(log n) of them, so hitting this means
/// an algorithm armed its timer forever.
constexpr std::uint64_t kMaxTicksPerSettle = 1'000'000;

}  // namespace

thread_local SimDriver::WorkerShard* SimDriver::t_stage_ = nullptr;

void NodeCtx::send(Message m) { driver_.node_send(id_, m); }

void NodeCtx::signal(std::int64_t code) {
  driver_.raise_signal(Signal{id_, code});
}

void NodeCtx::arm_timer() { driver_.arm_node(id_); }

void NodeCtx::set_needs_observe(bool needs) {
  driver_.set_needs_observe(id_, needs);
}

void CoordCtx::control_broadcast(const Control& c) { driver_.queue_control(c); }

const std::vector<Signal>& CoordCtx::signals() const {
  return driver_.signals();
}

void CoordCtx::arm_timer() { driver_.arm_coordinator(); }

SimDriver::SimDriver(Cluster& cluster, CoordinatorAlgo& coordinator,
                     std::span<const std::unique_ptr<NodeAlgo>> nodes,
                     bool auto_deliver, std::size_t workers)
    : cluster_(cluster),
      coord_(coordinator),
      nodes_(nodes),
      auto_deliver_(auto_deliver),
      coord_ctx_(*this, cluster),
      scan_scratch_(cluster.size()) {
  if (nodes_.size() != cluster_.size()) {
    throw std::invalid_argument("SimDriver: node algo count != cluster size");
  }
  if (workers > 1) {
    if (!auto_deliver_) {
      throw std::invalid_argument(
          "SimDriver: workers > 1 requires native role algorithms "
          "(a LockstepAdapter monitor is one shared object; its node "
          "callbacks cannot run concurrently)");
    }
    shards_.resize(workers);
    pool_ = std::make_unique<WorkerPool>(workers - 1);
  }
  // The armed / needs-observe scalars live in the cluster's shared
  // NodeRuntime; reset them in case this driver replaces an earlier one
  // over the same cluster. Every node starts in the needs-observe set: an
  // algorithm must opt out (NodeCtx::set_needs_observe(false)) to certify
  // that its on_observe is a no-op on an unchanged value.
  cluster_.runtime().armed.clear_all();
  cluster_.runtime().needs_observe.set_all();
}

bool SimDriver::anything_scheduled() const noexcept {
  if (armed_nodes_ > 0 || coord_armed_ || !pending_controls_.empty()) {
    return true;
  }
  if (fault_due() || !held_.empty()) return true;
  return auto_deliver_ && cluster_.net().pending_deliveries() > 0;
}

void SimDriver::set_fault_plan(const FaultPlan* plan) {
  set_fault_plan(plan, 0);
}

void SimDriver::set_fault_plan(const FaultPlan* plan, std::size_t cursor) {
  if (plan != nullptr && plan->total_nodes() != cluster_.size()) {
    throw std::invalid_argument(
        "SimDriver::set_fault_plan: plan provisions " +
        std::to_string(plan->total_nodes()) + " nodes but the cluster has " +
        std::to_string(cluster_.size()));
  }
  if (plan != nullptr && cursor > plan->events().size()) {
    throw std::invalid_argument(
        "SimDriver::set_fault_plan: cursor " + std::to_string(cursor) +
        " exceeds the plan's " + std::to_string(plan->events().size()) +
        " events");
  }
  faults_ = plan;
  fault_cursor_ = plan != nullptr ? cursor : 0;
  frozen_armed_ = IdBitset(cluster_.size());
  held_.clear();
  if (plan != nullptr && plan->has_degradation()) {
    degrade_.assign(cluster_.size(), NodeDegrade{});
  } else {
    degrade_.clear();
  }
}

void SimDriver::dispatch_node_send(NodeId from, Message m) {
  if (degrade_.empty()) {  // no degradation events in the plan
    cluster_.net().node_send(from, m);
    return;
  }
  const NodeDegrade& d = degrade_[from];
  switch (d.mode) {
    case DegradeMode::kNone:
      break;
    case DegradeMode::kMute:
      return;  // discarded before the network: silent, never charged
    case DegradeMode::kStale:
      // Only value-bearing payloads freeze; the probe-reply flag in m.b
      // and every other kind pass through untouched.
      if (m.kind == MsgKind::kValueReport || m.kind == MsgKind::kViolation) {
        m.a = d.frozen;
      }
      break;
    case DegradeMode::kLag: {
      const HeldSend held{cluster_.net().now() + d.lag_ticks, from, m};
      auto pos = std::upper_bound(
          held_.begin(), held_.end(), held.release,
          [](SimTime r, const HeldSend& h) { return r < h.release; });
      held_.insert(pos, held);
      return;
    }
  }
  cluster_.net().node_send(from, m);
}

void SimDriver::release_due_held() {
  // Held messages re-enter the network at their release tick in queue
  // order ((release, send order) — the queue is insertion-sorted). A
  // released message is past its sender's degradation window by
  // construction, so it goes straight to node_send: no re-degradation,
  // even if the sender was re-degraded meanwhile.
  const SimTime now = cluster_.net().now();
  std::size_t released = 0;
  while (released < held_.size() && held_[released].release <= now) {
    cluster_.net().node_send(held_[released].from, held_[released].m);
    ++released;
  }
  if (released > 0) {
    held_.erase(held_.begin(),
                held_.begin() + static_cast<std::ptrdiff_t>(released));
  }
}

bool SimDriver::fault_due() const noexcept {
  return faults_ != nullptr && fault_cursor_ < faults_->events().size() &&
         faults_->events()[fault_cursor_].step <= cur_step_;
}

void SimDriver::apply_due_faults() {
  // Serial, owner thread, tick head: the alive set changes only here, so
  // it is stable for the whole tick scan even under workers > 1.
  while (fault_due()) {
    const FaultEvent& ev = faults_->events()[fault_cursor_++];
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
      case FaultEvent::Kind::kLeave:
        apply_node_down(ev.node);
        break;
      case FaultEvent::Kind::kRecover:
        apply_node_up(ev.node, /*first_time=*/false);
        break;
      case FaultEvent::Kind::kJoin:
        for (std::size_t i = 0; i < ev.count; ++i) {
          apply_node_up(static_cast<NodeId>(ev.node + i),
                        /*first_time=*/true);
        }
        break;
      case FaultEvent::Kind::kSetK:
        coord_.on_set_k(coord_ctx_, ev.count);
        break;
      case FaultEvent::Kind::kLag:
        degrade_[ev.node] = NodeDegrade{DegradeMode::kLag, ev.count, 0};
        break;
      case FaultEvent::Kind::kStale:
        // Snapshot the payload value at degradation time: the node keeps
        // observing (and signalling) truthfully, but every value it
        // *reports* from here until heal is this frozen one.
        degrade_[ev.node] =
            NodeDegrade{DegradeMode::kStale, 0, cluster_.value(ev.node)};
        break;
      case FaultEvent::Kind::kMute:
        degrade_[ev.node] = NodeDegrade{DegradeMode::kMute, 0, 0};
        break;
      case FaultEvent::Kind::kHeal:
        // Already-held lagged messages keep their release schedule.
        degrade_[ev.node] = NodeDegrade{};
        break;
    }
  }
}

void SimDriver::apply_node_down(NodeId id) {
  NodeRuntime& rt = cluster_.runtime();
  if (rt.armed.test(id)) {
    // Freeze the timer across the outage: recovery restores exactly the
    // pre-crash machine state, including a pending on_timer.
    rt.armed.clear(id);
    frozen_armed_.set(id);
    --armed_nodes_;
  }
  cluster_.net().set_node_down(id);  // drops queued + future mail
  // A crash ends any active degradation (the timeline validator enforces
  // the same: a recovered node starts clean and must be re-degraded).
  if (!degrade_.empty()) degrade_[id] = NodeDegrade{};
  coord_.on_node_down(coord_ctx_, id);
}

void SimDriver::apply_node_up(NodeId id, bool first_time) {
  NodeRuntime& rt = cluster_.runtime();
  cluster_.net().set_node_up(id);  // before callbacks: they may send
  if (frozen_armed_.test(id)) {
    frozen_armed_.clear(id);
    rt.armed.set(id);
    ++armed_nodes_;
  }
  // Back into the unconditional-observe set: whatever invariant let the
  // node skip observes may have rotted during the outage; its algorithm
  // re-certifies (set_needs_observe(false)) once re-synced.
  rt.needs_observe.set(id);
  NodeCtx ctx(*this, cluster_, id);
  if (first_time) nodes_[id]->on_init(ctx, cluster_.value(id));
  nodes_[id]->on_recover(ctx);
  coord_.on_node_up(coord_ctx_, id);
}

void SimDriver::service_node(NodeId id, WorkerShard* stage) {
  // Phase 1 for one node: due charged mail first, then the tick's control
  // broadcasts, then the armed timer. Messages precede controls because a
  // control queued in the same coordinator phase as a broadcast (e.g.
  // "next selection iteration starts" after a winner announcement)
  // logically follows it — the lock-step semantics exclude the announced
  // winner before the next iteration convenes.
  Network& net = cluster_.net();
  if (net.down_nodes() != 0 && !net.node_alive(id)) {
    // A down node runs nothing: its mail was dropped at delivery time,
    // its armed bit is frozen, and controls must not reach it either.
    return;
  }
  NodeCtx ctx(*this, cluster_, id);  // transient view; per-node scalars
                                     // live in the shared NodeRuntime
  NodeAlgo& algo = *nodes_[id];
  if (auto_deliver_ && net.node_has_mail(id)) {
    if (net.node_mail_is_broadcast_only(id)) {
      // Bulk broadcast fan-out: the node's mail is exactly the shared
      // log's unread suffix, so deliver it in place — no per-node copy,
      // no merge, O(1) ack. The span stays valid across the callbacks:
      // a node algorithm can only send upstream (coordinator inbox),
      // signal, or arm its own timer — nothing grows or compacts the
      // log until the next dirty-node drain or the post-scan compaction
      // (and during a parallel phase sends are staged, so the log is
      // strictly read-only until the barrier).
      for (const Message& m : net.unread_broadcasts(id)) {
        algo.on_message(ctx, m);
      }
      if (stage != nullptr) {
        net.ack_broadcasts_staged(id, stage->drain);
      } else {
        net.ack_broadcasts(id);
      }
    } else {
      std::vector<Message>& mail =
          stage != nullptr ? stage->mail : mail_scratch_;
      if (stage != nullptr) {
        net.drain_node_staged(id, mail, stage->drain);
      } else {
        net.drain_node(id, mail);
      }
      for (const Message& m : mail) {
        algo.on_message(ctx, m);
      }
    }
  }
  for (const Control& c : delivering_controls_) {
    algo.on_control(ctx, c);
  }
  IdBitset& armed = cluster_.runtime().armed;
  if (armed.test(id)) {
    armed.clear(id);
    if (stage != nullptr) {
      --stage->armed_delta;
    } else {
      --armed_nodes_;
    }
    algo.on_timer(ctx);
  }
}

void SimDriver::service_coordinator() {
  // Phase 2: the coordinator's due mail, in arrival order.
  if (auto_deliver_) {
    cluster_.net().drain_coordinator(mail_scratch_);
    for (const Message& m : mail_scratch_) {
      coord_.on_message(coord_ctx_, m);
    }
  }
  // Phase 3: the coordinator's armed timer.
  if (coord_armed_) {
    coord_armed_ = false;
    coord_.on_timer(coord_ctx_);
  }
}

void SimDriver::merge_shards() {
  // The tick barrier's ordered merge. Pass 1 — commit the accounting
  // every shard already changed node-local state for (drained unicast
  // buffers, advanced cursors, cleared bits): these must land even if a
  // shard threw, or the network's pending counter and slab free list go
  // permanently out of sync with its per-node structures.
  Network& net = cluster_.net();
  for (WorkerShard& shard : shards_) {
    net.commit_drain_stage(shard.drain);
    armed_nodes_ = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(armed_nodes_) + shard.armed_delta);
    shard.armed_delta = 0;
  }
  // Deterministic error propagation: the lowest shard's exception is the
  // one the serial loop would have hit first. Staged sends/signals are
  // dropped (the serial loop would never have produced them).
  for (WorkerShard& shard : shards_) {
    if (shard.error != nullptr) {
      const std::exception_ptr err = shard.error;
      for (WorkerShard& s : shards_) {
        s.error = nullptr;
        s.sends.clear();
        s.signals.clear();
      }
      std::rethrow_exception(err);
    }
  }
  // Pass 2 — replay staged effects in shard order. Shards cover ascending
  // id ranges and staged in visit order within each shard, so the replay
  // order IS the serial loop's order: signals land in the same sequence
  // the coordinator would have seen, and node_send re-stamps each message
  // with the same seq it would have had — hence the same inbox order,
  // the same per-(message, link) schedule hash, the same stats and taps.
  for (WorkerShard& shard : shards_) {
    signals_.insert(signals_.end(), shard.signals.begin(),
                    shard.signals.end());
    shard.signals.clear();
    for (const Message& m : shard.sends) {
      dispatch_node_send(m.from, m);
    }
    shard.sends.clear();
  }
}

template <typename Body>
void SimDriver::run_sharded(Body&& body) {
  // Word-aligned static partition: shard s owns bit words
  // [s*per, (s+1)*per) — whole words, so every bit mutation a shard makes
  // for its own nodes (due-mail clear on drain, armed clear/set,
  // needs-observe writes) stays in words no other shard touches, and the
  // plain uint64 stores need no atomics. Word ranges may be empty when
  // W > words(n); those shards simply stage nothing.
  const std::size_t nwords = (cluster_.size() + 63) / 64;
  const std::size_t per = (nwords + shards_.size() - 1) / shards_.size();
  // Single-reference capture: the std::function WorkerPool::run builds
  // from this lambda must fit its small-buffer slot — a wider capture
  // list heap-allocates on every tick, breaking the zero-allocation
  // steady state the perf suite pins.
  struct Frame {
    SimDriver* self;
    Body* body;
    std::size_t nwords;
    std::size_t per;
  } frame{this, &body, nwords, per};
  pool_->run(shards_.size(), [&frame](std::size_t s) {
    WorkerShard& shard = frame.self->shards_[s];
    const std::size_t lo = std::min(s * frame.per, frame.nwords);
    const std::size_t hi = std::min(lo + frame.per, frame.nwords);
    t_stage_ = &shard;
    try {
      (*frame.body)(shard, lo, hi);
    } catch (...) {
      shard.error = std::current_exception();
    }
    t_stage_ = nullptr;
  });
  // pool_->run returning is the barrier: every shard's writes
  // happen-before this point (WorkerPool's completion handshake).
  merge_shards();
}

void SimDriver::run_tick_dense() {
  if (!shards_.empty()) {
    run_sharded([&](WorkerShard& shard, std::size_t lo, std::size_t hi) {
      const NodeId end = static_cast<NodeId>(
          std::min(cluster_.size(), hi * 64));
      for (NodeId id = static_cast<NodeId>(lo * 64); id < end; ++id) {
        service_node(id, &shard);
      }
    });
  } else {
    for (NodeId id = 0; id < cluster_.size(); ++id) {
      service_node(id, nullptr);
    }
  }
  // Bulk acks defer log compaction so in-place suffixes stay stable for
  // the rest of the scan; settle the deferred work once per tick.
  if (auto_deliver_) cluster_.net().compact_broadcast_log();
  service_coordinator();
}

void SimDriver::run_tick() {
  Network& net = cluster_.net();
  net.advance_clock();
  // Fault events fire at the first tick of their scheduled step, before
  // any mail or timer is serviced. Controls/probes the fault hooks queue
  // are swapped in below, so they deliver this very tick.
  if (fault_due()) apply_due_faults();
  // Lagged messages whose hold expired this tick enter the network now,
  // before any node or coordinator phase, so they are ordinary scheduled
  // deliveries for the rest of the tick.
  if (!held_.empty()) release_due_held();

  delivering_controls_.clear();
  delivering_controls_.swap(pending_controls_);
  if (dense_ || !delivering_controls_.empty()) {
    // A Control broadcast reaches every node by definition; control ticks
    // (and the diagnostic dense mode) keep the full id scan.
    run_tick_dense();
    return;
  }

  // Sparse phase 1: only nodes with due mail or an armed timer can react
  // this tick — for everyone else all sub-phases are provably no-ops.
  // Per-word union of the two NodeRuntime bitsets, visited in ascending
  // id order. Callbacks can only mutate bits of the node being serviced
  // (drain/ack clears its mail bit, on_timer may re-arm itself), so the
  // per-word snapshot taken by the scan stays exact — per shard exactly
  // as in the serial loop, since shards own whole words.
  const NodeRuntime& rt = cluster_.runtime();
  if (!shards_.empty()) {
    run_sharded([&](WorkerShard& shard, std::size_t lo, std::size_t hi) {
      const auto mail = rt.due_mail.words();
      const auto armed = rt.armed.words();
      for (std::size_t w = lo; w < hi; ++w) {
        std::uint64_t bits = armed[w];
        if (auto_deliver_) bits |= mail[w];
        while (bits != 0) {
          const auto bit = static_cast<unsigned>(std::countr_zero(bits));
          bits &= bits - 1;
          service_node(static_cast<NodeId>(w * 64 + bit), &shard);
        }
      }
    });
  } else {
    const auto mail = rt.due_mail.words();
    const auto armed = rt.armed.words();
    for (std::size_t w = 0; w < armed.size(); ++w) {
      std::uint64_t bits = armed[w];
      if (auto_deliver_) bits |= mail[w];
      while (bits != 0) {
        const auto bit = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        service_node(static_cast<NodeId>(w * 64 + bit), nullptr);
      }
    }
  }
  if (auto_deliver_) net.compact_broadcast_log();
  service_coordinator();
}

void SimDriver::settle(bool respect_budget) {
  Network& net = cluster_.net();
  const std::uint64_t budget =
      respect_budget ? net.spec().ticks_per_step : 0;
  const SimTime step_end = net.now() + budget;

  std::uint64_t guard = 0;
  for (;;) {
    if (budget != 0 && net.now() >= step_end) break;
    if (!anything_scheduled()) {
      // Fixed observation cadence: with a budget the step always consumes
      // its full tick span, so in-flight mail ages correctly across steps.
      if (budget != 0) net.advance_clock_to(step_end);
      break;
    }
    if (armed_nodes_ == 0 && !coord_armed_ && pending_controls_.empty() &&
        !fault_due()) {
      // Nothing computes until the next delivery: fast-forward the clock
      // (bounded by the step end under a budget). A due fault pins the
      // clock — it fires at the step's first tick, not the delivery's.
      // A held (lagged) message is a pending delivery too: its release
      // tick bounds the jump exactly like the network's earliest one.
      auto due = net.earliest_pending();
      if (!held_.empty() && (!due || earliest_held_release() < *due)) {
        due = earliest_held_release();
      }
      if (due) {
        SimTime target = *due > net.now() ? *due - 1 : net.now();
        if (budget != 0 && target > step_end - 1) target = step_end - 1;
        net.advance_clock_to(target);
      }
    }
    run_tick();
    if (++guard > kMaxTicksPerSettle) {
      throw std::logic_error(
          "SimDriver: step did not quiesce (runaway timer loop?)");
    }
  }
}

void SimDriver::initialize() {
  signals_.clear();
  cur_step_ = 0;
  const std::span<const Value> values = cluster_.values();
  const Network& net = cluster_.net();
  const bool any_down = net.down_nodes() != 0;
  for (NodeId id = 0; id < cluster_.size(); ++id) {
    // Nodes provisioned for a later join event start down: their on_init
    // is deferred to the join tick (apply_node_up with first_time).
    if (any_down && !net.node_alive(id)) continue;
    NodeCtx ctx(*this, cluster_, id);
    nodes_[id]->on_init(ctx, values[id]);
  }
  coord_.on_init(coord_ctx_);
  settle(/*respect_budget=*/false);
  coord_.on_step_end(coord_ctx_, 0);
}

void SimDriver::step(TimeStep t) {
  signals_.clear();
  cur_step_ = t;
  // Dense observe: stream the flat NodeRuntime value array (8-byte
  // stride). Parallelized over the same word-aligned ranges as the tick
  // scan: on_observe can only send (staged), signal (staged), arm its
  // own timer or write its own needs-observe bit (shard-owned words).
  // Down nodes are skipped: their observations are lost for the outage.
  const std::span<const Value> values = cluster_.values();
  const NodeRuntime& rt = cluster_.runtime();
  const bool any_down = cluster_.net().down_nodes() != 0;
  if (!shards_.empty()) {
    run_sharded([&](WorkerShard&, std::size_t lo, std::size_t hi) {
      const NodeId end = static_cast<NodeId>(
          std::min(cluster_.size(), hi * 64));
      for (NodeId id = static_cast<NodeId>(lo * 64); id < end; ++id) {
        if (any_down && !rt.alive.test(id)) continue;
        NodeCtx ctx(*this, cluster_, id);
        nodes_[id]->on_observe(ctx, values[id], t);
      }
    });
  } else {
    for (NodeId id = 0; id < cluster_.size(); ++id) {
      if (any_down && !rt.alive.test(id)) continue;
      NodeCtx ctx(*this, cluster_, id);
      nodes_[id]->on_observe(ctx, values[id], t);
    }
  }
  coord_.on_step_begin(coord_ctx_, t);
  settle(/*respect_budget=*/true);
  coord_.on_step_end(coord_ctx_, t);
}

void SimDriver::step(TimeStep t, std::span<const NodeId> changed) {
  if (dense_) {
    step(t);
    return;
  }
  signals_.clear();
  cur_step_ = t;
  // Observe set = changed nodes ∪ needs-observe nodes, ascending id. For
  // a skipped node the value is unchanged AND its algorithm certified
  // that on_observe is then a no-op, so the outcome (messages, signals,
  // coin flips, counters) is identical to the dense loop's. Down nodes
  // are masked out: their observations are lost for the outage.
  scan_scratch_.copy_from(cluster_.runtime().needs_observe);
  for (const NodeId id : changed) scan_scratch_.set(id);
  if (cluster_.net().down_nodes() != 0) {
    scan_scratch_.mask_with(cluster_.runtime().alive);
  }
  const std::span<const Value> values = cluster_.values();
  if (!shards_.empty()) {
    // The scratch union is immutable during the scan (needs-observe
    // writes go to the live bitset, not the snapshot), so sharding its
    // words is race-free even beyond the word-ownership argument.
    run_sharded([&](WorkerShard&, std::size_t lo, std::size_t hi) {
      const auto words = scan_scratch_.words();
      for (std::size_t w = lo; w < hi; ++w) {
        std::uint64_t bits = words[w];
        while (bits != 0) {
          const auto bit = static_cast<unsigned>(std::countr_zero(bits));
          bits &= bits - 1;
          const auto id = static_cast<NodeId>(w * 64 + bit);
          NodeCtx ctx(*this, cluster_, id);
          nodes_[id]->on_observe(ctx, values[id], t);
        }
      }
    });
  } else {
    for_each_set_bit(scan_scratch_.words(), [&](NodeId id) {
      NodeCtx ctx(*this, cluster_, id);
      nodes_[id]->on_observe(ctx, values[id], t);
    });
  }
  coord_.on_step_begin(coord_ctx_, t);
  settle(/*respect_budget=*/true);
  coord_.on_step_end(coord_ctx_, t);
}

void SimDriver::pump() { settle(/*respect_budget=*/true); }

}  // namespace topkmon
