#include "core/topk_monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/select_topk.hpp"
#include "util/log.hpp"

namespace topkmon {

TopkFilterMonitor::TopkFilterMonitor(std::size_t k)
    : TopkFilterMonitor(k, Options{}) {}

TopkFilterMonitor::TopkFilterMonitor(std::size_t k, Options opts)
    : k_(k), opts_(opts) {
  if (k == 0) {
    throw std::invalid_argument("TopkFilterMonitor: k must be >= 1");
  }
  popts_.suppress_idle_broadcasts = opts_.suppress_idle_broadcasts;
}

void TopkFilterMonitor::initialize(Cluster& cluster) {
  const std::size_t n = cluster.size();
  if (k_ > n) {
    throw std::invalid_argument("TopkFilterMonitor: k > n");
  }
  filters_.assign(n, Filter{});
  in_topk_.assign(n, 0);
  degenerate_ = (k_ == n);
  if (degenerate_) {
    // All nodes are the answer forever; unbounded filters, zero messages.
    std::fill(in_topk_.begin(), in_topk_.end(), char{1});
    rebuild_id_lists();
    return;
  }
  filter_reset(cluster);
}

void TopkFilterMonitor::step(Cluster& cluster, TimeStep) {
  if (degenerate_) return;
  const std::size_t n = cluster.size();

  // Node-local violation checks (Algorithm 1, lines 2-9).
  std::vector<NodeId>& viol_top = viol_top_;
  std::vector<NodeId>& viol_bot = viol_bot_;
  viol_top.clear();
  viol_bot.clear();
  for (NodeId id = 0; id < n; ++id) {
    const Value v = cluster.value(id);
    if (filters_[id].contains(v)) continue;
    (in_topk_[id] ? viol_top : viol_bot).push_back(id);
  }
  if (viol_top.empty() && viol_bot.empty()) return;

  ++mstats_.violation_steps;
  mstats_.violations += viol_top.size() + viol_bot.size();

  // Violating former top-k members run MINIMUMPROTOCOL(k) (line 5);
  // violating outsiders run MAXIMUMPROTOCOL(n-k) (line 7).
  std::optional<Value> min_v;
  std::optional<Value> max_v;
  if (!viol_top.empty()) {
    const auto res = run_min_protocol(cluster, viol_top, k_, popts_);
    ++mstats_.protocol_runs;
    min_v = res.extremum;
  }
  if (!viol_bot.empty()) {
    const auto res = run_max_protocol(cluster, viol_bot, n - k_, popts_);
    ++mstats_.protocol_runs;
    max_v = res.extremum;
  }
  violation_handler(cluster, min_v, max_v);
}

void TopkFilterMonitor::violation_handler(Cluster& cluster,
                                          std::optional<Value> min_v,
                                          std::optional<Value> max_v) {
  ++mstats_.handler_calls;
  const std::size_t n = cluster.size();

  // Lines 22-26: obtain the side extremum the violations did not deliver.
  // Violator-side extrema already equal the side-wide extrema (violators
  // are exactly the nodes beyond the shared boundary M), so after this
  // block both values are the *current* side extrema.
  if (!max_v.has_value()) {
    Message start;
    start.kind = MsgKind::kProtocolStart;
    start.a = 0;  // side: non-top-k
    cluster.net().coord_broadcast(start);
    const auto res = run_max_protocol(cluster, rest_list_, n - k_, popts_);
    ++mstats_.protocol_runs;
    max_v = res.extremum;
  } else {
    Message start;
    start.kind = MsgKind::kProtocolStart;
    start.a = 1;  // side: top-k
    cluster.net().coord_broadcast(start);
    const auto res = run_min_protocol(cluster, topk_list_, k_, popts_);
    ++mstats_.protocol_runs;
    min_v = res.extremum;
  }

  // Lines 27-28: accumulate T+ and T- since the last reset.
  tplus_ = std::min(tplus_, *min_v);
  tminus_ = std::max(tminus_, *max_v);

  if (tplus_ < tminus_) {
    // Line 30: the top-k set may have changed; recompute from scratch.
    filter_reset(cluster);
  } else {
    // Lines 32-33: halve the gap; at most log Δ times between resets.
    ++mstats_.midpoint_updates;
    apply_boundary(cluster, midpoint(tminus_, tplus_));
  }
}

void TopkFilterMonitor::filter_reset(Cluster& cluster) {
  ++mstats_.filter_resets;
  const std::size_t n = cluster.size();

  // Lines 37-39: k+1 repeated MAXIMUMPROTOCOL(n) runs over the remaining
  // candidates; each winner announcement doubles as the membership
  // notification for the nodes.
  const auto sel = select_extreme(cluster, cluster.all_ids(), k_ + 1, n,
                                  Direction::kMax, popts_);
  mstats_.protocol_runs += k_ + 1;
  if (sel.winners.size() != k_ + 1) {
    throw std::logic_error("filter_reset: selection returned too few winners");
  }

  std::fill(in_topk_.begin(), in_topk_.end(), char{0});
  for (std::size_t i = 0; i < k_; ++i) in_topk_[sel.winners[i].id] = 1;
  rebuild_id_lists();

  // Restart the T+/T- accumulation epoch at the fresh k-th/(k+1)-st values.
  tplus_ = sel.winners[k_ - 1].value;
  tminus_ = sel.winners[k_].value;

  // Lines 40-41.
  apply_boundary(cluster, midpoint(tminus_, tplus_));
}

void TopkFilterMonitor::apply_boundary(Cluster& cluster, Value m) {
  mid_ = m;
  Message update;
  update.kind = MsgKind::kFilterUpdate;
  update.a = m;
  cluster.net().coord_broadcast(update);
  // Node-side effect of the broadcast: each node rebuilds its filter from
  // (M, own membership flag).
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    filters_[i] = in_topk_[i] ? Filter{m, kPlusInf} : Filter{kMinusInf, m};
  }
}

void TopkFilterMonitor::rebuild_id_lists() {
  topk_ids_.clear();
  topk_list_.clear();
  rest_list_.clear();
  for (NodeId id = 0; id < in_topk_.size(); ++id) {
    if (in_topk_[id]) {
      topk_ids_.push_back(id);
      topk_list_.push_back(id);
    } else {
      rest_list_.push_back(id);
    }
  }
}

}  // namespace topkmon
