// Incremental ground-truth maintenance for per-step validation.
//
// The batch helpers in core/ground_truth.hpp recompute the true top-k from
// scratch: every call snapshots all n values, allocates an id vector and
// partial-sorts it. Validating a monitor after *every* observation step —
// what run_monitor / run_scenario do — turns that into the dominant cost
// of a run once the monitor itself is quiet.
//
// GroundTruthTracker keeps the answer alive across steps instead. It
// mirrors the value vector, the membership flags of the current true
// top-k, and the two boundary extrema that decide whether the set is
// still correct:
//
//   member_min_     the worst-ranked member (min value, ties by id),
//   nonmember_max_  the best-ranked non-member.
//
// Ranking is the library's canonical total order (value descending, ties
// toward the smaller id), so the tracked set is exactly
// true_topk_set / true_topk_ordered at every query — the equivalence the
// unit tests enforce over randomized trajectories of every stream family.
//
// Cost model: set_value() is O(1) for members and O(log n) for
// non-members (their updates also push a snapshot onto a lazy max-heap).
// A query first repairs the extrema — O(k) when a member update stalled
// the member minimum, amortized O(log n) when the boundary non-member
// decayed (the lazy heap pops stale snapshots until its top is current;
// boundary_rescans counts these repair events) — and only when the
// boundary was actually crossed performs a full O(n log k) rebuild
// (full_rebuilds). The heap is compacted back to one entry per
// non-member when stale snapshots outnumber live ones 2:1, so its size
// stays O(n) and, at steady state, no query or update allocates: all
// scratch is owned by the tracker and reused.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace topkmon {

class GroundTruthTracker {
 public:
  /// Tracks the top `k` of `n` values, all initially 0. Requires
  /// 1 <= k <= n.
  GroundTruthTracker(std::size_t n, std::size_t k);

  std::size_t size() const noexcept { return values_.size(); }
  std::size_t k() const noexcept { return k_; }

  /// Updates node `id`'s value. O(1); the membership consequence is
  /// settled lazily at the next query.
  void set_value(NodeId id, Value v);

  /// Current value of node `id`.
  Value value(NodeId id) const { return values_[id]; }

  /// The true top-k ids sorted ascending — element-identical to
  /// true_topk_set(values, k).
  const std::vector<NodeId>& topk_set();

  /// The true top-k ids in rank order (best first) — element-identical to
  /// true_topk_ordered(values, k). O(k log k) per call.
  const std::vector<NodeId>& ordered_topk();

  /// Strict validation: `answer` equals the canonical sorted top-k set.
  bool matches_strict(std::span<const NodeId> answer);

  /// Weak validation, element-identical to is_valid_topk(values, answer):
  /// true iff `answer` has no bad/duplicate ids and every member's value
  /// >= every non-member's value (any tie-break accepted).
  bool is_valid(std::span<const NodeId> answer);

  /// Value of the worst-ranked member (repairs lazily first). The sharded
  /// runtime reads this as the shard's weakest-member extremum U_s.
  Value member_min_value() {
    ensure_current();
    return member_min_val_;
  }

  /// Value of the best-ranked non-member, or -inf when k == n leaves no
  /// non-member. The sharded runtime reads this as the shard's
  /// strongest-outsider extremum L_s.
  Value nonmember_max_value() {
    if (k_ == size()) return kMinusInf;
    ensure_current();
    return nonmember_max_val_;
  }

  // -- diagnostics ----------------------------------------------------------
  /// Full O(n log k) rebuilds performed (boundary crossings + the initial
  /// build).
  std::uint64_t full_rebuilds() const noexcept { return full_rebuilds_; }

  /// Boundary repairs performed because the boundary non-member's value
  /// decayed (no membership change) — amortized O(log n) lazy-heap pops
  /// each, where the pre-PR4 implementation paid an O(n) rescan.
  std::uint64_t boundary_rescans() const noexcept { return boundary_rescans_; }

 private:
  /// Canonical ranking: a before b <=> larger value, ties to smaller id.
  static bool ranks_before(Value va, NodeId a, Value vb, NodeId b) noexcept {
    return va != vb ? va > vb : a < b;
  }

  /// Repairs extrema dirt and rebuilds membership if the boundary was
  /// crossed; afterwards member flags / sorted set / extrema are exact.
  void ensure_current();
  void rescan_member_min();
  void repair_nonmember_max();
  void full_rebuild();

  /// One lazy-heap snapshot: node `id` had value `value` when pushed.
  /// Valid iff the value is still current and the node is a non-member.
  struct HeapEntry {
    Value value;
    NodeId id;
  };

  /// Pushes a snapshot for a non-member update (compacts when stale
  /// entries dominate).
  void nm_heap_push(Value v, NodeId id);

  /// Rebuilds the heap to exactly one live snapshot per non-member.
  void nm_heap_rebuild();

  std::size_t k_;
  std::vector<Value> values_;
  std::vector<char> member_;       ///< current true top-k membership
  std::vector<NodeId> sorted_set_; ///< members sorted by id (canonical)

  Value member_min_val_ = 0;       ///< worst-ranked member
  NodeId member_min_id_ = 0;
  Value nonmember_max_val_ = 0;    ///< best-ranked non-member (k < n only)
  NodeId nonmember_max_id_ = 0;

  bool built_ = false;             ///< first query triggers the initial build
  bool member_dirty_ = false;      ///< member minimum may have risen
  bool nonmember_dirty_ = false;   ///< non-member maximum may have fallen

  std::uint64_t full_rebuilds_ = 0;
  std::uint64_t boundary_rescans_ = 0;

  // Reused scratch (no per-query allocations at steady state).
  std::vector<NodeId> rank_scratch_;    ///< rebuild / ordered-query ids
  std::vector<NodeId> ordered_topk_;
  std::vector<char> cand_member_;       ///< is_valid() candidate flags

  /// Lazy max-heap of non-member value snapshots under the canonical
  /// order; between full rebuilds each non-member always has its current
  /// value on the heap, so the first non-stale top is nonmember_max.
  std::vector<HeapEntry> nm_heap_;
};

}  // namespace topkmon
