// Algorithm 1 of the paper: the randomized filter-based online algorithm
// for Top-k-Position Monitoring.
//
// Invariants maintained between steps (checked by the test suite):
//  * filters form a valid set of filters (Lemma 2.2): top-k nodes hold
//    [M, +inf], the rest hold [-inf, M] for the current boundary M;
//  * the coordinator's top-k set equals the ground truth.
//
// Per time step: nodes with filter violations run MINIMUMPROTOCOL(k)
// (former top-k members whose value fell below M) and MAXIMUMPROTOCOL(n-k)
// (outsiders whose value rose above M). FILTERVIOLATIONHANDLER then obtains
// the missing side's extremum over the *whole* side, accumulates
// T+ (lowest top-k value seen since the last reset) and T- (highest
// outsider value), and either halves the filter gap by broadcasting the
// midpoint of [T-, T+] — possible at most log Δ times — or, if T+ < T-,
// rebuilds everything via FILTERRESET (k+1 repeated MAXIMUMPROTOCOL runs).
// This yields the paper's O((log Δ + k) · M(n)) competitiveness
// (Theorem 3.3; with Algorithm 2 as the protocol, Theorem 4.4).
#pragma once

#include <optional>

#include "core/filter.hpp"
#include "core/monitor.hpp"
#include "protocols/extremum.hpp"

namespace topkmon {

class TopkFilterMonitor final : public MonitorBase {
 public:
  struct Options {
    /// Forwarded to every protocol execution (beacon-suppression ablation).
    bool suppress_idle_broadcasts = false;
  };

  /// Monitors the k largest values. Requires 1 <= k <= n at initialize().
  explicit TopkFilterMonitor(std::size_t k);
  TopkFilterMonitor(std::size_t k, Options opts);

  std::string_view name() const override { return "topk_filter"; }
  void initialize(Cluster& cluster) override;
  void step(Cluster& cluster, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  // -- introspection for tests ------------------------------------------------
  /// Current common filter boundary M.
  Value boundary() const noexcept { return mid_; }
  /// Current node filters (node-side state).
  const std::vector<Filter>& filters() const noexcept { return filters_; }
  /// Current membership flags.
  const std::vector<char>& membership() const noexcept { return in_topk_; }
  /// Accumulated T+ / T- since the last reset.
  Value t_plus() const noexcept { return tplus_; }
  Value t_minus() const noexcept { return tminus_; }

 private:
  void filter_reset(Cluster& cluster);
  void violation_handler(Cluster& cluster, std::optional<Value> min_v,
                         std::optional<Value> max_v);
  void apply_boundary(Cluster& cluster, Value m);
  void rebuild_id_lists();

  std::size_t k_;
  Options opts_;
  ProtocolOptions popts_;
  bool degenerate_ = false;  ///< k == n: the answer can never change

  // Node-side state (one entry per node).
  std::vector<Filter> filters_;
  std::vector<char> in_topk_;

  // Coordinator-side state.
  std::vector<NodeId> topk_ids_;   ///< sorted by id (canonical answer)
  std::vector<NodeId> topk_list_;  ///< membership lists for protocol runs
  std::vector<NodeId> rest_list_;
  Value tplus_ = 0;
  Value tminus_ = 0;
  Value mid_ = 0;

  // Violation-list scratch, reused across steps (empty on settled steps,
  // capacity retained across violation bursts).
  std::vector<NodeId> viol_top_;
  std::vector<NodeId> viol_bot_;
};

}  // namespace topkmon
