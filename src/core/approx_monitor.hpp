// ε-approximate Top-k-Position Monitoring — an extension in the spirit of
// the approximation knob of Babcock–Olston and the error-tolerant variants
// common in the continuous-monitoring literature (the paper itself only
// treats the exact problem; see DESIGN.md's extension inventory).
//
// Semantics: the coordinator's set R must always satisfy
//     for all i in R, j not in R:  v_i >= v_j − ε
// ("ε-valid top-k"). With ε = 0 this is the exact problem.
//
// Mechanism: Algorithm 1's machinery with widened filters. Around the
// boundary M, top-k nodes hold [M − ε/2, +inf] and outsiders
// [−inf, M + ε/2]; values must stray ε/2 beyond the boundary before any
// message is sent, so slowly-mixing streams become much cheaper. The
// violation handler accumulates T+/T− exactly as Algorithm 1 and resets
// only when T+ < T− − ε (the set cannot be ε-valid any more); otherwise
// the boundary is re-placed at the midpoint, which keeps both widened
// filters ε/2-consistent (see apply_boundary for the invariant argument).
#pragma once

#include <optional>

#include "core/filter.hpp"
#include "core/monitor.hpp"
#include "protocols/extremum.hpp"

namespace topkmon {

class ApproxTopkMonitor final : public MonitorBase {
 public:
  struct Options {
    /// Tolerated exactness slack ε >= 0 (0 = exact; then this monitor
    /// behaves like TopkFilterMonitor up to the reset inequality).
    Value epsilon = 0;
    bool suppress_idle_broadcasts = false;
  };

  explicit ApproxTopkMonitor(std::size_t k);
  ApproxTopkMonitor(std::size_t k, Options opts);

  std::string_view name() const override { return "approx_topk"; }
  void initialize(Cluster& cluster) override;
  void step(Cluster& cluster, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  Value epsilon() const noexcept { return opts_.epsilon; }
  Value boundary() const noexcept { return mid_; }
  const std::vector<Filter>& filters() const noexcept { return filters_; }
  const std::vector<char>& membership() const noexcept { return in_topk_; }

 private:
  void filter_reset(Cluster& cluster);
  void violation_handler(Cluster& cluster, std::optional<Value> min_v,
                         std::optional<Value> max_v);
  void apply_boundary(Cluster& cluster, Value m);
  void rebuild_id_lists();

  std::size_t k_;
  Options opts_;
  ProtocolOptions popts_;
  bool degenerate_ = false;

  std::vector<Filter> filters_;
  std::vector<char> in_topk_;
  std::vector<NodeId> topk_ids_;
  std::vector<NodeId> topk_list_;
  std::vector<NodeId> rest_list_;
  Value tplus_ = 0;
  Value tminus_ = 0;
  Value mid_ = 0;
};

}  // namespace topkmon
