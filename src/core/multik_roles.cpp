#include "core/multik_roles.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

namespace {

// Signal encoding: 0 escalates to the shared reset (multi-band jump);
// otherwise 1 + 2*boundary + (up ? 1 : 0) names the single crossed
// boundary and the direction.
constexpr std::int64_t kEscalateSignal = 0;

constexpr std::int64_t encode_cross(std::size_t boundary, bool up) noexcept {
  return 1 + 2 * static_cast<std::int64_t>(boundary) + (up ? 1 : 0);
}

}  // namespace

// ---------------------------------------------------------------------------
// MultiKNode
// ---------------------------------------------------------------------------

Value MultiKNode::to_w(const NodeCtx& ctx, Value v) const noexcept {
  const auto n = static_cast<Value>(ctx.n());
  return v * n + (n - 1 - static_cast<Value>(ctx.id()));
}

void MultiKNode::on_init(NodeCtx& ctx, Value) {
  bks_.clear();
  for (const std::size_t k : ks_) {
    if (k < ctx.n()) bks_.push_back(k);
  }
  band_ = bks_.size();
  mids_.assign(bks_.size(), 0);
  // Unbounded until the first reset's announce order assigns a band (a
  // k == n only deployment never bounds it — the answer is static).
  ctx.set_needs_observe(false);
}

void MultiKNode::on_observe(NodeCtx& ctx, Value v, TimeStep) {
  const Value w = to_w(ctx, v);
  const int side = filter_.violation_side(w);
  if (side == 0) {
    ctx.set_needs_observe(false);
    return;
  }
  ctx.set_needs_observe(true);
  // Mirror of MultiKMonitor::step()'s classification: count how many
  // boundary midpoints the value crossed; a multi-band jump escalates to
  // the shared reset, a single crossing names its boundary.
  const std::size_t m = bks_.size();
  std::size_t crossed = 0;
  if (side > 0) {
    for (std::size_t j = band_; j-- > 0;) {
      if (w > mids_[j]) {
        ++crossed;
      } else {
        break;
      }
    }
    if (crossed != 1) {
      pending_.reset();
      ctx.signal(kEscalateSignal);
      return;
    }
    pending_ = PendingCross{band_ - 1, true};
    ctx.signal(encode_cross(band_ - 1, true));
  } else {
    for (std::size_t j = band_; j < m; ++j) {
      if (w < mids_[j]) {
        ++crossed;
      } else {
        break;
      }
    }
    if (crossed != 1) {
      pending_.reset();
      ctx.signal(kEscalateSignal);
      return;
    }
    pending_ = PendingCross{band_, false};
    ctx.signal(encode_cross(band_, false));
  }
}

void MultiKNode::on_message(NodeCtx& ctx, const Message& m) {
  switch (m.kind) {
    case MsgKind::kRoundBeacon:
      sess_.handle_beacon(m);
      break;
    case MsgKind::kWinnerAnnounce: {
      if (!selecting_) break;
      const auto beacon = unpack_beacon_b(m.b);
      const auto n = static_cast<Value>(ctx.n());
      sel_w_.push_back(m.a * n + (n - 1 - static_cast<Value>(beacon.holder)));
      if (beacon.holder == ctx.id()) {
        excluded_ = true;
        sel_own_rank_ = announces_seen_;
      }
      ++announces_seen_;
      if (announces_seen_ == sel_want_) finish_selection(ctx);
      break;
    }
    case MsgKind::kFilterUpdate: {
      selecting_ = false;
      const auto j = static_cast<std::size_t>(m.b);
      if (j < mids_.size()) {
        mids_[j] = m.a;
        rebuild_filter(ctx);
      }
      break;
    }
    default:
      break;  // kProtocolStart is informational for nodes
  }
}

void MultiKNode::on_control(NodeCtx& ctx, const Control& c) {
  switch (static_cast<MultiKControlOp>(c.op)) {
    case MultiKControlOp::kStartSelection: {
      selecting_ = true;
      excluded_ = false;
      announces_seen_ = 0;
      sel_w_.clear();
      sel_own_rank_.reset();
      sel_want_ = static_cast<std::size_t>(c.a);
      // The reset supersedes any unconsumed crossing.
      pending_.reset();
      break;
    }
    case MultiKControlOp::kStartSession: {
      const auto kind = static_cast<MultiKSessionGroup>(c.b & 7);
      const auto j = static_cast<std::size_t>(c.b >> 3);
      bool join = false;
      switch (kind) {
        case MultiKSessionGroup::kViolDown:
          join = pending_.has_value() && !pending_->up &&
                 pending_->boundary == j;
          if (join) pending_.reset();
          break;
        case MultiKSessionGroup::kViolUp:
          join = pending_.has_value() && pending_->up &&
                 pending_->boundary == j;
          if (join) pending_.reset();
          break;
        case MultiKSessionGroup::kSideAbove:
          join = band_ <= j;
          break;
        case MultiKSessionGroup::kSideBelow:
          join = band_ > j;
          break;
        case MultiKSessionGroup::kSelectAll:
          join = selecting_ && !excluded_;
          break;
      }
      if (join) {
        sess_.join(ctx, unpack_session_start(c));
      } else {
        sess_.skip();
      }
      break;
    }
  }
}

void MultiKNode::on_timer(NodeCtx& ctx) { sess_.run_round(ctx, ctx.value()); }

void MultiKNode::on_recover(NodeCtx& ctx) {
  sess_.reset();
  selecting_ = false;
  excluded_ = false;
  announces_seen_ = 0;
  pending_.reset();
  // The surviving band/filter may predate boundaries renegotiated during
  // the outage; the coordinator's recovery reset re-bands everyone.
  ctx.set_needs_observe(true);
}

void MultiKNode::finish_selection(NodeCtx& ctx) {
  selecting_ = false;
  const std::size_t m = bks_.size();
  if (sel_own_rank_.has_value()) {
    // Band of rank r (1-based): number of boundaries with k < r.
    std::size_t bd = 0;
    for (const std::size_t k : bks_) {
      if (k < *sel_own_rank_ + 1) ++bd;
    }
    band_ = bd;
  } else {
    band_ = m;  // non-winners sit below every boundary
  }
  for (std::size_t j = 0; j < m; ++j) {
    mids_[j] = midpoint(sel_w_[bks_[j]], sel_w_[bks_[j] - 1]);
  }
  rebuild_filter(ctx);
}

void MultiKNode::rebuild_filter(NodeCtx& ctx) {
  const std::size_t m = bks_.size();
  const Value lo = band_ == m ? kMinusInf : mids_[band_];
  const Value hi = band_ == 0 ? kPlusInf : mids_[band_ - 1];
  filter_ = Filter{lo, hi};
  ctx.set_needs_observe(!filter_.contains(to_w(ctx, ctx.value())));
}

// ---------------------------------------------------------------------------
// MultiKCoordinator
// ---------------------------------------------------------------------------

MultiKCoordinator::MultiKCoordinator(std::vector<std::size_t> ks, Options opts)
    : ks_(std::move(ks)) {
  sess_.suppress_idle = opts.suppress_idle_broadcasts;
  if (ks_.empty()) {
    throw std::invalid_argument("MultiKCoordinator: need at least one k");
  }
  if (ks_.size() > 200) {
    throw std::invalid_argument("MultiKCoordinator: too many boundaries");
  }
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    if (ks_[i] == 0 || (i > 0 && ks_[i] <= ks_[i - 1])) {
      throw std::invalid_argument(
          "MultiKCoordinator: ks must be positive and strictly increasing");
    }
  }
}

Value MultiKCoordinator::to_w(NodeId id, Value v) const noexcept {
  return v * static_cast<Value>(n_) +
         (static_cast<Value>(n_) - 1 - static_cast<Value>(id));
}

void MultiKCoordinator::on_init(CoordCtx& ctx) {
  n_ = ctx.n();
  if (ks_.back() > n_) {
    throw std::invalid_argument("MultiKCoordinator: largest k > n");
  }
  boundaries_.clear();
  for (const std::size_t k : ks_) {
    if (k < n_) boundaries_.push_back(Boundary{k, 0, 0, 0});
  }
  band_.assign(n_, static_cast<std::uint8_t>(boundaries_.size()));
  pending_down_.assign(boundaries_.size(), 0);
  pending_up_.assign(boundaries_.size(), 0);
  cycle_down_.assign(boundaries_.size(), 0);
  cycle_up_.assign(boundaries_.size(), 0);
  if (boundaries_.empty()) {
    // Only k == n was requested: the answer is static.
    topk_smallest_.clear();
    for (NodeId id = 0; id < n_; ++id) topk_smallest_.push_back(id);
    installed_ = true;
    return;
  }
  begin_full_reset(ctx);
}

void MultiKCoordinator::on_step_begin(CoordCtx& ctx, TimeStep) {
  if (boundaries_.empty()) return;
  const auto& signals = ctx.signals();
  if (!signals.empty()) {
    ++mstats_.violation_steps;
    mstats_.violations += signals.size();
    for (const Signal& s : signals) {
      if (s.code == kEscalateSignal) {
        pending_escalate_ = true;
      } else {
        const auto j = static_cast<std::size_t>((s.code - 1) / 2);
        const bool up = ((s.code - 1) % 2) == 1;
        if (j < boundaries_.size()) (up ? pending_up_ : pending_down_)[j] = 1;
      }
    }
  }
  if (phase_ != Phase::kIdle) return;
  if (!installed_) {
    // The bands were never established — a reset selection aborted under
    // message loss. Defensively re-run it.
    ++mstats_.full_rebuilds;
    begin_full_reset(ctx);
    return;
  }
  if (pending_escalate_) {
    begin_full_reset(ctx);
    return;
  }
  const bool any =
      std::any_of(pending_down_.begin(), pending_down_.end(),
                  [](char f) { return f != 0; }) ||
      std::any_of(pending_up_.begin(), pending_up_.end(),
                  [](char f) { return f != 0; });
  if (any) start_cycle(ctx);
}

void MultiKCoordinator::on_message(CoordCtx&, const Message& m) {
  if (m.kind != MsgKind::kValueReport) return;
  sess_.fold(m);
}

void MultiKCoordinator::on_timer(CoordCtx& ctx) {
  if (!sess_.active) {
    if (pending_select_) {
      if (select_gap_ > 0) {
        --select_gap_;
        ctx.arm_timer();
        return;
      }
      pending_select_ = false;
      start_session(ctx, Direction::kMax, MultiKSessionGroup::kSelectAll, 0,
                    n_);
    }
    return;
  }
  if (!sess_.advance(ctx)) return;
  conclude_session(ctx);
}

void MultiKCoordinator::start_cycle(CoordCtx& ctx) {
  cycle_down_ = pending_down_;
  cycle_up_ = pending_up_;
  std::fill(pending_down_.begin(), pending_down_.end(), char{0});
  std::fill(pending_up_.begin(), pending_up_.end(), char{0});
  cur_boundary_ = 0;
  advance_boundary(ctx);
}

void MultiKCoordinator::start_session(CoordCtx& ctx, Direction dir,
                                      MultiKSessionGroup kind,
                                      std::size_t boundary,
                                      std::uint64_t n_upper) {
  ++mstats_.protocol_runs;
  const std::int64_t group = (static_cast<std::int64_t>(boundary) << 3) |
                             static_cast<std::int64_t>(kind);
  sess_.begin(ctx, static_cast<std::int64_t>(MultiKControlOp::kStartSession),
              dir, group, n_upper);
}

void MultiKCoordinator::advance_boundary(CoordCtx& ctx) {
  const std::size_t m = boundaries_.size();
  while (cur_boundary_ < m && cycle_down_[cur_boundary_] == 0 &&
         cycle_up_[cur_boundary_] == 0) {
    ++cur_boundary_;
  }
  if (cur_boundary_ >= m) {
    cycle_done(ctx);
    return;
  }
  // Per-boundary Algorithm 1 handler: single-band crossings keep each
  // boundary's violators disjoint from other boundaries' sides' extrema,
  // so the boundaries are repaired independently, in ascending order.
  ++mstats_.handler_calls;
  min_w_.reset();
  max_w_.reset();
  const Boundary& b = boundaries_[cur_boundary_];
  if (cycle_down_[cur_boundary_] != 0) {
    phase_ = Phase::kViolDown;
    start_session(ctx, Direction::kMin, MultiKSessionGroup::kViolDown,
                  cur_boundary_, b.k);
  } else {
    phase_ = Phase::kViolUp;
    start_session(ctx, Direction::kMax, MultiKSessionGroup::kViolUp,
                  cur_boundary_, n_ - b.k);
  }
}

void MultiKCoordinator::conclude_session(CoordCtx& ctx) {
  if (phase_ == Phase::kSelect) sess_.announce(ctx);
  if (!sess_.have_best) {
    abort_cycle();
    return;
  }
  const Boundary* b =
      cur_boundary_ < boundaries_.size() ? &boundaries_[cur_boundary_] : nullptr;
  switch (phase_) {
    case Phase::kViolDown:
      min_w_ = to_w(sess_.best_holder, sess_.best_value);
      if (cycle_up_[cur_boundary_] != 0) {
        phase_ = Phase::kViolUp;
        start_session(ctx, Direction::kMax, MultiKSessionGroup::kViolUp,
                      cur_boundary_, n_ - b->k);
      } else {
        handler_transition(ctx);
      }
      break;
    case Phase::kViolUp:
      max_w_ = to_w(sess_.best_holder, sess_.best_value);
      handler_transition(ctx);
      break;
    case Phase::kFullSide:
      if (sess_.dir == Direction::kMax) {
        max_w_ = to_w(sess_.best_holder, sess_.best_value);
      } else {
        min_w_ = to_w(sess_.best_holder, sess_.best_value);
      }
      decide_boundary(ctx);
      break;
    case Phase::kSelect: {
      for (const auto& w : sel_winners_) {
        if (w.second == sess_.best_holder) {
          // Repeat winner (lost announce, drops only): abandon the
          // reset; the defensive rebuild retries next step.
          abort_cycle();
          return;
        }
      }
      sel_winners_.emplace_back(sess_.best_value, sess_.best_holder);
      if (sel_winners_.size() < sel_want_) {
        const std::uint64_t gap = ctx.flush_ticks();
        if (gap == 0) {
          start_session(ctx, Direction::kMax, MultiKSessionGroup::kSelectAll,
                        0, n_);
        } else {
          pending_select_ = true;
          select_gap_ = gap;
          ctx.arm_timer();
        }
      } else {
        finish_selection(ctx);
      }
      break;
    }
    case Phase::kIdle:
      break;  // unreachable
  }
}

void MultiKCoordinator::handler_transition(CoordCtx& ctx) {
  // Obtain the side extremum the crossings did not deliver, announced by
  // a charged kProtocolStart tagged with the boundary index.
  phase_ = Phase::kFullSide;
  const Boundary& b = boundaries_[cur_boundary_];
  Message start;
  start.kind = MsgKind::kProtocolStart;
  start.a = static_cast<std::int64_t>(cur_boundary_);
  ctx.broadcast(start);
  if (!max_w_.has_value()) {
    start_session(ctx, Direction::kMax, MultiKSessionGroup::kSideBelow,
                  cur_boundary_, n_ - b.k);
  } else {
    start_session(ctx, Direction::kMin, MultiKSessionGroup::kSideAbove,
                  cur_boundary_, b.k);
  }
}

void MultiKCoordinator::decide_boundary(CoordCtx& ctx) {
  Boundary& b = boundaries_[cur_boundary_];
  b.tplus_w = std::min(b.tplus_w, *min_w_);
  b.tminus_w = std::max(b.tminus_w, *max_w_);
  if (b.tplus_w < b.tminus_w) {
    // Shared reset: rebuilds every boundary at once, abandoning the
    // remaining repairs of this cycle.
    begin_full_reset(ctx);
    return;
  }
  ++mstats_.midpoint_updates;
  b.mid_w = midpoint(b.tminus_w, b.tplus_w);
  Message update;
  update.kind = MsgKind::kFilterUpdate;
  update.a = b.mid_w;
  update.b = static_cast<std::int64_t>(cur_boundary_);
  ctx.broadcast(update);
  ++cur_boundary_;
  advance_boundary(ctx);
}

void MultiKCoordinator::begin_full_reset(CoordCtx& ctx) {
  ++mstats_.filter_resets;
  installed_ = false;
  pending_escalate_ = false;
  std::fill(pending_down_.begin(), pending_down_.end(), char{0});
  std::fill(pending_up_.begin(), pending_up_.end(), char{0});
  phase_ = Phase::kSelect;
  sel_want_ = boundaries_.back().k + 1;
  sel_winners_.clear();
  Control sel;
  sel.op = static_cast<std::int64_t>(MultiKControlOp::kStartSelection);
  sel.a = static_cast<std::int64_t>(sel_want_);
  ctx.control_broadcast(sel);
  start_session(ctx, Direction::kMax, MultiKSessionGroup::kSelectAll, 0, n_);
}

void MultiKCoordinator::finish_selection(CoordCtx& ctx) {
  const std::size_t m = boundaries_.size();
  band_.assign(n_, static_cast<std::uint8_t>(m));
  std::vector<Value> rank_w(sel_winners_.size());
  for (std::size_t r = 0; r < sel_winners_.size(); ++r) {
    const auto& win = sel_winners_[r];
    rank_w[r] = to_w(win.second, win.first);
    std::uint8_t bd = 0;
    for (const auto& b : boundaries_) {
      if (b.k < r + 1) ++bd;
    }
    band_[win.second] = bd;
  }
  for (auto& b : boundaries_) {
    b.tplus_w = rank_w[b.k - 1];
    b.tminus_w = rank_w[b.k];
    b.mid_w = midpoint(b.tminus_w, b.tplus_w);
  }
  refresh_answer();
  installed_ = true;
  cycle_done(ctx);
}

void MultiKCoordinator::refresh_answer() {
  topk_smallest_.clear();
  for (NodeId id = 0; id < n_; ++id) {
    if (band_[id] == 0) topk_smallest_.push_back(id);
  }
}

void MultiKCoordinator::cycle_done(CoordCtx& ctx) {
  phase_ = Phase::kIdle;
  min_w_.reset();
  max_w_.reset();
  std::fill(cycle_down_.begin(), cycle_down_.end(), char{0});
  std::fill(cycle_up_.begin(), cycle_up_.end(), char{0});
  if (resync_pending_) {
    resync_pending_ = false;
    begin_full_reset(ctx);
    return;
  }
  if (pending_escalate_) {
    begin_full_reset(ctx);
    return;
  }
  const bool any =
      std::any_of(pending_down_.begin(), pending_down_.end(),
                  [](char f) { return f != 0; }) ||
      std::any_of(pending_up_.begin(), pending_up_.end(),
                  [](char f) { return f != 0; });
  if (any) start_cycle(ctx);
}

void MultiKCoordinator::abort_cycle() {
  phase_ = Phase::kIdle;
  sess_.active = false;
  pending_select_ = false;
  select_gap_ = 0;
  min_w_.reset();
  max_w_.reset();
  std::fill(cycle_down_.begin(), cycle_down_.end(), char{0});
  std::fill(cycle_up_.begin(), cycle_up_.end(), char{0});
}

std::vector<NodeId> MultiKCoordinator::topk_for(std::size_t k) const {
  if (k == n_) {
    std::vector<NodeId> all(n_);
    for (NodeId id = 0; id < n_; ++id) all[id] = id;
    return all;
  }
  std::size_t j = boundaries_.size();
  for (std::size_t i = 0; i < boundaries_.size(); ++i) {
    if (boundaries_[i].k == k) {
      j = i;
      break;
    }
  }
  if (j == boundaries_.size()) {
    throw std::invalid_argument("MultiKCoordinator: k is not monitored");
  }
  std::vector<NodeId> out;
  for (NodeId id = 0; id < n_; ++id) {
    if (band_[id] <= j) out.push_back(id);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fault hooks: crash and recovery
// ---------------------------------------------------------------------------

void MultiKCoordinator::on_node_down(CoordCtx& ctx, NodeId id) {
  const std::size_t m = boundaries_.size();
  if (m == 0) return;
  bool structural = band_[id] < m;
  if (phase_ == Phase::kSelect) {
    for (const auto& w : sel_winners_) {
      structural = structural || w.second == id;
    }
  }
  if (band_[id] < m) {
    band_[id] = static_cast<std::uint8_t>(m);
    refresh_answer();
  }
  if (structural) {
    // The node sat above some boundary (or was an in-flight reset
    // winner): every boundary it anchored must be re-found.
    abort_cycle();
    begin_full_reset(ctx);
  }
}

void MultiKCoordinator::on_node_up(CoordCtx& ctx, NodeId) {
  if (boundaries_.empty()) return;
  // The returning node's band is unknowable without fresh values; the
  // shared reset's announce order doubles as the re-sync assignment.
  ++mstats_.resyncs;
  if (phase_ == Phase::kIdle && !sess_.active) {
    begin_full_reset(ctx);
  } else {
    resync_pending_ = true;
  }
}

}  // namespace topkmon
