// Native role-separated implementation of the multi-k monitor
// (core/multik_monitor.hpp): one shared filter-tree instance maintaining
// every requested boundary k ∈ ks at once in the injective w-space.
// Each node guards its band interval (between the midpoints of its two
// adjacent boundaries) locally, classifies its own crossing — including
// the multi-band escalation — and the coordinator repairs each crossed
// boundary with the usual violator/missing-side protocol sessions
// (core/role_session.hpp), processed in ascending boundary order.
//
// Under the instant NetworkSpec the port is message-for-message and
// coin-flip-for-coin-flip identical to the lock-step MultiKMonitor
// (differential harness, tests/core/role_port_harness.hpp): the same
// per-boundary session sequence, the same kProtocolStart / kFilterUpdate
// broadcasts tagged with the boundary index, the same (k_max+1)-round
// announce-driven shared reset, and the same counters. Bands change only
// at a reset, so each node derives its band and every boundary midpoint
// from the announce order — the lock-step model's free knowledge — with
// no extra charged messages.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/filter.hpp"
#include "core/role_session.hpp"
#include "core/roles.hpp"

namespace topkmon {

/// Control opcodes of the multi-k monitor's control plane.
enum class MultiKControlOp : std::int64_t {
  /// a = direction (0 = max, 1 = min), b = (boundary << 3) | group kind
  /// (MultiKSessionGroup), c = (epoch << 8) | log_n.
  kStartSession = 1,
  /// The shared reset selection begins: a = number of winners (k_max+1).
  kStartSelection = 2,
};

/// Group kinds of a session's participant set; crosser and side groups
/// are scoped to the boundary index packed above them in the b word.
enum class MultiKSessionGroup : std::int64_t {
  kViolDown = 0,   ///< unconsumed downward crossing of boundary j
  kViolUp = 1,     ///< unconsumed upward crossing of boundary j
  kSideAbove = 2,  ///< nodes with band <= j
  kSideBelow = 3,  ///< nodes with band > j
  kSelectAll = 4,  ///< reset participants not yet announced as winners
};

/// Node-side half: band filter check, crossing classification (with the
/// multi-band escalation), session participation, announce bookkeeping.
class MultiKNode final : public NodeAlgo {
 public:
  explicit MultiKNode(std::vector<std::size_t> ks) : ks_(std::move(ks)) {}

  void on_init(NodeCtx& ctx, Value v0) override;
  void on_observe(NodeCtx& ctx, Value v, TimeStep t) override;
  void on_message(NodeCtx& ctx, const Message& m) override;
  void on_control(NodeCtx& ctx, const Control& c) override;
  void on_timer(NodeCtx& ctx) override;
  void on_recover(NodeCtx& ctx) override;

 private:
  Value to_w(const NodeCtx& ctx, Value v) const noexcept;
  void finish_selection(NodeCtx& ctx);
  void rebuild_filter(NodeCtx& ctx);

  std::vector<std::size_t> ks_;
  std::vector<std::size_t> bks_;  ///< monitored boundaries' k (k < n)
  std::size_t band_ = 0;
  std::vector<Value> mids_;  ///< boundary midpoints, w-space
  Filter filter_{};
  struct PendingCross {
    std::size_t boundary;
    bool up;
  };
  std::optional<PendingCross> pending_;
  NodeProtoSession sess_;

  bool selecting_ = false;
  bool excluded_ = false;
  std::size_t sel_want_ = 0;
  std::size_t announces_seen_ = 0;
  std::vector<Value> sel_w_;  ///< winners' w in announce (rank) order
  std::optional<std::size_t> sel_own_rank_;
};

/// Coordinator-side half: per-boundary T+/T- accumulators, the band map,
/// the boundary-by-boundary repair cycle, and the shared reset.
class MultiKCoordinator final : public CoordinatorAlgo {
 public:
  struct Options {
    /// Skip session-round beacons that would repeat the running extremum
    /// (the lock-step grammar's `nobeacon`).
    bool suppress_idle_broadcasts = false;
  };

  explicit MultiKCoordinator(std::vector<std::size_t> ks)
      : MultiKCoordinator(std::move(ks), {}) {}
  MultiKCoordinator(std::vector<std::size_t> ks, Options opts);

  std::string_view name() const override { return "multi_k"; }
  void on_init(CoordCtx& ctx) override;
  void on_step_begin(CoordCtx& ctx, TimeStep t) override;
  void on_message(CoordCtx& ctx, const Message& m) override;
  void on_timer(CoordCtx& ctx) override;
  /// The smallest monitored k's answer (band-0 nodes), mirroring the
  /// lock-step monitor's primary answer.
  const std::vector<NodeId>& topk() const override { return topk_smallest_; }

  // -- fault hooks (sim/fault_plan.hpp) -------------------------------------
  void on_node_down(CoordCtx& ctx, NodeId id) override;
  void on_node_up(CoordCtx& ctx, NodeId id) override;

  // -- introspection for tests ---------------------------------------------
  /// The answer for any monitored k (throws for an unmonitored one).
  std::vector<NodeId> topk_for(std::size_t k) const;

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kViolDown,  ///< min session over boundary j's downward crossers
    kViolUp,    ///< max session over boundary j's upward crossers
    kFullSide,  ///< boundary j's missing-side session
    kSelect,    ///< the shared reset selection runs
  };

  struct Boundary {
    std::size_t k;
    Value tplus_w = 0;
    Value tminus_w = 0;
    Value mid_w = 0;
  };

  Value to_w(NodeId id, Value v) const noexcept;
  void start_cycle(CoordCtx& ctx);
  void start_session(CoordCtx& ctx, Direction dir, MultiKSessionGroup kind,
                     std::size_t boundary, std::uint64_t n_upper);
  void conclude_session(CoordCtx& ctx);
  void advance_boundary(CoordCtx& ctx);
  void handler_transition(CoordCtx& ctx);
  void decide_boundary(CoordCtx& ctx);
  void begin_full_reset(CoordCtx& ctx);
  void finish_selection(CoordCtx& ctx);
  void refresh_answer();
  void cycle_done(CoordCtx& ctx);
  void abort_cycle();

  std::vector<std::size_t> ks_;
  std::size_t n_ = 0;
  std::vector<Boundary> boundaries_;  ///< only k < n; empty = degenerate
  std::vector<std::uint8_t> band_;
  std::vector<NodeId> topk_smallest_;
  bool installed_ = false;  ///< a reset established every boundary

  // Pending / in-cycle crossing flags, one slot per boundary.
  bool pending_escalate_ = false;
  std::vector<char> pending_down_;
  std::vector<char> pending_up_;
  std::vector<char> cycle_down_;
  std::vector<char> cycle_up_;

  Phase phase_ = Phase::kIdle;
  std::size_t cur_boundary_ = 0;  ///< boundary being repaired (kViol*/kFullSide)
  std::optional<Value> min_w_;
  std::optional<Value> max_w_;
  CoordProtoSession sess_;

  // Shared reset selection.
  std::size_t sel_want_ = 0;
  std::vector<std::pair<Value, NodeId>> sel_winners_;  ///< (raw value, id)
  bool pending_select_ = false;
  std::uint64_t select_gap_ = 0;

  bool resync_pending_ = false;
};

}  // namespace topkmon
