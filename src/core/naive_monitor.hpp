// The naive baseline of §2.1: every node forwards its observations to the
// coordinator, which therefore always has full information and computes
// the top-k locally. Two variants: `send_on_change_only` skips steps where
// a node's value did not move (a common practical refinement; the paper's
// formulation sends every observation).
#pragma once

#include <optional>

#include "core/ground_truth_tracker.hpp"
#include "core/monitor.hpp"
#include "sim/message.hpp"

namespace topkmon {

class NaiveMonitor final : public MonitorBase {
 public:
  struct Options {
    bool send_on_change_only = false;
  };

  explicit NaiveMonitor(std::size_t k);
  NaiveMonitor(std::size_t k, Options opts);

  std::string_view name() const override {
    return opts_.send_on_change_only ? "naive_on_change" : "naive";
  }
  void initialize(Cluster& cluster) override;
  void step(Cluster& cluster, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

 private:
  std::size_t k_;
  Options opts_;
  std::vector<Value> known_values_;          ///< coordinator's replica
  std::vector<std::optional<Value>> last_sent_;  ///< node-side dedup state
  std::vector<NodeId> topk_ids_;
  std::vector<Message> mail_;  ///< drain scratch, reused across steps
  /// Incremental top-k over the replica: O(received reports) per step
  /// instead of a fresh partial sort (identical answers by construction).
  std::optional<GroundTruthTracker> truth_;
};

}  // namespace topkmon
