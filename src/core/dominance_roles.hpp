// Native role-separated implementation of the dominance-slot monitor
// (core/dominance_monitor.hpp): the coordinator maintains a total order of
// per-node midpoint slots in the injective w-space w = v·n + (n-1-id);
// every node checks its own w against its assigned slot interval locally,
// reports violations directly, and the coordinator re-slots violators —
// occupying vacated gaps outright and splitting occupied slots after a
// one-unicast probe of the incumbent.
//
// Under the instant NetworkSpec the port is message-for-message identical
// to the lock-step DominanceMonitor (differential harness,
// tests/core/role_port_harness.hpp): same init shout/report/assign cycle,
// same kViolation reports, same probe/report pairs, same kFilterAssign
// unicasts, same counters; the monitor draws no randomness. Under delay or
// drop policies each probe stretches to the network round trip and a lost
// probe reply falls back to the incumbent's last known w — the split is
// then placed on slightly stale information, which the incumbent's own
// next violation repairs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/filter.hpp"
#include "core/roles.hpp"

namespace topkmon {

/// Node-side half: w-space filter check, violation reports, probe replies.
class DominanceNode final : public NodeAlgo {
 public:
  DominanceNode() = default;

  void on_init(NodeCtx& ctx, Value v0) override;
  void on_observe(NodeCtx& ctx, Value v, TimeStep t) override;
  void on_message(NodeCtx& ctx, const Message& m) override;
  void on_recover(NodeCtx& ctx) override;

 private:
  Value to_w(const NodeCtx& ctx, Value v) const noexcept;

  bool has_filter_ = false;
  Filter filter_{};  ///< slot interval in w-space
};

/// Coordinator-side half: the slot order, violator placement queue, and
/// the probe round trips.
class DominanceCoordinator final : public CoordinatorAlgo {
 public:
  explicit DominanceCoordinator(std::size_t k);

  std::string_view name() const override { return "dominance_midpoint"; }
  void on_init(CoordCtx& ctx) override;
  void on_step_begin(CoordCtx& ctx, TimeStep t) override;
  void on_message(CoordCtx& ctx, const Message& m) override;
  void on_timer(CoordCtx& ctx) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  // -- fault hooks (sim/fault_plan.hpp) -------------------------------------
  void on_node_down(CoordCtx& ctx, NodeId id) override;
  void on_node_up(CoordCtx& ctx, NodeId id) override;
  /// Dynamic k is free: the slot order already ranks every node, so the
  /// answer is re-read as the first k slot owners. No messages.
  void on_set_k(CoordCtx& ctx, std::size_t k) override;

  // -- introspection for tests ---------------------------------------------
  /// Slot owners from the top slot down (the monitor's full ranking).
  std::vector<NodeId> full_order() const;

 private:
  struct Slot {
    std::optional<NodeId> owner;
    Value lo = kMinusInf;  ///< w-space interval [lo, hi]
    Value hi = kPlusInf;
    Value known_w = 0;  ///< owner's w when the slot was assigned
  };

  enum class Phase : std::uint8_t {
    kIdle,
    kInitWait,   ///< collecting the init shout's replies
    kPlace,      ///< draining the violator placement queue
    kProbeWait,  ///< a split probe's round trip is in flight
  };

  void assign_filter(CoordCtx& ctx, NodeId id, Value lo_w, Value hi_w);
  /// First (highest) slot whose lower bound is <= w; nullopt when the
  /// tiling is broken (possible only after message loss desynced state).
  std::optional<std::size_t> find_slot(Value w) const;
  void build_slots(CoordCtx& ctx);
  /// Drains the placement queue until empty or a probe suspends it.
  void drain_queue(CoordCtx& ctx);
  void split_slot(CoordCtx& ctx, Value other_w);
  void compact_slots();
  void refresh_topk();
  void vacate(NodeId id);

  std::size_t k_;
  std::size_t n_ = 0;

  std::vector<Slot> slots_;
  std::vector<NodeId> topk_ids_;

  Phase phase_ = Phase::kIdle;
  bool collect_ = false;  ///< violation mail still landing this tick
  std::uint64_t wait_ = 0;
  std::vector<std::pair<Value, NodeId>> init_reports_;  ///< (w, id)
  std::vector<std::pair<Value, NodeId>> viol_new_;      ///< unplaced reports

  // Placement queue (descending w) and the in-flight probe.
  std::vector<std::pair<Value, NodeId>> queue_;  ///< drained front to back
  std::size_t queue_at_ = 0;
  std::size_t probe_slot_ = 0;    ///< slot index being split
  NodeId probe_owner_ = 0;        ///< incumbent being probed
  Value probe_w_ = 0;             ///< violator w waiting on the probe
  NodeId probe_violator_ = 0;
  std::optional<Value> probe_reply_;

  // Crash-recovery re-syncs: probe, then place the reply like a violator.
  struct Resync {
    NodeId id;
    std::uint64_t countdown;
    std::uint32_t attempt;
  };
  std::vector<Resync> resync_;
  void tick_resyncs(CoordCtx& ctx);
  std::uint64_t probe_timeout(CoordCtx& ctx) const {
    return 2 * ctx.flush_ticks() + 2;
  }
};

}  // namespace topkmon
