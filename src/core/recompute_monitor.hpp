// The "classical" algorithm of §2.1: no filters — every time step the
// coordinator recomputes the top-k from scratch by k repeated
// MAXIMUMPROTOCOL(n) runs, costing O(k log n) messages per step,
// O(T k log n) over T steps. Optimal up to the factor k on worst-case
// inputs (rotating maxima) but oblivious to temporal similarity; the
// filter-based Algorithm 1 exists precisely to beat it on similar inputs
// (experiments E7/E9).
#pragma once

#include "core/monitor.hpp"
#include "protocols/extremum.hpp"

namespace topkmon {

class RecomputeMonitor final : public MonitorBase {
 public:
  struct Options {
    bool suppress_idle_broadcasts = false;
  };

  explicit RecomputeMonitor(std::size_t k);
  RecomputeMonitor(std::size_t k, Options opts);

  std::string_view name() const override { return "recompute"; }
  void initialize(Cluster& cluster) override;
  void step(Cluster& cluster, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

 private:
  std::size_t k_;
  ProtocolOptions popts_;
  std::vector<NodeId> topk_ids_;
};

}  // namespace topkmon
