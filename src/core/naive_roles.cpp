#include "core/naive_roles.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

NaiveCoordinator::NaiveCoordinator(std::size_t k, bool send_on_change_only)
    : NaiveCoordinator(k, send_on_change_only, /*sharded=*/false) {}

NaiveCoordinator::NaiveCoordinator(std::size_t k, bool send_on_change_only,
                                   bool sharded)
    : k_(k), send_on_change_only_(send_on_change_only), sharded_(sharded) {
  if (k == 0 && !sharded) {
    throw std::invalid_argument("NaiveCoordinator: k must be >= 1");
  }
}

void NaiveCoordinator::on_init(CoordCtx& ctx) {
  if (k_ > ctx.n()) {
    throw std::invalid_argument("NaiveCoordinator: k > n");
  }
  known_values_.assign(ctx.n(), 0);
  truth_.emplace(ctx.n(), std::max<std::size_t>(k_, 1));
  if (ctx.live_count() < ctx.n()) {
    // Nodes provisioned for a later join start down: keep them out of
    // the answer until their post-join report arrives.
    for (NodeId id = 0; id < ctx.n(); ++id) {
      if (ctx.node_alive(id)) continue;
      known_values_[id] = kMinusInf;
      truth_->set_value(id, kMinusInf);
    }
  }
}

void NaiveCoordinator::on_message(CoordCtx&, const Message& m) {
  if (m.kind != MsgKind::kValueReport) return;
  known_values_[m.from] = m.a;
  truth_->set_value(m.from, m.a);
  // Any report from a node with a pending re-sync completes it: the
  // replica entry is current again.
  if (!resync_.empty()) {
    std::erase_if(resync_, [&m](const Resync& r) { return r.id == m.from; });
  }
}

void NaiveCoordinator::on_timer(CoordCtx& ctx) {
  // Re-sync retry clock: resend timed-out probes with capped exponential
  // backoff, and keep ticking while any re-sync is pending.
  if (resync_.empty()) return;
  for (Resync& r : resync_) {
    if (r.countdown > 0) {
      --r.countdown;
      continue;
    }
    ++mstats_.resync_retries;
    r.countdown = (2 * ctx.flush_ticks() + 2)
                  << std::min<std::uint32_t>(++r.attempt, 6);
    Message probe;
    probe.kind = MsgKind::kProbe;
    ctx.unicast(r.id, probe);
  }
  ctx.arm_timer();
}

void NaiveCoordinator::on_step_end(CoordCtx&, TimeStep) { refresh_answer(); }

void NaiveCoordinator::on_node_down(CoordCtx&, NodeId id) {
  std::erase_if(resync_, [id](const Resync& r) { return r.id == id; });
  known_values_[id] = kMinusInf;
  truth_->set_value(id, kMinusInf);
  refresh_answer();
}

void NaiveCoordinator::on_node_up(CoordCtx& ctx, NodeId id) {
  for (const Resync& r : resync_) {
    if (r.id == id) return;  // defensive; cleared on down
  }
  ++mstats_.resyncs;
  resync_.push_back(Resync{id, 2 * ctx.flush_ticks() + 2, 0});
  Message probe;
  probe.kind = MsgKind::kProbe;
  ctx.unicast(id, probe);
  ctx.arm_timer();
}

void NaiveCoordinator::refresh_answer() {
  if (k_ == 0) {
    topk_ids_.clear();
    return;
  }
  topk_ids_ = truth_->topk_set();
}

void NaiveCoordinator::rekey(std::size_t k) {
  if (k > known_values_.size()) {
    throw std::invalid_argument("NaiveCoordinator::rekey: k > n");
  }
  k_ = k;
  // The tracker's k is fixed at construction; rebuild it from the replica.
  truth_.emplace(known_values_.size(), std::max<std::size_t>(k_, 1));
  for (NodeId id = 0; id < known_values_.size(); ++id) {
    truth_->set_value(id, known_values_[id]);
  }
  refresh_answer();
}

Value NaiveCoordinator::weakest_member_value() {
  return k_ == 0 ? kPlusInf : truth_->member_min_value();
}

Value NaiveCoordinator::strongest_outsider_value() {
  // At quota 0 the k' = 1 shadow tracker's single member IS the strongest
  // outsider (the shard maximum).
  if (k_ == 0) return truth_->member_min_value();
  return truth_->nonmember_max_value();
}

}  // namespace topkmon
