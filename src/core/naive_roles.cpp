#include "core/naive_roles.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

namespace {

// Suspicion thresholds (see the filter monitor's for rationale): a plain
// naive node reports every step, so three unheard steps flag it; two
// missed probe deadlines escalate to quarantine.
constexpr TimeStep kNaiveSilenceSteps = 3;
constexpr std::uint32_t kNaiveSuspectAttempts = 2;

}  // namespace

NaiveCoordinator::NaiveCoordinator(std::size_t k, bool send_on_change_only)
    : NaiveCoordinator(k, send_on_change_only, /*sharded=*/false) {}

NaiveCoordinator::NaiveCoordinator(std::size_t k, bool send_on_change_only,
                                   bool sharded, bool suspect)
    : k_(k),
      send_on_change_only_(send_on_change_only),
      sharded_(sharded),
      suspect_(suspect) {
  if (k == 0 && !sharded) {
    throw std::invalid_argument("NaiveCoordinator: k must be >= 1");
  }
}

void NaiveCoordinator::on_init(CoordCtx& ctx) {
  if (k_ > ctx.n()) {
    throw std::invalid_argument("NaiveCoordinator: k > n");
  }
  known_values_.assign(ctx.n(), 0);
  if (suspect_) {
    suspects_.clear();
    quarantined_.assign(ctx.n(), 0);
    last_heard_.assign(ctx.n(), 0);
    audit_cursor_ = 0;
  }
  truth_.emplace(ctx.n(), std::max<std::size_t>(k_, 1));
  if (ctx.live_count() < ctx.n()) {
    // Nodes provisioned for a later join start down: keep them out of
    // the answer until their post-join report arrives.
    for (NodeId id = 0; id < ctx.n(); ++id) {
      if (ctx.node_alive(id)) continue;
      known_values_[id] = kMinusInf;
      truth_->set_value(id, kMinusInf);
    }
  }
}

void NaiveCoordinator::on_step_begin(CoordCtx& ctx, TimeStep t) {
  cur_step_ = t;
  if (!suspect_) return;
  const std::size_t n = known_values_.size();
  if (!send_on_change_only_) {
    // Plain naive: every live node reports every step, so silence IS the
    // anomaly — a node unheard for kNaiveSilenceSteps steps is suspected.
    for (NodeId id = 0; id < n; ++id) {
      if (quarantined_[id] != 0 || !ctx.node_alive(id)) continue;
      if (last_heard_[id] + kNaiveSilenceSteps <= t) suspect_node(ctx, id);
    }
  } else if (n > 0) {
    // naive_chg: silence is legitimate, so audit — one round-robin probe
    // per step arms the deadline machinery for the audited node.
    for (std::size_t scanned = 0; scanned < n; ++scanned) {
      const NodeId id = audit_cursor_;
      audit_cursor_ = static_cast<NodeId>((audit_cursor_ + 1) % n);
      if (quarantined_[id] != 0 || !ctx.node_alive(id)) continue;
      const bool busy =
          std::any_of(suspects_.begin(), suspects_.end(),
                      [id](const Suspect& s) { return s.id == id; }) ||
          std::any_of(resync_.begin(), resync_.end(),
                      [id](const Resync& r) { return r.id == id; });
      if (busy) continue;
      ++mstats_.polls;
      suspects_.push_back(Suspect{id, 2 * ctx.flush_ticks() + 2, 0, false, 0,
                                  0, /*audit=*/true});
      send_probe(ctx, id);
      ctx.arm_timer();
      break;
    }
  }
  // Step-driven release probes of quarantined nodes (capped backoff): a
  // probed node replies unconditionally, and any report releases it.
  for (Suspect& s : suspects_) {
    if (!s.quarantined) continue;
    if (s.release_wait > 0) {
      --s.release_wait;
      continue;
    }
    s.release_wait = std::uint32_t{1} << std::min(++s.release_attempt, 6u);
    send_probe(ctx, s.id);
  }
}

void NaiveCoordinator::on_message(CoordCtx&, const Message& m) {
  if (m.kind != MsgKind::kValueReport) return;
  if (suspect_) note_report(m.from);
  known_values_[m.from] = m.a;
  truth_->set_value(m.from, m.a);
  // Any report from a node with a pending re-sync completes it: the
  // replica entry is current again.
  if (!resync_.empty()) {
    std::erase_if(resync_, [&m](const Resync& r) { return r.id == m.from; });
  }
}

void NaiveCoordinator::on_timer(CoordCtx& ctx) {
  // Re-sync retry clock: resend timed-out probes with capped exponential
  // backoff, and keep ticking while any re-sync is pending.
  for (Resync& r : resync_) {
    if (r.countdown > 0) {
      --r.countdown;
      continue;
    }
    ++mstats_.resync_retries;
    r.countdown = (2 * ctx.flush_ticks() + 2)
                  << std::min<std::uint32_t>(++r.attempt, 6);
    Message probe;
    probe.kind = MsgKind::kProbe;
    ctx.unicast(r.id, probe);
  }
  if (!resync_.empty()) ctx.arm_timer();
  if (!suspect_ || suspects_.empty()) return;
  // Suspicion probe deadlines (quarantined entries are step-driven — a
  // tick-driven deadline for a mute node would never quiesce).
  bool ticking = false;
  for (Suspect& s : suspects_) {
    if (s.quarantined) continue;
    if (s.countdown > 0) {
      --s.countdown;
      ticking = true;
      continue;
    }
    if (s.audit) {
      // The audited node missed its deadline: that is the suspicion.
      s.audit = false;
      ++mstats_.suspicions;
    }
    if (++s.attempt >= kNaiveSuspectAttempts) {
      quarantine_node(s.id);
      continue;
    }
    s.countdown = (2 * ctx.flush_ticks() + 2) << std::min(s.attempt, 6u);
    send_probe(ctx, s.id);
    ticking = true;
  }
  if (ticking) ctx.arm_timer();
}

void NaiveCoordinator::on_step_end(CoordCtx&, TimeStep) { refresh_answer(); }

void NaiveCoordinator::on_node_down(CoordCtx&, NodeId id) {
  std::erase_if(resync_, [id](const Resync& r) { return r.id == id; });
  if (suspect_) {
    std::erase_if(suspects_, [id](const Suspect& s) { return s.id == id; });
    quarantined_[id] = 0;
  }
  known_values_[id] = kMinusInf;
  truth_->set_value(id, kMinusInf);
  refresh_answer();
}

void NaiveCoordinator::on_node_up(CoordCtx& ctx, NodeId id) {
  // Grace period for the returning node: the re-sync handshake below owns
  // its re-integration; silence detection restarts from here.
  if (suspect_) last_heard_[id] = cur_step_;
  for (const Resync& r : resync_) {
    if (r.id == id) return;  // defensive; cleared on down
  }
  ++mstats_.resyncs;
  resync_.push_back(Resync{id, 2 * ctx.flush_ticks() + 2, 0});
  Message probe;
  probe.kind = MsgKind::kProbe;
  ctx.unicast(id, probe);
  ctx.arm_timer();
}

void NaiveCoordinator::send_probe(CoordCtx& ctx, NodeId id) {
  Message probe;
  probe.kind = MsgKind::kProbe;
  ctx.unicast(id, probe);
}

void NaiveCoordinator::suspect_node(CoordCtx& ctx, NodeId id) {
  for (const Suspect& s : suspects_) {
    if (s.id == id) return;  // already suspected, audited or quarantined
  }
  ++mstats_.suspicions;
  suspects_.push_back(
      Suspect{id, 2 * ctx.flush_ticks() + 2, 0, false, 0, 0, false});
  send_probe(ctx, id);
  ctx.arm_timer();  // drive the probe deadline
}

void NaiveCoordinator::quarantine_node(NodeId id) {
  for (Suspect& s : suspects_) {
    if (s.id != id || s.quarantined) continue;
    s.quarantined = true;
    s.release_wait = 1;
    s.release_attempt = 0;
  }
  quarantined_[id] = 1;
  ++mstats_.quarantines;
  // The replica entry is the coordinator's only belief about the node;
  // distrusting it means dropping the node out of the answer until it
  // demonstrably answers again.
  known_values_[id] = kMinusInf;
  truth_->set_value(id, kMinusInf);
  refresh_answer();
}

void NaiveCoordinator::note_report(NodeId id) {
  last_heard_[id] = cur_step_;
  if (quarantined_[id] != 0) quarantined_[id] = 0;  // released: it answers
  std::erase_if(suspects_, [id](const Suspect& s) { return s.id == id; });
}

void NaiveCoordinator::refresh_answer() {
  if (k_ == 0) {
    topk_ids_.clear();
    return;
  }
  topk_ids_ = truth_->topk_set();
}

void NaiveCoordinator::rekey(std::size_t k) {
  if (k > known_values_.size()) {
    throw std::invalid_argument("NaiveCoordinator::rekey: k > n");
  }
  k_ = k;
  // The tracker's k is fixed at construction; rebuild it from the replica.
  truth_.emplace(known_values_.size(), std::max<std::size_t>(k_, 1));
  for (NodeId id = 0; id < known_values_.size(); ++id) {
    truth_->set_value(id, known_values_[id]);
  }
  refresh_answer();
}

Value NaiveCoordinator::weakest_member_value() {
  return k_ == 0 ? kPlusInf : truth_->member_min_value();
}

Value NaiveCoordinator::strongest_outsider_value() {
  // At quota 0 the k' = 1 shadow tracker's single member IS the strongest
  // outsider (the shard maximum).
  if (k_ == 0) return truth_->member_min_value();
  return truth_->nonmember_max_value();
}

}  // namespace topkmon
