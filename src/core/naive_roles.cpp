#include "core/naive_roles.hpp"

#include <stdexcept>

namespace topkmon {

NaiveCoordinator::NaiveCoordinator(std::size_t k, bool send_on_change_only)
    : k_(k), send_on_change_only_(send_on_change_only) {
  if (k == 0) {
    throw std::invalid_argument("NaiveCoordinator: k must be >= 1");
  }
}

void NaiveCoordinator::on_init(CoordCtx& ctx) {
  if (k_ > ctx.n()) {
    throw std::invalid_argument("NaiveCoordinator: k > n");
  }
  known_values_.assign(ctx.n(), 0);
  truth_.emplace(ctx.n(), k_);
}

void NaiveCoordinator::on_message(CoordCtx&, const Message& m) {
  if (m.kind != MsgKind::kValueReport) return;
  known_values_[m.from] = m.a;
  truth_->set_value(m.from, m.a);
}

void NaiveCoordinator::on_step_end(CoordCtx&, TimeStep) {
  topk_ids_ = truth_->topk_set();
}

}  // namespace topkmon
