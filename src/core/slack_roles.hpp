// Native role-separated implementation of the B&O-style slack monitor
// (core/slack_monitor.hpp): one shared boundary, every violator reports
// its fresh value directly, and the handler polls the side whose extremum
// the violations did not deliver instead of running a protocol session.
//
// Under the instant NetworkSpec the port is message-for-message identical
// to the lock-step SlackMonitor (asserted by the differential harness in
// tests/core/role_port_harness.hpp): same kViolation reports, same
// kProtocolStart poll shouts, same kValueReport replies, same single
// kFilterUpdate per boundary move, same counter stream, and — since the
// slack monitor is deterministic — untouched RNGs. Under delay, jitter or
// drop policies the poll windows stretch to the network's flush bound and
// lost replies degrade to the identity of the missing side, exactly like
// the filter monitor's sessions.
//
// Membership (which nodes count as top-k) changes only at a reset; it is
// common knowledge in the lock-step model, so the port distributes it over
// the uncharged control plane as id-bitmap broadcasts — the same free
// synchronization the kStartSession controls grant the filter monitor.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/filter.hpp"
#include "core/roles.hpp"

namespace topkmon {

/// Control opcodes of the slack monitor's control plane.
enum class SlackControlOp : std::int64_t {
  /// Membership bitmap word: a = word index (ids [128a, 128a+128)),
  /// b = bits for ids 128a..128a+63, c = bits for ids 128a+64..128a+127.
  kMembership = 1,
};

/// Which nodes a kProtocolStart poll addresses (payload a; payloads are
/// not charged differently, so the side marker rides in the message).
enum class SlackPollSide : std::int64_t {
  kRest = 0,  ///< outsiders (max poll)
  kTop = 1,   ///< top-k members (min poll)
  kAll = 2,   ///< everyone (reset poll)
};

/// Node-side half: filter check, direct violation reports, poll replies.
class SlackNode final : public NodeAlgo {
 public:
  SlackNode() = default;

  void on_init(NodeCtx& ctx, Value v0) override;
  void on_observe(NodeCtx& ctx, Value v, TimeStep t) override;
  void on_message(NodeCtx& ctx, const Message& m) override;
  void on_control(NodeCtx& ctx, const Control& c) override;
  void on_recover(NodeCtx& ctx) override;

  // -- introspection for tests ---------------------------------------------
  bool member() const noexcept { return member_; }

 private:
  void rebuild_filter(NodeCtx& ctx);

  bool member_ = false;
  bool has_bound_ = false;
  Value bound_ = 0;
  Filter filter_{};  ///< [-inf, +inf] until the first boundary arrives
};

/// Coordinator-side half: violation collection, side polls, resets, and
/// the (optionally adaptive) asymmetric boundary placement.
class SlackCoordinator final : public CoordinatorAlgo {
 public:
  struct Options {
    double alpha = 0.5;    ///< boundary offset fraction above T-
    bool adaptive = false; ///< learn alpha from the violation mix
    /// TEST-ONLY mutation knob for the differential harness's property
    /// test: shifts every applied boundary by this many value units
    /// *after* clamping, producing an off-by-`nudge` boundary that a
    /// sound equivalence harness must flag against the lock-step oracle.
    /// Never set outside tests/.
    Value debug_boundary_nudge = 0;
  };

  explicit SlackCoordinator(std::size_t k) : SlackCoordinator(k, {}) {}
  SlackCoordinator(std::size_t k, Options opts);

  std::string_view name() const override {
    return opts_.adaptive ? "slack_adaptive" : "slack_fixed";
  }
  void on_init(CoordCtx& ctx) override;
  void on_step_begin(CoordCtx& ctx, TimeStep t) override;
  void on_message(CoordCtx& ctx, const Message& m) override;
  void on_timer(CoordCtx& ctx) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  // -- fault hooks (sim/fault_plan.hpp) -------------------------------------
  void on_node_down(CoordCtx& ctx, NodeId id) override;
  void on_node_up(CoordCtx& ctx, NodeId id) override;
  void on_set_k(CoordCtx& ctx, std::size_t k) override;

  // -- introspection for tests ---------------------------------------------
  Value boundary() const noexcept { return bound_; }

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kPollSide,  ///< waiting for the missing side's poll replies
    kPollAll,   ///< waiting for the reset poll replies
  };

  double effective_alpha() const noexcept;
  Value choose_boundary() const;
  void start_poll(CoordCtx& ctx, SlackPollSide side);
  void conclude_side_poll(CoordCtx& ctx);
  void conclude_reset_poll(CoordCtx& ctx);
  void begin_reset(CoordCtx& ctx);
  void apply_boundary(CoordCtx& ctx, Value b);
  void broadcast_membership(CoordCtx& ctx);
  void rebuild_id_lists();
  std::size_t live_side_size(CoordCtx& ctx,
                             const std::vector<NodeId>& side) const;

  std::size_t k_;
  Options opts_;
  std::size_t n_ = 0;
  bool degenerate_ = false;  ///< k == n: the answer can never change

  // Answer / membership (coordinator's view).
  std::vector<char> in_topk_;
  std::vector<NodeId> topk_ids_;
  std::vector<NodeId> topk_list_;
  std::vector<NodeId> rest_list_;
  Value tplus_ = 0;
  Value tminus_ = 0;
  Value bound_ = 0;
  bool established_ = false;  ///< a reset installed an answer

  // Adaptive-alpha violation mix since the last reset.
  std::uint64_t top_violations_ = 0;
  std::uint64_t bot_violations_ = 0;

  // Current repair (one violating step's handler).
  Phase phase_ = Phase::kIdle;
  bool collect_ = false;  ///< violation mail still landing this tick
  SlackPollSide side_ = SlackPollSide::kRest;  ///< running poll's audience
  bool has_top_ = false;  ///< top-side violations signalled this repair
  bool has_bot_ = false;
  Value viol_min_ = kPlusInf;   ///< min over violating member reports
  Value viol_max_ = kMinusInf;  ///< max over violating outsider reports
  std::uint64_t wait_ = 0;      ///< poll window ticks left
  Value poll_best_ = 0;         ///< running extremum of the side poll
  bool poll_seen_ = false;
  std::vector<std::pair<Value, NodeId>> reset_reports_;  ///< (w, id) replies
};

}  // namespace topkmon
