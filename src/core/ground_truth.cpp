#include "core/ground_truth.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

namespace {

std::vector<NodeId> ranked_ids(std::span<const Value> values, std::size_t k) {
  if (k > values.size()) {
    throw std::invalid_argument("true_topk: k > n");
  }
  std::vector<NodeId> ids(values.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<NodeId>(i);
  // Partial sort suffices: only the first k ranks are needed.
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(k), ids.end(),
                    [&](NodeId a, NodeId b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

std::vector<Value> snapshot(const Cluster& cluster) {
  std::vector<Value> values(cluster.size());
  for (NodeId i = 0; i < cluster.size(); ++i) values[i] = cluster.value(i);
  return values;
}

}  // namespace

std::vector<NodeId> true_topk_ordered(std::span<const Value> values,
                                      std::size_t k) {
  return ranked_ids(values, k);
}

std::vector<NodeId> true_topk_set(std::span<const Value> values,
                                  std::size_t k) {
  auto ids = ranked_ids(values, k);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<NodeId> true_topk_ordered(const Cluster& cluster, std::size_t k) {
  const auto values = snapshot(cluster);
  return true_topk_ordered(values, k);
}

std::vector<NodeId> true_topk_set(const Cluster& cluster, std::size_t k) {
  const auto values = snapshot(cluster);
  return true_topk_set(values, k);
}

Value nth_value_inplace(std::span<Value> values, std::size_t j) {
  if (j == 0 || j > values.size()) {
    throw std::invalid_argument("nth_value: rank out of range");
  }
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(j - 1),
                   values.end(), std::greater<Value>());
  return values[j - 1];
}

Value nth_value(std::span<const Value> values, std::size_t j) {
  // Reusable per-thread scratch: repeated rank queries (the offline-OPT
  // inner loop calls this twice per step) stop allocating once the scratch
  // has grown to n.
  thread_local std::vector<Value> scratch;
  scratch.assign(values.begin(), values.end());
  return nth_value_inplace(scratch, j);
}

bool is_valid_topk(std::span<const Value> values,
                   std::span<const NodeId> candidate) {
  std::vector<char> member(values.size(), 0);
  for (const NodeId id : candidate) {
    if (id >= values.size() || member[id]) return false;  // bad/duplicate id
    member[id] = 1;
  }
  Value min_in = kPlusInf;
  Value max_out = kMinusInf;
  bool has_out = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (member[i]) {
      min_in = std::min(min_in, values[i]);
    } else {
      has_out = true;
      max_out = std::max(max_out, values[i]);
    }
  }
  if (candidate.empty() || !has_out) return true;
  return min_in >= max_out;
}

bool is_valid_topk(const Cluster& cluster, std::span<const NodeId> candidate) {
  const auto values = snapshot(cluster);
  return is_valid_topk(values, candidate);
}

namespace {

/// min member value and max non-member value; returns false on bad ids or
/// duplicates, or when one side is empty (vacuously fine -> caller decides).
bool side_extrema(std::span<const Value> values,
                  std::span<const NodeId> candidate, Value* min_in,
                  Value* max_out, bool* has_out) {
  std::vector<char> member(values.size(), 0);
  for (const NodeId id : candidate) {
    if (id >= values.size() || member[id]) return false;
    member[id] = 1;
  }
  *min_in = kPlusInf;
  *max_out = kMinusInf;
  *has_out = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (member[i]) {
      *min_in = std::min(*min_in, values[i]);
    } else {
      *has_out = true;
      *max_out = std::max(*max_out, values[i]);
    }
  }
  return true;
}

}  // namespace

bool is_valid_topk_eps(std::span<const Value> values,
                       std::span<const NodeId> candidate, Value eps) {
  Value min_in = 0;
  Value max_out = 0;
  bool has_out = false;
  if (!side_extrema(values, candidate, &min_in, &max_out, &has_out)) {
    return false;
  }
  if (candidate.empty() || !has_out) return true;
  return min_in >= max_out - eps;
}

bool is_valid_topk_eps(const Cluster& cluster,
                       std::span<const NodeId> candidate, Value eps) {
  const auto values = snapshot(cluster);
  return is_valid_topk_eps(values, candidate, eps);
}

Value topk_regret(std::span<const Value> values,
                  std::span<const NodeId> candidate) {
  Value min_in = 0;
  Value max_out = 0;
  bool has_out = false;
  if (!side_extrema(values, candidate, &min_in, &max_out, &has_out)) {
    return kPlusInf;  // malformed answer: infinite regret
  }
  if (candidate.empty() || !has_out) return 0;
  return std::max<Value>(0, max_out - min_in);
}

}  // namespace topkmon
