#include "core/ground_truth_tracker.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

GroundTruthTracker::GroundTruthTracker(std::size_t n, std::size_t k)
    : k_(k),
      values_(n, 0),
      member_(n, 0),
      cand_member_(n, 0) {
  if (k == 0 || k > n) {
    throw std::invalid_argument("GroundTruthTracker: k out of range");
  }
  sorted_set_.reserve(k);
  ordered_topk_.reserve(k);
  rank_scratch_.resize(n);
}

void GroundTruthTracker::set_value(NodeId id, Value v) {
  const Value old = values_[id];
  values_[id] = v;
  if (!built_ || v == old) return;

  if (member_[id]) {
    if (id == member_min_id_) {
      if (v < old) {
        // The worst member got worse: still the worst, new key.
        member_min_val_ = v;
      } else {
        member_dirty_ = true;  // may no longer be the minimum
      }
    } else if (ranks_before(member_min_val_, member_min_id_, v, id)) {
      member_min_val_ = v;  // this member now ranks behind the old minimum
      member_min_id_ = id;
    }
    return;
  }
  if (k_ == values_.size()) return;  // no non-members to track
  // Keep the lazy heap's invariant — every non-member's *current* value
  // is on the heap — so a later decay repair is pops, not an O(n) scan.
  nm_heap_push(v, id);
  if (id == nonmember_max_id_) {
    if (v > old) {
      nonmember_max_val_ = v;  // best outsider got better: still best
    } else {
      nonmember_dirty_ = true;  // may no longer be the maximum
    }
  } else if (ranks_before(v, id, nonmember_max_val_, nonmember_max_id_)) {
    nonmember_max_val_ = v;  // this outsider now ranks ahead of the old max
    nonmember_max_id_ = id;
  }
}

void GroundTruthTracker::rescan_member_min() {
  // Members are listed in sorted_set_: O(k).
  bool first = true;
  for (const NodeId id : sorted_set_) {
    if (first || ranks_before(member_min_val_, member_min_id_, values_[id],
                              id)) {
      member_min_val_ = values_[id];
      member_min_id_ = id;
    }
    first = false;
  }
  member_dirty_ = false;
}

namespace {

/// Max-heap comparator under the canonical order: `a` sorts below `b`
/// when `b` ranks before it, so the heap top is the best-ranked snapshot.
struct RanksAfter {
  bool operator()(const auto& a, const auto& b) const noexcept {
    return b.value != a.value ? b.value > a.value : b.id < a.id;
  }
};

}  // namespace

void GroundTruthTracker::nm_heap_push(Value v, NodeId id) {
  // Compact once stale snapshots outnumber live non-members 2:1; the
  // O(n) rebuild amortizes against the >= n pushes since the last one,
  // and afterwards the vector's capacity is retained (no steady-state
  // allocations).
  if (nm_heap_.size() >= 3 * (values_.size() - k_) + 64) nm_heap_rebuild();
  nm_heap_.push_back(HeapEntry{v, id});
  std::push_heap(nm_heap_.begin(), nm_heap_.end(), RanksAfter{});
}

void GroundTruthTracker::nm_heap_rebuild() {
  nm_heap_.clear();
  const auto n = static_cast<NodeId>(values_.size());
  for (NodeId id = 0; id < n; ++id) {
    if (!member_[id]) nm_heap_.push_back(HeapEntry{values_[id], id});
  }
  std::make_heap(nm_heap_.begin(), nm_heap_.end(), RanksAfter{});
}

void GroundTruthTracker::repair_nonmember_max() {
  ++boundary_rescans_;
  // Membership is fixed between full rebuilds and every non-member's
  // current value is on the heap, so popping snapshots that are stale
  // (value changed since the push) or shadowed (node joined the top-k —
  // only via a rebuild that also rebuilt the heap, but kept for safety)
  // leaves the true non-member maximum on top.
  while (!nm_heap_.empty()) {
    const HeapEntry& top = nm_heap_.front();
    if (!member_[top.id] && values_[top.id] == top.value) break;
    std::pop_heap(nm_heap_.begin(), nm_heap_.end(), RanksAfter{});
    nm_heap_.pop_back();
  }
  nonmember_max_val_ = nm_heap_.front().value;
  nonmember_max_id_ = nm_heap_.front().id;
  nonmember_dirty_ = false;
}

void GroundTruthTracker::full_rebuild() {
  ++full_rebuilds_;
  const std::size_t n = values_.size();
  for (std::size_t i = 0; i < n; ++i) {
    rank_scratch_[i] = static_cast<NodeId>(i);
  }
  // Sort one past the boundary so position k (when it exists) is the
  // best-ranked non-member — the tracked nonmember_max_.
  const std::size_t sorted_prefix = std::min(k_ + 1, n);
  std::partial_sort(
      rank_scratch_.begin(),
      rank_scratch_.begin() + static_cast<std::ptrdiff_t>(sorted_prefix),
      rank_scratch_.end(), [&](NodeId a, NodeId b) {
        return ranks_before(values_[a], a, values_[b], b);
      });

  for (const NodeId id : sorted_set_) member_[id] = 0;  // clear old members
  if (!built_) std::fill(member_.begin(), member_.end(), char{0});
  sorted_set_.clear();
  for (std::size_t i = 0; i < k_; ++i) {
    member_[rank_scratch_[i]] = 1;
    sorted_set_.push_back(rank_scratch_[i]);
  }
  std::sort(sorted_set_.begin(), sorted_set_.end());

  member_min_id_ = rank_scratch_[k_ - 1];
  member_min_val_ = values_[member_min_id_];
  if (k_ < n) {
    nonmember_max_id_ = rank_scratch_[k_];
    nonmember_max_val_ = values_[nonmember_max_id_];
    // Membership changed: reseed the lazy heap so every (possibly new)
    // non-member has its current value on it. O(n), dominated by the
    // partial sort above.
    nm_heap_rebuild();
  }
  built_ = true;
  member_dirty_ = false;
  nonmember_dirty_ = false;
}

void GroundTruthTracker::ensure_current() {
  if (!built_) {
    full_rebuild();
    return;
  }
  if (k_ == values_.size()) return;  // the set can never change
  if (member_dirty_) rescan_member_min();
  if (nonmember_dirty_) repair_nonmember_max();
  // Boundary intact <=> every member still ranks before every non-member
  // <=> the worst member ranks before the best non-member. (The ranking
  // is a total order — ids break value ties — so this is exact even on
  // tied values, matching true_topk_set's tie-break.)
  if (!ranks_before(member_min_val_, member_min_id_, nonmember_max_val_,
                    nonmember_max_id_)) {
    full_rebuild();
  }
}

const std::vector<NodeId>& GroundTruthTracker::topk_set() {
  ensure_current();
  return sorted_set_;
}

const std::vector<NodeId>& GroundTruthTracker::ordered_topk() {
  ensure_current();
  // Membership is exact; rank order within the set may drift without any
  // boundary crossing, so (re-)sort the k members per query.
  ordered_topk_.assign(sorted_set_.begin(), sorted_set_.end());
  std::sort(ordered_topk_.begin(), ordered_topk_.end(),
            [&](NodeId a, NodeId b) {
              return ranks_before(values_[a], a, values_[b], b);
            });
  return ordered_topk_;
}

bool GroundTruthTracker::matches_strict(std::span<const NodeId> answer) {
  ensure_current();
  return answer.size() == sorted_set_.size() &&
         std::equal(answer.begin(), answer.end(), sorted_set_.begin());
}

bool GroundTruthTracker::is_valid(std::span<const NodeId> answer) {
  ensure_current();
  // Fast path: the true top-k (canonical sorted form) is always a valid
  // answer, and correct monitors emit exactly it on almost every step.
  if (answer.size() == sorted_set_.size() &&
      std::equal(answer.begin(), answer.end(), sorted_set_.begin())) {
    return true;
  }
  // General path, mirroring is_valid_topk: reject bad/duplicate ids, then
  // compare the candidate's boundary extrema by value only (any
  // tie-break accepted). cand_member_ is tracker-owned and wiped after
  // use, so the check allocates nothing.
  const std::size_t n = values_.size();
  bool ok = true;
  std::size_t marked = 0;
  for (const NodeId id : answer) {
    if (id >= n || cand_member_[id]) {
      ok = false;
      break;
    }
    cand_member_[id] = 1;
    ++marked;
  }
  if (ok && !answer.empty() && marked < n) {
    Value min_in = kPlusInf;
    Value max_out = kMinusInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (cand_member_[i]) {
        min_in = std::min(min_in, values_[i]);
      } else {
        max_out = std::max(max_out, values_[i]);
      }
    }
    ok = min_in >= max_out;
  }
  for (std::size_t i = 0; i < marked; ++i) cand_member_[answer[i]] = 0;
  return ok;
}

}  // namespace topkmon
