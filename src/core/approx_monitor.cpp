#include "core/approx_monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/select_topk.hpp"

namespace topkmon {

ApproxTopkMonitor::ApproxTopkMonitor(std::size_t k)
    : ApproxTopkMonitor(k, Options{}) {}

ApproxTopkMonitor::ApproxTopkMonitor(std::size_t k, Options opts)
    : k_(k), opts_(opts) {
  if (k == 0) {
    throw std::invalid_argument("ApproxTopkMonitor: k must be >= 1");
  }
  if (opts_.epsilon < 0) {
    throw std::invalid_argument("ApproxTopkMonitor: epsilon must be >= 0");
  }
  popts_.suppress_idle_broadcasts = opts_.suppress_idle_broadcasts;
}

void ApproxTopkMonitor::initialize(Cluster& cluster) {
  const std::size_t n = cluster.size();
  if (k_ > n) throw std::invalid_argument("ApproxTopkMonitor: k > n");
  filters_.assign(n, Filter{});
  in_topk_.assign(n, 0);
  degenerate_ = (k_ == n);
  if (degenerate_) {
    std::fill(in_topk_.begin(), in_topk_.end(), char{1});
    rebuild_id_lists();
    return;
  }
  filter_reset(cluster);
}

void ApproxTopkMonitor::step(Cluster& cluster, TimeStep) {
  if (degenerate_) return;
  const std::size_t n = cluster.size();

  std::vector<NodeId> viol_top;
  std::vector<NodeId> viol_bot;
  for (NodeId id = 0; id < n; ++id) {
    const Value v = cluster.value(id);
    if (filters_[id].contains(v)) continue;
    (in_topk_[id] ? viol_top : viol_bot).push_back(id);
  }
  if (viol_top.empty() && viol_bot.empty()) return;

  ++mstats_.violation_steps;
  mstats_.violations += viol_top.size() + viol_bot.size();

  std::optional<Value> min_v;
  std::optional<Value> max_v;
  if (!viol_top.empty()) {
    const auto res = run_min_protocol(cluster, viol_top, k_, popts_);
    ++mstats_.protocol_runs;
    min_v = res.extremum;
  }
  if (!viol_bot.empty()) {
    const auto res = run_max_protocol(cluster, viol_bot, n - k_, popts_);
    ++mstats_.protocol_runs;
    max_v = res.extremum;
  }
  violation_handler(cluster, min_v, max_v);
}

void ApproxTopkMonitor::violation_handler(Cluster& cluster,
                                          std::optional<Value> min_v,
                                          std::optional<Value> max_v) {
  ++mstats_.handler_calls;
  const std::size_t n = cluster.size();

  // As in Algorithm 1: complete the missing side's extremum. A violating
  // top member sits below M − ε/2 <= filter bound of every other member,
  // so the violators' minimum is the side minimum (dito for outsiders).
  if (!max_v.has_value()) {
    Message start;
    start.kind = MsgKind::kProtocolStart;
    start.a = 0;
    cluster.net().coord_broadcast(start);
    const auto res = run_max_protocol(cluster, rest_list_, n - k_, popts_);
    ++mstats_.protocol_runs;
    max_v = res.extremum;
  } else {
    Message start;
    start.kind = MsgKind::kProtocolStart;
    start.a = 1;
    cluster.net().coord_broadcast(start);
    const auto res = run_min_protocol(cluster, topk_list_, k_, popts_);
    ++mstats_.protocol_runs;
    min_v = res.extremum;
  }

  tplus_ = std::min(tplus_, *min_v);
  tminus_ = std::max(tminus_, *max_v);

  // Slack is 2*floor(eps/2) rather than eps so that, with integer
  // midpoints, the re-centered boundary always sits within floor(eps/2) of
  // both T+ and T- — otherwise an odd eps could leave a node permanently
  // outside its widened filter (violation livelock).
  const Value slack = 2 * (opts_.epsilon / 2);
  if (tplus_ < tminus_ - slack) {
    // Even the widened filters cannot justify the current set: the answer
    // may have ceased to be ε-valid. Recompute from scratch.
    filter_reset(cluster);
  } else {
    // ε-feasible: re-center. M lies in the closed interval between T- and
    // T+ extended by ε; the widened filters then contain both side
    // extrema:
    //   member values >= T+ >= M − ε/2   and   outsiders <= T- <= M + ε/2.
    ++mstats_.midpoint_updates;
    apply_boundary(cluster, midpoint(tminus_, tplus_));
  }
}

void ApproxTopkMonitor::filter_reset(Cluster& cluster) {
  ++mstats_.filter_resets;
  const std::size_t n = cluster.size();
  const auto sel = select_extreme(cluster, cluster.all_ids(), k_ + 1, n,
                                  Direction::kMax, popts_);
  mstats_.protocol_runs += k_ + 1;
  if (sel.winners.size() != k_ + 1) {
    throw std::logic_error("ApproxTopkMonitor: selection returned too few");
  }

  std::fill(in_topk_.begin(), in_topk_.end(), char{0});
  for (std::size_t i = 0; i < k_; ++i) in_topk_[sel.winners[i].id] = 1;
  rebuild_id_lists();

  tplus_ = sel.winners[k_ - 1].value;
  tminus_ = sel.winners[k_].value;
  apply_boundary(cluster, midpoint(tminus_, tplus_));
}

void ApproxTopkMonitor::apply_boundary(Cluster& cluster, Value m) {
  mid_ = m;
  Message update;
  update.kind = MsgKind::kFilterUpdate;
  update.a = m;
  update.b = opts_.epsilon;
  cluster.net().coord_broadcast(update);
  const Value half = opts_.epsilon / 2;
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    filters_[i] = in_topk_[i] ? Filter{m - half, kPlusInf}
                              : Filter{kMinusInf, m + half};
  }
}

void ApproxTopkMonitor::rebuild_id_lists() {
  topk_ids_.clear();
  topk_list_.clear();
  rest_list_.clear();
  for (NodeId id = 0; id < in_topk_.size(); ++id) {
    if (in_topk_[id]) {
      topk_ids_.push_back(id);
      topk_list_.push_back(id);
    } else {
      rest_list_.push_back(id);
    }
  }
}

}  // namespace topkmon
