// Simultaneous monitoring of several top-k queries (k1 < k2 < ... < km)
// with shared machinery — an extension beyond the paper (which treats a
// single k; see DESIGN.md's extension inventory).
//
// The node population is partitioned into m+1 "bands" by m boundaries, one
// per monitored k. Each boundary runs Algorithm 1's logic (violator-side
// protocol, T+/T- accumulation, midpoint halving) independently, but a
// reset is *shared*: one repeated-MaximumProtocol selection of the top
// k_m + 1 nodes rebuilds every boundary at once — whereas m independent
// TopkFilterMonitor instances would each pay their own (k_i + 1)·M(n)
// reset. Experiment E13 quantifies the saving.
//
// All order bookkeeping runs in the tie-free space w = v*n + (n-1-id)
// (computable locally from any (id, value) pair), so the monitor is
// deterministic under ties.
#pragma once

#include <optional>

#include "core/filter.hpp"
#include "core/monitor.hpp"
#include "protocols/extremum.hpp"

namespace topkmon {

class MultiKMonitor final : public MonitorBase {
 public:
  struct Options {
    bool suppress_idle_broadcasts = false;
  };

  /// `ks` must be non-empty, strictly increasing, with ks.back() <= n at
  /// initialize() (a trailing ks == n boundary is degenerate and dropped).
  explicit MultiKMonitor(std::vector<std::size_t> ks);
  MultiKMonitor(std::vector<std::size_t> ks, Options opts);

  std::string_view name() const override { return "multi_k"; }
  void initialize(Cluster& cluster) override;
  void step(Cluster& cluster, TimeStep t) override;

  /// MonitorBase answer: the smallest monitored k (runner validation).
  const std::vector<NodeId>& topk() const override { return topk_smallest_; }

  /// The monitored k values (after degenerate-boundary dropping this may
  /// exclude a trailing k == n; query it with topk_for anyway).
  const std::vector<std::size_t>& ks() const noexcept { return ks_; }

  /// Ids (sorted) of the top-k nodes for any monitored k.
  std::vector<NodeId> topk_for(std::size_t k) const;

  /// Boundary value (w-space) guarding rank ks()[j] | ks()[j]+1.
  Value boundary_w(std::size_t j) const { return boundaries_.at(j).mid_w; }

 private:
  struct Boundary {
    std::size_t k = 0;       ///< band above holds the k best nodes
    Value mid_w = 0;         ///< current w-space boundary
    Value tplus_w = 0;       ///< running min over the above side (w)
    Value tminus_w = 0;      ///< running max over the below side (w)
  };

  Value to_w(NodeId id, Value v) const noexcept;
  void full_reset(Cluster& cluster);
  void refresh_filters();
  std::vector<NodeId> side_above(std::size_t j) const;
  std::vector<NodeId> side_below(std::size_t j) const;

  std::vector<std::size_t> ks_;
  Options opts_;
  ProtocolOptions popts_;
  std::size_t n_ = 0;

  std::vector<Boundary> boundaries_;       ///< ascending in k
  std::vector<std::uint8_t> band_;         ///< per node: band index 0..m
  std::vector<Filter> filters_w_;          ///< per node, w-space
  std::vector<NodeId> topk_smallest_;      ///< cached answer for ks_[0]
};

}  // namespace topkmon
