// Experiment runner: drives a monitor over a stream set for T steps,
// validates the coordinator's answer against the ground truth after every
// step, and collects message/event statistics (optionally the full value
// trace, enabling the offline-optimal comparison and competitive ratios).
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/offline_opt.hpp"
#include "sim/cluster.hpp"
#include "streams/stream.hpp"
#include "streams/trace.hpp"

namespace topkmon {

struct RunConfig {
  std::size_t n = 16;         ///< number of nodes
  std::size_t k = 4;          ///< monitored top-k size
  std::size_t steps = 1'000;  ///< observation steps after initialization
  std::uint64_t seed = 42;    ///< cluster / protocol randomness seed

  /// Validation mode: `kStrict` requires set equality with the ground
  /// truth (assumes pairwise-distinct values); `kWeak` accepts any valid
  /// top-k under ties; `kOff` skips validation (pure benchmarking).
  enum class Validation { kStrict, kWeak, kOff };
  Validation validation = Validation::kStrict;

  /// For monitors exposing an order (OrderedTopkMonitor): also check the
  /// rank order against the ground truth.
  bool validate_order = false;

  /// Record the full value trace (needed for offline-OPT comparison).
  bool record_trace = false;

  /// Record the per-step message series.
  bool record_series = false;
};

struct RunResult {
  std::string monitor_name;
  std::size_t steps_executed = 0;

  /// The configuration that produced this result (so downstream
  /// aggregation can key rows without threading the config separately).
  RunConfig config;

  /// Canonical name of the network policy the run executed under
  /// ("instant" unless a Scenario selected otherwise).
  std::string network = "instant";

  /// Wall-clock duration of the run in seconds (steady clock).
  double wall_seconds = 0.0;

  /// Portion of wall_seconds spent in step-0 initialization (stream/
  /// cluster construction and the initial protocol selection). Scale
  /// benchmarks subtract it to report steady-state steps/sec.
  double init_seconds = 0.0;

  // Communication totals (copied from the cluster at the end of the run).
  CommStats comm;
  MonitorStats monitor;

  /// Shard<->root tier message totals of a sharded run (`comm` then holds
  /// the node<->shard tier). All-zero for monolithic runs and for sharded
  /// runs with a single shard, whose root tier is inert by construction.
  CommStats root_comm;

  // Validation outcome.
  bool correct = true;
  std::optional<TimeStep> first_error_step;

  /// Number of steps whose answer diverged from the ground truth (only
  /// grows past 1 with throw_on_error == false; the staleness metric of
  /// the latency/loss experiments).
  std::uint64_t error_steps = 0;

  /// Fraction of steps with a divergent answer.
  double error_rate() const noexcept {
    return steps_executed == 0
               ? 0.0
               : static_cast<double>(error_steps) /
                     static_cast<double>(steps_executed);
  }

  /// Every step whose answer diverged, in ascending order (one entry per
  /// error_steps increment; empty when validation is off).
  std::vector<TimeStep> error_step_list;

  /// Errors recorded at steps >= t. The aggregate error_rate() can hide
  /// a monitor that never recovered behind a long clean prefix — a run
  /// with 2% errors may be 100% wrong after its last fault. Tail-window
  /// accounting is what the churn suite and the perf regression gate
  /// compare.
  std::uint64_t error_steps_since(TimeStep t) const noexcept {
    const auto it = std::lower_bound(error_step_list.begin(),
                                     error_step_list.end(), t);
    return static_cast<std::uint64_t>(error_step_list.end() - it);
  }

  /// Fault-injection outcome (exp::run_scenario with a fault plan): one
  /// entry per applied fault event, in schedule order — the delivery
  /// ticks from the event firing until the answer last diverged before
  /// the next event (0 = the event never produced a wrong answer). A
  /// bounded value at every event is the crash-recovery acceptance
  /// criterion; a window still erroring when the next event fires (or
  /// the run ends) means the monitor never re-converged.
  std::vector<std::uint64_t> recovery_ticks;

  /// Worst recovery window of the run (0 with no faults / no errors).
  std::uint64_t max_recovery_ticks() const noexcept {
    std::uint64_t worst = 0;
    for (const std::uint64_t r : recovery_ticks) worst = std::max(worst, r);
    return worst;
  }

  // Optional artifacts.
  std::optional<TraceMatrix> trace;

  /// Messages per step (total / steps; initialization included).
  double messages_per_step() const noexcept {
    return steps_executed == 0
               ? 0.0
               : static_cast<double>(comm.total()) /
                     static_cast<double>(steps_executed);
  }
};

/// Runs `monitor` over `streams` (must have exactly cfg.n streams).
/// Step 0 initializes; steps 1..cfg.steps call monitor.step(). Throws
/// std::logic_error on validation failure unless cfg tolerates it — the
/// failure is also recorded in the result (set `throw_on_error=false`).
RunResult run_monitor(MonitorBase& monitor, StreamSet& streams,
                      const RunConfig& cfg, bool throw_on_error = true);

class GroundTruthTracker;

/// Shared per-step validation core of run_monitor and exp::run_scenario:
/// checks `answer` against the incrementally maintained ground truth
/// under cfg.validation (plus the rank order when cfg.validate_order and
/// `claimed_order` is non-null — the monitor's ranked answer, best
/// first, from either the lock-step OrderedTopkMonitor or the native
/// OrderedCoordinator), records any divergence on `result`
/// (correct / error_steps / first_error_step), and throws
/// std::logic_error when `throw_on_error`. `detail` is appended to the
/// error message (e.g. " (network delay=2)"). The caller owns `truth`
/// and must have fed it every value update (see GroundTruthTracker).
void check_answer_step(GroundTruthTracker& truth,
                       const std::vector<NodeId>& answer,
                       const std::vector<NodeId>* claimed_order,
                       const RunConfig& cfg, std::string_view monitor_name,
                       std::string_view detail, TimeStep t, RunResult* result,
                       bool throw_on_error);

/// Computes the empirical competitive ratio of a finished run against the
/// offline optimum on the recorded trace: total messages / max(1, OPT
/// updates). Requires cfg.record_trace to have been set.
double competitive_ratio(const RunResult& result, std::size_t k);

}  // namespace topkmon
