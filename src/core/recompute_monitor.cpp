#include "core/recompute_monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/select_topk.hpp"

namespace topkmon {

RecomputeMonitor::RecomputeMonitor(std::size_t k)
    : RecomputeMonitor(k, Options{}) {}

RecomputeMonitor::RecomputeMonitor(std::size_t k, Options opts) : k_(k) {
  if (k == 0) throw std::invalid_argument("RecomputeMonitor: k must be >= 1");
  popts_.suppress_idle_broadcasts = opts.suppress_idle_broadcasts;
}

void RecomputeMonitor::initialize(Cluster& cluster) {
  if (k_ > cluster.size()) {
    throw std::invalid_argument("RecomputeMonitor: k > n");
  }
  step(cluster, 0);
}

void RecomputeMonitor::step(Cluster& cluster, TimeStep) {
  const auto sel = select_extreme(cluster, cluster.all_ids(), k_,
                                  cluster.size(), Direction::kMax, popts_);
  mstats_.protocol_runs += sel.winners.size();
  topk_ids_.clear();
  for (const auto& w : sel.winners) topk_ids_.push_back(w.id);
  std::sort(topk_ids_.begin(), topk_ids_.end());
}

}  // namespace topkmon
