#include "core/shard_coordinator.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace topkmon {

std::vector<ShardRange> partition_shards(std::size_t n, std::size_t shards) {
  if (shards == 0 || shards > n) {
    throw std::invalid_argument("partition_shards: need 1 <= shards <= n");
  }
  std::vector<ShardRange> out;
  out.reserve(shards);
  const std::size_t words = (n + 63) / 64;
  if (words >= shards) {
    // Word-aligned balanced split: the first (words % shards) shards get
    // one extra word. Whole words per shard means the parallel tick
    // loop's word-range ownership argument applies verbatim, and a
    // future one-shard-per-worker mapping needs no re-partitioning.
    const std::size_t base_words = words / shards;
    const std::size_t extra = words % shards;
    std::size_t word = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t w = base_words + (s < extra ? 1 : 0);
      const std::size_t lo = word * 64;
      word += w;
      const std::size_t hi = std::min(word * 64, n);
      out.push_back(ShardRange{static_cast<NodeId>(lo), hi - lo});
    }
  } else {
    // Fewer words than shards (tiny n): balance node counts directly.
    const std::size_t base_nodes = n / shards;
    const std::size_t extra = n % shards;
    std::size_t node = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t sz = base_nodes + (s < extra ? 1 : 0);
      out.push_back(ShardRange{static_cast<NodeId>(node), sz});
      node += sz;
    }
  }
  return out;
}

std::vector<std::size_t> initial_shard_quotas(
    std::span<const ShardRange> ranges, std::size_t n, std::size_t k) {
  if (k > n) {
    throw std::invalid_argument("initial_shard_quotas: k > n");
  }
  std::vector<std::size_t> quotas(ranges.size(), 0);
  std::size_t assigned = 0;
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    quotas[s] = k * ranges[s].size / n;  // floor; never exceeds the size
    assigned += quotas[s];
  }
  // Hand out the remainder round-robin, capped by shard size. Terminates
  // because the sizes sum to n >= k.
  std::size_t rem = k - assigned;
  for (std::size_t s = 0; rem > 0; s = (s + 1) % ranges.size()) {
    if (quotas[s] < ranges[s].size) {
      ++quotas[s];
      --rem;
    }
  }
  return quotas;
}

std::uint64_t shard_seed(std::uint64_t base_seed, std::size_t shard) noexcept {
  if (shard == 0) return base_seed;
  std::uint64_t state =
      base_seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(shard);
  return splitmix64(state);
}

namespace {

/// Shared ctor step of both adapters: ids provisioned for a later join
/// start down, before the first initialize, exactly like the monolithic
/// runner marks them (driver.hpp set_fault_plan contract).
void mark_join_reserve_down(const ShardConfig& cfg, Cluster& cluster) {
  for (std::size_t i = cfg.n - std::min(cfg.join_reserve, cfg.n); i < cfg.n;
       ++i) {
    cluster.net().set_node_down(static_cast<NodeId>(i));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// NaiveShardAdapter
// ---------------------------------------------------------------------------

NaiveShardAdapter::NaiveShardAdapter(const ShardConfig& cfg,
                                     bool send_on_change_only)
    : cfg_(cfg),
      quota_(cfg.quota),
      cluster_(cfg.n, cfg.seed, cfg.network),
      coord_(std::make_unique<NaiveCoordinator>(cfg.quota, send_on_change_only,
                                                cfg.sharded)) {
  mark_join_reserve_down(cfg_, cluster_);
  nodes_.reserve(cfg_.n);
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    nodes_.push_back(std::make_unique<NaiveNode>(send_on_change_only));
  }
  driver_ = std::make_unique<SimDriver>(cluster_, *coord_, nodes_,
                                        /*auto_deliver=*/true, cfg_.workers);
  if (cfg_.faults != nullptr) driver_->set_fault_plan(cfg_.faults);
  driver_->set_dense_loop(cfg_.dense_loop);
}

void NaiveShardAdapter::initialize() { driver_->initialize(); }

void NaiveShardAdapter::step(TimeStep t, std::span<const NodeId> changed) {
  driver_->step(t, changed);
}

ShardExtrema NaiveShardAdapter::extrema() {
  return ShardExtrema{coord_->weakest_member_value(),
                      coord_->strongest_outsider_value()};
}

bool NaiveShardAdapter::crossing() {
  if (!cfg_.sharded || !pin_.has_value()) return false;
  // The naive replica is always current, so the extrema themselves are
  // the crossing predicate: consistent means L_s <= R <= U_s.
  const ShardExtrema e = extrema();
  return e.weakest_member < *pin_ || e.strongest_outsider > *pin_;
}

ShardExtrema NaiveShardAdapter::set_quota(std::size_t q) {
  if (q > cfg_.n) {
    throw std::invalid_argument("NaiveShardAdapter::set_quota: q > size");
  }
  quota_ = q;
  // Coordinator-local rekey over the replica: no node traffic — the
  // replica was already paid for report by report.
  coord_->rekey(q);
  return extrema();
}

// ---------------------------------------------------------------------------
// FilterShardAdapter
// ---------------------------------------------------------------------------

FilterShardAdapter::FilterShardAdapter(const ShardConfig& cfg,
                                       bool suppress_idle_broadcasts)
    : cfg_(cfg),
      nobeacon_(suppress_idle_broadcasts),
      quota_(cfg.quota),
      cluster_(cfg.n, cfg.seed, cfg.network) {
  mark_join_reserve_down(cfg_, cluster_);
}

void FilterShardAdapter::rebuild() {
  if (coord_) add_monitor_stats(mstats_retired_, coord_->monitor_stats());
  // The fresh driver must resume the fault schedule where the retired one
  // left it — re-firing an applied crash/recover would corrupt the alive
  // set (which itself persists on the warm cluster's network).
  const std::size_t fault_cursor = driver_ ? driver_->fault_cursor() : 0;
  driver_.reset();
  coord_.reset();
  nodes_.clear();

  FilterCoordinator::Options o;
  o.suppress_idle_broadcasts = nobeacon_;
  if (cfg_.sharded) o.pinned_boundary = &pin_;
  coord_ = std::make_unique<FilterCoordinator>(quota_, o);
  nodes_.reserve(cfg_.n);
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    nodes_.push_back(std::make_unique<FilterNode>(quota_));
  }
  driver_ = std::make_unique<SimDriver>(cluster_, *coord_, nodes_,
                                        /*auto_deliver=*/true, cfg_.workers);
  if (cfg_.faults != nullptr) driver_->set_fault_plan(cfg_.faults, fault_cursor);
  driver_->set_dense_loop(cfg_.dense_loop);
  // Full initialization on the warm cluster: values, RNG streams, the
  // protocol-epoch counter, CommStats and the alive set persist;
  // node/coordinator protocol state starts fresh, so the FILTERRESET
  // selection (over the live nodes only) leaves exact extrema in T+/T-.
  driver_->initialize();
}

void FilterShardAdapter::initialize() { rebuild(); }

void FilterShardAdapter::step(TimeStep t, std::span<const NodeId> changed) {
  driver_->step(t, changed);
}

bool FilterShardAdapter::crossing() {
  // The coordinator adopts the pin whenever [T-, T+] contains it, so a
  // boundary away from the pin is exactly "my local top-k boundary
  // crossed the root filter" — conservative under staleness (the cheap
  // accumulator extrema never miss a real crossing; the root requeries
  // exact values before acting).
  if (!cfg_.sharded || !pin_.has_value()) return false;
  // An under-filled answer (churn removed members faster than the local
  // reset could re-fill — up to a whole-shard outage) is a crossing by
  // definition: only a root renegotiation can drain the unfillable quota
  // toward shards that can cover the vacated slots.
  if (coord_->topk().size() < quota_) return true;
  return coord_->boundary() != *pin_;
}

ShardExtrema FilterShardAdapter::extrema() {
  // Under-fill: fewer live trusted nodes than quota. Report U_s = -inf so
  // the root's fixpoint takes the quota this shard cannot fill (the
  // weakest-member rule picks the minimum U first), and L_s = -inf too —
  // if the shard cannot even fill its quota it has no live outsider, and
  // a stale accumulator value must not win it more quota or pin the root
  // boundary from below during the outage.
  if (coord_->topk().size() < quota_) {
    return ShardExtrema{kMinusInf, kMinusInf};
  }
  return ShardExtrema{coord_->t_plus(), coord_->t_minus()};
}

ShardExtrema FilterShardAdapter::requery() {
  // The accumulators are stale between resets; quota decisions need exact
  // extrema, so requery = rebuild (charged to the node<->shard tier).
  rebuild();
  return extrema();
}

ShardExtrema FilterShardAdapter::set_quota(std::size_t q) {
  if (q > cfg_.n) {
    throw std::invalid_argument("FilterShardAdapter::set_quota: q > size");
  }
  quota_ = q;
  rebuild();
  return extrema();
}

void FilterShardAdapter::set_pin(Value r) {
  pin_ = r;
  // Re-anchor in place when the gap allows it (one kFilterUpdate
  // broadcast); the injected traffic settles before the root continues.
  CoordCtx ctx(*driver_, cluster_);
  coord_->reanchor(ctx);
  driver_->pump();
}

}  // namespace topkmon
