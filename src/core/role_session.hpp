// Reusable node/coordinator halves of one randomized extremum session
// (Algorithm 2) for native role ports. This is the session machinery of
// core/filter_roles.cpp factored into two plain structs so the ordered
// and multi-k ports (core/ordered_roles.hpp, core/multik_roles.hpp) run
// the exact same wire protocol — same kStartSession control packing,
// same per-round kRoundBeacon / kValueReport exchange, same Bernoulli
// coin schedule, same flush-window conclusion — without re-implementing
// it. The filter port keeps its own inlined copy: its session state is
// entangled with suspicion bookkeeping the shared struct must not grow.
//
// Division of labour: the owner decides who participates (group
// semantics stay monitor-specific), counts protocol_runs, and handles
// the conclusion; the structs own only the round/beacon/flush mechanics.
#pragma once

#include <cstdint>

#include "core/roles.hpp"
#include "protocols/beacon.hpp"
#include "protocols/extremum.hpp"

namespace topkmon {

/// Packs a session-start control's c payload: (epoch << 8) | log_n.
constexpr std::int64_t pack_session_c(std::uint32_t epoch,
                                      std::uint32_t log_n) noexcept {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(epoch) << 8) | log_n);
}

struct SessionStart {
  Direction dir = Direction::kMax;
  std::uint32_t epoch = 0;
  std::uint32_t log_n = 0;
};

/// Decodes a kStartSession control (a = direction, c = (epoch<<8)|log_n);
/// the group payload b stays with the caller.
inline SessionStart unpack_session_start(const Control& c) noexcept {
  SessionStart s;
  s.dir = c.a == 1 ? Direction::kMin : Direction::kMax;
  s.epoch = static_cast<std::uint32_t>(c.c >> 8);
  s.log_n = static_cast<std::uint32_t>(c.c & 0xFF);
  return s;
}

/// Node-side state of one protocol session: the round counter, the last
/// beacon seen, and the activation flag. The owner calls join()/skip()
/// from its kStartSession handler, handle_beacon() from on_message, and
/// run_round() from on_timer.
struct NodeProtoSession {
  bool in = false;      ///< joined the currently convened session
  bool active = false;  ///< still eligible to report
  Direction dir = Direction::kMax;
  std::uint32_t epoch = 0;
  std::uint32_t log_n = 0;
  std::uint32_t round = 0;
  bool has_beacon = false;
  Value beacon_value = kMinusInf;
  NodeId beacon_holder = kNoHolder;

  void join(NodeCtx& ctx, const SessionStart& s) {
    in = true;
    active = true;
    dir = s.dir;
    epoch = s.epoch;
    log_n = s.log_n;
    round = 0;
    has_beacon = false;
    beacon_holder = kNoHolder;
    ctx.arm_timer();
  }

  void skip() { in = false; }

  void handle_beacon(const Message& m) {
    if (!in) return;
    const auto beacon = unpack_beacon_b(m.b);
    if (beacon.epoch != epoch) return;
    // A beacon without a holder means "no report seen yet" and carries
    // no deactivation power.
    if (beacon.holder == kNoHolder) return;
    has_beacon = true;
    beacon_value = m.a;
    beacon_holder = beacon.holder;
  }

  /// One protocol round (Algorithm 2, node side). `report_value` is both
  /// the value folded into the beacon comparison and the kValueReport
  /// payload; `report_b` rides in the report's b word (0 for session
  /// reports by convention — re-sync replies use 1).
  void run_round(NodeCtx& ctx, Value report_value, std::int64_t report_b = 0) {
    if (!in || !active) return;
    const std::uint32_t r = round++;

    // Line 8: a node beaten by the broadcast extremum deactivates.
    if (has_beacon &&
        !beats(dir, report_value, ctx.id(), beacon_value, beacon_holder)) {
      active = false;
      return;
    }

    // Line 11: Bernoulli(2^r / N) coin flip; the final round has p = 1.
    if (ctx.rng().bernoulli_pow2(r, log_n)) {
      Message report;
      report.kind = MsgKind::kValueReport;
      report.a = report_value;
      report.b = report_b;
      ctx.send(report);
      active = false;
      return;
    }
    if (r >= log_n) {
      active = false;  // defensive; the final-round coin always succeeds
      return;
    }
    ctx.arm_timer();
  }

  /// Session-scoped state must not survive an outage or a re-anchor.
  void reset() {
    in = false;
    active = false;
    has_beacon = false;
    beacon_holder = kNoHolder;
    round = 0;
  }
};

/// Coordinator-side state of one protocol session: the running extremum,
/// the round/flush countdown, and the per-round beacon broadcast. The
/// owner emits the kStartSession control (group semantics differ per
/// monitor), folds reports via fold(), and drives advance() from its
/// timer; advance() returns true exactly when the session concluded.
struct CoordProtoSession {
  bool active = false;
  bool suppress_idle = false;  ///< skip beacons that repeat the extremum
  Direction dir = Direction::kMax;
  std::uint32_t epoch = 0;
  std::uint32_t log_n = 0;
  std::uint32_t round = 0;
  std::uint64_t flush = 0;
  bool have_best = false;
  bool improved = false;
  Value best_value = 0;
  NodeId best_holder = kNoHolder;

  /// Starts a session and emits its kStartSession control under the
  /// monitor's own control opcode; `group` rides in the control's b word
  /// and is interpreted by the owner's nodes. The caller counts
  /// protocol_runs.
  void begin(CoordCtx& ctx, std::int64_t control_op, Direction d,
             std::int64_t group, std::uint64_t n_upper) {
    dir = d;
    epoch = ctx.next_protocol_epoch();
    log_n = floor_log2(next_pow2(n_upper));
    round = 0;
    flush = ctx.flush_ticks();
    have_best = false;
    improved = false;
    best_holder = kNoHolder;
    active = true;

    Control start;
    start.op = control_op;
    start.a = d == Direction::kMin ? 1 : 0;
    start.b = group;
    start.c = pack_session_c(epoch, log_n);
    ctx.control_broadcast(start);
    ctx.arm_timer();
  }

  /// Folds a session kValueReport into the running extremum.
  void fold(const Message& m) {
    if (!active) return;
    if (!have_best || beats(dir, m.a, m.from, best_value, best_holder)) {
      have_best = true;
      best_value = m.a;
      best_holder = m.from;
      improved = true;
    }
  }

  /// One coordinator timer firing (end of round `round`): broadcast the
  /// running extremum or wait out the flush window. Returns true when the
  /// session just concluded — the caller then reads have_best/best_*.
  bool advance(CoordCtx& ctx) {
    if (round < log_n) {
      // Line 18: broadcast the running extremum (optionally on change).
      if (!suppress_idle || improved) {
        Message beacon;
        beacon.kind = MsgKind::kRoundBeacon;
        beacon.a = have_best ? best_value : kMinusInf;
        beacon.b = pack_beacon_b(epoch, have_best ? best_holder : kNoHolder);
        ctx.broadcast(beacon);
      }
      improved = false;
      ++round;
      ctx.arm_timer();
      return false;
    }
    // Final round complete. Under a delayed policy, reports may still be
    // in flight: wait out the network's worst-case lag before concluding
    // (zero extra ticks under instant delivery).
    if (flush > 0) {
      --flush;
      ctx.arm_timer();
      return false;
    }
    active = false;
    return true;
  }

  /// Broadcasts the winner announcement for a concluded selection
  /// iteration (no-op when every report was lost).
  void announce(CoordCtx& ctx) const {
    if (!have_best) return;
    Message announce;
    announce.kind = MsgKind::kWinnerAnnounce;
    announce.a = best_value;
    announce.b = pack_beacon_b(epoch, best_holder);
    ctx.broadcast(announce);
  }
};

}  // namespace topkmon
