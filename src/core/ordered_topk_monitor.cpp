#include "core/ordered_topk_monitor.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/select_topk.hpp"

namespace topkmon {

OrderedTopkMonitor::OrderedTopkMonitor(std::size_t k)
    : OrderedTopkMonitor(k, Options{}) {}

OrderedTopkMonitor::OrderedTopkMonitor(std::size_t k, Options opts) : k_(k) {
  if (k == 0) throw std::invalid_argument("OrderedTopkMonitor: k must be >= 1");
  popts_.suppress_idle_broadcasts = opts.suppress_idle_broadcasts;
}

Value OrderedTopkMonitor::to_w(NodeId id, Value v) const noexcept {
  return v * static_cast<Value>(n_) +
         (static_cast<Value>(n_) - 1 - static_cast<Value>(id));
}

void OrderedTopkMonitor::initialize(Cluster& cluster) {
  n_ = cluster.size();
  if (k_ > n_) throw std::invalid_argument("OrderedTopkMonitor: k > n");
  filters_w_.assign(n_, Filter{});
  in_topk_.assign(n_, 0);
  boundary_active_ = (k_ < n_);
  full_reset(cluster);
}

void OrderedTopkMonitor::step(Cluster& cluster, TimeStep) {
  // Node-local violation checks in w-space.
  std::vector<NodeId> viol_below;     // members that fell below M_w
  std::vector<NodeId> viol_internal;  // members outside their slot, >= M_w
  std::vector<NodeId> viol_out;       // outsiders that rose above M_w
  for (NodeId id = 0; id < n_; ++id) {
    const Value w = to_w(id, cluster.value(id));
    if (filters_w_[id].contains(w)) continue;
    if (!in_topk_[id]) {
      viol_out.push_back(id);
    } else if (boundary_active_ && w < mid_w_) {
      viol_below.push_back(id);
    } else {
      viol_internal.push_back(id);
    }
  }
  if (viol_below.empty() && viol_internal.empty() && viol_out.empty()) return;

  ++mstats_.violation_steps;
  mstats_.violations +=
      viol_below.size() + viol_internal.size() + viol_out.size();

  const bool boundary_event = !viol_below.empty() || !viol_out.empty();
  if (boundary_event) {
    // Algorithm 1's violation protocol, in w-space.
    std::optional<Value> min_w;
    std::optional<Value> max_w;
    if (!viol_below.empty()) {
      const auto res = run_min_protocol(cluster, viol_below, k_, popts_);
      ++mstats_.protocol_runs;
      min_w = to_w(res.winner, res.extremum);
    }
    if (!viol_out.empty()) {
      const auto res =
          run_max_protocol(cluster, viol_out, n_ - k_, popts_);
      ++mstats_.protocol_runs;
      max_w = to_w(res.winner, res.extremum);
    }

    ++mstats_.handler_calls;
    if (!max_w.has_value()) {
      Message start;
      start.kind = MsgKind::kProtocolStart;
      start.a = 0;
      cluster.net().coord_broadcast(start);
      const auto res = run_max_protocol(cluster, rest_list_, n_ - k_, popts_);
      ++mstats_.protocol_runs;
      max_w = to_w(res.winner, res.extremum);
    } else {
      Message start;
      start.kind = MsgKind::kProtocolStart;
      start.a = 1;
      cluster.net().coord_broadcast(start);
      const auto res = run_min_protocol(cluster, order_, k_, popts_);
      ++mstats_.protocol_runs;
      min_w = to_w(res.winner, res.extremum);
    }

    tplus_w_ = std::min(tplus_w_, *min_w);
    tminus_w_ = std::max(tminus_w_, *max_w);

    if (tplus_w_ < tminus_w_) {
      full_reset(cluster);
      return;
    }

    // Halve the boundary gap; outsiders and the lowest member adjust their
    // filters from the broadcast (lowest-member identity is common
    // knowledge from the last order announcement).
    ++mstats_.midpoint_updates;
    mid_w_ = midpoint(tminus_w_, tplus_w_);
    Message update;
    update.kind = MsgKind::kFilterUpdate;
    update.a = mid_w_;
    cluster.net().coord_broadcast(update);
    for (NodeId id = 0; id < n_; ++id) {
      if (!in_topk_[id]) filters_w_[id] = Filter{kMinusInf, mid_w_};
    }
    rebuild_slots();  // lowest member slot extends down to the new M_w

    // Members that dropped (but not below the new boundary's feasibility)
    // still need their internal rank fixed.
    if (!viol_below.empty() || !viol_internal.empty()) {
      internal_rebuild(cluster);
    }
    return;
  }

  // Pure internal order churn within the top-k.
  internal_rebuild(cluster);
}

void OrderedTopkMonitor::internal_rebuild(Cluster& cluster) {
  // Repeated MaximumProtocol over the k members; the winner announcements
  // make the full order common knowledge, so all slot filters are
  // recomputed locally on both sides without extra messages.
  const auto sel =
      select_extreme(cluster, order_, k_, k_, Direction::kMax, popts_);
  mstats_.protocol_runs += sel.winners.size();
  if (sel.winners.size() != k_) {
    throw std::logic_error("OrderedTopkMonitor: member selection incomplete");
  }
  order_.clear();
  known_w_.clear();
  for (const auto& w : sel.winners) {
    order_.push_back(w.id);
    known_w_.push_back(to_w(w.id, w.value));
  }
  rebuild_slots();
}

void OrderedTopkMonitor::full_reset(Cluster& cluster) {
  ++mstats_.filter_resets;
  const std::size_t want = boundary_active_ ? k_ + 1 : k_;
  const auto sel = select_extreme(cluster, cluster.all_ids(), want, n_,
                                  Direction::kMax, popts_);
  mstats_.protocol_runs += sel.winners.size();
  if (sel.winners.size() != want) {
    throw std::logic_error("OrderedTopkMonitor: reset selection incomplete");
  }

  std::fill(in_topk_.begin(), in_topk_.end(), char{0});
  order_.clear();
  known_w_.clear();
  for (std::size_t i = 0; i < k_; ++i) {
    in_topk_[sel.winners[i].id] = 1;
    order_.push_back(sel.winners[i].id);
    known_w_.push_back(to_w(sel.winners[i].id, sel.winners[i].value));
  }
  rebuild_id_lists();

  if (boundary_active_) {
    tplus_w_ = known_w_[k_ - 1];
    tminus_w_ = to_w(sel.winners[k_].id, sel.winners[k_].value);
    mid_w_ = midpoint(tminus_w_, tplus_w_);
    for (NodeId id = 0; id < n_; ++id) {
      if (!in_topk_[id]) filters_w_[id] = Filter{kMinusInf, mid_w_};
    }
  } else {
    mid_w_ = kMinusInf;
  }
  rebuild_slots();
}

void OrderedTopkMonitor::rebuild_slots() {
  // Member at rank j (0-based) holds [mid(w_j, w_{j+1}), mid(w_{j-1}, w_j)],
  // the best member is unbounded above, the worst extends down to M_w.
  for (std::size_t j = 0; j < order_.size(); ++j) {
    const Value hi =
        (j == 0) ? kPlusInf : midpoint(known_w_[j], known_w_[j - 1]);
    const Value lo = (j + 1 == order_.size())
                         ? mid_w_
                         : midpoint(known_w_[j + 1], known_w_[j]);
    filters_w_[order_[j]] = Filter{lo, hi};
  }
}

void OrderedTopkMonitor::rebuild_id_lists() {
  topk_ids_.clear();
  rest_list_.clear();
  for (NodeId id = 0; id < n_; ++id) {
    if (in_topk_[id]) topk_ids_.push_back(id);
    else rest_list_.push_back(id);
  }
}

}  // namespace topkmon
