#include "core/runner.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "core/ground_truth_tracker.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "util/log.hpp"

namespace topkmon {

void check_answer_step(GroundTruthTracker& truth,
                       const std::vector<NodeId>& answer,
                       const std::vector<NodeId>* claimed_order,
                       const RunConfig& cfg, std::string_view monitor_name,
                       std::string_view detail, TimeStep t, RunResult* result,
                       bool throw_on_error) {
  if (cfg.validation == RunConfig::Validation::kOff) return;

  bool ok = true;
  if (cfg.validation == RunConfig::Validation::kStrict) {
    ok = truth.matches_strict(answer);
  } else {
    ok = truth.is_valid(answer);
  }

  if (ok && cfg.validate_order && claimed_order != nullptr) {
    ok = (*claimed_order == truth.ordered_topk());
  }

  if (!ok) {
    result->correct = false;
    ++result->error_steps;
    result->error_step_list.push_back(t);
    if (!result->first_error_step.has_value()) result->first_error_step = t;
    if (throw_on_error) {
      std::ostringstream msg;
      msg << "monitor '" << monitor_name << "' diverged from ground truth "
          << "at step " << t << detail;
      throw std::logic_error(msg.str());
    }
  }
}

namespace {

void check_step(const MonitorBase& monitor, GroundTruthTracker& truth,
                const RunConfig& cfg, TimeStep t, RunResult* result,
                bool throw_on_error) {
  const auto* ordered =
      cfg.validate_order
          ? dynamic_cast<const OrderedTopkMonitor*>(&monitor)
          : nullptr;
  check_answer_step(truth, monitor.topk(),
                    ordered != nullptr ? &ordered->ordered_topk() : nullptr,
                    cfg, monitor.name(), /*detail=*/"", t, result,
                    throw_on_error);
}

}  // namespace

RunResult run_monitor(MonitorBase& monitor, StreamSet& streams,
                      const RunConfig& cfg, bool throw_on_error) {
  if (streams.size() != cfg.n) {
    throw std::invalid_argument("run_monitor: stream count != n");
  }
  if (cfg.k == 0 || cfg.k > cfg.n) {
    throw std::invalid_argument("run_monitor: k out of range");
  }

  const auto wall_start = std::chrono::steady_clock::now();

  Cluster cluster(cfg.n, cfg.seed);
  if (cfg.record_series) cluster.stats().enable_series();

  RunResult result;
  result.monitor_name = std::string(monitor.name());
  result.config = cfg;
  if (cfg.record_trace) result.trace.emplace(cfg.n, cfg.steps + 1);

  // Incremental ground truth: fed alongside the cluster, consulted by the
  // per-step check. Untouched when validation is off.
  GroundTruthTracker truth(cfg.n, cfg.k);
  const bool track = cfg.validation != RunConfig::Validation::kOff;

  // Per-node generation is batched: the streams may prefetch up to the
  // whole run ahead of the observation clock (values are unchanged; only
  // virtual-dispatch overhead amortizes away).
  streams.plan_steps(cfg.steps + 1);
  std::vector<Value> observed(cfg.n);

  const auto observe = [&](TimeStep t) {
    streams.advance_all(observed);
    for (NodeId id = 0; id < cfg.n; ++id) {
      const Value v = observed[id];
      // Unchanged values leave cluster and tracker state identical, so
      // only changed nodes pay the write + tracker update (the lock-step
      // monitor itself still scans densely inside step()).
      if (v != cluster.value(id)) {
        cluster.set_value(id, v);
        if (track) truth.set_value(id, v);
      }
      if (result.trace.has_value()) result.trace->at(t, id) = v;
    }
  };

  // Time 0: first observations + initialization.
  cluster.stats().begin_step(0);
  observe(0);
  monitor.initialize(cluster);
  check_step(monitor, truth, cfg, 0, &result, throw_on_error);
  ++result.steps_executed;
  result.init_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Steps 1..steps.
  for (TimeStep t = 1; t <= cfg.steps; ++t) {
    cluster.stats().begin_step(t);
    observe(t);
    monitor.step(cluster, t);
    check_step(monitor, truth, cfg, t, &result, throw_on_error);
    ++result.steps_executed;
  }

  result.comm = cluster.stats();
  result.monitor = monitor.monitor_stats();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

double competitive_ratio(const RunResult& result, std::size_t k) {
  if (!result.trace.has_value()) {
    throw std::invalid_argument(
        "competitive_ratio: run was executed without record_trace");
  }
  const auto opt = compute_offline_opt(*result.trace, k);
  // The paper charges OPT at least one message per filter-update epoch;
  // the initial epoch's setup is charged to both algorithms, so compare
  // against max(1, updates) to avoid division by zero on silent traces.
  const auto denom = std::max<std::size_t>(1, opt.updates());
  return static_cast<double>(result.comm.total()) /
         static_cast<double>(denom);
}

}  // namespace topkmon
