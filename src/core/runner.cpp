#include "core/runner.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "core/ground_truth.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "util/log.hpp"

namespace topkmon {

void check_answer_step(const Cluster& cluster,
                       const std::vector<NodeId>& answer,
                       const OrderedTopkMonitor* ordered, const RunConfig& cfg,
                       std::string_view monitor_name, std::string_view detail,
                       TimeStep t, RunResult* result, bool throw_on_error) {
  if (cfg.validation == RunConfig::Validation::kOff) return;

  bool ok = true;
  if (cfg.validation == RunConfig::Validation::kStrict) {
    const auto expected = true_topk_set(cluster, cfg.k);
    ok = (answer == expected);
  } else {
    ok = is_valid_topk(cluster, answer);
  }

  if (ok && cfg.validate_order && ordered != nullptr) {
    const auto expected = true_topk_ordered(cluster, cfg.k);
    ok = (ordered->ordered_topk() == expected);
  }

  if (!ok) {
    result->correct = false;
    ++result->error_steps;
    if (!result->first_error_step.has_value()) result->first_error_step = t;
    if (throw_on_error) {
      std::ostringstream msg;
      msg << "monitor '" << monitor_name << "' diverged from ground truth "
          << "at step " << t << detail;
      throw std::logic_error(msg.str());
    }
  }
}

namespace {

void check_step(const MonitorBase& monitor, const Cluster& cluster,
                const RunConfig& cfg, TimeStep t, RunResult* result,
                bool throw_on_error) {
  const auto* ordered =
      cfg.validate_order
          ? dynamic_cast<const OrderedTopkMonitor*>(&monitor)
          : nullptr;
  check_answer_step(cluster, monitor.topk(), ordered, cfg, monitor.name(),
                    /*detail=*/"", t, result, throw_on_error);
}

}  // namespace

RunResult run_monitor(MonitorBase& monitor, StreamSet& streams,
                      const RunConfig& cfg, bool throw_on_error) {
  if (streams.size() != cfg.n) {
    throw std::invalid_argument("run_monitor: stream count != n");
  }
  if (cfg.k == 0 || cfg.k > cfg.n) {
    throw std::invalid_argument("run_monitor: k out of range");
  }

  const auto wall_start = std::chrono::steady_clock::now();

  Cluster cluster(cfg.n, cfg.seed);
  if (cfg.record_series) cluster.stats().enable_series();

  RunResult result;
  result.monitor_name = std::string(monitor.name());
  result.config = cfg;
  if (cfg.record_trace) result.trace.emplace(cfg.n, cfg.steps + 1);

  // Time 0: first observations + initialization.
  cluster.stats().begin_step(0);
  for (NodeId id = 0; id < cfg.n; ++id) {
    const Value v = streams.advance(id);
    cluster.set_value(id, v);
    if (result.trace.has_value()) result.trace->at(0, id) = v;
  }
  monitor.initialize(cluster);
  check_step(monitor, cluster, cfg, 0, &result, throw_on_error);
  ++result.steps_executed;

  // Steps 1..steps.
  for (TimeStep t = 1; t <= cfg.steps; ++t) {
    cluster.stats().begin_step(t);
    for (NodeId id = 0; id < cfg.n; ++id) {
      const Value v = streams.advance(id);
      cluster.set_value(id, v);
      if (result.trace.has_value()) result.trace->at(t, id) = v;
    }
    monitor.step(cluster, t);
    check_step(monitor, cluster, cfg, t, &result, throw_on_error);
    ++result.steps_executed;
  }

  result.comm = cluster.stats();
  result.monitor = monitor.monitor_stats();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

double competitive_ratio(const RunResult& result, std::size_t k) {
  if (!result.trace.has_value()) {
    throw std::invalid_argument(
        "competitive_ratio: run was executed without record_trace");
  }
  const auto opt = compute_offline_opt(*result.trace, k);
  // The paper charges OPT at least one message per filter-update epoch;
  // the initial epoch's setup is charged to both algorithms, so compare
  // against max(1, updates) to avoid division by zero on silent traces.
  const auto denom = std::max<std::size_t>(1, opt.updates());
  return static_cast<double>(result.comm.total()) /
         static_cast<double>(denom);
}

}  // namespace topkmon
