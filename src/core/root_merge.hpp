// Root tier of the hierarchical multi-coordinator deployment, plus the
// deployment object that assembles both tiers.
//
// The root tier is itself a role-based deployment on a c-node cluster:
// each "node" is a ShardAgent speaking for one shard coordinator (via its
// ShardAdapter), and the RootMergeCoordinator runs a second filter layer
// over those c virtual nodes, whose "values" are the shard extrema
// (U_s = weakest member, L_s = strongest outsider). Root-tier traffic
// flows through the root cluster's own Network/CommStats, so the
// shard<->root message count is accounted separately from the
// node<->shard tier — the quantity the sharding experiments plot.
//
// Root protocol (instant root network, existing MsgKinds only):
//
//   agent -> root   kViolation    a = U_s, b = L_s. Sent at bootstrap and
//                                 whenever the shard's boundary crossed
//                                 the root filter (crossing()).
//   root -> agents  kProbe        broadcast: "requery exact extrema and
//                                 report" — opens a renegotiation.
//   root -> agent   kFilterAssign a = new quota (renegotiation transfer;
//                                 the agent replies with fresh extrema).
//   root -> agents  kFilterUpdate a = R, the new shared root boundary;
//                                 each shard re-anchors its filters on it.
//
// A renegotiation collects exact extrema from every shard, then moves
// quota one unit at a time from the shard with the weakest member (min U)
// to the shard with the strongest outsider (max L) while L_gainer >
// U_loser — each transfer strictly improves the merged member multiset,
// so the fixpoint terminates — and finally anchors every shard on
// R = midpoint(max_s L_s, min_s U_s), restoring L_s <= R <= U_s for all s
// (the exactness invariant of core/shard_coordinator.hpp). In steady
// state no boundary crosses R and the root tier is silent: all traffic
// stays inside the shards.
//
// At c == 1 the tier is inert by construction: the agent and coordinator
// detect the single-shard deployment in on_init and never send, the shard
// runs unsharded (no pin, monolithic edge cases), and shard 0 keeps the
// scenario seed — so a 1-shard ShardedDeployment is message-for-message
// and answer-for-answer identical to the monolithic path (pinned by
// tests/core/test_shard_equivalence.cpp and the e18 suite).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/driver.hpp"
#include "core/roles.hpp"
#include "core/shard_coordinator.hpp"
#include "sim/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "util/worker_pool.hpp"

namespace topkmon {

/// Root-tier node algorithm: one per shard, wrapping its ShardAdapter.
/// Stays in the needs-observe set forever (the crossing poll is the
/// per-step work). Inert in a 1-shard deployment.
class ShardAgent final : public NodeAlgo {
 public:
  explicit ShardAgent(ShardAdapter& adapter) : adapter_(adapter) {}

  void on_init(NodeCtx& ctx, Value) override {
    if (ctx.n() <= 1) return;
    send_extrema(ctx, adapter_.extrema());
  }
  void on_observe(NodeCtx& ctx, Value, TimeStep) override {
    if (ctx.n() > 1 && adapter_.crossing()) send_extrema(ctx, adapter_.extrema());
  }
  void on_message(NodeCtx& ctx, const Message& m) override {
    switch (m.kind) {
      case MsgKind::kProbe:
        send_extrema(ctx, adapter_.requery());
        break;
      case MsgKind::kFilterAssign:
        send_extrema(ctx,
                     adapter_.set_quota(static_cast<std::size_t>(m.a)));
        break;
      case MsgKind::kFilterUpdate:
        adapter_.set_pin(m.a);
        break;
      default:
        break;
    }
  }

 private:
  void send_extrema(NodeCtx& ctx, const ShardExtrema& e) {
    Message m;
    m.kind = MsgKind::kViolation;
    m.a = e.weakest_member;
    m.b = e.strongest_outsider;
    ctx.send(m);
  }

  ShardAdapter& adapter_;
};

/// Root-tier coordinator: merges the c shard answers and renegotiates
/// quotas/boundary when a shard reports a crossing (see file comment).
/// Assembles the global answer on the uncharged measurement plane each
/// step — the charged protocol's job is maintaining the union-correctness
/// invariant, not shipping the id list (the monolithic coordinator's
/// answer set is equally a coordinator-local view).
class RootMergeCoordinator final : public CoordinatorAlgo {
 public:
  /// `name` is reported as the deployment's monitor name (the inner
  /// monitor's, so result tables match the monolithic path at c == 1).
  RootMergeCoordinator(std::string name, std::size_t k,
                       std::span<const std::unique_ptr<ShardAdapter>> adapters,
                       std::vector<ShardRange> ranges);

  std::string_view name() const override { return name_; }
  void on_init(CoordCtx& ctx) override;
  void on_step_begin(CoordCtx& ctx, TimeStep t) override;
  void on_message(CoordCtx& ctx, const Message& m) override;
  void on_step_end(CoordCtx& ctx, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  /// The shared root boundary R, once established.
  std::optional<Value> root_boundary() const {
    return have_r_ ? std::optional<Value>(r_) : std::nullopt;
  }

  /// Dynamic reconfiguration: renegotiate the global top-k size to `k`
  /// at the next step. The quota fixpoint generalizes to an off-target
  /// total: while sum(quota) < k the shard with the strongest outsider
  /// is granted a slot, while sum(quota) > k the shard with the weakest
  /// member gives one up — each kFilterAssign moves the total one unit
  /// toward k before the usual improving transfers run, so the
  /// renegotiation terminates at the new total with the merged answer
  /// exact. Callable between steps (scenario-side fault plumbing); the
  /// next on_step_begin opens the renegotiation.
  void request_k(std::size_t k) noexcept { pending_k_ = k; }

 private:
  /// Latest extrema report from one shard. `fresh` means "reported since
  /// the last probe/assign touched this shard" — quota decisions only run
  /// on a full set of fresh, exact extrema.
  struct Info {
    Value u = kPlusInf;
    Value l = kMinusInf;
    bool fresh = false;
  };

  void begin_renegotiation(CoordCtx& ctx);
  void advance_fixpoint(CoordCtx& ctx);
  void finish_renegotiation(CoordCtx& ctx);

  std::string name_;
  std::size_t k_;
  std::span<const std::unique_ptr<ShardAdapter>> adapters_;
  std::vector<ShardRange> ranges_;

  bool inert_ = false;  ///< c == 1: never sends, only merges the answer
  enum class RPhase : std::uint8_t {
    kIdle,     ///< steady state; a kViolation opens a renegotiation
    kCollect,  ///< waiting for fresh extrema from every shard
  };
  RPhase rphase_ = RPhase::kIdle;
  std::optional<std::size_t> pending_k_;  ///< request_k, applied at step begin
  bool have_r_ = false;
  Value r_ = 0;
  std::vector<Info> info_;
  std::size_t fresh_ = 0;  ///< number of shards with info_[s].fresh

  TimeStep cur_step_ = 0;
  bool violation_this_step_ = false;

  std::vector<NodeId> topk_ids_;
};

/// Construction parameters of a two-tier sharded deployment.
struct ShardedSpec {
  std::size_t n = 0;          ///< total nodes (incl. not-yet-joined ids)
  std::size_t k = 0;          ///< global top-k size
  std::size_t shards = 1;     ///< shard count c (1 <= c <= n)
  std::uint64_t seed = 0;     ///< scenario seed (shard 0 keeps it verbatim)
  NetworkSpec network{};      ///< node<->shard policy (root net is instant)
  std::size_t workers = 1;    ///< parallelism (see ShardedDeployment)
  bool dense_loop = false;    ///< diagnostic dense inner driver loops
  enum class Monitor : std::uint8_t { kFilter, kNaive, kNaiveChg };
  Monitor monitor = Monitor::kFilter;
  /// topk_filter's beacon-suppression ablation, forwarded to every shard.
  bool suppress_idle_broadcasts = false;
  /// Deployment-level fault schedule (global ids; nullptr = fault-free;
  /// must outlive the deployment). Membership churn is carved into
  /// per-shard plans with shard-local ids and fired by the shard drivers;
  /// quotas split over the initially-live prefix only; kSetK events stay
  /// with the caller (route them through set_k). Degradations (lag/
  /// stale/mute) are not supported sharded — the scenario runner rejects
  /// such plans before construction.
  const FaultPlan* faults = nullptr;
};

/// A complete two-tier deployment: c shard deployments plus the root
/// tier, presenting the same set_value / initialize / step / topk surface
/// as a monolithic monitor run.
///
/// Parallelism: at c == 1 `workers` runs the single shard's parallel tick
/// scan (exactly the monolithic behaviour). At c > 1 the shards' inner
/// drivers run serial and `workers` instead steps whole shards
/// concurrently on a WorkerPool — each shard owns its cluster/driver, the
/// pool's static index assignment keeps the shard->thread mapping fixed,
/// and the root tier (serial, between steps) is the only cross-shard
/// coupling, so results are byte-identical for every worker count.
class ShardedDeployment {
 public:
  explicit ShardedDeployment(const ShardedSpec& spec);

  std::size_t shards() const noexcept { return ranges_.size(); }
  const ShardRange& range(std::size_t s) const { return ranges_.at(s); }
  /// Owning shard of a global node id.
  std::size_t shard_of(NodeId global) const;

  /// Routes a global-id value write to the owning shard's cluster.
  void set_value(NodeId global, Value v);

  /// Time 0: values must already be set. Initializes every shard (serial),
  /// then the root tier — the bootstrap renegotiation establishes R and
  /// anchors every shard on it before the first observation step.
  void initialize();

  /// One observation step; `changed` holds global ids (any order).
  void step(TimeStep t, std::span<const NodeId> changed);

  /// Dynamic reconfiguration to a new global top-k size (1 <= k <= n),
  /// applied warm: at c == 1 the single shard's quota is re-keyed
  /// directly; at c > 1 the root renegotiates shard quotas to the new
  /// total at the next step (RootMergeCoordinator::request_k). Call
  /// between steps, before the step the new k takes effect at.
  void set_k(std::size_t k);

  const std::vector<NodeId>& topk() const { return root_coord_->topk(); }
  std::string_view name() const { return root_coord_->name(); }
  const RootMergeCoordinator& root() const { return *root_coord_; }
  Cluster& shard_cluster(std::size_t s) { return adapters_.at(s)->cluster(); }

  /// Max inner-driver delivery ticks across the shards. Monotonic across
  /// filter-shard rebuilds (each shard's clock lives on its warm
  /// cluster), so the sharded scenario runner can key recovery-window
  /// accounting on it exactly like the monolithic runner keys on
  /// SimDriver::now().
  SimTime ticks() const;

  /// node<->shard tier message totals: the per-shard cluster counters
  /// summed (at c == 1, a plain copy of the single shard's stats, series
  /// included).
  CommStats node_shard_comm();
  /// shard<->root tier message totals (zero at c == 1 by construction).
  const CommStats& shard_root_comm() const { return root_cluster_->stats(); }
  /// Algorithm counters: shard coordinators' (retired + live) plus the
  /// root's, summed field-wise.
  MonitorStats monitor_totals() const;

 private:
  ShardedSpec spec_;
  std::vector<ShardRange> ranges_;
  /// Per-shard carved fault schedules (shard-local ids). Filled once in
  /// the constructor and never resized after: the adapters hold stable
  /// pointers into it, so it must be declared before them (destroyed
  /// after).
  std::vector<FaultPlan> shard_plans_;
  std::vector<std::unique_ptr<ShardAdapter>> adapters_;
  std::vector<std::unique_ptr<NodeAlgo>> agents_;
  std::unique_ptr<Cluster> root_cluster_;
  std::unique_ptr<RootMergeCoordinator> root_coord_;
  std::unique_ptr<SimDriver> root_driver_;
  std::optional<WorkerPool> pool_;  ///< engaged at c > 1 && workers > 1
  std::vector<std::vector<NodeId>> changed_by_shard_;  ///< step scratch
  std::vector<std::exception_ptr> shard_errors_;       ///< step scratch
};

}  // namespace topkmon
