// The event loop that drives a role-separated monitor (one CoordinatorAlgo
// plus n NodeAlgos) over a cluster.
//
// Time structure: each observation step spans one or more network *ticks*.
// Per tick the driver services, in deterministic order,
//
//   1. every node in id order: due charged messages (on_message), then the
//      tick's Control broadcasts (on_control), then its armed timer
//      (on_timer) — messages strictly before controls, because a control
//      queued in the same coordinator phase as a broadcast logically
//      follows it (a winner announcement must exclude its winner before
//      the next selection iteration convenes);
//   2. the coordinator: due charged messages in arrival order;
//   3. the coordinator's armed timer.
//
// Ticks repeat until quiescence (no armed timer, no pending delivery, no
// pending control) or, when the NetworkSpec sets a tick budget, until the
// budget expires — in-flight messages then carry over into later steps.
// Under the instant NetworkSpec this schedule reproduces the lock-step
// protocol rounds of the legacy MonitorBase::step() exactly: a beacon
// broadcast in phase 4 of tick T reaches nodes in phase 2 of tick T+1,
// and reports sent there reach the coordinator in phase 2 of the same
// tick — the paper's node-phase / coordinator-phase alternation.
//
// Sparse scan: phase 1 only *visits* the union of {nodes with due mail,
// nodes with an armed timer} — for every other node all three sub-phases
// are no-ops, so skipping them is output-identical while making a settled
// tick O(active) instead of O(n). Ticks that deliver a Control broadcast
// fall back to the dense scan (a control reaches every node by
// definition), as does set_dense_loop(true), the benchmark/diagnostic
// escape hatch. Within the scan, nodes whose due mail is purely
// broadcasts take the bulk fan-out: the instant network hands out each
// node's unread log suffix in place (Network::unread_broadcasts) and the
// delivery commits with an O(1) ack — same messages, same order as a
// drain, none of the per-node buffer traffic.
//
// Observation sparsity follows the same contract: step(t, changed) runs
// on_observe only for nodes whose value changed this step plus nodes that
// requested unconditional observation via NodeCtx::set_needs_observe —
// the flag every algorithm whose on_observe is not a no-op on an
// unchanged value must keep set (it starts set; see roles.hpp).
//
// Timer semantics: arming from a node's on_message/on_control fires in
// the same tick's node timer slot; arming from within on_timer fires next
// tick (ditto for the coordinator in phases 2-3). This is what lets a
// protocol session convene in one tick and run its round 0 in the next.
//
// Parallel tick loop (workers > 1): phase 1 — the node scan — is the only
// parallel region. The NodeRuntime bit words are partitioned into W
// contiguous ranges (whole 64-bit words, so every bit a shard mutates
// lives in a word it owns); a persistent WorkerPool runs the scan of each
// range concurrently, with every shared-state side effect a node callback
// can cause (ctx.send, ctx.signal, drain accounting) staged into that
// shard's private buffers. At the tick barrier the main thread replays
// the staged effects in shard order — i.e. ascending node id order, the
// exact serial order — so message seq stamps, the scheduled-delivery
// hash, signal order, stats and taps are all byte-identical to
// workers == 1. The coordinator phase, observe callbacks' surrounding
// step logic, and everything else stay serial. Requires auto_deliver
// (native role algorithms — one independent object per node);
// LockstepAdapter deployments share one monitor object across node
// callbacks and are rejected. Full design: docs/architecture.md,
// "Parallel tick loop".
//
// Threading contract: every public method below is owner-thread only —
// the driver is externally single-threaded; parallelism is an internal
// implementation detail of the tick scan. NodeCtx methods are callable
// from worker shards only because they route through the staged plumbing
// marked below.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/roles.hpp"
#include "sim/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "util/bitset.hpp"
#include "util/worker_pool.hpp"

namespace topkmon {

/// The event loop driving one role-separated deployment (coordinator +
/// n node algorithms) over a cluster: observation steps, delivery
/// ticks, timers and the uncharged control plane, with the sparse
/// activity-driven scan and the bulk broadcast fan-out documented in
/// the header comment above and in docs/architecture.md.
class SimDriver {
 public:
  /// `auto_deliver` selects the event loop: true for native role
  /// algorithms (the driver drains the network each tick), false for
  /// LockstepAdapter-backed ones (the wrapped monitor drains the network
  /// itself inside on_step_begin, so the driver must not consume mail).
  /// `workers` is the tick-scan parallelism: 1 runs the serial loop
  /// (no pool, no staging — the pre-existing code path), W > 1 shards
  /// the scan across W threads with byte-identical output. Throws
  /// std::invalid_argument for workers > 1 without auto_deliver (a
  /// lock-step monitor is one shared object; its node callbacks cannot
  /// run concurrently).
  SimDriver(Cluster& cluster, CoordinatorAlgo& coordinator,
            std::span<const std::unique_ptr<NodeAlgo>> nodes,
            bool auto_deliver, std::size_t workers = 1);

  /// Time 0: values must already be set on the cluster. Runs every node's
  /// on_init, the coordinator's on_init, and settles to quiescence (the
  /// tick budget does not apply to initialization: setup completes before
  /// the observation cadence starts).
  void initialize();

  /// One observation step (values already set). Runs on_observe for every
  /// node, on_step_begin, the tick loop, then on_step_end.
  void step(TimeStep t);

  /// One observation step with activity information: `changed` lists the
  /// nodes whose value differs from the previous step (any order — the
  /// observe scan re-sorts by id via its bitset). on_observe runs only
  /// for those nodes plus the needs-observe set — identical outcomes,
  /// O(active) cost. Ignored (dense observe) under set_dense_loop(true).
  void step(TimeStep t, std::span<const NodeId> changed);

  /// Drains scheduled deliveries and timers to quiescence without running
  /// an observation phase (subject to the same per-step tick budget as a
  /// step). The sharded runtime (core/root_merge.hpp) uses it to flush
  /// coordinator traffic injected between steps — re-anchoring broadcasts
  /// and renegotiation sessions; a no-op when nothing is pending.
  /// Threading: owner thread only, like step().
  void pump();

  /// Forces the legacy dense per-tick scan and dense observe loop
  /// (diagnostics / sparse-vs-dense benchmarking; output-identical).
  void set_dense_loop(bool dense) noexcept { dense_ = dense; }

  /// Attaches a fault-injection schedule (sim/fault_plan.hpp). `plan`
  /// must outlive the driver (nullptr detaches). Events fire at the
  /// first delivery tick of their scheduled step, before any mail or
  /// timer is serviced — serially, on the owner thread, so the alive
  /// set is stable within a tick even under workers > 1. Call before
  /// initialize(): nodes the plan introduces later via join events must
  /// be marked down (Network::set_node_down) before initialization so
  /// their on_init is deferred to the join. With no plan attached the
  /// event loop is byte-identical to a build without fault support.
  /// Throws std::invalid_argument if the plan's node provisioning does
  /// not match the cluster size.
  void set_fault_plan(const FaultPlan* plan);

  /// Like set_fault_plan(plan), but resumes the schedule at event index
  /// `cursor` instead of 0. The sharded runtime uses it when it rebuilds
  /// a shard deployment mid-run (a fresh driver on the warm cluster must
  /// not re-fire events the retired driver already applied). Throws
  /// std::invalid_argument when `cursor` exceeds the plan's event count.
  void set_fault_plan(const FaultPlan* plan, std::size_t cursor);

  /// Index of the next unapplied fault event (== events().size() once
  /// the schedule is exhausted). Pairs with the cursor-resuming
  /// set_fault_plan overload across driver rebuilds.
  std::size_t fault_cursor() const noexcept { return fault_cursor_; }

  /// Ticks consumed so far (diagnostics; grows monotonically).
  SimTime now() const noexcept { return cluster_.net().now(); }

  /// Tick-scan parallelism this driver was built with (>= 1).
  std::size_t workers() const noexcept {
    return shards_.empty() ? 1 : shards_.size();
  }

  // -- context plumbing (used by NodeCtx / CoordCtx) ------------------------
  // Per-node scalars (armed, needs-observe) live in the cluster's shared
  // structure-of-arrays NodeRuntime, next to the network's due-mail bits
  // the tick scan unions them with. The node-side entry points
  // (raise_signal, node_send, arm_node) are parallel-phase aware: on a
  // worker shard they stage into the shard's private buffers (via the
  // thread-local stage pointer) for the ordered replay at the tick
  // barrier; on the owner thread they apply directly.

  /// Records an uncharged upstream signal for the current step. Staged in
  /// shard raise order during a parallel phase (replay preserves the
  /// serial order: shard-major == ascending node id).
  void raise_signal(Signal s) {
    if (t_stage_ != nullptr) {
      t_stage_->signals.push_back(s);
    } else {
      signals_.push_back(s);
    }
  }
  /// Signals raised since the step began, in raise order. Owner thread
  /// only (coordinator phase — staged signals are merged by then).
  const std::vector<Signal>& signals() const noexcept { return signals_; }
  /// Queues an uncharged Control broadcast for the next node phase.
  /// Owner thread only (only coordinator callbacks queue controls, and
  /// the coordinator phase is serial).
  void queue_control(const Control& c) { pending_controls_.push_back(c); }
  /// Node `from` sends `m` upstream (charged). Staged during a parallel
  /// phase — the network's send side (seq stamps, inboxes, stats) is
  /// owner-thread only — and replayed in serial order at the barrier.
  /// Both the serial path and the barrier replay route through
  /// dispatch_node_send, so adversarial degradations (lag/stale/mute)
  /// apply identically for every --workers value.
  void node_send(NodeId from, Message m) {
    if (t_stage_ != nullptr) {
      m.from = from;  // replay target; node_send re-stamps it anyway
      t_stage_->sends.push_back(m);
    } else {
      dispatch_node_send(from, m);
    }
  }
  /// Arms node id's timer for the next node timer phase (idempotent).
  /// Parallel-phase safe for the id's owning shard: the bit write lands
  /// in a shard-owned word; the shared counter delta is staged.
  void arm_node(NodeId id) {
    IdBitset& armed = cluster_.runtime().armed;
    if (!armed.test(id)) {
      armed.set(id);
      if (t_stage_ != nullptr) {
        ++t_stage_->armed_delta;
      } else {
        ++armed_nodes_;
      }
    }
  }
  /// Arms the coordinator's timer for the next coordinator timer phase.
  /// Owner thread only.
  void arm_coordinator() noexcept { coord_armed_ = true; }
  /// Adds/removes node id from the unconditional-observe set. Parallel-
  /// phase safe for the id's owning shard (bit write in a shard-owned
  /// word; no counter).
  void set_needs_observe(NodeId id, bool needs) {
    cluster_.runtime().needs_observe.assign(id, needs);
  }

 private:
  /// One worker's private staging area for a parallel phase. Cache-line
  /// aligned so two shards' hot counters never share a line.
  struct alignas(64) WorkerShard {
    std::vector<Message> sends;    ///< staged ctx.send()s (from = sender)
    std::vector<Signal> signals;   ///< staged ctx.signal()s, raise order
    std::vector<Message> mail;     ///< per-shard drain scratch
    std::ptrdiff_t armed_delta = 0;  ///< net armed-counter change
    Network::DrainStage drain;     ///< staged network accounting
    std::exception_ptr error;      ///< first exception in this shard
  };

  void settle(bool respect_budget);
  void run_tick();
  void run_tick_dense();
  /// True iff an unapplied fault event is scheduled at or before the
  /// current observation step (it must fire on the next tick).
  bool fault_due() const noexcept;
  /// Fires every due fault event in schedule order: crash/leave freeze
  /// the node's armed timer and drop it from the transport; recover/join
  /// restore them and run the node's on_recover (join: on_init first);
  /// set-k forwards to the coordinator. Owner thread, tick head only.
  void apply_due_faults();
  void apply_node_down(NodeId id);
  void apply_node_up(NodeId id, bool first_time);
  /// The single funnel for charged node->coordinator traffic. With no
  /// degraded node the funnel is one empty-vector test on top of
  /// Network::node_send; otherwise it applies the sender's degradation:
  /// mute discards the message, stale rewrites a value-bearing payload
  /// to the frozen snapshot, lag parks the message in the held queue.
  void dispatch_node_send(NodeId from, Message m);
  /// Re-injects every held (lagged) message whose release tick has
  /// arrived, in (release, send-seq) order. Owner thread, tick head.
  void release_due_held();
  /// Earliest release tick over the held queue (held_ must be non-empty;
  /// the queue is kept sorted, so this is the front element).
  SimTime earliest_held_release() const noexcept {
    return held_.front().release;
  }
  /// Phase-1 body for one node (mail -> controls -> timer). `stage` is
  /// the servicing shard during a parallel phase, nullptr on the serial
  /// path (side effects then apply directly — the workers == 1 loop is
  /// exactly the pre-parallel code).
  void service_node(NodeId id, WorkerShard* stage);
  /// Phases 2-3 (coordinator mail, coordinator timer).
  void service_coordinator();
  bool anything_scheduled() const noexcept;

  /// Runs `body(shard, word_lo, word_hi)` for every shard over its
  /// contiguous word range of the n-node bit arrays, in parallel, then
  /// merges all staged effects in shard order (the tick barrier).
  /// Exceptions are rethrown deterministically: lowest shard index wins
  /// (== first in serial order), after every stage is committed.
  template <typename Body>
  void run_sharded(Body&& body);
  /// The ordered merge half of run_sharded (commit drains and armed
  /// deltas, rethrow, replay signals and sends in shard order).
  void merge_shards();

  Cluster& cluster_;
  CoordinatorAlgo& coord_;
  std::span<const std::unique_ptr<NodeAlgo>> nodes_;
  bool auto_deliver_;
  bool dense_ = false;

  CoordCtx coord_ctx_;

  std::vector<Signal> signals_;
  std::vector<Control> pending_controls_;
  std::vector<Control> delivering_controls_;  // double-buffer for phase 1
  std::vector<Message> mail_scratch_;         // reused across drains/ticks
  IdBitset scan_scratch_;       // per-tick/step union scratch
  std::size_t armed_nodes_ = 0;
  bool coord_armed_ = false;

  // Fault injection (null/empty without a plan; see set_fault_plan).
  const FaultPlan* faults_ = nullptr;
  std::size_t fault_cursor_ = 0;      // next unapplied event
  TimeStep cur_step_ = 0;             // step currently being settled
  IdBitset frozen_armed_;  // timers frozen by a crash, rearmed on recovery

  // Adversarial degradations (sized n only when the attached plan has
  // degradation events; empty otherwise — the send funnel fast-paths on
  // that emptiness, so fault-free and churn-only runs stay
  // byte-identical to the pre-degradation code).
  enum class DegradeMode : std::uint8_t { kNone, kLag, kStale, kMute };
  struct NodeDegrade {
    DegradeMode mode = DegradeMode::kNone;
    std::size_t lag_ticks = 0;  ///< hold delay (kLag)
    Value frozen = 0;           ///< payload snapshot (kStale)
  };
  /// One lagged message parked in the driver. The queue is kept sorted
  /// by (release, insertion order): insertions go through upper_bound on
  /// release, so equal releases preserve send order.
  struct HeldSend {
    SimTime release = 0;
    NodeId from = 0;
    Message m{};
  };
  std::vector<NodeDegrade> degrade_;
  std::vector<HeldSend> held_;

  // Parallel mode (workers > 1): per-worker staging + the persistent
  // pool. Both empty/null at workers == 1 — the serial path never tests
  // more than shards_.empty().
  std::vector<WorkerShard> shards_;
  std::unique_ptr<WorkerPool> pool_;
  /// Points at the shard the current thread is scanning for, nullptr
  /// outside parallel phases. thread_local (not a member copy per
  /// thread): one OS thread services at most one driver's shard at a
  /// time, and SweepRunner workers each drive their own driver.
  static thread_local WorkerShard* t_stage_;
};

}  // namespace topkmon
