// The event loop that drives a role-separated monitor (one CoordinatorAlgo
// plus n NodeAlgos) over a cluster.
//
// Time structure: each observation step spans one or more network *ticks*.
// Per tick the driver services, in deterministic order,
//
//   1. every node in id order: due charged messages (on_message), then the
//      tick's Control broadcasts (on_control), then its armed timer
//      (on_timer) — messages strictly before controls, because a control
//      queued in the same coordinator phase as a broadcast logically
//      follows it (a winner announcement must exclude its winner before
//      the next selection iteration convenes);
//   2. the coordinator: due charged messages in arrival order;
//   3. the coordinator's armed timer.
//
// Ticks repeat until quiescence (no armed timer, no pending delivery, no
// pending control) or, when the NetworkSpec sets a tick budget, until the
// budget expires — in-flight messages then carry over into later steps.
// Under the instant NetworkSpec this schedule reproduces the lock-step
// protocol rounds of the legacy MonitorBase::step() exactly: a beacon
// broadcast in phase 4 of tick T reaches nodes in phase 2 of tick T+1,
// and reports sent there reach the coordinator in phase 2 of the same
// tick — the paper's node-phase / coordinator-phase alternation.
//
// Timer semantics: arming from a node's on_message/on_control fires in
// the same tick's node timer slot; arming from within on_timer fires next
// tick (ditto for the coordinator in phases 2-3). This is what lets a
// protocol session convene in one tick and run its round 0 in the next.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/roles.hpp"
#include "sim/cluster.hpp"

namespace topkmon {

class SimDriver {
 public:
  /// `auto_deliver` selects the event loop: true for native role
  /// algorithms (the driver drains the network each tick), false for
  /// LockstepAdapter-backed ones (the wrapped monitor drains the network
  /// itself inside on_step_begin, so the driver must not consume mail).
  SimDriver(Cluster& cluster, CoordinatorAlgo& coordinator,
            std::span<const std::unique_ptr<NodeAlgo>> nodes,
            bool auto_deliver);

  /// Time 0: values must already be set on the cluster. Runs every node's
  /// on_init, the coordinator's on_init, and settles to quiescence (the
  /// tick budget does not apply to initialization: setup completes before
  /// the observation cadence starts).
  void initialize();

  /// One observation step (values already set). Runs on_observe for every
  /// node, on_step_begin, the tick loop, then on_step_end.
  void step(TimeStep t);

  /// Ticks consumed so far (diagnostics; grows monotonically).
  SimTime now() const noexcept { return cluster_.net().now(); }

  // -- context plumbing (used by NodeCtx / CoordCtx) ------------------------
  void raise_signal(Signal s) { signals_.push_back(s); }
  const std::vector<Signal>& signals() const noexcept { return signals_; }
  void queue_control(const Control& c) { pending_controls_.push_back(c); }
  void arm_node(NodeId id) {
    if (!node_armed_[id]) {
      node_armed_[id] = 1;
      ++armed_nodes_;
    }
  }
  void arm_coordinator() noexcept { coord_armed_ = true; }

 private:
  void settle(bool respect_budget);
  void run_tick();
  bool anything_scheduled() const noexcept;

  Cluster& cluster_;
  CoordinatorAlgo& coord_;
  std::span<const std::unique_ptr<NodeAlgo>> nodes_;
  bool auto_deliver_;

  CoordCtx coord_ctx_;
  std::vector<NodeCtx> node_ctxs_;

  std::vector<Signal> signals_;
  std::vector<Control> pending_controls_;
  std::vector<Control> delivering_controls_;  // double-buffer for phase 1
  std::vector<Message> mail_scratch_;         // reused across drains/ticks
  std::vector<char> node_armed_;
  std::size_t armed_nodes_ = 0;
  bool coord_armed_ = false;
};

}  // namespace topkmon
