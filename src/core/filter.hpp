// Filters (Definition 2.1): per-node closed intervals such that while every
// node's value stays inside its interval, the top-k position function F
// cannot change. Lemma 2.2 characterizes validity: every top-k node's lower
// bound must be >= every non-top-k node's upper bound (intervals across the
// k-boundary are disjoint except possibly at a single shared point).
#pragma once

#include <span>
#include <vector>

#include "util/types.hpp"

namespace topkmon {

/// A closed filter interval [lo, hi] with +-infinity sentinels.
struct Filter {
  Value lo = kMinusInf;
  Value hi = kPlusInf;

  constexpr bool contains(Value v) const noexcept { return lo <= v && v <= hi; }

  /// Violation side for a value outside the filter: -1 fell below lo,
  /// +1 rose above hi, 0 contained.
  constexpr int violation_side(Value v) const noexcept {
    if (v < lo) return -1;
    if (v > hi) return +1;
    return 0;
  }

  friend constexpr bool operator==(const Filter&, const Filter&) = default;
};

/// Checks the Lemma 2.2 characterization for a candidate filter assignment:
///  (1) every node's current value lies in its interval, and
///  (2) min over top-k lower bounds >= max over non-top-k upper bounds.
/// `in_topk[i]` flags node i's membership; all spans have size n.
inline bool is_valid_filter_set(std::span<const Value> values,
                                std::span<const Filter> filters,
                                std::span<const char> in_topk) {
  if (values.size() != filters.size() || values.size() != in_topk.size()) {
    return false;
  }
  Value min_top_lo = kPlusInf;
  Value max_bot_hi = kMinusInf;
  bool has_top = false;
  bool has_bot = false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!filters[i].contains(values[i])) return false;
    if (in_topk[i]) {
      has_top = true;
      min_top_lo = std::min(min_top_lo, filters[i].lo);
    } else {
      has_bot = true;
      max_bot_hi = std::max(max_bot_hi, filters[i].hi);
    }
  }
  if (!has_top || !has_bot) return true;  // k == 0 or k == n: no boundary
  return min_top_lo >= max_bot_hi;
}

}  // namespace topkmon
