#include "core/slack_roles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topkmon {

namespace {

constexpr std::int64_t kBitsPerWord = 64;
constexpr std::int64_t kIdsPerControl = 128;

}  // namespace

// ---------------------------------------------------------------------------
// SlackNode
// ---------------------------------------------------------------------------

void SlackNode::on_init(NodeCtx& ctx, Value) {
  // [-inf, +inf] until the first boundary arrives: nothing to watch.
  ctx.set_needs_observe(false);
}

void SlackNode::rebuild_filter(NodeCtx& ctx) {
  if (!has_bound_) {
    filter_ = Filter{};
  } else {
    filter_ = member_ ? Filter{bound_, kPlusInf} : Filter{kMinusInf, bound_};
  }
  ctx.set_needs_observe(!filter_.contains(ctx.value()));
}

void SlackNode::on_observe(NodeCtx& ctx, Value v, TimeStep) {
  if (filter_.contains(v)) {
    ctx.set_needs_observe(false);
    return;
  }
  // B&O-style: the violator reports its fresh value directly (one charged
  // upstream message), re-raised every violating step so a repair aborted
  // by message loss restarts.
  ctx.set_needs_observe(true);
  Message report;
  report.kind = MsgKind::kViolation;
  report.a = v;
  report.b = member_ ? -1 : +1;
  ctx.send(report);
  ctx.signal(member_ ? 1 : 0);
}

void SlackNode::on_message(NodeCtx& ctx, const Message& m) {
  switch (m.kind) {
    case MsgKind::kProtocolStart: {
      // A poll shout; payload a selects the addressed side.
      const auto side = static_cast<SlackPollSide>(m.a);
      const bool mine = side == SlackPollSide::kAll ||
                        (side == SlackPollSide::kTop && member_) ||
                        (side == SlackPollSide::kRest && !member_);
      if (!mine) break;
      Message reply;
      reply.kind = MsgKind::kValueReport;
      reply.a = ctx.value();
      ctx.send(reply);
      break;
    }
    case MsgKind::kFilterUpdate: {
      has_bound_ = true;
      bound_ = m.a;
      rebuild_filter(ctx);
      break;
    }
    case MsgKind::kFilterAssign: {
      // Crash-recovery re-anchor: explicit (membership, boundary).
      member_ = m.a != 0;
      has_bound_ = true;
      bound_ = m.b;
      rebuild_filter(ctx);
      break;
    }
    default:
      break;
  }
}

void SlackNode::on_control(NodeCtx& ctx, const Control& c) {
  if (static_cast<SlackControlOp>(c.op) != SlackControlOp::kMembership) return;
  const auto id = static_cast<std::int64_t>(ctx.id());
  if (id / kIdsPerControl != c.a) return;  // another word's window
  const std::int64_t local = id % kIdsPerControl;
  const std::uint64_t word = static_cast<std::uint64_t>(
      local < kBitsPerWord ? c.b : c.c);
  const std::int64_t bit = local % kBitsPerWord;
  member_ = ((word >> bit) & 1) != 0;
  // The boundary broadcast of the same reset may have landed just before
  // this control (messages precede controls within a node phase): rebuild
  // the filter so both orderings converge within the tick.
  rebuild_filter(ctx);
}

void SlackNode::on_recover(NodeCtx& ctx) {
  // member_/bound_ survive but may predate renegotiations during the
  // outage: stay in the observe set until the re-anchor assignment lands.
  ctx.set_needs_observe(true);
}

// ---------------------------------------------------------------------------
// SlackCoordinator
// ---------------------------------------------------------------------------

SlackCoordinator::SlackCoordinator(std::size_t k, Options opts)
    : k_(k), opts_(opts) {
  if (k == 0) throw std::invalid_argument("SlackCoordinator: k must be >= 1");
  if (!(opts.alpha > 0.0 && opts.alpha < 1.0)) {
    throw std::invalid_argument("SlackCoordinator: alpha must be in (0, 1)");
  }
}

void SlackCoordinator::on_init(CoordCtx& ctx) {
  n_ = ctx.n();
  if (k_ > n_) throw std::invalid_argument("SlackCoordinator: k > n");
  in_topk_.assign(n_, 0);
  degenerate_ = (k_ == n_);
  if (degenerate_) {
    std::fill(in_topk_.begin(), in_topk_.end(), char{1});
    rebuild_id_lists();
    established_ = true;
    return;
  }
  begin_reset(ctx);
}

void SlackCoordinator::on_step_begin(CoordCtx& ctx, TimeStep) {
  if (degenerate_) return;
  const auto& signals = ctx.signals();
  bool top = false;
  bool bot = false;
  if (!signals.empty()) {
    ++mstats_.violation_steps;
    mstats_.violations += signals.size();
    for (const Signal& s : signals) {
      if (s.code == 1) {
        ++top_violations_;
        top = true;
      } else {
        ++bot_violations_;
        bot = true;
      }
    }
  }
  if (phase_ != Phase::kIdle || collect_) return;
  if (!established_) {
    // The answer was never installed (the reset poll lost too many
    // replies, or a member crashed): no filter can convene repair, so
    // defensively re-run the reset poll.
    ++mstats_.full_rebuilds;
    begin_reset(ctx);
    return;
  }
  if (!top && !bot) return;
  // This step's violation mix fixes the handler's poll side; the
  // violators' fresh values arrive as kViolation mail before the first
  // timer firing of this tick.
  collect_ = true;
  has_top_ = top;
  has_bot_ = bot;
  viol_min_ = kPlusInf;
  viol_max_ = kMinusInf;
  ctx.arm_timer();
}

void SlackCoordinator::on_message(CoordCtx&, const Message& m) {
  switch (m.kind) {
    case MsgKind::kViolation: {
      if (m.b < 0) {
        viol_min_ = std::min(viol_min_, m.a);
      } else {
        viol_max_ = std::max(viol_max_, m.a);
      }
      break;
    }
    case MsgKind::kValueReport: {
      if (phase_ == Phase::kPollSide) {
        poll_best_ = side_ == SlackPollSide::kRest
                         ? std::max(poll_best_, m.a)
                         : std::min(poll_best_, m.a);
      } else if (phase_ == Phase::kPollAll) {
        reset_reports_.emplace_back(m.a, m.from);
      }
      break;
    }
    default:
      break;
  }
}

void SlackCoordinator::on_timer(CoordCtx& ctx) {
  if (collect_) {
    // All of this step's violation reports are in (instant: same tick;
    // delayed: the poll window below absorbs the lag). Resolve by polling
    // the side whose extremum the violations did not deliver.
    collect_ = false;
    ++mstats_.handler_calls;
    start_poll(ctx, has_bot_ ? SlackPollSide::kTop : SlackPollSide::kRest);
    return;
  }
  if (phase_ == Phase::kIdle) return;
  if (wait_ > 0) {
    --wait_;
    ctx.arm_timer();
    return;
  }
  if (phase_ == Phase::kPollSide) {
    conclude_side_poll(ctx);
  } else {
    conclude_reset_poll(ctx);
  }
}

void SlackCoordinator::start_poll(CoordCtx& ctx, SlackPollSide side) {
  side_ = side;
  Message shout;
  shout.kind = MsgKind::kProtocolStart;
  shout.a = static_cast<std::int64_t>(side);
  ctx.broadcast(shout);
  switch (side) {
    case SlackPollSide::kRest:
      mstats_.polls += live_side_size(ctx, rest_list_);
      poll_best_ = kMinusInf;
      phase_ = Phase::kPollSide;
      break;
    case SlackPollSide::kTop:
      mstats_.polls += live_side_size(ctx, topk_list_);
      poll_best_ = kPlusInf;
      phase_ = Phase::kPollSide;
      break;
    case SlackPollSide::kAll:
      mstats_.polls += ctx.live_count();
      reset_reports_.clear();
      phase_ = Phase::kPollAll;
      break;
  }
  // Shout + replies: one network round trip, zero extra ticks on instant.
  wait_ = 2 * ctx.flush_ticks();
  ctx.arm_timer();
}

void SlackCoordinator::conclude_side_poll(CoordCtx& ctx) {
  phase_ = Phase::kIdle;
  std::optional<Value> min_v;
  std::optional<Value> max_v;
  if (has_top_) min_v = viol_min_;
  if (has_bot_) max_v = viol_max_;
  // The full-side poll result replaces the violators-only extremum on the
  // polled side (a side poll covers its violators too).
  if (side_ == SlackPollSide::kRest) {
    max_v = poll_best_;
  } else {
    min_v = poll_best_;
  }
  tplus_ = std::min(tplus_, *min_v);
  tminus_ = std::max(tminus_, *max_v);
  if (tplus_ < tminus_) {
    begin_reset(ctx);
  } else {
    ++mstats_.midpoint_updates;
    apply_boundary(ctx, choose_boundary());
  }
}

void SlackCoordinator::begin_reset(CoordCtx& ctx) {
  ++mstats_.filter_resets;
  established_ = false;
  start_poll(ctx, SlackPollSide::kAll);
}

void SlackCoordinator::conclude_reset_poll(CoordCtx& ctx) {
  phase_ = Phase::kIdle;
  auto& order = reset_reports_;
  if (order.size() <= k_) {
    // Message loss or churn ate the quorum: abandon — the defensive
    // rebuild in on_step_begin retries until an answer installs.
    return;
  }
  std::sort(order.begin(), order.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });
  std::fill(in_topk_.begin(), in_topk_.end(), char{0});
  for (std::size_t i = 0; i < k_; ++i) in_topk_[order[i].second] = 1;
  rebuild_id_lists();
  tplus_ = order[k_ - 1].first;
  tminus_ = order[k_].first;
  top_violations_ = 0;
  bot_violations_ = 0;
  established_ = true;
  broadcast_membership(ctx);
  apply_boundary(ctx, choose_boundary());
}

double SlackCoordinator::effective_alpha() const noexcept {
  if (!opts_.adaptive) return opts_.alpha;
  // Give more head-room to the side violating more often: frequent
  // outsider (rising) violations push the boundary up, and vice versa.
  const double bot = static_cast<double>(bot_violations_) + 1.0;
  const double top = static_cast<double>(top_violations_) + 1.0;
  return bot / (bot + top);
}

Value SlackCoordinator::choose_boundary() const {
  const double a = effective_alpha();
  const auto gap = static_cast<double>(tplus_ - tminus_);
  Value b = tminus_ + static_cast<Value>(std::floor(a * gap));
  b = std::clamp(b, tminus_, tplus_);
  return b + opts_.debug_boundary_nudge;
}

void SlackCoordinator::apply_boundary(CoordCtx& ctx, Value b) {
  bound_ = b;
  Message update;
  update.kind = MsgKind::kFilterUpdate;
  update.a = b;
  ctx.broadcast(update);
}

void SlackCoordinator::broadcast_membership(CoordCtx& ctx) {
  // Membership changes only at a reset; it is common knowledge in the
  // lock-step model, so distribute it over the uncharged control plane.
  const std::size_t words =
      (n_ + static_cast<std::size_t>(kIdsPerControl) - 1) /
      static_cast<std::size_t>(kIdsPerControl);
  for (std::size_t w = 0; w < words; ++w) {
    Control c;
    c.op = static_cast<std::int64_t>(SlackControlOp::kMembership);
    c.a = static_cast<std::int64_t>(w);
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    const std::size_t base = w * static_cast<std::size_t>(kIdsPerControl);
    for (std::size_t i = 0; i < static_cast<std::size_t>(kIdsPerControl); ++i) {
      const std::size_t id = base + i;
      if (id >= n_ || in_topk_[id] == 0) continue;
      if (i < static_cast<std::size_t>(kBitsPerWord)) {
        lo |= std::uint64_t{1} << i;
      } else {
        hi |= std::uint64_t{1}
              << (i - static_cast<std::size_t>(kBitsPerWord));
      }
    }
    c.b = static_cast<std::int64_t>(lo);
    c.c = static_cast<std::int64_t>(hi);
    ctx.control_broadcast(c);
  }
}

void SlackCoordinator::rebuild_id_lists() {
  topk_ids_.clear();
  topk_list_.clear();
  rest_list_.clear();
  for (NodeId id = 0; id < in_topk_.size(); ++id) {
    if (in_topk_[id]) {
      topk_ids_.push_back(id);
      topk_list_.push_back(id);
    } else {
      rest_list_.push_back(id);
    }
  }
}

std::size_t SlackCoordinator::live_side_size(
    CoordCtx& ctx, const std::vector<NodeId>& side) const {
  std::size_t out = 0;
  for (const NodeId id : side) out += ctx.node_alive(id) ? 1 : 0;
  return out;
}

// ---------------------------------------------------------------------------
// Fault hooks
// ---------------------------------------------------------------------------

void SlackCoordinator::on_node_down(CoordCtx& ctx, NodeId id) {
  if (degenerate_) return;
  const bool structural = in_topk_[id] != 0;
  if (structural) {
    in_topk_[id] = 0;
    rebuild_id_lists();
    // A member took the k-th position with it: abandon any in-flight
    // repair and re-find the answer over the remaining live nodes.
    phase_ = Phase::kIdle;
    collect_ = false;
    begin_reset(ctx);
  }
}

void SlackCoordinator::on_node_up(CoordCtx& ctx, NodeId id) {
  if (degenerate_) return;
  // Re-admit as an outsider anchored on the current boundary. The slack
  // monitor never needs the returning value up front: the re-anchor's
  // contains check primes the node's own violation report, which convenes
  // repair exactly like any signalled violation.
  ++mstats_.resyncs;
  Message assign;
  assign.kind = MsgKind::kFilterAssign;
  assign.a = in_topk_[id];
  assign.b = bound_;
  ctx.unicast(id, assign);
}

void SlackCoordinator::on_set_k(CoordCtx& ctx, std::size_t k) {
  if (k == k_) return;
  k_ = k;
  phase_ = Phase::kIdle;
  collect_ = false;
  if (k_ == n_) {
    // Degenerate growth: everyone is the answer forever; unbounded member
    // filters stop all future violations.
    degenerate_ = true;
    std::fill(in_topk_.begin(), in_topk_.end(), char{1});
    rebuild_id_lists();
    established_ = true;
    broadcast_membership(ctx);
    apply_boundary(ctx, kMinusInf);
    return;
  }
  degenerate_ = false;
  begin_reset(ctx);
}

}  // namespace topkmon
