// Native role-separated implementation of the naive baseline of §2.1:
// every node forwards its observations to the coordinator, which computes
// the top-k from its value replica. Identical to core/naive_monitor.hpp
// under the instant NetworkSpec (asserted by the role-equivalence tests);
// under delay/drop policies the replica goes stale and the validation
// layer records the resulting error steps — the natural "how robust is
// brute force?" baseline for the latency/loss experiment suites.
#pragma once

#include <optional>
#include <vector>

#include "core/ground_truth_tracker.hpp"
#include "core/roles.hpp"

namespace topkmon {

class NaiveNode final : public NodeAlgo {
 public:
  explicit NaiveNode(bool send_on_change_only)
      : send_on_change_only_(send_on_change_only) {}

  void on_init(NodeCtx& ctx, Value v0) override {
    // Change-only reporting makes on_observe a no-op on an unchanged
    // value (last_sent_ always equals the last observed value), so the
    // node can leave the sparse driver's needs-observe set; the plain
    // naive baseline sends every step and must stay in it.
    if (send_on_change_only_) ctx.set_needs_observe(false);
    report(ctx, v0);
  }
  void on_observe(NodeCtx& ctx, Value v, TimeStep) override { report(ctx, v); }

 private:
  void report(NodeCtx& ctx, Value v) {
    if (send_on_change_only_ && last_sent_ == v) return;
    Message m;
    m.kind = MsgKind::kValueReport;
    m.a = v;
    ctx.send(m);
    last_sent_ = v;
  }

  bool send_on_change_only_;
  std::optional<Value> last_sent_;
};

class NaiveCoordinator final : public CoordinatorAlgo {
 public:
  NaiveCoordinator(std::size_t k, bool send_on_change_only);

  std::string_view name() const override {
    return send_on_change_only_ ? "naive_on_change" : "naive";
  }
  void on_init(CoordCtx& ctx) override;
  void on_message(CoordCtx& ctx, const Message& m) override;
  void on_step_end(CoordCtx& ctx, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

 private:
  std::size_t k_;
  bool send_on_change_only_;
  std::vector<Value> known_values_;  ///< coordinator's replica
  std::vector<NodeId> topk_ids_;
  /// Incremental top-k over the replica: O(received reports) per step
  /// instead of a fresh partial sort (identical answers by construction).
  std::optional<GroundTruthTracker> truth_;
};

}  // namespace topkmon
