// Native role-separated implementation of the naive baseline of §2.1:
// every node forwards its observations to the coordinator, which computes
// the top-k from its value replica. Identical to core/naive_monitor.hpp
// under the instant NetworkSpec (asserted by the role-equivalence tests);
// under delay/drop policies the replica goes stale and the validation
// layer records the resulting error steps — the natural "how robust is
// brute force?" baseline for the latency/loss experiment suites.
#pragma once

#include <optional>
#include <vector>

#include "core/ground_truth_tracker.hpp"
#include "core/roles.hpp"

namespace topkmon {

class NaiveNode final : public NodeAlgo {
 public:
  explicit NaiveNode(bool send_on_change_only)
      : send_on_change_only_(send_on_change_only) {}

  void on_init(NodeCtx& ctx, Value v0) override {
    // Change-only reporting makes on_observe a no-op on an unchanged
    // value (last_sent_ always equals the last observed value), so the
    // node can leave the sparse driver's needs-observe set; the plain
    // naive baseline sends every step and must stay in it.
    if (send_on_change_only_) ctx.set_needs_observe(false);
    report(ctx, v0);
  }
  void on_observe(NodeCtx& ctx, Value v, TimeStep) override {
    report(ctx, v);
    // A recovery puts the node back in the needs-observe set until its
    // first report lands in last_sent_; after that an unchanged value is
    // a no-op again (idempotent bit write, free on the steady path).
    if (send_on_change_only_) ctx.set_needs_observe(false);
  }

  void on_message(NodeCtx& ctx, const Message& m) override {
    // Crash-recovery re-sync: answer the coordinator's probe with the
    // current value, unconditionally — the coordinator's replica holds
    // -inf for this node, so "unchanged since last_sent_" is irrelevant.
    if (m.kind != MsgKind::kProbe) return;
    Message reply;
    reply.kind = MsgKind::kValueReport;
    reply.a = ctx.value();
    ctx.send(reply);
    last_sent_ = ctx.value();
  }

  void on_recover(NodeCtx& ctx) override {
    // The coordinator zeroed this node out of its replica; whatever was
    // last sent no longer matches it. Report on the next observation
    // even if the value is unchanged (and re-enter the observe set so
    // that observation actually happens).
    last_sent_.reset();
    ctx.set_needs_observe(true);
  }

 private:
  void report(NodeCtx& ctx, Value v) {
    if (send_on_change_only_ && last_sent_ == v) return;
    Message m;
    m.kind = MsgKind::kValueReport;
    m.a = v;
    ctx.send(m);
    last_sent_ = v;
  }

  bool send_on_change_only_;
  std::optional<Value> last_sent_;
};

class NaiveCoordinator final : public CoordinatorAlgo {
 public:
  NaiveCoordinator(std::size_t k, bool send_on_change_only);
  /// Sharded-deployment ctor (core/shard_coordinator.hpp): lifts the
  /// k >= 1 requirement so a shard's quota can be renegotiated to 0.
  /// `suspect` enables the adversarial-degradation suspicion machinery
  /// (see sim/fault_plan.hpp lag/stale/mute):
  ///  * plain naive — every live node reports every step, so silence IS
  ///    the anomaly: a node unheard for kNaiveSilenceSteps observation
  ///    steps is suspected (MonitorStats::suspicions) and probed with
  ///    capped-backoff deadlines; exhausted deadlines quarantine it
  ///    (MonitorStats::quarantines) — its replica entry drops to -inf so
  ///    the distrusted value leaves the answer;
  ///  * naive_chg — silence is legitimate, so the coordinator audits:
  ///    one round-robin probe per step (MonitorStats::polls) arms the
  ///    same deadline machinery for the audited node.
  /// Quarantined nodes get step-driven capped-backoff release probes;
  /// any report from the node releases the quarantine (it demonstrably
  /// answers again — a laggard oscillates, a healed node stays). Stale
  /// responders are undetectable for the naive family: nodes raise no
  /// violation signals, so there is no truth to contradict a frozen
  /// report (stale_detections stays 0 by design; see the filter
  /// monitor's contradiction detector). Off by default: no trace
  /// changes until enabled.
  NaiveCoordinator(std::size_t k, bool send_on_change_only, bool sharded,
                   bool suspect = false);

  std::string_view name() const override {
    return send_on_change_only_ ? "naive_on_change" : "naive";
  }
  void on_init(CoordCtx& ctx) override;
  void on_step_begin(CoordCtx& ctx, TimeStep t) override;
  void on_message(CoordCtx& ctx, const Message& m) override;
  void on_timer(CoordCtx& ctx) override;
  void on_step_end(CoordCtx& ctx, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  // -- fault hooks (sim/fault_plan.hpp) -------------------------------------
  // Crash: the replica entry drops to -inf, so the node falls out of the
  // answer at once. Recovery: the coordinator probes for the current
  // value (the change-only variant would otherwise stay silent until the
  // value happens to move); any report from the node completes the
  // re-sync, and lost probes are resent with capped exponential backoff.
  void on_node_down(CoordCtx& ctx, NodeId id) override;
  void on_node_up(CoordCtx& ctx, NodeId id) override;
  /// Dynamic k: a coordinator-local recompute over the replica (rekey).
  void on_set_k(CoordCtx& ctx, std::size_t k) override { (void)ctx; rekey(k); }

  // -- sharded-deployment hooks ---------------------------------------------
  // The replica already holds every node's last report, so a quota change
  // is a coordinator-local recompute: no node traffic, unlike the filter
  // monitor's rebuild. Valid after on_init.

  /// Changes the quota to `k` (0 <= k <= n) and recomputes the answer.
  void rekey(std::size_t k);
  /// U_s: the weakest member's value per the replica; +inf when k == 0.
  Value weakest_member_value();
  /// L_s: the strongest outsider's value per the replica; -inf when
  /// k == n.
  Value strongest_outsider_value();

 private:
  void refresh_answer();
  // -- suspicion machinery (active only with suspect_) ----------------------
  void send_probe(CoordCtx& ctx, NodeId id);
  void suspect_node(CoordCtx& ctx, NodeId id);
  void quarantine_node(NodeId id);
  /// Any report from `id`: refresh the heard stamp, clear pending
  /// suspicion, release an active quarantine.
  void note_report(NodeId id);

  std::size_t k_;
  bool send_on_change_only_;
  bool sharded_ = false;
  bool suspect_ = false;

  // Pending crash-recovery re-syncs, in recovery order (see filter_roles
  // for the same pattern with a handshake reply).
  struct Resync {
    NodeId id;
    std::uint64_t countdown;
    std::uint32_t attempt;
  };
  std::vector<Resync> resync_;

  // Suspicion / quarantine state (allocated only with suspect_).
  struct Suspect {
    NodeId id;
    std::uint64_t countdown;  ///< ticks until the probe is declared lost
    std::uint32_t attempt;    ///< probe deadlines missed so far
    bool quarantined;
    std::uint32_t release_wait;     ///< steps until the next release probe
    std::uint32_t release_attempt;  ///< failed release probes (caps backoff)
    /// naive_chg audit probe: not yet a suspicion — the first missed
    /// deadline converts it into one (MonitorStats::suspicions).
    bool audit;
  };
  std::vector<Suspect> suspects_;
  std::vector<char> quarantined_;
  std::vector<TimeStep> last_heard_;  ///< step of the last report per node
  NodeId audit_cursor_ = 0;           ///< naive_chg round-robin audit probe
  TimeStep cur_step_ = 0;

  std::vector<Value> known_values_;  ///< coordinator's replica
  std::vector<NodeId> topk_ids_;
  /// Incremental top-k over the replica: O(received reports) per step
  /// instead of a fresh partial sort (identical answers by construction).
  /// Tracks max(k, 1) ids — at quota 0 its single "member" is the shard
  /// maximum, which the sharded hooks report as the strongest outsider.
  std::optional<GroundTruthTracker> truth_;
};

}  // namespace topkmon
