// Native role-separated implementation of the naive baseline of §2.1:
// every node forwards its observations to the coordinator, which computes
// the top-k from its value replica. Identical to core/naive_monitor.hpp
// under the instant NetworkSpec (asserted by the role-equivalence tests);
// under delay/drop policies the replica goes stale and the validation
// layer records the resulting error steps — the natural "how robust is
// brute force?" baseline for the latency/loss experiment suites.
#pragma once

#include <optional>
#include <vector>

#include "core/ground_truth_tracker.hpp"
#include "core/roles.hpp"

namespace topkmon {

class NaiveNode final : public NodeAlgo {
 public:
  explicit NaiveNode(bool send_on_change_only)
      : send_on_change_only_(send_on_change_only) {}

  void on_init(NodeCtx& ctx, Value v0) override {
    // Change-only reporting makes on_observe a no-op on an unchanged
    // value (last_sent_ always equals the last observed value), so the
    // node can leave the sparse driver's needs-observe set; the plain
    // naive baseline sends every step and must stay in it.
    if (send_on_change_only_) ctx.set_needs_observe(false);
    report(ctx, v0);
  }
  void on_observe(NodeCtx& ctx, Value v, TimeStep) override { report(ctx, v); }

 private:
  void report(NodeCtx& ctx, Value v) {
    if (send_on_change_only_ && last_sent_ == v) return;
    Message m;
    m.kind = MsgKind::kValueReport;
    m.a = v;
    ctx.send(m);
    last_sent_ = v;
  }

  bool send_on_change_only_;
  std::optional<Value> last_sent_;
};

class NaiveCoordinator final : public CoordinatorAlgo {
 public:
  NaiveCoordinator(std::size_t k, bool send_on_change_only);
  /// Sharded-deployment ctor (core/shard_coordinator.hpp): lifts the
  /// k >= 1 requirement so a shard's quota can be renegotiated to 0.
  NaiveCoordinator(std::size_t k, bool send_on_change_only, bool sharded);

  std::string_view name() const override {
    return send_on_change_only_ ? "naive_on_change" : "naive";
  }
  void on_init(CoordCtx& ctx) override;
  void on_message(CoordCtx& ctx, const Message& m) override;
  void on_step_end(CoordCtx& ctx, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  // -- sharded-deployment hooks ---------------------------------------------
  // The replica already holds every node's last report, so a quota change
  // is a coordinator-local recompute: no node traffic, unlike the filter
  // monitor's rebuild. Valid after on_init.

  /// Changes the quota to `k` (0 <= k <= n) and recomputes the answer.
  void rekey(std::size_t k);
  /// U_s: the weakest member's value per the replica; +inf when k == 0.
  Value weakest_member_value();
  /// L_s: the strongest outsider's value per the replica; -inf when
  /// k == n.
  Value strongest_outsider_value();

 private:
  void refresh_answer();

  std::size_t k_;
  bool send_on_change_only_;
  bool sharded_ = false;
  std::vector<Value> known_values_;  ///< coordinator's replica
  std::vector<NodeId> topk_ids_;
  /// Incremental top-k over the replica: O(received reports) per step
  /// instead of a fresh partial sort (identical answers by construction).
  /// Tracks max(k, 1) ids — at quota 0 its single "member" is the shard
  /// maximum, which the sharded hooks report as the strongest outsider.
  std::optional<GroundTruthTracker> truth_;
};

}  // namespace topkmon
