#include "core/naive_monitor.hpp"

#include <stdexcept>

namespace topkmon {

NaiveMonitor::NaiveMonitor(std::size_t k) : NaiveMonitor(k, Options{}) {}

NaiveMonitor::NaiveMonitor(std::size_t k, Options opts) : k_(k), opts_(opts) {
  if (k == 0) throw std::invalid_argument("NaiveMonitor: k must be >= 1");
}

void NaiveMonitor::initialize(Cluster& cluster) {
  const std::size_t n = cluster.size();
  if (k_ > n) throw std::invalid_argument("NaiveMonitor: k > n");
  known_values_.assign(n, 0);
  last_sent_.assign(n, std::nullopt);
  truth_.emplace(n, k_);
  step(cluster, 0);
}

void NaiveMonitor::step(Cluster& cluster, TimeStep) {
  Network& net = cluster.net();
  for (NodeId id = 0; id < cluster.size(); ++id) {
    const Value v = cluster.value(id);
    if (opts_.send_on_change_only && last_sent_[id] == v) continue;
    Message report;
    report.kind = MsgKind::kValueReport;
    report.a = v;
    net.node_send(id, report);
    last_sent_[id] = v;
  }
  net.drain_coordinator(mail_);
  for (const Message& m : mail_) {
    if (m.kind != MsgKind::kValueReport) continue;
    known_values_[m.from] = m.a;
    truth_->set_value(m.from, m.a);
  }
  topk_ids_ = truth_->topk_set();
}

}  // namespace topkmon
