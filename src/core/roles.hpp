// Role-separated monitor API: the paper's model is n node algorithms plus
// one coordinator algorithm on a star network, and this header expresses
// exactly that split. A monitoring algorithm is deployed as one
// CoordinatorAlgo plus n NodeAlgo instances; all *charged* communication
// between the two sides flows through the cluster's Network (and is
// therefore subject to the NetworkSpec delivery policy), while the
// lock-step idealizations of the paper's model — nodes and coordinator
// share a synchronized observation clock, and the coordinator convenes
// protocol executions the instant a violation occurs — are carried by an
// explicit *uncharged* control plane (signals upstream, Control
// broadcasts downstream) so they are visible, auditable, and excluded
// from the message accounting by construction.
//
// The SimDriver (core/driver.hpp) owns the event loop: per observation
// step it delivers observations (on_observe), then runs delivery ticks —
// due messages (on_message), then armed timers (on_timer) — until
// quiescence or until the network's tick budget expires. Under the
// instant NetworkSpec this reproduces the lock-step round structure of
// the original MonitorBase::step() byte for byte (asserted by the
// role-equivalence test suite).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/monitor.hpp"
#include "sim/cluster.hpp"
#include "util/types.hpp"

namespace topkmon {

/// Uncharged upstream control signal (node -> coordinator): the free
/// "a violation happened here" knowledge the paper's synchronized model
/// grants the coordinator. `code` semantics belong to the algorithm.
struct Signal {
  NodeId from = 0;
  std::int64_t code = 0;
};

/// Uncharged downstream control broadcast (coordinator -> all nodes):
/// convenes protocol executions ("all violators of side s: epoch e starts
/// now"). Delivered instantly to every node, independent of the network
/// policy, mirroring the implicit common knowledge of the lock-step model.
struct Control {
  std::int64_t op = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

class SimDriver;

/// Capabilities available to one node algorithm. Only the node's own
/// machine state (value, RNG) and its single uplink are reachable — the
/// API makes non-local reads impossible by construction.
///
/// Thread-safety contract (the parallel tick loop): node callbacks may
/// run on SimDriver worker threads, one shard of node ids per thread.
/// Every NodeCtx method is safe there because each one either touches
/// only this node's own state (value, rng — one owner per id) or routes
/// through the driver's parallel-phase-aware plumbing (send/signal are
/// staged per shard and replayed in serial order at the tick barrier;
/// arm_timer/set_needs_observe write bits in words owned by the calling
/// shard). A NodeAlgo that keeps all its state per-instance — the native
/// implementations do — therefore needs no synchronization of its own.
class NodeCtx {
 public:
  /// Transient view (driver, cluster, id): constructed at the call
  /// site per callback; per-node scalars live in the shared NodeRuntime.
  NodeCtx(SimDriver& driver, Cluster& cluster, NodeId id)
      : driver_(driver), cluster_(cluster), id_(id) {}

  /// This node's id (0..n-1).
  NodeId id() const noexcept { return id_; }
  /// Total number of nodes in the deployment.
  std::size_t n() const noexcept { return cluster_.size(); }

  /// The node's current stream observation.
  Value value() const { return cluster_.value(id_); }

  /// The node's private randomness source.
  Rng& rng() { return cluster_.node_rng(id_); }

  /// Sends `m` to the coordinator (charged, subject to the network
  /// policy). Routed through the driver: on a worker shard the send is
  /// staged and replayed at the tick barrier in serial order (defined in
  /// driver.cpp with the other context plumbing).
  void send(Message m);

  /// Raises an uncharged control signal the coordinator sees this step.
  void signal(std::int64_t code);

  /// Requests an on_timer callback: within a node callback phase, for the
  /// current tick's timer phase; within on_timer itself, for the next tick.
  void arm_timer();

  /// Declares whether this node must receive on_observe even when its
  /// value did not change since the previous step. Every node starts in
  /// the needs-observe set (the safe default: the driver then observes it
  /// every step, exactly like the dense loop). An algorithm whose
  /// on_observe is a no-op on an unchanged value — no message, no signal,
  /// no coin flip, no state change — may clear the flag and re-set it
  /// whenever that stops holding (e.g. a filter node while its value
  /// violates the filter must keep re-signalling each step). Getting this
  /// wrong silently diverges from the dense loop; the sparse/dense
  /// equivalence tests pin the contract for the in-tree algorithms.
  void set_needs_observe(bool needs);

 private:
  SimDriver& driver_;
  Cluster& cluster_;
  NodeId id_;
};

/// Capabilities available to the coordinator algorithm: its downlinks
/// (unicast / broadcast), its RNG, the control plane, and the protocol
/// epoch counter. Node state is not reachable.
///
/// Thread-safety: coordinator callbacks always run on the driver's owner
/// thread (the coordinator phase is serial even under workers > 1), so
/// every method here may touch shared network/driver state directly.
class CoordCtx {
 public:
  /// Transient view over the driver and cluster (one per deployment).
  CoordCtx(SimDriver& driver, Cluster& cluster)
      : driver_(driver), cluster_(cluster) {}

  /// Total number of nodes in the deployment.
  std::size_t n() const noexcept { return cluster_.size(); }

  /// The coordinator's private randomness source.
  Rng& rng() { return cluster_.coordinator_rng(); }

  /// Sends `m` to node `to` (charged, subject to the network policy).
  void unicast(NodeId to, Message m) { cluster_.net().coord_unicast(to, m); }

  /// Broadcasts `m` to all nodes (charged once, per the paper's model).
  void broadcast(Message m) { cluster_.net().coord_broadcast(m); }

  /// Issues an uncharged control broadcast, delivered to every node at the
  /// start of the next node phase.
  void control_broadcast(const Control& c);

  /// The control signals raised since the current step began, in node id
  /// order within each observation phase.
  const std::vector<Signal>& signals() const;

  /// Fresh protocol epoch (tags round beacons; see Cluster).
  std::uint32_t next_protocol_epoch() noexcept {
    return cluster_.next_protocol_epoch();
  }

  /// Upper bound on the scheduling delay of any in-flight message under
  /// the deployed network policy (0 under instant delivery). Protocol
  /// sessions wait this many extra ticks after their final round so
  /// delayed reports still count.
  std::uint64_t flush_ticks() const noexcept {
    const NetworkSpec& spec = cluster_.net().spec();
    std::uint64_t out = spec.max_delay();
    if (spec.batch_window > 1) out += spec.batch_window - 1;
    return out;
  }

  /// Requests an on_timer callback: within on_message, for the current
  /// tick's coordinator timer phase; within on_timer, for the next tick.
  void arm_timer();

  // -- liveness (fault injection; see sim/fault_plan.hpp) -------------------
  // The simulated coordinator has a perfect failure detector: the driver
  // raises on_node_down/on_node_up at the tick a fault fires, and these
  // accessors expose the transport's live view. Without a fault plan
  // every node is alive and live_count() == n().

  /// True iff node `id` is currently up (receives mail, runs timers).
  bool node_alive(NodeId id) const noexcept {
    return cluster_.net().node_alive(id);
  }

  /// Number of currently-live nodes.
  std::size_t live_count() const noexcept {
    return cluster_.net().live_nodes();
  }

 private:
  SimDriver& driver_;
  Cluster& cluster_;
};

/// The node-side half of a monitoring algorithm (one instance per node).
class NodeAlgo {
 public:
  virtual ~NodeAlgo() = default;

  /// First observation (time 0), before the coordinator initializes.
  virtual void on_init(NodeCtx& ctx, Value v0) { (void)ctx, (void)v0; }

  /// A new observation arrived (time t >= 1).
  virtual void on_observe(NodeCtx& ctx, Value v, TimeStep t) {
    (void)ctx, (void)v, (void)t;
  }

  /// A charged message (unicast or broadcast) was delivered.
  virtual void on_message(NodeCtx& ctx, const Message& m) {
    (void)ctx, (void)m;
  }

  /// An uncharged control broadcast was delivered.
  virtual void on_control(NodeCtx& ctx, const Control& c) {
    (void)ctx, (void)c;
  }

  /// A previously armed timer fired (one protocol round per tick).
  virtual void on_timer(NodeCtx& ctx) { (void)ctx; }

  /// The node came back up after a crash (or joined for the first time,
  /// after on_init). Machine state (value, RNG, filter fields held by the
  /// algorithm instance) survives the outage; implementations should drop
  /// *session-scoped* state here — a protocol execution convened during
  /// the outage proceeded without this node, so replaying its stale
  /// session role would corrupt the run. The coordinator is told via
  /// on_node_up in the same tick and starts the monitor's re-sync
  /// handshake.
  virtual void on_recover(NodeCtx& ctx) { (void)ctx; }
};

/// The coordinator-side half of a monitoring algorithm.
class CoordinatorAlgo {
 public:
  virtual ~CoordinatorAlgo() = default;

  /// Short identifier used in tables ("topk_filter", "naive", ...).
  virtual std::string_view name() const = 0;

  /// Called once at time 0, after every node ran on_init.
  virtual void on_init(CoordCtx& ctx) { (void)ctx; }

  /// Called after the nodes observed the values of step t (t >= 1) and
  /// raised their signals, before any delivery tick of the step.
  virtual void on_step_begin(CoordCtx& ctx, TimeStep t) { (void)ctx, (void)t; }

  /// A charged upstream message was delivered.
  virtual void on_message(CoordCtx& ctx, const Message& m) {
    (void)ctx, (void)m;
  }

  /// A previously armed timer fired (one protocol round per tick).
  virtual void on_timer(CoordCtx& ctx) { (void)ctx; }

  /// Called when the step's delivery ticks are exhausted (quiescence or
  /// tick budget). The answer returned by topk() must be current here.
  virtual void on_step_end(CoordCtx& ctx, TimeStep t) { (void)ctx, (void)t; }

  // -- fault hooks (default no-ops; see sim/fault_plan.hpp) -----------------
  // Fired by the driver at the tick a fault event applies, after the
  // transport state changed (ctx.node_alive already reflects the event).
  // The model is a perfect failure detector: detection itself is
  // uncharged, like the signal plane; everything the coordinator *does*
  // about it (probes, re-anchoring, renegotiation) is charged normally.

  /// Node `id` crashed or left. A correct monitor must stop counting it:
  /// drop it from the answer and from any quorum the in-flight protocol
  /// session expects a response from.
  virtual void on_node_down(CoordCtx& ctx, NodeId id) { (void)ctx, (void)id; }

  /// Node `id` recovered (or joined). Its node-side algorithm state is
  /// whatever survived the outage; the coordinator owns re-integration
  /// (the re-sync handshake).
  virtual void on_node_up(CoordCtx& ctx, NodeId id) { (void)ctx, (void)id; }

  /// Dynamic reconfiguration: monitor a new top-k size from now on,
  /// renegotiating warm state rather than cold-restarting. `k` is
  /// validated against the live node count by the FaultPlan.
  virtual void on_set_k(CoordCtx& ctx, std::size_t k) { (void)ctx, (void)k; }

  /// The coordinator's current answer: ids of the top-k nodes, sorted by
  /// id (canonical set representation).
  virtual const std::vector<NodeId>& topk() const = 0;

  /// Algorithm-level event counters (virtual so bridges can forward the
  /// wrapped implementation's counters).
  virtual const MonitorStats& monitor_stats() const noexcept { return mstats_; }

 protected:
  MonitorStats mstats_;
};

}  // namespace topkmon
