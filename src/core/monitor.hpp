// Common interface of all Top-k-Position monitoring algorithms.
//
// A monitor owns both the coordinator-side and the node-side algorithm
// state (the simulation runs both roles in one process); all communication
// between the two sides flows through the cluster's Network so that the
// paper's message accounting is exact. The runner drives the lifecycle:
//   observe values -> initialize(cluster)          (time 0)
//   observe values -> step(cluster, t)             (every t >= 1)
// and checks `topk()` against the ground truth after every call.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/cluster.hpp"
#include "util/types.hpp"

namespace topkmon {

/// Algorithm-level event counters (communication itself is counted by
/// CommStats; these explain *why* messages happened).
struct MonitorStats {
  std::uint64_t violation_steps = 0;    ///< steps with >= 1 filter violation
  std::uint64_t violations = 0;         ///< individual node violations
  std::uint64_t handler_calls = 0;      ///< FILTERVIOLATIONHANDLER invocations
  std::uint64_t midpoint_updates = 0;   ///< broadcast filter midpoint changes
  std::uint64_t filter_resets = 0;      ///< FILTERRESET invocations
  std::uint64_t protocol_runs = 0;      ///< max/min protocol executions
  std::uint64_t polls = 0;              ///< coordinator-initiated probes
  std::uint64_t full_rebuilds = 0;      ///< defensive full re-initializations
  std::uint64_t resyncs = 0;            ///< crash-recovery re-sync handshakes
  std::uint64_t resync_retries = 0;     ///< re-sync probes resent on timeout
  std::uint64_t reset_backoffs = 0;     ///< defensive rebuilds deferred by
                                        ///< the reset backoff (opt-in)
  std::uint64_t suspicions = 0;         ///< nodes put under suspicion by the
                                        ///< failure-inference machinery
  std::uint64_t quarantines = 0;        ///< suspicions escalated to quarantine
  std::uint64_t stale_detections = 0;   ///< quarantines caused by a report
                                        ///< contradicting the node's signal
  std::uint64_t assign_replays = 0;     ///< warm-standby recoveries served by
                                        ///< an assignment-log replay instead
                                        ///< of the probe handshake
};

/// Abstract Top-k-Position monitor.
class MonitorBase {
 public:
  virtual ~MonitorBase() = default;

  /// Short identifier used in tables ("topk_filter", "naive", ...).
  virtual std::string_view name() const = 0;

  /// Called once, after the nodes observed their first values (time 0).
  /// Establishes the initial coordinator knowledge and filters.
  virtual void initialize(Cluster& cluster) = 0;

  /// Called after the nodes observed the values of time step t (t >= 1).
  /// Runs the between-observations communication protocol of the paper's
  /// model until quiescence.
  virtual void step(Cluster& cluster, TimeStep t) = 0;

  /// The coordinator's current answer: ids of the top-k nodes, sorted by
  /// id (canonical set representation).
  virtual const std::vector<NodeId>& topk() const = 0;

  const MonitorStats& monitor_stats() const noexcept { return mstats_; }

 protected:
  MonitorStats mstats_;
};

}  // namespace topkmon
