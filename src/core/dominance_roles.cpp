#include "core/dominance_roles.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

// ---------------------------------------------------------------------------
// DominanceNode
// ---------------------------------------------------------------------------

Value DominanceNode::to_w(const NodeCtx& ctx, Value v) const noexcept {
  // Order-preserving, tie-breaking toward smaller ids; injective per node.
  const auto n = static_cast<Value>(ctx.n());
  return v * n + (n - 1 - static_cast<Value>(ctx.id()));
}

void DominanceNode::on_init(NodeCtx& ctx, Value) {
  // No slot yet: nothing to check until the first assignment arrives.
  ctx.set_needs_observe(false);
}

void DominanceNode::on_observe(NodeCtx& ctx, Value v, TimeStep) {
  if (!has_filter_) {
    ctx.set_needs_observe(false);
    return;
  }
  const Value w = to_w(ctx, v);
  if (filter_.contains(w)) {
    ctx.set_needs_observe(false);
    return;
  }
  // Re-raised every violating step, so a placement lost to the network
  // restarts; the fresh w rides in the report.
  ctx.set_needs_observe(true);
  Message report;
  report.kind = MsgKind::kViolation;
  report.a = w;
  ctx.send(report);
  ctx.signal(0);
}

void DominanceNode::on_message(NodeCtx& ctx, const Message& m) {
  switch (m.kind) {
    case MsgKind::kProtocolStart: {
      // The init shout: report (id, w).
      Message reply;
      reply.kind = MsgKind::kValueReport;
      reply.a = to_w(ctx, ctx.value());
      ctx.send(reply);
      break;
    }
    case MsgKind::kProbe: {
      // Split probe or re-sync: report the fresh w (b = 1 marks a reply).
      Message reply;
      reply.kind = MsgKind::kValueReport;
      reply.a = to_w(ctx, ctx.value());
      reply.b = 1;
      ctx.send(reply);
      break;
    }
    case MsgKind::kFilterAssign: {
      has_filter_ = true;
      filter_ = Filter{m.a, m.b};
      ctx.set_needs_observe(!filter_.contains(to_w(ctx, ctx.value())));
      break;
    }
    default:
      break;
  }
}

void DominanceNode::on_recover(NodeCtx& ctx) {
  // The slot order moved on without this node; its surviving interval may
  // be stale. Stay in the observe set until the re-sync probe's placement
  // re-anchors it (the fresh kFilterAssign re-certifies via contains).
  ctx.set_needs_observe(true);
}

// ---------------------------------------------------------------------------
// DominanceCoordinator
// ---------------------------------------------------------------------------

DominanceCoordinator::DominanceCoordinator(std::size_t k) : k_(k) {
  if (k == 0) {
    throw std::invalid_argument("DominanceCoordinator: k must be >= 1");
  }
}

void DominanceCoordinator::on_init(CoordCtx& ctx) {
  n_ = ctx.n();
  if (k_ > n_) throw std::invalid_argument("DominanceCoordinator: k > n");
  // One shout-echo cycle: every node reports (id, w); the replies land
  // within the network's round trip and the timer below assigns the
  // initial midpoint slots by unicast.
  Message shout;
  shout.kind = MsgKind::kProtocolStart;
  ctx.broadcast(shout);
  init_reports_.clear();
  phase_ = Phase::kInitWait;
  wait_ = 2 * ctx.flush_ticks();
  ctx.arm_timer();
}

void DominanceCoordinator::on_step_begin(CoordCtx& ctx, TimeStep) {
  const auto& signals = ctx.signals();
  if (!signals.empty()) {
    ++mstats_.violation_steps;
    mstats_.violations += signals.size();
  }
  if (phase_ != Phase::kIdle || collect_) return;
  if (!signals.empty() || !viol_new_.empty()) {
    // The violators' fresh w reports are this tick's coordinator mail
    // (instant) or at most a flush away; drain them on the timer.
    collect_ = true;
    ctx.arm_timer();
  }
}

void DominanceCoordinator::on_message(CoordCtx& ctx, const Message& m) {
  switch (m.kind) {
    case MsgKind::kViolation: {
      viol_new_.emplace_back(m.a, m.from);
      break;
    }
    case MsgKind::kValueReport: {
      if (phase_ == Phase::kInitWait && m.b == 0) {
        init_reports_.emplace_back(m.a, m.from);
        break;
      }
      if (m.b != 1) break;
      if (phase_ == Phase::kProbeWait && m.from == probe_owner_) {
        probe_reply_ = m.a;
        break;
      }
      // A re-sync reply: place the recovered node like a violator (its
      // old slot, if any, was vacated when it went down).
      const auto it =
          std::find_if(resync_.begin(), resync_.end(),
                       [&](const Resync& r) { return r.id == m.from; });
      if (it != resync_.end()) {
        resync_.erase(it);
        viol_new_.emplace_back(m.a, m.from);
        if (phase_ == Phase::kIdle && !collect_) {
          collect_ = true;
          ctx.arm_timer();
        }
      }
      break;
    }
    default:
      break;
  }
}

void DominanceCoordinator::on_timer(CoordCtx& ctx) {
  tick_resyncs(ctx);
  switch (phase_) {
    case Phase::kInitWait: {
      if (wait_ > 0) {
        --wait_;
        ctx.arm_timer();
        return;
      }
      build_slots(ctx);
      return;
    }
    case Phase::kProbeWait: {
      if (probe_reply_.has_value()) {
        split_slot(ctx, *probe_reply_);
        phase_ = Phase::kPlace;
        drain_queue(ctx);
        return;
      }
      if (wait_ > 0) {
        --wait_;
        ctx.arm_timer();
        return;
      }
      // Probe or reply lost: split on the incumbent's last known w — the
      // incumbent's own next violation repairs any staleness.
      split_slot(ctx, slots_[probe_slot_].known_w);
      phase_ = Phase::kPlace;
      drain_queue(ctx);
      return;
    }
    case Phase::kPlace:
      return;  // re-entered via drain_queue only
    case Phase::kIdle: {
      if (!collect_) return;
      collect_ = false;
      if (viol_new_.empty()) return;
      // Vacate all violators' slots first so violators can land in each
      // other's former positions, then place in descending w order.
      queue_ = std::move(viol_new_);
      viol_new_.clear();
      queue_at_ = 0;
      for (const auto& [w, id] : queue_) vacate(id);
      std::sort(queue_.begin(), queue_.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      phase_ = Phase::kPlace;
      drain_queue(ctx);
      return;
    }
  }
}

void DominanceCoordinator::drain_queue(CoordCtx& ctx) {
  while (queue_at_ < queue_.size()) {
    const auto [w, id] = queue_[queue_at_];
    const auto at = find_slot(w);
    if (!at.has_value()) {
      ++queue_at_;  // tiling desynced by loss; the next violation retries
      continue;
    }
    Slot& slot = slots_[*at];
    if (!slot.owner.has_value()) {
      // Vacated gap: occupy it wholesale.
      slot.owner = id;
      slot.known_w = w;
      assign_filter(ctx, id, slot.lo, slot.hi);
      ++queue_at_;
      continue;
    }
    // Occupied: probe the incumbent for its fresh w, then split.
    probe_slot_ = *at;
    probe_owner_ = *slot.owner;
    probe_w_ = w;
    probe_violator_ = id;
    probe_reply_.reset();
    Message probe;
    probe.kind = MsgKind::kProbe;
    ctx.unicast(probe_owner_, probe);
    ++mstats_.polls;
    phase_ = Phase::kProbeWait;
    wait_ = 2 * ctx.flush_ticks();
    ctx.arm_timer();
    return;
  }
  queue_.clear();
  queue_at_ = 0;
  compact_slots();
  refresh_topk();
  phase_ = Phase::kIdle;
}

void DominanceCoordinator::split_slot(CoordCtx& ctx, Value other_w) {
  // w-space values are injective per node, and two distinct nodes cannot
  // share a w (the id term differs), so strict comparison is total.
  const Value w = probe_w_;
  const NodeId id = probe_violator_;
  const NodeId other = probe_owner_;
  const bool violator_above = w > other_w;
  const Value upper_w = violator_above ? w : other_w;
  const Value lower_w = violator_above ? other_w : w;
  const NodeId upper_id = violator_above ? id : other;
  const NodeId lower_id = violator_above ? other : id;
  const Value split = midpoint(lower_w, upper_w);  // lower_w <= split < upper_w

  const Slot original = slots_[probe_slot_];
  const Slot upper{upper_id, split, original.hi, upper_w};
  const Slot lower{lower_id, original.lo, split, lower_w};
  slots_[probe_slot_] = upper;
  slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(probe_slot_) + 1,
                lower);
  assign_filter(ctx, upper_id, upper.lo, upper.hi);
  assign_filter(ctx, lower_id, lower.lo, lower.hi);
  ++queue_at_;
}

void DominanceCoordinator::build_slots(CoordCtx& ctx) {
  auto& order = init_reports_;
  std::sort(order.begin(), order.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  slots_.clear();
  slots_.reserve(order.size());
  for (std::size_t j = 0; j < order.size(); ++j) {
    Slot s;
    s.owner = order[j].second;
    s.known_w = order[j].first;
    s.hi = (j == 0) ? kPlusInf : midpoint(order[j].first, order[j - 1].first);
    s.lo = (j + 1 == order.size())
               ? kMinusInf
               : midpoint(order[j + 1].first, order[j].first);
    slots_.push_back(s);
    assign_filter(ctx, *s.owner, s.lo, s.hi);
  }
  refresh_topk();
  phase_ = Phase::kIdle;
  // Replies lost to the network (never on instant): probe the missing
  // nodes through the re-sync path so everyone ends up ranked.
  if (order.size() < n_) {
    std::vector<char> seen(n_, 0);
    for (const auto& [w, id] : order) seen[id] = 1;
    for (NodeId id = 0; id < n_; ++id) {
      if (seen[id] == 0 && ctx.node_alive(id)) on_node_up(ctx, id);
    }
  }
  init_reports_.clear();
}

void DominanceCoordinator::assign_filter(CoordCtx& ctx, NodeId id, Value lo_w,
                                         Value hi_w) {
  Message assign;
  assign.kind = MsgKind::kFilterAssign;
  assign.a = lo_w;
  assign.b = hi_w;
  ctx.unicast(id, assign);
}

std::optional<std::size_t> DominanceCoordinator::find_slot(Value w) const {
  // Slots are descending and tile the axis; find the first (highest) slot
  // whose lower bound is <= w.
  std::size_t lo = 0;
  std::size_t hi = slots_.size();  // search in [lo, hi)
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (slots_[mid].lo <= w) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == slots_.size()) return std::nullopt;
  return lo;
}

void DominanceCoordinator::compact_slots() {
  // Merge runs of adjacent vacated slots (coordinator-local; no messages).
  std::vector<Slot> merged;
  merged.reserve(slots_.size());
  for (const auto& s : slots_) {
    if (!merged.empty() && !merged.back().owner.has_value() &&
        !s.owner.has_value()) {
      merged.back().lo = s.lo;  // extend the empty run downward
      continue;
    }
    merged.push_back(s);
  }
  slots_ = std::move(merged);
}

void DominanceCoordinator::refresh_topk() {
  topk_ids_.clear();
  for (const auto& s : slots_) {
    if (!s.owner.has_value()) continue;
    topk_ids_.push_back(*s.owner);
    if (topk_ids_.size() == k_) break;
  }
  std::sort(topk_ids_.begin(), topk_ids_.end());
}

std::vector<NodeId> DominanceCoordinator::full_order() const {
  std::vector<NodeId> order;
  for (const auto& s : slots_) {
    if (s.owner.has_value()) order.push_back(*s.owner);
  }
  return order;
}

void DominanceCoordinator::vacate(NodeId id) {
  for (auto& s : slots_) {
    if (s.owner == id) {
      s.owner.reset();
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Fault hooks
// ---------------------------------------------------------------------------

void DominanceCoordinator::on_node_down(CoordCtx&, NodeId id) {
  std::erase_if(resync_, [id](const Resync& r) { return r.id == id; });
  vacate(id);
  if (phase_ == Phase::kIdle) {
    compact_slots();
    refresh_topk();
  }
}

void DominanceCoordinator::on_node_up(CoordCtx& ctx, NodeId id) {
  for (const Resync& r : resync_) {
    if (r.id == id) return;
  }
  ++mstats_.resyncs;
  resync_.push_back(Resync{id, probe_timeout(ctx), 0});
  Message probe;
  probe.kind = MsgKind::kProbe;
  ctx.unicast(id, probe);
  ctx.arm_timer();
}

void DominanceCoordinator::on_set_k(CoordCtx&, std::size_t k) {
  k_ = k;
  refresh_topk();
}

void DominanceCoordinator::tick_resyncs(CoordCtx& ctx) {
  if (resync_.empty()) return;
  for (Resync& r : resync_) {
    if (r.countdown > 0) {
      --r.countdown;
      continue;
    }
    ++mstats_.resync_retries;
    r.countdown = probe_timeout(ctx) << std::min<std::uint32_t>(++r.attempt, 6);
    Message probe;
    probe.kind = MsgKind::kProbe;
    ctx.unicast(r.id, probe);
  }
  ctx.arm_timer();
}

}  // namespace topkmon
