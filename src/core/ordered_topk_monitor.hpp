// The §5 future-work variant: monitor not only the top-k *set* but also the
// *ordering* of the top-k nodes by value. The paper conjectures that
// combining the Lam et al. midpoint strategy (between consecutive top-k
// ranks) with its own boundary machinery yields an
// O(log Δ · log(n-k))-competitive algorithm; this class realizes that
// combination (experiment E10 measures its overhead against plain
// Algorithm 1):
//
//  * the k/(k+1) boundary M is maintained exactly as in Algorithm 1
//    (T+/T- accumulation, midpoint halving, reset on crossing);
//  * inside the top-k, consecutive ranks are separated by midpoint slots
//    à la Lam et al.; an internal order violation triggers a re-selection
//    over the k members (repeated MaximumProtocol with winner
//    announcements, so the full order becomes common knowledge and every
//    node recomputes its slot locally — no extra unicasts needed).
//
// All order bookkeeping runs in the tie-free space w = v*n + (n-1-id),
// which coordinator and nodes can compute from any (id, value) pair they
// already exchange; protocols run on raw values (their smaller-id
// tie-break induces exactly the w order).
#pragma once

#include <optional>

#include "core/filter.hpp"
#include "core/monitor.hpp"
#include "protocols/extremum.hpp"

namespace topkmon {

class OrderedTopkMonitor final : public MonitorBase {
 public:
  struct Options {
    bool suppress_idle_broadcasts = false;
  };

  explicit OrderedTopkMonitor(std::size_t k);
  OrderedTopkMonitor(std::size_t k, Options opts);

  std::string_view name() const override { return "ordered_topk"; }
  void initialize(Cluster& cluster) override;
  void step(Cluster& cluster, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  /// The coordinator's current rank order of the top-k (best first).
  const std::vector<NodeId>& ordered_topk() const noexcept { return order_; }

  Value boundary_w() const noexcept { return mid_w_; }

 private:
  Value to_w(NodeId id, Value v) const noexcept;
  void full_reset(Cluster& cluster);
  void internal_rebuild(Cluster& cluster);
  void rebuild_slots();
  void rebuild_id_lists();

  std::size_t k_;
  ProtocolOptions popts_;
  std::size_t n_ = 0;
  bool boundary_active_ = true;  ///< false iff k == n (no outsiders)

  // Coordinator-side.
  std::vector<NodeId> topk_ids_;   ///< sorted by id
  std::vector<NodeId> order_;      ///< rank order, best first
  std::vector<NodeId> rest_list_;
  std::vector<Value> known_w_;     ///< per member rank: w at last report
  Value tplus_w_ = 0;
  Value tminus_w_ = 0;
  Value mid_w_ = kMinusInf;

  // Node-side (w-space filters; members hold their slot, outsiders
  // [-inf, M_w]).
  std::vector<Filter> filters_w_;
  std::vector<char> in_topk_;
};

}  // namespace topkmon
