#include "core/offline_opt.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/ground_truth.hpp"

namespace topkmon {

namespace {

void row_values(const TraceMatrix& trace, std::size_t t,
                std::vector<Value>& values) {
  values.resize(trace.nodes());
  for (NodeId i = 0; i < trace.nodes(); ++i) values[i] = trace.at(t, i);
}

}  // namespace

OfflineOptResult compute_offline_opt(const TraceMatrix& trace, std::size_t k) {
  const std::size_t n = trace.nodes();
  if (k == 0 || k > n) {
    throw std::invalid_argument("compute_offline_opt: k out of range");
  }
  if (trace.steps() == 0) return {};

  OfflineOptResult result;
  if (k == n) {
    // No boundary to maintain; one unbounded filter set covers everything.
    result.epochs = 1;
    return result;
  }

  std::vector<char> member(n, 0);
  std::vector<char> prev_member(n, 0);
  Value t_plus = 0;
  Value t_minus = 0;
  bool in_epoch = false;
  std::vector<Value> values;

  for (std::size_t t = 0; t < trace.steps(); ++t) {
    row_values(trace, t, values);

    auto start_epoch = [&]() {
      const auto ids = true_topk_set(values, k);
      std::fill(member.begin(), member.end(), char{0});
      for (const NodeId id : ids) member[id] = 1;
      t_plus = kPlusInf;
      t_minus = kMinusInf;
      for (std::size_t i = 0; i < n; ++i) {
        if (member[i]) t_plus = std::min(t_plus, values[i]);
        else t_minus = std::max(t_minus, values[i]);
      }
      in_epoch = true;
    };

    if (!in_epoch) {
      start_epoch();
      ++result.epochs;
      continue;
    }

    // Extend the running epoch if feasible (Lemma 3.2 condition).
    Value step_min_in = kPlusInf;
    Value step_max_out = kMinusInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (member[i]) step_min_in = std::min(step_min_in, values[i]);
      else step_max_out = std::max(step_max_out, values[i]);
    }
    const Value new_t_plus = std::min(t_plus, step_min_in);
    const Value new_t_minus = std::max(t_minus, step_max_out);
    if (new_t_plus >= new_t_minus) {
      t_plus = new_t_plus;
      t_minus = new_t_minus;
      continue;
    }

    // Epoch must end here: OPT updates filters at time t.
    prev_member = member;
    start_epoch();
    ++result.epochs;
    result.update_times.push_back(static_cast<TimeStep>(t));
    std::uint64_t changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (member[i] != prev_member[i]) ++changed;
    }
    result.refined_messages += 1 + changed;  // broadcast + per-change unicasts
  }
  return result;
}

Value trace_delta(const TraceMatrix& trace, std::size_t k) {
  const std::size_t n = trace.nodes();
  if (k == 0 || k >= n) {
    throw std::invalid_argument("trace_delta: requires 1 <= k < n");
  }
  Value delta = 0;
  std::vector<Value> values;
  for (std::size_t t = 0; t < trace.steps(); ++t) {
    row_values(trace, t, values);
    // nth_element only permutes the buffer, so the second rank query over
    // the same (reused) buffer is still exact.
    const Value vk = nth_value_inplace(values, k);
    const Value vk1 = nth_value_inplace(values, k + 1);
    delta = std::max(delta, vk - vk1);
  }
  return delta;
}

}  // namespace topkmon
