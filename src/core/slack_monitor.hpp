// Babcock–Olston-inspired baseline ("slack" filter placement + poll-based
// resolution). B&O's distributed top-k monitoring keeps per-node
// arithmetic constraints with *adaptive slack* and resolves violations by
// directly contacting the involved nodes. Mapped onto our single-value-
// per-node setting this becomes:
//
//  * the filter boundary between top-k and the rest is placed at
//    B = T- + alpha * (T+ - T-) instead of the midpoint; alpha either
//    fixed or adapted to the observed violation mix (more slack for the
//    side that violates more often);
//  * violation resolution polls a whole side with one shout-echo cycle
//    (1 broadcast + side-size reports) instead of the randomized
//    O(log n) protocol; a reset polls everyone.
//
// This comparator isolates two design choices of Algorithm 1: the
// randomized extremum protocol (vs polling) and the midpoint placement
// (vs asymmetric slack) — see experiment E8.
#pragma once

#include <optional>

#include "core/filter.hpp"
#include "core/monitor.hpp"
#include "sim/message.hpp"

namespace topkmon {

class SlackMonitor final : public MonitorBase {
 public:
  struct Options {
    /// Boundary position within [T-, T+] (0 = at T-, 1 = at T+).
    double alpha = 0.5;
    /// Adapt alpha to the violation mix since the last reset.
    bool adaptive = false;
  };

  explicit SlackMonitor(std::size_t k);
  SlackMonitor(std::size_t k, Options opts);

  std::string_view name() const override {
    return opts_.adaptive ? "slack_adaptive" : "slack_fixed";
  }
  void initialize(Cluster& cluster) override;
  void step(Cluster& cluster, TimeStep t) override;
  const std::vector<NodeId>& topk() const override { return topk_ids_; }

  Value boundary() const noexcept { return bound_; }

 private:
  /// One shout-echo poll over `side`; returns (id, value) pairs in a
  /// member scratch buffer reused across polls.
  const std::vector<std::pair<NodeId, Value>>& poll(
      Cluster& cluster, const std::vector<NodeId>& side);
  void reset(Cluster& cluster);
  void apply_boundary(Cluster& cluster, Value b);
  double effective_alpha() const noexcept;
  void rebuild_id_lists();

  std::size_t k_;
  Options opts_;
  bool degenerate_ = false;

  std::vector<Filter> filters_;
  std::vector<char> in_topk_;
  std::vector<NodeId> topk_ids_;
  std::vector<NodeId> topk_list_;
  std::vector<NodeId> rest_list_;
  Value tplus_ = 0;
  Value tminus_ = 0;
  Value bound_ = 0;
  std::uint64_t top_violations_ = 0;  ///< since last reset
  std::uint64_t bot_violations_ = 0;

  // Hot-path scratch buffers, reused across steps (no per-step allocs).
  std::vector<Message> mail_;
  std::vector<std::pair<NodeId, Value>> poll_out_;
  std::vector<NodeId> viol_top_;
  std::vector<NodeId> viol_bot_;
};

}  // namespace topkmon
