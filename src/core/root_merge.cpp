#include "core/root_merge.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace topkmon {

// ---------------------------------------------------------------------------
// RootMergeCoordinator
// ---------------------------------------------------------------------------

RootMergeCoordinator::RootMergeCoordinator(
    std::string name, std::size_t k,
    std::span<const std::unique_ptr<ShardAdapter>> adapters,
    std::vector<ShardRange> ranges)
    : name_(std::move(name)),
      k_(k),
      adapters_(adapters),
      ranges_(std::move(ranges)) {
  if (adapters_.size() != ranges_.size() || adapters_.empty()) {
    throw std::invalid_argument("RootMergeCoordinator: adapters != ranges");
  }
}

void RootMergeCoordinator::on_init(CoordCtx& ctx) {
  if (ctx.n() != adapters_.size()) {
    throw std::invalid_argument("RootMergeCoordinator: root n != shards");
  }
  info_.assign(adapters_.size(), Info{});
  inert_ = ctx.n() <= 1;
  if (inert_) return;
  // Bootstrap: every agent's on_init already reported exact post-reset
  // extrema (they fold in during the initialize settle, reaching
  // advance_fixpoint below), so no probe round is needed.
  rphase_ = RPhase::kCollect;
  fresh_ = 0;
}

void RootMergeCoordinator::on_step_begin(CoordCtx& ctx, TimeStep t) {
  cur_step_ = t;
  violation_this_step_ = false;
  if (pending_k_.has_value()) {
    // Dynamic k (request_k): adopt the new target and renegotiate. When a
    // renegotiation is already collecting, just adopting the target is
    // enough — its fixpoint below aims at k_.
    k_ = *pending_k_;
    pending_k_.reset();
    if (!inert_ && rphase_ == RPhase::kIdle) begin_renegotiation(ctx);
  }
}

void RootMergeCoordinator::on_message(CoordCtx& ctx, const Message& m) {
  if (inert_ || m.kind != MsgKind::kViolation) return;
  const std::size_t s = static_cast<std::size_t>(m.from);
  if (!info_[s].fresh) ++fresh_;
  info_[s] = Info{m.a, m.b, true};
  if (rphase_ == RPhase::kIdle) {
    // A shard's boundary crossed the root filter: the merged answer may
    // be wrong, renegotiate. One violation step per observation step no
    // matter how many shards crossed.
    ++mstats_.violations;
    if (!violation_this_step_) {
      violation_this_step_ = true;
      ++mstats_.violation_steps;
    }
    begin_renegotiation(ctx);
  } else if (fresh_ == adapters_.size()) {
    advance_fixpoint(ctx);
  }
}

void RootMergeCoordinator::begin_renegotiation(CoordCtx& ctx) {
  // Requery everyone: the crossing report's extrema are cheap/possibly
  // stale; quota decisions only run on exact values (kProbe replies go
  // through ShardAdapter::requery).
  for (Info& i : info_) i.fresh = false;
  fresh_ = 0;
  rphase_ = RPhase::kCollect;
  ++mstats_.polls;
  Message probe;
  probe.kind = MsgKind::kProbe;
  ctx.broadcast(probe);
}

void RootMergeCoordinator::advance_fixpoint(CoordCtx& ctx) {
  // One quota transfer per call: weakest member (min U, quota > 0) loses
  // a slot to the strongest outsider (max L, quota < size) while the
  // outsider strictly outranks the member. The two kFilterAssign replies
  // re-enter on_message and bring fresh_ back to c.
  const std::size_t c = adapters_.size();

  // Dynamic k: while the quota total is off the target, move it one unit
  // toward k_ before any improving transfer — grant a slot to the shard
  // with the strongest outsider, or take one from the shard with the
  // weakest member. 1 <= k_ <= n guarantees an eligible shard exists, and
  // each assign shrinks |total - k_|, so the fixpoint still terminates.
  std::size_t total = 0;
  for (const auto& a : adapters_) total += a->quota();
  if (total != k_) {
    std::size_t pick = c;
    if (total < k_) {
      for (std::size_t s = 0; s < c; ++s) {
        if (adapters_[s]->quota() < ranges_[s].size &&
            (pick == c || info_[s].l > info_[pick].l)) {
          pick = s;
        }
      }
    } else {
      for (std::size_t s = 0; s < c; ++s) {
        if (adapters_[s]->quota() > 0 &&
            (pick == c || info_[s].u < info_[pick].u)) {
          pick = s;
        }
      }
    }
    ++mstats_.protocol_runs;
    info_[pick].fresh = false;
    --fresh_;
    Message assign;
    assign.kind = MsgKind::kFilterAssign;
    const std::size_t q = adapters_[pick]->quota();
    assign.a = static_cast<std::int64_t>(total < k_ ? q + 1 : q - 1);
    ctx.unicast(static_cast<NodeId>(pick), assign);
    return;
  }

  std::size_t loser = c;
  std::size_t gainer = c;
  for (std::size_t s = 0; s < c; ++s) {
    if (adapters_[s]->quota() > 0 &&
        (loser == c || info_[s].u < info_[loser].u)) {
      loser = s;
    }
    if (adapters_[s]->quota() < ranges_[s].size &&
        (gainer == c || info_[s].l > info_[gainer].l)) {
      gainer = s;
    }
  }
  if (loser == c || gainer == c || loser == gainer ||
      info_[gainer].l <= info_[loser].u) {
    finish_renegotiation(ctx);
    return;
  }
  ++mstats_.protocol_runs;
  info_[loser].fresh = false;
  info_[gainer].fresh = false;
  fresh_ -= 2;
  Message assign;
  assign.kind = MsgKind::kFilterAssign;
  assign.a = static_cast<std::int64_t>(adapters_[loser]->quota() - 1);
  ctx.unicast(static_cast<NodeId>(loser), assign);
  assign.a = static_cast<std::int64_t>(adapters_[gainer]->quota() + 1);
  ctx.unicast(static_cast<NodeId>(gainer), assign);
}

void RootMergeCoordinator::finish_renegotiation(CoordCtx& ctx) {
  // Quotas are at a fixpoint: every member outranks every outsider, so
  // max L <= min U and any R in between restores L_s <= R <= U_s for all
  // shards (quota-0 shards report U = +inf, full shards L = -inf, so the
  // ineligible shards never tighten the interval wrongly).
  Value max_l = kMinusInf;
  Value min_u = kPlusInf;
  for (const Info& i : info_) {
    max_l = std::max(max_l, i.l);
    min_u = std::min(min_u, i.u);
  }
  r_ = midpoint(max_l, min_u);
  have_r_ = true;
  ++mstats_.midpoint_updates;
  rphase_ = RPhase::kIdle;
  // Unconditional re-anchor broadcast, even when R is unchanged: a shard
  // whose local boundary drifted off R must be re-anchored or it would
  // report the same crossing every step.
  Message update;
  update.kind = MsgKind::kFilterUpdate;
  update.a = r_;
  ctx.broadcast(update);
}

void RootMergeCoordinator::on_step_end(CoordCtx&, TimeStep) {
  // Measurement plane: concatenate the shard member sets. Ranges are
  // contiguous ascending and each member list is ascending shard-local,
  // so the concatenation is the canonical (id-sorted) representation.
  topk_ids_.clear();
  for (std::size_t s = 0; s < adapters_.size(); ++s) {
    for (NodeId local : adapters_[s]->members()) {
      topk_ids_.push_back(ranges_[s].base + local);
    }
  }
}

// ---------------------------------------------------------------------------
// ShardedDeployment
// ---------------------------------------------------------------------------

namespace {

std::uint64_t root_tier_seed(std::uint64_t base_seed) {
  std::uint64_t state = base_seed ^ 0x5297A3D7C0FFEE11ull;
  return splitmix64(state);
}

std::string_view monitor_name(ShardedSpec::Monitor m) {
  switch (m) {
    case ShardedSpec::Monitor::kFilter: return "topk_filter";
    case ShardedSpec::Monitor::kNaive: return "naive";
    case ShardedSpec::Monitor::kNaiveChg: return "naive_on_change";
  }
  return "?";
}

}  // namespace

ShardedDeployment::ShardedDeployment(const ShardedSpec& spec) : spec_(spec) {
  ranges_ = partition_shards(spec.n, spec.shards);
  const std::size_t c = ranges_.size();

  // Churn provisioning: spec.n is the provisioned capacity (initial nodes
  // plus every joining block), but the initial quotas must split over the
  // initially-live prefix only — a shard whose nodes are all join reserve
  // starts at quota 0 and wins slots at its join via the root fixpoint.
  const std::size_t initial =
      spec.faults != nullptr ? spec.faults->initial_nodes() : spec.n;
  std::vector<ShardRange> live_ranges = ranges_;
  for (ShardRange& r : live_ranges) {
    r.size = initial > r.base ? std::min<std::size_t>(r.size, initial - r.base)
                              : 0;
  }
  const std::vector<std::size_t> quotas =
      initial_shard_quotas(live_ranges, initial, spec.k);

  // Carve the deployment-level plan into per-shard plans with shard-local
  // ids. Membership events route to the owning shard (a join block can
  // straddle shard boundaries and is split at them); kSetK stays at the
  // deployment level (the scenario routes it through set_k). shard_plans_
  // is filled completely before any adapter takes a pointer into it.
  if (spec.faults != nullptr) {
    std::vector<std::vector<FaultEvent>> by_shard(c);
    for (const FaultEvent& ev : spec.faults->events()) {
      switch (ev.kind) {
        case FaultEvent::Kind::kSetK:
          break;
        case FaultEvent::Kind::kJoin: {
          NodeId id = ev.node;
          std::size_t left = ev.count;
          while (left > 0) {
            const std::size_t s = shard_of(id);
            const std::size_t take = std::min<std::size_t>(
                left, ranges_[s].base + ranges_[s].size - id);
            FaultEvent local = ev;
            local.node = id - ranges_[s].base;
            local.count = take;
            by_shard[s].push_back(local);
            id += static_cast<NodeId>(take);
            left -= take;
          }
          break;
        }
        default: {
          const std::size_t s = shard_of(ev.node);
          FaultEvent local = ev;
          local.node = ev.node - ranges_[s].base;
          by_shard[s].push_back(local);
          break;
        }
      }
    }
    shard_plans_.reserve(c);
    for (std::size_t s = 0; s < c; ++s) {
      shard_plans_.push_back(
          FaultPlan::from_events(ranges_[s].size, std::move(by_shard[s])));
    }
  }

  adapters_.reserve(c);
  for (std::size_t s = 0; s < c; ++s) {
    ShardConfig cfg;
    cfg.n = ranges_[s].size;
    cfg.quota = quotas[s];
    cfg.seed = shard_seed(spec.seed, s);
    cfg.network = spec.network;
    if (!shard_plans_.empty() && !shard_plans_[s].empty()) {
      cfg.faults = &shard_plans_[s];
    }
    cfg.join_reserve = ranges_[s].size - live_ranges[s].size;
    // At c == 1 the (single) inner driver takes the parallel tick scan; at
    // c > 1 the inner drivers stay serial and the pool below steps whole
    // shards concurrently instead — no nested pools.
    cfg.workers = c == 1 ? spec.workers : 1;
    cfg.dense_loop = spec.dense_loop;
    cfg.sharded = c > 1;
    switch (spec.monitor) {
      case ShardedSpec::Monitor::kFilter:
        adapters_.push_back(std::make_unique<FilterShardAdapter>(
            cfg, spec.suppress_idle_broadcasts));
        break;
      case ShardedSpec::Monitor::kNaive:
        adapters_.push_back(
            std::make_unique<NaiveShardAdapter>(cfg, /*chg=*/false));
        break;
      case ShardedSpec::Monitor::kNaiveChg:
        adapters_.push_back(
            std::make_unique<NaiveShardAdapter>(cfg, /*chg=*/true));
        break;
    }
  }

  // Root tier: its own c-node cluster (instant network — the tiers model
  // coordinator processes on a reliable backbone) with a seed stream
  // disjoint from every shard's.
  root_cluster_ =
      std::make_unique<Cluster>(c, root_tier_seed(spec.seed), NetworkSpec{});
  agents_.reserve(c);
  for (std::size_t s = 0; s < c; ++s) {
    agents_.push_back(std::make_unique<ShardAgent>(*adapters_[s]));
  }
  root_coord_ = std::make_unique<RootMergeCoordinator>(
      std::string(monitor_name(spec.monitor)), spec.k, adapters_, ranges_);
  root_driver_ = std::make_unique<SimDriver>(*root_cluster_, *root_coord_,
                                             agents_, /*auto_deliver=*/true,
                                             /*workers=*/1);
  if (c > 1 && spec.workers > 1) {
    pool_.emplace(std::min(spec.workers, c) - 1);
  }
  changed_by_shard_.resize(c);
  shard_errors_.resize(c);
}

std::size_t ShardedDeployment::shard_of(NodeId global) const {
  // Binary search on the range bases (c is small; log c is plenty).
  std::size_t lo = 0;
  std::size_t hi = ranges_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (ranges_[mid].base <= global) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

void ShardedDeployment::set_value(NodeId global, Value v) {
  const std::size_t s = shard_of(global);
  adapters_[s]->cluster().set_value(global - ranges_[s].base, v);
}

void ShardedDeployment::initialize() {
  for (auto& a : adapters_) a->initialize();
  root_driver_->initialize();
}

void ShardedDeployment::step(TimeStep t, std::span<const NodeId> changed) {
  for (auto& v : changed_by_shard_) v.clear();
  for (NodeId g : changed) {
    const std::size_t s = shard_of(g);
    changed_by_shard_[s].push_back(g - ranges_[s].base);
  }
  if (pool_.has_value()) {
    // Step whole shards in parallel. Shard bodies must not throw across
    // the pool; exceptions are captured per shard and the lowest shard
    // index rethrows — the first failure in serial order, so error
    // behaviour is worker-count independent.
    std::fill(shard_errors_.begin(), shard_errors_.end(), nullptr);
    pool_->run(adapters_.size(), [&](std::size_t s) {
      try {
        adapters_[s]->step(t, changed_by_shard_[s]);
      } catch (...) {
        shard_errors_[s] = std::current_exception();
      }
    });
    for (const std::exception_ptr& e : shard_errors_) {
      if (e) std::rethrow_exception(e);
    }
  } else {
    for (std::size_t s = 0; s < adapters_.size(); ++s) {
      adapters_[s]->step(t, changed_by_shard_[s]);
    }
  }
  // Root tier: crossing polls, renegotiations, answer assembly. Serial,
  // after every shard settled.
  root_driver_->step(t);
}

void ShardedDeployment::set_k(std::size_t k) {
  if (k == 0 || k > spec_.n) {
    throw std::invalid_argument("ShardedDeployment::set_k: k out of range");
  }
  spec_.k = k;
  if (adapters_.size() == 1) {
    // Inert root tier: re-key the single shard directly (the naive shard
    // rekeys its replica in place; the filter shard rebuilds on its warm
    // cluster), exactly the monolithic on_set_k semantics.
    adapters_[0]->set_quota(k);
    return;
  }
  root_coord_->request_k(k);
}

SimTime ShardedDeployment::ticks() const {
  SimTime t = 0;
  for (const auto& a : adapters_) t = std::max(t, a->ticks());
  return t;
}

CommStats ShardedDeployment::node_shard_comm() {
  if (adapters_.size() == 1) {
    // Straight copy: series (when enabled) included, exactly the
    // monolithic RunResult surface.
    return adapters_[0]->cluster().stats();
  }
  CommStats out;
  for (const auto& a : adapters_) out.accumulate(a->cluster().stats());
  return out;
}

MonitorStats ShardedDeployment::monitor_totals() const {
  MonitorStats out;
  for (const auto& a : adapters_) add_monitor_stats(out, a->monitor_stats());
  add_monitor_stats(out, root_coord_->monitor_stats());
  return out;
}

}  // namespace topkmon
