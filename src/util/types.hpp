// Fundamental value types shared by every subsystem.
//
// The paper's model: n nodes with ids {1..n} observe values v_i^t in N.
// We use 0-based 32-bit node ids and signed 64-bit values (filters need
// -inf/+inf sentinels; signed arithmetic keeps midpoint computations simple).
#pragma once

#include <cstdint>
#include <limits>

namespace topkmon {

/// Identifier of a distributed node. Nodes are numbered 0..n-1; the
/// coordinator is not a node and has no id.
using NodeId = std::uint32_t;

/// A value observed on a data stream. The paper assumes naturals; we allow
/// the full signed range so midpoints and sentinel infinities are exact.
using Value = std::int64_t;

/// Discrete time step of the synchronized observation clock.
using TimeStep = std::uint64_t;

/// Sentinel for the lower filter bound "-infinity" (Definition 2.1 allows
/// filter intervals over N ∪ {-inf, +inf}).
inline constexpr Value kMinusInf = std::numeric_limits<Value>::min();

/// Sentinel for the upper filter bound "+infinity".
inline constexpr Value kPlusInf = std::numeric_limits<Value>::max();

/// Overflow-safe midpoint of two values, rounding toward the lower value.
/// Used when halving the gap between T+ and T- (Algorithm 1, line 32).
constexpr Value midpoint(Value lo, Value hi) noexcept {
  // floor((lo + hi) / 2) without overflow, valid for any ordering of inputs.
  return lo / 2 + hi / 2 + (lo % 2 + hi % 2) / 2;
}

/// True if `v` lies in the closed interval [lo, hi].
constexpr bool in_closed(Value v, Value lo, Value hi) noexcept {
  return lo <= v && v <= hi;
}

/// Smallest power of two >= x (x >= 1). Used to pick the protocol bound N.
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  if (x <= 1) return 1;
  --x;
  x |= x >> 1;
  x |= x >> 2;
  x |= x >> 4;
  x |= x >> 8;
  x |= x >> 16;
  x |= x >> 32;
  return x + 1;
}

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  std::uint32_t r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  return x <= 1 ? 0 : floor_log2(x - 1) + 1;
}

}  // namespace topkmon
