// A minimal persistent fork-join pool for the parallel tick driver.
//
// SweepRunner (exp/sweep_runner.hpp) already owns a thread pool, but it
// parallelizes whole trials and lives in the exp layer; the SimDriver
// needs a pool *below* the exp layer that dispatches a fixed number of
// shard bodies per tick — one invocation per worker range, thousands of
// times per run — with the lowest possible per-batch overhead and a
// memory-ordering story simple enough to document as a contract
// (docs/architecture.md, "Parallel tick loop"). This is that pool: the
// same generation-counter batch design as SweepRunner, stripped of
// dynamic index claiming (shard i is statically bound to batch index i,
// so results land where the merge expects them).
//
// Memory visibility: run() returns only after every fn(i) has finished,
// and the completion handshake goes through the pool mutex — every write
// a shard body made happens-before run() returns on the calling thread,
// and every write the caller made before run() happens-before fn(i)
// starts. Callers therefore need no atomics of their own for data that
// is only touched inside fn or only outside run().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace topkmon {

/// Fork-join helper: `run(count, fn)` executes fn(0..count-1) across the
/// calling thread plus the pool's threads and blocks until all are done.
/// Thread-safety: construct, run() and destroy from one owner thread
/// only; concurrent run() calls on one pool are not supported.
class WorkerPool {
 public:
  /// Spawns `threads` workers (0 is valid: run() then executes inline on
  /// the calling thread, with no synchronization at all).
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Number of spawned worker threads (excluding the calling thread).
  std::size_t threads() const noexcept { return workers_.size(); }

  /// Runs fn(i) exactly once for every i in [0, count). Index i is
  /// statically assigned: worker w takes indices {w+1, w+1+W, ...} and
  /// the calling thread takes {0, W, 2W, ...} (W = threads()+1), so a
  /// batch of `count <= W` gives each participant at most one body.
  /// `fn` must not throw — shard bodies capture their own exceptions
  /// (the driver stages an exception_ptr per shard and rethrows
  /// deterministically at the barrier). Blocks until every fn returned;
  /// see the header comment for the happens-before guarantees.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;

  // Batch state, guarded by mutex_ / signalled via cv_work_ and cv_done_.
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::size_t batch_count_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t batch_id_ = 0;
  bool shutdown_ = false;
};

}  // namespace topkmon
