#include "util/rng.hpp"

#include <cmath>

namespace topkmon {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one invalid xoshiro state; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

bool Rng::bernoulli_pow2(std::uint32_t r, std::uint32_t log_n) noexcept {
  if (r >= log_n) return true;  // probability 2^r/2^log_n >= 1
  // Success iff the low (log_n - r) bits of a uniform draw are all zero:
  // that event has probability exactly 2^-(log_n - r) = 2^r / N.
  const std::uint32_t bits = log_n - r;
  const std::uint64_t mask = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
  return (next_u64() & mask) == 0;
}

double Rng::next_gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

Rng Rng::derive(std::uint64_t stream_id) const noexcept {
  // Mix the child id with fresh words drawn from a copy of our state; the
  // parent instance is left untouched so derivation is repeatable.
  std::uint64_t mix =
      s_[0] ^ rotl(s_[2], 13) ^ (stream_id * 0x9E3779B97F4A7C15ull);
  std::uint64_t sm = mix;
  (void)splitmix64(sm);
  return Rng(splitmix64(sm) ^ rotl(stream_id, 31));
}

}  // namespace topkmon
