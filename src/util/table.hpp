// Console table / CSV emission for the benchmark harness. Every experiment
// binary prints a human-readable fixed-width table and can mirror the same
// rows into a CSV file for plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace topkmon {

/// A simple column-aligned table builder.
///
/// Usage:
///   Table t({"n", "E[msgs]", "bound"});
///   t.add_row({"1024", "18.3", "21"});
///   t.print(std::cout);
///   t.write_csv("e1.csv");
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return header_.size(); }
  const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }
  const std::vector<std::string>& header() const noexcept { return header_; }

  /// Prints the table with aligned columns and a separator rule.
  void print(std::ostream& out) const;

  /// Writes header + rows as RFC-4180-ish CSV (cells with commas/quotes are
  /// quoted). Returns false if the file could not be opened.
  bool write_csv(const std::string& path) const;

  /// Streams the CSV serialization (same format as write_csv).
  void write_csv(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` significant decimal places.
std::string fmt(double v, int prec = 2);

/// Formats an integral count with thousands separators (e.g. 1'234'567).
std::string fmt_count(std::uint64_t v);

}  // namespace topkmon
