// Dense fixed-size id bitsets for the activity-driven hot paths.
//
// The sparse event loop tracks "which of the n nodes need attention this
// tick" (due mail, armed timers, pending observations) as one bit per
// node id. A word-packed bitset makes maintaining the set O(1) per
// transition and scanning it O(n/64 + |set|) — the n-independent cost the
// loop needs — while iteration in ascending id order falls out of the
// word/bit layout for free, preserving the simulator's deterministic
// per-id processing order.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace topkmon {

/// A set of node ids in [0, size), packed 64 per word. All mutators are
/// O(1); `set_all`/`clear_all` are O(size/64). Words past the last valid
/// id stay zero so word-level iteration never yields a phantom id.
class IdBitset {
 public:
  IdBitset() = default;

  explicit IdBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const noexcept { return size_; }

  bool test(NodeId id) const noexcept {
    return (words_[id >> 6] >> (id & 63)) & 1u;
  }

  void set(NodeId id) noexcept {
    words_[id >> 6] |= std::uint64_t{1} << (id & 63);
  }

  void clear(NodeId id) noexcept {
    words_[id >> 6] &= ~(std::uint64_t{1} << (id & 63));
  }

  void assign(NodeId id, bool value) noexcept { value ? set(id) : clear(id); }

  /// Sets every bit (the tail of the last word stays zero).
  void set_all() noexcept {
    if (words_.empty()) return;
    std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
    const std::size_t tail = size_ & 63;
    if (tail != 0) words_.back() = (~std::uint64_t{0}) >> (64 - tail);
  }

  void clear_all() noexcept { std::fill(words_.begin(), words_.end(), 0); }

  bool any() const noexcept {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Copies another bitset of the same size (capacity retained).
  void copy_from(const IdBitset& other) noexcept {
    words_.assign(other.words_.begin(), other.words_.end());
  }

  /// Word-wise intersection with another bitset of the same size (e.g.
  /// masking a due/armed scan down to the alive nodes).
  void mask_with(const IdBitset& other) noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] &= other.words_[w];
    }
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Calls `fn(NodeId)` for every id whose bit is set in `words`, in
/// ascending id order. Each word is snapshotted before its bits are
/// visited, so `fn` may freely mutate the underlying set for ids at or
/// before the current one (e.g. clear-on-drain, re-arm-self) without
/// perturbing the iteration.
template <typename Fn>
inline void for_each_set_bit(std::span<const std::uint64_t> words, Fn&& fn) {
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const auto bit = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      fn(static_cast<NodeId>(w * 64 + bit));
    }
  }
}

}  // namespace topkmon
