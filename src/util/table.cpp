#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace topkmon {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
          << std::right << r[c];
    }
    out << "\n";
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(rule, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += "\"\"";
    else quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

void Table::write_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(r[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt(double v, int prec) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(prec) << v;
  return out.str();
}

std::string fmt_count(std::uint64_t v) {
  const std::string digits = std::to_string(v);
  std::string grouped;
  grouped.reserve(digits.size() + digits.size() / 3);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    const std::size_t remaining = digits.size() - i;
    if (i != 0 && remaining % 3 == 0) grouped += '\'';
    grouped += digits[i];
  }
  return grouped;
}

}  // namespace topkmon
