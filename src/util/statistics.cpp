#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace topkmon {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void Quantiles::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

const std::vector<double>& Quantiles::sorted_samples() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return samples_;
}

double Quantiles::quantile(double q) const {
  if (samples_.empty()) {
    throw std::logic_error("Quantiles::quantile on empty sample set");
  }
  const auto& s = sorted_samples();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(pos);
  const std::size_t hi_idx = std::min(lo_idx + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo_idx);
  return s[lo_idx] + frac * (s[hi_idx] - s[lo_idx]);
}

double Quantiles::tail_fraction_above(double threshold) const {
  if (samples_.empty()) return 0.0;
  const auto& s = sorted_samples();
  const auto it = std::upper_bound(s.begin(), s.end(), threshold);
  return static_cast<double>(s.end() - it) / static_cast<double>(s.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || !(lo < hi)) {
    throw std::invalid_argument("Histogram requires lo < hi and buckets > 0");
  }
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx_signed = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  idx_signed = std::clamp<std::int64_t>(
      idx_signed, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx_signed)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i + 1);
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::uint64_t peak = 0;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = peak == 0
                         ? std::size_t{0}
                         : static_cast<std::size_t>(
                               static_cast<double>(counts_[i]) /
                               static_cast<double>(peak) *
                               static_cast<double>(max_width));
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(std::max<std::size_t>(bar, 1), '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

double harmonic(std::uint64_t n) noexcept {
  double h = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

}  // namespace topkmon
