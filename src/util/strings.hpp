// Small string utilities shared by the spec parsers and the CLI.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace topkmon {

/// Splits `text` on `sep`, dropping empty items ("a,,b" -> {"a", "b"}).
/// Views point into `text`; the caller keeps the backing storage alive.
inline std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    const std::string_view item = text.substr(
        start,
        pos == std::string_view::npos ? std::string_view::npos : pos - start);
    if (!item.empty()) out.push_back(item);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

/// Full-string unsigned parse: nullopt on empty input, signs, trailing
/// junk, or overflow (unlike std::stoull, which wraps "-1" to 2^64-1).
inline std::optional<std::uint64_t> to_u64(std::string_view text) {
  std::uint64_t out = 0;
  const char* end = text.data() + text.size();
  const auto res = std::from_chars(text.data(), end, out);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return out;
}

/// Full-string signed parse: nullopt on empty input, trailing junk, or
/// overflow.
inline std::optional<std::int64_t> to_i64(std::string_view text) {
  std::int64_t out = 0;
  const char* end = text.data() + text.size();
  const auto res = std::from_chars(text.data(), end, out);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return out;
}

/// Full-string double parse: nullopt on empty input or trailing junk.
inline std::optional<double> to_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string copy(text);  // strtod needs NUL termination
  char* end = nullptr;
  const double out = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return out;
}

}  // namespace topkmon
