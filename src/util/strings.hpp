// Small string utilities shared by the spec parsers and the CLI.
#pragma once

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace topkmon {

/// Splits `text` on `sep`, dropping empty items ("a,,b" -> {"a", "b"}).
/// Views point into `text`; the caller keeps the backing storage alive.
inline std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    const std::string_view item = text.substr(
        start,
        pos == std::string_view::npos ? std::string_view::npos : pos - start);
    if (!item.empty()) out.push_back(item);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

/// Full-string unsigned parse: nullopt on empty input, signs, trailing
/// junk, or overflow (unlike std::stoull, which wraps "-1" to 2^64-1).
inline std::optional<std::uint64_t> to_u64(std::string_view text) {
  std::uint64_t out = 0;
  const char* end = text.data() + text.size();
  const auto res = std::from_chars(text.data(), end, out);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return out;
}

/// Full-string signed parse: nullopt on empty input, trailing junk, or
/// overflow.
inline std::optional<std::int64_t> to_i64(std::string_view text) {
  std::int64_t out = 0;
  const char* end = text.data() + text.size();
  const auto res = std::from_chars(text.data(), end, out);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return out;
}

/// Full-string double parse: nullopt on empty input or trailing junk.
inline std::optional<double> to_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string copy(text);  // strtod needs NUL termination
  char* end = nullptr;
  const double out = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return out;
}

/// Classic dynamic-programming edit distance (insert/delete/substitute),
/// case-insensitive — small strings, so the O(|a|·|b|) table is fine.
/// Shared by every did-you-mean hint (CLI --suite names, SweepGrid axis
/// names) so they suggest with identical tolerance.
inline std::size_t edit_distance(std::string_view a, std::string_view b) {
  const auto lower = [](char c) {
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
  };
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub =
          prev[j - 1] + (lower(a[i - 1]) == lower(b[j - 1]) ? 0 : 1);
      cur[j] = std::min(std::min(prev[j] + 1, cur[j - 1] + 1), sub);
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// The candidates closest to `name` by edit_distance (<= max_distance,
/// best first, stable within a distance), truncated to max_results so the
/// hint stays scannable.
inline std::vector<std::string> closest_matches(
    std::string_view name, const std::vector<std::string>& candidates,
    std::size_t max_distance = 2, std::size_t max_results = 3) {
  std::vector<std::pair<std::size_t, std::string>> scored;
  for (const auto& c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d <= max_distance) scored.emplace_back(d, c);
  }
  std::stable_sort(
      scored.begin(), scored.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; });
  if (scored.size() > max_results) scored.resize(max_results);
  std::vector<std::string> out;
  out.reserve(scored.size());
  for (auto& [d, c] : scored) out.push_back(std::move(c));
  return out;
}

}  // namespace topkmon
