#include "util/worker_pool.hpp"

namespace topkmon {

WorkerPool::WorkerPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_fn_ = &fn;
    batch_count_ = count;
    remaining_ = count;
    ++batch_id_;
  }
  cv_work_.notify_all();

  // The calling thread participates with the same static stride as the
  // workers (see run()'s doc comment), so a count == participants batch
  // costs one body per thread and zero load-balancing bookkeeping.
  const std::size_t stride = workers_.size() + 1;
  std::size_t done = 0;
  for (std::size_t i = 0; i < count; i += stride) {
    fn(i);
    ++done;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  remaining_ -= done;
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  // Clearing under the lock lets a late-waking worker with no indices in
  // this batch recognize it as already finished (fn == nullptr).
  batch_fn_ = nullptr;
}

void WorkerPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn;
    std::size_t count;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] { return shutdown_ || batch_id_ != seen; });
      if (shutdown_) return;
      seen = batch_id_;
      fn = batch_fn_;
      count = batch_count_;
    }
    // fn == nullptr: the batch finished (and was cleared) before this
    // worker woke up — only possible when it had no indices in it.
    if (fn == nullptr) continue;
    const std::size_t stride = workers_.size() + 1;
    std::size_t done = 0;
    for (std::size_t i = worker + 1; i < count; i += stride) {
      (*fn)(i);
      ++done;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    remaining_ -= done;
    if (remaining_ == 0) cv_done_.notify_all();
  }
}

}  // namespace topkmon
