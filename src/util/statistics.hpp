// Online and batch statistics used by the test suite and the benchmark
// harness: Welford accumulators (numerically stable mean/variance),
// empirical quantiles, and log-bucketed histograms for message-count
// concentration experiments (E2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace topkmon {

/// Numerically stable single-pass accumulator (Welford's algorithm).
class OnlineStats {
 public:
  /// Incorporates one observation.
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-reduction friendly; Chan et al.).
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples and answers quantile queries; O(n log n) on first
/// query after inserts (lazy sort), O(1) afterwards.
class Quantiles {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return samples_.size(); }

  /// Empirical q-quantile, q in [0,1], by linear interpolation between
  /// closest ranks. Requires at least one sample.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }

  /// Fraction of samples strictly greater than `threshold`.
  double tail_fraction_above(double threshold) const;

  const std::vector<double>& sorted_samples() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-bucket histogram over [lo, hi); values outside are clamped into
/// the first/last bucket. Used to visualize message-count distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::uint64_t total() const noexcept { return total_; }

  /// Renders a compact ASCII bar chart (one line per non-empty bucket).
  std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// N-th harmonic number H_n = sum_{i=1..n} 1/i; the expected number of
/// left-to-right maxima of a random permutation (lower-bound experiment E3).
double harmonic(std::uint64_t n) noexcept;

}  // namespace topkmon
