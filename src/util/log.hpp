// Minimal leveled logger. The simulator and monitors use TOPKMON_LOG for
// trace-level diagnostics that are compiled in but disabled by default;
// tests flip the level to Debug when diagnosing a failure.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace topkmon {

enum class LogLevel : int { Off = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Global log configuration (process-wide; the library is single-threaded
/// per simulation, so no synchronization is needed).
class Log {
 public:
  static LogLevel level() noexcept;
  static void set_level(LogLevel lvl) noexcept;

  /// Redirects output (default: std::clog). Pass nullptr to restore default.
  static void set_sink(std::ostream* sink) noexcept;

  static void write(LogLevel lvl, const std::string& msg);
  static const char* level_name(LogLevel lvl) noexcept;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, out_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace topkmon

/// Streams a log line if `lvl` is enabled, e.g.
///   TOPKMON_LOG(Info) << "reset at t=" << t;
#define TOPKMON_LOG(lvl)                                             \
  if (::topkmon::Log::level() < ::topkmon::LogLevel::lvl) {          \
  } else                                                             \
    ::topkmon::detail::LogLine(::topkmon::LogLevel::lvl)
