#include "util/log.hpp"

#include <iostream>

namespace topkmon {

namespace {
LogLevel g_level = LogLevel::Warn;
std::ostream* g_sink = nullptr;
}  // namespace

LogLevel Log::level() noexcept { return g_level; }
void Log::set_level(LogLevel lvl) noexcept { g_level = lvl; }
void Log::set_sink(std::ostream* sink) noexcept { g_sink = sink; }

const char* Log::level_name(LogLevel lvl) noexcept {
  switch (lvl) {
    case LogLevel::Off: return "OFF";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
  }
  return "?";
}

void Log::write(LogLevel lvl, const std::string& msg) {
  std::ostream& out = g_sink ? *g_sink : std::clog;
  out << "[" << level_name(lvl) << "] " << msg << "\n";
}

}  // namespace topkmon
