// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (stream generators, protocol
// coin flips) draws from an Rng instance seeded through SplitMix64, so a
// single top-level seed reproduces an entire experiment bit-for-bit.
// The generator is xoshiro256** (Blackman & Vigna), which is fast, has a
// 2^256-1 period and passes BigCrush; quality matters here because the
// MaximumProtocol analysis assumes independent Bernoulli(2^r/N) trials.
#pragma once

#include <array>
#include <iterator>
#include <cstdint>

#include "util/types.hpp"

namespace topkmon {

/// SplitMix64 step; used for seeding and for cheap stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG with convenience distributions used by the library.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform integer in [0, n) for n >= 1, via Lemire's unbiased method.
  std::uint64_t uniform_below(std::uint64_t n) noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exact Bernoulli(2^r / N) trial for power-of-two N = 2^log_n, r <= log_n.
  /// This is the only coin the paper's nodes are required to support
  /// ("perform Bernoulli trials with success probability 2^i/n"); it is
  /// exact (no floating point) by comparing log_n - r low bits to zero.
  bool bernoulli_pow2(std::uint32_t r, std::uint32_t log_n) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  double next_gaussian() noexcept;

  /// Derives an independent child generator; `stream_id` selects the child.
  /// Children with different ids are statistically independent.
  Rng derive(std::uint64_t stream_id) const noexcept;

  /// Full-state equality: two generators compare equal iff their future
  /// output sequences are identical. The differential equivalence harness
  /// uses this to prove a native role port consumed exactly the same coin
  /// flips as its lock-step twin.
  friend bool operator==(const Rng& a, const Rng& b) noexcept {
    return a.s_ == b.s_ &&
           a.has_cached_gaussian_ == b.has_cached_gaussian_ &&
           (!a.has_cached_gaussian_ ||
            a.cached_gaussian_ == b.cached_gaussian_);
  }
  friend bool operator!=(const Rng& a, const Rng& b) noexcept {
    return !(a == b);
  }

  /// Fisher-Yates shuffle of a random-access range.
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) noexcept {
    using Diff = typename std::iterator_traits<RandomIt>::difference_type;
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = uniform_below(i);
      using std::swap;
      swap(first[static_cast<Diff>(i - 1)], first[static_cast<Diff>(j)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace topkmon
