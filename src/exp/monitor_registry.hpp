// Name-indexed construction of every Top-k-Position monitor, so sweep
// grids and the experiment CLI can select algorithms declaratively
// ("topk_filter", "recompute", ...) instead of hard-coding factories in
// each experiment.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/monitor.hpp"

namespace topkmon::exp {

/// Instantiates the monitor registered under `name` for top-k size `k`.
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<MonitorBase> make_monitor(std::string_view name, std::size_t k);

/// True when `name` is a registered monitor.
bool is_known_monitor(std::string_view name) noexcept;

/// All registered monitor names, in a stable canonical order (the paper's
/// Algorithm 1 first, then baselines).
const std::vector<std::string>& all_monitor_names();

}  // namespace topkmon::exp
