// Name-indexed construction of every Top-k-Position monitor, so sweep
// grids, Scenario specs and the experiment CLI can select algorithms
// declaratively instead of hard-coding factories in each experiment.
//
// A monitor spec is `name` optionally followed by `?key=value,...`
// parameters, e.g.
//
//   "topk_filter"                 the paper's Algorithm 1
//   "topk_filter?nobeacon"        idle-beacon-suppression ablation
//   "slack?alpha=0.1"             B&O-style placement comparator
//   "slack?adaptive"              adaptive placement
//   "approx?eps=512"              ε-approximate variant
//   "multi_k?ks=2+8+16"           simultaneous k ∈ {2,8,16}
//
// Two factories exist: make_monitor yields the legacy lock-step
// MonitorBase; make_role_pair yields the role-separated deployment
// (CoordinatorAlgo + n NodeAlgos) used by run_scenario — native for
// every monitor except recompute, which stays LockstepAdapter-bridged
// as the adapter-path reference (pair.native tells which).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/monitor.hpp"
#include "core/roles.hpp"
#include "sim/cluster.hpp"

namespace topkmon::exp {

/// Instantiates the lock-step monitor described by `spec` for top-k size
/// `k`. Throws std::invalid_argument for unknown names or parameters.
std::unique_ptr<MonitorBase> make_monitor(std::string_view spec,
                                          std::size_t k);

/// A deployable role-separated monitor: one coordinator plus one node
/// algorithm per cluster node.
struct RolePair {
  std::unique_ptr<CoordinatorAlgo> coordinator;
  std::vector<std::unique_ptr<NodeAlgo>> nodes;
  /// True when the pair is a native event-driven implementation (runs
  /// under any NetworkSpec); false for LockstepAdapter bridges (instant
  /// only).
  bool native = false;
  /// The wrapped lock-step monitor for adapter pairs (else nullptr).
  const MonitorBase* lockstep = nullptr;
};

/// Instantiates the role-separated deployment described by `spec` on
/// `cluster`. Throws std::invalid_argument for unknown names/parameters.
RolePair make_role_pair(Cluster& cluster, std::string_view spec,
                        std::size_t k);

/// True when `spec`'s base name is a registered monitor.
bool is_known_monitor(std::string_view spec) noexcept;

/// Splits the deployment-level `shards=c` parameter out of a monitor spec
/// ("topk_filter?shards=4,nobeacon" -> {"topk_filter?nobeacon", 4}).
/// Returns shards == 0 when the parameter is absent, so callers can tell
/// "not given" from an explicit value; an explicit parameter always wins
/// over Scenario::shards. Throws std::invalid_argument for a malformed
/// or zero value. The remaining spec never reaches the monitor factories
/// with a `shards` key — sharding is a deployment property
/// (exp::run_sharded_scenario), not a monitor parameter.
std::pair<std::string, std::size_t> split_shards_param(std::string_view spec);

/// All registered monitor base names, in a stable canonical order (the
/// paper's Algorithm 1 first, then baselines).
const std::vector<std::string>& all_monitor_names();

/// Base names with a native role-separated implementation (usable under
/// non-instant NetworkSpecs).
const std::vector<std::string>& native_monitor_names();

}  // namespace topkmon::exp
