// Parallel execution engine for experiment sweeps.
//
// SweepRunner owns a persistent pool of worker threads and exposes two
// levels of API:
//
//   * parallel_for(count, fn) / map<T>(count, fn) — generic ordered
//     fan-out; jobs are claimed dynamically (atomic counter), results land
//     at their own index, so the output order is independent of thread
//     scheduling.
//   * run(trials) — executes expanded SweepGrid TrialSpecs and returns
//     RunResults in grid order.
//
// Each trial owns its own RNG seed (derived from grid coordinates, see
// sweep_grid.hpp) and builds its own cluster/streams, so parallel runs are
// bit-identical to serial runs. With jobs() == 1 everything executes
// inline on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runner.hpp"
#include "exp/sweep_grid.hpp"

namespace topkmon::exp {

/// Executes one TrialSpec synchronously: builds the monitor (registry) and
/// stream set, then drives run_monitor. Thread-safe (no shared state).
RunResult run_trial(const TrialSpec& spec);

class SweepRunner {
 public:
  /// `jobs` worker threads; 0 means std::thread::hardware_concurrency().
  /// With jobs == 1 no threads are spawned and work runs inline.
  explicit SweepRunner(std::size_t jobs = 0);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  std::size_t jobs() const noexcept { return jobs_; }

  /// Runs fn(i) for every i in [0, count), spread across the pool; blocks
  /// until all iterations finished. The first exception thrown by any
  /// iteration is rethrown on the calling thread (remaining iterations
  /// are drained, not cancelled mid-flight).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Ordered parallel map: out[i] = fn(i). T must be default-constructible.
  template <typename T, typename Fn>
  std::vector<T> map(std::size_t count, Fn&& fn) {
    std::vector<T> out(count);
    parallel_for(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Executes every trial and returns results in the order of `trials`.
  std::vector<RunResult> run(const std::vector<TrialSpec>& trials);

 private:
  void worker_loop();
  void drain_batch(std::uint64_t batch);

  std::size_t jobs_;
  std::vector<std::thread> workers_;

  // Current batch, guarded by mutex_ / signalled via cv_work_ and cv_done_.
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::size_t batch_count_ = 0;
  std::size_t next_index_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t batch_id_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace topkmon::exp
