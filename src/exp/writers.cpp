#include "exp/writers.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace topkmon::exp {

namespace {

/// A cell is emitted as a bare JSON number iff its full spelling matches
/// the JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
/// Anything looser (leading zeros like "007", trailing dots like "1.",
/// "inf", hex) would produce invalid JSON, so it stays a quoted string.
bool is_numeric_cell(const std::string& s) {
  std::size_t i = 0;
  const auto digits = [&] {
    const std::size_t start = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    return i > start;
  };
  if (i < s.size() && s[i] == '-') ++i;
  if (i >= s.size()) return false;
  if (s[i] == '0') {
    ++i;  // a leading zero must stand alone ("007" is not JSON)
  } else if (!digits()) {
    return false;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == s.size();
}

void json_escape(const std::string& s, std::ostream& out) {
  out << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(ch >> 4) & 0xF] << hex[ch & 0xF];
        } else {
          out << ch;
        }
    }
  }
  out << '"';
}

}  // namespace

bool write_csv(const Table& table, const std::string& path) {
  return table.write_csv(path);
}

void write_json(const Table& table, std::ostream& out) {
  out << "[\n";
  for (std::size_t r = 0; r < table.rows(); ++r) {
    const auto& row = table.row(r);
    out << "  {";
    for (std::size_t c = 0; c < table.cols(); ++c) {
      if (c) out << ", ";
      json_escape(table.header()[c], out);
      out << ": ";
      if (is_numeric_cell(row[c])) {
        out << row[c];
      } else {
        json_escape(row[c], out);
      }
    }
    out << (r + 1 < table.rows() ? "},\n" : "}\n");
  }
  out << "]\n";
}

bool write_json(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_json(table, out);
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// CSV reader
// ---------------------------------------------------------------------------

namespace {

/// Splits one logical CSV record starting at stream position; handles
/// quoted cells (including embedded newlines and "" escapes). Returns
/// nullopt at EOF before any content.
std::optional<std::vector<std::string>> read_csv_record(std::istream& in,
                                                        bool* malformed) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  bool any = false;
  int ch;
  while ((ch = in.get()) != std::char_traits<char>::eof()) {
    any = true;
    const char c = static_cast<char>(ch);
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          cell += '"';
          in.get();
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      if (!cell.empty()) {  // quote in the middle of a bare cell
        *malformed = true;
        return std::nullopt;
      }
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n') {
      cells.push_back(std::move(cell));
      return cells;
    } else if (c == '\r') {
      if (in.peek() == '\n') {
        in.get();
        cells.push_back(std::move(cell));
        return cells;  // CRLF record terminator
      }
      cell += c;  // a bare \r is cell content (the writer quotes it)
    } else {
      cell += c;
    }
  }
  if (in_quotes) {
    *malformed = true;
    return std::nullopt;
  }
  if (!any) return std::nullopt;
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

std::optional<Table> read_csv(std::istream& in) {
  bool malformed = false;
  auto header = read_csv_record(in, &malformed);
  if (!header || header->empty()) return std::nullopt;
  Table table(*header);
  for (;;) {
    auto record = read_csv_record(in, &malformed);
    if (malformed) return std::nullopt;
    if (!record) break;
    if (record->size() != table.cols()) return std::nullopt;
    table.add_row(std::move(*record));
  }
  return table;
}

std::optional<Table> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_csv(in);
}

// ---------------------------------------------------------------------------
// JSON reader (exactly the subset write_json produces: an array of flat
// objects whose values are strings or numbers)
// ---------------------------------------------------------------------------

namespace {

struct JsonParser {
  std::istream& in;
  bool ok = true;

  void skip_ws() {
    while (std::isspace(in.peek())) in.get();
  }

  bool expect(char want) {
    skip_ws();
    if (in.get() != want) {
      ok = false;
      return false;
    }
    return true;
  }

  std::optional<std::string> parse_string() {
    skip_ws();
    if (in.get() != '"') {
      ok = false;
      return std::nullopt;
    }
    std::string s;
    int ch;
    while ((ch = in.get()) != std::char_traits<char>::eof()) {
      const char c = static_cast<char>(ch);
      if (c == '"') return s;
      if (c == '\\') {
        const int esc = in.get();
        switch (esc) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            char hex[5] = {};
            for (int i = 0; i < 4; ++i) hex[i] = static_cast<char>(in.get());
            s += static_cast<char>(std::strtol(hex, nullptr, 16));
            break;
          }
          default:
            ok = false;
            return std::nullopt;
        }
      } else {
        s += c;
      }
    }
    ok = false;
    return std::nullopt;
  }

  /// Number values keep their textual spelling (the writer preserved it).
  std::optional<std::string> parse_value() {
    skip_ws();
    const int peek = in.peek();
    if (peek == '"') return parse_string();
    std::string s;
    while (std::isdigit(in.peek()) || in.peek() == '-' || in.peek() == '+' ||
           in.peek() == '.' || in.peek() == 'e' || in.peek() == 'E') {
      s += static_cast<char>(in.get());
    }
    if (s.empty()) ok = false;
    return s.empty() ? std::nullopt : std::optional<std::string>(s);
  }
};

}  // namespace

std::optional<Table> read_json(std::istream& in) {
  JsonParser p{in};
  if (!p.expect('[')) return std::nullopt;

  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  p.skip_ws();
  if (in.peek() == ']') {
    in.get();
    return std::nullopt;  // an empty array carries no header
  }

  for (;;) {
    if (!p.expect('{')) return std::nullopt;
    std::vector<std::string> keys;
    std::vector<std::string> values;
    p.skip_ws();
    if (in.peek() != '}') {
      for (;;) {
        auto key = p.parse_string();
        if (!key || !p.expect(':')) return std::nullopt;
        auto value = p.parse_value();
        if (!value) return std::nullopt;
        keys.push_back(std::move(*key));
        values.push_back(std::move(*value));
        p.skip_ws();
        if (in.peek() == ',') {
          in.get();
          continue;
        }
        break;
      }
    }
    if (!p.expect('}')) return std::nullopt;

    if (header.empty()) {
      header = keys;
    } else if (keys != header) {
      return std::nullopt;
    }
    rows.push_back(std::move(values));

    p.skip_ws();
    if (in.peek() == ',') {
      in.get();
      continue;
    }
    break;
  }
  if (!p.expect(']') || header.empty()) return std::nullopt;

  Table table(header);
  for (auto& r : rows) table.add_row(std::move(r));
  return table;
}

std::optional<Table> read_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_json(in);
}

}  // namespace topkmon::exp
