// Named experiment suites behind one CLI.
//
// Each paper experiment registers itself (TOPKMON_SUITE) into a global
// registry; the topkmon_bench binary looks suites up by name, hands them
// a SuiteContext (shared CLI options + the parallel SweepRunner + output
// plumbing) and runs them. ctx.emit() is the single exit point for result
// tables: it prints the aligned table and mirrors it to CSV and JSON
// under --out-dir.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sweep_runner.hpp"
#include "util/table.hpp"

namespace topkmon::exp {

/// Shared knobs parsed from the topkmon_bench command line.
struct SuiteOptions {
  std::uint64_t trials = 0;  ///< 0: keep the suite's default
  std::uint64_t steps = 0;   ///< 0: keep the suite's default
  std::uint64_t seed = 1;    ///< base seed
  std::size_t jobs = 1;      ///< worker threads (0: hardware concurrency)
  /// Per-scenario SimDriver tick-scan parallelism (0: hardware
  /// concurrency). Orthogonal to --jobs: jobs parallelizes across
  /// trials, workers inside one simulation. Outputs are byte-identical
  /// for every value (the parallel-tick determinism contract).
  std::size_t workers = 1;
  std::string out_dir;       ///< empty: don't write CSV/JSON artifacts
  /// Path to a previous BENCH_*.json; the perf suite diffs against it
  /// (Δ steps/sec, Δ allocs) and fails on regressions. Empty: no diff.
  std::string compare;

  std::uint64_t trials_or(std::uint64_t dflt) const {
    return trials ? trials : dflt;
  }
  std::uint64_t steps_or(std::uint64_t dflt) const {
    return steps ? steps : dflt;
  }
};

/// Everything a suite needs: options, the engine, and output sinks.
class SuiteContext {
 public:
  SuiteContext(SuiteOptions opts, SweepRunner& runner, std::ostream& out);

  const SuiteOptions& opts() const noexcept { return opts_; }
  SweepRunner& runner() noexcept { return runner_; }
  std::ostream& out() noexcept { return out_; }

  /// Prints `table` and, when --out-dir is set, writes `<dir>/<name>.csv`
  /// and `<dir>/<name>.json`.
  void emit(const Table& table, const std::string& name);

  /// Only the file half of emit(): mirrors `table` to CSV + JSON under
  /// --out-dir (no console print). For full-resolution companions of a
  /// decimated console table. No-op when --out-dir is unset.
  void emit_files(const Table& table, const std::string& name);

 private:
  SuiteOptions opts_;
  SweepRunner& runner_;
  std::ostream& out_;
};

using SuiteFn = void (*)(SuiteContext&);

struct SuiteInfo {
  std::string name;
  std::string description;
  SuiteFn fn = nullptr;
};

/// Global suite registry (populated by static registrars at load time).
class SuiteRegistry {
 public:
  static SuiteRegistry& instance();

  void add(SuiteInfo info);
  const SuiteInfo* find(const std::string& name) const;

  /// All suites in natural order (e1, e2, ..., e10, ..., micro).
  std::vector<SuiteInfo> sorted() const;

 private:
  std::vector<SuiteInfo> suites_;
};

/// Static-initialization hook used by TOPKMON_SUITE.
struct SuiteRegistrar {
  SuiteRegistrar(const char* name, const char* description, SuiteFn fn);
};

/// Defines and registers a suite function:
///   TOPKMON_SUITE(e7, "algorithms × workloads matrix") { ... use ctx ... }
#define TOPKMON_SUITE(id, desc)                                          \
  static void topkmon_suite_##id(::topkmon::exp::SuiteContext& ctx);     \
  static const ::topkmon::exp::SuiteRegistrar topkmon_suite_reg_##id{    \
      #id, desc, &topkmon_suite_##id};                                   \
  static void topkmon_suite_##id(::topkmon::exp::SuiteContext& ctx)

}  // namespace topkmon::exp
