// CSV and JSON emission (and re-ingestion) for experiment tables.
//
// CSV piggybacks on Table::write_csv; JSON serializes the table as an
// array of flat objects keyed by column name, with cells that parse as
// finite numbers emitted unquoted. The readers parse exactly what the
// writers produce (plus standard RFC-4180 quoting), enabling round-trip
// tests and downstream tooling that reloads result tables.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "util/table.hpp"

namespace topkmon::exp {

/// Writes `table` as CSV to `path`. Returns false if the file could not
/// be opened or written.
bool write_csv(const Table& table, const std::string& path);

/// Serializes `table` as a JSON array of objects (one per row).
void write_json(const Table& table, std::ostream& out);

/// Writes the JSON serialization to `path`; false on I/O failure.
bool write_json(const Table& table, const std::string& path);

/// Parses a CSV document (header + rows, RFC-4180 quoting) back into a
/// Table. Returns nullopt on malformed input (ragged rows, bad quoting).
std::optional<Table> read_csv(std::istream& in);
std::optional<Table> read_csv_file(const std::string& path);

/// Parses the JSON emitted by write_json back into a Table. Column order
/// is taken from the first object. Returns nullopt on malformed input or
/// on rows whose keys don't match the first row's.
std::optional<Table> read_json(std::istream& in);
std::optional<Table> read_json_file(const std::string& path);

}  // namespace topkmon::exp
