// Declarative experiment scenarios: one struct describes *everything* a
// single simulation needs — which monitor (registry spec string), which
// workload (StreamSpec, family settable by name), which network policy
// (NetworkSpec, parseable from a string), the problem size and the
// validation regime. run_scenario() is the single execution entry point:
// it builds the role-separated deployment, drives it with the SimDriver
// event loop, validates every step against the ground truth and returns
// the familiar RunResult.
//
// Under the default instant network this path is byte-identical to the
// legacy run_monitor() pipeline (native role implementations are
// coin-flip-compatible with their lock-step counterparts; everything else
// bridges through the LockstepAdapter). Non-instant networks require a
// native monitor ("topk_filter", "naive", "naive_chg") — the runner
// rejects adapter-backed monitors there with a clear error.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "sim/network_model.hpp"
#include "streams/factory.hpp"

namespace topkmon::exp {

struct Scenario {
  /// Monitor registry spec, e.g. "topk_filter" or "slack?alpha=0.1".
  std::string monitor = "topk_filter";

  /// Workload description; set `stream.family` directly or via
  /// with_stream_family().
  StreamSpec stream{};

  /// Delivery policy (see sim/network_model.hpp); default instant.
  NetworkSpec network{};

  std::size_t n = 16;         ///< number of nodes
  std::size_t k = 4;          ///< monitored top-k size
  std::size_t steps = 1'000;  ///< observation steps after initialization
  std::uint64_t seed = 42;    ///< cluster / stream / link randomness seed

  /// Per-step ground-truth check: kStrict (exact canonical set), kWeak
  /// (any valid set under ties), kOff (no checking; perf runs).
  RunConfig::Validation validation = RunConfig::Validation::kStrict;
  /// Additionally require the answer's rank *order* to match (only
  /// meaningful for the ordered monitor).
  bool validate_order = false;
  /// Record the full n × steps value matrix in RunResult::trace.
  bool record_trace = false;
  /// Record per-step message-count series in the CommStats.
  bool record_series = false;

  /// Propagate validation divergence as an exception (else it is recorded
  /// in RunResult::error_steps — the right mode for lossy networks).
  bool throw_on_error = true;

  /// Diagnostic / benchmark escape hatch: run the driver's legacy dense
  /// per-tick scan and dense observe loop instead of the activity-driven
  /// sparse path. Output-identical by contract (the sparse/dense
  /// equivalence tests enforce it); the e16 scale suite uses it as the
  /// before side of its speedup measurements.
  bool dense_loop = false;

  /// Tick-scan parallelism of the SimDriver: 1 (default) runs the serial
  /// loop, W > 1 shards the per-tick node scan across W threads, 0 means
  /// one per hardware thread. Output is byte-identical for every value
  /// (the parallel-tick determinism contract; enforced by tests and the
  /// CI workers-determinism smoke). Values > 1 require a native monitor
  /// (every registry spec except "recompute"; see
  /// exp::native_monitor_names()) — run_scenario rejects adapter-backed
  /// monitors with a clear error, like it does for non-instant networks.
  std::size_t workers = 1;

  /// Shard count of the two-tier hierarchical deployment
  /// (core/root_merge.hpp): 1 (default) runs the single-coordinator path,
  /// c > 1 partitions the nodes across c shard coordinators under a root
  /// coordinator and routes the run through run_sharded_scenario —
  /// RunResult::comm then counts the node<->shard tier and
  /// RunResult::root_comm the shard<->root tier. A `?shards=c` monitor
  /// parameter (e.g. "topk_filter?shards=4") overrides this field. Only
  /// the monitors with a sharded deployment ("topk_filter", "naive",
  /// "naive_chg" — a narrower set than the native role ports) support
  /// c > 1.
  /// record_series works at any c: the per-shard series are merged
  /// element-wise into one deployment-level per-step series (every shard
  /// begins the same steps, so the series align by index).
  std::size_t shards = 1;

  /// Fault-injection plan (sim/fault_plan.hpp spec grammar): "none"
  /// (default) runs fault-free and byte-identical to a scenario without
  /// the field; anything else schedules crash / recover / join / leave /
  /// dynamic-k events — plus the adversarial degradations lag / stale /
  /// mute / heal — against the run. Requires a native monitor
  /// ("topk_filter", "naive", "naive_chg"); composes with any network
  /// policy and with workers > 1 (schedules derive from the run seed like
  /// link randomness, so results stay byte-reproducible). With join
  /// events the cluster/streams/ground truth are provisioned at the
  /// plan's total_nodes(); RunResult::recovery_ticks then reports the
  /// re-convergence window of every event (for a degradation: the error
  /// tail until the monitor quarantines the node or the heal lands).
  /// Sharded deployments (shards > 1) accept churn and dynamic-k plans —
  /// the deployment carves the schedule into per-shard plans and the
  /// root renegotiates quotas across outages — and reject degradations
  /// (lag/stale/mute/heal require shards == 1).
  std::string faults = "none";

  /// Optional per-step observer called after each validated step with the
  /// step index, the true values and the coordinator's current answer
  /// (custom metrics such as regret; not part of the declarative core).
  std::function<void(TimeStep, const std::vector<Value>&,
                     const std::vector<NodeId>&)>
      on_step;

  // -- fluent helpers --------------------------------------------------------
  /// Sets the monitor registry spec (e.g. "topk_filter?nobeacon").
  Scenario& with_monitor(std::string spec) {
    monitor = std::move(spec);
    return *this;
  }
  Scenario& with_stream_family(std::string_view family) {
    // Param-aware: bare names keep their legacy meaning, and wrapper
    // specs such as "sparse?rate=0.01,inner=random_walk" patch the
    // current StreamSpec in place.
    stream = parse_stream_spec(family, stream);
    return *this;
  }
  /// Parses and sets the delivery policy (e.g. "delay=2,jitter=3").
  Scenario& with_network(std::string_view spec) {
    network = parse_network_spec(spec);
    return *this;
  }
  /// Sets the fault plan spec (e.g. "churn?every=200,down=3,count=5,
  /// outage=80"); validated at run time against n / k / seed.
  Scenario& with_faults(std::string spec) {
    faults = std::move(spec);
    return *this;
  }

  /// The equivalent legacy RunConfig (used to key RunResult rows).
  RunConfig run_config() const {
    RunConfig cfg;
    cfg.n = n;
    cfg.k = k;
    cfg.steps = steps;
    cfg.seed = seed;
    cfg.validation = validation;
    cfg.validate_order = validate_order;
    cfg.record_trace = record_trace;
    cfg.record_series = record_series;
    return cfg;
  }
};

/// Runs the scenario end to end and returns its result. Throws
/// std::invalid_argument for malformed scenarios (unknown monitor/family,
/// k out of range, non-native monitor on a non-instant network or with
/// workers > 1) and std::logic_error on validation divergence when
/// throw_on_error is set. Thread-safe: concurrent calls share no state
/// (each scenario builds its own cluster/driver), which is how the
/// SweepRunner's trial parallelism composes with per-scenario workers.
RunResult run_scenario(const Scenario& scenario);

/// Runs the scenario on a two-tier sharded deployment (core/root_merge.hpp)
/// with `scenario.shards` shard coordinators (a `?shards=c` monitor
/// parameter wins over the field; run_scenario dispatches here whenever
/// the effective count is > 1). Callable directly with shards == 1 too —
/// the root tier is then inert and the output is message-for-message and
/// answer-for-answer identical to run_scenario's monolithic path (pinned
/// by tests/core/test_shard_equivalence.cpp). Exactness at c > 1 is
/// guaranteed under instant delivery with pairwise-distinct values;
/// non-instant networks run supported-but-degraded, like the monolithic
/// native monitors (error steps are recorded, use kWeak +
/// throw_on_error=false). Membership churn and dynamic-k fault plans are
/// supported at any c (whole-shard outages drain the dead shard's quota
/// at the root and regrant it on recovery); adversarial degradations are
/// not. Throws std::invalid_argument for non-native monitors, plans with
/// degradations, or shards > n.
RunResult run_sharded_scenario(const Scenario& scenario);

}  // namespace topkmon::exp
