#include "exp/sweep_grid.hpp"

#include <stdexcept>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace topkmon::exp {

std::uint64_t derive_trial_seed(std::uint64_t base_seed, std::size_t n,
                                std::size_t k, std::size_t monitor_index,
                                std::size_t family_index,
                                std::size_t trial) noexcept {
  // Fold each coordinate into a SplitMix64 chain; the odd constants keep
  // zero-valued coordinates from collapsing onto each other.
  std::uint64_t state = base_seed ^ 0x9E3779B97F4A7C15ull;
  state += 0xBF58476D1CE4E5B9ull * (static_cast<std::uint64_t>(n) + 1);
  splitmix64(state);
  state += 0x94D049BB133111EBull * (static_cast<std::uint64_t>(k) + 1);
  splitmix64(state);
  state +=
      0xD6E8FEB86659FD93ull * (static_cast<std::uint64_t>(monitor_index) + 1);
  splitmix64(state);
  state +=
      0xA0761D6478BD642Full * (static_cast<std::uint64_t>(family_index) + 1);
  splitmix64(state);
  state += 0xE7037ED1A0B428DBull * (static_cast<std::uint64_t>(trial) + 1);
  return splitmix64(state);
}

std::size_t SweepGrid::size() const noexcept {
  std::size_t cells = 0;
  for (const auto n : ns) {
    for (const auto k : ks) {
      if (k == 0 || k > n) continue;
      ++cells;
    }
  }
  return cells * monitors.size() * families.size() * networks.size() *
         workers.size() * shards.size() * faults.size() * trials;
}

std::vector<TrialSpec> SweepGrid::expand() const {
  std::vector<TrialSpec> out;
  out.reserve(size());
  for (const auto n : ns) {
    for (const auto k : ks) {
      if (k == 0 || k > n) continue;
      for (std::size_t mi = 0; mi < monitors.size(); ++mi) {
        for (std::size_t fi = 0; fi < families.size(); ++fi) {
          for (std::size_t ni = 0; ni < networks.size(); ++ni) {
            for (std::size_t wi = 0; wi < workers.size(); ++wi) {
              for (std::size_t si = 0; si < shards.size(); ++si) {
                for (std::size_t pi = 0; pi < faults.size(); ++pi) {
                  for (std::size_t t = 0; t < trials; ++t) {
                    TrialSpec spec;
                    spec.cfg.n = n;
                    spec.cfg.k = k;
                    spec.cfg.steps = steps;
                    // Neither the network, the workers, the shards nor
                    // the faults axis enters the seed: same-cell trials
                    // under different policies/shard counts/fault plans
                    // are paired replays, and different worker counts
                    // are byte-identical replays by the determinism
                    // contract.
                    spec.cfg.seed =
                        derive_trial_seed(base_seed, n, k, mi, fi, t);
                    spec.cfg.validation = validation;
                    spec.cfg.record_trace = record_trace;
                    spec.stream = stream_template;
                    spec.stream.family = families[fi];
                    spec.network = networks[ni];
                    spec.monitor = monitors[mi];
                    spec.workers = workers[wi];
                    spec.shards = shards[si];
                    spec.faults = faults[pi];
                    spec.trial = t;
                    spec.ordinal = out.size();
                    spec.throw_on_error = throw_on_error;
                    out.push_back(std::move(spec));
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

void SweepGrid::set_axis(const std::string& name,
                         const std::vector<std::string>& values) {
  if (values.empty()) {
    throw std::invalid_argument("sweep axis '" + name + "': no values");
  }
  const auto parse_sizes = [&]() {
    std::vector<std::size_t> out;
    out.reserve(values.size());
    for (const auto& v : values) {
      const auto u = to_u64(v);
      if (!u) {
        throw std::invalid_argument("sweep axis '" + name +
                                    "': expected an unsigned integer, got '" +
                                    v + "'");
      }
      out.push_back(static_cast<std::size_t>(*u));
    }
    return out;
  };
  if (name == "n") {
    ns = parse_sizes();
  } else if (name == "k") {
    ks = parse_sizes();
  } else if (name == "monitor") {
    monitors = values;
  } else if (name == "family") {
    families.clear();
    for (const auto& v : values) families.push_back(family_from_name(v));
  } else if (name == "network") {
    networks.clear();
    for (const auto& v : values) networks.push_back(parse_network_spec(v));
  } else if (name == "workers") {
    workers = parse_sizes();
  } else if (name == "shards") {
    shards = parse_sizes();
  } else if (name == "faults") {
    faults = values;
  } else {
    static const std::vector<std::string> known{
        "n", "k", "monitor", "family", "network", "workers", "shards",
        "faults"};
    std::string msg = "unknown sweep axis '" + name + "'";
    const std::vector<std::string> close = closest_matches(name, known);
    if (!close.empty()) {
      msg += "; did you mean";
      for (std::size_t i = 0; i < close.size(); ++i) {
        msg += (i == 0 ? " '" : i + 1 == close.size() ? " or '" : ", '");
        msg += close[i];
        msg += '\'';
      }
      msg += '?';
    }
    msg += " (axes: n, k, monitor, family, network, workers, shards, "
           "faults)";
    throw std::invalid_argument(msg);
  }
}

}  // namespace topkmon::exp
