#include "exp/monitor_registry.hpp"

#include <stdexcept>
#include <utility>

#include "util/strings.hpp"

#include "core/approx_monitor.hpp"
#include "core/dominance_monitor.hpp"
#include "core/filter_roles.hpp"
#include "core/lockstep_adapter.hpp"
#include "core/dominance_roles.hpp"
#include "core/multik_monitor.hpp"
#include "core/multik_roles.hpp"
#include "core/naive_monitor.hpp"
#include "core/naive_roles.hpp"
#include "core/ordered_roles.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "core/slack_roles.hpp"
#include "core/recompute_monitor.hpp"
#include "core/slack_monitor.hpp"
#include "core/topk_monitor.hpp"

namespace topkmon::exp {

namespace {

struct Param {
  std::string key;
  std::string value;  ///< empty for bare flags ("?adaptive")
};

struct ParsedSpec {
  std::string name;
  std::vector<Param> params;
};

ParsedSpec parse_spec(std::string_view spec) {
  ParsedSpec out;
  const std::size_t q = spec.find('?');
  out.name = std::string(spec.substr(0, q));
  if (q == std::string_view::npos) return out;
  for (const std::string_view item : split(spec.substr(q + 1), ',')) {
    const std::size_t eq = item.find('=');
    Param p;
    p.key = std::string(item.substr(0, eq));
    if (eq != std::string_view::npos) {
      p.value = std::string(item.substr(eq + 1));
    }
    out.params.push_back(std::move(p));
  }
  return out;
}

[[noreturn]] void bad_param(const ParsedSpec& spec, const Param& p) {
  throw std::invalid_argument("monitor '" + spec.name +
                              "': unknown or malformed parameter '" + p.key +
                              (p.value.empty() ? "" : "=" + p.value) + "'");
}

bool parse_flag(const Param& p) {
  if (p.value.empty() || p.value == "1" || p.value == "true") return true;
  if (p.value == "0" || p.value == "false") return false;
  throw std::invalid_argument("monitor parameter '" + p.key +
                              "': expected a boolean, got '" + p.value + "'");
}

std::int64_t parse_int(const ParsedSpec& spec, const Param& p) {
  const auto out = to_i64(p.value);
  if (!out) bad_param(spec, p);
  return *out;
}

double parse_double(const ParsedSpec& spec, const Param& p) {
  const auto out = to_double(p.value);
  if (!out) bad_param(spec, p);
  return *out;
}

/// Shared grammar of the specs that accept only `nobeacon` (used by both
/// the lock-step and the native topk_filter factories, so the two accept
/// exactly the same strings).
bool parse_nobeacon_only(const ParsedSpec& spec) {
  bool nobeacon = false;
  for (const auto& p : spec.params) {
    if (p.key == "nobeacon") nobeacon = parse_flag(p);
    else bad_param(spec, p);
  }
  return nobeacon;
}

/// Rejects any parameter (specs without a parameter grammar).
void expect_no_params(const ParsedSpec& spec) {
  for (const auto& p : spec.params) bad_param(spec, p);
}

/// "2+8+16" -> {2, 8, 16}.
std::vector<std::size_t> parse_ks(const ParsedSpec& spec, const Param& p) {
  std::vector<std::size_t> out;
  for (const std::string_view item : split(p.value, '+')) {
    const auto v = to_u64(item);
    if (!v) bad_param(spec, p);
    out.push_back(static_cast<std::size_t>(*v));
  }
  if (out.empty()) bad_param(spec, p);
  return out;
}

std::unique_ptr<MonitorBase> build_monitor(const ParsedSpec& spec,
                                           std::size_t k) {
  if (spec.name == "topk_filter") {
    TopkFilterMonitor::Options o;
    o.suppress_idle_broadcasts = parse_nobeacon_only(spec);
    return std::make_unique<TopkFilterMonitor>(k, o);
  }
  if (spec.name == "ordered") {
    OrderedTopkMonitor::Options o;
    o.suppress_idle_broadcasts = parse_nobeacon_only(spec);
    return std::make_unique<OrderedTopkMonitor>(k, o);
  }
  if (spec.name == "slack") {
    SlackMonitor::Options o;
    for (const auto& p : spec.params) {
      if (p.key == "alpha") o.alpha = parse_double(spec, p);
      else if (p.key == "adaptive") o.adaptive = parse_flag(p);
      else bad_param(spec, p);
    }
    return std::make_unique<SlackMonitor>(k, o);
  }
  if (spec.name == "dominance") {
    expect_no_params(spec);
    return std::make_unique<DominanceMonitor>(k);
  }
  if (spec.name == "recompute") {
    RecomputeMonitor::Options o;
    o.suppress_idle_broadcasts = parse_nobeacon_only(spec);
    return std::make_unique<RecomputeMonitor>(k, o);
  }
  if (spec.name == "naive" || spec.name == "naive_chg") {
    expect_no_params(spec);
    NaiveMonitor::Options o;
    o.send_on_change_only = (spec.name == "naive_chg");
    return std::make_unique<NaiveMonitor>(k, o);
  }
  if (spec.name == "approx") {
    ApproxTopkMonitor::Options o;
    for (const auto& p : spec.params) {
      if (p.key == "eps") o.epsilon = parse_int(spec, p);
      else if (p.key == "nobeacon") o.suppress_idle_broadcasts = parse_flag(p);
      else bad_param(spec, p);
    }
    return std::make_unique<ApproxTopkMonitor>(k, o);
  }
  if (spec.name == "multi_k") {
    std::vector<std::size_t> ks{k};
    MultiKMonitor::Options o;
    for (const auto& p : spec.params) {
      if (p.key == "ks") ks = parse_ks(spec, p);
      else if (p.key == "nobeacon") o.suppress_idle_broadcasts = parse_flag(p);
      else bad_param(spec, p);
    }
    return std::make_unique<MultiKMonitor>(std::move(ks), o);
  }
  throw std::invalid_argument("unknown monitor '" + spec.name + "'");
}

}  // namespace

std::unique_ptr<MonitorBase> make_monitor(std::string_view spec,
                                          std::size_t k) {
  return build_monitor(parse_spec(spec), k);
}

RolePair make_role_pair(Cluster& cluster, std::string_view spec,
                        std::size_t k) {
  const ParsedSpec parsed = parse_spec(spec);
  RolePair pair;

  if (parsed.name == "topk_filter") {
    FilterCoordinator::Options o;
    for (const auto& p : parsed.params) {
      if (p.key == "nobeacon") o.suppress_idle_broadcasts = parse_flag(p);
      // Native-roles-only knob (the lock-step bridge has no FILTERRESET
      // retry loop to damp): seeded exponential backoff on defensive
      // resets, for the lossy-network and churn suites.
      else if (p.key == "backoff") o.reset_backoff = parse_flag(p);
      // Adversarial-degradation suspicion machinery (lag/stale/mute
      // plans; see core/filter_roles.hpp).
      else if (p.key == "suspect") o.suspect = parse_flag(p);
      // Warm-standby assignment replay on recovery/join (one
      // kFilterAssign instead of the resync handshake).
      else if (p.key == "replay") o.replay = parse_flag(p);
      else bad_param(parsed, p);
    }
    pair.coordinator = std::make_unique<FilterCoordinator>(k, o);
    pair.nodes.reserve(cluster.size());
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      pair.nodes.push_back(std::make_unique<FilterNode>(k));
    }
    pair.native = true;
    return pair;
  }

  if (parsed.name == "naive" || parsed.name == "naive_chg") {
    // Native-roles-only knob: the suspicion machinery for adversarial
    // degradations (silence scan / audit probes; core/naive_roles.hpp).
    bool suspect = false;
    for (const auto& p : parsed.params) {
      if (p.key == "suspect") suspect = parse_flag(p);
      else bad_param(parsed, p);
    }
    const bool chg = (parsed.name == "naive_chg");
    pair.coordinator =
        std::make_unique<NaiveCoordinator>(k, chg, /*sharded=*/false, suspect);
    pair.nodes.reserve(cluster.size());
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      pair.nodes.push_back(std::make_unique<NaiveNode>(chg));
    }
    pair.native = true;
    return pair;
  }

  if (parsed.name == "approx") {
    // The ε-approximate monitor is the filter monitor with half-widened
    // boundaries (FilterCoordinator::Options::approx), so it composes
    // with the same native-only knobs as topk_filter.
    FilterCoordinator::Options o;
    o.approx = true;
    for (const auto& p : parsed.params) {
      if (p.key == "eps") o.epsilon = parse_int(parsed, p);
      else if (p.key == "nobeacon") o.suppress_idle_broadcasts = parse_flag(p);
      else if (p.key == "backoff") o.reset_backoff = parse_flag(p);
      else if (p.key == "suspect") o.suspect = parse_flag(p);
      else if (p.key == "replay") o.replay = parse_flag(p);
      else bad_param(parsed, p);
    }
    pair.coordinator = std::make_unique<FilterCoordinator>(k, o);
    pair.nodes.reserve(cluster.size());
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      pair.nodes.push_back(std::make_unique<FilterNode>(k, o.epsilon));
    }
    pair.native = true;
    return pair;
  }

  if (parsed.name == "slack") {
    SlackCoordinator::Options o;
    for (const auto& p : parsed.params) {
      if (p.key == "alpha") o.alpha = parse_double(parsed, p);
      else if (p.key == "adaptive") o.adaptive = parse_flag(p);
      // TEST-ONLY: off-by-`nudge` boundary mutation for the differential
      // harness's self-test (tests/core/test_port_mutant.cpp). Never a
      // documented monitor parameter.
      else if (p.key == "nudge") o.debug_boundary_nudge = parse_int(parsed, p);
      else bad_param(parsed, p);
    }
    pair.coordinator = std::make_unique<SlackCoordinator>(k, o);
    pair.nodes.reserve(cluster.size());
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      pair.nodes.push_back(std::make_unique<SlackNode>());
    }
    pair.native = true;
    return pair;
  }

  if (parsed.name == "dominance") {
    expect_no_params(parsed);
    pair.coordinator = std::make_unique<DominanceCoordinator>(k);
    pair.nodes.reserve(cluster.size());
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      pair.nodes.push_back(std::make_unique<DominanceNode>());
    }
    pair.native = true;
    return pair;
  }

  if (parsed.name == "ordered") {
    OrderedCoordinator::Options o;
    o.suppress_idle_broadcasts = parse_nobeacon_only(parsed);
    pair.coordinator = std::make_unique<OrderedCoordinator>(k, o);
    pair.nodes.reserve(cluster.size());
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      pair.nodes.push_back(std::make_unique<OrderedNode>(k));
    }
    pair.native = true;
    return pair;
  }

  if (parsed.name == "multi_k") {
    std::vector<std::size_t> ks{k};
    MultiKCoordinator::Options o;
    for (const auto& p : parsed.params) {
      if (p.key == "ks") ks = parse_ks(parsed, p);
      else if (p.key == "nobeacon") o.suppress_idle_broadcasts = parse_flag(p);
      else bad_param(parsed, p);
    }
    pair.coordinator = std::make_unique<MultiKCoordinator>(ks, o);
    pair.nodes.reserve(cluster.size());
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      pair.nodes.push_back(std::make_unique<MultiKNode>(ks));
    }
    pair.native = true;
    return pair;
  }

  // Everything else bridges the lock-step implementation (instant only).
  auto adapter =
      std::make_unique<LockstepAdapter>(build_monitor(parsed, k), cluster);
  pair.lockstep = adapter->lockstep();
  pair.coordinator = std::move(adapter);
  pair.nodes.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    pair.nodes.push_back(std::make_unique<LockstepNode>());
  }
  pair.native = false;
  return pair;
}

std::pair<std::string, std::size_t> split_shards_param(std::string_view spec) {
  const ParsedSpec parsed = parse_spec(spec);
  std::size_t shards = 0;
  std::string rest = parsed.name;
  char sep = '?';
  for (const auto& p : parsed.params) {
    if (p.key == "shards") {
      const auto v = to_u64(p.value);
      if (!v || *v == 0) {
        throw std::invalid_argument("monitor '" + parsed.name +
                                    "': shards expects a positive integer, "
                                    "got '" +
                                    p.value + "'");
      }
      shards = static_cast<std::size_t>(*v);
      continue;
    }
    rest += sep;
    sep = ',';
    rest += p.key;
    if (!p.value.empty()) {
      rest += '=';
      rest += p.value;
    }
  }
  return {std::move(rest), shards};
}

bool is_known_monitor(std::string_view spec) noexcept {
  const std::size_t q = spec.find('?');
  const std::string_view name = spec.substr(0, q);
  for (const auto& known : all_monitor_names()) {
    if (known == name) return true;
  }
  return false;
}

const std::vector<std::string>& all_monitor_names() {
  static const std::vector<std::string> names{
      "topk_filter", "ordered", "slack",     "dominance", "recompute",
      "naive",       "naive_chg", "approx",  "multi_k"};
  return names;
}

const std::vector<std::string>& native_monitor_names() {
  // Every monitor except the recompute baseline has a native role port;
  // recompute stays a lock-step bridge (its per-step global re-sort has
  // no event-driven decomposition worth maintaining).
  static const std::vector<std::string> names{
      "topk_filter", "ordered", "slack",  "dominance",
      "naive",       "naive_chg", "approx", "multi_k"};
  return names;
}

}  // namespace topkmon::exp
