#include "exp/monitor_registry.hpp"

#include <stdexcept>

#include "core/approx_monitor.hpp"
#include "core/dominance_monitor.hpp"
#include "core/naive_monitor.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "core/recompute_monitor.hpp"
#include "core/slack_monitor.hpp"
#include "core/topk_monitor.hpp"

namespace topkmon::exp {

std::unique_ptr<MonitorBase> make_monitor(std::string_view name,
                                          std::size_t k) {
  if (name == "topk_filter") return std::make_unique<TopkFilterMonitor>(k);
  if (name == "ordered") return std::make_unique<OrderedTopkMonitor>(k);
  if (name == "slack") return std::make_unique<SlackMonitor>(k);
  if (name == "dominance") return std::make_unique<DominanceMonitor>(k);
  if (name == "recompute") return std::make_unique<RecomputeMonitor>(k);
  if (name == "naive") return std::make_unique<NaiveMonitor>(k);
  if (name == "naive_chg") {
    NaiveMonitor::Options o;
    o.send_on_change_only = true;
    return std::make_unique<NaiveMonitor>(k, o);
  }
  if (name == "approx") return std::make_unique<ApproxTopkMonitor>(k);
  throw std::invalid_argument("unknown monitor '" + std::string(name) + "'");
}

bool is_known_monitor(std::string_view name) noexcept {
  for (const auto& known : all_monitor_names()) {
    if (known == name) return true;
  }
  return false;
}

const std::vector<std::string>& all_monitor_names() {
  static const std::vector<std::string> names{
      "topk_filter", "ordered", "slack",     "dominance",
      "recompute",   "naive",   "naive_chg", "approx"};
  return names;
}

}  // namespace topkmon::exp
