#include "exp/suite.hpp"

#include <algorithm>
#include <cctype>
#include <iostream>

#include "exp/writers.hpp"

namespace topkmon::exp {

namespace {

/// Natural string order: digit runs compare numerically, so e2 < e10.
bool natural_less(const std::string& a, const std::string& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const unsigned char ca = static_cast<unsigned char>(a[i]);
    const unsigned char cb = static_cast<unsigned char>(b[j]);
    if (std::isdigit(ca) && std::isdigit(cb)) {
      std::size_t ia = i, jb = j;
      while (ia < a.size() && std::isdigit(static_cast<unsigned char>(a[ia])))
        ++ia;
      while (jb < b.size() && std::isdigit(static_cast<unsigned char>(b[jb])))
        ++jb;
      const std::string da = a.substr(i, ia - i);
      const std::string db = b.substr(j, jb - j);
      if (da.size() != db.size()) return da.size() < db.size();
      if (da != db) return da < db;
      i = ia;
      j = jb;
    } else {
      if (ca != cb) return ca < cb;
      ++i;
      ++j;
    }
  }
  return a.size() < b.size();
}

}  // namespace

SuiteContext::SuiteContext(SuiteOptions opts, SweepRunner& runner,
                           std::ostream& out)
    : opts_(std::move(opts)), runner_(runner), out_(out) {}

void SuiteContext::emit(const Table& table, const std::string& name) {
  table.print(out_);
  emit_files(table, name);
}

void SuiteContext::emit_files(const Table& table, const std::string& name) {
  if (opts_.out_dir.empty()) return;
  const std::string base = opts_.out_dir + "/" + name;
  if (write_csv(table, base + ".csv")) {
    out_ << "[csv] " << base << ".csv\n";
  } else {
    std::cerr << "[csv] failed to write " << base << ".csv\n";
  }
  if (write_json(table, base + ".json")) {
    out_ << "[json] " << base << ".json\n";
  } else {
    std::cerr << "[json] failed to write " << base << ".json\n";
  }
}

SuiteRegistry& SuiteRegistry::instance() {
  static SuiteRegistry registry;
  return registry;
}

void SuiteRegistry::add(SuiteInfo info) { suites_.push_back(std::move(info)); }

const SuiteInfo* SuiteRegistry::find(const std::string& name) const {
  for (const auto& s : suites_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<SuiteInfo> SuiteRegistry::sorted() const {
  std::vector<SuiteInfo> out = suites_;
  std::sort(out.begin(), out.end(), [](const SuiteInfo& a, const SuiteInfo& b) {
    return natural_less(a.name, b.name);
  });
  return out;
}

SuiteRegistrar::SuiteRegistrar(const char* name, const char* description,
                               SuiteFn fn) {
  SuiteRegistry::instance().add({name, description, fn});
}

}  // namespace topkmon::exp
