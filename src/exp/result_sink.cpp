#include "exp/result_sink.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/statistics.hpp"

namespace topkmon::exp {

ResultSink::ResultSink(std::vector<std::string> key_columns,
                       std::vector<std::string> metric_columns)
    : key_columns_(std::move(key_columns)),
      metric_columns_(std::move(metric_columns)) {
  if (metric_columns_.empty()) {
    throw std::invalid_argument("ResultSink requires at least one metric");
  }
}

void ResultSink::add(const std::vector<std::string>& key, std::size_t ordinal,
                     const std::vector<double>& metrics) {
  if (key.size() != key_columns_.size()) {
    throw std::invalid_argument("ResultSink::add key arity mismatch");
  }
  if (metrics.size() != metric_columns_.size()) {
    throw std::invalid_argument("ResultSink::add metric arity mismatch");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = cells_[key];
  if (!cell.emplace(ordinal, metrics).second) {
    throw std::invalid_argument("ResultSink::add duplicate ordinal for cell");
  }
}

std::size_t ResultSink::cells() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cells_.size();
}

Table ResultSink::build(bool with_stddev, int prec) const {
  std::vector<std::string> header = key_columns_;
  for (const auto& m : metric_columns_) {
    header.push_back(m);
    if (with_stddev) header.push_back(m + "_sd");
  }
  Table table(std::move(header));

  std::lock_guard<std::mutex> lock(mutex_);

  // Emit cells in grid order: sort by the smallest ordinal each cell saw.
  std::vector<const decltype(cells_)::value_type*> ordered;
  ordered.reserve(cells_.size());
  for (const auto& kv : cells_) ordered.push_back(&kv);
  std::sort(ordered.begin(), ordered.end(), [](const auto* a, const auto* b) {
    return a->second.begin()->first < b->second.begin()->first;
  });

  for (const auto* kv : ordered) {
    std::vector<OnlineStats> stats(metric_columns_.size());
    for (const auto& [ordinal, samples] : kv->second) {
      (void)ordinal;  // the ordered map already fixed the fold order
      for (std::size_t m = 0; m < samples.size(); ++m) stats[m].add(samples[m]);
    }
    std::vector<std::string> row = kv->first;
    for (const auto& s : stats) {
      row.push_back(fmt(s.mean(), prec));
      if (with_stddev) row.push_back(fmt(s.stddev(), prec));
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table ResultSink::to_table(int prec) const { return build(true, prec); }

Table ResultSink::to_table_mean_only(int prec) const {
  return build(false, prec);
}

}  // namespace topkmon::exp
