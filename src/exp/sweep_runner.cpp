#include "exp/sweep_runner.hpp"

#include "exp/scenario.hpp"

namespace topkmon::exp {

RunResult run_trial(const TrialSpec& spec) {
  Scenario sc;
  sc.monitor = spec.monitor;
  sc.stream = spec.stream;
  sc.network = spec.network;
  sc.n = spec.cfg.n;
  sc.k = spec.cfg.k;
  sc.steps = spec.cfg.steps;
  sc.seed = spec.cfg.seed;
  sc.validation = spec.cfg.validation;
  sc.validate_order = spec.cfg.validate_order;
  sc.record_trace = spec.cfg.record_trace;
  sc.record_series = spec.cfg.record_series;
  sc.throw_on_error = spec.throw_on_error;
  sc.workers = spec.workers;
  sc.shards = spec.shards;
  sc.faults = spec.faults;
  return run_scenario(sc);
}

SweepRunner::SweepRunner(std::size_t jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    jobs_ = std::max(1u, std::thread::hardware_concurrency());
  }
  // Workers beyond the calling thread; jobs == 1 stays purely inline.
  for (std::size_t i = 1; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void SweepRunner::drain_batch(std::uint64_t batch) {
  // Claim one index at a time; stop as soon as the batch is exhausted or a
  // newer batch replaced it (a straggler must never claim indices that
  // belong to a batch it did not see). Trials are coarse-grained, so the
  // per-claim lock is noise next to the simulation work.
  for (;;) {
    std::size_t i;
    const std::function<void(std::size_t)>* fn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (batch_id_ != batch || next_index_ >= batch_count_) return;
      i = next_index_++;
      fn = batch_fn_;
    }
    try {
      (*fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) cv_done_.notify_all();
  }
}

void SweepRunner::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  std::uint64_t batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_fn_ = &fn;
    batch_count_ = count;
    next_index_ = 0;
    remaining_ = count;
    first_error_ = nullptr;
    batch = ++batch_id_;
  }
  cv_work_.notify_all();

  drain_batch(batch);  // the calling thread participates

  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  batch_fn_ = nullptr;
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void SweepRunner::worker_loop() {
  std::uint64_t seen_batch = 0;
  for (;;) {
    std::uint64_t batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [&] {
        return shutdown_ || (batch_fn_ != nullptr && batch_id_ != seen_batch);
      });
      if (shutdown_) return;
      seen_batch = batch = batch_id_;
    }
    drain_batch(batch);
  }
}

std::vector<RunResult> SweepRunner::run(const std::vector<TrialSpec>& trials) {
  std::vector<RunResult> results(trials.size());
  parallel_for(trials.size(),
               [&](std::size_t i) { results[i] = run_trial(trials[i]); });
  return results;
}

}  // namespace topkmon::exp
