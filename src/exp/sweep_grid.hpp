// Declarative cartesian-product experiment grids.
//
// A SweepGrid describes axes (n, k, monitor, stream family, trial index)
// and expands into a flat list of TrialSpecs — one independent simulation
// each. Every trial derives its RNG seed deterministically from the base
// seed and its grid coordinates (NOT from its position in the expansion),
// so the same grid produces bit-identical trials no matter how it is
// sliced, reordered, or executed in parallel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "sim/network_model.hpp"
#include "streams/factory.hpp"

namespace topkmon::exp {

/// One independent simulation: a monitor (by registry spec) driven over a
/// freshly built stream set on a given network policy. Embarrassingly
/// parallel by construction — each trial owns its own RNG seed and
/// touches no shared state.
struct TrialSpec {
  RunConfig cfg;                     ///< n/k/steps/seed/validation
  StreamSpec stream;                 ///< workload description
  NetworkSpec network{};             ///< delivery policy (default instant)
  std::string monitor{"topk_filter"};  ///< exp::make_monitor spec
  std::size_t workers = 1;           ///< SimDriver tick-scan parallelism
  std::size_t shards = 1;            ///< shard coordinators (Scenario::shards)
  std::string faults{"none"};        ///< fault plan spec (Scenario::faults)
  std::size_t trial = 0;             ///< repetition index within its cell
  std::size_t ordinal = 0;           ///< position in the expanded grid
  bool throw_on_error = true;        ///< propagate validation divergence
};

/// Order-independent seed derivation: mixes the base seed with the trial's
/// grid coordinates through SplitMix64. Exposed for tests and custom grids.
std::uint64_t derive_trial_seed(std::uint64_t base_seed, std::size_t n,
                                std::size_t k, std::size_t monitor_index,
                                std::size_t family_index,
                                std::size_t trial) noexcept;

/// Cartesian product description:
/// ns × ks × monitors × families × networks × workers × trials.
struct SweepGrid {
  std::vector<std::size_t> ns{16};
  std::vector<std::size_t> ks{4};
  std::vector<std::string> monitors{"topk_filter"};
  std::vector<StreamFamily> families{StreamFamily::kRandomWalk};
  /// Network policies to range over. Deliberately NOT mixed into the
  /// per-trial seed: the same cell under two policies replays the same
  /// streams and protocol coins, so delay/drop sweeps are paired
  /// comparisons.
  std::vector<NetworkSpec> networks{NetworkSpec{}};
  /// SimDriver tick-scan parallelism values to range over. Like networks,
  /// NOT mixed into the seed — outputs are workers-invariant by the
  /// parallel-tick determinism contract, so this axis exists purely for
  /// scaling measurements (wall clock per W) and determinism checks.
  std::vector<std::size_t> workers{1};
  /// Shard-coordinator counts to range over (Scenario::shards). Like
  /// networks and workers, NOT mixed into the per-trial seed: the same
  /// cell at different shard counts replays the same streams, so
  /// message-cost comparisons across c are paired.
  std::vector<std::size_t> shards{1};
  /// Fault plans to range over (Scenario::faults specs). Like networks,
  /// NOT mixed into the per-trial seed: a churned run is a paired replay
  /// of its fault-free twin (same streams, same protocol coins), so
  /// error/recovery deltas attribute entirely to the injected faults.
  std::vector<std::string> faults{"none"};
  std::size_t trials = 1;
  std::size_t steps = 1'000;
  std::uint64_t base_seed = 1;

  /// Template for the per-trial StreamSpec; `family` is overwritten with
  /// the axis value, everything else (walk params, ...) is copied through.
  StreamSpec stream_template{};

  RunConfig::Validation validation = RunConfig::Validation::kStrict;
  bool record_trace = false;
  bool throw_on_error = true;

  /// Number of trials the expansion will produce.
  std::size_t size() const noexcept;

  /// Expands the grid into per-trial specs, ordered n-major then k,
  /// monitor, family, network, workers, shards, faults, trial
  /// (deterministic). Cells where k > n are skipped so mixed n/k axes
  /// stay valid.
  std::vector<TrialSpec> expand() const;

  /// Sets one axis by name from string values ("n", "k", "monitor",
  /// "family", "network", "workers", "shards", "faults") — the declarative
  /// counterpart of assigning the fields above, for CLIs and config
  /// readers. Throws std::invalid_argument for an empty value list, a
  /// malformed value, or an unknown axis name — the unknown-name message
  /// carries a did-you-mean hint (same edit-distance helper as the CLI's
  /// suite lookup).
  void set_axis(const std::string& name, const std::vector<std::string>& values);
};

}  // namespace topkmon::exp
