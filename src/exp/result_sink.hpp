// Thread-safe aggregation of trial results into mean/stddev rows.
//
// Trials report named metrics under a row key (the grid cell's labels,
// e.g. {"32", "4", "topk_filter", "random_walk"}). The sink is safe to
// feed from any thread AND produces bit-identical aggregates regardless
// of arrival order: samples are stored under their trial ordinal and only
// folded into Welford accumulators — in ordinal order — when the table is
// materialized. This is what makes `--jobs 8` output byte-identical to
// `--jobs 1`.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace topkmon::exp {

class ResultSink {
 public:
  /// `key_columns` label the grouping columns; `metric_columns` name the
  /// per-trial measurements (each yields a mean and stddev output column).
  ResultSink(std::vector<std::string> key_columns,
             std::vector<std::string> metric_columns);

  /// Records one trial's metrics (aligned with metric_columns) for the
  /// cell `key` (aligned with key_columns). `ordinal` must be unique per
  /// (key, trial) — use TrialSpec::ordinal or the trial index. Thread-safe.
  void add(const std::vector<std::string>& key, std::size_t ordinal,
           const std::vector<double>& metrics);

  /// Number of distinct cells seen so far.
  std::size_t cells() const;

  /// Materializes `key columns + {metric, metric_sd}...` rows. Cells are
  /// ordered by their smallest ordinal (i.e. grid order); samples within
  /// a cell are folded in ordinal order. `prec` controls the fixed-point
  /// formatting of the metric cells.
  Table to_table(int prec = 2) const;

  /// Like to_table(), but with a single `mean` column per metric (no
  /// stddev) — for single-trial sweeps where stddev is noise.
  Table to_table_mean_only(int prec = 2) const;

 private:
  Table build(bool with_stddev, int prec) const;

  std::vector<std::string> key_columns_;
  std::vector<std::string> metric_columns_;

  mutable std::mutex mutex_;
  // key -> (ordinal -> metric samples); both maps ordered for determinism.
  std::map<std::vector<std::string>, std::map<std::size_t, std::vector<double>>>
      cells_;
};

}  // namespace topkmon::exp
