#include "exp/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/driver.hpp"
#include "core/ground_truth_tracker.hpp"
#include "core/lockstep_adapter.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "core/root_merge.hpp"
#include "exp/monitor_registry.hpp"
#include "sim/cluster.hpp"
#include "util/strings.hpp"

namespace topkmon::exp {


RunResult run_scenario(const Scenario& sc) {
  // Deployment-level dispatch: an explicit `?shards=c` monitor parameter
  // wins over Scenario::shards; an effective count > 1 routes through the
  // two-tier sharded runner. `?shards=1` is stripped and runs the
  // monolithic path (identical output either way; the monolithic path
  // additionally supports record_series).
  const auto [stripped_monitor, shards_param] = split_shards_param(sc.monitor);
  const std::size_t shard_count = shards_param != 0 ? shards_param : sc.shards;
  if (shard_count > 1) {
    Scenario sharded = sc;
    sharded.monitor = stripped_monitor;
    sharded.shards = shard_count;
    return run_sharded_scenario(sharded);
  }
  if (shards_param != 0) {
    Scenario mono = sc;
    mono.monitor = stripped_monitor;
    mono.shards = 1;
    return run_scenario(mono);
  }
  if (sc.k == 0 || sc.k > sc.n) {
    throw std::invalid_argument("run_scenario: k out of range");
  }

  const auto wall_start = std::chrono::steady_clock::now();

  auto streams = make_stream_set(sc.stream, sc.n, sc.seed);
  Cluster cluster(sc.n, sc.seed, sc.network);
  RolePair pair = make_role_pair(cluster, sc.monitor, sc.k);
  if (!pair.native && !sc.network.is_instant()) {
    throw std::invalid_argument(
        "run_scenario: monitor '" + sc.monitor +
        "' has no native role implementation and cannot run on network '" +
        sc.network.name() + "' (native: topk_filter, naive, naive_chg)");
  }
  const std::size_t workers =
      sc.workers != 0
          ? sc.workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (!pair.native && workers > 1) {
    throw std::invalid_argument(
        "run_scenario: monitor '" + sc.monitor +
        "' has no native role implementation and cannot run with workers > 1 "
        "(native: topk_filter, naive, naive_chg)");
  }
  if (sc.record_series) cluster.stats().enable_series();

  const RunConfig cfg = sc.run_config();
  RunResult result;
  result.config = cfg;
  result.network = sc.network.name();
  if (sc.record_trace) result.trace.emplace(sc.n, sc.steps + 1);

  // Validation shares the legacy runner's core (incremental ground truth);
  // the ordered-rank check applies when the adapter wraps the ordered
  // monitor.
  GroundTruthTracker truth(sc.n, sc.k);
  const bool track = cfg.validation != RunConfig::Validation::kOff;
  const auto* ordered =
      sc.validate_order
          ? dynamic_cast<const OrderedTopkMonitor*>(pair.lockstep)
          : nullptr;
  const std::string detail = " (network " + sc.network.name() + ")";
  const auto check = [&](TimeStep t) {
    check_answer_step(truth, pair.coordinator->topk(), ordered, cfg,
                      pair.coordinator->name(), detail, t, &result,
                      sc.throw_on_error);
  };

  SimDriver driver(cluster, *pair.coordinator, pair.nodes, pair.native,
                   workers);
  driver.set_dense_loop(sc.dense_loop);
  // Two observation paths producing identical values and an identical
  // changed-id list:
  //  * quiet-capable stream sets (the sparse wrapper family) advance
  //    through the activity interface — untouched nodes cost one counter
  //    decrement, nothing is materialized;
  //  * everything else uses the batched lookahead plus a flat
  //    previous-value compare (contiguous, so the scan streams through
  //    two arrays instead of striding the NodeRuntime structs).
  // Either way, per-node work beyond the change test happens only for
  // nodes whose value moved — identical values land in identical
  // cluster/tracker/trace state, byte-equivalent to a dense write loop.
  const bool quiet_streams = streams.quiet_capable();
  if (!quiet_streams) streams.plan_steps(sc.steps + 1);
  std::vector<Value> values(sc.n, 0);  // mirrors the (all-zero) cluster
  std::vector<Value> incoming(sc.n);
  std::vector<NodeId> changed;
  changed.reserve(sc.n);

  const auto observe = [&](TimeStep t) {
    if (quiet_streams) {
      streams.advance_all_active(values, changed);
      for (const NodeId id : changed) {
        cluster.set_value(id, values[id]);
        if (track) truth.set_value(id, values[id]);
      }
    } else {
      streams.advance_all(incoming);
      changed.clear();
      for (NodeId id = 0; id < sc.n; ++id) {
        const Value v = incoming[id];
        if (v != values[id]) {
          changed.push_back(id);
          cluster.set_value(id, v);
          if (track) truth.set_value(id, v);
        }
      }
      values.swap(incoming);
    }
    if (result.trace.has_value()) {
      for (NodeId id = 0; id < sc.n; ++id) result.trace->at(t, id) = values[id];
    }
  };

  // Time 0: first observations + initialization.
  cluster.stats().begin_step(0);
  observe(0);
  driver.initialize();
  check(0);
  ++result.steps_executed;
  if (sc.on_step) sc.on_step(0, values, pair.coordinator->topk());
  result.init_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Steps 1..steps.
  for (TimeStep t = 1; t <= sc.steps; ++t) {
    cluster.stats().begin_step(t);
    observe(t);
    driver.step(t, changed);
    check(t);
    ++result.steps_executed;
    if (sc.on_step) sc.on_step(t, values, pair.coordinator->topk());
  }

  result.monitor_name = std::string(pair.coordinator->name());
  result.comm = cluster.stats();
  result.monitor = pair.coordinator->monitor_stats();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

RunResult run_sharded_scenario(const Scenario& sc) {
  if (sc.k == 0 || sc.k > sc.n) {
    throw std::invalid_argument("run_sharded_scenario: k out of range");
  }
  const auto [spec, shards_param] = split_shards_param(sc.monitor);
  const std::size_t shards = shards_param != 0 ? shards_param : sc.shards;
  if (shards == 0 || shards > sc.n) {
    throw std::invalid_argument(
        "run_sharded_scenario: need 1 <= shards <= n");
  }
  if (sc.record_series && shards > 1) {
    throw std::invalid_argument(
        "run_sharded_scenario: record_series requires shards == 1 "
        "(per-shard clusters cannot merge per-step series)");
  }

  // Sharded deployments exist for the three native monitors only; parse
  // the (shards-stripped) spec with the same grammar the registry uses.
  ShardedSpec dspec;
  {
    const std::size_t q = spec.find('?');
    const std::string name = spec.substr(0, q);
    const std::string_view params =
        q == std::string::npos ? std::string_view{}
                               : std::string_view(spec).substr(q + 1);
    if (name == "topk_filter") {
      dspec.monitor = ShardedSpec::Monitor::kFilter;
      for (const std::string_view item : split(params, ',')) {
        if (item == "nobeacon" || item == "nobeacon=1" ||
            item == "nobeacon=true") {
          dspec.suppress_idle_broadcasts = true;
        } else if (item == "nobeacon=0" || item == "nobeacon=false") {
          dspec.suppress_idle_broadcasts = false;
        } else {
          throw std::invalid_argument("monitor 'topk_filter': unknown or "
                                      "malformed parameter '" +
                                      std::string(item) + "'");
        }
      }
    } else if (name == "naive" && params.empty()) {
      dspec.monitor = ShardedSpec::Monitor::kNaive;
    } else if (name == "naive_chg" && params.empty()) {
      dspec.monitor = ShardedSpec::Monitor::kNaiveChg;
    } else {
      throw std::invalid_argument(
          "run_sharded_scenario: monitor '" + spec +
          "' has no sharded deployment (native: topk_filter, naive, "
          "naive_chg)");
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();

  auto streams = make_stream_set(sc.stream, sc.n, sc.seed);

  dspec.n = sc.n;
  dspec.k = sc.k;
  dspec.shards = shards;
  dspec.seed = sc.seed;
  dspec.network = sc.network;
  dspec.workers =
      sc.workers != 0
          ? sc.workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  dspec.dense_loop = sc.dense_loop;
  ShardedDeployment dep(dspec);
  if (sc.record_series) dep.shard_cluster(0).stats().enable_series();

  const RunConfig cfg = sc.run_config();
  RunResult result;
  result.config = cfg;
  result.network = sc.network.name();
  if (sc.record_trace) result.trace.emplace(sc.n, sc.steps + 1);

  GroundTruthTracker truth(sc.n, sc.k);
  const bool track = cfg.validation != RunConfig::Validation::kOff;
  const std::string detail = " (network " + sc.network.name() + ", shards " +
                             std::to_string(shards) + ")";
  const auto check = [&](TimeStep t) {
    check_answer_step(truth, dep.topk(), /*ordered=*/nullptr, cfg, dep.name(),
                      detail, t, &result, sc.throw_on_error);
  };
  const auto begin_step = [&](TimeStep t) {
    for (std::size_t s = 0; s < dep.shards(); ++s) {
      dep.shard_cluster(s).stats().begin_step(t);
    }
  };

  // Same two observation paths as run_scenario, with the value writes
  // routed through the deployment (global id -> owning shard cluster).
  const bool quiet_streams = streams.quiet_capable();
  if (!quiet_streams) streams.plan_steps(sc.steps + 1);
  std::vector<Value> values(sc.n, 0);
  std::vector<Value> incoming(sc.n);
  std::vector<NodeId> changed;
  changed.reserve(sc.n);

  const auto observe = [&](TimeStep t) {
    if (quiet_streams) {
      streams.advance_all_active(values, changed);
      for (const NodeId id : changed) {
        dep.set_value(id, values[id]);
        if (track) truth.set_value(id, values[id]);
      }
    } else {
      streams.advance_all(incoming);
      changed.clear();
      for (NodeId id = 0; id < sc.n; ++id) {
        const Value v = incoming[id];
        if (v != values[id]) {
          changed.push_back(id);
          dep.set_value(id, v);
          if (track) truth.set_value(id, v);
        }
      }
      values.swap(incoming);
    }
    if (result.trace.has_value()) {
      for (NodeId id = 0; id < sc.n; ++id) result.trace->at(t, id) = values[id];
    }
  };

  // Time 0: first observations + two-tier initialization (the bootstrap
  // renegotiation establishes the root boundary before step 1).
  begin_step(0);
  observe(0);
  dep.initialize();
  check(0);
  ++result.steps_executed;
  if (sc.on_step) sc.on_step(0, values, dep.topk());
  result.init_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  for (TimeStep t = 1; t <= sc.steps; ++t) {
    begin_step(t);
    observe(t);
    dep.step(t, changed);
    check(t);
    ++result.steps_executed;
    if (sc.on_step) sc.on_step(t, values, dep.topk());
  }

  result.monitor_name = std::string(dep.name());
  result.comm = dep.node_shard_comm();
  result.root_comm = dep.shard_root_comm();
  result.monitor = dep.monitor_totals();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace topkmon::exp
