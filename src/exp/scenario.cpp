#include "exp/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/driver.hpp"
#include "core/ground_truth_tracker.hpp"
#include "core/lockstep_adapter.hpp"
#include "core/ordered_roles.hpp"
#include "core/ordered_topk_monitor.hpp"
#include "core/root_merge.hpp"
#include "exp/monitor_registry.hpp"
#include "sim/cluster.hpp"
#include "sim/fault_plan.hpp"
#include "util/strings.hpp"

namespace topkmon::exp {

namespace {

/// The registry's native-capable specs, joined for rejection messages —
/// derived from native_monitor_names() so new role ports never leave a
/// stale hand-written list behind.
std::string native_monitor_list() {
  std::string out;
  for (const auto& name : native_monitor_names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

RunResult run_scenario(const Scenario& sc) {
  // Deployment-level dispatch: an explicit `?shards=c` monitor parameter
  // wins over Scenario::shards; an effective count > 1 routes through the
  // two-tier sharded runner. `?shards=1` is stripped and runs the
  // monolithic path (identical output either way; the monolithic path
  // additionally supports record_series).
  const auto [stripped_monitor, shards_param] = split_shards_param(sc.monitor);
  const std::size_t shard_count = shards_param != 0 ? shards_param : sc.shards;
  if (shard_count > 1) {
    Scenario sharded = sc;
    sharded.monitor = stripped_monitor;
    sharded.shards = shard_count;
    return run_sharded_scenario(sharded);
  }
  if (shards_param != 0) {
    Scenario mono = sc;
    mono.monitor = stripped_monitor;
    mono.shards = 1;
    return run_scenario(mono);
  }
  if (sc.k == 0 || sc.k > sc.n) {
    throw std::invalid_argument("run_scenario: k out of range");
  }

  // Fault plan: validated up front so provisioning (cluster, streams,
  // ground truth) accounts for joining nodes. An empty plan ("none")
  // leaves every allocation and every RNG stream exactly as before —
  // fault-free runs stay byte-identical.
  const FaultPlan plan(sc.faults, sc.n, sc.k, sc.seed);
  const bool faulty = !plan.empty();
  const std::size_t N = faulty ? plan.total_nodes() : sc.n;

  const auto wall_start = std::chrono::steady_clock::now();

  auto streams = make_stream_set(sc.stream, N, sc.seed);
  Cluster cluster(N, sc.seed, sc.network);
  RolePair pair = make_role_pair(cluster, sc.monitor, sc.k);
  if (!pair.native && !sc.network.is_instant()) {
    throw std::invalid_argument(
        "run_scenario: monitor '" + sc.monitor +
        "' has no native role implementation and cannot run on network '" +
        sc.network.name() + "' (native: " + native_monitor_list() + ")");
  }
  if (!pair.native && faulty) {
    throw std::invalid_argument(
        "run_scenario: monitor '" + sc.monitor +
        "' has no native role implementation and cannot run under fault "
        "plan '" + sc.faults + "' (native: " + native_monitor_list() + ")");
  }
  const std::size_t workers =
      sc.workers != 0
          ? sc.workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (!pair.native && workers > 1) {
    throw std::invalid_argument(
        "run_scenario: monitor '" + sc.monitor +
        "' has no native role implementation and cannot run with workers > 1 "
        "(native: " + native_monitor_list() + ")");
  }
  if (sc.record_series) cluster.stats().enable_series();

  const RunConfig cfg = sc.run_config();
  RunResult result;
  result.config = cfg;
  result.network = sc.network.name();
  if (sc.record_trace) result.trace.emplace(N, sc.steps + 1);

  // Validation shares the legacy runner's core (incremental ground truth);
  // the ordered-rank check applies when the adapter wraps the ordered
  // monitor. The tracker's k is fixed at construction, so a dynamic-k
  // event re-emplaces it (and re-feeds the value mirror).
  std::optional<GroundTruthTracker> truth(std::in_place, N, sc.k);
  const bool track = cfg.validation != RunConfig::Validation::kOff;
  const auto* ordered_lockstep =
      sc.validate_order
          ? dynamic_cast<const OrderedTopkMonitor*>(pair.lockstep)
          : nullptr;
  const auto* ordered_native =
      sc.validate_order
          ? dynamic_cast<const OrderedCoordinator*>(pair.coordinator.get())
          : nullptr;
  const std::string detail = " (network " + sc.network.name() + ")";
  const auto check = [&](TimeStep t) {
    const std::vector<NodeId>* claimed_order =
        ordered_lockstep != nullptr   ? &ordered_lockstep->ordered_topk()
        : ordered_native != nullptr ? &ordered_native->ordered_topk()
                                    : nullptr;
    check_answer_step(*truth, pair.coordinator->topk(), claimed_order, cfg,
                      pair.coordinator->name(), detail, t, &result,
                      sc.throw_on_error);
  };

  SimDriver driver(cluster, *pair.coordinator, pair.nodes, pair.native,
                   workers);
  driver.set_dense_loop(sc.dense_loop);

  // Down-node bookkeeping mirroring the driver's alive bits at step
  // granularity: ids provisioned for a later join start down (transport
  // and ground truth both exclude them until their join event fires).
  std::vector<char> down(N, 0);
  if (faulty) {
    driver.set_fault_plan(&plan);
    for (NodeId id = sc.n; id < N; ++id) {
      down[id] = 1;
      cluster.net().set_node_down(id);
      if (track) truth->set_value(id, kMinusInf);
    }
  }
  // Two observation paths producing identical values and an identical
  // changed-id list:
  //  * quiet-capable stream sets (the sparse wrapper family) advance
  //    through the activity interface — untouched nodes cost one counter
  //    decrement, nothing is materialized;
  //  * everything else uses the batched lookahead plus a flat
  //    previous-value compare (contiguous, so the scan streams through
  //    two arrays instead of striding the NodeRuntime structs).
  // Either way, per-node work beyond the change test happens only for
  // nodes whose value moved — identical values land in identical
  // cluster/tracker/trace state, byte-equivalent to a dense write loop.
  const bool quiet_streams = streams.quiet_capable();
  if (!quiet_streams) streams.plan_steps(sc.steps + 1);
  std::vector<Value> values(N, 0);  // mirrors the (all-zero) cluster
  std::vector<Value> incoming(N);
  std::vector<NodeId> changed;
  changed.reserve(N);

  // Down nodes keep streaming into the values[] mirror (their stream RNG
  // must stay in lock-step with a fault-free run) but write neither the
  // cluster nor the ground truth — a dark node's moves are invisible
  // until recovery syncs its latest value back in.
  const auto observe = [&](TimeStep t) {
    if (quiet_streams) {
      streams.advance_all_active(values, changed);
      for (const NodeId id : changed) {
        if (down[id]) continue;
        cluster.set_value(id, values[id]);
        if (track) truth->set_value(id, values[id]);
      }
    } else {
      streams.advance_all(incoming);
      changed.clear();
      for (NodeId id = 0; id < N; ++id) {
        const Value v = incoming[id];
        if (v != values[id] && !down[id]) {
          changed.push_back(id);
          cluster.set_value(id, v);
          if (track) truth->set_value(id, v);
        }
      }
      values.swap(incoming);
    }
    if (result.trace.has_value()) {
      for (NodeId id = 0; id < N; ++id) result.trace->at(t, id) = values[id];
    }
  };

  // Scenario-side mirror of the fault schedule: the driver fires the
  // events inside step(t)'s settle; this cursor applies their ground-truth
  // and value-sync effects at the same step, and opens a recovery window
  // per burst — each erroring step extends the window's entries in
  // result.recovery_ticks until the answer stops diverging (or the next
  // burst takes over).
  std::size_t next_event = 0;
  std::size_t win_begin = 0;
  std::size_t win_end = 0;
  std::uint64_t win_tick = 0;
  bool win_open = false;
  std::size_t cur_k = sc.k;
  if (faulty) result.recovery_ticks.assign(plan.events().size(), 0);

  const auto apply_events = [&](TimeStep t) {
    const std::size_t first = next_event;
    const auto& events = plan.events();
    while (next_event < events.size() && events[next_event].step == t) {
      const FaultEvent& ev = events[next_event];
      switch (ev.kind) {
        case FaultEvent::Kind::kCrash:
        case FaultEvent::Kind::kLeave:
          down[ev.node] = 1;
          if (track) truth->set_value(ev.node, kMinusInf);
          break;
        case FaultEvent::Kind::kRecover:
          down[ev.node] = 0;
          cluster.set_value(ev.node, values[ev.node]);
          if (track) truth->set_value(ev.node, values[ev.node]);
          break;
        case FaultEvent::Kind::kJoin:
          for (std::size_t i = 0; i < ev.count; ++i) {
            const NodeId id = ev.node + static_cast<NodeId>(i);
            down[id] = 0;
            cluster.set_value(id, values[id]);
            if (track) truth->set_value(id, values[id]);
          }
          break;
        case FaultEvent::Kind::kSetK:
          cur_k = ev.count;
          if (track) {
            truth.emplace(N, cur_k);
            for (NodeId id = 0; id < N; ++id) {
              truth->set_value(id, down[id] ? kMinusInf : values[id]);
            }
          }
          break;
        case FaultEvent::Kind::kLag:
        case FaultEvent::Kind::kStale:
        case FaultEvent::Kind::kMute:
        case FaultEvent::Kind::kHeal:
          // Degradations touch neither the truth nor the value mirror (the
          // node is up and observing; only its wire behaviour changes) —
          // but they do open a recovery window below, so the error tail
          // the monitor accrues until it quarantines / heals is charged to
          // the event in result.recovery_ticks.
          break;
      }
      ++next_event;
    }
    if (next_event != first) {
      win_begin = first;
      win_end = next_event;
      win_tick = driver.now();
      win_open = true;
    }
  };

  // Time 0: first observations + initialization.
  cluster.stats().begin_step(0);
  observe(0);
  driver.initialize();
  check(0);
  ++result.steps_executed;
  if (sc.on_step) sc.on_step(0, values, pair.coordinator->topk());
  result.init_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Steps 1..steps.
  for (TimeStep t = 1; t <= sc.steps; ++t) {
    cluster.stats().begin_step(t);
    observe(t);
    if (faulty) apply_events(t);
    const std::uint64_t errors_before = result.error_steps;
    driver.step(t, changed);
    check(t);
    if (win_open && result.error_steps != errors_before) {
      const std::uint64_t w = driver.now() - win_tick;
      for (std::size_t i = win_begin; i < win_end; ++i) {
        result.recovery_ticks[i] = w;
      }
    }
    ++result.steps_executed;
    if (sc.on_step) sc.on_step(t, values, pair.coordinator->topk());
  }

  result.monitor_name = std::string(pair.coordinator->name());
  result.comm = cluster.stats();
  result.monitor = pair.coordinator->monitor_stats();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

RunResult run_sharded_scenario(const Scenario& sc) {
  if (sc.k == 0 || sc.k > sc.n) {
    throw std::invalid_argument("run_sharded_scenario: k out of range");
  }
  // Sharded deployments accept membership churn and dynamic-k plans (the
  // deployment carves the schedule into per-shard plans; a whole-shard
  // outage drains its quota at the root via the under-fill fixpoint) and
  // reject adversarial degradations: the lag/stale/mute held-send
  // machinery is per-driver state that cannot survive shard rebuilds.
  const FaultPlan plan(sc.faults, sc.n, sc.k, sc.seed);
  const bool faulty = !plan.empty();
  if (plan.has_degradation()) {
    throw std::invalid_argument(
        "run_sharded_scenario: fault plan '" + sc.faults +
        "' contains adversarial degradations; sharded deployments support "
        "churn and k plans (lag/stale/mute/heal require shards == 1)");
  }
  // Provision for joining blocks exactly like the monolithic runner: ids
  // [sc.n, N) exist from the start (streams, trace, truth, shard
  // clusters) but start down.
  const std::size_t N = faulty ? plan.total_nodes() : sc.n;
  const auto [spec, shards_param] = split_shards_param(sc.monitor);
  const std::size_t shards = shards_param != 0 ? shards_param : sc.shards;
  if (shards == 0 || shards > sc.n) {
    throw std::invalid_argument(
        "run_sharded_scenario: need 1 <= shards <= n");
  }

  // Sharded deployments exist for the three native monitors only; parse
  // the (shards-stripped) spec with the same grammar the registry uses.
  ShardedSpec dspec;
  {
    const std::size_t q = spec.find('?');
    const std::string name = spec.substr(0, q);
    const std::string_view params =
        q == std::string::npos ? std::string_view{}
                               : std::string_view(spec).substr(q + 1);
    if (name == "topk_filter") {
      dspec.monitor = ShardedSpec::Monitor::kFilter;
      for (const std::string_view item : split(params, ',')) {
        if (item == "nobeacon" || item == "nobeacon=1" ||
            item == "nobeacon=true") {
          dspec.suppress_idle_broadcasts = true;
        } else if (item == "nobeacon=0" || item == "nobeacon=false") {
          dspec.suppress_idle_broadcasts = false;
        } else {
          throw std::invalid_argument("monitor 'topk_filter': unknown or "
                                      "malformed parameter '" +
                                      std::string(item) + "'");
        }
      }
    } else if (name == "naive" && params.empty()) {
      dspec.monitor = ShardedSpec::Monitor::kNaive;
    } else if (name == "naive_chg" && params.empty()) {
      dspec.monitor = ShardedSpec::Monitor::kNaiveChg;
    } else {
      throw std::invalid_argument(
          "run_sharded_scenario: monitor '" + spec +
          "' has no sharded deployment (native: topk_filter, naive, "
          "naive_chg)");
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();

  auto streams = make_stream_set(sc.stream, N, sc.seed);

  dspec.n = N;
  dspec.k = sc.k;
  dspec.shards = shards;
  dspec.seed = sc.seed;
  dspec.network = sc.network;
  dspec.workers =
      sc.workers != 0
          ? sc.workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  dspec.dense_loop = sc.dense_loop;
  if (faulty) dspec.faults = &plan;
  ShardedDeployment dep(dspec);
  if (sc.record_series) {
    // Every shard cluster begins the same observation steps, so the
    // per-shard series align by index and node_shard_comm's accumulate
    // merges them into one deployment-level per-step series.
    for (std::size_t s = 0; s < dep.shards(); ++s) {
      dep.shard_cluster(s).stats().enable_series();
    }
  }

  const RunConfig cfg = sc.run_config();
  RunResult result;
  result.config = cfg;
  result.network = sc.network.name();
  if (sc.record_trace) result.trace.emplace(N, sc.steps + 1);

  std::optional<GroundTruthTracker> truth(std::in_place, N, sc.k);
  const bool track = cfg.validation != RunConfig::Validation::kOff;
  const std::string detail = " (network " + sc.network.name() + ", shards " +
                             std::to_string(shards) + ")";
  const auto check = [&](TimeStep t) {
    check_answer_step(*truth, dep.topk(), /*ordered=*/nullptr, cfg, dep.name(),
                      detail, t, &result, sc.throw_on_error);
  };
  const auto begin_step = [&](TimeStep t) {
    for (std::size_t s = 0; s < dep.shards(); ++s) {
      dep.shard_cluster(s).stats().begin_step(t);
    }
  };

  // Down-node bookkeeping mirroring the shard drivers' alive bits at step
  // granularity: ids provisioned for a later join start down (the
  // deployment marks their transports down; the ground truth excludes
  // them until their join event fires).
  std::vector<char> down(N, 0);
  if (faulty) {
    for (NodeId id = sc.n; id < N; ++id) {
      down[id] = 1;
      if (track) truth->set_value(id, kMinusInf);
    }
  }

  // Same two observation paths as run_scenario, with the value writes
  // routed through the deployment (global id -> owning shard cluster).
  // Down nodes keep streaming into the values[] mirror but write neither
  // the shard clusters nor the ground truth — a dark node's moves are
  // invisible until recovery syncs its latest value back in.
  const bool quiet_streams = streams.quiet_capable();
  if (!quiet_streams) streams.plan_steps(sc.steps + 1);
  std::vector<Value> values(N, 0);
  std::vector<Value> incoming(N);
  std::vector<NodeId> changed;
  changed.reserve(N);

  const auto observe = [&](TimeStep t) {
    if (quiet_streams) {
      streams.advance_all_active(values, changed);
      for (const NodeId id : changed) {
        if (down[id]) continue;
        dep.set_value(id, values[id]);
        if (track) truth->set_value(id, values[id]);
      }
    } else {
      streams.advance_all(incoming);
      changed.clear();
      for (NodeId id = 0; id < N; ++id) {
        const Value v = incoming[id];
        if (v != values[id] && !down[id]) {
          changed.push_back(id);
          dep.set_value(id, v);
          if (track) truth->set_value(id, v);
        }
      }
      values.swap(incoming);
    }
    if (result.trace.has_value()) {
      for (NodeId id = 0; id < N; ++id) result.trace->at(t, id) = values[id];
    }
  };

  // Time 0: first observations + two-tier initialization (the bootstrap
  // renegotiation establishes the root boundary before step 1).
  begin_step(0);
  observe(0);
  dep.initialize();
  check(0);
  ++result.steps_executed;
  if (sc.on_step) sc.on_step(0, values, dep.topk());
  result.init_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Scenario-side mirror of the fault schedule (the shard drivers fire
  // the carved membership events inside dep.step(t); dynamic k routes
  // through the root renegotiation here). Recovery windows key on the
  // deployment's max shard tick clock — monotonic across filter-shard
  // rebuilds — exactly like the monolithic runner keys on SimDriver::now.
  std::size_t next_event = 0;
  std::size_t win_begin = 0;
  std::size_t win_end = 0;
  std::uint64_t win_tick = 0;
  bool win_open = false;
  std::size_t cur_k = sc.k;
  if (faulty) result.recovery_ticks.assign(plan.events().size(), 0);

  const auto apply_events = [&](TimeStep t) {
    const std::size_t first = next_event;
    const auto& events = plan.events();
    while (next_event < events.size() && events[next_event].step == t) {
      const FaultEvent& ev = events[next_event];
      switch (ev.kind) {
        case FaultEvent::Kind::kCrash:
        case FaultEvent::Kind::kLeave:
          down[ev.node] = 1;
          if (track) truth->set_value(ev.node, kMinusInf);
          break;
        case FaultEvent::Kind::kRecover:
          down[ev.node] = 0;
          dep.set_value(ev.node, values[ev.node]);
          if (track) truth->set_value(ev.node, values[ev.node]);
          break;
        case FaultEvent::Kind::kJoin:
          for (std::size_t i = 0; i < ev.count; ++i) {
            const NodeId id = ev.node + static_cast<NodeId>(i);
            down[id] = 0;
            dep.set_value(id, values[id]);
            if (track) truth->set_value(id, values[id]);
          }
          break;
        case FaultEvent::Kind::kSetK:
          cur_k = ev.count;
          dep.set_k(cur_k);
          if (track) {
            truth.emplace(N, cur_k);
            for (NodeId id = 0; id < N; ++id) {
              truth->set_value(id, down[id] ? kMinusInf : values[id]);
            }
          }
          break;
        case FaultEvent::Kind::kLag:
        case FaultEvent::Kind::kStale:
        case FaultEvent::Kind::kMute:
        case FaultEvent::Kind::kHeal:
          break;  // rejected above; unreachable
      }
      ++next_event;
    }
    if (next_event != first) {
      win_begin = first;
      win_end = next_event;
      win_tick = dep.ticks();
      win_open = true;
    }
  };

  for (TimeStep t = 1; t <= sc.steps; ++t) {
    begin_step(t);
    observe(t);
    if (faulty) apply_events(t);
    const std::uint64_t errors_before = result.error_steps;
    dep.step(t, changed);
    check(t);
    if (win_open && result.error_steps != errors_before) {
      const std::uint64_t w = dep.ticks() - win_tick;
      for (std::size_t i = win_begin; i < win_end; ++i) {
        result.recovery_ticks[i] = w;
      }
    }
    ++result.steps_executed;
    if (sc.on_step) sc.on_step(t, values, dep.topk());
  }

  result.monitor_name = std::string(dep.name());
  result.comm = dep.node_shard_comm();
  result.root_comm = dep.shard_root_comm();
  result.monitor = dep.monitor_totals();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace topkmon::exp
