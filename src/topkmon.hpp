// Umbrella header: the full public API of the topkmon library.
//
//   #include <topkmon.hpp>
//
// pulls in the simulation substrate, stream generators, the distributed
// max/min protocols (Algorithm 2) and every Top-k-Position monitoring
// algorithm (Algorithm 1 and the baselines), plus the experiment runner.
#pragma once

#include "util/types.hpp"      // IWYU pragma: export
#include "util/strings.hpp"    // IWYU pragma: export
#include "util/rng.hpp"        // IWYU pragma: export
#include "util/statistics.hpp" // IWYU pragma: export
#include "util/table.hpp"      // IWYU pragma: export
#include "util/log.hpp"        // IWYU pragma: export

#include "sim/message.hpp"       // IWYU pragma: export
#include "sim/comm_stats.hpp"    // IWYU pragma: export
#include "sim/network_model.hpp" // IWYU pragma: export
#include "sim/network.hpp"       // IWYU pragma: export
#include "sim/cluster.hpp"     // IWYU pragma: export
#include "sim/event_log.hpp"   // IWYU pragma: export

#include "streams/stream.hpp"      // IWYU pragma: export
#include "streams/factory.hpp"     // IWYU pragma: export
#include "streams/trace.hpp"       // IWYU pragma: export

#include "protocols/extremum.hpp"          // IWYU pragma: export
#include "protocols/select_topk.hpp"       // IWYU pragma: export
#include "protocols/shout_echo.hpp"        // IWYU pragma: export
#include "protocols/sequential_probe.hpp"  // IWYU pragma: export

#include "core/filter.hpp"               // IWYU pragma: export
#include "core/ground_truth.hpp"         // IWYU pragma: export
#include "core/ground_truth_tracker.hpp" // IWYU pragma: export
#include "core/monitor.hpp"              // IWYU pragma: export
#include "core/roles.hpp"                // IWYU pragma: export
#include "core/driver.hpp"               // IWYU pragma: export
#include "core/filter_roles.hpp"         // IWYU pragma: export
#include "core/naive_roles.hpp"          // IWYU pragma: export
#include "core/slack_roles.hpp"          // IWYU pragma: export
#include "core/dominance_roles.hpp"      // IWYU pragma: export
#include "core/ordered_roles.hpp"        // IWYU pragma: export
#include "core/multik_roles.hpp"         // IWYU pragma: export
#include "core/lockstep_adapter.hpp"     // IWYU pragma: export
#include "core/topk_monitor.hpp"         // IWYU pragma: export
#include "core/approx_monitor.hpp"       // IWYU pragma: export
#include "core/multik_monitor.hpp"       // IWYU pragma: export
#include "core/naive_monitor.hpp"        // IWYU pragma: export
#include "core/recompute_monitor.hpp"    // IWYU pragma: export
#include "core/dominance_monitor.hpp"    // IWYU pragma: export
#include "core/slack_monitor.hpp"        // IWYU pragma: export
#include "core/ordered_topk_monitor.hpp" // IWYU pragma: export
#include "core/offline_opt.hpp"          // IWYU pragma: export
#include "core/runner.hpp"               // IWYU pragma: export

#include "exp/monitor_registry.hpp" // IWYU pragma: export
#include "exp/scenario.hpp"         // IWYU pragma: export
#include "exp/sweep_grid.hpp"       // IWYU pragma: export
#include "exp/sweep_runner.hpp"     // IWYU pragma: export
#include "exp/result_sink.hpp"      // IWYU pragma: export
#include "exp/writers.hpp"          // IWYU pragma: export
#include "exp/suite.hpp"            // IWYU pragma: export
