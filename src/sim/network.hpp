// Message transport between n nodes and the coordinator.
//
// Topology per the paper's model: nodes can send to the coordinator only
// (no node-to-node links); the coordinator can unicast to a single node
// and has a broadcast channel delivering one message to all nodes
// simultaneously (unit cost, following Cormode et al.'s enhanced model).
//
// Delivery is governed by a NetworkSpec policy and a tick clock:
//
//   * Under the default instant spec, every message is deliverable the
//     moment it is sent and the transport reproduces the paper's
//     lock-step semantics exactly. Broadcasts are stored once in a shared
//     log with a per-node read cursor, so a broadcast costs O(1)
//     regardless of n.
//   * Under a delay/jitter/drop/batch spec, each (message, link) pair is
//     assigned a deterministic delivery tick (or dropped) at send time;
//     drains only surface messages whose delivery tick has been reached.
//     Broadcasts fan out into per-link scheduled deliveries.
//
// Message *sends* are always charged to CommStats — the paper's objective
// counts transmissions; a dropped message still cost its sender one unit.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/event_log.hpp"
#include "sim/message.hpp"
#include "sim/network_model.hpp"
#include "util/types.hpp"

namespace topkmon {

/// The star network with broadcast channel. All sends are recorded in the
/// attached CommStats; the transport itself performs no protocol logic.
class Network {
 public:
  /// Creates an instant-delivery network for `n` nodes charging messages
  /// to `stats`. `stats` must outlive the network.
  Network(std::size_t n, CommStats* stats);

  /// Creates a network with an explicit delivery policy. `seed` feeds the
  /// deterministic per-(message, link) jitter/drop hash; it is independent
  /// of drain order, so runs stay bit-reproducible.
  Network(std::size_t n, CommStats* stats, const NetworkSpec& spec,
          std::uint64_t seed);

  std::size_t num_nodes() const noexcept { return cursors_.size(); }

  const NetworkSpec& spec() const noexcept { return spec_; }

  // -- clock ----------------------------------------------------------------
  /// Current tick. Sends stamp messages with it; drains deliver everything
  /// scheduled at or before it.
  SimTime now() const noexcept { return now_; }

  /// Advances the clock by one tick.
  void advance_clock() noexcept { ++now_; }

  /// Advances the clock to `t` (no-op if `t` is in the past).
  void advance_clock_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }

  // -- sending --------------------------------------------------------------
  /// Node `from` sends `m` to the coordinator (cost 1).
  void node_send(NodeId from, Message m);

  /// Coordinator sends `m` to node `to` (cost 1).
  void coord_unicast(NodeId to, Message m);

  /// Coordinator broadcasts `m` to all nodes (cost 1 in the paper's model).
  void coord_broadcast(Message m);

  // -- receiving ------------------------------------------------------------
  /// Drains and returns every deliverable message in the coordinator's
  /// inbox, in arrival order.
  std::vector<Message> drain_coordinator();

  /// True if the coordinator has deliverable messages.
  bool coordinator_has_mail() const noexcept;

  /// Drains and returns node `id`'s deliverable messages: unicasts
  /// addressed to it plus all broadcasts issued since its last drain, in
  /// send order (broadcasts and unicasts interleaved by issue time; under
  /// jitter, by delivery tick first).
  std::vector<Message> drain_node(NodeId id);

  /// Total broadcasts ever issued. Under the instant policy this equals
  /// the shared log length; scheduled modes count without logging.
  std::size_t broadcast_log_size() const noexcept {
    return instant_ ? broadcast_log_.size()
                    : static_cast<std::size_t>(broadcasts_issued_);
  }

  // -- delivery accounting (drives event-loop quiescence) -------------------
  /// Number of sent-but-not-yet-drained message deliveries (a broadcast
  /// counts once per receiving link; dropped links never count).
  std::uint64_t pending_deliveries() const noexcept { return pending_; }

  /// Earliest delivery tick among pending messages (nullopt when idle).
  std::optional<SimTime> earliest_pending() const;

  /// Total messages lost to the drop policy so far (per link).
  std::uint64_t dropped_deliveries() const noexcept { return dropped_; }

  /// Installs (or clears, with nullptr semantics via empty function) a tap
  /// invoked once per sent message with its direction — e.g.
  /// `net.set_tap(event_log.tap())`. The tap observes; it cannot alter
  /// delivery or accounting.
  void set_tap(std::function<void(MsgDirection, const Message&)> tap) {
    tap_ = std::move(tap);
  }

  /// Copy of the broadcast log messages in issue order (tests / tracing).
  /// Maintained under the instant policy only — scheduled modes return an
  /// empty log (deliveries live in the per-link queues instead).
  std::vector<Message> broadcast_log() const {
    std::vector<Message> out;
    out.reserve(broadcast_log_.size());
    for (const auto& s : broadcast_log_) out.push_back(s.msg);
    return out;
  }

 private:
  struct Stamped {
    std::uint64_t seq;
    Message msg;
  };

  /// A message instance scheduled on one link.
  struct Scheduled {
    SimTime due;
    std::uint64_t seq;
    Message msg;
  };

  /// Deterministic per-(message, link) schedule: delivery tick, or nullopt
  /// when the drop policy loses the message on this link.
  std::optional<SimTime> schedule_link(std::uint64_t seq, std::uint32_t link);

  void push_scheduled(std::vector<Scheduled>& inbox, Scheduled s);
  void drain_scheduled(std::vector<Scheduled>& inbox,
                       std::vector<Message>& out);

  NetworkSpec spec_;
  bool instant_ = true;   ///< pure lock-step fast path
  std::uint64_t hash_seed_ = 0;

  CommStats* stats_;
  std::function<void(MsgDirection, const Message&)> tap_;
  std::uint64_t seq_ = 0;  // global send-order stamp
  SimTime now_ = 0;
  std::uint64_t pending_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t broadcasts_issued_ = 0;  // scheduled-mode broadcast counter

  // Instant mode: flat inboxes + shared broadcast log with read cursors.
  std::vector<Message> coord_inbox_;
  std::vector<Stamped> broadcast_log_;          // stamped for interleaving
  std::vector<std::vector<Stamped>> unicasts_;  // per-node pending unicasts
  std::vector<std::size_t> cursors_;            // per-node broadcast cursor

  // Scheduled mode: per-recipient delivery queues kept as min-heaps
  // ordered by (due, seq).
  std::vector<Scheduled> coord_sched_;
  std::vector<std::vector<Scheduled>> node_sched_;
};

}  // namespace topkmon
