// Message transport between n nodes and the coordinator.
//
// Topology per the paper's model: nodes can send to the coordinator only
// (no node-to-node links); the coordinator can unicast to a single node
// and has a broadcast channel delivering one message to all nodes
// simultaneously. Delivery is instantaneous; protocols run in lock-step
// rounds between consecutive stream observations.
//
// Broadcasts are stored once in a shared log with a per-node read cursor,
// so a broadcast costs O(1) regardless of n.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/event_log.hpp"
#include "sim/message.hpp"
#include "util/types.hpp"

namespace topkmon {

/// The star network with broadcast channel. All sends are recorded in the
/// attached CommStats; the transport itself performs no protocol logic.
class Network {
 public:
  /// Creates a network for `n` nodes charging messages to `stats`.
  /// `stats` must outlive the network.
  Network(std::size_t n, CommStats* stats);

  std::size_t num_nodes() const noexcept { return cursors_.size(); }

  // -- sending --------------------------------------------------------------
  /// Node `from` sends `m` to the coordinator (cost 1).
  void node_send(NodeId from, Message m);

  /// Coordinator sends `m` to node `to` (cost 1).
  void coord_unicast(NodeId to, Message m);

  /// Coordinator broadcasts `m` to all nodes (cost 1 in the paper's model).
  void coord_broadcast(Message m);

  // -- receiving ------------------------------------------------------------
  /// Drains and returns everything in the coordinator's inbox, in arrival
  /// order.
  std::vector<Message> drain_coordinator();

  /// True if the coordinator has pending messages.
  bool coordinator_has_mail() const noexcept { return !coord_inbox_.empty(); }

  /// Drains and returns node `id`'s pending messages: unicasts addressed to
  /// it plus all broadcasts issued since its last drain, in send order
  /// (broadcasts and unicasts interleaved by issue time).
  std::vector<Message> drain_node(NodeId id);

  /// Total broadcasts ever issued (== shared log length).
  std::size_t broadcast_log_size() const noexcept { return broadcast_log_.size(); }

  /// Installs (or clears, with nullptr semantics via empty function) a tap
  /// invoked once per sent message with its direction — e.g.
  /// `net.set_tap(event_log.tap())`. The tap observes; it cannot alter
  /// delivery or accounting.
  void set_tap(std::function<void(MsgDirection, const Message&)> tap) {
    tap_ = std::move(tap);
  }

  /// Copy of the broadcast log messages in issue order (tests / tracing).
  std::vector<Message> broadcast_log() const {
    std::vector<Message> out;
    out.reserve(broadcast_log_.size());
    for (const auto& s : broadcast_log_) out.push_back(s.msg);
    return out;
  }

 private:
  struct Stamped {
    std::uint64_t seq;
    Message msg;
  };

  CommStats* stats_;
  std::function<void(MsgDirection, const Message&)> tap_;
  std::uint64_t seq_ = 0;  // global send-order stamp

  std::vector<Message> coord_inbox_;
  std::vector<Stamped> broadcast_log_;          // stamped for interleaving
  std::vector<std::vector<Stamped>> unicasts_;  // per-node pending unicasts
  std::vector<std::size_t> cursors_;            // per-node broadcast cursor
};

}  // namespace topkmon
