// Message transport between n nodes and the coordinator.
//
// Topology per the paper's model: nodes can send to the coordinator only
// (no node-to-node links); the coordinator can unicast to a single node
// and has a broadcast channel delivering one message to all nodes
// simultaneously (unit cost, following Cormode et al.'s enhanced model).
//
// Delivery is governed by a NetworkSpec policy and a tick clock:
//
//   * Under the default instant spec, every message is deliverable the
//     moment it is sent and the transport reproduces the paper's
//     lock-step semantics exactly. Broadcasts are stored once in a shared
//     log with a per-node read cursor, so a broadcast costs O(1)
//     regardless of n; the log prefix every node has read is compacted
//     away so long runs stay in bounded memory.
//   * Under a delay/jitter/drop/batch spec, each (message, link) pair is
//     assigned a deterministic delivery tick (or dropped) at send time;
//     drains only surface messages whose delivery tick has been reached.
//     Broadcasts fan out into per-link scheduled deliveries. In-flight
//     messages live in a slab of arena-allocated nodes threaded through a
//     bucketed timing wheel keyed by delivery tick (far-future ticks
//     overflow into a small heap); advancing the clock moves each tick's
//     bucket onto per-recipient ready lists. Pushes and pops are O(1) and
//     allocation-free at steady state (the slab free list recycles
//     nodes), and earliest_pending() costs O(1) in n.
//
// Message *sends* are always charged to CommStats — the paper's objective
// counts transmissions; a dropped message still cost its sender one unit.
//
// Activity tracking: the network maintains a per-node "has due mail"
// bitset (`due_mail_words()`), set when a delivery becomes drainable and
// cleared by drain_node(). The SimDriver's sparse event loop visits only
// flagged nodes, making a settled tick O(active), not O(n).
//
// Hot-path drains: the `drain_*(buffer&)` overloads fill a caller-owned
// scratch buffer (cleared first, capacity retained across calls), so a
// settled simulation tick performs zero heap allocations at steady state.
// The returning overloads remain as thin conveniences for tests and
// cold paths.
//
// Threading: the network is single-owner — every method is meant to be
// called from the thread driving the simulation — EXCEPT the explicitly
// marked parallel-phase subset (drain_node_staged / ack_broadcasts_staged
// / unread_broadcasts / node_mail_is_broadcast_only / node_has_mail),
// which the SimDriver's worker shards may call concurrently for node ids
// they own: those methods touch only id-owned state (the id's unicast
// buffer, cursor, ready list, due bit word) plus the caller's private
// DrainStage, never the shared accounting. The staged deltas become
// visible via commit_drain_stage() on the owner thread after the tick
// barrier (the WorkerPool join provides the happens-before edge). See
// docs/architecture.md, "Parallel tick loop".
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/event_log.hpp"
#include "sim/message.hpp"
#include "sim/network_model.hpp"
#include "sim/node_runtime.hpp"
#include "util/bitset.hpp"
#include "util/types.hpp"

namespace topkmon {

/// The star network with broadcast channel. All sends are recorded in the
/// attached CommStats; the transport itself performs no protocol logic.
class Network {
 public:
  /// Creates an instant-delivery network for `n` nodes charging messages
  /// to `stats`. `stats` must outlive the network.
  Network(std::size_t n, CommStats* stats);

  /// Creates a network with an explicit delivery policy. `seed` feeds the
  /// deterministic per-(message, link) jitter/drop hash; it is independent
  /// of drain order, so runs stay bit-reproducible. When `runtime` is
  /// non-null the network maintains its due-mail bits in
  /// `runtime->due_mail` (the structure-of-arrays state shared with the
  /// SimDriver); otherwise it owns a private bitset. `runtime` must
  /// outlive the network and span at least `n` ids.
  Network(std::size_t n, CommStats* stats, const NetworkSpec& spec,
          std::uint64_t seed, NodeRuntime* runtime = nullptr);

  /// Not copyable or movable: the network aliases external state (the
  /// stats sink, possibly a shared NodeRuntime's due-mail bits) and
  /// due_mail_ may point at its own owned bitset — a memberwise copy or
  /// move would silently alias or dangle into the source object.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Number of node endpoints (the coordinator is not counted).
  std::size_t num_nodes() const noexcept { return cursors_.size(); }

  /// The delivery policy this network was built with.
  const NetworkSpec& spec() const noexcept { return spec_; }

  /// True on the instant-delivery fast path (lock-step semantics; enables
  /// the bulk broadcast fan-out API below).
  bool instant() const noexcept { return instant_; }

  // -- node liveness (fault injection) --------------------------------------
  // Crash semantics live at the transport: a down node's queued mail is
  // discarded, and anything arriving while it is down is dropped *at
  // delivery time* under every policy — instant deliveries drop at send,
  // scheduled deliveries drop at their due tick (a message already in
  // flight when the node recovers is delivered normally). Sends are still
  // charged to CommStats first — the paper's objective counts
  // transmissions — and every undelivered message is counted in
  // dropped_deliveries(). The liveness bits live on the shared
  // NodeRuntime (runtime().alive) so the SimDriver's scans and the
  // transport agree at every tick. Owner thread only; liveness only
  // changes between parallel phases (the driver applies faults at the
  // head of run_tick).

  /// True iff node id is up. No bounds check (hot path).
  bool node_alive(NodeId id) const noexcept { return alive_->test(id); }

  /// Number of currently-down nodes / currently-up nodes.
  std::size_t down_nodes() const noexcept { return down_count_; }
  std::size_t live_nodes() const noexcept {
    return num_nodes() - down_count_;
  }

  /// Takes node id down: drops its queued mail (counted as dropped
  /// deliveries), clears its due bit, and discards everything addressed
  /// to it until set_node_up. Idempotent.
  void set_node_down(NodeId id);

  /// Brings node id back up. Mail that became due during the outage is
  /// gone; delivery resumes with the next send (instant) or the next due
  /// tick (scheduled). Idempotent.
  void set_node_up(NodeId id);

  // -- clock ----------------------------------------------------------------
  /// Current tick. Sends stamp messages with it; drains deliver everything
  /// scheduled at or before it. Stable during a parallel phase (clock
  /// advances happen between phases, on the owner thread).
  SimTime now() const noexcept { return now_; }

  /// Advances the clock by one tick. Owner thread only.
  void advance_clock() { advance_clock_to(now_ + 1); }

  /// Advances the clock to `t` (no-op if `t` is in the past). Under a
  /// scheduled policy, every timing-wheel bucket passed on the way is
  /// moved onto the recipients' ready lists in delivery order. Owner
  /// thread only.
  void advance_clock_to(SimTime t);

  // -- sending --------------------------------------------------------------
  // All sends mutate shared state (seq stamp, inboxes, wheel, stats):
  // owner thread only. Parallel shards stage node sends in the SimDriver
  // and replay them here, in shard order, at the tick barrier.

  /// Node `from` sends `m` to the coordinator (cost 1). Owner thread only.
  void node_send(NodeId from, Message m);

  /// Coordinator sends `m` to node `to` (cost 1). Owner thread only.
  void coord_unicast(NodeId to, Message m);

  /// Coordinator broadcasts `m` to all nodes (cost 1 in the paper's
  /// model). Owner thread only.
  void coord_broadcast(Message m);

  // -- receiving ------------------------------------------------------------
  /// Drains every deliverable message in the coordinator's inbox into
  /// `out` (cleared first; capacity retained), in arrival order. This is
  /// the allocation-free hot path: at steady state neither `out` nor the
  /// internal inbox reallocates. Owner thread only (the coordinator phase
  /// is always serial).
  void drain_coordinator(std::vector<Message>& out);

  /// Convenience overload returning a fresh vector (tests / cold paths).
  /// Owner thread only.
  std::vector<Message> drain_coordinator();

  /// True if the coordinator has deliverable messages. Owner thread only
  /// (reads shared send-side state).
  bool coordinator_has_mail() const noexcept;

  /// Drains node `id`'s deliverable messages into `out` (cleared first;
  /// capacity retained): unicasts addressed to it plus all broadcasts
  /// issued since its last drain, in send order (broadcasts and unicasts
  /// interleaved by issue time; under jitter, by delivery tick first).
  /// Owner thread only (compacts the log, settles shared accounting) —
  /// parallel shards use drain_node_staged.
  void drain_node(NodeId id, std::vector<Message>& out);

  /// Convenience overload returning a fresh vector (tests / cold paths).
  std::vector<Message> drain_node(NodeId id);

  // -- parallel-phase drains ------------------------------------------------
  // The SimDriver's worker shards drain the nodes they own concurrently.
  // A drain's per-node effects (clearing the unicast buffer / ready list,
  // advancing the cursor, clearing the due bit) are safe as-is — each id
  // is owned by exactly one shard, and shards own whole due-mail words —
  // but its *shared* effects (pending/ready counters, slab free list,
  // log compaction) are not. The staged variants accumulate those into a
  // caller-owned DrainStage instead; the owner thread applies every
  // shard's stage after the tick barrier via commit_drain_stage(), in
  // shard order. Deliveries surfaced are byte-identical to the unstaged
  // calls (the accounting deltas commute — they are sums and a free-list
  // splice — and compaction is delivery-invisible by contract).

  /// Slab index sentinel (empty list / end of list; also DrainStage's
  /// empty free chain).
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  /// Shared-state deltas one worker shard accumulates across its
  /// parallel-phase drains, applied later by commit_drain_stage(). Value
  /// type; reusable after commit (commit resets it).
  struct DrainStage {
    std::uint64_t delivered = 0;  ///< pending-delivery decrements owed
    std::uint64_t drained = 0;    ///< ready-list pops owed (scheduled mode)
    std::uint32_t free_head = kNil;  ///< staged slab free chain ...
    std::uint32_t free_tail = kNil;  ///< ... spliced onto the real one
  };

  /// drain_node, minus the shared-state effects: accounting deltas and
  /// freed slab nodes go into `stage`, and the broadcast log is never
  /// compacted (in-place suffixes handed to other shards stay stable; the
  /// driver compacts once per tick at the barrier). Parallel-phase safe
  /// for the id's owning shard.
  void drain_node_staged(NodeId id, std::vector<Message>& out,
                         DrainStage& stage);

  /// ack_broadcasts, minus the shared-state effects (the pending-delivery
  /// decrement goes into `stage`). Parallel-phase safe for the id's
  /// owning shard; same precondition as ack_broadcasts.
  void ack_broadcasts_staged(NodeId id, DrainStage& stage) noexcept {
    assert(node_mail_is_broadcast_only(id));
    const std::size_t total = log_offset_ + bcast_msgs_.size();
    stage.delivered += total - cursors_[id];
    cursors_[id] = total;
    due_mail_->clear(id);
  }

  /// Applies one shard's staged deltas: settles the pending/ready
  /// counters and splices the staged free chain onto the slab free list,
  /// then resets `stage` for reuse. Owner thread only, after the tick
  /// barrier; commits commute, but the driver applies them in shard
  /// order anyway (one fixed order is easier to reason about).
  void commit_drain_stage(DrainStage& stage) noexcept {
    pending_ -= stage.delivered;
    ready_count_ -= stage.drained;
    if (stage.free_head != kNil) {
      slab_[stage.free_tail].next = free_head_;
      free_head_ = stage.free_head;
    }
    stage = DrainStage{};
  }

  /// Bitset over node ids: bit `id` is set iff drain_node(id) would
  /// deliver at least one message at the current tick. Maintained under
  /// every policy; drives the SimDriver's sparse per-tick scan. (Aliases
  /// NodeRuntime::due_mail when the network was built over one.) During
  /// a parallel phase each shard may read/clear only its own words.
  std::span<const std::uint64_t> due_mail_words() const noexcept {
    return due_mail_->words();
  }

  /// Single-node view of due_mail_words() (no bounds check; hot path).
  /// Parallel-phase safe for the id's owning shard.
  bool node_has_mail(NodeId id) const noexcept { return due_mail_->test(id); }

  // -- bulk broadcast fan-out (instant mode) --------------------------------
  // A broadcast tick makes every node due at once; draining each node
  // individually copies the same log suffix n times. Nodes with no
  // pending unicasts ("sparse-clean") can instead read their suffix *in
  // place* from the shared log and commit with an O(1) ack, so one pass
  // over the log serves all clean nodes with zero per-message copies.
  // Byte-equivalent to drain_node: a clean node's merge input is the
  // suffix alone.

  /// True iff node id's pending mail consists solely of broadcast-log
  /// entries — the precondition of unread_broadcasts()/ack_broadcasts().
  /// Always false under a scheduled policy. No bounds check (hot path).
  /// Parallel-phase safe for the id's owning shard.
  bool node_mail_is_broadcast_only(NodeId id) const noexcept {
    return instant_ && unicasts_[id].empty();
  }

  /// Node id's unread broadcast suffix, in issue order, served directly
  /// from the shared log (no copy). Valid only while
  /// node_mail_is_broadcast_only(id); invalidated by any send, drain or
  /// compact_broadcast_log() call (the log may grow or shift). Parallel-
  /// phase safe: the log is read-only during a parallel phase (sends are
  /// staged, compaction deferred to the barrier), and cursors_[id] is
  /// owned by the id's shard.
  std::span<const Message> unread_broadcasts(NodeId id) const noexcept {
    return std::span<const Message>(bcast_msgs_)
        .subspan(cursors_[id] - log_offset_);
  }

  /// Commits a bulk delivery for node id: marks its broadcasts read,
  /// settles the pending-delivery accounting and clears its due bit.
  /// Requires node_mail_is_broadcast_only(id) (debug-asserted) — acking
  /// a node with pending unicasts would clear its due bit while its
  /// unicasts stay queued. Unlike drain_node this never compacts the
  /// log (so spans handed to other nodes in the same pass stay stable)
  /// — callers fanning out to many nodes run compact_broadcast_log()
  /// once afterwards. Owner thread only (settles the shared pending
  /// counter) — parallel shards use ack_broadcasts_staged.
  void ack_broadcasts(NodeId id) noexcept {
    assert(node_mail_is_broadcast_only(id));
    const std::size_t total = log_offset_ + bcast_msgs_.size();
    pending_ -= total - cursors_[id];
    cursors_[id] = total;
    due_mail_->clear(id);
  }

  /// Drops the all-read broadcast-log prefix when worthwhile (cheap
  /// length check, O(n) cursor scan only past the threshold). drain_node
  /// does this implicitly; bulk fan-out passes call it once per tick.
  /// No-op under scheduled policies. Invisible to delivery semantics.
  /// Owner thread only (shifts the log every unread_broadcasts span
  /// aliases).
  void compact_broadcast_log() { maybe_compact_broadcast_log(); }

  /// Total broadcasts ever issued (compaction does not lower this; under
  /// scheduled policies broadcasts are counted without logging).
  std::size_t broadcast_log_size() const noexcept {
    return instant_ ? log_offset_ + bcast_msgs_.size()
                    : static_cast<std::size_t>(broadcasts_issued_);
  }

  // -- delivery accounting (drives event-loop quiescence) -------------------
  // Owner thread only: staged drains leave these counters stale until
  // their commit_drain_stage() at the barrier.

  /// Number of sent-but-not-yet-drained message deliveries (a broadcast
  /// counts once per receiving link; dropped links never count).
  std::uint64_t pending_deliveries() const noexcept { return pending_; }

  /// Earliest tick at which a pending message can be drained: `now()`
  /// when something is already deliverable, else the next occupied
  /// timing-wheel bucket / overflow entry; nullopt when idle. O(1) in n.
  std::optional<SimTime> earliest_pending() const;

  /// Total messages lost to the drop policy so far (per link).
  std::uint64_t dropped_deliveries() const noexcept { return dropped_; }

  /// Installs (or clears, with nullptr semantics via empty function) a tap
  /// invoked once per sent message with its direction — e.g.
  /// `net.set_tap(event_log.tap())`. The tap observes; it cannot alter
  /// delivery or accounting.
  void set_tap(std::function<void(MsgDirection, const Message&)> tap) {
    tap_ = std::move(tap);
  }

  /// Copy of the *retained* broadcast log messages in issue order (tests /
  /// tracing). Maintained under the instant policy only — scheduled modes
  /// return an empty log (deliveries live in the slab instead), and a
  /// prefix already read by every node may have been compacted away.
  std::vector<Message> broadcast_log() const { return bcast_msgs_; }

 private:
  struct Stamped {
    std::uint64_t seq;
    Message msg;
  };

  /// One in-flight scheduled message, arena-allocated in the slab and
  /// threaded through exactly one list (a wheel bucket, then a ready
  /// list). Recipient queues are nodes 0..n-1, the coordinator is n.
  struct MsgNode {
    Message msg;
    std::uint32_t next = kNil;
    std::uint32_t recipient = 0;
  };

  /// Intrusive singly-linked FIFO into the slab.
  struct MsgList {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  /// A message scheduled beyond the wheel horizon (rare: only when the
  /// spec's worst-case delay exceeds the wheel span). Min-heap by
  /// (due, seq) so pops replay send order within a tick.
  struct Overflow {
    SimTime due;
    std::uint64_t seq;
    std::uint32_t recipient;
    Message msg;
  };

  /// Deterministic per-(message, link) schedule: delivery tick, or nullopt
  /// when the drop policy loses the message on this link.
  std::optional<SimTime> schedule_link(std::uint64_t seq, std::uint32_t link);

  /// Routes one scheduled delivery: ready list if already due, wheel
  /// bucket within the horizon, overflow heap beyond it.
  void schedule_delivery(std::uint32_t recipient, SimTime due,
                         std::uint64_t seq, const Message& m);

  std::uint32_t slab_alloc(const Message& m, std::uint32_t recipient);
  void slab_free(std::uint32_t idx);
  void append_ready(std::uint32_t recipient, std::uint32_t idx);

  /// Due tick of the next occupied wheel bucket strictly after now()
  /// (kNoTick when the wheel is empty).
  SimTime next_wheel_tick() const;

  /// Moves tick `t`'s deliveries (overflow first — they were sent
  /// earlier, see the seq argument in network.cpp) onto the ready lists.
  void flush_tick(SimTime t);

  /// Shared scheduled-mode drain: with `stage` null the shared effects
  /// (counters, slab frees) apply immediately; with a stage they are
  /// accumulated into it instead (parallel phase).
  void drain_scheduled(std::size_t qi, std::vector<Message>& out,
                       DrainStage* stage = nullptr);

  /// Instant-mode merge of node id's unicasts + unread broadcast suffix
  /// into `out` (send order), clearing the id-owned state (unicast
  /// buffer, cursor, due bit) but none of the shared accounting. Returns
  /// the number of deliveries. Common core of drain_node and
  /// drain_node_staged.
  std::size_t merge_instant_mail(NodeId id, std::vector<Message>& out);

  /// Drops the broadcast-log prefix every node has already read once the
  /// retained log grows past the compaction threshold.
  void maybe_compact_broadcast_log();

  NetworkSpec spec_;
  bool instant_ = true;   ///< pure lock-step fast path
  std::uint64_t hash_seed_ = 0;

  CommStats* stats_;
  std::function<void(MsgDirection, const Message&)> tap_;
  std::uint64_t seq_ = 0;  // global send-order stamp
  SimTime now_ = 0;
  std::uint64_t pending_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t broadcasts_issued_ = 0;  // scheduled-mode broadcast counter

  /// Per-node "a drain would deliver something now" flags (all policies).
  /// Points at the shared NodeRuntime's due_mail when one was supplied,
  /// else at owned_due_mail_.
  IdBitset owned_due_mail_;
  IdBitset* due_mail_ = nullptr;

  /// Per-node up/down flags (all set unless faults are injected). Points
  /// at the shared NodeRuntime's alive bits when a runtime was supplied,
  /// else at owned_alive_.
  IdBitset owned_alive_;
  IdBitset* alive_ = nullptr;
  std::size_t down_count_ = 0;

  // Instant mode: flat inboxes + shared broadcast log with read cursors.
  // The log is split into parallel arrays (messages / seq stamps) so the
  // bulk fan-out hands out contiguous Message spans and the merge in
  // drain_node compares a dense seq array. Cursors are absolute (count of
  // broadcasts read since construction); log_offset_ is the absolute
  // index of bcast_msgs_[0] after prefix compaction.
  std::vector<Message> coord_inbox_;
  std::vector<Message> bcast_msgs_;             // log payloads, issue order
  std::vector<std::uint64_t> bcast_seqs_;       // parallel send-order stamps
  std::vector<std::vector<Stamped>> unicasts_;  // per-node pending unicasts
  std::vector<std::size_t> cursors_;            // per-node broadcast cursor
  std::size_t log_offset_ = 0;

  // Scheduled mode: slab + timing wheel + per-recipient ready lists.
  // wheel_[due & (wheel_mask_)] holds the deliveries of exactly one due
  // tick (every in-wheel due lies within `wheel span` of the clock, so
  // buckets never mix ticks); wheel_bits_ mirrors bucket occupancy for
  // O(span/64) next-event scans. ready_[qi] is (due, seq)-ordered by
  // construction: buckets are flushed in tick order and each bucket's
  // list is appended in send order.
  std::vector<MsgNode> slab_;
  std::uint32_t free_head_ = kNil;
  std::vector<MsgList> wheel_;
  std::vector<std::uint64_t> wheel_bits_;
  std::uint64_t wheel_mask_ = 0;
  std::vector<Overflow> overflow_;  // min-heap by (due, seq)
  std::vector<MsgList> ready_;      // per recipient; index n = coordinator
  std::uint64_t ready_count_ = 0;
};

}  // namespace topkmon
