#include "sim/event_log.hpp"

#include <algorithm>
#include <sstream>

namespace topkmon {

std::string_view msg_direction_name(MsgDirection d) noexcept {
  switch (d) {
    case MsgDirection::kUpstream: return "upstream";
    case MsgDirection::kUnicast: return "unicast";
    case MsgDirection::kBroadcast: return "broadcast";
  }
  return "?";
}

void EventLog::record(MsgDirection direction, const Message& message) {
  events_.push_back(MessageEvent{current_step_, direction, message});
}

std::size_t EventLog::count_kind(MsgKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const MessageEvent& e) {
                      return e.message.kind == kind;
                    }));
}

std::size_t EventLog::count_kind_at(MsgKind kind, TimeStep step) const {
  return static_cast<std::size_t>(std::count_if(
      events_.begin(), events_.end(), [kind, step](const MessageEvent& e) {
        return e.message.kind == kind && e.step == step;
      }));
}

std::size_t EventLog::count_direction(MsgDirection d) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [d](const MessageEvent& e) { return e.direction == d; }));
}

std::vector<MessageEvent> EventLog::at_step(TimeStep step) const {
  std::vector<MessageEvent> out;
  for (const auto& e : events_) {
    if (e.step == step) out.push_back(e);
  }
  return out;
}

std::vector<TimeStep> EventLog::active_steps() const {
  std::vector<TimeStep> steps;
  for (const auto& e : events_) steps.push_back(e.step);
  std::sort(steps.begin(), steps.end());
  steps.erase(std::unique(steps.begin(), steps.end()), steps.end());
  return steps;
}

std::string EventLog::dump(std::size_t limit) const {
  std::ostringstream out;
  std::size_t emitted = 0;
  for (const auto& e : events_) {
    if (limit != 0 && emitted >= limit) {
      out << "... (" << events_.size() - emitted << " more)\n";
      break;
    }
    out << "t=" << e.step << " " << msg_direction_name(e.direction) << " "
        << msg_kind_name(e.message.kind);
    if (e.direction == MsgDirection::kUpstream) {
      out << " from=" << e.message.from;
    }
    out << " a=" << e.message.a << " b=" << e.message.b << "\n";
    ++emitted;
  }
  return out.str();
}

std::function<void(MsgDirection, const Message&)> EventLog::tap() {
  return [this](MsgDirection d, const Message& m) { record(d, m); };
}

}  // namespace topkmon
