// Communication accounting.
//
// The paper's objective is the *number of messages*: node->coordinator
// reports, coordinator->node unicasts and coordinator broadcasts each cost
// one unit (the broadcast channel delivers one message to all nodes at unit
// cost, following Cormode et al.'s enhanced model). CommStats counts every
// message by direction and kind, and optionally keeps a per-time-step
// series for the time-series experiments.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "util/types.hpp"

namespace topkmon {

/// Per-direction / per-kind message counters plus an optional time series.
class CommStats {
 public:
  /// Counters are zero on construction; the time series is disabled until
  /// `enable_series` is called.
  CommStats() = default;

  // -- recording (called by Network) ---------------------------------------
  void record_upstream(MsgKind kind) noexcept;
  void record_unicast(MsgKind kind) noexcept;
  void record_broadcast(MsgKind kind) noexcept;

  /// Marks the beginning of time step `t`; subsequent messages are charged
  /// to this step in the series (if enabled).
  void begin_step(TimeStep t);

  // -- totals ---------------------------------------------------------------
  std::uint64_t upstream() const noexcept { return upstream_; }
  std::uint64_t unicast() const noexcept { return unicast_; }
  std::uint64_t broadcast() const noexcept { return broadcast_; }

  /// Unweighted total message count (the paper's cost measure).
  std::uint64_t total() const noexcept {
    return upstream_ + unicast_ + broadcast_;
  }

  /// Weighted cost with broadcast weight `beta` (sensitivity analysis:
  /// beta = 1 is the paper's model, beta = n charges a broadcast like n
  /// unicasts).
  double weighted_total(double beta) const noexcept {
    return static_cast<double>(upstream_ + unicast_) +
           beta * static_cast<double>(broadcast_);
  }

  std::uint64_t by_kind(MsgKind kind) const noexcept {
    return by_kind_[static_cast<std::size_t>(kind)];
  }

  // -- per-step series ------------------------------------------------------
  /// Enables per-step recording (costs one vector push per step).
  void enable_series() noexcept { series_enabled_ = true; }
  bool series_enabled() const noexcept { return series_enabled_; }

  /// Message count charged to each recorded step, in step order.
  const std::vector<std::uint64_t>& series() const noexcept { return series_; }

  /// Cumulative message count at each recorded step.
  std::vector<std::uint64_t> cumulative_series() const;

  /// Adds another instance's totals into this one — the per-tier
  /// aggregation of a sharded deployment (core/root_merge.hpp) sums its
  /// shard clusters' counters this way. When `other` carries a per-step
  /// series it is merged element-wise (shorter series are zero-padded to
  /// the longer length): the sharded runner begins every shard's steps in
  /// lockstep, so per-shard series align by index and the sum is the
  /// deployment-level per-step message count.
  void accumulate(const CommStats& other) {
    upstream_ += other.upstream_;
    unicast_ += other.unicast_;
    broadcast_ += other.broadcast_;
    for (std::size_t i = 0; i < kNumMsgKinds; ++i) {
      by_kind_[i] += other.by_kind_[i];
    }
    if (other.series_enabled_) {
      series_enabled_ = true;
      if (series_.size() < other.series_.size()) {
        series_.resize(other.series_.size(), 0);
      }
      for (std::size_t i = 0; i < other.series_.size(); ++i) {
        series_[i] += other.series_[i];
      }
    }
  }

  /// Resets all counters and the series.
  void reset() noexcept;

  /// One-line summary for logs: "total=N (up=.., uni=.., bcast=..)".
  std::string summary() const;

 private:
  void bump(MsgKind kind) noexcept;

  std::uint64_t upstream_ = 0;
  std::uint64_t unicast_ = 0;
  std::uint64_t broadcast_ = 0;
  std::array<std::uint64_t, kNumMsgKinds> by_kind_{};

  bool series_enabled_ = false;
  std::vector<std::uint64_t> series_;
};

}  // namespace topkmon
