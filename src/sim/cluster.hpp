// The simulated distributed system: n node runtimes + coordinator + network.
//
// A Cluster owns the per-node state that belongs to the *machine* —
// current observed value, the node's private RNG for protocol coin flips,
// protocol scratch flags — held as structure-of-arrays in a NodeRuntime
// (sim/node_runtime.hpp) shared with the Network (due-mail bits) and the
// SimDriver (armed / needs-observe bits). Algorithm-specific node state
// (filters, membership flags) lives in the algorithm implementations,
// mirroring what a node would store on behalf of the currently deployed
// monitoring algorithm.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/network.hpp"
#include "sim/node_runtime.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace topkmon {

/// A coordinator-plus-n-nodes system with unified message accounting.
class Cluster {
 public:
  /// Builds a cluster of `n` nodes; all per-node RNGs and the coordinator
  /// RNG derive deterministically from `seed`. The network delivers
  /// instantly (the paper's lock-step model).
  Cluster(std::size_t n, std::uint64_t seed);

  /// Builds a cluster whose network follows `net_spec` (delay / jitter /
  /// drop / batch policies; see sim/network_model.hpp). Link randomness
  /// derives from `seed` too, independently of the node RNG streams.
  Cluster(std::size_t n, std::uint64_t seed, const NetworkSpec& net_spec);

  /// Builds a cluster of initial.size() nodes with the values preset
  /// (an instant network). Prvalue-friendly convenience for fixtures
  /// and benchmarks: `return Cluster(values, seed);` builds in place.
  Cluster(std::span<const Value> initial, std::uint64_t seed);

  /// Not copyable or movable: the embedded network aliases this
  /// cluster's stats sink and NodeRuntime, so a memberwise copy/move
  /// would keep pointing into the source object.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Number of nodes (the coordinator is not counted).
  std::size_t size() const noexcept { return runtime_.size(); }

  /// The shared structure-of-arrays per-node machine state. The Network
  /// maintains runtime().due_mail; the SimDriver maintains
  /// runtime().armed / runtime().needs_observe; protocol executions use
  /// runtime().active / runtime().rngs.
  NodeRuntime& runtime() noexcept { return runtime_; }
  const NodeRuntime& runtime() const noexcept { return runtime_; }

  /// Unchecked hot-path accessors: value()/set_value() run once per node
  /// per step in every monitor's inner loop, so they index directly with
  /// a debug-only assert. Range validation for untrusted ids lives in the
  /// public Network entry points (node_send/coord_unicast/drain_node
  /// throw) and in the checked node_rng() accessor.
  Value value(NodeId id) const {
    assert(id < runtime_.size());
    return runtime_.values[id];
  }
  void set_value(NodeId id, Value v) {
    assert(id < runtime_.size());
    runtime_.values[id] = v;
  }

  /// All n current values, indexed by node id (flat hot array).
  std::span<const Value> values() const noexcept { return runtime_.values; }

  /// Node id's private randomness source (bounds-checked: coin flips are
  /// per protocol round, not per step, so the check is free noise).
  Rng& node_rng(NodeId id) { return runtime_.rngs.at(id); }

  /// Randomness available to the coordinator (e.g. for baseline sampling).
  Rng& coordinator_rng() noexcept { return coord_rng_; }

  Network& net() noexcept { return net_; }
  const Network& net() const noexcept { return net_; }

  CommStats& stats() noexcept { return stats_; }
  const CommStats& stats() const noexcept { return stats_; }

  /// All node ids 0..n-1 (convenience for "run protocol over everyone").
  const std::vector<NodeId>& all_ids() const noexcept { return all_ids_; }

  /// Issues a fresh protocol epoch. Round beacons are tagged with the epoch
  /// of the protocol execution that produced them so that a node joining a
  /// later execution ignores stale beacons still sitting in its mailbox.
  std::uint32_t next_protocol_epoch() noexcept { return ++protocol_epoch_; }

  /// Epoch of the most recently started protocol execution.
  std::uint32_t current_protocol_epoch() const noexcept {
    return protocol_epoch_;
  }

 private:
  CommStats stats_;
  NodeRuntime runtime_;  // must precede net_: the network aliases due_mail
  Network net_;
  std::vector<NodeId> all_ids_;
  Rng coord_rng_;
  std::uint32_t protocol_epoch_ = 0;
};

}  // namespace topkmon
