// The simulated distributed system: n node runtimes + coordinator + network.
//
// A Cluster owns the per-node state that belongs to the *machine* (current
// observed value, the node's private RNG for protocol coin flips, protocol
// scratch flags). Algorithm-specific node state (filters, membership flags)
// lives in the algorithm implementations, mirroring what a node would store
// on behalf of the currently deployed monitoring algorithm.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace topkmon {

/// Machine-level state of one distributed node.
struct NodeRuntime {
  NodeId id = 0;
  /// Value currently observed on the node's private stream.
  Value value = 0;
  /// The node's private randomness source (Bernoulli(2^r/N) coin flips).
  Rng rng;
  /// Scratch flag used by protocol executions ("active" in Algorithm 2).
  bool active = false;
};

/// A coordinator-plus-n-nodes system with unified message accounting.
class Cluster {
 public:
  /// Builds a cluster of `n` nodes; all per-node RNGs and the coordinator
  /// RNG derive deterministically from `seed`. The network delivers
  /// instantly (the paper's lock-step model).
  Cluster(std::size_t n, std::uint64_t seed);

  /// Builds a cluster whose network follows `net_spec` (delay / jitter /
  /// drop / batch policies; see sim/network_model.hpp). Link randomness
  /// derives from `seed` too, independently of the node RNG streams.
  Cluster(std::size_t n, std::uint64_t seed, const NetworkSpec& net_spec);

  std::size_t size() const noexcept { return nodes_.size(); }

  NodeRuntime& node(NodeId id) { return nodes_.at(id); }
  const NodeRuntime& node(NodeId id) const { return nodes_.at(id); }

  /// Unchecked hot-path accessors: value()/set_value() run once per node
  /// per step in every monitor's inner loop, so they index directly with
  /// a debug-only assert. Range validation for untrusted ids lives in the
  /// public Network entry points (node_send/coord_unicast/drain_node
  /// throw) and in the checked node() accessor.
  Value value(NodeId id) const {
    assert(id < nodes_.size());
    return nodes_[id].value;
  }
  void set_value(NodeId id, Value v) {
    assert(id < nodes_.size());
    nodes_[id].value = v;
  }

  /// Randomness available to the coordinator (e.g. for baseline sampling).
  Rng& coordinator_rng() noexcept { return coord_rng_; }

  Network& net() noexcept { return net_; }
  const Network& net() const noexcept { return net_; }

  CommStats& stats() noexcept { return stats_; }
  const CommStats& stats() const noexcept { return stats_; }

  /// All node ids 0..n-1 (convenience for "run protocol over everyone").
  const std::vector<NodeId>& all_ids() const noexcept { return all_ids_; }

  /// Issues a fresh protocol epoch. Round beacons are tagged with the epoch
  /// of the protocol execution that produced them so that a node joining a
  /// later execution ignores stale beacons still sitting in its mailbox.
  std::uint32_t next_protocol_epoch() noexcept { return ++protocol_epoch_; }

  /// Epoch of the most recently started protocol execution.
  std::uint32_t current_protocol_epoch() const noexcept {
    return protocol_epoch_;
  }

 private:
  CommStats stats_;
  Network net_;
  std::vector<NodeRuntime> nodes_;
  std::vector<NodeId> all_ids_;
  Rng coord_rng_;
  std::uint32_t protocol_epoch_ = 0;
};

}  // namespace topkmon
