// Structure-of-arrays machine state for the n simulated nodes.
//
// One NodeRuntime is shared by the three components that touch per-node
// state on the hot path: the Cluster owns it, the Network maintains the
// due-mail bits, and the SimDriver maintains the armed / needs-observe
// bits and streams through the value array in its observe scan. Keeping
// each field in its own flat array — instead of one struct per node —
// means every scan touches only the bytes it actually uses: the per-tick
// word-wise scans read two bit arrays (16 bytes per 64 nodes), the
// per-step observe scan streams an 8-byte-stride value array, and the
// cold RNG state (most of a cache line per node) is only paged in when a
// protocol execution actually flips coins.
//
// Fields are parallel arrays indexed by NodeId and grouped by access
// pattern; all arrays have the same logical length size().
//
// Threading: plain data, no internal synchronization. Under the parallel
// tick loop the SimDriver partitions the bit arrays into contiguous
// per-worker ranges of whole 64-bit words; a worker may read and write
// only bits in its own words (and the values/rngs entries of ids it
// owns), which is why the plain uint64 stores need no atomics. All
// cross-shard effects go through the driver's staging buffers and land
// at the tick barrier. Outside parallel phases: owner thread only.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bitset.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace topkmon {

/// Per-node machine state as parallel flat arrays ("which node needs
/// attention" bits, observed values, protocol scratch, RNGs).
struct NodeRuntime {
  NodeRuntime() = default;

  /// Sizes every array for `n` nodes: bits clear, values zero, RNGs
  /// default-seeded (the Cluster re-seeds them from its top-level seed).
  /// All nodes start alive; fault injection (sim/fault_plan.hpp) flips
  /// alive bits through Network::set_node_down / set_node_up.
  explicit NodeRuntime(std::size_t n)
      : due_mail(n),
        armed(n),
        alive(n),
        needs_observe(n),
        values(n, 0),
        active(n),
        rngs(n) {
    alive.set_all();
  }

  /// Number of nodes every parallel array is sized for.
  std::size_t size() const noexcept { return values.size(); }

  // -- per-tick hot group: unioned word-wise by SimDriver::run_tick ---------
  /// Bit id set iff a drain of node id would deliver mail right now.
  /// Maintained exclusively by the Network (set on delivery, cleared on
  /// drain/ack).
  IdBitset due_mail;
  /// Bit id set iff node id armed a timer for the next timer phase.
  /// Maintained exclusively by the SimDriver.
  IdBitset armed;
  /// Bit id set iff node id is up (receives mail, runs timers, observes).
  /// All-set unless a FaultPlan is active; maintained exclusively by the
  /// Network (set_node_down / set_node_up) so the transport and the
  /// driver's scans agree on liveness at every tick. A down node's bits
  /// in the other arrays are masked out, never mutated, so recovery
  /// restores exactly the pre-crash machine state.
  IdBitset alive;

  // -- per-step hot group: the observe scan ---------------------------------
  /// Bit id set iff node id must receive on_observe even when its value is
  /// unchanged (see NodeCtx::set_needs_observe). Maintained by the
  /// SimDriver on behalf of the node algorithms.
  IdBitset needs_observe;
  /// values[id] is node id's current stream observation (8-byte stride —
  /// the dense observe scan streams this array instead of gathering
  /// through per-node structs).
  std::vector<Value> values;

  // -- warm group: touched only inside protocol executions ------------------
  /// Protocol scratch flag ("active" in the paper's Algorithm 2).
  IdBitset active;
  /// rngs[id] is node id's private coin-flip source (Bernoulli(2^r/N)).
  std::vector<Rng> rngs;
};

}  // namespace topkmon
