// Declarative, deterministic fault injection for simulated runs.
//
// A FaultPlan is an immutable, pre-validated schedule of membership and
// reconfiguration events that the SimDriver fires inside run_tick at the
// first tick of the scheduled observation step:
//
//   crash   — the node stops: its queued mail is dropped, its timers are
//             frozen, and the transport discards anything addressed to it
//             until recovery (Network::set_node_down).
//   recover — the node comes back with its pre-crash algorithm state; the
//             driver raises NodeAlgo::on_recover on the node and
//             CoordinatorAlgo::on_node_up on the coordinator, which starts
//             the monitor's re-sync handshake.
//   join    — a block of pre-provisioned node ids (n, n+1, ...) goes live
//             for the first time (same wire path as recover).
//   leave   — a permanent crash: the node never returns and the ground
//             truth retires it.
//   k       — dynamic reconfiguration: the coordinator renegotiates a new
//             top-k size mid-run without a cold restart.
//
// Adversarial degradation modes (the node stays up at the transport but
// stops behaving; the coordinator gets no failure-detector event and must
// *infer* the degradation — see the suspicion machinery in
// core/filter_roles.hpp):
//
//   lag     — lag=ID@STEP:TICKS: every charged message the node sends is
//             held in the driver for TICKS delivery ticks before entering
//             the network.
//   stale   — stale=ID@STEP: the node keeps answering probes and reports
//             with its value frozen at degradation time (observations
//             continue; only the reported payloads freeze).
//   mute    — mute=ID@STEP: the node's charged sends are discarded — it
//             goes silent without a transport-level crash.
//   heal    — heal=ID@STEP: ends the node's active degradation.
//
// Spec grammar (parsed like monitor/network specs: name '?' params):
//
//   none                                   empty plan
//   churn?crash=17@500,recover=17@900,join=+64@1200,leave=12@1500,k=32@2000
//   churn?every=200,down=3,count=5,outage=80[,k=32@600]
//   churn?lag=3@100:40,stale=5@200,mute=7@300,heal=5@400
//
// The second form generates `count` crash bursts of `down` seeded-random
// live victims at steps every, 2*every, ..., each recovering after
// `outage` steps. Victim selection derives from the run seed exactly like
// the Network derives link randomness — independent of the node / stream
// RNG streams — so a schedule is byte-reproducible across `--jobs` and
// `--workers` and never perturbs a fault-free run. Explicit membership
// events cannot be mixed with the generated form; `k=K@S` composes with
// either.
//
// Construction validates the full timeline (ids in range, no crash of a
// down node, no recovery of a live node, no leave while down, k never
// exceeding the live node count) and throws std::invalid_argument with a
// did-you-mean hint for unknown keys, so a plan that constructed is a
// plan the driver can apply without further checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/types.hpp"

namespace topkmon {

/// One scheduled fault. Fired by the SimDriver at the first tick of the
/// settle phase of observation step `step` (step >= 1; step 0 is
/// initialization and cannot carry events).
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,
    kRecover,
    kJoin,
    kLeave,
    kSetK,
    kLag,
    kStale,
    kMute,
    kHeal,
  };
  Kind kind = Kind::kCrash;
  TimeStep step = 0;
  /// Target node (kCrash/kRecover/kLeave/kLag/kStale/kMute/kHeal); first
  /// id of the joining block (kJoin); unused for kSetK.
  NodeId node = 0;
  /// Number of joining nodes (kJoin); the new k (kSetK); the hold delay
  /// in delivery ticks (kLag); 0 otherwise.
  std::size_t count = 0;
};

/// Human-readable kind name for error messages and logs.
std::string_view fault_kind_name(FaultEvent::Kind kind) noexcept;

/// An immutable, validated fault schedule (see file comment for grammar).
class FaultPlan {
 public:
  /// The empty plan (no events, no extra provisioned nodes).
  FaultPlan() = default;

  /// Parses and validates `spec` against a run of `n` initial nodes with
  /// initial top-k size `k`. Generated churn derives its victim sequence
  /// from `seed` (tagged, SplitMix64-seeded — the Network's link-hash
  /// pattern). Throws std::invalid_argument on any grammar or timeline
  /// violation.
  FaultPlan(std::string_view spec, std::size_t n, std::size_t k,
            std::uint64_t seed);

  /// Trusted factory: wraps pre-validated `events` (already sorted by
  /// step, ids legal against a cluster of `total_nodes` nodes) without
  /// re-parsing or re-validating. The sharded runtime uses it to carve a
  /// validated deployment-level plan into per-shard plans with
  /// shard-local ids; join events keep their explicit node base.
  /// `total_nodes` is the provisioned cluster size (initial nodes plus
  /// every joining block).
  static FaultPlan from_events(std::size_t total_nodes,
                               std::vector<FaultEvent> events);

  /// No events scheduled (also true for spec "none" / "").
  bool empty() const noexcept { return events_.empty(); }

  /// True iff any event changes membership (crash/recover/join/leave).
  /// Degradations and kSetK are not churn.
  bool has_churn() const noexcept { return has_churn_; }

  /// True iff any event is an adversarial degradation (lag/stale/mute/
  /// heal). Sharded deployments accept churn and k plans but reject
  /// degradations (the held-send machinery is per-driver).
  bool has_degradation() const noexcept { return has_degradation_; }

  /// Canonical explicit-form spec that reparses to this exact plan:
  /// "none" for the empty plan, else "churn?" followed by every event in
  /// stored (step-sorted) order. Generated churn round-trips through its
  /// expansion: parse(spec_name()) yields identical events for any seed.
  std::string spec_name() const;

  /// Initial node count the plan was validated against.
  std::size_t initial_nodes() const noexcept { return n_; }

  /// n plus every joining block: the capacity the cluster, streams and
  /// ground truth must be provisioned with. Ids [initial_nodes(),
  /// total_nodes()) start down and go live at their join event.
  std::size_t total_nodes() const noexcept { return total_nodes_; }

  /// All events, sorted by step (stable in spec order within a step).
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

 private:
  std::size_t n_ = 0;
  std::size_t total_nodes_ = 0;
  bool has_churn_ = false;
  bool has_degradation_ = false;
  std::vector<FaultEvent> events_;
};

}  // namespace topkmon
