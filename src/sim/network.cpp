#include "sim/network.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace topkmon {

namespace {

/// Min-heap comparator: the entry with the smallest (due, seq) is popped
/// first, so deliveries surface in arrival order.
struct LaterDelivery {
  bool operator()(const auto& a, const auto& b) const noexcept {
    if (a.due != b.due) return a.due > b.due;
    return a.seq > b.seq;
  }
};

/// Sort key of an empty recipient queue: sorts after every real delivery.
constexpr SimTime kIdle = std::numeric_limits<SimTime>::max();

/// Retained-log length that triggers a compaction scan. Large enough that
/// the O(n) min-cursor scan and the O(tail) erase amortize to nothing per
/// broadcast; small enough that long instant-mode runs stay flat in memory.
constexpr std::size_t kLogCompactThreshold = 4096;

}  // namespace

Network::Network(std::size_t n, CommStats* stats)
    : Network(n, stats, NetworkSpec{}, 0) {}

Network::Network(std::size_t n, CommStats* stats, const NetworkSpec& spec,
                 std::uint64_t seed)
    : spec_(spec),
      instant_(spec.is_instant()),
      stats_(stats),
      unicasts_(n),
      cursors_(n, 0),
      node_sched_(instant_ ? 0 : n) {
  if (stats_ == nullptr) {
    throw std::invalid_argument("Network requires a CommStats sink");
  }
  // Mix the seed once so that a zero scenario seed still decorrelates the
  // link hash from the message sequence numbers.
  std::uint64_t state = seed ^ 0x6E65745F6C696E6Bull;  // "net_link"
  hash_seed_ = splitmix64(state);
  if (!instant_) {
    // Index-heap over the n node queues plus the coordinator queue (id n).
    // All queues start empty, so any initial order is a valid heap.
    qheap_.resize(n + 1);
    qpos_.resize(n + 1);
    for (std::size_t qi = 0; qi <= n; ++qi) {
      qheap_[qi] = qi;
      qpos_[qi] = qi;
    }
  }
}

std::optional<SimTime> Network::schedule_link(std::uint64_t seq,
                                              std::uint32_t link) {
  // One SplitMix64 step over (seed, seq, link) yields independent,
  // drain-order-free randomness for this message instance on this link.
  std::uint64_t state =
      hash_seed_ ^ (seq * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(link) + 1) * 0xBF58476D1CE4E5B9ull;
  const std::uint64_t h = splitmix64(state);
  if (spec_.drop_rate > 0.0) {
    // Top 53 bits -> uniform double in [0, 1).
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < spec_.drop_rate) return std::nullopt;
  }
  SimTime due = now_ + spec_.delay;
  if (spec_.jitter > 0) {
    due += (h & 0xFFFFFFFFull) % (static_cast<std::uint64_t>(spec_.jitter) + 1);
  }
  if (spec_.batch_window > 1) {
    const std::uint64_t w = spec_.batch_window;
    due = (due + w - 1) / w * w;
  }
  return due;
}

std::pair<SimTime, std::size_t> Network::queue_key(std::size_t qi) const {
  const auto& q = queue(qi);
  return {q.empty() ? kIdle : q.front().due, qi};
}

void Network::heap_sift_up(std::size_t pos) {
  const std::size_t qi = qheap_[pos];
  const auto key = queue_key(qi);
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (queue_key(qheap_[parent]) <= key) break;
    qheap_[pos] = qheap_[parent];
    qpos_[qheap_[pos]] = pos;
    pos = parent;
  }
  qheap_[pos] = qi;
  qpos_[qi] = pos;
}

void Network::heap_sift_down(std::size_t pos) {
  const std::size_t qi = qheap_[pos];
  const auto key = queue_key(qi);
  const std::size_t size = qheap_.size();
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= size) break;
    auto child_key = queue_key(qheap_[child]);
    if (child + 1 < size) {
      const auto right_key = queue_key(qheap_[child + 1]);
      if (right_key < child_key) {
        ++child;
        child_key = right_key;
      }
    }
    if (key <= child_key) break;
    qheap_[pos] = qheap_[child];
    qpos_[qheap_[pos]] = pos;
    pos = child;
  }
  qheap_[pos] = qi;
  qpos_[qi] = pos;
}

void Network::queue_front_changed(std::size_t qi) {
  // The key may have moved either way (a push can lower it, pops raise
  // it); one direction is always a no-op, so just try both.
  const std::size_t pos = qpos_[qi];
  heap_sift_up(pos);
  heap_sift_down(qpos_[qi]);
}

void Network::push_scheduled(std::size_t qi, Scheduled s) {
  auto& inbox = queue(qi);
  const bool front_lowered =
      inbox.empty() || LaterDelivery{}(inbox.front(), s);
  inbox.push_back(s);
  std::push_heap(inbox.begin(), inbox.end(), LaterDelivery{});
  ++pending_;
  if (front_lowered) queue_front_changed(qi);
}

void Network::drain_scheduled(std::size_t qi, std::vector<Message>& out) {
  auto& inbox = queue(qi);
  bool popped = false;
  while (!inbox.empty() && inbox.front().due <= now_) {
    std::pop_heap(inbox.begin(), inbox.end(), LaterDelivery{});
    out.push_back(inbox.back().msg);
    inbox.pop_back();
    --pending_;
    popped = true;
  }
  if (popped) queue_front_changed(qi);
}

void Network::node_send(NodeId from, Message m) {
  if (from >= num_nodes()) {
    throw std::out_of_range("Network::node_send: bad node id");
  }
  m.from = from;
  stats_->record_upstream(m.kind);
  if (tap_) tap_(MsgDirection::kUpstream, m);
  const std::uint64_t seq = seq_++;
  if (instant_) {
    coord_inbox_.push_back(m);
    ++pending_;
    return;
  }
  // The coordinator's "link" id is one past the node range.
  const auto coord_link = static_cast<std::uint32_t>(num_nodes());
  if (const auto due = schedule_link(seq, coord_link)) {
    push_scheduled(num_nodes(), Scheduled{*due, seq, m});
  } else {
    ++dropped_;
  }
}

void Network::coord_unicast(NodeId to, Message m) {
  if (to >= num_nodes()) {
    throw std::out_of_range("Network::coord_unicast: bad node id");
  }
  stats_->record_unicast(m.kind);
  if (tap_) tap_(MsgDirection::kUnicast, m);
  const std::uint64_t seq = seq_++;
  if (instant_) {
    unicasts_[to].push_back(Stamped{seq, m});
    ++pending_;
    return;
  }
  if (const auto due = schedule_link(seq, to)) {
    push_scheduled(to, Scheduled{*due, seq, m});
  } else {
    ++dropped_;
  }
}

void Network::coord_broadcast(Message m) {
  stats_->record_broadcast(m.kind);
  if (tap_) tap_(MsgDirection::kBroadcast, m);
  const std::uint64_t seq = seq_++;
  if (instant_) {
    // Shared log + per-node cursors: O(1) regardless of n. Every node has
    // one pending delivery until it next drains.
    broadcast_log_.push_back(Stamped{seq, m});
    pending_ += num_nodes();
    return;
  }
  // Scheduled mode fans the broadcast out per link so each receiver gets
  // its own (possibly jittered/dropped) delivery tick; the shared log is
  // not kept (nothing reads it there, and it would grow without bound
  // over long delay/drop sweeps).
  ++broadcasts_issued_;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (const auto due = schedule_link(seq, id)) {
      push_scheduled(id, Scheduled{*due, seq, m});
    } else {
      ++dropped_;
    }
  }
}

bool Network::coordinator_has_mail() const noexcept {
  if (instant_) return !coord_inbox_.empty();
  return !coord_sched_.empty() && coord_sched_.front().due <= now_;
}

void Network::drain_coordinator(std::vector<Message>& out) {
  out.clear();
  if (instant_) {
    // Swap the burst out: both the caller's scratch and the inbox keep
    // their capacities, so steady-state protocol rounds allocate nothing
    // on either side.
    std::swap(out, coord_inbox_);
    pending_ -= out.size();
    return;
  }
  drain_scheduled(num_nodes(), out);
}

std::vector<Message> Network::drain_coordinator() {
  std::vector<Message> out;
  if (instant_) {
    // Copy-and-clear (not swap): the returning overload must keep the
    // inbox's send-side capacity, or every call would reset it and the
    // next burst of node_sends would regrow the buffer from scratch.
    out.reserve(coord_inbox_.size());
    out.insert(out.end(), std::make_move_iterator(coord_inbox_.begin()),
               std::make_move_iterator(coord_inbox_.end()));
    pending_ -= coord_inbox_.size();
    coord_inbox_.clear();
    return out;
  }
  drain_scheduled(num_nodes(), out);
  return out;
}

void Network::drain_node(NodeId id, std::vector<Message>& out) {
  if (id >= num_nodes()) {
    throw std::out_of_range("Network::drain_node: bad node id");
  }
  out.clear();
  if (!instant_) {
    drain_scheduled(id, out);
    return;
  }
  // Both sources are already seq-ascending (push order), so a two-pointer
  // merge replaces the old collect-then-sort pass and the intermediate
  // vector; the unicast buffer and `out` keep their capacity across
  // drains.
  std::vector<Stamped>& uni = unicasts_[id];
  const std::size_t bstart = cursors_[id] - log_offset_;
  out.reserve(uni.size() + (broadcast_log_.size() - bstart));
  std::size_t u = 0;
  std::size_t b = bstart;
  while (u < uni.size() && b < broadcast_log_.size()) {
    if (uni[u].seq < broadcast_log_[b].seq) {
      out.push_back(uni[u++].msg);
    } else {
      out.push_back(broadcast_log_[b++].msg);
    }
  }
  for (; u < uni.size(); ++u) out.push_back(uni[u].msg);
  for (; b < broadcast_log_.size(); ++b) out.push_back(broadcast_log_[b].msg);
  pending_ -= out.size();
  uni.clear();
  cursors_[id] = log_offset_ + broadcast_log_.size();
  maybe_compact_broadcast_log();
}

std::vector<Message> Network::drain_node(NodeId id) {
  std::vector<Message> out;
  drain_node(id, out);
  return out;
}

void Network::maybe_compact_broadcast_log() {
  if (broadcast_log_.size() < kLogCompactThreshold) return;
  std::size_t min_cursor = log_offset_ + broadcast_log_.size();
  for (const std::size_t c : cursors_) min_cursor = std::min(min_cursor, c);
  const std::size_t read_prefix = min_cursor - log_offset_;
  // Only pay the erase when it reclaims at least half the retained log;
  // a straggler node that never drains simply defers compaction.
  if (read_prefix < broadcast_log_.size() / 2) return;
  broadcast_log_.erase(
      broadcast_log_.begin(),
      broadcast_log_.begin() + static_cast<std::ptrdiff_t>(read_prefix));
  log_offset_ += read_prefix;
}

std::optional<SimTime> Network::earliest_pending() const {
  if (pending_ == 0) return std::nullopt;
  if (instant_) return now_;  // everything deliverable immediately
  // The index-heap root is the queue with the earliest front delivery;
  // with pending_ > 0 at least one queue is non-empty, so the root's key
  // is a real tick, never the idle sentinel.
  return queue(qheap_.front()).front().due;
}

}  // namespace topkmon
