#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace topkmon {

namespace {

/// Min-heap comparator: the entry with the smallest (due, seq) is popped
/// first, so deliveries surface in arrival order.
struct LaterDelivery {
  bool operator()(const auto& a, const auto& b) const noexcept {
    if (a.due != b.due) return a.due > b.due;
    return a.seq > b.seq;
  }
};

}  // namespace

Network::Network(std::size_t n, CommStats* stats)
    : Network(n, stats, NetworkSpec{}, 0) {}

Network::Network(std::size_t n, CommStats* stats, const NetworkSpec& spec,
                 std::uint64_t seed)
    : spec_(spec),
      instant_(spec.is_instant()),
      stats_(stats),
      unicasts_(n),
      cursors_(n, 0),
      node_sched_(instant_ ? 0 : n) {
  if (stats_ == nullptr) {
    throw std::invalid_argument("Network requires a CommStats sink");
  }
  // Mix the seed once so that a zero scenario seed still decorrelates the
  // link hash from the message sequence numbers.
  std::uint64_t state = seed ^ 0x6E65745F6C696E6Bull;  // "net_link"
  hash_seed_ = splitmix64(state);
}

std::optional<SimTime> Network::schedule_link(std::uint64_t seq,
                                              std::uint32_t link) {
  // One SplitMix64 step over (seed, seq, link) yields independent,
  // drain-order-free randomness for this message instance on this link.
  std::uint64_t state =
      hash_seed_ ^ (seq * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(link) + 1) * 0xBF58476D1CE4E5B9ull;
  const std::uint64_t h = splitmix64(state);
  if (spec_.drop_rate > 0.0) {
    // Top 53 bits -> uniform double in [0, 1).
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < spec_.drop_rate) return std::nullopt;
  }
  SimTime due = now_ + spec_.delay;
  if (spec_.jitter > 0) {
    due += (h & 0xFFFFFFFFull) % (static_cast<std::uint64_t>(spec_.jitter) + 1);
  }
  if (spec_.batch_window > 1) {
    const std::uint64_t w = spec_.batch_window;
    due = (due + w - 1) / w * w;
  }
  return due;
}

void Network::push_scheduled(std::vector<Scheduled>& inbox, Scheduled s) {
  inbox.push_back(s);
  std::push_heap(inbox.begin(), inbox.end(), LaterDelivery{});
  ++pending_;
}

void Network::drain_scheduled(std::vector<Scheduled>& inbox,
                              std::vector<Message>& out) {
  while (!inbox.empty() && inbox.front().due <= now_) {
    std::pop_heap(inbox.begin(), inbox.end(), LaterDelivery{});
    out.push_back(inbox.back().msg);
    inbox.pop_back();
    --pending_;
  }
}

void Network::node_send(NodeId from, Message m) {
  if (from >= num_nodes()) {
    throw std::out_of_range("Network::node_send: bad node id");
  }
  m.from = from;
  stats_->record_upstream(m.kind);
  if (tap_) tap_(MsgDirection::kUpstream, m);
  const std::uint64_t seq = seq_++;
  if (instant_) {
    coord_inbox_.push_back(m);
    ++pending_;
    return;
  }
  // The coordinator's "link" id is one past the node range.
  const auto coord_link = static_cast<std::uint32_t>(num_nodes());
  if (const auto due = schedule_link(seq, coord_link)) {
    push_scheduled(coord_sched_, Scheduled{*due, seq, m});
  } else {
    ++dropped_;
  }
}

void Network::coord_unicast(NodeId to, Message m) {
  if (to >= num_nodes()) {
    throw std::out_of_range("Network::coord_unicast: bad node id");
  }
  stats_->record_unicast(m.kind);
  if (tap_) tap_(MsgDirection::kUnicast, m);
  const std::uint64_t seq = seq_++;
  if (instant_) {
    unicasts_[to].push_back(Stamped{seq, m});
    ++pending_;
    return;
  }
  if (const auto due = schedule_link(seq, to)) {
    push_scheduled(node_sched_[to], Scheduled{*due, seq, m});
  } else {
    ++dropped_;
  }
}

void Network::coord_broadcast(Message m) {
  stats_->record_broadcast(m.kind);
  if (tap_) tap_(MsgDirection::kBroadcast, m);
  const std::uint64_t seq = seq_++;
  if (instant_) {
    // Shared log + per-node cursors: O(1) regardless of n. Every node has
    // one pending delivery until it next drains.
    broadcast_log_.push_back(Stamped{seq, m});
    pending_ += num_nodes();
    return;
  }
  // Scheduled mode fans the broadcast out per link so each receiver gets
  // its own (possibly jittered/dropped) delivery tick; the shared log is
  // not kept (nothing reads it there, and it would grow without bound
  // over long delay/drop sweeps).
  ++broadcasts_issued_;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (const auto due = schedule_link(seq, id)) {
      push_scheduled(node_sched_[id], Scheduled{*due, seq, m});
    } else {
      ++dropped_;
    }
  }
}

bool Network::coordinator_has_mail() const noexcept {
  if (instant_) return !coord_inbox_.empty();
  return !coord_sched_.empty() && coord_sched_.front().due <= now_;
}

std::vector<Message> Network::drain_coordinator() {
  std::vector<Message> out;
  if (instant_) {
    // Move the burst out while keeping the inbox buffer's capacity, so
    // steady-state protocol rounds allocate nothing on the send side.
    out.reserve(coord_inbox_.size());
    out.insert(out.end(), std::make_move_iterator(coord_inbox_.begin()),
               std::make_move_iterator(coord_inbox_.end()));
    pending_ -= coord_inbox_.size();
    coord_inbox_.clear();
    return out;
  }
  drain_scheduled(coord_sched_, out);
  return out;
}

std::vector<Message> Network::drain_node(NodeId id) {
  if (id >= num_nodes()) {
    throw std::out_of_range("Network::drain_node: bad node id");
  }
  std::vector<Message> out;
  if (!instant_) {
    drain_scheduled(node_sched_[id], out);
    return out;
  }
  // Both sources are already seq-ascending (push order), so a two-pointer
  // merge replaces the old collect-then-sort pass and the intermediate
  // vector; the unicast buffer keeps its capacity across drains.
  std::vector<Stamped>& uni = unicasts_[id];
  const std::size_t bstart = cursors_[id];
  const std::size_t bcount = broadcast_log_.size() - bstart;
  out.reserve(uni.size() + bcount);
  std::size_t u = 0;
  std::size_t b = bstart;
  while (u < uni.size() && b < broadcast_log_.size()) {
    if (uni[u].seq < broadcast_log_[b].seq) {
      out.push_back(uni[u++].msg);
    } else {
      out.push_back(broadcast_log_[b++].msg);
    }
  }
  for (; u < uni.size(); ++u) out.push_back(uni[u].msg);
  for (; b < broadcast_log_.size(); ++b) out.push_back(broadcast_log_[b].msg);
  pending_ -= out.size();
  uni.clear();
  cursors_[id] = broadcast_log_.size();
  return out;
}

std::optional<SimTime> Network::earliest_pending() const {
  if (pending_ == 0) return std::nullopt;
  if (instant_) return now_;  // everything deliverable immediately
  std::optional<SimTime> best;
  const auto consider = [&best](const std::vector<Scheduled>& heap) {
    if (!heap.empty() && (!best || heap.front().due < *best)) {
      best = heap.front().due;
    }
  };
  consider(coord_sched_);
  for (const auto& heap : node_sched_) consider(heap);
  return best;
}

}  // namespace topkmon
