#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

Network::Network(std::size_t n, CommStats* stats)
    : stats_(stats), unicasts_(n), cursors_(n, 0) {
  if (stats_ == nullptr) {
    throw std::invalid_argument("Network requires a CommStats sink");
  }
}

void Network::node_send(NodeId from, Message m) {
  if (from >= num_nodes()) {
    throw std::out_of_range("Network::node_send: bad node id");
  }
  m.from = from;
  stats_->record_upstream(m.kind);
  if (tap_) tap_(MsgDirection::kUpstream, m);
  coord_inbox_.push_back(m);
}

void Network::coord_unicast(NodeId to, Message m) {
  if (to >= num_nodes()) {
    throw std::out_of_range("Network::coord_unicast: bad node id");
  }
  stats_->record_unicast(m.kind);
  if (tap_) tap_(MsgDirection::kUnicast, m);
  unicasts_[to].push_back(Stamped{seq_++, m});
}

void Network::coord_broadcast(Message m) {
  stats_->record_broadcast(m.kind);
  if (tap_) tap_(MsgDirection::kBroadcast, m);
  broadcast_log_.push_back(Stamped{seq_++, m});
}

std::vector<Message> Network::drain_coordinator() {
  std::vector<Message> out;
  out.swap(coord_inbox_);
  return out;
}

std::vector<Message> Network::drain_node(NodeId id) {
  if (id >= num_nodes()) {
    throw std::out_of_range("Network::drain_node: bad node id");
  }
  std::vector<Stamped> pending;
  pending.swap(unicasts_[id]);
  for (std::size_t c = cursors_[id]; c < broadcast_log_.size(); ++c) {
    pending.push_back(broadcast_log_[c]);
  }
  cursors_[id] = broadcast_log_.size();
  std::sort(pending.begin(), pending.end(),
            [](const Stamped& x, const Stamped& y) { return x.seq < y.seq; });
  std::vector<Message> out;
  out.reserve(pending.size());
  for (const auto& s : pending) out.push_back(s.msg);
  return out;
}

}  // namespace topkmon
