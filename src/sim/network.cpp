#include "sim/network.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace topkmon {

namespace {

/// Min-heap comparator for the overflow heap: the entry with the
/// smallest (due, seq) is popped first, so deliveries surface in send
/// order within a tick.
struct LaterDelivery {
  bool operator()(const auto& a, const auto& b) const noexcept {
    if (a.due != b.due) return a.due > b.due;
    return a.seq > b.seq;
  }
};

/// "No scheduled tick" sentinel.
constexpr SimTime kNoTick = std::numeric_limits<SimTime>::max();

/// Retained-log length that triggers a compaction scan. Large enough that
/// the O(n) min-cursor scan and the O(tail) erase amortize to nothing per
/// broadcast; small enough that long instant-mode runs stay flat in memory.
constexpr std::size_t kLogCompactThreshold = 4096;

/// Upper bound on the timing-wheel span in ticks. Specs whose worst-case
/// delay fits under this bound (all realistic ones) never touch the
/// overflow heap; larger delays merely fall back to O(log pending) pushes
/// for the far-future tail.
constexpr std::uint64_t kMaxWheelSpan = 4096;

}  // namespace

Network::Network(std::size_t n, CommStats* stats)
    : Network(n, stats, NetworkSpec{}, 0) {}

Network::Network(std::size_t n, CommStats* stats, const NetworkSpec& spec,
                 std::uint64_t seed, NodeRuntime* runtime)
    : spec_(spec),
      instant_(spec.is_instant()),
      stats_(stats),
      unicasts_(n),
      cursors_(n, 0) {
  if (stats_ == nullptr) {
    throw std::invalid_argument("Network requires a CommStats sink");
  }
  if (runtime != nullptr) {
    due_mail_ = &runtime->due_mail;  // shared structure-of-arrays state
    alive_ = &runtime->alive;
  } else {
    owned_due_mail_ = IdBitset(n);
    due_mail_ = &owned_due_mail_;
    owned_alive_ = IdBitset(n);
    owned_alive_.set_all();
    alive_ = &owned_alive_;
  }
  // Mix the seed once so that a zero scenario seed still decorrelates the
  // link hash from the message sequence numbers.
  std::uint64_t state = seed ^ 0x6E65745F6C696E6Bull;  // "net_link"
  hash_seed_ = splitmix64(state);
  if (!instant_) {
    // Wheel span: one bucket per tick of the spec's worst-case schedule
    // offset (delay + jitter, plus batch-window rounding), power-of-two
    // sized for mask indexing and capped so a pathological delay cannot
    // allocate an unbounded wheel (the overflow heap absorbs the rest).
    std::uint64_t span = spec_.max_delay() + 2;
    if (spec_.batch_window > 1) span += spec_.batch_window - 1;
    const std::uint64_t size = next_pow2(std::min(span, kMaxWheelSpan));
    wheel_.assign(size, MsgList{});
    wheel_bits_.assign((size + 63) / 64, 0);
    wheel_mask_ = size - 1;
    ready_.assign(n + 1, MsgList{});
  }
}

std::optional<SimTime> Network::schedule_link(std::uint64_t seq,
                                              std::uint32_t link) {
  // One SplitMix64 step over (seed, seq, link) yields independent,
  // drain-order-free randomness for this message instance on this link.
  std::uint64_t state =
      hash_seed_ ^ (seq * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(link) + 1) * 0xBF58476D1CE4E5B9ull;
  const std::uint64_t h = splitmix64(state);
  if (spec_.drop_rate > 0.0) {
    // Top 53 bits -> uniform double in [0, 1).
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < spec_.drop_rate) return std::nullopt;
  }
  SimTime due = now_ + spec_.delay;
  if (spec_.jitter > 0) {
    due += (h & 0xFFFFFFFFull) % (static_cast<std::uint64_t>(spec_.jitter) + 1);
  }
  if (spec_.batch_window > 1) {
    const std::uint64_t w = spec_.batch_window;
    due = (due + w - 1) / w * w;
  }
  return due;
}

std::uint32_t Network::slab_alloc(const Message& m, std::uint32_t recipient) {
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = slab_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  slab_[idx].msg = m;
  slab_[idx].next = kNil;
  slab_[idx].recipient = recipient;
  return idx;
}

void Network::slab_free(std::uint32_t idx) {
  slab_[idx].next = free_head_;
  free_head_ = idx;
}

void Network::append_ready(std::uint32_t recipient, std::uint32_t idx) {
  if (down_count_ != 0 && recipient < num_nodes() &&
      !alive_->test(static_cast<NodeId>(recipient))) {
    // Delivery-time drop: the recipient is down at the due tick. The send
    // was charged when it happened; the delivery just never lands.
    slab_free(idx);
    --pending_;
    ++dropped_;
    return;
  }
  MsgList& list = ready_[recipient];
  if (list.tail == kNil) {
    list.head = idx;
  } else {
    slab_[list.tail].next = idx;
  }
  list.tail = idx;
  ++ready_count_;
  if (recipient < num_nodes()) due_mail_->set(static_cast<NodeId>(recipient));
}

void Network::schedule_delivery(std::uint32_t recipient, SimTime due,
                                std::uint64_t seq, const Message& m) {
  ++pending_;
  if (due <= now_) {
    append_ready(recipient, slab_alloc(m, recipient));
    return;
  }
  if (due - now_ <= wheel_mask_) {
    const std::uint32_t idx = slab_alloc(m, recipient);
    const auto slot = static_cast<std::size_t>(due & wheel_mask_);
    MsgList& bucket = wheel_[slot];
    // Sends happen in global seq order, so each bucket's list is
    // automatically (due, seq)-sorted by appending.
    if (bucket.tail == kNil) {
      bucket.head = idx;
    } else {
      slab_[bucket.tail].next = idx;
    }
    bucket.tail = idx;
    wheel_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    return;
  }
  overflow_.push_back(Overflow{due, seq, recipient, m});
  std::push_heap(overflow_.begin(), overflow_.end(), LaterDelivery{});
}

SimTime Network::next_wheel_tick() const {
  // Every occupied bucket holds the unique in-span due tick congruent to
  // its slot index, so the first occupied slot in circular order starting
  // at (now_ + 1) is the earliest wheel delivery. Two linear word-wise
  // passes ([start, size) then the wrapped [0, start)) — O(span/64),
  // independent of n and of pending message count.
  const std::uint64_t size = wheel_mask_ + 1;
  const std::uint64_t start = (now_ + 1) & wheel_mask_;
  const auto first_set_in = [&](std::uint64_t from,
                                std::uint64_t to) -> std::uint64_t {
    // First occupied slot in [from, to), or `size` when none. Only the
    // range's first word needs masking; a hit in its last word may belong
    // to the other pass and is rejected by the `< to` check (the word's
    // lowest set bit being >= to implies no set bit below it).
    for (std::uint64_t w = from >> 6; w <= (to - 1) >> 6; ++w) {
      std::uint64_t word = wheel_bits_[w];
      if (w == (from >> 6)) word &= (~std::uint64_t{0}) << (from & 63);
      if (word == 0) continue;
      const std::uint64_t slot =
          w * 64 + static_cast<std::uint64_t>(std::countr_zero(word));
      return slot < to ? slot : size;
    }
    return size;
  };
  std::uint64_t slot = first_set_in(start, size);
  if (slot == size && start != 0) slot = first_set_in(0, start);
  if (slot == size) return kNoTick;
  return now_ + 1 + ((slot - start) & wheel_mask_);
}

void Network::flush_tick(SimTime t) {
  // Overflow entries first: a tick-t overflow message was necessarily
  // sent before any tick-t wheel message (its schedule offset exceeded
  // the wheel span, so its send tick — and hence its seq — is smaller),
  // and heap pops with equal due come out in seq order.
  while (!overflow_.empty() && overflow_.front().due == t) {
    std::pop_heap(overflow_.begin(), overflow_.end(), LaterDelivery{});
    const Overflow& o = overflow_.back();
    append_ready(o.recipient, slab_alloc(o.msg, o.recipient));
    overflow_.pop_back();
  }
  const auto slot = static_cast<std::size_t>(t & wheel_mask_);
  std::uint32_t idx = wheel_[slot].head;
  while (idx != kNil) {
    const std::uint32_t next = slab_[idx].next;
    slab_[idx].next = kNil;
    append_ready(slab_[idx].recipient, idx);
    idx = next;
  }
  wheel_[slot] = MsgList{};
  wheel_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
}

void Network::advance_clock_to(SimTime t) {
  if (instant_ || wheel_.empty()) {
    if (t > now_) now_ = t;
    return;
  }
  while (now_ < t) {
    // Next event tick: min of the wheel's first occupied bucket and the
    // overflow top. Empty tick ranges are skipped in one step.
    SimTime e = next_wheel_tick();
    if (!overflow_.empty()) e = std::min(e, overflow_.front().due);
    if (e > t) {
      now_ = t;
      return;
    }
    now_ = e;
    flush_tick(e);
  }
}

void Network::node_send(NodeId from, Message m) {
  if (from >= num_nodes()) {
    throw std::out_of_range("Network::node_send: bad node id");
  }
  assert(alive_->test(from) && "a down node cannot send");
  m.from = from;
  stats_->record_upstream(m.kind);
  if (tap_) tap_(MsgDirection::kUpstream, m);
  const std::uint64_t seq = seq_++;
  if (instant_) {
    coord_inbox_.push_back(m);
    ++pending_;
    return;
  }
  // The coordinator's "link" id is one past the node range.
  const auto coord_link = static_cast<std::uint32_t>(num_nodes());
  if (const auto due = schedule_link(seq, coord_link)) {
    schedule_delivery(coord_link, *due, seq, m);
  } else {
    ++dropped_;
  }
}

void Network::coord_unicast(NodeId to, Message m) {
  if (to >= num_nodes()) {
    throw std::out_of_range("Network::coord_unicast: bad node id");
  }
  stats_->record_unicast(m.kind);
  if (tap_) tap_(MsgDirection::kUnicast, m);
  const std::uint64_t seq = seq_++;
  if (instant_) {
    if (down_count_ != 0 && !alive_->test(to)) {
      ++dropped_;  // instant delivery to a down node: charged, never lands
      return;
    }
    unicasts_[to].push_back(Stamped{seq, m});
    ++pending_;
    due_mail_->set(to);
    return;
  }
  if (const auto due = schedule_link(seq, to)) {
    schedule_delivery(to, *due, seq, m);
  } else {
    ++dropped_;
  }
}

void Network::coord_broadcast(Message m) {
  stats_->record_broadcast(m.kind);
  if (tap_) tap_(MsgDirection::kBroadcast, m);
  const std::uint64_t seq = seq_++;
  if (instant_) {
    // Shared log + per-node cursors: O(1) regardless of n (the word-wise
    // due-bit fill is n/64). Every node has one pending delivery until it
    // next drains.
    bcast_msgs_.push_back(m);
    bcast_seqs_.push_back(seq);
    pending_ += num_nodes() - down_count_;
    due_mail_->set_all();
    if (down_count_ != 0) {
      // Down nodes never see this entry: their due bits stay clear and
      // set_node_up fast-forwards their cursor past it. The per-link
      // deliveries they miss are dropped here, at delivery time.
      due_mail_->mask_with(*alive_);
      dropped_ += down_count_;
    }
    return;
  }
  // Scheduled mode fans the broadcast out per link so each receiver gets
  // its own (possibly jittered/dropped) delivery tick; the shared log is
  // not kept (nothing reads it there, and it would grow without bound
  // over long delay/drop sweeps).
  ++broadcasts_issued_;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (const auto due = schedule_link(seq, id)) {
      schedule_delivery(id, *due, seq, m);
    } else {
      ++dropped_;
    }
  }
}

bool Network::coordinator_has_mail() const noexcept {
  if (instant_) return !coord_inbox_.empty();
  return ready_[num_nodes()].head != kNil;
}

void Network::drain_scheduled(std::size_t qi, std::vector<Message>& out,
                              DrainStage* stage) {
  MsgList& list = ready_[qi];
  std::uint32_t idx = list.head;
  while (idx != kNil) {
    out.push_back(slab_[idx].msg);
    const std::uint32_t next = slab_[idx].next;
    if (stage != nullptr) {
      // Staged free: thread the node onto the stage's private chain (the
      // shared free list is owned by the main thread); the chain is
      // spliced back in one O(1) step by commit_drain_stage.
      slab_[idx].next = stage->free_head;
      if (stage->free_head == kNil) stage->free_tail = idx;
      stage->free_head = idx;
    } else {
      slab_free(idx);
    }
    idx = next;
  }
  if (stage != nullptr) {
    stage->delivered += out.size();
    stage->drained += out.size();
  } else {
    pending_ -= out.size();
    ready_count_ -= out.size();
  }
  list = MsgList{};
  if (qi < num_nodes()) due_mail_->clear(static_cast<NodeId>(qi));
}

void Network::drain_coordinator(std::vector<Message>& out) {
  out.clear();
  if (instant_) {
    // Swap the burst out: both the caller's scratch and the inbox keep
    // their capacities, so steady-state protocol rounds allocate nothing
    // on either side.
    std::swap(out, coord_inbox_);
    pending_ -= out.size();
    return;
  }
  drain_scheduled(num_nodes(), out);
}

std::vector<Message> Network::drain_coordinator() {
  std::vector<Message> out;
  if (instant_) {
    // Copy-and-clear (not swap): the returning overload must keep the
    // inbox's send-side capacity, or every call would reset it and the
    // next burst of node_sends would regrow the buffer from scratch.
    out.reserve(coord_inbox_.size());
    out.insert(out.end(), std::make_move_iterator(coord_inbox_.begin()),
               std::make_move_iterator(coord_inbox_.end()));
    pending_ -= coord_inbox_.size();
    coord_inbox_.clear();
    return out;
  }
  drain_scheduled(num_nodes(), out);
  return out;
}

std::size_t Network::merge_instant_mail(NodeId id, std::vector<Message>& out) {
  // Both sources are already seq-ascending (push order), so a two-pointer
  // merge replaces the old collect-then-sort pass and the intermediate
  // vector; the unicast buffer and `out` keep their capacity across
  // drains. The log's parallel layout keeps the comparison loop on the
  // dense seq array.
  std::vector<Stamped>& uni = unicasts_[id];
  const std::size_t bstart = cursors_[id] - log_offset_;
  out.reserve(uni.size() + (bcast_msgs_.size() - bstart));
  std::size_t u = 0;
  std::size_t b = bstart;
  while (u < uni.size() && b < bcast_msgs_.size()) {
    if (uni[u].seq < bcast_seqs_[b]) {
      out.push_back(uni[u++].msg);
    } else {
      out.push_back(bcast_msgs_[b++]);
    }
  }
  for (; u < uni.size(); ++u) out.push_back(uni[u].msg);
  for (; b < bcast_msgs_.size(); ++b) out.push_back(bcast_msgs_[b]);
  const std::size_t delivered = uni.size() + (bcast_msgs_.size() - bstart);
  uni.clear();
  cursors_[id] = log_offset_ + bcast_msgs_.size();
  due_mail_->clear(id);
  return delivered;
}

void Network::drain_node(NodeId id, std::vector<Message>& out) {
  if (id >= num_nodes()) {
    throw std::out_of_range("Network::drain_node: bad node id");
  }
  out.clear();
  if (!instant_) {
    drain_scheduled(id, out);
    return;
  }
  pending_ -= merge_instant_mail(id, out);
  maybe_compact_broadcast_log();
}

void Network::drain_node_staged(NodeId id, std::vector<Message>& out,
                                DrainStage& stage) {
  if (id >= num_nodes()) {
    throw std::out_of_range("Network::drain_node_staged: bad node id");
  }
  out.clear();
  if (!instant_) {
    drain_scheduled(id, out, &stage);
    return;
  }
  stage.delivered += merge_instant_mail(id, out);
  // Deliberately no compaction: other shards hold in-place log suffixes.
}

std::vector<Message> Network::drain_node(NodeId id) {
  std::vector<Message> out;
  drain_node(id, out);
  return out;
}

void Network::set_node_down(NodeId id) {
  if (id >= num_nodes()) {
    throw std::out_of_range("Network::set_node_down: bad node id");
  }
  if (!alive_->test(id)) return;
  alive_->clear(id);
  ++down_count_;
  if (instant_) {
    // Queued-but-undrained mail dies with the node.
    const std::size_t total = log_offset_ + bcast_msgs_.size();
    const std::uint64_t queued =
        unicasts_[id].size() + (total - cursors_[id]);
    pending_ -= queued;
    dropped_ += queued;
    unicasts_[id].clear();
    cursors_[id] = total;
  } else if (!ready_.empty()) {
    // Purge the delivered-but-undrained ready list; in-flight wheel /
    // overflow entries addressed to the node are dropped lazily at their
    // due tick by append_ready.
    MsgList& list = ready_[id];
    std::uint32_t idx = list.head;
    std::uint64_t purged = 0;
    while (idx != kNil) {
      const std::uint32_t next = slab_[idx].next;
      slab_free(idx);
      idx = next;
      ++purged;
    }
    list = MsgList{};
    pending_ -= purged;
    ready_count_ -= purged;
    dropped_ += purged;
  }
  due_mail_->clear(id);
}

void Network::set_node_up(NodeId id) {
  if (id >= num_nodes()) {
    throw std::out_of_range("Network::set_node_up: bad node id");
  }
  if (alive_->test(id)) return;
  alive_->set(id);
  --down_count_;
  if (instant_) {
    // Skip every broadcast issued during the outage (each was already
    // counted dropped at issue time); delivery resumes with the next send.
    cursors_[id] = log_offset_ + bcast_msgs_.size();
  }
}

void Network::maybe_compact_broadcast_log() {
  if (bcast_msgs_.size() < kLogCompactThreshold) return;
  std::size_t min_cursor = log_offset_ + bcast_msgs_.size();
  if (down_count_ == 0) {
    for (const std::size_t c : cursors_) min_cursor = std::min(min_cursor, c);
  } else {
    // A down node's cursor is parked at its crash point and fast-forwarded
    // on recovery; it must not pin the log prefix for the whole outage.
    for (NodeId id = 0; id < num_nodes(); ++id) {
      if (alive_->test(id)) min_cursor = std::min(min_cursor, cursors_[id]);
    }
  }
  const std::size_t read_prefix = min_cursor - log_offset_;
  // Only pay the erase when it reclaims at least half the retained log;
  // a straggler node that never drains simply defers compaction.
  if (read_prefix < bcast_msgs_.size() / 2) return;
  const auto cut = static_cast<std::ptrdiff_t>(read_prefix);
  bcast_msgs_.erase(bcast_msgs_.begin(), bcast_msgs_.begin() + cut);
  bcast_seqs_.erase(bcast_seqs_.begin(), bcast_seqs_.begin() + cut);
  log_offset_ += read_prefix;
}

std::optional<SimTime> Network::earliest_pending() const {
  if (pending_ == 0) return std::nullopt;
  if (instant_ || ready_count_ > 0) return now_;  // deliverable right away
  SimTime e = next_wheel_tick();
  if (!overflow_.empty()) e = std::min(e, overflow_.front().due);
  return e;
}

}  // namespace topkmon
