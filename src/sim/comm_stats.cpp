#include "sim/comm_stats.hpp"

#include <sstream>

namespace topkmon {

void CommStats::bump(MsgKind kind) noexcept {
  ++by_kind_[static_cast<std::size_t>(kind)];
  if (series_enabled_ && !series_.empty()) ++series_.back();
}

void CommStats::record_upstream(MsgKind kind) noexcept {
  ++upstream_;
  bump(kind);
}

void CommStats::record_unicast(MsgKind kind) noexcept {
  ++unicast_;
  bump(kind);
}

void CommStats::record_broadcast(MsgKind kind) noexcept {
  ++broadcast_;
  bump(kind);
}

void CommStats::begin_step(TimeStep) {
  if (series_enabled_) series_.push_back(0);
}

std::vector<std::uint64_t> CommStats::cumulative_series() const {
  std::vector<std::uint64_t> cum;
  cum.reserve(series_.size());
  std::uint64_t acc = 0;
  for (const auto s : series_) {
    acc += s;
    cum.push_back(acc);
  }
  return cum;
}

void CommStats::reset() noexcept {
  upstream_ = 0;
  unicast_ = 0;
  broadcast_ = 0;
  by_kind_.fill(0);
  series_.clear();
}

std::string CommStats::summary() const {
  std::ostringstream out;
  out << "total=" << total() << " (up=" << upstream_ << ", uni=" << unicast_
      << ", bcast=" << broadcast_ << ")";
  return out.str();
}

}  // namespace topkmon
