#include "sim/fault_plan.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace topkmon {
namespace {

[[noreturn]] void bad(std::string_view spec, const std::string& what) {
  throw std::invalid_argument("fault plan '" + std::string(spec) +
                              "': " + what);
}

const std::vector<std::string>& known_keys() {
  static const std::vector<std::string> keys = {
      "crash", "recover", "join",  "leave",  "k",    "every", "down",
      "count", "outage",  "lag",   "stale",  "mute", "heal"};
  return keys;
}

std::string state_phrase(int state) {
  switch (state) {
    case 0: return "is up";
    case 1: return "is already down";
    case 2: return "has left";
    default: return "has not joined yet (its join event is scheduled later)";
  }
}

}  // namespace

std::string_view fault_kind_name(FaultEvent::Kind kind) noexcept {
  switch (kind) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kRecover: return "recover";
    case FaultEvent::Kind::kJoin: return "join";
    case FaultEvent::Kind::kLeave: return "leave";
    case FaultEvent::Kind::kSetK: return "k";
    case FaultEvent::Kind::kLag: return "lag";
    case FaultEvent::Kind::kStale: return "stale";
    case FaultEvent::Kind::kMute: return "mute";
    case FaultEvent::Kind::kHeal: return "heal";
  }
  return "?";
}

FaultPlan::FaultPlan(std::string_view spec, std::size_t n, std::size_t k,
                     std::uint64_t seed)
    : n_(n), total_nodes_(n) {
  if (n == 0) bad(spec, "a fault plan needs at least one node");

  const std::size_t q = spec.find('?');
  const std::string_view name = spec.substr(0, q);
  const std::string_view params =
      q == std::string_view::npos ? std::string_view{} : spec.substr(q + 1);

  if (name.empty() || name == "none") {
    if (!params.empty()) bad(spec, "plan 'none' takes no parameters");
    return;
  }
  if (name != "churn") {
    std::string msg = "unknown plan '" + std::string(name) + "'";
    const auto hints =
        closest_matches(name, std::vector<std::string>{"churn", "none"});
    if (!hints.empty()) msg += "; did you mean '" + hints[0] + "'?";
    bad(spec, msg);
  }

  // -- grammar pass: explicit events + generated-churn parameters ----------
  std::uint64_t gen_every = 0, gen_down = 1, gen_count = 4, gen_outage = 0;
  bool gen_used = false, gen_outage_set = false, explicit_membership = false;

  const auto parse_step = [&](std::string_view text,
                              std::string_view item) -> TimeStep {
    const auto s = to_u64(text);
    if (!s) bad(spec, "malformed step in '" + std::string(item) + "'");
    if (*s == 0) {
      bad(spec, "event '" + std::string(item) +
                    "' is scheduled at step 0 (step 0 is initialization; "
                    "events fire from step 1 on)");
    }
    return *s;
  };

  for (const std::string_view item : split(params, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      bad(spec, "malformed parameter '" + std::string(item) +
                    "' (expected key=value)");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view rest = item.substr(eq + 1);
    const std::size_t at = rest.find('@');

    if (key == "every" || key == "down" || key == "count" ||
        key == "outage") {
      if (at != std::string_view::npos) {
        bad(spec, "'" + std::string(key) +
                      "' is a generated-churn parameter and takes no @step");
      }
      const auto v = to_u64(rest);
      if (!v || *v == 0) {
        bad(spec, "malformed value in '" + std::string(item) + "'");
      }
      gen_used = true;
      if (key == "every") gen_every = *v;
      if (key == "down") gen_down = *v;
      if (key == "count") gen_count = *v;
      if (key == "outage") gen_outage = *v, gen_outage_set = true;
      continue;
    }

    if (key == "lag" || key == "stale" || key == "mute" || key == "heal") {
      if (at == std::string_view::npos) {
        bad(spec, "event '" + std::string(item) +
                      "' is missing its @step schedule");
      }
      std::string_view step_text = rest.substr(at + 1);
      FaultEvent ev;
      if (key == "lag") {
        const std::size_t colon = step_text.find(':');
        if (colon == std::string_view::npos) {
          bad(spec, "lag takes a hold delay: lag=ID@STEP:TICKS, got '" +
                        std::string(item) + "'");
        }
        const auto ticks = to_u64(step_text.substr(colon + 1));
        if (!ticks || *ticks == 0) {
          bad(spec, "malformed lag ticks in '" + std::string(item) +
                        "' (must be >= 1)");
        }
        ev.count = *ticks;
        step_text = step_text.substr(0, colon);
        ev.kind = FaultEvent::Kind::kLag;
      } else {
        ev.kind = key == "stale"  ? FaultEvent::Kind::kStale
                  : key == "mute" ? FaultEvent::Kind::kMute
                                  : FaultEvent::Kind::kHeal;
      }
      ev.step = parse_step(step_text, item);
      const auto id = to_u64(rest.substr(0, at));
      if (!id) bad(spec, "malformed node id in '" + std::string(item) + "'");
      ev.node = static_cast<NodeId>(*id);
      if (*id != ev.node) {
        bad(spec, "node id in '" + std::string(item) +
                      "' exceeds the 32-bit id space");
      }
      events_.push_back(ev);
      continue;
    }

    if (key == "crash" || key == "recover" || key == "leave" ||
        key == "join" || key == "k") {
      if (at == std::string_view::npos) {
        bad(spec, "event '" + std::string(item) +
                      "' is missing its @step schedule");
      }
      const TimeStep step = parse_step(rest.substr(at + 1), item);
      const std::string_view value = rest.substr(0, at);
      FaultEvent ev;
      ev.step = step;
      if (key == "k") {
        const auto kk = to_u64(value);
        if (!kk || *kk == 0) {
          bad(spec, "malformed k in '" + std::string(item) +
                        "' (k must be >= 1)");
        }
        ev.kind = FaultEvent::Kind::kSetK;
        ev.count = *kk;
      } else if (key == "join") {
        if (value.empty() || value[0] != '+') {
          bad(spec, "join takes a node count: join=+N@step, got '" +
                        std::string(item) + "'");
        }
        const auto c = to_u64(value.substr(1));
        if (!c || *c == 0) {
          bad(spec, "malformed join count in '" + std::string(item) + "'");
        }
        ev.kind = FaultEvent::Kind::kJoin;
        ev.count = *c;
        explicit_membership = true;
      } else {
        const auto id = to_u64(value);
        if (!id) bad(spec, "malformed node id in '" + std::string(item) + "'");
        ev.kind = key == "crash"   ? FaultEvent::Kind::kCrash
                  : key == "leave" ? FaultEvent::Kind::kLeave
                                   : FaultEvent::Kind::kRecover;
        ev.node = static_cast<NodeId>(*id);
        if (*id != ev.node) {
          bad(spec, "node id in '" + std::string(item) +
                        "' exceeds the 32-bit id space");
        }
        explicit_membership = true;
      }
      events_.push_back(ev);
      continue;
    }

    std::string msg = "unknown key '" + std::string(key) + "'";
    const auto hints = closest_matches(key, known_keys());
    if (!hints.empty()) msg += "; did you mean '" + hints[0] + "'?";
    bad(spec, msg);
  }

  if (gen_used && explicit_membership) {
    bad(spec,
        "generated churn (every/down/count/outage) cannot be mixed with "
        "explicit membership events; only k=K@step composes with it");
  }

  // -- generated churn: expand bursts into crash/recover events ------------
  // Victim draws derive from the run seed through a tagged generator (the
  // Network link-hash pattern): independent of node/stream RNG streams,
  // identical across --jobs/--workers, and consumed only when a plan is
  // configured — a fault-free run never touches it.
  if (gen_used) {
    if (gen_every == 0) {
      bad(spec, "generated churn requires a period: every=T");
    }
    if (!gen_outage_set) gen_outage = std::max<std::uint64_t>(1, gen_every / 2);
    Rng rng(seed ^ 0x6661756C745F706Cull);  // "fault_pl"
    std::vector<NodeId> live(n);
    std::iota(live.begin(), live.end(), NodeId{0});
    std::vector<std::pair<TimeStep, NodeId>> pending;  // scheduled recoveries
    std::vector<FaultEvent> gen;
    const auto drain_pending = [&](TimeStep up_to) {
      std::sort(pending.begin(), pending.end());
      std::size_t i = 0;
      for (; i < pending.size() && pending[i].first <= up_to; ++i) {
        gen.push_back({FaultEvent::Kind::kRecover, pending[i].first,
                       pending[i].second, 0});
        live.push_back(pending[i].second);
      }
      pending.erase(pending.begin(), pending.begin() + i);
    };
    for (std::uint64_t burst = 0; burst < gen_count; ++burst) {
      const TimeStep s = gen_every * (burst + 1);
      drain_pending(s);
      for (std::uint64_t d = 0; d < gen_down; ++d) {
        if (live.empty()) {
          bad(spec, "churn burst at step " + std::to_string(s) +
                        " has no live node left to crash (down=" +
                        std::to_string(gen_down) + " is too aggressive)");
        }
        const std::size_t idx =
            static_cast<std::size_t>(rng.uniform_below(live.size()));
        const NodeId victim = live[idx];
        live[idx] = live.back();
        live.pop_back();
        gen.push_back({FaultEvent::Kind::kCrash, s, victim, 0});
        pending.emplace_back(s + gen_outage, victim);
      }
    }
    drain_pending(~TimeStep{0});  // emit the tail recoveries
    // Generated events first (chronological), explicit k events after;
    // the stable sort keeps that order within a step.
    gen.insert(gen.end(), events_.begin(), events_.end());
    events_ = std::move(gen);
  }

  std::stable_sort(
      events_.begin(), events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.step < b.step; });

  // -- timeline validation: replay every event against simulated state -----
  std::size_t joins = 0;
  for (const FaultEvent& ev : events_) {
    if (ev.kind == FaultEvent::Kind::kJoin) joins += ev.count;
  }
  total_nodes_ = n + joins;

  // 0 = alive, 1 = down, 2 = left, 3 = not joined yet.
  std::vector<int> state(total_nodes_, 0);
  for (std::size_t id = n; id < total_nodes_; ++id) state[id] = 3;
  // Degradation is orthogonal to liveness but only legal on a live node;
  // a crash or leave implicitly clears it (the node restarts clean).
  std::vector<char> degraded(total_nodes_, 0);
  std::size_t live = n;
  std::size_t cur_k = k;
  std::size_t next_base = n;

  const auto check_range = [&](const FaultEvent& ev) {
    if (ev.node >= total_nodes_) {
      bad(spec, std::string(fault_kind_name(ev.kind)) + " target " +
                    std::to_string(ev.node) +
                    " is out of range; valid node ids are 0.." +
                    std::to_string(total_nodes_ - 1) + " (closest valid id: " +
                    std::to_string(total_nodes_ - 1) + ")");
    }
  };
  const auto require_state = [&](const FaultEvent& ev, int want) {
    check_range(ev);
    if (state[ev.node] != want) {
      bad(spec, "cannot " + std::string(fault_kind_name(ev.kind)) + " node " +
                    std::to_string(ev.node) + " at step " +
                    std::to_string(ev.step) + ": node " +
                    state_phrase(state[ev.node]));
    }
  };

  for (FaultEvent& ev : events_) {
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
        require_state(ev, 0);
        state[ev.node] = 1;
        degraded[ev.node] = 0;
        --live;
        break;
      case FaultEvent::Kind::kRecover:
        require_state(ev, 1);
        state[ev.node] = 0;
        ++live;
        break;
      case FaultEvent::Kind::kLeave:
        if (ev.node < total_nodes_ && state[ev.node] == 1) {
          bad(spec, "cannot leave node " + std::to_string(ev.node) +
                        " at step " + std::to_string(ev.step) +
                        " while it is down (recover it first)");
        }
        require_state(ev, 0);
        state[ev.node] = 2;
        degraded[ev.node] = 0;
        --live;
        break;
      case FaultEvent::Kind::kJoin:
        ev.node = static_cast<NodeId>(next_base);
        for (std::size_t id = next_base; id < next_base + ev.count; ++id) {
          state[id] = 0;
        }
        next_base += ev.count;
        live += ev.count;
        break;
      case FaultEvent::Kind::kSetK:
        if (ev.count > live) {
          bad(spec, "k=" + std::to_string(ev.count) + " at step " +
                        std::to_string(ev.step) +
                        " exceeds the live node count (" +
                        std::to_string(live) + ")");
        }
        cur_k = ev.count;
        break;
      case FaultEvent::Kind::kLag:
      case FaultEvent::Kind::kStale:
      case FaultEvent::Kind::kMute:
        require_state(ev, 0);
        if (degraded[ev.node]) {
          bad(spec, "cannot " + std::string(fault_kind_name(ev.kind)) +
                        " node " + std::to_string(ev.node) + " at step " +
                        std::to_string(ev.step) +
                        ": node is already degraded (heal it first)");
        }
        degraded[ev.node] = 1;
        break;
      case FaultEvent::Kind::kHeal:
        require_state(ev, 0);
        if (!degraded[ev.node]) {
          bad(spec, "cannot heal node " + std::to_string(ev.node) +
                        " at step " + std::to_string(ev.step) +
                        ": node is not degraded");
        }
        degraded[ev.node] = 0;
        break;
    }
    if (live < cur_k) {
      bad(spec, "event '" + std::string(fault_kind_name(ev.kind)) +
                    "' at step " + std::to_string(ev.step) +
                    " leaves fewer live nodes (" + std::to_string(live) +
                    ") than k (" + std::to_string(cur_k) + ")");
    }
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
      case FaultEvent::Kind::kRecover:
      case FaultEvent::Kind::kJoin:
      case FaultEvent::Kind::kLeave:
        has_churn_ = true;
        break;
      case FaultEvent::Kind::kLag:
      case FaultEvent::Kind::kStale:
      case FaultEvent::Kind::kMute:
      case FaultEvent::Kind::kHeal:
        has_degradation_ = true;
        break;
      case FaultEvent::Kind::kSetK:
        break;
    }
  }
}

FaultPlan FaultPlan::from_events(std::size_t total_nodes,
                                 std::vector<FaultEvent> events) {
  FaultPlan plan;
  std::size_t joins = 0;
  for (const FaultEvent& ev : events) {
    switch (ev.kind) {
      case FaultEvent::Kind::kCrash:
      case FaultEvent::Kind::kRecover:
      case FaultEvent::Kind::kLeave:
        plan.has_churn_ = true;
        break;
      case FaultEvent::Kind::kJoin:
        plan.has_churn_ = true;
        joins += ev.count;
        break;
      case FaultEvent::Kind::kLag:
      case FaultEvent::Kind::kStale:
      case FaultEvent::Kind::kMute:
      case FaultEvent::Kind::kHeal:
        plan.has_degradation_ = true;
        break;
      case FaultEvent::Kind::kSetK:
        break;
    }
  }
  plan.n_ = total_nodes - joins;
  plan.total_nodes_ = total_nodes;
  plan.events_ = std::move(events);
  return plan;
}

std::string FaultPlan::spec_name() const {
  if (events_.empty()) return "none";
  std::string out = "churn?";
  bool first = true;
  for (const FaultEvent& ev : events_) {
    if (!first) out += ',';
    first = false;
    out += fault_kind_name(ev.kind);
    out += '=';
    switch (ev.kind) {
      case FaultEvent::Kind::kJoin:
        out += '+' + std::to_string(ev.count);
        break;
      case FaultEvent::Kind::kSetK:
        out += std::to_string(ev.count);
        break;
      default:
        out += std::to_string(ev.node);
        break;
    }
    out += '@' + std::to_string(ev.step);
    if (ev.kind == FaultEvent::Kind::kLag) {
      out += ':' + std::to_string(ev.count);
    }
  }
  return out;
}

}  // namespace topkmon
