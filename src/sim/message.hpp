// Message types exchanged between nodes and the coordinator.
//
// The paper's model allows messages of size O(log n + log max_i v_i) bits,
// i.e. a constant number of ids/values. Every message in this library
// carries at most two 64-bit payload words; anything larger would violate
// the model and is rejected by construction (there is simply no wider
// message type).
#pragma once

#include <cstdint>
#include <string_view>

#include "util/types.hpp"

namespace topkmon {

/// Wire-level message kinds. The `a`/`b` payload semantics are listed per
/// kind; unused words are zero.
enum class MsgKind : std::uint8_t {
  /// node -> coordinator. A node reports its current value during a
  /// max/min protocol run or a naive update. a = value, b = unused.
  kValueReport = 0,
  /// node -> coordinator. A node announces a filter violation together
  /// with its current value (used by baselines that poll on violation).
  /// a = value, b = side (0 = fell below, 1 = rose above).
  kViolation,
  /// coordinator broadcast. Per-round beacon of Algorithm 2 carrying the
  /// running extremum. a = value, b = holder id (or kNoHolder).
  kRoundBeacon,
  /// coordinator broadcast. Announces the winner of one repeated-extremum
  /// iteration (doubles as top-k membership notification during
  /// FILTERRESET). a = value, b = winner id.
  kWinnerAnnounce,
  /// coordinator broadcast. New filter midpoint M (Algorithm 1 line 33/41).
  /// a = M, b = generation counter.
  kFilterUpdate,
  /// coordinator broadcast. Starts a coordinator-initiated protocol run
  /// over one side (Algorithm 1 lines 23/25). a = side, b = unused.
  kProtocolStart,
  /// coordinator -> node unicast. Direct filter assignment [a, b] (used by
  /// baseline monitors that assign asymmetric per-node filters).
  kFilterAssign,
  /// coordinator -> node unicast. Probe request ("report your value");
  /// used by the sequential-probe lower-bound algorithm and pollers.
  kProbe,
  kKindCount,
};

/// Number of distinct message kinds (for counter arrays).
inline constexpr std::size_t kNumMsgKinds =
    static_cast<std::size_t>(MsgKind::kKindCount);

/// Sentinel "no node" id used in beacons before any report arrived.
inline constexpr NodeId kNoHolder = static_cast<NodeId>(-1);

/// Human-readable kind name for logs and per-kind accounting tables.
std::string_view msg_kind_name(MsgKind kind) noexcept;

/// A single message. `from` is the sending node for upstream messages and
/// ignored for coordinator-originated ones.
struct Message {
  MsgKind kind = MsgKind::kValueReport;
  NodeId from = kNoHolder;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

inline std::string_view msg_kind_name(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kValueReport: return "value_report";
    case MsgKind::kViolation: return "violation";
    case MsgKind::kRoundBeacon: return "round_beacon";
    case MsgKind::kWinnerAnnounce: return "winner_announce";
    case MsgKind::kFilterUpdate: return "filter_update";
    case MsgKind::kProtocolStart: return "protocol_start";
    case MsgKind::kFilterAssign: return "filter_assign";
    case MsgKind::kProbe: return "probe";
    case MsgKind::kKindCount: break;
  }
  return "?";
}

}  // namespace topkmon
