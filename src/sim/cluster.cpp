#include "sim/cluster.hpp"

#include <algorithm>

namespace topkmon {

Cluster::Cluster(std::size_t n, std::uint64_t seed)
    : Cluster(n, seed, NetworkSpec{}) {}

Cluster::Cluster(std::span<const Value> initial, std::uint64_t seed)
    : Cluster(initial.size(), seed) {
  std::copy(initial.begin(), initial.end(), runtime_.values.begin());
}

Cluster::Cluster(std::size_t n, std::uint64_t seed, const NetworkSpec& net_spec)
    : runtime_(n),
      net_(n, &stats_, net_spec, seed, &runtime_),
      coord_rng_(Rng(seed).derive(0xC00Dull)) {
  const Rng root(seed);
  all_ids_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    runtime_.rngs[i] = root.derive(i + 1);
    all_ids_.push_back(static_cast<NodeId>(i));
  }
}

}  // namespace topkmon
