#include "sim/cluster.hpp"

namespace topkmon {

Cluster::Cluster(std::size_t n, std::uint64_t seed)
    : Cluster(n, seed, NetworkSpec{}) {}

Cluster::Cluster(std::size_t n, std::uint64_t seed, const NetworkSpec& net_spec)
    : net_(n, &stats_, net_spec, seed),
      coord_rng_(Rng(seed).derive(0xC00Dull)) {
  const Rng root(seed);
  nodes_.reserve(n);
  all_ids_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeRuntime nr;
    nr.id = static_cast<NodeId>(i);
    nr.rng = root.derive(i + 1);
    nodes_.push_back(nr);
    all_ids_.push_back(static_cast<NodeId>(i));
  }
}

}  // namespace topkmon
