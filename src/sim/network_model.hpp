// Declarative network-behaviour policy for the simulated star network.
//
// The paper's model delivers every message instantaneously between two
// consecutive stream observations; that is the `instant` policy and the
// default everywhere. A NetworkSpec generalizes delivery into a scheduled
// event model measured in *ticks* (the sub-step unit in which protocol
// rounds execute):
//
//   * delay   — every message takes `delay` ticks link traversal time;
//   * jitter  — plus a deterministic per-(message, link) extra in
//               [0, jitter] (broadcasts fan out with independent per-link
//               jitter, so receivers see the same message at different
//               ticks);
//   * drop    — each (message, link) is lost independently with this
//               probability (the send is still charged to CommStats: the
//               paper's cost measure counts transmissions, not receipts);
//   * batch   — delivery ticks are coalesced up to the next multiple of
//               `batch_window` (links release messages in windowed
//               batches, modelling NIC/queue coalescing);
//   * ticks_per_step — hard tick budget per observation step; 0 means
//               "run to quiescence" (the lock-step semantics). With a
//               budget, messages still in flight when the budget expires
//               carry over into later observation steps, so algorithms
//               observe genuinely stale state.
//
// All randomness (jitter, drops) derives from a deterministic hash of
// (network seed, message sequence number, receiving link), never from
// drain order, so simulations stay bit-reproducible regardless of how and
// when inboxes are polled.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace topkmon {

/// Tick index of the scheduled network clock. Tick 0 is "before the first
/// observation"; each observation step spans one or more ticks.
using SimTime = std::uint64_t;

/// The network-behaviour policy. The default-constructed spec is the
/// paper's instant model.
struct NetworkSpec {
  std::uint32_t delay = 0;         ///< fixed per-link delay in ticks
  std::uint32_t jitter = 0;        ///< extra per-(msg, link) delay, [0, jitter]
  double drop_rate = 0.0;          ///< independent per-(msg, link) loss
  std::uint32_t batch_window = 0;  ///< coalesce to window ends (0 = off)
  std::uint64_t ticks_per_step = 0;  ///< tick budget per step (0 = quiesce)

  /// True when the spec is exactly the paper's lock-step instant model
  /// (the Network then uses the O(1)-broadcast fast path).
  bool is_instant() const noexcept {
    return delay == 0 && jitter == 0 && drop_rate <= 0.0 && batch_window == 0;
  }

  /// Upper bound on the scheduling delay of any single message (without
  /// batch quantization). 64-bit: the two 32-bit knobs are validated
  /// individually, so their sum could wrap a uint32.
  std::uint64_t max_delay() const noexcept {
    return static_cast<std::uint64_t>(delay) + jitter;
  }

  /// Canonical display name: "instant", or "delay=2", or a comma-joined
  /// list of the non-default knobs ("delay=2,drop=0.05").
  std::string name() const;

  friend bool operator==(const NetworkSpec&, const NetworkSpec&) = default;
};

/// Parses a spec string: "instant" or a comma-separated list of
/// key=value pairs with keys delay, jitter, drop, batch, ticks
/// (e.g. "delay=2,jitter=1,drop=0.01", "drop=0.05,ticks=4").
/// Throws std::invalid_argument on unknown keys or malformed values.
NetworkSpec parse_network_spec(std::string_view text);

}  // namespace topkmon
