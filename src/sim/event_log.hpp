// Structured message tracing. An EventLog attaches to a Network as a tap
// and records every message with its direction and the time step it was
// charged to — the auditable counterpart of CommStats' aggregate counters.
// Tests use it to assert fine-grained protocol behaviour ("exactly one
// filter update was broadcast this step"); the examples use it for
// post-mortem inspection.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "util/types.hpp"

namespace topkmon {

/// Direction of a recorded message.
enum class MsgDirection : std::uint8_t {
  kUpstream,   ///< node -> coordinator
  kUnicast,    ///< coordinator -> one node
  kBroadcast,  ///< coordinator -> all nodes
};

std::string_view msg_direction_name(MsgDirection d) noexcept;

/// One recorded message event.
struct MessageEvent {
  TimeStep step = 0;
  MsgDirection direction = MsgDirection::kUpstream;
  Message message;
};

/// Append-only message trace with simple queries.
class EventLog {
 public:
  /// Marks the beginning of time step `t`; later events are stamped with it.
  void begin_step(TimeStep t) noexcept { current_step_ = t; }

  /// Records one event (called by the Network tap).
  void record(MsgDirection direction, const Message& message);

  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  const std::vector<MessageEvent>& events() const noexcept { return events_; }

  /// Number of recorded events of `kind` (optionally restricted to one step).
  std::size_t count_kind(MsgKind kind) const;
  std::size_t count_kind_at(MsgKind kind, TimeStep step) const;

  /// Number of events in direction `d`.
  std::size_t count_direction(MsgDirection d) const;

  /// All events charged to time step `step`, in order.
  std::vector<MessageEvent> at_step(TimeStep step) const;

  /// Steps that carry at least one event, ascending, deduplicated.
  std::vector<TimeStep> active_steps() const;

  /// Human-readable dump ("t=3 broadcast filter_update a=512"), one event
  /// per line; `limit` == 0 dumps everything.
  std::string dump(std::size_t limit = 0) const;

  void clear() noexcept {
    events_.clear();
    current_step_ = 0;
  }

  /// Builds a tap function bound to this log, suitable for Network::set_tap.
  std::function<void(MsgDirection, const Message&)> tap();

 private:
  std::vector<MessageEvent> events_;
  TimeStep current_step_ = 0;
};

}  // namespace topkmon
