#include "sim/network_model.hpp"

#include <charconv>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/strings.hpp"

namespace topkmon {

namespace {

std::uint64_t parse_uint(std::string_view key, std::string_view value,
                         std::uint64_t max_value) {
  const auto out = to_u64(value);
  if (!out || *out > max_value) {
    throw std::invalid_argument("network spec: '" + std::string(value) +
                                "' is not a valid integer for '" +
                                std::string(key) + "'");
  }
  return *out;
}

double parse_fraction(std::string_view key, std::string_view value) {
  const auto out = to_double(value);
  // The negated range form also rejects NaN (every NaN comparison is
  // false, so "nan" would sneak past `< 0.0 || > 1.0`).
  if (!out || !(*out >= 0.0 && *out <= 1.0)) {
    throw std::invalid_argument("network spec: '" + std::string(value) +
                                "' is not a probability for '" +
                                std::string(key) + "'");
  }
  return *out;
}

/// Shortest decimal that round-trips the double (std::to_string would
/// clamp to 6 decimals and misreport e.g. drop=1e-7 as "0.000000").
std::string format_fraction(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

}  // namespace

std::string NetworkSpec::name() const {
  std::string out;
  const auto append = [&out](const std::string& part) {
    if (!out.empty()) out += ',';
    out += part;
  };
  if (delay != 0) append("delay=" + std::to_string(delay));
  if (jitter != 0) append("jitter=" + std::to_string(jitter));
  if (drop_rate > 0.0) append("drop=" + format_fraction(drop_rate));
  if (batch_window != 0) append("batch=" + std::to_string(batch_window));
  if (ticks_per_step != 0) append("ticks=" + std::to_string(ticks_per_step));
  return out.empty() ? "instant" : out;
}

NetworkSpec parse_network_spec(std::string_view text) {
  NetworkSpec spec;
  if (text.empty() || text == "instant") return spec;

  constexpr std::uint64_t kMax32 = std::numeric_limits<std::uint32_t>::max();
  for (const std::string_view item : split(text, ',')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("network spec: expected key=value, got '" +
                                  std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "delay") {
      spec.delay = static_cast<std::uint32_t>(parse_uint(key, value, kMax32));
    } else if (key == "jitter") {
      spec.jitter = static_cast<std::uint32_t>(parse_uint(key, value, kMax32));
    } else if (key == "drop") {
      spec.drop_rate = parse_fraction(key, value);
    } else if (key == "batch") {
      spec.batch_window =
          static_cast<std::uint32_t>(parse_uint(key, value, kMax32));
    } else if (key == "ticks") {
      spec.ticks_per_step =
          parse_uint(key, value, std::numeric_limits<std::uint64_t>::max());
    } else {
      throw std::invalid_argument("network spec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  return spec;
}

}  // namespace topkmon
