// Independent identically distributed streams: fresh draws every step,
// i.e. no temporal similarity for filters to exploit. Used as a stress
// input where per-round recomputation is near-optimal (paper §2.1).
#pragma once

#include "streams/stream.hpp"

namespace topkmon {

/// Uniform integer draws from [lo, hi] each step.
class IidUniformStream final : public Stream {
 public:
  IidUniformStream(Value lo, Value hi, Rng rng);

  Value next() override;
  void next_batch(std::span<Value> out) override;

 private:
  Value lo_;
  Value hi_;
  Rng rng_;
};

/// Rounded Gaussian draws (mean, sigma), clamped to [lo, hi].
class IidGaussianStream final : public Stream {
 public:
  IidGaussianStream(double mean, double sigma, Value lo, Value hi, Rng rng);

  Value next() override;
  void next_batch(std::span<Value> out) override;

 private:
  double mean_;
  double sigma_;
  Value lo_;
  Value hi_;
  Rng rng_;
};

}  // namespace topkmon
