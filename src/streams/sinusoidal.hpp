// Phase-shifted sinusoidal streams — a stylized model of periodic sensor
// readings (temperature, load). With distinct phases, the identity of the
// top-k rotates slowly and predictably; filters are violated in bursts
// around crossings.
#pragma once

#include "streams/stream.hpp"

namespace topkmon {

struct SinusoidalParams {
  double offset = 1000.0;     ///< vertical offset of the wave
  double amplitude = 500.0;   ///< peak deviation from the offset
  double period = 200.0;      ///< steps per full cycle
  double phase = 0.0;         ///< phase shift in steps
  double noise_sigma = 0.0;   ///< additive Gaussian noise
};

class SinusoidalStream final : public Stream {
 public:
  SinusoidalStream(SinusoidalParams params, Rng rng);

  Value next() override;
  void next_batch(std::span<Value> out) override;

 private:
  SinusoidalParams p_;
  Rng rng_;
  std::uint64_t t_ = 0;
};

}  // namespace topkmon
