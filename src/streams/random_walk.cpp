#include "streams/random_walk.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

RandomWalkStream::RandomWalkStream(RandomWalkParams params, Rng rng)
    : p_(params),
      rng_(rng),
      current_(std::clamp(params.start, params.lo, params.hi)) {
  if (p_.lo > p_.hi || p_.max_step < 0) {
    throw std::invalid_argument("RandomWalkStream: invalid bounds");
  }
}

Value RandomWalkStream::next() {
  current_ += rng_.uniform_int(-p_.max_step, p_.max_step);
  // Reflect into [lo, hi]; a single reflection suffices because the step is
  // clamped to the interval width below.
  const Value width = p_.hi - p_.lo;
  if (width == 0) {
    current_ = p_.lo;
  } else {
    if (current_ < p_.lo) {
      current_ = std::min(p_.lo + (p_.lo - current_), p_.hi);
    }
    if (current_ > p_.hi) {
      current_ = std::max(p_.hi - (current_ - p_.hi), p_.lo);
    }
  }
  return current_;
}

void RandomWalkStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

}  // namespace topkmon
