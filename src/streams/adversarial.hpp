// Adversarial inputs realizing the paper's worst cases.
//
// RotatingMaxStream: the node holding the maximum changes every step
// ("inputs where the position of the maximum changes considerably from
// round to round", §2.1) — per-round recomputation is unavoidable and any
// filter-based algorithm must pay on every step.
//
// CrossingPairsStream: value-adjacent node pairs repeatedly swap order;
// pairs straddling the k-boundary force genuine top-k changes (OPT must
// also communicate), pairs away from it should cost a competitive
// algorithm nothing (the §3.1 argument against full dominance tracking).
#pragma once

#include "streams/stream.hpp"

namespace topkmon {

struct RotatingMaxParams {
  std::size_t n = 16;       ///< number of nodes in the system
  Value base = 1'000;       ///< value of non-maximum nodes (plus id offset)
  Value peak = 1'000'000;   ///< value of the current maximum holder
  std::uint64_t hold = 1;   ///< steps a node keeps the maximum before it moves
};

/// Node `id`'s view of the rotating-max pattern: it observes `peak` while
/// floor(t / hold) mod n == id and `base + id` otherwise.
class RotatingMaxStream final : public Stream {
 public:
  RotatingMaxStream(RotatingMaxParams params, NodeId id);

  Value next() override;
  void next_batch(std::span<Value> out) override;

 private:
  RotatingMaxParams p_;
  NodeId id_;
  std::uint64_t t_ = 0;
};

struct CrossingPairsParams {
  std::size_t n = 16;        ///< number of nodes (odd last node stays flat)
  Value pair_gap = 10'000;   ///< vertical spacing between pair centers
  Value amplitude = 2'000;   ///< half-range of the triangle oscillation
  std::uint64_t period = 64; ///< steps per full up-down-up cycle
};

/// Nodes 2i and 2i+1 oscillate in antiphase around center (i+1)*pair_gap on
/// a triangle wave, exchanging order twice per period. Requires
/// amplitude < pair_gap/2 so only partners ever swap.
class CrossingPairsStream final : public Stream {
 public:
  CrossingPairsStream(CrossingPairsParams params, NodeId id);

  Value next() override;
  void next_batch(std::span<Value> out) override;

 private:
  CrossingPairsParams p_;
  NodeId id_;
  std::uint64_t t_ = 0;
};

}  // namespace topkmon
