// Skewed / heavy-tailed inputs.
//
// ZipfSampler draws ranks 1..M with P(r) ∝ r^-s via inverse-CDF binary
// search over a precomputed table (exact, O(log M) per draw). Heavy-tailed
// value streams model workloads like per-flow packet counters where a few
// nodes dominate — the regime the paper's intro motivates (top-k of
// frequencies).
#pragma once

#include <cstddef>
#include <vector>

#include "streams/stream.hpp"

namespace topkmon {

/// Exact bounded Zipf(s, M) rank sampler.
class ZipfSampler {
 public:
  /// Ranks 1..num_ranks, exponent s >= 0 (s = 0 is uniform).
  ZipfSampler(std::size_t num_ranks, double s);

  /// Draws a rank in [1, num_ranks].
  std::size_t sample(Rng& rng) const;

  std::size_t num_ranks() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i+1), cdf_.back() == 1
};

/// Stream of iid Zipf-distributed values: value = value_of_rank(r) where
/// rank 1 maps to `peak` and rank M to `peak / M` (monotone decreasing), so
/// larger values are exponentially rarer.
class ZipfStream final : public Stream {
 public:
  ZipfStream(std::size_t num_ranks, double s, Value peak, Rng rng);

  Value next() override;
  void next_batch(std::span<Value> out) override;

 private:
  ZipfSampler sampler_;
  Value peak_;
  Rng rng_;
};

/// Pareto (continuous heavy tail) stream: v = floor(xm / u^{1/alpha}),
/// clamped to `cap`. Produces occasional huge spikes over a stable base —
/// stress input for filter resets.
class ParetoStream final : public Stream {
 public:
  ParetoStream(Value xm, double alpha, Value cap, Rng rng);

  Value next() override;
  void next_batch(std::span<Value> out) override;

 private:
  Value xm_;
  double alpha_;
  Value cap_;
  Rng rng_;
};

}  // namespace topkmon
