// One-stop construction of n-node stream sets from a declarative spec.
// The factory spreads per-node parameters (walk starting points, wave
// phases) so that the n streams interleave realistically, and derives all
// per-stream RNGs from a single seed for reproducibility.
#pragma once

#include <string_view>
#include <vector>

#include "streams/adversarial.hpp"
#include "streams/bursty.hpp"
#include "streams/iid.hpp"
#include "streams/random_walk.hpp"
#include "streams/sensor.hpp"
#include "streams/sinusoidal.hpp"
#include "streams/sparse.hpp"
#include "streams/stream.hpp"
#include "streams/zipf.hpp"

namespace topkmon {

enum class StreamFamily {
  kRandomWalk,
  kIidUniform,
  kIidGaussian,
  kZipf,
  kPareto,
  kSinusoidal,
  kBursty,
  kRotatingMax,
  kCrossingPairs,
  kSensor,
  kSparse,
};

/// Display name ("random_walk", ...).
std::string_view family_name(StreamFamily family) noexcept;

/// Inverse of family_name. Throws std::invalid_argument on unknown names.
StreamFamily family_from_name(std::string_view name);

/// All families, for sweeps over workloads.
std::vector<StreamFamily> all_families();

/// Declarative stream-set description. Only the sub-struct matching
/// `family` is consulted. `n` fields inside adversarial params are filled
/// by the factory.
struct StreamSpec {
  StreamFamily family = StreamFamily::kRandomWalk;

  /// Wrap every stream in the order-preserving distinctness transform
  /// (paper's pairwise-distinct assumption). Scales values and Δ by n.
  bool enforce_distinct = true;

  /// kRandomWalk: starts are spread evenly across [lo, hi] per node.
  RandomWalkParams walk{};

  /// kIidUniform
  Value iid_lo = 0;
  Value iid_hi = 1'000'000;

  /// kIidGaussian
  double gauss_mean = 500'000.0;
  double gauss_sigma = 50'000.0;

  /// kZipf
  std::size_t zipf_ranks = 1'000;
  double zipf_s = 1.2;
  Value zipf_peak = 1'000'000;

  /// kPareto
  Value pareto_xm = 1'000;
  double pareto_alpha = 1.5;
  Value pareto_cap = 100'000'000;

  /// kSinusoidal: phases are spread evenly over one period per node.
  SinusoidalParams sinus{};

  /// kBursty: starts are spread evenly across [lo, hi] per node.
  BurstyParams bursty{};

  /// kRotatingMax / kCrossingPairs
  RotatingMaxParams rotating{};
  CrossingPairsParams crossing{};

  /// kSensor: diurnal phases spread evenly per node.
  SensorParams sensor{};

  /// kSparse: activity-gated wrapper around `sparse_inner` — each step
  /// exactly a `sparse.rate` fraction of the nodes draws a fresh inner
  /// value (activity phases striped as id % period); the rest repeat.
  SparseParams sparse{};
  StreamFamily sparse_inner = StreamFamily::kRandomWalk;
};

/// Builds the n per-node streams described by `spec`, deterministically
/// from `seed`.
StreamSet make_stream_set(const StreamSpec& spec, std::size_t n,
                          std::uint64_t seed);

/// Parses a workload spec string into `base`: a bare family name
/// ("random_walk"), or a parameterized one in the monitor-registry style
/// — currently "sparse?rate=0.01,inner=random_walk". Unknown families,
/// malformed parameters, or parameters on families without a grammar
/// throw std::invalid_argument.
StreamSpec parse_stream_spec(std::string_view text, StreamSpec base = {});

}  // namespace topkmon
