#include "streams/sinusoidal.hpp"

#include <cmath>
#include <stdexcept>

namespace topkmon {

SinusoidalStream::SinusoidalStream(SinusoidalParams params, Rng rng)
    : p_(params), rng_(rng) {
  if (p_.period <= 0.0) {
    throw std::invalid_argument("SinusoidalStream: period must be positive");
  }
}

Value SinusoidalStream::next() {
  constexpr double kTau = 6.28318530717958647692;
  const double angle =
      kTau * (static_cast<double>(t_) + p_.phase) / p_.period;
  double v = p_.offset + p_.amplitude * std::sin(angle);
  if (p_.noise_sigma > 0.0) v += p_.noise_sigma * rng_.next_gaussian();
  ++t_;
  return static_cast<Value>(std::llround(v));
}

void SinusoidalStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

}  // namespace topkmon
