#include "streams/adversarial.hpp"

#include <stdexcept>

namespace topkmon {

RotatingMaxStream::RotatingMaxStream(RotatingMaxParams params, NodeId id)
    : p_(params), id_(id) {
  if (p_.n == 0 || p_.hold == 0 || id >= p_.n) {
    throw std::invalid_argument("RotatingMaxStream: invalid parameters");
  }
  if (p_.peak <= p_.base + static_cast<Value>(p_.n)) {
    throw std::invalid_argument("RotatingMaxStream: peak must clear base+n");
  }
}

Value RotatingMaxStream::next() {
  const std::uint64_t holder = (t_ / p_.hold) % p_.n;
  ++t_;
  if (holder == id_) return p_.peak;
  return p_.base + static_cast<Value>(id_);
}

CrossingPairsStream::CrossingPairsStream(CrossingPairsParams params, NodeId id)
    : p_(params), id_(id) {
  if (p_.n == 0 || p_.period < 4 || id >= p_.n) {
    throw std::invalid_argument("CrossingPairsStream: invalid parameters");
  }
  if (p_.amplitude * 2 >= p_.pair_gap) {
    throw std::invalid_argument(
        "CrossingPairsStream: amplitude must be < pair_gap/2");
  }
}

Value CrossingPairsStream::next() {
  const std::uint64_t pair = id_ / 2;
  const Value center = static_cast<Value>(pair + 1) * p_.pair_gap;
  // Triangle wave in [-amplitude, +amplitude] with the configured period.
  const std::uint64_t half = p_.period / 2;
  const std::uint64_t phase = t_ % p_.period;
  const Value ramp =
      phase < half
          ? static_cast<Value>(phase)
          : static_cast<Value>(p_.period - phase);
  const Value tri =
      -p_.amplitude + 2 * p_.amplitude * ramp / static_cast<Value>(half);
  ++t_;
  if (id_ % 2 == 1 && id_ == p_.n - 1 && p_.n % 2 == 0) {
    // Even n: the last node is a normal partner; nothing special.
  }
  if (id_ + 1 == p_.n && p_.n % 2 == 1) {
    return center;  // odd leftover node holds its center steady
  }
  return id_ % 2 == 0 ? center + tri : center - tri;
}

void RotatingMaxStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

void CrossingPairsStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

}  // namespace topkmon
