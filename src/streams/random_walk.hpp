// Reflected integer random walk — the canonical "similar to previous
// values" input on which filter-based algorithms should shine (paper §1,
// §2.1). The maximum step size directly controls Δ in the analysis.
#pragma once

#include "streams/stream.hpp"

namespace topkmon {

struct RandomWalkParams {
  Value start = 0;
  /// Per-step increment is uniform in [-max_step, +max_step].
  Value max_step = 8;
  /// Walk is reflected into [lo, hi].
  Value lo = 0;
  Value hi = 1'000'000;
};

class RandomWalkStream final : public Stream {
 public:
  RandomWalkStream(RandomWalkParams params, Rng rng);

  Value next() override;
  void next_batch(std::span<Value> out) override;

 private:
  RandomWalkParams p_;
  Rng rng_;
  Value current_;
};

}  // namespace topkmon
