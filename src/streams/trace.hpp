// Replay streams: feed a monitor exactly the values you specify. The
// offline-optimal computation and many unit tests drive the system with
// hand-crafted traces through this generator.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "streams/stream.hpp"

namespace topkmon {

/// What a TraceStream does after the recorded values are exhausted.
enum class TraceEnd {
  kHoldLast,   ///< keep returning the final value
  kCycle,      ///< wrap around to the beginning
  kThrow,      ///< throw std::out_of_range (strict tests)
};

class TraceStream final : public Stream {
 public:
  TraceStream(std::vector<Value> values,
              TraceEnd end_behavior = TraceEnd::kHoldLast);

  Value next() override;
  void next_batch(std::span<Value> out) override;

  /// Strict traces bound prefetch to the values actually left, so a
  /// batching caller throws at exactly the same advance as per-call
  /// next(); hold-last / cycling traces are effectively infinite.
  std::uint64_t prefetch_limit() const override {
    if (end_ != TraceEnd::kThrow) return ~std::uint64_t{0};
    return values_.size() - std::min(pos_, values_.size());
  }

  std::size_t length() const noexcept { return values_.size(); }

 private:
  std::vector<Value> values_;
  TraceEnd end_;
  std::size_t pos_ = 0;
};

/// A full n-node trace: row t holds the n observations of step t. Column
/// slices become per-node TraceStreams via `to_stream_set`.
class TraceMatrix {
 public:
  TraceMatrix(std::size_t n, std::size_t steps)
      : n_(n), rows_(steps, std::vector<Value>(n, 0)) {}

  std::size_t nodes() const noexcept { return n_; }
  std::size_t steps() const noexcept { return rows_.size(); }

  Value& at(std::size_t t, NodeId i) { return rows_.at(t).at(i); }
  Value at(std::size_t t, NodeId i) const { return rows_.at(t).at(i); }

  /// Builds per-node replay streams over this matrix.
  StreamSet to_stream_set(TraceEnd end_behavior = TraceEnd::kHoldLast) const;

 private:
  std::size_t n_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace topkmon
