#include "streams/bursty.hpp"

#include <algorithm>
#include <stdexcept>

namespace topkmon {

BurstyStream::BurstyStream(BurstyParams params, Rng rng)
    : p_(params),
      rng_(rng),
      current_(std::clamp(params.start, params.lo, params.hi)) {
  if (p_.lo > p_.hi || p_.calm_step < 0 || p_.burst_step < 0) {
    throw std::invalid_argument("BurstyStream: invalid parameters");
  }
}

Value BurstyStream::next() {
  if (bursting_) {
    if (rng_.bernoulli(p_.p_exit_burst)) bursting_ = false;
  } else {
    if (rng_.bernoulli(p_.p_enter_burst)) bursting_ = true;
  }
  const Value step = bursting_ ? p_.burst_step : p_.calm_step;
  current_ += rng_.uniform_int(-step, step);
  current_ = std::clamp(current_, p_.lo, p_.hi);
  return current_;
}

void BurstyStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

}  // namespace topkmon
