// Data-stream generator interface.
//
// Each distributed node observes a private online stream (v^1, v^2, ...).
// A Stream produces that sequence one value per call; the runner calls
// `next()` exactly once per node per time step, so generators that model
// global time (adversarial rotations, sinusoids) may keep an internal step
// counter and stay synchronized across nodes.
//
// Batched generation: `next_batch(out)` fills `out` with the next
// out.size() values of the sequence — identical values to out.size()
// repeated next() calls, just cheaper. Families override it with a
// devirtualized inner loop (one virtual dispatch per batch instead of per
// value); the base-class default falls back to per-call next(). Streams
// are independent per node (each owns its RNG), so generating a node's
// values ahead of the observation clock is observationally equivalent.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace topkmon {

/// One node's private data stream.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Advances the stream by one observation and returns the new value.
  virtual Value next() = 0;

  /// Advances by out.size() observations, writing them in order.
  /// Equivalent to (but typically much faster than) repeated next().
  virtual void next_batch(std::span<Value> out) {
    for (Value& v : out) v = next();
  }

  /// How many values may safely be generated ahead of demand. Infinite
  /// generators (the default) allow any lookahead; a finite strict
  /// stream (TraceEnd::kThrow) returns its remaining length so a
  /// prefetching caller never triggers the end-of-trace throw earlier
  /// than per-call next() would.
  virtual std::uint64_t prefetch_limit() const {
    return ~std::uint64_t{0};
  }

  /// True when the stream can certify quiet runs (advance_quiet below):
  /// the activity-gated wrapper family. Lets StreamSet::advance_all_active
  /// skip untouched nodes in O(1) per step instead of materializing their
  /// repeated values.
  virtual bool supports_quiet_runs() const { return false; }

  /// Consumes up to `max_steps` upcoming advances whose values are
  /// guaranteed equal to the last produced value, returning how many were
  /// consumed (0: the next advance may change the value). The default —
  /// and any generator without change tracking — never certifies a quiet
  /// step.
  virtual std::uint64_t advance_quiet(std::uint64_t max_steps) {
    (void)max_steps;
    return 0;
  }
};

namespace detail {

/// Shared devirtualized batch loop: instantiated inside each family's
/// .cpp (next to its next() definition), so the qualified per-value call
/// is bound statically AND inlined — one dispatch per batch, not per
/// value.
template <typename ConcreteStream>
void generate_batch(ConcreteStream& s, std::span<Value> out) {
  for (Value& v : out) v = s.ConcreteStream::next();
}

}  // namespace detail

/// Order-preserving distinctness transform (the paper assumes pairwise
/// distinct values): v' = v*n + (n-1-id). Raw-value order is preserved;
/// raw ties are broken toward smaller node ids; Δ scales by n.
class DistinctStream final : public Stream {
 public:
  DistinctStream(std::unique_ptr<Stream> inner, NodeId id, std::size_t n)
      : inner_(std::move(inner)), id_(id), n_(static_cast<Value>(n)) {}

  Value next() override {
    return inner_->next() * n_ + (n_ - 1 - static_cast<Value>(id_));
  }

  /// The transform folds into the inner stream's batch pass: one inner
  /// next_batch + an in-place affine sweep, no per-value dispatch.
  void next_batch(std::span<Value> out) override {
    inner_->next_batch(out);
    const Value off = n_ - 1 - static_cast<Value>(id_);
    for (Value& v : out) v = v * n_ + off;
  }

  std::uint64_t prefetch_limit() const override {
    return inner_->prefetch_limit();
  }

  /// The affine map is stateless and injective, so inner quiet runs are
  /// outer quiet runs.
  bool supports_quiet_runs() const override {
    return inner_->supports_quiet_runs();
  }
  std::uint64_t advance_quiet(std::uint64_t max_steps) override {
    return inner_->advance_quiet(max_steps);
  }

 private:
  std::unique_ptr<Stream> inner_;
  NodeId id_;
  Value n_;
};

/// A collection of n per-node streams (one per node id).
///
/// By default every advance calls straight into the stream (exactly the
/// legacy behavior). After plan_steps(T) the set may prefetch up to
/// kLookahead future values per node through next_batch, amortizing the
/// virtual dispatch. The prefetch never generates beyond the planned T
/// advances per node nor past a stream's prefetch_limit(), so finite
/// replay streams keep their exact end-of-trace semantics (including
/// the step at which TraceEnd::kThrow throws).
class StreamSet {
 public:
  /// Takes ownership of one stream per node id (index = id).
  explicit StreamSet(std::vector<std::unique_ptr<Stream>> streams)
      : streams_(std::move(streams)),
        buffered_(streams_.size(), 0),
        cursor_(streams_.size(), 0),
        budget_(streams_.size(), 0) {}

  /// Number of per-node streams.
  std::size_t size() const noexcept { return streams_.size(); }

  /// Declares that each node will be advanced at most `total` more times,
  /// enabling batched prefetch up to that horizon. Values are identical
  /// with or without a plan; only the generation cost changes. Safe to
  /// call once per run (repeated calls re-arm the budget).
  void plan_steps(std::uint64_t total) {
    for (auto& b : budget_) b = total;
    if (lookahead_buf_.empty()) {
      lookahead_buf_.resize(streams_.size() * kLookahead);
    }
  }

  /// Advances node `id`'s stream and returns the new observation.
  /// Throws std::out_of_range for a bad id, std::logic_error after
  /// advance_all_active took over the set.
  Value advance(NodeId id) {
    if (active_mode_) throw_mixed_mode();
    if (cursor_.at(id) == buffered_[id]) refill(id);
    return lookahead_buf_.empty()
               ? single_[id]
               : lookahead_buf_[id * kLookahead + cursor_[id]++];
  }

  /// True when every stream certifies quiet runs (see Stream::
  /// supports_quiet_runs) — the precondition of advance_all_active.
  bool quiet_capable() const {
    for (const auto& s : streams_) {
      if (!s->supports_quiet_runs()) return false;
    }
    return !streams_.empty();
  }

  /// Activity-driven advance: `values` must hold every node's previous
  /// observation on entry (all zeros before the first call, matching a
  /// fresh cluster) and is updated in place; `changed` (cleared first)
  /// receives exactly the nodes whose value differs from the previous
  /// step, in no particular order. Nodes inside a certified quiet run are
  /// not visited at all — a calendar ring keyed by next-activity step
  /// makes a step cost O(active), independent of n. Requires
  /// quiet_capable(); the per-id/batched interfaces are disabled
  /// afterwards (the lookahead machinery would double-generate).
  void advance_all_active(std::span<Value> values,
                          std::vector<NodeId>& changed) {
    changed.clear();
    if (!active_mode_) {
      active_mode_ = true;
      calendar_.assign(kCalendarSlots, {});
      due_step_.assign(streams_.size(), 0);
      // Every node is due at step 0 (the initial draw).
      calendar_[0].reserve(streams_.size());
      for (NodeId id = 0; id < streams_.size(); ++id) {
        calendar_[0].push_back(id);
      }
    }
    calendar_scratch_.clear();
    calendar_scratch_.swap(calendar_[active_step_ % kCalendarSlots]);
    for (const NodeId id : calendar_scratch_) {
      if (due_step_[id] > active_step_) {
        // Quiet run longer than the ring: parked at the horizon, hop on.
        reschedule(id, due_step_[id]);
        continue;
      }
      Stream& s = *streams_[id];
      const Value v = s.next();
      if (v != values[id]) {
        values[id] = v;
        changed.push_back(id);
      }
      reschedule(id, active_step_ + 1 + s.advance_quiet(~std::uint64_t{0}));
    }
    ++active_step_;
  }

  /// Advances every stream once: out[id] receives node id's observation.
  /// Requires out.size() == size(). Identical values to per-id advance();
  /// the loop body skips advance()'s bounds check (ids are generated) —
  /// at large n this is the simulation's per-step floor, so every ns
  /// counts.
  void advance_all(std::span<Value> out) {
    if (active_mode_) throw_mixed_mode();
    const bool planned = !lookahead_buf_.empty();
    for (NodeId id = 0; id < streams_.size(); ++id) {
      if (cursor_[id] == buffered_[id]) refill(id);
      out[id] = planned ? lookahead_buf_[id * kLookahead + cursor_[id]++]
                        : single_[id];
    }
  }

 private:
  /// Values prefetched per node once a plan is armed. One cache line's
  /// worth of look-ahead already reduces virtual dispatch 64-fold; deeper
  /// buffers only add memory.
  static constexpr std::size_t kLookahead = 64;

  void refill(NodeId id) {
    Stream& s = *streams_.at(id);
    if (lookahead_buf_.empty()) {
      // No plan armed: generate exactly one value (legacy path).
      if (single_.empty()) single_.resize(streams_.size());
      single_[id] = s.next();
      buffered_[id] = 0;  // stays "empty": every advance regenerates
      cursor_[id] = 0;
      return;
    }
    std::uint64_t chunk = budget_[id] == 0
                              ? 1
                              : std::min<std::uint64_t>(kLookahead,
                                                        budget_[id]);
    // Never generate past a finite strict stream's end: once exhausted,
    // fall back to one-at-a-time so the end-of-trace throw surfaces at
    // exactly the advance where per-call next() would throw.
    const std::uint64_t limit = s.prefetch_limit();
    if (chunk > limit) chunk = limit > 0 ? limit : 1;
    budget_[id] -= std::min(budget_[id], chunk);
    s.next_batch(std::span<Value>(
        lookahead_buf_.data() + id * kLookahead, chunk));
    buffered_[id] = static_cast<std::uint32_t>(chunk);
    cursor_[id] = 0;
  }

  [[noreturn]] static void throw_mixed_mode() {
    throw std::logic_error(
        "StreamSet: advance()/advance_all() cannot follow "
        "advance_all_active() (the lookahead would double-generate)");
  }

  /// Calendar ring size: quiet runs shorter than this take one hop;
  /// longer ones park at the horizon and hop every kCalendarSlots steps.
  static constexpr std::uint64_t kCalendarSlots = 512;

  void reschedule(NodeId id, std::uint64_t due) {
    due_step_[id] = due;
    const std::uint64_t hop =
        std::min<std::uint64_t>(due - active_step_, kCalendarSlots - 1);
    calendar_[(active_step_ + hop) % kCalendarSlots].push_back(id);
  }

  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<Value> lookahead_buf_;       ///< empty until plan_steps()
  std::vector<Value> single_;              ///< unplanned fallback slots
  std::vector<std::uint32_t> buffered_;    ///< valid prefix per node
  std::vector<std::uint32_t> cursor_;      ///< next unread index per node
  std::vector<std::uint64_t> budget_;      ///< planned advances left

  // Activity-driven mode (advance_all_active) state.
  std::vector<std::vector<NodeId>> calendar_;  ///< ring of due-node lists
  std::vector<NodeId> calendar_scratch_;       ///< current slot, detached
  std::vector<std::uint64_t> due_step_;        ///< absolute next-draw step
  std::uint64_t active_step_ = 0;
  bool active_mode_ = false;               ///< advance_all_active took over
};

}  // namespace topkmon
