// Data-stream generator interface.
//
// Each distributed node observes a private online stream (v^1, v^2, ...).
// A Stream produces that sequence one value per call; the runner calls
// `next()` exactly once per node per time step, so generators that model
// global time (adversarial rotations, sinusoids) may keep an internal step
// counter and stay synchronized across nodes.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace topkmon {

/// One node's private data stream.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Advances the stream by one observation and returns the new value.
  virtual Value next() = 0;
};

/// Order-preserving distinctness transform (the paper assumes pairwise
/// distinct values): v' = v*n + (n-1-id). Raw-value order is preserved;
/// raw ties are broken toward smaller node ids; Δ scales by n.
class DistinctStream final : public Stream {
 public:
  DistinctStream(std::unique_ptr<Stream> inner, NodeId id, std::size_t n)
      : inner_(std::move(inner)), id_(id), n_(static_cast<Value>(n)) {}

  Value next() override {
    return inner_->next() * n_ + (n_ - 1 - static_cast<Value>(id_));
  }

 private:
  std::unique_ptr<Stream> inner_;
  NodeId id_;
  Value n_;
};

/// A collection of n per-node streams (one per node id).
class StreamSet {
 public:
  explicit StreamSet(std::vector<std::unique_ptr<Stream>> streams)
      : streams_(std::move(streams)) {}

  std::size_t size() const noexcept { return streams_.size(); }

  /// Advances node `id`'s stream and returns the new observation.
  Value advance(NodeId id) { return streams_.at(id)->next(); }

 private:
  std::vector<std::unique_ptr<Stream>> streams_;
};

}  // namespace topkmon
