// Data-stream generator interface.
//
// Each distributed node observes a private online stream (v^1, v^2, ...).
// A Stream produces that sequence one value per call; the runner calls
// `next()` exactly once per node per time step, so generators that model
// global time (adversarial rotations, sinusoids) may keep an internal step
// counter and stay synchronized across nodes.
//
// Batched generation: `next_batch(out)` fills `out` with the next
// out.size() values of the sequence — identical values to out.size()
// repeated next() calls, just cheaper. Families override it with a
// devirtualized inner loop (one virtual dispatch per batch instead of per
// value); the base-class default falls back to per-call next(). Streams
// are independent per node (each owns its RNG), so generating a node's
// values ahead of the observation clock is observationally equivalent.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace topkmon {

/// One node's private data stream.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Advances the stream by one observation and returns the new value.
  virtual Value next() = 0;

  /// Advances by out.size() observations, writing them in order.
  /// Equivalent to (but typically much faster than) repeated next().
  virtual void next_batch(std::span<Value> out) {
    for (Value& v : out) v = next();
  }

  /// How many values may safely be generated ahead of demand. Infinite
  /// generators (the default) allow any lookahead; a finite strict
  /// stream (TraceEnd::kThrow) returns its remaining length so a
  /// prefetching caller never triggers the end-of-trace throw earlier
  /// than per-call next() would.
  virtual std::uint64_t prefetch_limit() const {
    return ~std::uint64_t{0};
  }
};

namespace detail {

/// Shared devirtualized batch loop: instantiated inside each family's
/// .cpp (next to its next() definition), so the qualified per-value call
/// is bound statically AND inlined — one dispatch per batch, not per
/// value.
template <typename ConcreteStream>
void generate_batch(ConcreteStream& s, std::span<Value> out) {
  for (Value& v : out) v = s.ConcreteStream::next();
}

}  // namespace detail

/// Order-preserving distinctness transform (the paper assumes pairwise
/// distinct values): v' = v*n + (n-1-id). Raw-value order is preserved;
/// raw ties are broken toward smaller node ids; Δ scales by n.
class DistinctStream final : public Stream {
 public:
  DistinctStream(std::unique_ptr<Stream> inner, NodeId id, std::size_t n)
      : inner_(std::move(inner)), id_(id), n_(static_cast<Value>(n)) {}

  Value next() override {
    return inner_->next() * n_ + (n_ - 1 - static_cast<Value>(id_));
  }

  /// The transform folds into the inner stream's batch pass: one inner
  /// next_batch + an in-place affine sweep, no per-value dispatch.
  void next_batch(std::span<Value> out) override {
    inner_->next_batch(out);
    const Value off = n_ - 1 - static_cast<Value>(id_);
    for (Value& v : out) v = v * n_ + off;
  }

  std::uint64_t prefetch_limit() const override {
    return inner_->prefetch_limit();
  }

 private:
  std::unique_ptr<Stream> inner_;
  NodeId id_;
  Value n_;
};

/// A collection of n per-node streams (one per node id).
///
/// By default every advance calls straight into the stream (exactly the
/// legacy behavior). After plan_steps(T) the set may prefetch up to
/// kLookahead future values per node through next_batch, amortizing the
/// virtual dispatch. The prefetch never generates beyond the planned T
/// advances per node nor past a stream's prefetch_limit(), so finite
/// replay streams keep their exact end-of-trace semantics (including
/// the step at which TraceEnd::kThrow throws).
class StreamSet {
 public:
  explicit StreamSet(std::vector<std::unique_ptr<Stream>> streams)
      : streams_(std::move(streams)),
        buffered_(streams_.size(), 0),
        cursor_(streams_.size(), 0),
        budget_(streams_.size(), 0) {}

  std::size_t size() const noexcept { return streams_.size(); }

  /// Declares that each node will be advanced at most `total` more times,
  /// enabling batched prefetch up to that horizon. Values are identical
  /// with or without a plan; only the generation cost changes. Safe to
  /// call once per run (repeated calls re-arm the budget).
  void plan_steps(std::uint64_t total) {
    for (auto& b : budget_) b = total;
    if (lookahead_buf_.empty()) {
      lookahead_buf_.resize(streams_.size() * kLookahead);
    }
  }

  /// Advances node `id`'s stream and returns the new observation.
  /// Throws std::out_of_range for a bad id.
  Value advance(NodeId id) {
    if (cursor_.at(id) == buffered_[id]) refill(id);
    return lookahead_buf_.empty()
               ? single_[id]
               : lookahead_buf_[id * kLookahead + cursor_[id]++];
  }

  /// Advances every stream once: out[id] receives node id's observation.
  /// Requires out.size() == size().
  void advance_all(std::span<Value> out) {
    for (NodeId id = 0; id < streams_.size(); ++id) out[id] = advance(id);
  }

 private:
  /// Values prefetched per node once a plan is armed. One cache line's
  /// worth of look-ahead already reduces virtual dispatch 64-fold; deeper
  /// buffers only add memory.
  static constexpr std::size_t kLookahead = 64;

  void refill(NodeId id) {
    Stream& s = *streams_.at(id);
    if (lookahead_buf_.empty()) {
      // No plan armed: generate exactly one value (legacy path).
      if (single_.empty()) single_.resize(streams_.size());
      single_[id] = s.next();
      buffered_[id] = 0;  // stays "empty": every advance regenerates
      cursor_[id] = 0;
      return;
    }
    std::uint64_t chunk = budget_[id] == 0
                              ? 1
                              : std::min<std::uint64_t>(kLookahead,
                                                        budget_[id]);
    // Never generate past a finite strict stream's end: once exhausted,
    // fall back to one-at-a-time so the end-of-trace throw surfaces at
    // exactly the advance where per-call next() would throw.
    const std::uint64_t limit = s.prefetch_limit();
    if (chunk > limit) chunk = limit > 0 ? limit : 1;
    budget_[id] -= std::min(budget_[id], chunk);
    s.next_batch(std::span<Value>(
        lookahead_buf_.data() + id * kLookahead, chunk));
    buffered_[id] = static_cast<std::uint32_t>(chunk);
    cursor_[id] = 0;
  }

  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<Value> lookahead_buf_;       ///< empty until plan_steps()
  std::vector<Value> single_;              ///< unplanned fallback slots
  std::vector<std::uint32_t> buffered_;    ///< valid prefix per node
  std::vector<std::uint32_t> cursor_;      ///< next unread index per node
  std::vector<std::uint64_t> budget_;      ///< planned advances left
};

}  // namespace topkmon
