// Two-regime (calm/burst) Markov-modulated random walk. In the calm regime
// the walk takes small steps (filters stay valid for long stretches); in
// the burst regime it takes large jumps (frequent violations and resets).
// Models e.g. network counters under flash crowds.
#pragma once

#include "streams/stream.hpp"

namespace topkmon {

struct BurstyParams {
  Value start = 500'000;
  Value calm_step = 2;            ///< max |step| while calm
  Value burst_step = 5'000;       ///< max |step| while bursting
  double p_enter_burst = 0.005;   ///< calm -> burst transition probability
  double p_exit_burst = 0.10;     ///< burst -> calm transition probability
  Value lo = 0;
  Value hi = 1'000'000;
};

class BurstyStream final : public Stream {
 public:
  BurstyStream(BurstyParams params, Rng rng);

  Value next() override;
  void next_batch(std::span<Value> out) override;

  bool in_burst() const noexcept { return bursting_; }

 private:
  BurstyParams p_;
  Rng rng_;
  Value current_;
  bool bursting_ = false;
};

}  // namespace topkmon
