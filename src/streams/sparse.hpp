// Activity-gated stream wrapper — the "almost nothing happens almost all
// the time" workload the paper's premise lives on. Each node re-draws
// from its inner stream only on its *activity steps* and repeats its last
// value otherwise, so exactly a `rate` fraction of nodes changes per
// global step: activity steps recur with period round(1/rate) and the
// per-node phases are spread deterministically by the factory, giving
// floor/ceil(rate * n) changing nodes every step (not merely in
// expectation). The first draw is never gated — every node needs a real
// initial value.
#pragma once

#include <algorithm>
#include <memory>

#include "streams/stream.hpp"

namespace topkmon {

struct SparseParams {
  /// Fraction of nodes that change per step, in (0, 1]. Internally
  /// realized as an activity period of round(1/rate) steps.
  double rate = 0.1;
};

class SparseStream final : public Stream {
 public:
  /// Activity period implied by `rate`: round(1/rate) steps. Throws
  /// std::invalid_argument unless rate lies in (0, 1].
  static std::uint64_t period_for(double rate);

  /// Wraps `inner`; this node draws a fresh value on steps where
  /// (step + phase) % period == 0 with period = period_for(rate). `phase`
  /// must lie in [0, period); the factory spreads phases across nodes.
  SparseStream(std::unique_ptr<Stream> inner, double rate,
               std::uint64_t phase);

  Value next() override;

  /// Run-length fill: between draws the value is constant, so a batch is
  /// a handful of std::fill_n spans plus at most ceil(size/period) inner
  /// draws — O(size) stores with no per-value dispatch or arithmetic.
  void next_batch(std::span<Value> out) override;

  /// The wrapper consumes at most one inner value per outer advance, so
  /// the inner bound is a safe (conservative) outer bound.
  std::uint64_t prefetch_limit() const override {
    return inner_->prefetch_limit();
  }

  /// Quiet-run certification: between draws the value is constant by
  /// construction, so the remaining countdown can be consumed in O(1).
  bool supports_quiet_runs() const override { return true; }
  std::uint64_t advance_quiet(std::uint64_t max_steps) override {
    const std::uint64_t run = std::min(until_, max_steps);
    until_ -= run;
    return run;
  }

  std::uint64_t period() const noexcept { return period_; }

 private:
  /// Draws a fresh inner value and resets the countdown to the next
  /// activity step ((t + phase) % period == 0, with step 0 always a draw).
  void draw();

  std::unique_ptr<Stream> inner_;
  std::uint64_t period_;
  std::uint64_t phase_;
  std::uint64_t until_ = 0;  ///< outer advances until the next draw
  bool first_ = true;
  Value current_ = 0;
};

}  // namespace topkmon
