#include "streams/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topkmon {

ZipfSampler::ZipfSampler(std::size_t num_ranks, double s) {
  if (num_ranks == 0) throw std::invalid_argument("ZipfSampler: M == 0");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: negative exponent");
  cdf_.resize(num_ranks);
  double acc = 0.0;
  for (std::size_t r = 1; r <= num_ranks; ++r) {
    acc += std::pow(static_cast<double>(r), -s);
    cdf_[r - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

ZipfStream::ZipfStream(std::size_t num_ranks, double s, Value peak, Rng rng)
    : sampler_(num_ranks, s), peak_(peak), rng_(rng) {
  if (peak <= 0) throw std::invalid_argument("ZipfStream: peak <= 0");
}

Value ZipfStream::next() {
  const auto rank = sampler_.sample(rng_);
  return std::max<Value>(1, peak_ / static_cast<Value>(rank));
}

ParetoStream::ParetoStream(Value xm, double alpha, Value cap, Rng rng)
    : xm_(xm), alpha_(alpha), cap_(cap), rng_(rng) {
  if (xm <= 0 || alpha <= 0.0 || cap < xm) {
    throw std::invalid_argument("ParetoStream: invalid parameters");
  }
}

Value ParetoStream::next() {
  double u = 0.0;
  do {
    u = rng_.next_double();
  } while (u <= 0.0);
  const double draw = static_cast<double>(xm_) / std::pow(u, 1.0 / alpha_);
  if (draw >= static_cast<double>(cap_)) return cap_;
  return static_cast<Value>(draw);
}

void ZipfStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

void ParetoStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

}  // namespace topkmon
