#include "streams/iid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topkmon {

IidUniformStream::IidUniformStream(Value lo, Value hi, Rng rng)
    : lo_(lo), hi_(hi), rng_(rng) {
  if (lo > hi) throw std::invalid_argument("IidUniformStream: lo > hi");
}

Value IidUniformStream::next() { return rng_.uniform_int(lo_, hi_); }

IidGaussianStream::IidGaussianStream(double mean, double sigma, Value lo,
                                     Value hi, Rng rng)
    : mean_(mean), sigma_(sigma), lo_(lo), hi_(hi), rng_(rng) {
  if (lo > hi || sigma < 0.0) {
    throw std::invalid_argument("IidGaussianStream: invalid parameters");
  }
}

Value IidGaussianStream::next() {
  const double draw = mean_ + sigma_ * rng_.next_gaussian();
  const auto v = static_cast<Value>(std::llround(draw));
  return std::clamp(v, lo_, hi_);
}

void IidUniformStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

void IidGaussianStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

}  // namespace topkmon
