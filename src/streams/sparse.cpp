#include "streams/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topkmon {

std::uint64_t SparseStream::period_for(double rate) {
  if (!(rate > 0.0) || rate > 1.0) {
    throw std::invalid_argument("SparseStream: rate must be in (0, 1]");
  }
  const auto period = static_cast<std::uint64_t>(std::llround(1.0 / rate));
  return period == 0 ? 1 : period;
}

SparseStream::SparseStream(std::unique_ptr<Stream> inner, double rate,
                           std::uint64_t phase)
    : inner_(std::move(inner)), period_(period_for(rate)), phase_(phase) {
  if (phase >= period_) {
    throw std::invalid_argument("SparseStream: phase out of range");
  }
}

void SparseStream::draw() {
  current_ = inner_->next();
  // Step 0 always draws (every node needs a real initial value); the
  // next activity step is then the first t > 0 with
  // (t + phase) % period == 0, i.e. period - phase (or a full period for
  // phase 0). Afterwards draws recur every `period` advances.
  until_ = first_ && phase_ != 0 ? period_ - phase_ : period_;
  first_ = false;
}

Value SparseStream::next() {
  if (until_ == 0) draw();
  --until_;
  return current_;
}

void SparseStream::next_batch(std::span<Value> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    if (until_ == 0) draw();
    const auto run = static_cast<std::size_t>(
        std::min<std::uint64_t>(until_, out.size() - i));
    std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(i), run, current_);
    until_ -= run;
    i += run;
  }
}

}  // namespace topkmon
