// Composite "environmental sensor" stream: bounded random walk plus a
// diurnal sinusoidal drift plus rare spikes. This is the application the
// paper's summary highlights (temperature-like values naturally bounded by
// the domain, where the approach "performs quite well").
#pragma once

#include "streams/stream.hpp"

namespace topkmon {

struct SensorParams {
  double base = 180.0;          ///< long-run mean (e.g. tenths of a degree)
  double diurnal_amplitude = 60.0;
  double diurnal_period = 1440.0;  ///< steps per simulated day
  double phase = 0.0;
  Value walk_step = 3;          ///< local fluctuation magnitude
  double spike_prob = 0.001;    ///< probability of a transient spike
  Value spike_magnitude = 120;
  Value lo = -400;
  Value hi = 1'200;
};

class SensorStream final : public Stream {
 public:
  SensorStream(SensorParams params, Rng rng);

  Value next() override;
  void next_batch(std::span<Value> out) override;

 private:
  SensorParams p_;
  Rng rng_;
  Value walk_ = 0;       ///< mean-reverting local fluctuation
  std::uint64_t t_ = 0;
  std::uint32_t spike_left_ = 0;
};

}  // namespace topkmon
