#include "streams/trace.hpp"

namespace topkmon {

TraceStream::TraceStream(std::vector<Value> values, TraceEnd end_behavior)
    : values_(std::move(values)), end_(end_behavior) {
  if (values_.empty()) {
    throw std::invalid_argument("TraceStream: empty trace");
  }
}

Value TraceStream::next() {
  if (pos_ >= values_.size()) {
    switch (end_) {
      case TraceEnd::kHoldLast:
        return values_.back();
      case TraceEnd::kCycle:
        pos_ = 0;
        break;
      case TraceEnd::kThrow:
        throw std::out_of_range("TraceStream exhausted");
    }
  }
  return values_[pos_++];
}

StreamSet TraceMatrix::to_stream_set(TraceEnd end_behavior) const {
  std::vector<std::unique_ptr<Stream>> streams;
  streams.reserve(n_);
  for (NodeId i = 0; i < n_; ++i) {
    std::vector<Value> column;
    column.reserve(rows_.size());
    for (const auto& row : rows_) column.push_back(row[i]);
    streams.push_back(
        std::make_unique<TraceStream>(std::move(column), end_behavior));
  }
  return StreamSet(std::move(streams));
}

void TraceStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

}  // namespace topkmon
