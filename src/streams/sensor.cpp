#include "streams/sensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace topkmon {

SensorStream::SensorStream(SensorParams params, Rng rng)
    : p_(params), rng_(rng) {
  if (p_.diurnal_period <= 0.0 || p_.lo > p_.hi || p_.walk_step < 0) {
    throw std::invalid_argument("SensorStream: invalid parameters");
  }
}

Value SensorStream::next() {
  constexpr double kTau = 6.28318530717958647692;
  // Mean-reverting fluctuation: drift one unit back toward zero, then step.
  if (walk_ > 0) --walk_;
  else if (walk_ < 0) ++walk_;
  walk_ += rng_.uniform_int(-p_.walk_step, p_.walk_step);

  if (spike_left_ > 0) {
    --spike_left_;
  } else if (rng_.bernoulli(p_.spike_prob)) {
    spike_left_ = static_cast<std::uint32_t>(rng_.uniform_int(3, 12));
  }

  const double diurnal =
      p_.diurnal_amplitude *
      std::sin(kTau * (static_cast<double>(t_) + p_.phase) / p_.diurnal_period);
  ++t_;

  double v = p_.base + diurnal + static_cast<double>(walk_);
  if (spike_left_ > 0) v += static_cast<double>(p_.spike_magnitude);
  const auto rounded = static_cast<Value>(std::llround(v));
  return std::clamp(rounded, p_.lo, p_.hi);
}

void SensorStream::next_batch(std::span<Value> out) {
  detail::generate_batch(*this, out);
}

}  // namespace topkmon
