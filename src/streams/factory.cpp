#include "streams/factory.hpp"

#include <memory>
#include <stdexcept>

#include "util/strings.hpp"

namespace topkmon {

std::string_view family_name(StreamFamily family) noexcept {
  switch (family) {
    case StreamFamily::kRandomWalk: return "random_walk";
    case StreamFamily::kIidUniform: return "iid_uniform";
    case StreamFamily::kIidGaussian: return "iid_gaussian";
    case StreamFamily::kZipf: return "zipf";
    case StreamFamily::kPareto: return "pareto";
    case StreamFamily::kSinusoidal: return "sinusoidal";
    case StreamFamily::kBursty: return "bursty";
    case StreamFamily::kRotatingMax: return "rotating_max";
    case StreamFamily::kCrossingPairs: return "crossing_pairs";
    case StreamFamily::kSensor: return "sensor";
    case StreamFamily::kSparse: return "sparse";
  }
  return "?";
}

std::vector<StreamFamily> all_families() {
  return {StreamFamily::kRandomWalk,    StreamFamily::kIidUniform,
          StreamFamily::kIidGaussian,   StreamFamily::kZipf,
          StreamFamily::kPareto,        StreamFamily::kSinusoidal,
          StreamFamily::kBursty,        StreamFamily::kRotatingMax,
          StreamFamily::kCrossingPairs, StreamFamily::kSensor,
          StreamFamily::kSparse};
}

StreamFamily family_from_name(std::string_view name) {
  for (const StreamFamily family : all_families()) {
    if (family_name(family) == name) return family;
  }
  throw std::invalid_argument("unknown stream family '" + std::string(name) +
                              "'");
}

namespace {

std::unique_ptr<Stream> make_one(const StreamSpec& spec, NodeId id,
                                 std::size_t n, const Rng& root) {
  const Rng rng = root.derive(0x57AEull + id);
  const double frac =
      static_cast<double>(id + 1) / static_cast<double>(n + 1);
  switch (spec.family) {
    case StreamFamily::kRandomWalk: {
      RandomWalkParams p = spec.walk;
      p.start = p.lo + static_cast<Value>(
                           static_cast<double>(p.hi - p.lo) * frac);
      return std::make_unique<RandomWalkStream>(p, rng);
    }
    case StreamFamily::kIidUniform:
      return std::make_unique<IidUniformStream>(spec.iid_lo, spec.iid_hi, rng);
    case StreamFamily::kIidGaussian:
      return std::make_unique<IidGaussianStream>(
          spec.gauss_mean, spec.gauss_sigma, spec.iid_lo, spec.iid_hi, rng);
    case StreamFamily::kZipf:
      return std::make_unique<ZipfStream>(spec.zipf_ranks, spec.zipf_s,
                                          spec.zipf_peak, rng);
    case StreamFamily::kPareto:
      return std::make_unique<ParetoStream>(spec.pareto_xm, spec.pareto_alpha,
                                            spec.pareto_cap, rng);
    case StreamFamily::kSinusoidal: {
      SinusoidalParams p = spec.sinus;
      p.phase = p.period * static_cast<double>(id) / static_cast<double>(n);
      return std::make_unique<SinusoidalStream>(p, rng);
    }
    case StreamFamily::kBursty: {
      BurstyParams p = spec.bursty;
      p.start = p.lo + static_cast<Value>(
                           static_cast<double>(p.hi - p.lo) * frac);
      return std::make_unique<BurstyStream>(p, rng);
    }
    case StreamFamily::kRotatingMax: {
      RotatingMaxParams p = spec.rotating;
      p.n = n;
      return std::make_unique<RotatingMaxStream>(p, id);
    }
    case StreamFamily::kCrossingPairs: {
      CrossingPairsParams p = spec.crossing;
      p.n = n;
      return std::make_unique<CrossingPairsStream>(p, id);
    }
    case StreamFamily::kSensor: {
      SensorParams p = spec.sensor;
      p.phase = p.diurnal_period * static_cast<double>(id) /
                static_cast<double>(n);
      return std::make_unique<SensorStream>(p, rng);
    }
    case StreamFamily::kSparse: {
      if (spec.sparse_inner == StreamFamily::kSparse) {
        throw std::invalid_argument(
            "make_stream_set: sparse cannot wrap itself");
      }
      StreamSpec inner_spec = spec;
      inner_spec.family = spec.sparse_inner;
      auto inner = make_one(inner_spec, id, n, root);
      // Activity phases are striped id % period: every window of `period`
      // consecutive ids covers all phases once, so exactly
      // floor/ceil(rate * n) nodes draw fresh values on any given step.
      const std::uint64_t period = SparseStream::period_for(spec.sparse.rate);
      return std::make_unique<SparseStream>(std::move(inner),
                                            spec.sparse.rate, id % period);
    }
  }
  throw std::invalid_argument("make_stream_set: unknown family");
}

}  // namespace

StreamSpec parse_stream_spec(std::string_view text, StreamSpec base) {
  const std::size_t q = text.find('?');
  base.family = family_from_name(text.substr(0, q));
  if (q == std::string_view::npos) return base;
  if (base.family != StreamFamily::kSparse) {
    throw std::invalid_argument("stream spec '" + std::string(text) +
                                "': family has no parameter grammar");
  }
  for (const std::string_view item : split(text.substr(q + 1), ',')) {
    const std::size_t eq = item.find('=');
    const std::string_view key = item.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{} : item.substr(eq + 1);
    if (key == "rate") {
      const auto rate = to_double(value);
      if (!rate || !(*rate > 0.0) || *rate > 1.0) {
        throw std::invalid_argument("stream spec: '" + std::string(value) +
                                    "' is not a rate in (0, 1]");
      }
      base.sparse.rate = *rate;
    } else if (key == "inner") {
      base.sparse_inner = family_from_name(value);
      if (base.sparse_inner == StreamFamily::kSparse) {
        throw std::invalid_argument("stream spec: sparse cannot wrap itself");
      }
    } else {
      throw std::invalid_argument("stream spec: unknown parameter '" +
                                  std::string(key) + "'");
    }
  }
  return base;
}

StreamSet make_stream_set(const StreamSpec& spec, std::size_t n,
                          std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("make_stream_set: n == 0");
  const Rng root(seed);
  std::vector<std::unique_ptr<Stream>> streams;
  streams.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    auto s = make_one(spec, id, n, root);
    if (spec.enforce_distinct) {
      s = std::make_unique<DistinctStream>(std::move(s), id, n);
    }
    streams.push_back(std::move(s));
  }
  return StreamSet(std::move(streams));
}

}  // namespace topkmon
