// Wire encoding of protocol-epoch-tagged broadcast payloads.
//
// Round beacons and winner announcements carry (value, holder) plus the
// epoch of the protocol execution that produced them, so that a node
// participating in a later execution can discard stale beacons still
// sitting in its mailbox. The epoch and holder share the second payload
// word: b = (epoch << 32) | holder. Both the synchronous protocol
// implementation (protocols/extremum.cpp) and the native event-driven
// sessions (core/filter_roles.cpp) must agree on this packing — it is
// part of the byte-level message format.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace topkmon {

/// Beacon payload packing: a = value, b = (epoch << 32) | holder.
constexpr std::int64_t pack_beacon_b(std::uint32_t epoch,
                                     NodeId holder) noexcept {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(epoch) << 32) |
      static_cast<std::uint64_t>(holder));
}

struct UnpackedBeacon {
  std::uint32_t epoch;
  NodeId holder;
};

constexpr UnpackedBeacon unpack_beacon_b(std::int64_t b) noexcept {
  const auto raw = static_cast<std::uint64_t>(b);
  return {static_cast<std::uint32_t>(raw >> 32),
          static_cast<NodeId>(raw & 0xFFFFFFFFull)};
}

}  // namespace topkmon
