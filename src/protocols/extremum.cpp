#include "protocols/extremum.hpp"

#include <stdexcept>

#include "protocols/beacon.hpp"

namespace topkmon {

ProtocolResult run_extremum_protocol(Cluster& cluster,
                                     std::span<const NodeId> participants,
                                     std::uint64_t n_upper, Direction dir,
                                     const ProtocolOptions& opts) {
  ProtocolResult result;
  if (participants.empty()) return result;
  if (n_upper < participants.size()) {
    throw std::invalid_argument(
        "run_extremum_protocol: N must upper-bound the participant count");
  }

  const std::uint32_t epoch = cluster.next_protocol_epoch();
  const std::uint64_t n_pow2 = next_pow2(n_upper);
  const std::uint32_t log_n = floor_log2(n_pow2);

  Network& net = cluster.net();

  // Node-side per-participant view of the latest beacon of *this* epoch.
  // Indexed like `participants`; knowledge arrives only via drained
  // broadcasts.
  struct NodeView {
    bool has_beacon = false;
    Value beacon_value = 0;
    NodeId beacon_holder = kNoHolder;
  };
  std::vector<NodeView> views(participants.size());
  std::vector<Message> mail;  // drain scratch, reused across rounds

  NodeRuntime& rt = cluster.runtime();
  for (const NodeId id : participants) rt.active.set(id);

  // Coordinator-side running extremum, fed exclusively by received reports.
  bool have_best = false;
  Value best_value = 0;
  NodeId best_holder = kNoHolder;

  for (std::uint32_t r = 0; r <= log_n; ++r) {
    ++result.rounds;

    // --- node phase -------------------------------------------------------
    for (std::size_t idx = 0; idx < participants.size(); ++idx) {
      const NodeId id = participants[idx];
      if (!rt.active.test(id)) continue;
      const Value node_value = rt.values[id];

      // Receive pending broadcasts; keep only beacons of this epoch.
      net.drain_node(id, mail);
      for (const Message& m : mail) {
        if (m.kind != MsgKind::kRoundBeacon) continue;
        const auto beacon = unpack_beacon_b(m.b);
        if (beacon.epoch != epoch) continue;
        // A beacon without a holder means "no report seen yet" and carries
        // no deactivation power (matters for the minimum direction, where
        // any sentinel value would wrongly beat real values).
        if (beacon.holder == kNoHolder) continue;
        views[idx].has_beacon = true;
        views[idx].beacon_value = m.a;
        views[idx].beacon_holder = beacon.holder;
      }

      // Line 8: a node beaten by the broadcast extremum deactivates.
      if (views[idx].has_beacon &&
          !beats(dir, node_value, id, views[idx].beacon_value,
                 views[idx].beacon_holder)) {
        rt.active.clear(id);
        continue;
      }

      // Line 11: Bernoulli(2^r / N) coin flip.
      if (rt.rngs[id].bernoulli_pow2(r, log_n)) {
        Message report;
        report.kind = MsgKind::kValueReport;
        report.a = node_value;
        net.node_send(id, report);
        ++result.reports;
        rt.active.clear(id);
      }
    }

    // --- coordinator phase --------------------------------------------------
    bool improved = false;
    net.drain_coordinator(mail);
    for (const Message& m : mail) {
      if (m.kind != MsgKind::kValueReport) continue;
      if (!have_best || beats(dir, m.a, m.from, best_value, best_holder)) {
        have_best = true;
        best_value = m.a;
        best_holder = m.from;
        improved = true;
      }
    }

    // Line 18: broadcast the running extremum (optionally only on change).
    const bool is_last_round = (r == log_n);
    if (!opts.suppress_idle_broadcasts || (improved && !is_last_round)) {
      if (!is_last_round) {  // a beacon after the final round informs nobody
        Message beacon;
        beacon.kind = MsgKind::kRoundBeacon;
        beacon.a = have_best ? best_value : kMinusInf;
        beacon.b = pack_beacon_b(epoch, have_best ? best_holder : kNoHolder);
        net.coord_broadcast(beacon);
        ++result.beacons;
      }
    }
  }

  // The final round has success probability 1, so every node that was still
  // active reported; with >= 1 participant the coordinator saw >= 1 report.
  result.found = have_best;
  result.winner = best_holder;
  result.extremum = best_value;

  if (opts.announce_winner && result.found) {
    Message announce;
    announce.kind = MsgKind::kWinnerAnnounce;
    announce.a = result.extremum;
    announce.b = pack_beacon_b(epoch, result.winner);
    net.coord_broadcast(announce);
    ++result.announces;
  }

  for (const NodeId id : participants) rt.active.clear(id);
  return result;
}

ProtocolResult run_max_protocol(Cluster& cluster,
                                std::span<const NodeId> participants,
                                std::uint64_t n_upper,
                                const ProtocolOptions& opts) {
  return run_extremum_protocol(cluster, participants, n_upper, Direction::kMax,
                               opts);
}

ProtocolResult run_min_protocol(Cluster& cluster,
                                std::span<const NodeId> participants,
                                std::uint64_t n_upper,
                                const ProtocolOptions& opts) {
  return run_extremum_protocol(cluster, participants, n_upper, Direction::kMin,
                               opts);
}

}  // namespace topkmon
