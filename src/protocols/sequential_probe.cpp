#include "protocols/sequential_probe.hpp"

namespace topkmon {

SequentialProbeResult run_sequential_probe_max(Cluster& cluster,
                                               std::span<const NodeId> order) {
  SequentialProbeResult result;
  Network& net = cluster.net();
  std::vector<Message> mail;  // drain scratch, reused across probes

  for (const NodeId id : order) {
    // The node reads the best-so-far broadcasts before deciding to speak.
    Value best_known = kMinusInf;
    bool has_best = false;
    net.drain_node(id, mail);
    for (const Message& m : mail) {
      if (m.kind != MsgKind::kRoundBeacon) continue;
      best_known = m.a;
      has_best = true;
    }
    const Value v = cluster.value(id);
    const bool should_report = !has_best || v > best_known;
    if (!should_report) continue;

    Message report;
    report.kind = MsgKind::kValueReport;
    report.a = v;
    net.node_send(id, report);
    ++result.reports;

    net.drain_coordinator(mail);
    for (const Message& m : mail) {
      if (m.kind != MsgKind::kValueReport) continue;
      if (!result.found || m.a > result.maximum ||
          (m.a == result.maximum && m.from < result.winner)) {
        result.found = true;
        result.winner = m.from;
        result.maximum = m.a;
      }
    }

    Message beacon;
    beacon.kind = MsgKind::kRoundBeacon;
    beacon.a = result.maximum;
    net.coord_broadcast(beacon);
    ++result.broadcasts;
  }
  return result;
}

}  // namespace topkmon
