// Algorithm 2 of the paper: the randomized Las-Vegas protocol that
// determines the maximum (or, dually, minimum) value currently held by a
// set of nodes using O(log N) messages in expectation and w.h.p.
//
// Execution (MAXIMUMPROTOCOL(N)): all participants start active. In round
// r = 0..log N each active node whose value still beats the last broadcast
// beacon flips an independent coin with success probability 2^r/N and, on
// success, reports (id, value) to the coordinator and deactivates; nodes
// beaten by the beacon deactivate silently. After collecting the round's
// reports the coordinator broadcasts the running extremum. In the final
// round the success probability is 1, so every still-active node reports:
// the protocol always returns the exact extremum (Las Vegas), only the
// message count is random (E[#reports] <= 2 log N + 1, Theorem 4.2).
//
// Ties are broken toward the smaller node id, making the result unique
// even without the paper's pairwise-distinct assumption.
#pragma once

#include <span>

#include "sim/cluster.hpp"
#include "util/types.hpp"

namespace topkmon {

/// Which extremum the protocol computes.
enum class Direction { kMax, kMin };

/// Tunables / ablations for a protocol execution.
struct ProtocolOptions {
  /// Ablation: broadcast the round beacon only when the running extremum
  /// improved this round (the paper broadcasts every round; suppression
  /// trades beacon messages for weaker node deactivation).
  bool suppress_idle_broadcasts = false;

  /// Broadcast a final kWinnerAnnounce carrying (winner, value). Used by
  /// repeated-extremum selection so every node learns the winner (e.g. to
  /// exclude it from the next iteration / learn top-k membership).
  bool announce_winner = false;
};

/// Outcome and message accounting of one protocol execution. The messages
/// are also charged to the cluster's CommStats; the per-run counts here
/// support per-execution analysis (Theorem 4.2 experiments).
struct ProtocolResult {
  bool found = false;          ///< false iff the participant set was empty
  NodeId winner = kNoHolder;   ///< holder of the extremum
  Value extremum = 0;          ///< the extremum value
  std::uint32_t rounds = 0;    ///< rounds executed (log N + 1)
  std::uint64_t reports = 0;   ///< node -> coordinator value reports
  std::uint64_t beacons = 0;   ///< coordinator round-beacon broadcasts
  std::uint64_t announces = 0; ///< winner-announce broadcasts (0 or 1)

  std::uint64_t messages() const noexcept {
    return reports + beacons + announces;
  }
};

/// True if (va, ia) beats (vb, ib) in direction `dir` under the smaller-id
/// tie break.
constexpr bool beats(Direction dir, Value va, NodeId ia, Value vb,
                     NodeId ib) noexcept {
  if (va != vb) return dir == Direction::kMax ? va > vb : va < vb;
  return ia < ib;
}

/// Runs Algorithm 2 (or its minimum dual) over `participants` at the
/// current instant. `n_upper` is the parameter N of the paper: any upper
/// bound on the number of participants (rounded up to a power of two
/// internally). Participant values are read from the cluster and reach the
/// coordinator only through messages.
ProtocolResult run_extremum_protocol(Cluster& cluster,
                                     std::span<const NodeId> participants,
                                     std::uint64_t n_upper, Direction dir,
                                     const ProtocolOptions& opts = {});

/// Convenience wrapper: MAXIMUMPROTOCOL(n_upper).
ProtocolResult run_max_protocol(Cluster& cluster,
                                std::span<const NodeId> participants,
                                std::uint64_t n_upper,
                                const ProtocolOptions& opts = {});

/// Convenience wrapper: MINIMUMPROTOCOL(n_upper).
ProtocolResult run_min_protocol(Cluster& cluster,
                                std::span<const NodeId> participants,
                                std::uint64_t n_upper,
                                const ProtocolOptions& opts = {});

}  // namespace topkmon
