#include "protocols/select_topk.hpp"

#include <algorithm>

namespace topkmon {

SelectTopkResult select_extreme(Cluster& cluster,
                                std::span<const NodeId> candidates,
                                std::size_t m, std::uint64_t n_upper,
                                Direction dir,
                                const ProtocolOptions& base_opts) {
  SelectTopkResult result;
  std::vector<NodeId> remaining(candidates.begin(), candidates.end());

  ProtocolOptions opts = base_opts;
  opts.announce_winner = true;  // winners must become common knowledge

  for (std::size_t i = 0; i < m && !remaining.empty(); ++i) {
    const ProtocolResult round =
        run_extremum_protocol(cluster, remaining, n_upper, dir, opts);
    result.reports += round.reports;
    result.beacons += round.beacons;
    result.announces += round.announces;
    if (!round.found) break;  // defensive; cannot happen with participants
    result.winners.push_back(SelectionEntry{round.winner, round.extremum});
    remaining.erase(
        std::remove(remaining.begin(), remaining.end(), round.winner),
        remaining.end());
  }
  return result;
}

}  // namespace topkmon
