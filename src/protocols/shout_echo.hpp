// Shout-echo selection (related work [13,14]): the coordinator "shouts" a
// query on the broadcast channel and *all* addressed nodes "echo" a reply.
// This line of work minimizes the number of communication cycles, not the
// number of messages — a single cycle already finds the maximum but costs
// |participants| + 1 messages. Included as the message-heavy/round-light
// counterpoint to Algorithm 2 in the ablation experiments.
#pragma once

#include <span>
#include <vector>

#include "protocols/select_topk.hpp"
#include "sim/cluster.hpp"

namespace topkmon {

struct ShoutEchoResult {
  bool found = false;
  NodeId winner = kNoHolder;
  Value extremum = 0;
  std::uint64_t shouts = 0;   ///< coordinator broadcasts
  std::uint64_t echoes = 0;   ///< node replies

  std::uint64_t messages() const noexcept { return shouts + echoes; }
};

/// One shout-echo cycle computing the extremum: 1 broadcast, p echoes.
ShoutEchoResult run_shout_echo_extremum(Cluster& cluster,
                                        std::span<const NodeId> participants,
                                        Direction dir = Direction::kMax);

/// One shout-echo cycle retrieving *all* participant values; the
/// coordinator sorts locally and returns the m best. Message cost is
/// independent of m (p + 1): with full information the coordinator can
/// select any statistic.
struct ShoutEchoTopkResult {
  std::vector<SelectionEntry> winners;  ///< best-first, length min(m, p)
  std::uint64_t shouts = 0;
  std::uint64_t echoes = 0;

  std::uint64_t messages() const noexcept { return shouts + echoes; }
};

ShoutEchoTopkResult run_shout_echo_topk(Cluster& cluster,
                                        std::span<const NodeId> participants,
                                        std::size_t m,
                                        Direction dir = Direction::kMax);

}  // namespace topkmon
