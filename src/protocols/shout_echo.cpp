#include "protocols/shout_echo.hpp"

#include <algorithm>

namespace topkmon {

namespace {

/// Shouts a probe and collects every participant's (id, value) echo.
std::vector<SelectionEntry> shout_collect(Cluster& cluster,
                                          std::span<const NodeId> participants,
                                          std::uint64_t* shouts,
                                          std::uint64_t* echoes) {
  Network& net = cluster.net();

  Message shout;
  shout.kind = MsgKind::kProtocolStart;
  net.coord_broadcast(shout);
  ++*shouts;

  std::vector<Message> mail;  // drain scratch, reused across participants
  for (const NodeId id : participants) {
    // The node consumes its mailbox (the shout) and echoes its value.
    net.drain_node(id, mail);
    Message echo;
    echo.kind = MsgKind::kValueReport;
    echo.a = cluster.value(id);
    net.node_send(id, echo);
    ++*echoes;
  }

  std::vector<SelectionEntry> received;
  net.drain_coordinator(mail);
  received.reserve(mail.size());
  for (const Message& m : mail) {
    if (m.kind != MsgKind::kValueReport) continue;
    received.push_back(SelectionEntry{m.from, m.a});
  }
  return received;
}

}  // namespace

ShoutEchoResult run_shout_echo_extremum(Cluster& cluster,
                                        std::span<const NodeId> participants,
                                        Direction dir) {
  ShoutEchoResult result;
  if (participants.empty()) return result;
  const auto received =
      shout_collect(cluster, participants, &result.shouts, &result.echoes);
  for (const auto& entry : received) {
    if (!result.found || beats(dir, entry.value, entry.id, result.extremum,
                               result.winner)) {
      result.found = true;
      result.winner = entry.id;
      result.extremum = entry.value;
    }
  }
  return result;
}

ShoutEchoTopkResult run_shout_echo_topk(Cluster& cluster,
                                        std::span<const NodeId> participants,
                                        std::size_t m, Direction dir) {
  ShoutEchoTopkResult result;
  if (participants.empty() || m == 0) return result;
  auto received =
      shout_collect(cluster, participants, &result.shouts, &result.echoes);
  std::sort(received.begin(), received.end(),
            [dir](const SelectionEntry& x, const SelectionEntry& y) {
              return beats(dir, x.value, x.id, y.value, y.id);
            });
  if (received.size() > m) received.resize(m);
  result.winners = std::move(received);
  return result;
}

}  // namespace topkmon
