// Repeated-extremum selection: determines the m largest (or smallest)
// values and their holders by running Algorithm 2 m times, excluding the
// winner after each run (the paper's FILTERRESET, lines 37-39, uses exactly
// this with m = k+1). Expected cost O(m log N); each iteration's
// kWinnerAnnounce broadcast lets every node track the winner set, which
// FILTERRESET reuses as the top-k membership notification.
#pragma once

#include <span>
#include <vector>

#include "protocols/extremum.hpp"
#include "sim/cluster.hpp"

namespace topkmon {

struct SelectionEntry {
  NodeId id = kNoHolder;
  Value value = 0;
};

struct SelectTopkResult {
  /// Winners in selection order (best first). May be shorter than m if the
  /// candidate set was smaller.
  std::vector<SelectionEntry> winners;
  std::uint64_t reports = 0;
  std::uint64_t beacons = 0;
  std::uint64_t announces = 0;

  std::uint64_t messages() const noexcept {
    return reports + beacons + announces;
  }
};

/// Selects the m extremal nodes among `candidates` (direction `dir`),
/// best-first. `n_upper` is the protocol bound N used for every iteration,
/// as in FILTERRESET ("apply MAXIMUMPROTOCOL(n)").
SelectTopkResult select_extreme(Cluster& cluster,
                                std::span<const NodeId> candidates,
                                std::size_t m, std::uint64_t n_upper,
                                Direction dir = Direction::kMax,
                                const ProtocolOptions& base_opts = {});

}  // namespace topkmon
