// The deterministic probing scheme from the Theorem 4.3 lower-bound proof:
// the coordinator works through a fixed sequence of nodes; a node reports
// only if its value beats the best broadcast so far, and every report
// triggers a broadcast of the new best. On a uniformly random permutation
// of distinct values the number of reports equals the number of
// left-to-right maxima, whose expectation is the harmonic number
// H_n = Θ(log n) — the experiment E3 checks exactly this.
//
// Sequencing note: the model's lock-step rounds give each node its slot;
// "silence" in a slot is information-free and costs no message (standard
// in this literature).
#pragma once

#include <span>

#include "sim/cluster.hpp"
#include "util/types.hpp"

namespace topkmon {

struct SequentialProbeResult {
  bool found = false;
  NodeId winner = kNoHolder;
  Value maximum = 0;
  std::uint64_t reports = 0;     ///< nodes that beat the running maximum
  std::uint64_t broadcasts = 0;  ///< best-so-far broadcasts (== reports)

  std::uint64_t messages() const noexcept { return reports + broadcasts; }
};

/// Probes `order` front to back and returns the maximum.
SequentialProbeResult run_sequential_probe_max(Cluster& cluster,
                                               std::span<const NodeId> order);

}  // namespace topkmon
