#include "alloc_hook.hpp"

// Never fight the sanitizer allocator, even if the build system asked for
// the hook.
#if defined(__SANITIZE_ADDRESS__)
#undef TOPKMON_ALLOC_HOOK
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#undef TOPKMON_ALLOC_HOOK
#endif
#endif

#ifdef TOPKMON_ALLOC_HOOK

#include <cstdlib>
#include <new>

namespace topkmon::bench {
namespace {

thread_local std::uint64_t t_allocs = 0;

void* counted_alloc(std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  ++t_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size ? size : 1) == 0) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

bool alloc_hook_enabled() noexcept { return true; }
std::uint64_t thread_alloc_count() noexcept { return t_allocs; }

}  // namespace topkmon::bench

void* operator new(std::size_t size) {
  return topkmon::bench::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return topkmon::bench::counted_alloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++topkmon::bench::t_allocs;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++topkmon::bench::t_allocs;
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return topkmon::bench::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return topkmon::bench::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#else  // !TOPKMON_ALLOC_HOOK

namespace topkmon::bench {

bool alloc_hook_enabled() noexcept { return false; }
std::uint64_t thread_alloc_count() noexcept { return 0; }

}  // namespace topkmon::bench

#endif  // TOPKMON_ALLOC_HOOK
