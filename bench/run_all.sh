#!/usr/bin/env bash
# Reproduces the full paper table set with one command:
#
#   bench/run_all.sh [BUILD_DIR] [OUT_DIR] [extra topkmon_bench flags...]
#
# Runs every registered suite of topkmon_bench at its default
# trials/steps, parallelized across all cores, and mirrors each table
# into OUT_DIR as CSV + JSON. Extra flags are forwarded verbatim, e.g.
#
#   bench/run_all.sh build results --steps 500 --seed 7
#
# Expects the tree to be configured+built already
# (cmake -B build -S . && cmake --build build -j). See
# docs/reproducing-the-paper.md for the suite <-> paper-claim map.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results}"
shift $(( $# > 2 ? 2 : $# ))
BENCH="${BUILD_DIR}/topkmon_bench"

if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== topkmon: full paper table set =="
echo "   binary : ${BENCH}"
echo "   jobs   : ${JOBS}"
echo "   output : ${OUT_DIR}/"
echo

"${BENCH}" --all --jobs "${JOBS}" --out-dir "${OUT_DIR}" "$@"

echo
echo "== artifacts =="
ls -1 "${OUT_DIR}"
