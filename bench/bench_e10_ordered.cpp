// E10 — §5 future work: monitoring the top-k *with its internal order*
// (conjectured O(log Δ · log(n-k))-competitive via Lam-midpoints inside
// the top-k + the paper's boundary machinery).
//
// Regenerates: overhead of OrderedTopkMonitor over plain Algorithm 1
// across k and across workloads, plus the share of messages spent on
// internal reordering vs boundary maintenance.
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(e10, "ordered top-k overhead (§5 conjecture variant)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(1'000);
  constexpr std::size_t kN = 32;

  ctx.out() << "E10: ordered top-k (the §5 conjecture variant)\n"
            << "n = " << kN << ", steps = " << steps
            << " (order validated against ground truth every step)\n\n";

  struct Cell {
    StreamFamily fam;
    std::size_t k;
  };
  std::vector<Cell> cells;
  for (const auto fam : {StreamFamily::kRandomWalk, StreamFamily::kSinusoidal,
                         StreamFamily::kBursty}) {
    for (const std::size_t k : {2u, 4u, 8u}) cells.push_back({fam, k});
  }

  struct CellResult {
    RunResult plain, ordered;
  };
  const auto rows = ctx.runner().map<CellResult>(
      cells.size(), [&](std::size_t ci) {
        const auto [fam, k] = cells[ci];
        StreamSpec spec;
        spec.family = fam;
        spec.walk.max_step = 2'000;
        CellResult out;
        out.plain = run_scenario(
            scenario("topk_filter", spec, kN, k, steps, args.seed + k));
        Scenario ordered =
            scenario("ordered", spec, kN, k, steps, args.seed + k);
        ordered.validate_order = true;
        out.ordered = run_scenario(ordered);
        return out;
      });

  Table t({"workload", "k", "set-only msgs", "ordered msgs", "overhead",
           "ordered resets", "internal rebuilds"});
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const auto [fam, k] = cells[ci];
    const auto& rp = rows[ci].plain;
    const auto& ro = rows[ci].ordered;
    // handler_calls counts boundary events; protocol_runs - boundary
    // contributions approximate the internal-order work.
    t.add_row({std::string(family_name(fam)), std::to_string(k),
               fmt_count(rp.comm.total()), fmt_count(ro.comm.total()),
               fmt(static_cast<double>(ro.comm.total()) /
                       static_cast<double>(
                           std::max<std::uint64_t>(1, rp.comm.total())),
                   2),
               fmt_count(ro.monitor.filter_resets),
               fmt_count(ro.monitor.protocol_runs)});
  }

  ctx.emit(t, "e10_ordered");
  ctx.out() << "\nshape check: the ordered variant costs a bounded factor "
               "over the set-only monitor, growing with k (more internal "
               "adjacencies to maintain) — consistent with the conjectured "
               "extra log(n-k)-type machinery rather than a blow-up.\n";
}

}  // namespace
}  // namespace topkmon::bench
