// E10 — §5 future work: monitoring the top-k *with its internal order*
// (conjectured O(log Δ · log(n-k))-competitive via Lam-midpoints inside
// the top-k + the paper's boundary machinery).
//
// Regenerates: overhead of OrderedTopkMonitor over plain Algorithm 1
// across k and across workloads, plus the share of messages spent on
// internal reordering vs boundary maintenance.
#include <iostream>

#include "bench_common.hpp"

using namespace topkmon;
using namespace topkmon::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  const std::uint64_t steps = args.steps_or(1'000);
  constexpr std::size_t kN = 32;

  std::cout << "E10: ordered top-k (the §5 conjecture variant)\n"
            << "n = " << kN << ", steps = " << steps
            << " (order validated against ground truth every step)\n\n";

  Table t({"workload", "k", "set-only msgs", "ordered msgs", "overhead",
           "ordered resets", "internal rebuilds"});

  for (const auto fam : {StreamFamily::kRandomWalk, StreamFamily::kSinusoidal,
                         StreamFamily::kBursty}) {
    for (const std::size_t k : {2u, 4u, 8u}) {
      StreamSpec spec;
      spec.family = fam;
      spec.walk.max_step = 2'000;
      RunConfig cfg;
      cfg.n = kN;
      cfg.k = k;
      cfg.steps = steps;
      cfg.seed = args.seed + k;
      TopkFilterMonitor plain(k);
      const auto rp = run_once(plain, spec, cfg);
      cfg.validate_order = true;
      OrderedTopkMonitor ordered(k);
      const auto ro = run_once(ordered, spec, cfg);
      // handler_calls counts boundary events; protocol_runs - boundary
      // contributions approximate the internal-order work.
      t.add_row({std::string(family_name(fam)), std::to_string(k),
                 fmt_count(rp.comm.total()), fmt_count(ro.comm.total()),
                 fmt(static_cast<double>(ro.comm.total()) /
                         static_cast<double>(
                             std::max<std::uint64_t>(1, rp.comm.total())),
                     2),
                 fmt_count(ro.monitor.filter_resets),
                 fmt_count(ro.monitor.protocol_runs)});
    }
  }

  t.print(std::cout);
  maybe_csv(t, args, "e10_ordered");
  std::cout << "\nshape check: the ordered variant costs a bounded factor "
               "over the set-only monitor, growing with k (more internal "
               "adjacencies to maintain) — consistent with the conjectured "
               "extra log(n-k)-type machinery rather than a blow-up.\n";
  return 0;
}
