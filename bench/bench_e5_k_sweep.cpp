// E5 — Theorem 3.3 / 4.4: the additive k term. FILTERRESET costs
// (k+1)·M(n); on reset-heavy inputs the messages per OPT update should
// grow ~linearly in k.
//
// Regenerates: k = 1..64 sweep at fixed n, on iid-uniform inputs (every
// step reshuffles, so nearly every step forces a reset for OPT and the
// algorithm alike).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace topkmon;
using namespace topkmon::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  const std::uint64_t steps = args.steps_or(400);
  const std::uint64_t trials = args.trials_or(5);
  constexpr std::size_t kN = 128;

  std::cout << "E5: cost vs k (Theorems 3.3/4.4, additive k term)\n"
            << "n = " << kN << ", steps = " << steps << ", trials = " << trials
            << ", workload = iid uniform (reset-heavy)\n\n";

  Table table({"k", "E[msgs]", "E[resets]", "E[OPT updates]", "ratio",
               "ratio/(logD+k)logn", "msgs/step"});

  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    OnlineStats msgs;
    OnlineStats resets;
    OnlineStats opt_updates;
    OnlineStats ratios;
    OnlineStats log_delta;
    for (std::uint64_t t = 0; t < trials; ++t) {
      StreamSpec spec;
      spec.family = StreamFamily::kIidUniform;
      TopkFilterMonitor monitor(k);
      RunConfig cfg;
      cfg.n = kN;
      cfg.k = k;
      cfg.steps = steps;
      cfg.seed = args.seed * 100 + k * 17 + t;
      cfg.record_trace = true;
      const auto r = run_once(monitor, spec, cfg);
      const auto opt = compute_offline_opt(*r.trace, k);
      msgs.add(static_cast<double>(r.comm.total()));
      resets.add(static_cast<double>(r.monitor.filter_resets));
      opt_updates.add(static_cast<double>(opt.updates()));
      ratios.add(competitive_ratio(r, k));
      const auto delta = trace_delta(*r.trace, k);
      log_delta.add(std::log2(static_cast<double>(std::max<Value>(2, delta))));
    }
    const double bound_scale = (log_delta.mean() + static_cast<double>(k)) *
                               std::log2(static_cast<double>(kN));
    table.add_row({std::to_string(k), fmt(msgs.mean(), 0),
                   fmt(resets.mean(), 1), fmt(opt_updates.mean(), 1),
                   fmt(ratios.mean(), 1), fmt(ratios.mean() / bound_scale, 3),
                   fmt(msgs.mean() / static_cast<double>(steps), 1)});
  }

  table.print(std::cout);
  maybe_csv(table, args, "e5_k_sweep");
  std::cout << "\nshape check: messages/step grows ~linearly in k (the "
               "(k+1)·M(n) reset term dominates on reset-heavy inputs); the "
               "normalized ratio stays O(1).\n";
  return 0;
}
