// E5 — Theorem 3.3 / 4.4: the additive k term. FILTERRESET costs
// (k+1)·M(n); on reset-heavy inputs the messages per OPT update should
// grow ~linearly in k.
//
// Regenerates: k = 1..64 sweep at fixed n, on iid-uniform inputs (every
// step reshuffles, so nearly every step forces a reset for OPT and the
// algorithm alike).
#include <cmath>
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(e5, "cost vs k — additive k term (Theorems 3.3/4.4)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(400);
  const std::uint64_t trials = args.trials_or(5);
  constexpr std::size_t kN = 128;

  ctx.out() << "E5: cost vs k (Theorems 3.3/4.4, additive k term)\n"
            << "n = " << kN << ", steps = " << steps << ", trials = " << trials
            << ", workload = iid uniform (reset-heavy)\n\n";

  const std::vector<std::size_t> ks{1, 2, 4, 8, 16, 32, 64};

  // Flat (k × trial) fan-out; per-trial seeds depend only on (k, trial).
  struct Trial {
    double msgs = 0, resets = 0, opt_updates = 0, ratio = 0, log_delta = 0;
  };
  const auto results = ctx.runner().map<Trial>(
      ks.size() * trials, [&](std::size_t j) {
        const std::size_t k = ks[j / trials];
        const std::uint64_t t = j % trials;
        StreamSpec spec;
        spec.family = StreamFamily::kIidUniform;
        Scenario sc = scenario("topk_filter", spec, kN, k, steps,
                               args.seed * 100 + k * 17 + t);
        sc.record_trace = true;
        const auto r = run_scenario(sc);
        const auto opt = compute_offline_opt(*r.trace, k);
        const auto delta = trace_delta(*r.trace, k);
        return Trial{
            static_cast<double>(r.comm.total()),
            static_cast<double>(r.monitor.filter_resets),
            static_cast<double>(opt.updates()), competitive_ratio(r, k),
            std::log2(static_cast<double>(std::max<Value>(2, delta)))};
      });

  Table table({"k", "E[msgs]", "E[resets]", "E[OPT updates]", "ratio",
               "ratio/(logD+k)logn", "msgs/step"});
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    const std::size_t k = ks[ki];
    OnlineStats msgs, resets, opt_updates, ratios, log_delta;
    for (std::uint64_t t = 0; t < trials; ++t) {
      const auto& r = results[ki * trials + t];
      msgs.add(r.msgs);
      resets.add(r.resets);
      opt_updates.add(r.opt_updates);
      ratios.add(r.ratio);
      log_delta.add(r.log_delta);
    }
    const double bound_scale = (log_delta.mean() + static_cast<double>(k)) *
                               std::log2(static_cast<double>(kN));
    table.add_row({std::to_string(k), fmt(msgs.mean(), 0),
                   fmt(resets.mean(), 1), fmt(opt_updates.mean(), 1),
                   fmt(ratios.mean(), 1), fmt(ratios.mean() / bound_scale, 3),
                   fmt(msgs.mean() / static_cast<double>(steps), 1)});
  }

  ctx.emit(table, "e5_k_sweep");
  ctx.out() << "\nshape check: messages/step grows ~linearly in k (the "
               "(k+1)·M(n) reset term dominates on reset-heavy inputs); the "
               "normalized ratio stays O(1).\n";
}

}  // namespace
}  // namespace topkmon::bench
