// E15 — beyond the paper's reliable-channel model: independent per-link
// message loss. Every cell replays the same streams and protocol coins
// (the network axis does not enter the trial seed); only the
// deterministic per-(message, link) drop hash changes between columns.
//
// Loss hits the two algorithms asymmetrically. The naive baseline
// degrades linearly and recovers every step (the next report overwrites
// the stale value). Algorithm 1 is *stateful*: a lost filter-update or
// winner announcement desynchronizes a node's filter until some later
// violation repairs it, and a lost report can abort a whole
// violation-resolution cycle — so error steps grow faster than the raw
// drop rate, the price of the filter machinery's statefulness.
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(e15, "message-loss sweep: robustness of filters (extension)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(1'200);
  const std::uint64_t trials = args.trials_or(3);
  constexpr std::size_t kN = 32;
  constexpr std::size_t kK = 4;

  ctx.out() << "E15: per-link message loss vs robustness (extension)\n"
            << "n = " << kN << ", k = " << kK << ", steps = " << steps
            << ", trials = " << trials << ", random walk\n\n";

  const std::vector<std::string> network_specs{
      "instant", "drop=0.002", "drop=0.01", "drop=0.05", "drop=0.2"};

  SweepGrid grid;
  grid.ns = {kN};
  grid.ks = {kK};
  // The whole zoo (native role ports): loss now stresses each variant's
  // own statefulness — slack's wide boundaries shrug off lost updates
  // longer, ordered's rank slots desynchronize fastest. Same parameter
  // conventions as e14 (ks anchored at the grid k; ε two walk steps).
  grid.monitors = {"topk_filter",       "naive",   "slack",
                   "dominance",         "ordered", "approx?eps=40000",
                   "multi_k?ks=4+8"};
  grid.families = {StreamFamily::kRandomWalk};
  grid.networks.clear();
  for (const auto& s : network_specs) {
    grid.networks.push_back(parse_network_spec(s));
  }
  grid.trials = trials;
  grid.steps = steps;
  grid.base_seed = args.seed;
  grid.stream_template.walk.max_step = 20'000;
  grid.throw_on_error = false;  // divergence is the measurement here

  // In-suite differential guard: each native port must still be
  // message-identical to its lock-step reference before its loss rows
  // mean anything.
  assert_ports_match_lockstep(ctx, grid.monitors, grid.stream_template, kN,
                              kK, steps, args.seed);

  const auto specs = grid.expand();
  const auto results = ctx.runner().run(specs);

  exp::ResultSink sink({"monitor", "network"},
                       {"msgs_per_step", "error_pct", "resets"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    sink.add({specs[i].monitor, specs[i].network.name()}, specs[i].ordinal,
             {results[i].messages_per_step(), 100.0 * results[i].error_rate(),
              static_cast<double>(results[i].monitor.filter_resets)});
  }

  ctx.emit(sink.to_table(2), "e15_loss");
  ctx.out() << "\nshape check: naive error% tracks the drop rate roughly "
               "linearly and self-heals every step; topk_filter stays "
               "near-exact "
               "at small drop rates (violations trigger repair) but its "
               "error% rises super-linearly once lost state updates pile "
               "up — robustness is the cost of statefulness.\n";
}

}  // namespace
}  // namespace topkmon::bench
