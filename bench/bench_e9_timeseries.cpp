// E9 — §2.1's classical-analysis story as a time series: cumulative
// messages over time for Algorithm 1 vs per-round recomputation vs naive,
// on a similar-inputs workload and on the adversarial rotating-max
// workload. Regenerates the two cumulative series (printed decimated, full
// resolution in CSV).
#include <iostream>

#include "bench_common.hpp"

using namespace topkmon;
using namespace topkmon::bench;

namespace {

std::vector<std::uint64_t> cumulative_for(MonitorBase& m, StreamFamily fam,
                                          std::size_t n, std::size_t k,
                                          std::size_t steps,
                                          std::uint64_t seed) {
  StreamSpec spec;
  spec.family = fam;
  spec.walk.max_step = 20;
  auto streams = make_stream_set(spec, n, seed);
  RunConfig cfg;
  cfg.n = n;
  cfg.k = k;
  cfg.steps = steps;
  cfg.seed = seed;
  cfg.record_series = true;
  const auto r = run_monitor(m, streams, cfg);
  return r.comm.cumulative_series();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  const std::uint64_t steps = args.steps_or(2'000);
  constexpr std::size_t kN = 32;
  constexpr std::size_t kK = 4;

  std::cout << "E9: cumulative messages over time (§2.1)\n"
            << "n = " << kN << ", k = " << kK << ", steps = " << steps
            << "\n\n";

  for (const auto fam :
       {StreamFamily::kRandomWalk, StreamFamily::kRotatingMax}) {
    TopkFilterMonitor filt(kK);
    RecomputeMonitor rec(kK);
    NaiveMonitor naive(kK);
    const auto cf = cumulative_for(filt, fam, kN, kK, steps, args.seed);
    const auto cr = cumulative_for(rec, fam, kN, kK, steps, args.seed);
    const auto cn = cumulative_for(naive, fam, kN, kK, steps, args.seed);

    std::cout << "workload: " << family_name(fam) << "\n";
    Table t({"t", "topk_filter", "recompute", "naive"});
    const std::size_t total = cf.size();
    for (std::size_t i = 0; i < 10; ++i) {
      const std::size_t idx = (total - 1) * i / 9;
      t.add_row({std::to_string(idx), fmt_count(cf[idx]), fmt_count(cr[idx]),
                 fmt_count(cn[idx])});
    }
    t.print(std::cout);

    Table full({"t", "topk_filter", "recompute", "naive"});
    for (std::size_t idx = 0; idx < total; ++idx) {
      full.add_row({std::to_string(idx), std::to_string(cf[idx]),
                    std::to_string(cr[idx]), std::to_string(cn[idx])});
    }
    maybe_csv(full, args,
              std::string("e9_timeseries_") + std::string(family_name(fam)));
    std::cout << "\n";
  }

  std::cout << "shape check: on random_walk the topk_filter curve is nearly "
               "flat after initialization while recompute/naive grow "
               "linearly; on rotating_max all curves grow linearly and "
               "recompute is the efficient one (its classical optimality "
               "regime).\n";
  return 0;
}
