// E9 — §2.1's classical-analysis story as a time series: cumulative
// messages over time for Algorithm 1 vs per-round recomputation vs naive,
// on a similar-inputs workload and on the adversarial rotating-max
// workload. Regenerates the two cumulative series (printed decimated, full
// resolution in CSV/JSON).
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

std::vector<std::uint64_t> cumulative_for(const std::string& monitor,
                                          StreamFamily fam, std::size_t n,
                                          std::size_t k, std::size_t steps,
                                          std::uint64_t seed) {
  StreamSpec spec;
  spec.family = fam;
  spec.walk.max_step = 20;
  Scenario sc = scenario(monitor, spec, n, k, steps, seed);
  sc.record_series = true;
  return run_scenario(sc).comm.cumulative_series();
}

TOPKMON_SUITE(e9, "cumulative message time series (§2.1)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(2'000);
  constexpr std::size_t kN = 32;
  constexpr std::size_t kK = 4;

  ctx.out() << "E9: cumulative messages over time (§2.1)\n"
            << "n = " << kN << ", k = " << kK << ", steps = " << steps
            << "\n\n";

  const std::vector<StreamFamily> fams{StreamFamily::kRandomWalk,
                                       StreamFamily::kRotatingMax};
  const std::vector<std::string> monitors{"topk_filter", "recompute", "naive"};

  // All (family × monitor) series are independent runs: one job each.
  const auto series = ctx.runner().map<std::vector<std::uint64_t>>(
      fams.size() * monitors.size(), [&](std::size_t j) {
        return cumulative_for(monitors[j % monitors.size()],
                              fams[j / monitors.size()], kN, kK, steps,
                              args.seed);
      });

  for (std::size_t fi = 0; fi < fams.size(); ++fi) {
    const auto& cf = series[fi * monitors.size() + 0];
    const auto& cr = series[fi * monitors.size() + 1];
    const auto& cn = series[fi * monitors.size() + 2];

    ctx.out() << "workload: " << family_name(fams[fi]) << "\n";
    Table t({"t", "topk_filter", "recompute", "naive"});
    const std::size_t total = cf.size();
    for (std::size_t i = 0; i < 10; ++i) {
      const std::size_t idx = (total - 1) * i / 9;
      t.add_row({std::to_string(idx), fmt_count(cf[idx]), fmt_count(cr[idx]),
                 fmt_count(cn[idx])});
    }
    t.print(ctx.out());

    if (!args.out_dir.empty()) {
      Table full({"t", "topk_filter", "recompute", "naive"});
      for (std::size_t idx = 0; idx < total; ++idx) {
        full.add_row({std::to_string(idx), std::to_string(cf[idx]),
                      std::to_string(cr[idx]), std::to_string(cn[idx])});
      }
      ctx.emit_files(full, std::string("e9_timeseries_") +
                               std::string(family_name(fams[fi])));
    }
    ctx.out() << "\n";
  }

  ctx.out() << "shape check: on random_walk the topk_filter curve is nearly "
               "flat after initialization while recompute/naive grow "
               "linearly; on rotating_max all curves grow linearly and "
               "recompute is the efficient one (its classical optimality "
               "regime).\n";
}

}  // namespace
}  // namespace topkmon::bench
