// perf — wall-clock perf suite tracking the simulator's hot-path speed
// over time (BENCH_*.json trajectory).
//
// Times a fixed set of representative scenario configurations — instant
// and scheduled networks, small and large n, validation on and off — over
// a fixed step count and reports steps/sec, ns/step and (when the
// counting allocator hook is compiled in) heap allocations per step.
//
// Two outputs with different determinism contracts:
//
//   * ctx.emit("perf"): the *fingerprint* table — message counts,
//     error steps, configuration — is bit-deterministic and must be
//     byte-identical across --jobs (CI diffs it like every other suite).
//   * BENCH_<label>.json: the timing record appended to the repo's perf
//     trajectory. Wall-clock numbers are machine-dependent by nature and
//     are NOT diffed; <label> comes from $TOPKMON_BENCH_LABEL, falling
//     back to `git describe --always --dirty`, falling back to the UTC
//     date.
#include <array>
#include <cctype>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "alloc_hook.hpp"
#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

struct PerfCase {
  const char* name;
  const char* monitor;
  StreamFamily family;
  const char* network;     // parse_network_spec input
  std::size_t n;
  std::size_t k;
  RunConfig::Validation validation;
};

const char* validation_name(RunConfig::Validation v) {
  switch (v) {
    case RunConfig::Validation::kStrict: return "strict";
    case RunConfig::Validation::kWeak: return "weak";
    case RunConfig::Validation::kOff: return "off";
  }
  return "?";
}

struct PerfOutcome {
  RunResult run;
  std::uint64_t allocs = 0;  // during the timed run (hook-enabled only)
};

/// Label for the BENCH file name: env override, else git describe, else
/// the UTC date. Sanitized to [A-Za-z0-9._-].
std::string bench_label() {
  std::string label;
  if (const char* env = std::getenv("TOPKMON_BENCH_LABEL")) {
    label = env;
  }
  if (label.empty()) {
    if (std::FILE* pipe =
            popen("git describe --always --dirty 2>/dev/null", "r")) {
      std::array<char, 128> buf{};
      if (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
        label = buf.data();
      }
      pclose(pipe);
    }
  }
  while (!label.empty() &&
         (label.back() == '\n' || label.back() == '\r')) {
    label.pop_back();
  }
  if (label.empty()) {
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    std::array<char, 32> buf{};
    std::strftime(buf.data(), buf.size(), "%Y%m%d-%H%M%S", &tm);
    label = buf.data();
  }
  for (char& c : label) {
    const auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '.' && c != '_' && c != '-') c = '_';
  }
  return label;
}

void write_bench_json(const std::string& path, const std::string& label,
                      std::uint64_t steps,
                      const std::vector<PerfCase>& cases,
                      const std::vector<PerfOutcome>& outcomes,
                      std::ostream& log) {
  std::ofstream out(path);
  if (!out) {
    log << "perf: cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"topkmon-bench-v1\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  out << "  \"alloc_hook\": " << (alloc_hook_enabled() ? "true" : "false")
      << ",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const PerfCase& c = cases[i];
    const RunResult& r = outcomes[i].run;
    const double steps_per_sec =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.steps_executed) / r.wall_seconds
            : 0.0;
    const double ns_per_step =
        r.steps_executed > 0
            ? r.wall_seconds * 1e9 / static_cast<double>(r.steps_executed)
            : 0.0;
    out << "    {\"name\": \"" << c.name << "\", \"monitor\": \""
        << c.monitor << "\", \"family\": \"" << family_name(c.family)
        << "\", \"network\": \"" << c.network << "\", \"n\": " << c.n
        << ", \"k\": " << c.k << ", \"validation\": \""
        << validation_name(c.validation) << "\", \"wall_seconds\": "
        << fmt(r.wall_seconds, 6) << ", \"steps_per_sec\": "
        << fmt(steps_per_sec, 1) << ", \"ns_per_step\": "
        << fmt(ns_per_step, 1) << ", \"messages_total\": "
        << r.comm.total() << ", \"error_steps\": " << r.error_steps;
    if (alloc_hook_enabled()) {
      const double per_step =
          r.steps_executed > 0
              ? static_cast<double>(outcomes[i].allocs) /
                    static_cast<double>(r.steps_executed)
              : 0.0;
      out << ", \"allocs\": " << outcomes[i].allocs
          << ", \"allocs_per_step\": " << fmt(per_step, 3);
    }
    out << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  log << "perf: wrote " << path << "\n";
}

TOPKMON_SUITE(perf, "hot-path wall-clock suite (emits BENCH_*.json)") {
  const std::uint64_t steps = ctx.opts().steps_or(2'000);
  const std::uint64_t seed = ctx.opts().seed;

  const std::vector<PerfCase> cases = {
      {"instant_small_strict", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 64, 8, RunConfig::Validation::kStrict},
      {"instant_small_off", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 64, 8, RunConfig::Validation::kOff},
      {"instant_large_strict", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 1024, 16, RunConfig::Validation::kStrict},
      {"instant_large_off", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 1024, 16, RunConfig::Validation::kOff},
      {"instant_naive_weak", "naive", StreamFamily::kRandomWalk, "instant",
       256, 8, RunConfig::Validation::kWeak},
      {"instant_iid_strict", "topk_filter", StreamFamily::kIidUniform,
       "instant", 256, 8, RunConfig::Validation::kStrict},
      {"sched_delay_weak", "topk_filter", StreamFamily::kRandomWalk,
       "delay=2,jitter=3,ticks=64", 64, 8, RunConfig::Validation::kWeak},
      {"sched_drop_off", "topk_filter", StreamFamily::kRandomWalk,
       "delay=1,drop=0.01,ticks=64", 256, 8, RunConfig::Validation::kOff},
  };

  // One scenario per case; each runs on one worker thread, so the
  // thread-local allocation counter brackets the run exactly. Message
  // counts and error steps are jobs-independent (fixed seeds).
  const auto outcomes =
      ctx.runner().map<PerfOutcome>(cases.size(), [&](std::size_t i) {
        const PerfCase& c = cases[i];
        StreamSpec stream;
        stream.family = c.family;
        Scenario sc = scenario(c.monitor, stream, c.n, c.k, steps, seed);
        sc.network = parse_network_spec(c.network);
        sc.validation = c.validation;
        sc.throw_on_error = false;  // lossy networks may diverge; record it
        PerfOutcome o;
        const std::uint64_t allocs_before = thread_alloc_count();
        o.run = run_scenario(sc);
        o.allocs = thread_alloc_count() - allocs_before;
        return o;
      });

  // Deterministic fingerprint (diffed across --jobs by CI).
  Table fingerprint({"case", "monitor", "family", "network", "n", "k",
                     "steps", "validation", "msgs_total", "msgs_per_step",
                     "error_steps"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const PerfCase& c = cases[i];
    const RunResult& r = outcomes[i].run;
    fingerprint.add_row({c.name, c.monitor, std::string(family_name(c.family)),
                         c.network, std::to_string(c.n), std::to_string(c.k),
                         std::to_string(r.steps_executed),
                         validation_name(c.validation),
                         std::to_string(r.comm.total()),
                         fmt(r.messages_per_step(), 3),
                         std::to_string(r.error_steps)});
  }
  ctx.emit(fingerprint, "perf");

  // Timing summary (console only: wall clock is machine-dependent).
  Table timing({"case", "steps/sec", "ns/step", "allocs/step", "wall_s"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const RunResult& r = outcomes[i].run;
    const double sps =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.steps_executed) / r.wall_seconds
            : 0.0;
    const double nsps =
        r.steps_executed > 0
            ? r.wall_seconds * 1e9 / static_cast<double>(r.steps_executed)
            : 0.0;
    const std::string allocs =
        alloc_hook_enabled()
            ? fmt(static_cast<double>(outcomes[i].allocs) /
                      static_cast<double>(r.steps_executed ? r.steps_executed
                                                           : 1),
                  3)
            : std::string("n/a");
    timing.add_row({cases[i].name, fmt(sps, 0), fmt(nsps, 0), allocs,
                    fmt(r.wall_seconds, 3)});
  }
  ctx.out() << "\n";
  timing.print(ctx.out());

  const std::string label = bench_label();
  const std::string dir =
      ctx.opts().out_dir.empty() ? std::string(".") : ctx.opts().out_dir;
  write_bench_json(dir + "/BENCH_" + label + ".json", label, steps, cases,
                   outcomes, ctx.out());
}

}  // namespace
}  // namespace topkmon::bench
