// perf — wall-clock perf suite tracking the simulator's hot-path speed
// over time (BENCH_*.json trajectory).
//
// Times a fixed set of representative scenario configurations — instant
// and scheduled networks, small and large n, validation on and off — over
// a fixed step count and reports steps/sec, ns/step and (when the
// counting allocator hook is compiled in) heap allocations per step.
//
// Two outputs with different determinism contracts:
//
//   * ctx.emit("perf"): the *fingerprint* table — message counts,
//     error steps, configuration — is bit-deterministic and must be
//     byte-identical across --jobs (CI diffs it like every other suite).
//   * BENCH_<label>.json: the timing record appended to the repo's perf
//     trajectory. Wall-clock numbers are machine-dependent by nature and
//     are NOT diffed; <label> comes from $TOPKMON_BENCH_LABEL, falling
//     back to `git describe --always --dirty`, falling back to the UTC
//     date.
#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "alloc_hook.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"

namespace topkmon::bench {
namespace {

struct PerfCase {
  const char* name;
  const char* monitor;
  StreamFamily family;
  const char* network;     // parse_network_spec input
  std::size_t n;
  std::size_t k;
  RunConfig::Validation validation;
  /// 0: honor --workers; else pin this case to that tick-scan worker
  /// count regardless of the flag (keeps the fingerprint flag-invariant
  /// while tracking the parallel driver's wall clock in the trajectory).
  std::size_t workers = 0;
  /// Fault-plan spec ("none" = fault-free). The faulted case tracks the
  /// recovery-window trajectory: its max_recovery_ticks lands in the
  /// BENCH json and is gated by --compare like error_steps.
  const char* faults = "none";
};

const char* validation_name(RunConfig::Validation v) {
  switch (v) {
    case RunConfig::Validation::kStrict: return "strict";
    case RunConfig::Validation::kWeak: return "weak";
    case RunConfig::Validation::kOff: return "off";
  }
  return "?";
}

struct PerfOutcome {
  RunResult run;
  std::uint64_t allocs = 0;  // during the timed run (hook-enabled only)
};

void write_bench_json(const std::string& path, const std::string& label,
                      std::uint64_t steps,
                      const std::vector<PerfCase>& cases,
                      const std::vector<PerfOutcome>& outcomes,
                      std::ostream& log) {
  std::ofstream out(path);
  if (!out) {
    log << "perf: cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"topkmon-bench-v1\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  out << "  \"alloc_hook\": " << (alloc_hook_enabled() ? "true" : "false")
      << ",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const PerfCase& c = cases[i];
    const RunResult& r = outcomes[i].run;
    const double steps_per_sec =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.steps_executed) / r.wall_seconds
            : 0.0;
    const double ns_per_step =
        r.steps_executed > 0
            ? r.wall_seconds * 1e9 / static_cast<double>(r.steps_executed)
            : 0.0;
    out << "    {\"name\": \"" << c.name << "\", \"monitor\": \""
        << c.monitor << "\", \"family\": \"" << family_name(c.family)
        << "\", \"network\": \"" << c.network << "\", \"n\": " << c.n
        << ", \"k\": " << c.k << ", \"validation\": \""
        << validation_name(c.validation) << "\", \"wall_seconds\": "
        << fmt(r.wall_seconds, 6) << ", \"steps_per_sec\": "
        << fmt(steps_per_sec, 1) << ", \"ns_per_step\": "
        << fmt(ns_per_step, 1) << ", \"messages_total\": "
        << r.comm.total() << ", \"error_steps\": " << r.error_steps
        << ", \"max_recovery_ticks\": " << r.max_recovery_ticks();
    if (alloc_hook_enabled()) {
      const double per_step =
          r.steps_executed > 0
              ? static_cast<double>(outcomes[i].allocs) /
                    static_cast<double>(r.steps_executed)
              : 0.0;
      out << ", \"allocs\": " << outcomes[i].allocs
          << ", \"allocs_per_step\": " << fmt(per_step, 3);
    }
    out << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  log << "perf: wrote " << path << "\n";
}

/// Regression gate of `--compare OLD.json`. Wall-clock numbers are noisy
/// (shared CI runners), so only a large steps/sec drop fails, and only
/// for cases whose wall time is long enough to measure at all —
/// sub-10ms runs are scheduler-granularity noise; allocation counts are
/// deterministic, so any material per-step growth always fails.
constexpr double kMaxSlowdown = 0.30;      ///< tolerated steps/sec drop
constexpr double kMaxAllocGrowth = 0.10;   ///< tolerated allocs/step growth
constexpr double kMinJudgeableWall = 0.01; ///< s; below: timing verdicts off

void compare_against(const std::string& path,
                     const std::vector<PerfCase>& cases,
                     const std::vector<PerfOutcome>& outcomes,
                     SuiteContext& ctx) {
  const auto old = read_bench_file(path);
  if (!old) {
    throw std::runtime_error("perf --compare: cannot read '" + path +
                             "' as a topkmon-bench-v1 file");
  }
  Table diff({"case", "steps/s old", "steps/s new", "Δ%", "allocs/step old",
              "allocs/step new", "errs old", "errs new", "verdict"});
  std::vector<std::string> regressions;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const RunResult& r = outcomes[i].run;
    const BenchRecord* prev = nullptr;
    for (const BenchRecord& rec : old->scenarios) {
      if (rec.name == cases[i].name) {
        prev = &rec;
        break;
      }
    }
    const double sps_new =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.steps_executed) / r.wall_seconds
            : 0.0;
    const double aps_new =
        alloc_hook_enabled() && r.steps_executed > 0
            ? static_cast<double>(outcomes[i].allocs) /
                  static_cast<double>(r.steps_executed)
            : -1.0;
    if (prev == nullptr) {
      diff.add_row({cases[i].name, "-", fmt(sps_new, 0), "-", "-",
                    aps_new < 0 ? "n/a" : fmt(aps_new, 3), "-",
                    std::to_string(r.error_steps), "new case"});
      continue;
    }
    const double sps_old = prev->steps_per_sec;
    const double delta =
        sps_old > 0.0 ? (sps_new - sps_old) / sps_old : 0.0;
    // Old per-step allocs: the old file records its own step count
    // (steps + the init step), matching its allocs total.
    const double aps_old =
        prev->allocs && old->steps > 0
            ? static_cast<double>(*prev->allocs) /
                  static_cast<double>(old->steps + 1)
            : -1.0;
    const bool judgeable = r.wall_seconds >= kMinJudgeableWall &&
                           prev->wall_seconds >= kMinJudgeableWall;
    std::string verdict = judgeable ? "ok" : "ok (short)";
    if (judgeable && sps_old > 0.0 && delta < -kMaxSlowdown) {
      verdict = "SLOWER";
      regressions.push_back(std::string(cases[i].name) + ": steps/sec " +
                            fmt(sps_old, 0) + " -> " + fmt(sps_new, 0));
    }
    // Allocation gate only when both builds carried the hook; a one-alloc
    // absolute floor keeps tiny counts from tripping on rounding.
    if (aps_old >= 0.0 && aps_new >= 0.0 &&
        aps_new > aps_old * (1.0 + kMaxAllocGrowth) + 1.0) {
      verdict = verdict == "ok" ? "ALLOCS" : verdict + "+ALLOCS";
      regressions.push_back(std::string(cases[i].name) + ": allocs/step " +
                            fmt(aps_old, 3) + " -> " + fmt(aps_new, 3));
    }
    // Correctness gate: error steps are deterministic at a fixed seed and
    // step count, so any growth is a real robustness regression (the
    // monitor diverging on steps it used to get right) — never timing
    // noise. Only comparable when both runs executed the same step count
    // (steps_executed counts the init step on top of old->steps).
    if (old->steps + 1 == r.steps_executed &&
        r.error_steps > prev->error_steps) {
      verdict = verdict.substr(0, 2) == "ok" ? "ERRORS" : verdict + "+ERRORS";
      regressions.push_back(std::string(cases[i].name) + ": error_steps " +
                            std::to_string(prev->error_steps) + " -> " +
                            std::to_string(r.error_steps));
    }
    // Recovery-window gate, next to the error_steps one: the faulted
    // case's worst re-convergence window is deterministic too, but it is
    // measured in delivery ticks across the whole settle, so incidental
    // trace changes shift it by a few ticks — a material growth (25% plus
    // a 50-tick floor) is what marks a robustness regression. Skipped for
    // files written before the perf suite carried a faulted case.
    if (old->steps + 1 == r.steps_executed && prev->max_recovery_ticks &&
        static_cast<double>(r.max_recovery_ticks()) >
            static_cast<double>(*prev->max_recovery_ticks) * 1.25 + 50.0) {
      verdict =
          verdict.substr(0, 2) == "ok" ? "RECOVERY" : verdict + "+RECOVERY";
      regressions.push_back(
          std::string(cases[i].name) + ": max_recovery_ticks " +
          std::to_string(*prev->max_recovery_ticks) + " -> " +
          std::to_string(r.max_recovery_ticks()));
    }
    diff.add_row({cases[i].name, fmt(sps_old, 0), fmt(sps_new, 0),
                  fmt(delta * 100.0, 1), aps_old < 0 ? "n/a" : fmt(aps_old, 3),
                  aps_new < 0 ? "n/a" : fmt(aps_new, 3),
                  std::to_string(prev->error_steps),
                  std::to_string(r.error_steps), verdict});
  }
  ctx.out() << "\nperf: diff vs " << path << " (label '" << old->label
            << "')\n";
  diff.print(ctx.out());
  if (!regressions.empty()) {
    std::string msg = "perf regression vs " + path + ":";
    for (const std::string& r : regressions) msg += "\n  " + r;
    throw std::runtime_error(msg);
  }
}

TOPKMON_SUITE(perf, "hot-path wall-clock suite (emits BENCH_*.json)") {
  const std::uint64_t steps = ctx.opts().steps_or(2'000);
  const std::uint64_t seed = ctx.opts().seed;

  // Churn schedule for the faulted case, scaled to the step count so
  // --steps overrides keep every event inside the run.
  const auto at = [&](double f) {
    return std::to_string(std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(steps * f)));
  };
  const std::string churn_plan =
      "churn?crash=9@" + at(0.2) + ",recover=9@" + at(0.35) + ",join=+32@" +
      at(0.5) + ",crash=20@" + at(0.7) + ",recover=20@" + at(0.75);

  const std::vector<PerfCase> cases = {
      {"instant_small_strict", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 64, 8, RunConfig::Validation::kStrict},
      {"instant_small_off", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 64, 8, RunConfig::Validation::kOff},
      {"instant_large_strict", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 1024, 16, RunConfig::Validation::kStrict},
      {"instant_large_off", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 1024, 16, RunConfig::Validation::kOff},
      {"instant_naive_weak", "naive", StreamFamily::kRandomWalk, "instant",
       256, 8, RunConfig::Validation::kWeak},
      {"instant_iid_strict", "topk_filter", StreamFamily::kIidUniform,
       "instant", 256, 8, RunConfig::Validation::kStrict},
      {"sched_delay_weak", "topk_filter", StreamFamily::kRandomWalk,
       "delay=2,jitter=3,ticks=64", 64, 8, RunConfig::Validation::kWeak},
      {"sched_drop_off", "topk_filter", StreamFamily::kRandomWalk,
       "delay=1,drop=0.01,ticks=64", 256, 8, RunConfig::Validation::kOff},
      // Burst-heavy scheduled traffic: naive pushes n reports per step
      // through the timing wheel — the slab free list must make sustained
      // bursts allocation-free after warm-up.
      {"sched_burst_naive", "naive", StreamFamily::kRandomWalk,
       "delay=2,jitter=4,ticks=8", 256, 8, RunConfig::Validation::kWeak},
      // Broadcast-heavy instant traffic: a volatile walk at larger n keeps
      // the filter coordinator convening selection protocols, whose round
      // beacons broadcast to all n nodes — the workload the bulk
      // instant-broadcast fan-out (in-place log suffixes, O(1) acks)
      // exists for.
      {"instant_bcast_burst", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 4096, 8, RunConfig::Validation::kOff},
      // Parallel tick driver, pinned at W = 4 (not from --workers, so the
      // fingerprint stays flag-invariant): tracks the sharded loop's wall
      // clock and — the real contract — that per-thread staging reuses
      // its buffers, keeping allocs/step constant like the serial path.
      {"instant_parallel_w4", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 4096, 8, RunConfig::Validation::kOff, 4},
      {"sched_parallel_w4", "naive", StreamFamily::kRandomWalk,
       "delay=2,jitter=4,ticks=8", 256, 8, RunConfig::Validation::kWeak, 4},
      // Faulted hot path: crash/recover/join churn on the filter monitor.
      // Tracks the fault machinery's wall-clock cost next to the clean
      // rows and feeds max_recovery_ticks into the --compare gate.
      {"instant_churn_strict", "topk_filter", StreamFamily::kRandomWalk,
       "instant", 256, 16, RunConfig::Validation::kStrict, 0,
       churn_plan.c_str()},
  };

  // One scenario per case; each runs on one worker thread, so the
  // thread-local allocation counter brackets the run exactly. Message
  // counts and error steps are jobs-independent (fixed seeds).
  const auto outcomes =
      ctx.runner().map<PerfOutcome>(cases.size(), [&](std::size_t i) {
        const PerfCase& c = cases[i];
        StreamSpec stream;
        stream.family = c.family;
        Scenario sc = scenario(c.monitor, stream, c.n, c.k, steps, seed);
        sc.network = parse_network_spec(c.network);
        sc.validation = c.validation;
        sc.faults = c.faults;
        sc.throw_on_error = false;  // lossy networks may diverge; record it
        // Honors --workers (all perf monitors are native); the fingerprint
        // is workers-invariant — CI diffs it at 1 vs 8. Note allocs/step
        // shifts with workers > 1 (staging buffers, pool threads), which
        // is why the CI --compare gate always runs at --workers 1.
        sc.workers = c.workers != 0 ? c.workers : ctx.opts().workers;
        PerfOutcome o;
        const std::uint64_t allocs_before = thread_alloc_count();
        o.run = run_scenario(sc);
        o.allocs = thread_alloc_count() - allocs_before;
        return o;
      });

  // Deterministic fingerprint (diffed across --jobs by CI).
  Table fingerprint({"case", "monitor", "family", "network", "n", "k",
                     "steps", "validation", "msgs_total", "msgs_per_step",
                     "error_steps", "max_recovery_ticks"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const PerfCase& c = cases[i];
    const RunResult& r = outcomes[i].run;
    fingerprint.add_row({c.name, c.monitor, std::string(family_name(c.family)),
                         c.network, std::to_string(c.n), std::to_string(c.k),
                         std::to_string(r.steps_executed),
                         validation_name(c.validation),
                         std::to_string(r.comm.total()),
                         fmt(r.messages_per_step(), 3),
                         std::to_string(r.error_steps),
                         std::to_string(r.max_recovery_ticks())});
  }
  ctx.emit(fingerprint, "perf");

  // Timing summary (console only: wall clock is machine-dependent).
  Table timing({"case", "steps/sec", "ns/step", "allocs/step", "wall_s"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const RunResult& r = outcomes[i].run;
    const double sps =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.steps_executed) / r.wall_seconds
            : 0.0;
    const double nsps =
        r.steps_executed > 0
            ? r.wall_seconds * 1e9 / static_cast<double>(r.steps_executed)
            : 0.0;
    const std::string allocs =
        alloc_hook_enabled()
            ? fmt(static_cast<double>(outcomes[i].allocs) /
                      static_cast<double>(r.steps_executed ? r.steps_executed
                                                           : 1),
                  3)
            : std::string("n/a");
    timing.add_row({cases[i].name, fmt(sps, 0), fmt(nsps, 0), allocs,
                    fmt(r.wall_seconds, 3)});
  }
  ctx.out() << "\n";
  timing.print(ctx.out());

  const std::string label = bench_label();
  const std::string dir =
      ctx.opts().out_dir.empty() ? std::string(".") : ctx.opts().out_dir;
  write_bench_json(dir + "/BENCH_" + label + ".json", label, steps, cases,
                   outcomes, ctx.out());

  // Built-in trajectory diff: compare against a previous BENCH file and
  // fail the suite (non-zero topkmon_bench exit) on regression.
  if (!ctx.opts().compare.empty()) {
    compare_against(ctx.opts().compare, cases, outcomes, ctx);
  }
}

}  // namespace
}  // namespace topkmon::bench
