// E7 — the paper's central qualitative claim (§1, §2.1): filter-based
// monitoring sends few messages when consecutive inputs are "similar",
// while per-round recomputation pays Θ(k log n) every step regardless; on
// adversarial inputs (maximum position rotates every round) recomputation
// is near-optimal and filters cannot do better asymptotically.
//
// Regenerates the algorithms × workloads message matrix: mean (± stddev)
// messages per step for every monitor on every stream family. Runs the
// declarative SweepGrid end-to-end: grid expansion → parallel SweepRunner
// → order-deterministic ResultSink, so `--jobs 8` emits byte-identical
// rows to `--jobs 1`.
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(e7, "algorithms × workloads message matrix (§1, §2.1)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(1'500);
  const std::uint64_t trials = args.trials_or(3);
  constexpr std::size_t kN = 32;
  constexpr std::size_t kK = 4;

  ctx.out() << "E7: messages per step, algorithms x workloads\n"
            << "n = " << kN << ", k = " << kK << ", steps = " << steps
            << ", trials = " << trials
            << " (every cell validated against ground truth each step)\n\n";

  SweepGrid grid;
  grid.ns = {kN};
  grid.ks = {kK};
  grid.monitors = {"topk_filter", "ordered", "slack",  "dominance",
                   "recompute",   "naive",   "naive_chg"};
  grid.families = {StreamFamily::kRandomWalk, StreamFamily::kSensor,
                   StreamFamily::kSinusoidal, StreamFamily::kBursty,
                   StreamFamily::kIidUniform, StreamFamily::kCrossingPairs,
                   StreamFamily::kRotatingMax};
  grid.trials = trials;
  grid.steps = steps;
  grid.base_seed = args.seed;
  grid.stream_template.walk.max_step = 50;  // slow walk: "similar inputs"

  const auto specs = grid.expand();
  const auto results = ctx.runner().run(specs);

  exp::ResultSink sink({"monitor", "workload"}, {"msgs_per_step"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    sink.add({specs[i].monitor,
              std::string(family_name(specs[i].stream.family))},
             specs[i].ordinal, {results[i].messages_per_step()});
  }

  ctx.emit(sink.to_table(2), "e7_algorithms_table");
  ctx.out()
      << "\nshape checks (paper's qualitative claims):\n"
      << " * topk_filter << naive and << recompute on random_walk/sensor/"
         "bursty (similar inputs);\n"
      << " * on rotating_max every algorithm pays ~every step; recompute is "
         "competitive there (classical analysis, §2.1);\n"
      << " * dominance (full-order tracking) pays for order churn everywhere "
         "(crossing_pairs) although the top-k set rarely changes (§3.1);\n"
      << " * ordered costs slightly more than topk_filter (extra in-top-k "
         "order maintenance, §5).\n";
}

}  // namespace
}  // namespace topkmon::bench
