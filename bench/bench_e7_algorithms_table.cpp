// E7 — the paper's central qualitative claim (§1, §2.1): filter-based
// monitoring sends few messages when consecutive inputs are "similar",
// while per-round recomputation pays Θ(k log n) every step regardless; on
// adversarial inputs (maximum position rotates every round) recomputation
// is near-optimal and filters cannot do better asymptotically.
//
// Regenerates the algorithms × workloads message matrix: mean messages per
// step for every monitor on every stream family.
#include <iostream>
#include <memory>

#include "bench_common.hpp"

using namespace topkmon;
using namespace topkmon::bench;

namespace {

std::unique_ptr<MonitorBase> make_monitor(const std::string& which,
                                          std::size_t k) {
  if (which == "topk_filter") return std::make_unique<TopkFilterMonitor>(k);
  if (which == "naive") return std::make_unique<NaiveMonitor>(k);
  if (which == "naive_chg") {
    NaiveMonitor::Options o;
    o.send_on_change_only = true;
    return std::make_unique<NaiveMonitor>(k, o);
  }
  if (which == "recompute") return std::make_unique<RecomputeMonitor>(k);
  if (which == "dominance") return std::make_unique<DominanceMonitor>(k);
  if (which == "slack") return std::make_unique<SlackMonitor>(k);
  if (which == "ordered") return std::make_unique<OrderedTopkMonitor>(k);
  throw std::invalid_argument("unknown monitor");
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  const std::uint64_t steps = args.steps_or(1'500);
  constexpr std::size_t kN = 32;
  constexpr std::size_t kK = 4;

  std::cout << "E7: messages per step, algorithms x workloads\n"
            << "n = " << kN << ", k = " << kK << ", steps = " << steps
            << " (every cell validated against ground truth each step)\n\n";

  const std::vector<std::string> monitors{
      "topk_filter", "ordered", "slack",  "dominance",
      "recompute",   "naive",   "naive_chg"};
  const std::vector<StreamFamily> families{
      StreamFamily::kRandomWalk, StreamFamily::kSensor,
      StreamFamily::kSinusoidal, StreamFamily::kBursty,
      StreamFamily::kIidUniform, StreamFamily::kCrossingPairs,
      StreamFamily::kRotatingMax};

  std::vector<std::string> header{"monitor"};
  for (const auto f : families) header.emplace_back(family_name(f));
  Table table(header);

  for (const auto& mon : monitors) {
    std::vector<std::string> row{mon};
    for (const auto fam : families) {
      StreamSpec spec;
      spec.family = fam;
      spec.walk.max_step = 50;  // slow walk: the "similar inputs" regime
      auto monitor = make_monitor(mon, kK);
      RunConfig cfg;
      cfg.n = kN;
      cfg.k = kK;
      cfg.steps = steps;
      cfg.seed = args.seed;
      const auto r = run_once(*monitor, spec, cfg);
      row.push_back(fmt(r.messages_per_step(), 2));
    }
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  maybe_csv(table, args, "e7_algorithms_table");
  std::cout
      << "\nshape checks (paper's qualitative claims):\n"
      << " * topk_filter << naive and << recompute on random_walk/sensor/"
         "bursty (similar inputs);\n"
      << " * on rotating_max every algorithm pays ~every step; recompute is "
         "competitive there (classical analysis, §2.1);\n"
      << " * dominance (full-order tracking) pays for order churn everywhere "
         "(crossing_pairs) although the top-k set rarely changes (§3.1);\n"
      << " * ordered costs slightly more than topk_filter (extra in-top-k "
         "order maintenance, §5).\n";
  return 0;
}
