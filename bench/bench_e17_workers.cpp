// e17 — worker-scaling suite: steps/sec versus the SimDriver's tick-scan
// parallelism W, the per-scenario scaling axis on top of e16's n axis.
//
// PR 4 made the per-tick cost proportional to activity, PR 5 made the
// node state a flat structure of arrays; this suite measures the parallel
// tick loop built on both: the same configuration run at W ∈ {1, 2, 4, 8}
// workers, with the in-suite assertion that every W row is functionally
// identical to the W = 1 row — the parallel-tick determinism contract,
// measured, not assumed (CI additionally byte-diffs the whole fingerprint
// at --workers 1 vs 8).
//
// Outputs:
//   * ctx.emit("e17_workers"): deterministic fingerprint (message counts,
//     error steps per case × W) — byte-identical across --jobs AND
//     --workers, diffed by CI.
//   * BENCH_workers_<label>.json: wall-clock record (steps/sec per case
//     and worker count), next to e16's BENCH_scale_<label>.json in the
//     perf trajectory. Speedups only manifest on multi-core hosts; on a
//     1-core container the W > 1 rows measure staging overhead instead.
#include <algorithm>
#include <fstream>
#include <thread>

#include "alloc_hook.hpp"
#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

struct WorkerCase {
  std::string name;
  std::size_t n;
  double activity;
  const char* network;
  std::size_t workers;
};

std::string case_name(std::size_t n, double activity, const char* network,
                      std::size_t workers) {
  const std::string net =
      parse_network_spec(network).is_instant() ? "instant" : "sched";
  return "n" + std::to_string(n) + "_act" + fmt(activity, 2) + "_" + net +
         "_w" + std::to_string(workers);
}

TOPKMON_SUITE(e17, "worker scaling: steps/sec vs tick-scan workers "
                   "(byte-identical output per W)") {
  const std::uint64_t steps = ctx.opts().steps_or(160);
  const std::uint64_t seed = ctx.opts().seed;
  constexpr std::size_t kK = 8;

  // The W axis. --workers adds its (resolved) value so the CI smoke's
  // `--workers 8` run covers W = 8 twice-identically rather than adding
  // a row — the fingerprint must stay byte-identical across the flag.
  std::vector<std::size_t> ws = {1, 2, 4, 8};
  {
    std::size_t flag = ctx.opts().workers;
    if (flag == 0) {
      flag = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    if (std::find(ws.begin(), ws.end(), flag) == ws.end()) {
      ws.insert(std::upper_bound(ws.begin(), ws.end(), flag), flag);
    }
  }

  // Same regimes as e16's drift rows: the paper's 1% activity and the
  // adversarial 100% one, on the instant fast path and a budgeted
  // scheduled policy. n picks one mid and one large size — the large one
  // is where the word-range partition has enough bits per shard to
  // amortize the barrier.
  const std::vector<std::size_t> ns = {1u << 12, 1u << 16};
  const std::vector<double> activities = {0.01, 1.0};
  const std::vector<const char*> networks = {"instant",
                                             "delay=1,jitter=2,ticks=8"};

  // W innermost, so each (n, activity, network) group is contiguous and
  // its first row is the W = 1 reference the others are checked against.
  std::vector<WorkerCase> cases;
  for (const std::size_t n : ns) {
    for (const double act : activities) {
      for (const char* net : networks) {
        for (const std::size_t w : ws) {
          cases.push_back(
              WorkerCase{case_name(n, act, net, w), n, act, net, w});
        }
      }
    }
  }

  const auto outcomes =
      ctx.runner().map<RunResult>(cases.size(), [&](std::size_t i) {
        const WorkerCase& c = cases[i];
        StreamSpec stream;
        stream.family = StreamFamily::kSparse;
        stream.sparse.rate = c.activity;
        stream.sparse_inner = StreamFamily::kRandomWalk;
        // e16's drift regime: wide range, gentle steps — violation bursts
        // occur, but most ticks are sparse.
        stream.walk.hi = 100'000'000;
        stream.walk.max_step = 64;
        Scenario sc =
            scenario("topk_filter?nobeacon", stream, c.n, kK, steps, seed);
        sc.network = parse_network_spec(c.network);
        sc.workers = c.workers;
        if (sc.network.is_instant()) {
          sc.validation = RunConfig::Validation::kStrict;
        } else {
          // Under a tick budget the answer is legitimately stale; record
          // divergence instead of throwing (the counts stay deterministic
          // and are part of the fingerprint).
          sc.validation = RunConfig::Validation::kWeak;
          sc.throw_on_error = false;
        }
        return run_scenario(sc);
      });

  // The determinism contract, asserted in-suite: every W row of a group
  // must match its W = 1 reference exactly — same messages, same
  // divergence pattern. (CI's workers smoke additionally byte-diffs the
  // emitted fingerprint files across --workers runs.)
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const std::size_t ref = i - i % ws.size();  // the group's W = 1 row
    if (outcomes[i].comm.total() != outcomes[ref].comm.total() ||
        outcomes[i].error_steps != outcomes[ref].error_steps) {
      throw std::logic_error("e17: workers divergence at " + cases[i].name +
                             " vs " + cases[ref].name);
    }
  }

  Table fingerprint({"case", "n", "k", "activity", "network", "workers",
                     "steps", "msgs_total", "msgs_per_step", "error_steps"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const WorkerCase& c = cases[i];
    const RunResult& r = outcomes[i];
    fingerprint.add_row(
        {c.name, std::to_string(c.n), std::to_string(kK), fmt(c.activity, 2),
         c.network, std::to_string(c.workers),
         std::to_string(r.steps_executed), std::to_string(r.comm.total()),
         fmt(r.messages_per_step(), 3), std::to_string(r.error_steps)});
  }
  ctx.emit(fingerprint, "e17_workers");

  // Timing summary: steady-state steps/s per W and the speedup of each
  // W > 1 column over W = 1 (console + BENCH file; wall clock is
  // machine-dependent, not diffed). Initialization is excluded like in
  // e16 — it is serial under every W.
  const auto steady_sps = [](const RunResult& r) {
    const double seconds = r.wall_seconds - r.init_seconds;
    return seconds > 0.0 && r.steps_executed > 1
               ? static_cast<double>(r.steps_executed - 1) / seconds
               : 0.0;
  };
  std::vector<std::string> header = {"config"};
  for (const std::size_t w : ws) {
    header.push_back("w" + std::to_string(w) + " steps/s");
  }
  for (std::size_t wi = 1; wi < ws.size(); ++wi) {
    header.push_back("x" + std::to_string(ws[wi]));
  }
  Table timing(header);
  for (std::size_t g = 0; g < cases.size(); g += ws.size()) {
    std::vector<std::string> row = {
        cases[g].name.substr(0, cases[g].name.rfind('_'))};
    const double base = steady_sps(outcomes[g]);
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
      row.push_back(fmt(steady_sps(outcomes[g + wi]), 0));
    }
    for (std::size_t wi = 1; wi < ws.size(); ++wi) {
      const double sps = steady_sps(outcomes[g + wi]);
      row.push_back(base > 0.0 ? fmt(sps / base, 2) : "-");
    }
    timing.add_row(row);
  }
  ctx.out() << "\n";
  timing.print(ctx.out());

  const std::string label = bench_label();
  const std::string dir =
      ctx.opts().out_dir.empty() ? std::string(".") : ctx.opts().out_dir;
  const std::string path = dir + "/BENCH_workers_" + label + ".json";
  std::ofstream out(path);
  if (!out) {
    ctx.out() << "e17: cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"topkmon-bench-v1\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  out << "  \"alloc_hook\": " << (alloc_hook_enabled() ? "true" : "false")
      << ",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const WorkerCase& c = cases[i];
    const RunResult& r = outcomes[i];
    const double sps = steady_sps(r);
    const double nsps = sps > 0.0 ? 1e9 / sps : 0.0;
    out << "    {\"name\": \"" << c.name << "\", \"n\": " << c.n
        << ", \"k\": " << kK << ", \"activity\": " << fmt(c.activity, 2)
        << ", \"network\": \"" << c.network << "\", \"workers\": "
        << c.workers << ", \"wall_seconds\": " << fmt(r.wall_seconds, 6)
        << ", \"init_seconds\": " << fmt(r.init_seconds, 6)
        << ", \"steps_per_sec\": " << fmt(sps, 1) << ", \"ns_per_step\": "
        << fmt(nsps, 1) << ", \"messages_total\": " << r.comm.total()
        << ", \"error_steps\": " << r.error_steps << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  ctx.out() << "e17: wrote " << path << "\n";
}

}  // namespace
}  // namespace topkmon::bench
