// E4 — Theorem 3.3 / 4.4: the competitive ratio of Algorithm 1 carries a
// log Δ factor, Δ = max_t (v_k - v_{k+1}).
//
// Two workloads:
//  (a) adversarial "sawtooth approach": the top node repeatedly descends
//      geometrically onto the runner-up before swapping, forcing the full
//      log Δ chain of midpoint halvings between OPT updates — the input
//      family on which the analysis is tight; the measured ratio should
//      grow ~linearly in log Δ.
//  (b) natural random walks confined to a band scaling with Δ: typical
//      inputs sit far below the worst case (ratio roughly flat), showing
//      the bound is a worst-case guarantee, not the common cost.
#include <cmath>
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

/// Builds the sawtooth-approach trace: node 1 sits at `center`; node 0
/// descends from center+delta geometrically (gap /= 4 per step), dips one
/// unit below node 1 (swap: OPT must update), then jumps back up (swap
/// back: OPT update again). Nodes 2.. are quiet background fillers.
TraceMatrix sawtooth_trace(std::size_t n, std::size_t steps, Value delta) {
  constexpr Value kCenter = 1'000'000;
  TraceMatrix trace(n, steps);
  Value gap = delta;
  bool below = false;
  for (std::size_t t = 0; t < steps; ++t) {
    trace.at(t, 1) = kCenter;
    for (NodeId i = 2; i < n; ++i) {
      trace.at(t, i) = static_cast<Value>(1'000 - i);  // far below, static
    }
    if (below) {
      // One step below the runner-up, then restart the descent.
      trace.at(t, 0) = kCenter - 1;
      below = false;
      gap = delta;
    } else {
      trace.at(t, 0) = kCenter + gap;
      gap /= 4;
      if (gap == 0) below = true;
    }
  }
  return trace;
}

TOPKMON_SUITE(e4, "competitive ratio vs log Delta (Theorems 3.3/4.4)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(4'000);
  const std::uint64_t trials = args.trials_or(5);
  constexpr std::size_t kN = 16;

  ctx.out() << "E4: competitive ratio vs Delta (Theorems 3.3/4.4)\n"
            << "n = " << kN << ", steps = " << steps << "\n\n";

  // ---- (a) adversarial sawtooth, k = 1 ------------------------------------
  {
    ctx.out() << "(a) adversarial sawtooth approach (analysis-tight family, "
                 "k = 1)\n";
    std::vector<Value> deltas;
    for (Value delta = 1 << 6; delta <= 1 << 26; delta <<= 4) {
      deltas.push_back(delta);
    }
    struct SawtoothRow {
      std::uint64_t msgs = 0, opt_updates = 0;
      double ratio = 0;
    };
    const auto rows = ctx.runner().map<SawtoothRow>(
        deltas.size(), [&](std::size_t di) {
          TopkFilterMonitor monitor(1);
          const auto trace = sawtooth_trace(kN, steps, deltas[di]);
          auto streams = trace.to_stream_set();
          RunConfig cfg;
          cfg.n = kN;
          cfg.k = 1;
          cfg.steps = steps - 1;
          cfg.seed = args.seed;
          cfg.record_trace = true;
          const auto r = run_monitor(monitor, streams, cfg);
          const auto opt = compute_offline_opt(*r.trace, 1);
          return SawtoothRow{r.comm.total(), opt.updates(),
                             competitive_ratio(r, 1)};
        });

    Table t({"Delta", "log2 Delta", "msgs", "OPT updates", "ratio",
             "ratio/logDelta"});
    for (std::size_t di = 0; di < deltas.size(); ++di) {
      const double ld = std::log2(static_cast<double>(deltas[di]));
      t.add_row({std::to_string(deltas[di]), fmt(ld, 0),
                 fmt_count(rows[di].msgs), fmt_count(rows[di].opt_updates),
                 fmt(rows[di].ratio, 1), fmt(rows[di].ratio / ld, 2)});
    }
    ctx.emit(t, "e4a_sawtooth");
    ctx.out() << "shape: ratio grows ~linearly in log Delta (normalized "
                 "column ~constant) — the bound's log Delta term is real.\n\n";
  }

  // ---- (b) natural random walks -------------------------------------------
  {
    ctx.out() << "(b) random walks confined to a Delta-scaled band (typical "
                 "inputs, k = 4)\n";
    constexpr std::size_t kK = 4;
    std::vector<Value> spans;
    for (Value span = 4; span <= 65'536; span *= 8) spans.push_back(span);

    // Flat (span × trial) job list; folded per span in trial order below.
    struct WalkTrial {
      double msgs = 0, opt_updates = 0, ratio = 0, log_delta = 0;
    };
    const std::size_t jobs = spans.size() * trials;
    const auto walk_trials = ctx.runner().map<WalkTrial>(
        jobs, [&](std::size_t j) {
          const Value span = spans[j / trials];
          const std::uint64_t t2 = j % trials;
          StreamSpec spec;
          spec.family = StreamFamily::kRandomWalk;
          spec.walk.max_step = span;
          spec.walk.lo = 0;
          spec.walk.hi = span * 64;
          const std::uint64_t seed =
              args.seed * 1000 + static_cast<std::uint64_t>(span) + t2;
          Scenario sc = scenario("topk_filter", spec, kN, kK, steps, seed);
          sc.record_trace = true;
          const auto r = run_scenario(sc);
          const auto opt = compute_offline_opt(*r.trace, kK);
          const auto delta = trace_delta(*r.trace, kK);
          return WalkTrial{
              static_cast<double>(r.comm.total()),
              static_cast<double>(opt.updates()), competitive_ratio(r, kK),
              std::log2(static_cast<double>(std::max<Value>(2, delta)))};
        });

    Table t({"walk span", "measured logDelta", "E[msgs]", "E[OPT updates]",
             "ratio", "ratio/(logD+k)logn"});
    for (std::size_t si = 0; si < spans.size(); ++si) {
      OnlineStats msgs, opt_updates, ratios, log_delta;
      for (std::uint64_t t2 = 0; t2 < trials; ++t2) {
        const auto& w = walk_trials[si * trials + t2];
        msgs.add(w.msgs);
        opt_updates.add(w.opt_updates);
        ratios.add(w.ratio);
        log_delta.add(w.log_delta);
      }
      const double bound_scale =
          (log_delta.mean() + kK) * std::log2(static_cast<double>(kN));
      t.add_row({std::to_string(spans[si]), fmt(log_delta.mean()),
                 fmt(msgs.mean(), 0), fmt(opt_updates.mean(), 1),
                 fmt(ratios.mean(), 1), fmt(ratios.mean() / bound_scale, 3)});
    }
    ctx.emit(t, "e4b_walks");
    ctx.out() << "shape: typical-case ratio is roughly flat and sits well "
                 "inside the worst-case (log Delta + k) log n budget.\n";
  }
}

}  // namespace
}  // namespace topkmon::bench
