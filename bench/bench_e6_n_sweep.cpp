// E6 — Theorem 4.4: the M(n) = Θ(log n) protocol factor. With k and the
// workload fixed, scaling n should grow the per-event message cost only
// logarithmically.
//
// Regenerates: n = 2^4 .. 2^14 sweep; messages per handler event and per
// OPT update vs log2 n.
#include <cmath>
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(e6, "cost vs n — M(n)=Θ(log n) factor (Theorem 4.4)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(600);
  const std::uint64_t trials = args.trials_or(3);
  constexpr std::size_t kK = 4;

  ctx.out() << "E6: cost vs n (Theorem 4.4, M(n) = Theta(log n) factor)\n"
            << "k = " << kK << ", steps = " << steps << ", trials = " << trials
            << ", workload = random walk\n\n";

  std::vector<std::uint32_t> exps;
  for (std::uint32_t exp2 = 4; exp2 <= 14; exp2 += 2) exps.push_back(exp2);

  struct Trial {
    double msgs = 0, events = 0, ratio = 0;
  };
  const auto results = ctx.runner().map<Trial>(
      exps.size() * trials, [&](std::size_t j) {
        const std::uint32_t exp2 = exps[j / trials];
        const std::uint64_t t = j % trials;
        const std::size_t n = 1ull << exp2;
        StreamSpec spec;
        spec.family = StreamFamily::kRandomWalk;
        spec.walk.max_step = 2'000;
        Scenario sc = scenario("topk_filter", spec, n, kK, steps,
                               args.seed * 29 + exp2 * 7 + t);
        sc.record_trace = true;
        const auto r = run_scenario(sc);
        return Trial{static_cast<double>(r.comm.total()),
                     static_cast<double>(r.monitor.handler_calls +
                                         r.monitor.filter_resets * (kK + 1)),
                     competitive_ratio(r, kK)};
      });

  Table table({"n", "log2 n", "E[msgs]", "E[handler events]", "msgs/event",
               "msgs/event/log2n", "ratio vs OPT"});
  for (std::size_t ei = 0; ei < exps.size(); ++ei) {
    const std::uint32_t exp2 = exps[ei];
    OnlineStats msgs, events, ratios;
    for (std::uint64_t t = 0; t < trials; ++t) {
      const auto& r = results[ei * trials + t];
      msgs.add(r.msgs);
      events.add(r.events);
      ratios.add(r.ratio);
    }
    const double per_event = msgs.mean() / std::max(1.0, events.mean());
    table.add_row({std::to_string(1ull << exp2), std::to_string(exp2),
                   fmt(msgs.mean(), 0), fmt(events.mean(), 1),
                   fmt(per_event, 1), fmt(per_event / exp2, 2),
                   fmt(ratios.mean(), 1)});
  }

  ctx.emit(table, "e6_n_sweep");
  ctx.out() << "\nshape check: msgs/event grows ~linearly in log2 n "
               "(normalized column ~constant) — the protocol contributes "
               "the Theta(log n) factor and nothing worse.\n";
}

}  // namespace
}  // namespace topkmon::bench
