// e20 — adversarial fault suite: degraded-but-alive nodes (laggards,
// stale responders, mutes) against the suspicion state machines, the
// warm-standby assignment replay against the re-sync handshake, and
// membership churn on sharded deployments.
//
// The claim under test extends e19 from fail-stop to adversarial
// degradation: a node that is *alive but wrong* — lagging past the
// session window, frozen on a stale value, or silently dropping its
// uplink — is inferred, quarantined, and re-admitted after it heals,
// with a bounded error tail; and a recovering/joining node can be warmed
// from the coordinator's collapsed assignment log in one message instead
// of a probe/reply/assign storm.
//
// Hard assertions (every run, not just CI):
//   * instant degradation rows: zero divergent answers in the tail
//     window after the heal — quarantine release re-converged exactly;
//   * mute rows: the suspicion machinery convicted every muted node
//     (quarantines >= the number of muted nodes);
//   * filter stale rows: at least one contradiction conviction
//     (stale_detections > 0) — the naive family cannot detect stale and
//     is not asserted;
//   * replay rows: assign_replays fired and the re-sync retry storm is
//     strictly smaller than the handshake twin's;
//   * sharded churn rows (instant): zero tail errors at c in {2, 4} —
//     whole-deployment exactness after crash/recover/join across shards.
//
// Outputs:
//   * ctx.emit("e20_adversarial"): deterministic fingerprint
//     (suspicions, quarantines, stale detections, replays, error tails)
//     — byte-identical across --jobs and --workers, diffed by CI.
//   * BENCH_adversarial_<label>.json: wall-clock record, next to the
//     e16..e19 BENCH files in the perf trajectory.
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

struct AdvCase {
  std::string name;
  std::string monitor;
  const char* mon_tag;
  const char* network;
  const char* plan_tag;
  std::string plan;
  std::size_t n;
  std::size_t k;
  std::size_t shards = 1;
  std::uint64_t max_step;    ///< random-walk volatility
  std::size_t degradations;  ///< muted/degraded node count (conviction floor)
  bool assert_tail;          ///< instant: zero errors after tail_start
  bool assert_stale;         ///< filter row: stale_detections > 0
};

constexpr std::uint64_t kMaxRecoveryTicks = 50'000;

TOPKMON_SUITE(e20_adversarial,
              "adversarial faults: laggards, stale responders, mutes, "
              "warm-standby replay and sharded churn") {
  const std::uint64_t steps =
      std::max<std::uint64_t>(60, ctx.opts().steps_or(600));
  const std::uint64_t seed = ctx.opts().seed;

  const auto at = [&](double f) {
    return std::to_string(static_cast<std::uint64_t>(steps * f));
  };
  // Degradations start at 0.2 and heal at 0.5: the wide margin to the
  // 0.85 tail covers the release-probe backoff (capped at 16 steps) even
  // at the --steps 60 smoke scale.
  const std::string mute3 = "churn?mute=0@" + at(0.2) + ",mute=1@" + at(0.2) +
                            ",mute=2@" + at(0.2) + ",heal=0@" + at(0.5) +
                            ",heal=1@" + at(0.5) + ",heal=2@" + at(0.5);
  const std::string lag1 = "churn?lag=0@" + at(0.2) + ":200,heal=0@" + at(0.5);
  const std::string stale1 = "churn?stale=0@" + at(0.2) + ",heal=0@" + at(0.5);
  const std::string joins = "churn?join=+32@" + at(0.3);
  const std::string sharded_mix =
      "churn?crash=5@" + at(0.15) + ",recover=5@" + at(0.3) + ",join=+16@" +
      at(0.45) + ",leave=2@" + at(0.55) + ",crash=20@" + at(0.65) +
      ",recover=20@" + at(0.72);
  const TimeStep tail_start =
      static_cast<TimeStep>(static_cast<double>(steps) * 0.85);

  std::vector<AdvCase> cases;
  const auto add = [&](AdvCase c) { cases.push_back(std::move(c)); };

  // -- degradation grid: 3 suspicion monitors x 2 networks x 3 plans ------
  // Tight cluster (half the nodes are members) so the degraded ids are
  // guaranteed to interact with the k-boundary whichever way the walk
  // breaks; volatile walk so detection has material to work with.
  struct MonDef {
    const char* spec;
    const char* tag;
    bool filter;  ///< contradiction detection available
  };
  const std::vector<MonDef> mons = {
      {"topk_filter?nobeacon,suspect", "filter_sus", true},
      {"naive?suspect", "naive_sus", false},
      {"naive_chg?suspect", "naive_chg_sus", false},
  };
  for (const MonDef& m : mons) {
    for (const char* net : {"instant", "delay=2"}) {
      const bool instant = std::string_view(net) == "instant";
      add({std::string(m.tag) + "_" + net + "_mute", m.spec, m.tag, net,
           "mute", mute3, 8, 4, 1, 4'000'000, 3, instant, false});
      if (m.filter) {
        // Lag conviction and stale contradiction are filter-only: the
        // naive family either absorbs in-step lag (reports still arrive
        // within the settle loop) or cannot distinguish a frozen report
        // from a quiet value.
        add({std::string(m.tag) + "_" + net + "_lag", m.spec, m.tag, net,
             "lag", lag1, 8, 4, 1, 4'000'000, 1, instant, false});
        add({std::string(m.tag) + "_" + net + "_stale", m.spec, m.tag, net,
             "stale", stale1, 8, 4, 1, 4'000'000, 0, instant, instant});
      }
    }
  }

  // -- warm-standby replay vs the re-sync handshake ------------------------
  // Calm walk: replay only fires when the coordinator is idle at the join
  // tick, which is the steady-state case it exists for.
  add({"replay_off_joins", "topk_filter?nobeacon", "handshake", "instant",
       "joins", joins, 64, 16, 1, 64, 0, true, false});
  add({"replay_on_joins", "topk_filter?nobeacon,replay", "replay", "instant",
       "joins", joins, 64, 16, 1, 64, 0, true, false});

  // -- sharded membership churn at c in {2, 4} -----------------------------
  for (const std::size_t c : {std::size_t{2}, std::size_t{4}}) {
    for (const char* mon : {"topk_filter?nobeacon", "naive_chg"}) {
      const char* mtag =
          std::string_view(mon) == "naive_chg" ? "naive_chg" : "filter";
      add({"shard" + std::to_string(c) + "_" + mtag + "_mixed", mon, mtag,
           "instant", "sharded_mixed", sharded_mix, 64, 8, c, 64, 0, true,
           false});
    }
  }

  const auto outcomes =
      ctx.runner().map<RunResult>(cases.size(), [&](std::size_t i) {
        const AdvCase& c = cases[i];
        StreamSpec stream;
        stream.family = StreamFamily::kRandomWalk;
        stream.walk.hi = 50'000'000;
        stream.walk.max_step = c.max_step;
        Scenario sc = scenario(c.monitor, stream, c.n, c.k, steps, seed);
        sc.with_network(c.network);
        sc.faults = c.plan;
        sc.shards = c.shards;
        sc.workers = ctx.opts().workers;
        sc.validation = RunConfig::Validation::kStrict;
        sc.throw_on_error = false;
        RunResult r = run_scenario(sc);

        if (c.assert_tail && r.error_steps_since(tail_start) != 0) {
          throw std::logic_error(
              "e20: " + c.name + " still diverging after step " +
              std::to_string(tail_start) + " (" +
              std::to_string(r.error_steps_since(tail_start)) +
              " tail error steps) — quarantine release / churn recovery "
              "never re-converged");
        }
        // Conviction needs strikes to accrue: at smoke scales
        // (--steps 60) the degradation window is too short to guarantee
        // it, so the detection floor is asserted at full scale only.
        if (steps >= 300 && r.monitor.quarantines < c.degradations) {
          throw std::logic_error(
              "e20: " + c.name + " convicted only " +
              std::to_string(r.monitor.quarantines) + " of " +
              std::to_string(c.degradations) + " degraded nodes");
        }
        if (steps >= 300 && c.assert_stale &&
            r.monitor.stale_detections == 0) {
          throw std::logic_error(
              "e20: " + c.name +
              " detected no stale contradiction on an instant network");
        }
        if (r.max_recovery_ticks() > kMaxRecoveryTicks) {
          throw std::logic_error("e20: " + c.name + " recovery window " +
                                 std::to_string(r.max_recovery_ticks()) +
                                 " ticks exceeds the bound " +
                                 std::to_string(kMaxRecoveryTicks));
        }
        return r;
      });

  // The replay twin rows are adjacent by construction; compare them after
  // the map so the assertion sees both sides.
  for (std::size_t i = 0; i + 1 < cases.size(); ++i) {
    if (cases[i].plan_tag != std::string_view("joins")) continue;
    const RunResult& handshake = outcomes[i];
    const RunResult& replay = outcomes[i + 1];
    if (replay.monitor.assign_replays == 0) {
      throw std::logic_error(
          "e20: replay row served no warm-standby replays");
    }
    if (replay.monitor.resync_retries >= handshake.monitor.resync_retries ||
        replay.monitor.resyncs >= handshake.monitor.resyncs) {
      throw std::logic_error(
          "e20: assignment replay did not cut the re-sync storm (" +
          std::to_string(replay.monitor.resyncs) + "/" +
          std::to_string(replay.monitor.resync_retries) + " vs handshake " +
          std::to_string(handshake.monitor.resyncs) + "/" +
          std::to_string(handshake.monitor.resync_retries) + ")");
    }
    break;
  }

  Table fingerprint({"case", "monitor", "network", "plan", "steps",
                     "error_steps", "tail_errors", "max_recovery_ticks",
                     "suspicions", "quarantines", "stale_detections",
                     "assign_replays", "resyncs", "resync_retries",
                     "msgs_per_step"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const AdvCase& c = cases[i];
    const RunResult& r = outcomes[i];
    fingerprint.add_row(
        {c.name, c.mon_tag, c.network, c.plan_tag,
         std::to_string(r.steps_executed), std::to_string(r.error_steps),
         std::to_string(r.error_steps_since(tail_start)),
         std::to_string(r.max_recovery_ticks()),
         std::to_string(r.monitor.suspicions),
         std::to_string(r.monitor.quarantines),
         std::to_string(r.monitor.stale_detections),
         std::to_string(r.monitor.assign_replays),
         std::to_string(r.monitor.resyncs),
         std::to_string(r.monitor.resync_retries),
         fmt(r.messages_per_step(), 3)});
  }
  ctx.emit(fingerprint, "e20_adversarial");

  const std::string label = bench_label();
  const std::string dir =
      ctx.opts().out_dir.empty() ? std::string(".") : ctx.opts().out_dir;
  const std::string path = dir + "/BENCH_adversarial_" + label + ".json";
  std::ofstream out(path);
  if (!out) {
    ctx.out() << "e20: cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"topkmon-bench-v1\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  out << "  \"alloc_hook\": " << (alloc_hook_enabled() ? "true" : "false")
      << ",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const AdvCase& c = cases[i];
    const RunResult& r = outcomes[i];
    const double sec = r.wall_seconds - r.init_seconds;
    const double sps = sec > 0.0 && r.steps_executed > 1
                           ? static_cast<double>(r.steps_executed - 1) / sec
                           : 0.0;
    out << "    {\"name\": \"" << c.name << "\", \"n\": " << c.n
        << ", \"k\": " << c.k << ", \"monitor\": \"" << c.mon_tag
        << "\", \"network\": \"" << c.network << "\", \"plan\": \""
        << c.plan_tag << "\", \"shards\": " << c.shards
        << ", \"wall_seconds\": " << fmt(r.wall_seconds, 6)
        << ", \"steps_per_sec\": " << fmt(sps, 1)
        << ", \"messages\": " << r.comm.total()
        << ", \"error_steps\": " << r.error_steps
        << ", \"max_recovery_ticks\": " << r.max_recovery_ticks()
        << ", \"quarantines\": " << r.monitor.quarantines
        << ", \"assign_replays\": " << r.monitor.assign_replays << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  ctx.out() << "e20: wrote " << path << "\n";
}

}  // namespace
}  // namespace topkmon::bench
