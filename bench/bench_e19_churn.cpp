// e19 — churn suite: deterministic fault injection (sim/fault_plan.hpp)
// composed with the delivery-policy sweep.
//
// The claim under test: the monitors survive node churn — crashes,
// recoveries, joins, leaves and mid-run k renegotiation — with a *bounded*
// recovery window, on lossy networks included. Each (monitor, network)
// cell runs four fault plans on the same paired streams (the faults axis
// never enters the seed, so every churned run is a paired replay of its
// fault-free twin): no faults, light generated churn, heavy generated
// churn, and an explicit mixed schedule exercising every event kind.
//
// Hard assertions (every run, not just CI):
//   * instant rows: zero divergent answers in the tail window after the
//     last scheduled event — the monitor re-converged, full stop;
//   * all non-drop rows: RunResult::max_recovery_ticks() under a generous
//     fixed bound — a monitor that "recovers" by erroring until the run
//     ends shows up as an unbounded window, which the aggregate
//     error_rate() would hide (see RunResult::error_steps_since);
//   * plans with recoveries/joins: resyncs > 0 — the re-sync handshake
//     actually fired.
// Drop rows are report-only: loss makes the recovery window a measured
// quantity, not a contract.
//
// Outputs:
//   * ctx.emit("e19_churn"): deterministic fingerprint (error steps, tail
//     errors, recovery ticks, re-sync counters, messages) — byte-identical
//     across --jobs and --workers, diffed by CI.
//   * BENCH_churn_<label>.json: wall-clock record, next to e16/e17/e18's
//     BENCH files in the perf trajectory.
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

struct ChurnCase {
  std::string name;
  const char* monitor;
  const char* mon_tag;
  const char* network;
  const char* plan_tag;
  std::string plan;
  bool lossy;        ///< drop policy: recovery bound not asserted
  bool has_resync;   ///< plan schedules recover/join events
};

/// Non-drop recovery-window contract: generous (the window is measured in
/// delivery ticks across the whole settle, and delay/jitter stretch it),
/// but far below the "never recovered" regime, which runs to the end of
/// the simulation (hundreds of thousands of ticks at these sizes).
constexpr std::uint64_t kMaxRecoveryTicks = 5'000;

TOPKMON_SUITE(e19_churn,
              "fault injection: node churn, crash-recovery re-sync and "
              "dynamic k across delivery policies") {
  // The fault schedules scale with the step count so the tail window
  // stays meaningful under --steps overrides; the floor keeps the
  // schedule's step fractions distinct.
  const std::uint64_t steps =
      std::max<std::uint64_t>(60, ctx.opts().steps_or(600));
  const std::uint64_t seed = ctx.opts().seed;
  constexpr std::size_t kN = 256;
  constexpr std::size_t kK = 16;

  const auto at = [&](double f) {
    return std::to_string(static_cast<std::uint64_t>(steps * f));
  };
  const std::string light = "churn?every=" + at(0.2) + ",down=2,count=3" +
                            ",outage=" + at(0.05);
  const std::string heavy = "churn?every=" + at(0.12) + ",down=8,count=5" +
                            ",outage=" + at(0.08);
  const std::string mixed =
      "churn?crash=17@" + at(0.15) + ",recover=17@" + at(0.25) + ",join=+64@" +
      at(0.4) + ",leave=12@" + at(0.5) + ",k=24@" + at(0.6) + ",crash=40@" +
      at(0.7) + ",recover=40@" + at(0.75);
  // Last scheduled event fires by 0.75 * steps; give the monitor a 10%
  // margin, then require silence (instant rows).
  const TimeStep tail_start =
      static_cast<TimeStep>(static_cast<double>(steps) * 0.85);

  const std::vector<std::pair<const char*, const char*>> monitors = {
      {"topk_filter?nobeacon", "filter"},
      {"topk_filter?nobeacon,backoff", "filter_bk"},
      {"naive", "naive"},
      {"naive_chg", "naive_chg"},
  };
  const std::vector<std::pair<const char*, bool>> networks = {
      {"instant", false},
      {"delay=2", false},
      {"jitter=3", false},
      {"drop=0.05", true},
  };
  struct PlanDef {
    const char* tag;
    const std::string* spec;
    bool has_resync;
  };
  const std::vector<PlanDef> plans = {
      {"none", nullptr, false},
      {"light", &light, true},
      {"heavy", &heavy, true},
      {"mixed", &mixed, true},
  };

  std::vector<ChurnCase> cases;
  for (const auto& [mon, mtag] : monitors) {
    for (const auto& [net, lossy] : networks) {
      for (const PlanDef& p : plans) {
        ChurnCase c;
        c.name = std::string(mtag) + "_" + net + "_" + p.tag;
        c.monitor = mon;
        c.mon_tag = mtag;
        c.network = net;
        c.plan_tag = p.tag;
        c.plan = p.spec != nullptr ? *p.spec : std::string("none");
        c.lossy = lossy;
        c.has_resync = p.has_resync;
        cases.push_back(std::move(c));
      }
    }
  }

  const auto outcomes =
      ctx.runner().map<RunResult>(cases.size(), [&](std::size_t i) {
        const ChurnCase& c = cases[i];
        StreamSpec stream;
        stream.family = StreamFamily::kSparse;
        stream.sparse.rate = 0.05;
        stream.sparse_inner = StreamFamily::kRandomWalk;
        stream.walk.hi = 100'000'000;
        stream.walk.max_step = 64;
        Scenario sc = scenario(c.monitor, stream, kN, kK, steps, seed);
        sc.with_network(c.network);
        sc.faults = c.plan;
        sc.workers = ctx.opts().workers;
        // Divergence during recovery is the measured quantity, never an
        // abort; strict set equality keeps the error accounting sharp
        // (wide value range => ties are practically absent).
        sc.validation = RunConfig::Validation::kStrict;
        sc.throw_on_error = false;
        RunResult r = run_scenario(sc);

        const bool instant = std::string_view(c.network) == "instant";
        if (instant && r.error_steps_since(tail_start) != 0) {
          throw std::logic_error(
              "e19: " + c.name + " still diverging after step " +
              std::to_string(tail_start) + " on an instant network (" +
              std::to_string(r.error_steps_since(tail_start)) +
              " tail error steps) — the monitor never re-converged");
        }
        if (!c.lossy && r.max_recovery_ticks() > kMaxRecoveryTicks) {
          throw std::logic_error(
              "e19: " + c.name + " recovery window " +
              std::to_string(r.max_recovery_ticks()) +
              " ticks exceeds the lossless bound " +
              std::to_string(kMaxRecoveryTicks));
        }
        if (c.has_resync && r.monitor.resyncs == 0) {
          throw std::logic_error("e19: " + c.name +
                                 " scheduled recoveries but the re-sync "
                                 "handshake never fired");
        }
        return r;
      });

  Table fingerprint({"case", "monitor", "network", "plan", "steps",
                     "error_steps", "tail_errors", "max_recovery_ticks",
                     "resyncs", "resync_retries", "reset_backoffs",
                     "msgs_per_step"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ChurnCase& c = cases[i];
    const RunResult& r = outcomes[i];
    fingerprint.add_row(
        {c.name, c.mon_tag, c.network, c.plan_tag,
         std::to_string(r.steps_executed), std::to_string(r.error_steps),
         std::to_string(r.error_steps_since(tail_start)),
         std::to_string(r.max_recovery_ticks()),
         std::to_string(r.monitor.resyncs),
         std::to_string(r.monitor.resync_retries),
         std::to_string(r.monitor.reset_backoffs),
         fmt(r.messages_per_step(), 3)});
  }
  ctx.emit(fingerprint, "e19_churn");

  const std::string label = bench_label();
  const std::string dir =
      ctx.opts().out_dir.empty() ? std::string(".") : ctx.opts().out_dir;
  const std::string path = dir + "/BENCH_churn_" + label + ".json";
  std::ofstream out(path);
  if (!out) {
    ctx.out() << "e19: cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"topkmon-bench-v1\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  out << "  \"alloc_hook\": " << (alloc_hook_enabled() ? "true" : "false")
      << ",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ChurnCase& c = cases[i];
    const RunResult& r = outcomes[i];
    const double sec = r.wall_seconds - r.init_seconds;
    const double sps = sec > 0.0 && r.steps_executed > 1
                           ? static_cast<double>(r.steps_executed - 1) / sec
                           : 0.0;
    out << "    {\"name\": \"" << c.name << "\", \"n\": " << kN
        << ", \"k\": " << kK << ", \"monitor\": \"" << c.mon_tag
        << "\", \"network\": \"" << c.network << "\", \"plan\": \""
        << c.plan_tag << "\", \"wall_seconds\": " << fmt(r.wall_seconds, 6)
        << ", \"steps_per_sec\": " << fmt(sps, 1)
        << ", \"messages\": " << r.comm.total()
        << ", \"error_steps\": " << r.error_steps
        << ", \"max_recovery_ticks\": " << r.max_recovery_ticks()
        << ", \"resyncs\": " << r.monitor.resyncs << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  ctx.out() << "e19: wrote " << path << "\n";
}

}  // namespace
}  // namespace topkmon::bench
