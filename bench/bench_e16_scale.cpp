// e16 — scale suite: steps/sec versus n under controlled activity rates,
// the missing scale axis of the perf trajectory.
//
// The paper's premise is that almost nothing happens almost all the time;
// PR 4 makes the simulator's per-step cost proportional to that activity
// instead of to n. This suite sweeps n × activity × network for the
// native filter monitor, running every configuration through both the
// activity-driven sparse loop and the legacy dense loop (Scenario::
// dense_loop), so the speedup — and the invariant that both loops produce
// identical messages and answers — is measured, not assumed.
//
// Outputs:
//   * ctx.emit("e16_scale"): deterministic fingerprint (message counts,
//     error steps) — byte-identical across --jobs, diffed by CI.
//   * BENCH_scale_<label>.json: wall-clock record (steps/sec per config,
//     sparse and dense), appended to the repo's perf trajectory next to
//     the perf suite's BENCH_<label>.json.
#include <fstream>

#include "alloc_hook.hpp"
#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

struct ScaleCase {
  std::string name;
  std::size_t n;
  double activity;
  const char* network;
  bool dense;
  /// Broadcast-burst workload: a volatile inner walk keeps the top-k
  /// churning, so the coordinator convenes selection protocols whose
  /// beacons broadcast to all n nodes — the violation-burst regime the
  /// bulk instant-broadcast fan-out targets.
  bool burst = false;
};

std::string case_name(std::size_t n, double activity, const char* network,
                      bool dense, bool burst) {
  std::string net = parse_network_spec(network).is_instant() ? "instant"
                                                             : "sched";
  return "n" + std::to_string(n) + "_act" + fmt(activity, 2) + "_" + net +
         (burst ? "_burst" : "") + (dense ? "_dense" : "_sparse");
}

TOPKMON_SUITE(e16, "scale sweep: steps/sec vs n x activity (sparse vs dense "
                   "loop)") {
  const std::uint64_t steps = ctx.opts().steps_or(160);
  const std::uint64_t seed = ctx.opts().seed;
  constexpr std::size_t kK = 8;

  // n spans 2^10 .. 2^17; the 1% row is the paper's regime, the 100% row
  // is the adversarial dense workload where the sparse loop must not lose.
  const std::vector<std::size_t> ns = {1u << 10, 1u << 12, 1u << 14,
                                       1u << 16, 1u << 17};
  const std::vector<double> activities = {0.01, 1.0};
  const std::vector<const char*> networks = {"instant",
                                             "delay=1,jitter=2,ticks=8"};

  std::vector<ScaleCase> cases;
  for (const std::size_t n : ns) {
    for (const double act : activities) {
      for (const char* net : networks) {
        for (const bool dense : {false, true}) {
          cases.push_back(ScaleCase{case_name(n, act, net, dense, false), n,
                                    act, net, dense, false});
        }
      }
    }
  }
  // Broadcast-burst column (instant only — that is where the bulk fan-out
  // applies): 1% of nodes move per step, but each move is violent enough
  // to keep violating filters, so most steps trigger protocol beacons
  // that fan out to all n nodes. Laid out sparse/dense adjacent like the
  // drift cases so the equivalence check below covers the burst rows too.
  for (const std::size_t n : ns) {
    for (const bool dense : {false, true}) {
      cases.push_back(ScaleCase{case_name(n, 0.01, "instant", dense, true), n,
                                0.01, "instant", dense, true});
    }
  }

  const auto outcomes =
      ctx.runner().map<RunResult>(cases.size(), [&](std::size_t i) {
        const ScaleCase& c = cases[i];
        StreamSpec stream;
        stream.family = StreamFamily::kSparse;
        stream.sparse.rate = c.activity;
        stream.sparse_inner = StreamFamily::kRandomWalk;
        if (c.burst) {
          // Narrow range, violent steps: the active 1% of nodes crosses
          // filter bounds nearly every step, so the coordinator's
          // selection beacons broadcast constantly.
          stream.walk.hi = 1'000'000;
          stream.walk.max_step = 10'000;
        } else {
          // Wide value range relative to the walk step: nodes drift
          // without constantly reshuffling the top-k — the paper's "no
          // news is good news" regime the activity-driven loop is built
          // for (violation bursts still occur, just not every step).
          stream.walk.hi = 100'000'000;
          stream.walk.max_step = 64;
        }
        Scenario sc =
            scenario("topk_filter?nobeacon", stream, c.n, kK, steps, seed);
        sc.network = parse_network_spec(c.network);
        sc.dense_loop = c.dense;
        // Honors --workers: the fingerprint is workers-invariant by the
        // parallel-tick determinism contract (CI diffs it at 1 vs 8).
        sc.workers = ctx.opts().workers;
        if (sc.network.is_instant()) {
          sc.validation = RunConfig::Validation::kStrict;
        } else {
          // Under a tick budget the answer is legitimately stale; record
          // divergence instead of throwing (the counts stay deterministic
          // and are part of the fingerprint).
          sc.validation = RunConfig::Validation::kWeak;
          sc.throw_on_error = false;
        }
        return run_scenario(sc);
      });

  // Sparse and dense runs of the same configuration must be functionally
  // indistinguishable — same messages, same divergence pattern. Cases are
  // laid out sparse/dense adjacent; the loop therefore also pins the
  // broadcast-burst rows (where the bulk fan-out dominates) sparse≡dense.
  for (std::size_t i = 0; i + 1 < cases.size(); i += 2) {
    const RunResult& sparse = outcomes[i];
    const RunResult& dense = outcomes[i + 1];
    if (sparse.comm.total() != dense.comm.total() ||
        sparse.error_steps != dense.error_steps) {
      throw std::logic_error("e16: sparse/dense divergence at " +
                             cases[i].name);
    }
  }

  Table fingerprint({"case", "n", "k", "activity", "network", "workload",
                     "loop", "steps", "msgs_total", "msgs_per_step",
                     "error_steps"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ScaleCase& c = cases[i];
    const RunResult& r = outcomes[i];
    fingerprint.add_row(
        {c.name, std::to_string(c.n), std::to_string(kK), fmt(c.activity, 2),
         c.network, c.burst ? "burst" : "drift", c.dense ? "dense" : "sparse",
         std::to_string(r.steps_executed), std::to_string(r.comm.total()),
         fmt(r.messages_per_step(), 3), std::to_string(r.error_steps)});
  }
  ctx.emit(fingerprint, "e16_scale");

  // Timing summary with the sparse-vs-dense speedup per configuration
  // (console + BENCH file; wall clock is machine-dependent, not diffed).
  // Steady-state rate: initialization (the one-time full selection over
  // all n nodes) is identical for both loops and would otherwise swamp
  // the per-step comparison at small step counts.
  const auto steady_sps = [](const RunResult& r) {
    const double seconds = r.wall_seconds - r.init_seconds;
    return seconds > 0.0 && r.steps_executed > 1
               ? static_cast<double>(r.steps_executed - 1) / seconds
               : 0.0;
  };
  Table timing({"config", "sparse steps/s", "dense steps/s", "speedup"});
  for (std::size_t i = 0; i + 1 < cases.size(); i += 2) {
    const double sps_sparse = steady_sps(outcomes[i]);
    const double sps_dense = steady_sps(outcomes[i + 1]);
    timing.add_row({cases[i].name.substr(0, cases[i].name.rfind('_')),
                    fmt(sps_sparse, 0), fmt(sps_dense, 0),
                    sps_dense > 0.0 ? fmt(sps_sparse / sps_dense, 2) : "-"});
  }
  ctx.out() << "\n";
  timing.print(ctx.out());

  const std::string label = bench_label();
  const std::string dir =
      ctx.opts().out_dir.empty() ? std::string(".") : ctx.opts().out_dir;
  const std::string path = dir + "/BENCH_scale_" + label + ".json";
  std::ofstream out(path);
  if (!out) {
    ctx.out() << "e16: cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"topkmon-bench-v1\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  out << "  \"alloc_hook\": " << (alloc_hook_enabled() ? "true" : "false")
      << ",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ScaleCase& c = cases[i];
    const RunResult& r = outcomes[i];
    const double sps = steady_sps(r);
    const double nsps = sps > 0.0 ? 1e9 / sps : 0.0;
    out << "    {\"name\": \"" << c.name << "\", \"n\": " << c.n
        << ", \"k\": " << kK << ", \"activity\": " << fmt(c.activity, 2)
        << ", \"network\": \"" << c.network << "\", \"workload\": \""
        << (c.burst ? "burst" : "drift") << "\", \"loop\": \""
        << (c.dense ? "dense" : "sparse") << "\", \"wall_seconds\": "
        << fmt(r.wall_seconds, 6) << ", \"init_seconds\": "
        << fmt(r.init_seconds, 6) << ", \"steps_per_sec\": " << fmt(sps, 1)
        << ", \"ns_per_step\": " << fmt(nsps, 1) << ", \"messages_total\": "
        << r.comm.total() << ", \"error_steps\": " << r.error_steps << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  ctx.out() << "e16: wrote " << path << "\n";
}

}  // namespace
}  // namespace topkmon::bench
