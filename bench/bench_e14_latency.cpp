// E14 — beyond the paper's instant-delivery model: what does message
// *latency* do to filter-based monitoring? The scenario engine fixes the
// observation cadence (64 delivery ticks between observations — wide
// enough for a full zero-delay violation cycle) and sweeps the per-link
// delay, replaying the *same* streams and protocol coins in every cell
// (the network axis does not enter the trial seed — paired comparison).
//
// Expected shape: the naive baseline's cost is delay-invariant (one
// report per node per step, no feedback loop) but its answer goes stale
// as soon as reports miss the step budget (delay > cadence). Algorithm 1
// feels latency earlier and differently: round beacons arrive late, so
// node pruning weakens (more reports per protocol run), sessions stretch
// across observation steps, and boundary updates lag the data — message
// cost AND error steps climb with delay, while at zero/low delay it keeps
// its huge message advantage.
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(e14, "message-delay sweep: staleness vs cost (extension)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(1'200);
  const std::uint64_t trials = args.trials_or(3);
  constexpr std::size_t kN = 32;
  constexpr std::size_t kK = 4;

  ctx.out() << "E14: message delay vs staleness and cost (extension)\n"
            << "n = " << kN << ", k = " << kK << ", steps = " << steps
            << ", trials = " << trials
            << ", cadence = 64 ticks/observation, random walk\n\n";

  // The 64-tick cadence fits a full zero-delay violation cycle (a handful
  // of O(log n)-round sessions), so the leftmost column is the clean
  // anchor; the delay sweep then shows who buckles first.
  const std::vector<std::string> network_specs{
      "ticks=64",          "delay=8,ticks=64",  "delay=16,ticks=64",
      "delay=32,ticks=64", "delay=64,ticks=64", "delay=128,ticks=64"};

  SweepGrid grid;
  grid.ns = {kN};
  grid.ks = {kK};
  // The whole zoo, now that every monitor has a native role port: the
  // delay axis finally applies to the slack/dominance/approx/multi-k/
  // ordered variants, not just Algorithm 1 and the naive baseline.
  // multi_k monitors ks = {4, 8} so its answer row validates against the
  // grid's k = 4 ground truth; approx gets an ε two walk steps wide.
  grid.monitors = {"topk_filter",       "naive",   "slack",
                   "dominance",         "ordered", "approx?eps=40000",
                   "multi_k?ks=4+8"};
  grid.families = {StreamFamily::kRandomWalk};
  grid.networks.clear();
  for (const auto& s : network_specs) {
    grid.networks.push_back(parse_network_spec(s));
  }
  grid.trials = trials;
  grid.steps = steps;
  grid.base_seed = args.seed;
  // Fast walk: the top-k boundary churns visibly, so a stale answer is
  // actually wrong (a frozen workload would mask any delay).
  grid.stream_template.walk.max_step = 20'000;
  grid.throw_on_error = false;  // staleness is the measurement, not a bug

  // In-suite differential guard: each native port must still be
  // message-identical to its lock-step reference before its delay rows
  // mean anything.
  assert_ports_match_lockstep(ctx, grid.monitors, grid.stream_template, kN,
                              kK, steps, args.seed);

  const auto specs = grid.expand();
  const auto results = ctx.runner().run(specs);

  exp::ResultSink sink({"monitor", "network"},
                       {"msgs_per_step", "error_pct", "resets"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    sink.add({specs[i].monitor, specs[i].network.name()}, specs[i].ordinal,
             {results[i].messages_per_step(), 100.0 * results[i].error_rate(),
              static_cast<double>(results[i].monitor.filter_resets)});
  }

  ctx.emit(sink.to_table(2), "e14_latency");
  ctx.out()
      << "\nshape check: naive msgs/step is flat in delay and its error% "
         "stays zero until the delay exceeds the 64-tick cadence; "
         "topk_filter degrades earlier — delay compounds across protocol "
         "rounds, so once (rounds x delay) outgrows the cadence its "
         "sessions straddle observations and error% climbs — yet its "
         "message volume stays several times below naive throughout.\n";
}

}  // namespace
}  // namespace topkmon::bench
