// Minimal reader for the BENCH_*.json files this binary writes
// (schema "topkmon-bench-v1"): just enough structure to diff two perf
// runs without pulling a JSON library into the tree. Tolerant of
// whitespace and field order; not a general-purpose parser.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace topkmon::bench {

struct BenchRecord {
  std::string name;
  double steps_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t messages_total = 0;
  std::uint64_t error_steps = 0;
  /// Absent when the writing binary had the alloc hook compiled out.
  std::optional<std::uint64_t> allocs;
  /// Worst fault-recovery window of the run (RunResult::
  /// max_recovery_ticks). Absent in files written before the perf suite
  /// carried a faulted case.
  std::optional<std::uint64_t> max_recovery_ticks;
};

struct BenchFile {
  std::string label;
  bool alloc_hook = false;
  std::uint64_t steps = 0;
  std::vector<BenchRecord> scenarios;
};

/// Parses `path`. Returns nullopt when the file cannot be read or is not
/// a topkmon-bench-v1 document.
std::optional<BenchFile> read_bench_file(const std::string& path);

}  // namespace topkmon::bench
