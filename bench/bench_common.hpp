// Shared helpers for the experiment suites registered in topkmon_bench.
//
// Each bench_e*.cpp defines one TOPKMON_SUITE(...) body; the SuiteContext
// carries the parsed CLI options (--trials/--steps/--seed/--jobs/--out-dir),
// the parallel SweepRunner, and ctx.emit() for table output (console +
// CSV + JSON). Suites describe single runs declaratively as Scenarios
// (monitor spec × stream × network × n/k/steps/seed) and execute them
// through run_scenario — the same path the SweepGrid engine uses.
#pragma once

#include <array>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "topkmon.hpp"

namespace topkmon::bench {

using exp::Scenario;
using exp::SuiteContext;
using exp::SuiteOptions;
using exp::SweepGrid;
using exp::SweepRunner;
using exp::TrialSpec;
using exp::run_scenario;

/// Declarative single-run description with the suite defaults filled in.
inline Scenario scenario(std::string monitor, const StreamSpec& stream,
                         std::size_t n, std::size_t k, std::uint64_t steps,
                         std::uint64_t seed) {
  Scenario sc;
  sc.monitor = std::move(monitor);
  sc.stream = stream;
  sc.n = n;
  sc.k = k;
  sc.steps = steps;
  sc.seed = seed;
  return sc;
}

/// Differential guard for suites whose grids mix native role ports into
/// their monitor rows (e14/e15): re-runs every monitor's instant-network
/// cell both natively (run_scenario) and as its lock-step twin
/// (exp::make_monitor through run_monitor) and throws std::logic_error
/// unless the message totals agree in every direction — the suite's
/// published rows are only comparable across the zoo if each port still
/// speaks its reference protocol message-for-message.
inline void assert_ports_match_lockstep(
    SuiteContext& ctx, const std::vector<std::string>& monitors,
    const StreamSpec& stream, std::size_t n, std::size_t k,
    std::uint64_t steps, std::uint64_t seed) {
  for (const auto& spec : monitors) {
    auto monitor = exp::make_monitor(spec, k);
    auto streams = make_stream_set(stream, n, seed);
    RunConfig cfg;
    cfg.n = n;
    cfg.k = k;
    cfg.steps = steps;
    cfg.seed = seed;
    cfg.validation = RunConfig::Validation::kWeak;
    const RunResult lock = run_monitor(*monitor, streams, cfg,
                                       /*throw_on_error=*/false);

    Scenario sc = scenario(spec, stream, n, k, steps, seed);
    sc.validation = RunConfig::Validation::kWeak;
    sc.throw_on_error = false;
    const RunResult native = run_scenario(sc);

    if (lock.comm.upstream() != native.comm.upstream() ||
        lock.comm.unicast() != native.comm.unicast() ||
        lock.comm.broadcast() != native.comm.broadcast()) {
      throw std::logic_error(
          "differential guard: native port '" + spec +
          "' is not message-identical to its lock-step twin on instant");
    }
  }
  ctx.out() << "differential guard: every native row is message-identical "
               "to its lock-step twin on the instant network\n\n";
}

/// Label for BENCH_*.json file names (shared by the perf and e16 suites):
/// env override, else git describe, else the UTC date. Sanitized to
/// [A-Za-z0-9._-].
inline std::string bench_label() {
  std::string label;
  if (const char* env = std::getenv("TOPKMON_BENCH_LABEL")) {
    label = env;
  }
  if (label.empty()) {
    if (std::FILE* pipe =
            popen("git describe --always --dirty 2>/dev/null", "r")) {
      std::array<char, 128> buf{};
      if (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
        label = buf.data();
      }
      pclose(pipe);
    }
  }
  while (!label.empty() &&
         (label.back() == '\n' || label.back() == '\r')) {
    label.pop_back();
  }
  if (label.empty()) {
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    std::array<char, 32> buf{};
    std::strftime(buf.data(), buf.size(), "%Y%m%d-%H%M%S", &tm);
    label = buf.data();
  }
  for (char& c : label) {
    const auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '.' && c != '_' && c != '-') c = '_';
  }
  return label;
}

}  // namespace topkmon::bench
