// Shared helpers for the experiment suites registered in topkmon_bench.
//
// Each bench_e*.cpp defines one TOPKMON_SUITE(...) body; the SuiteContext
// carries the parsed CLI options (--trials/--steps/--seed/--jobs/--out-dir),
// the parallel SweepRunner, and ctx.emit() for table output (console +
// CSV + JSON). run_once stays as the single-trial convenience wrapper.
#pragma once

#include <cstdint>
#include <string>

#include "topkmon.hpp"

namespace topkmon::bench {

using exp::SuiteContext;
using exp::SuiteOptions;
using exp::SweepGrid;
using exp::SweepRunner;
using exp::TrialSpec;

/// Convenience: run one monitor over a freshly built stream set.
inline RunResult run_once(MonitorBase& monitor, const StreamSpec& spec,
                          const RunConfig& cfg) {
  auto streams = make_stream_set(spec, cfg.n, cfg.seed);
  return run_monitor(monitor, streams, cfg);
}

}  // namespace topkmon::bench
