// Shared helpers for the experiment binaries: a tiny flag parser
// (--trials/--steps/--seed/--csv-dir overrides) and run wrappers.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "topkmon.hpp"

namespace topkmon::bench {

/// Command-line knobs common to every experiment binary.
struct BenchArgs {
  std::uint64_t trials = 0;   ///< 0: keep the experiment's default
  std::uint64_t steps = 0;    ///< 0: keep the experiment's default
  std::uint64_t seed = 1;     ///< base seed
  std::string csv_dir;        ///< empty: don't write CSVs

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << "missing value for " << flag << "\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (flag == "--trials") args.trials = std::stoull(next());
      else if (flag == "--steps") args.steps = std::stoull(next());
      else if (flag == "--seed") args.seed = std::stoull(next());
      else if (flag == "--csv-dir") args.csv_dir = next();
      else if (flag == "--help" || flag == "-h") {
        std::cout << "flags: --trials N  --steps N  --seed N  --csv-dir DIR\n";
        std::exit(0);
      } else {
        std::cerr << "unknown flag " << flag << "\n";
        std::exit(2);
      }
    }
    return args;
  }

  std::uint64_t trials_or(std::uint64_t dflt) const {
    return trials ? trials : dflt;
  }
  std::uint64_t steps_or(std::uint64_t dflt) const { return steps ? steps : dflt; }
};

/// Writes the table as CSV into args.csv_dir/name.csv when requested.
inline void maybe_csv(const Table& table, const BenchArgs& args,
                      const std::string& name) {
  if (args.csv_dir.empty()) return;
  const std::string path = args.csv_dir + "/" + name + ".csv";
  if (table.write_csv(path)) {
    std::cout << "[csv] " << path << "\n";
  } else {
    std::cerr << "[csv] failed to write " << path << "\n";
  }
}

/// Convenience: run one monitor over a freshly built stream set.
inline RunResult run_once(MonitorBase& monitor, const StreamSpec& spec,
                          const RunConfig& cfg) {
  auto streams = make_stream_set(spec, cfg.n, cfg.seed);
  return run_monitor(monitor, streams, cfg);
}

}  // namespace topkmon::bench
