// Shared helpers for the experiment suites registered in topkmon_bench.
//
// Each bench_e*.cpp defines one TOPKMON_SUITE(...) body; the SuiteContext
// carries the parsed CLI options (--trials/--steps/--seed/--jobs/--out-dir),
// the parallel SweepRunner, and ctx.emit() for table output (console +
// CSV + JSON). Suites describe single runs declaratively as Scenarios
// (monitor spec × stream × network × n/k/steps/seed) and execute them
// through run_scenario — the same path the SweepGrid engine uses.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "topkmon.hpp"

namespace topkmon::bench {

using exp::Scenario;
using exp::SuiteContext;
using exp::SuiteOptions;
using exp::SweepGrid;
using exp::SweepRunner;
using exp::TrialSpec;
using exp::run_scenario;

/// Declarative single-run description with the suite defaults filled in.
inline Scenario scenario(std::string monitor, const StreamSpec& stream,
                         std::size_t n, std::size_t k, std::uint64_t steps,
                         std::uint64_t seed) {
  Scenario sc;
  sc.monitor = std::move(monitor);
  sc.stream = stream;
  sc.n = n;
  sc.k = k;
  sc.steps = steps;
  sc.seed = seed;
  return sc;
}

}  // namespace topkmon::bench
