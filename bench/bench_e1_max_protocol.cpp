// E1 — Theorem 4.2 (upper bound): the MaximumProtocol's expected number of
// node reports is at most 2·log N + 1, and total messages are O(log N).
//
// Regenerates the scaling series: for n = 2^4 .. 2^18, the mean/max report
// count over many trials on several value layouts, next to the analytic
// bound. The paper claims the bound for every input; the layouts probe the
// extremes (uniform random, ascending = "many candidate maxima survive",
// descending, all-equal).
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

enum class Layout { kUniform, kAscending, kDescending, kAllEqual };

const char* layout_name(Layout l) {
  switch (l) {
    case Layout::kUniform: return "uniform";
    case Layout::kAscending: return "ascending";
    case Layout::kDescending: return "descending";
    case Layout::kAllEqual: return "all_equal";
  }
  return "?";
}

void fill_values(Cluster& c, Layout layout, Rng& rng) {
  const std::size_t n = c.size();
  for (NodeId i = 0; i < n; ++i) {
    switch (layout) {
      case Layout::kUniform:
        c.set_value(i, rng.uniform_int(0, 1'000'000'000));
        break;
      case Layout::kAscending:
        c.set_value(i, static_cast<Value>(i));
        break;
      case Layout::kDescending:
        c.set_value(i, static_cast<Value>(n - i));
        break;
      case Layout::kAllEqual:
        c.set_value(i, 42);
        break;
    }
  }
}

TOPKMON_SUITE(e1, "MaximumProtocol message scaling (Theorem 4.2)") {
  const auto& args = ctx.opts();
  const std::uint64_t trials = args.trials_or(2'000);

  ctx.out() << "E1: MaximumProtocol message scaling (Theorem 4.2)\n"
            << "claim: E[#reports] <= 2 log2 N + 1; total = O(log N)\n"
            << "trials per cell: " << trials << "\n\n";

  struct Cell {
    std::uint32_t exp2;
    Layout layout;
  };
  std::vector<Cell> cells;
  for (std::uint32_t exp2 = 4; exp2 <= 18; exp2 += 2) {
    for (const Layout layout :
         {Layout::kUniform, Layout::kAscending, Layout::kDescending,
          Layout::kAllEqual}) {
      cells.push_back({exp2, layout});
    }
  }

  struct CellStats {
    OnlineStats reports, beacons, totals;
  };
  // One job per cell; each cell's trials share a deterministic per-cell
  // value RNG, so results don't depend on cell execution order.
  const auto stats = ctx.runner().map<CellStats>(
      cells.size(), [&](std::size_t ci) {
        const auto [exp2, layout] = cells[ci];
        const std::size_t n = 1ull << exp2;
        // Trials shrink with n to keep runtime in seconds at n = 2^18.
        const std::uint64_t cell_trials =
            std::max<std::uint64_t>(50, trials >> (exp2 / 2));
        CellStats s;
        Rng layout_rng(args.seed * 1000 + exp2 * 8 +
                       static_cast<std::uint64_t>(layout));
        for (std::uint64_t t = 0; t < cell_trials; ++t) {
          Cluster c(n, args.seed * 7919 + t * 104729 + exp2);
          fill_values(c, layout, layout_rng);
          const auto r = run_max_protocol(c, c.all_ids(), n);
          s.reports.add(static_cast<double>(r.reports));
          s.beacons.add(static_cast<double>(r.beacons));
          s.totals.add(static_cast<double>(r.messages()));
        }
        return s;
      });

  Table table({"n", "layout", "E[reports]", "max", "E[beacons]", "E[total]",
               "bound 2logN+1", "ok"});
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const auto [exp2, layout] = cells[ci];
    const auto& s = stats[ci];
    const double bound = 2.0 * exp2 + 1.0;
    table.add_row({std::to_string(1ull << exp2), layout_name(layout),
                   fmt(s.reports.mean()), fmt(s.reports.max(), 0),
                   fmt(s.beacons.mean()), fmt(s.totals.mean()), fmt(bound),
                   s.reports.mean() <= bound ? "yes" : "NO"});
  }

  ctx.emit(table, "e1_max_protocol");
  ctx.out() << "\nshape check: E[reports] grows ~linearly in log n and stays"
               " under the bound for every layout.\n";
}

}  // namespace
}  // namespace topkmon::bench
