// micro — google-benchmark microbenchmarks: CPU-side throughput of the
// simulator, protocols and monitors (implementation quality; no paper
// claim attached). Message counts are the paper's metric — these
// wall-clock numbers just demonstrate the library is fast enough to run
// the larger experiment sweeps.
//
// Registered as the `micro` suite of topkmon_bench; compiled to a stub
// when google-benchmark is not available at build time.
#include "bench_common.hpp"

#ifdef TOPKMON_HAVE_BENCHMARK

#include <benchmark/benchmark.h>

#include "core/root_merge.hpp"

namespace topkmon {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_BernoulliPow2(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bernoulli_pow2(3, 10));
  }
}
BENCHMARK(BM_BernoulliPow2);

void BM_NetworkBroadcastDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CommStats stats;
  Network net(n, &stats);
  Message m;
  m.kind = MsgKind::kRoundBeacon;
  for (auto _ : state) {
    net.coord_broadcast(m);
    for (NodeId i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(net.drain_node(i));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NetworkBroadcastDrain)->Arg(64)->Arg(1024);

// Before/after pair for the bulk instant-broadcast fan-out: one
// broadcast delivered to n clean nodes through n individual buffer
// drains (the pre-bulk driver path) versus reading each node's log
// suffix in place and committing with an O(1) ack.
void BM_BroadcastFanoutDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CommStats stats;
  Network net(n, &stats);
  Message m;
  m.kind = MsgKind::kRoundBeacon;
  std::vector<Message> buf;
  for (auto _ : state) {
    net.coord_broadcast(m);
    for (NodeId i = 0; i < n; ++i) {
      net.drain_node(i, buf);
      benchmark::DoNotOptimize(buf.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BroadcastFanoutDrain)->Arg(1024)->Arg(65536);

void BM_BroadcastFanoutBulk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CommStats stats;
  Network net(n, &stats);
  Message m;
  m.kind = MsgKind::kRoundBeacon;
  for (auto _ : state) {
    net.coord_broadcast(m);
    for (NodeId i = 0; i < n; ++i) {
      const auto mail = net.unread_broadcasts(i);
      for (const Message& msg : mail) benchmark::DoNotOptimize(&msg);
      net.ack_broadcasts(i);
    }
    net.compact_broadcast_log();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BroadcastFanoutBulk)->Arg(1024)->Arg(65536);

void BM_MaxProtocol(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Cluster c(n, ++seed);
    Rng values(seed);
    for (NodeId i = 0; i < n; ++i) {
      c.set_value(i, values.uniform_int(0, 1'000'000));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(run_max_protocol(c, c.all_ids(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MaxProtocol)->Arg(256)->Arg(4096)->Arg(65536);

void BM_TopkMonitorStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 500;
  auto streams = make_stream_set(spec, n, 7);
  Cluster c(n, 7);
  TopkFilterMonitor m(4);
  for (NodeId i = 0; i < n; ++i) c.set_value(i, streams.advance(i));
  m.initialize(c);
  TimeStep t = 0;
  for (auto _ : state) {
    ++t;
    for (NodeId i = 0; i < n; ++i) c.set_value(i, streams.advance(i));
    m.step(c, t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TopkMonitorStep)->Arg(64)->Arg(1024)->Arg(8192);

void BM_GroundTruthTopk(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Value> values(n);
  Rng rng(5);
  for (auto& v : values) v = rng.uniform_int(0, 1'000'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(true_topk_set(values, 8));
  }
}
BENCHMARK(BM_GroundTruthTopk)->Arg(1024)->Arg(65536);

void BM_OfflineOpt(benchmark::State& state) {
  const auto steps = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kN = 32;
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.max_step = 2'000;
  auto streams = make_stream_set(spec, kN, 11);
  TraceMatrix trace(kN, steps);
  for (std::size_t t = 0; t < steps; ++t) {
    for (NodeId i = 0; i < kN; ++i) trace.at(t, i) = streams.advance(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_offline_opt(trace, 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_OfflineOpt)->Arg(1024)->Arg(16384);

void BM_StreamAdvance(benchmark::State& state) {
  StreamSpec spec;
  spec.family = StreamFamily::kZipf;
  auto streams = make_stream_set(spec, 64, 13);
  NodeId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(streams.advance(i));
    i = (i + 1) % 64;
  }
}
BENCHMARK(BM_StreamAdvance);

// ---------------------------------------------------------------------------
// Hot-path before/after pairs: the "legacy" variants reproduce the
// pre-optimization code shape (fresh vectors, full recompute, scalar
// dispatch) against the same public API, so a single binary measures the
// win of each hot-path change.
// ---------------------------------------------------------------------------

void BM_DrainLegacy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CommStats stats;
  Network net(n, &stats);
  Message m;
  m.kind = MsgKind::kValueReport;
  for (auto _ : state) {
    for (NodeId i = 0; i < n; ++i) net.node_send(i, m);
    benchmark::DoNotOptimize(net.drain_coordinator());  // fresh vector
    net.coord_broadcast(m);
    for (NodeId i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(net.drain_node(i));  // fresh vectors
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_DrainLegacy)->Arg(64)->Arg(1024);

void BM_DrainReuse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CommStats stats;
  Network net(n, &stats);
  Message m;
  m.kind = MsgKind::kValueReport;
  std::vector<Message> mail;  // caller-owned scratch
  for (auto _ : state) {
    for (NodeId i = 0; i < n; ++i) net.node_send(i, m);
    net.drain_coordinator(mail);
    benchmark::DoNotOptimize(mail.data());
    net.coord_broadcast(m);
    for (NodeId i = 0; i < n; ++i) {
      net.drain_node(i, mail);
      benchmark::DoNotOptimize(mail.data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_DrainReuse)->Arg(64)->Arg(1024);

/// One shared value-update pattern for the validation pair: a slow
/// deterministic rotation that crosses the k-boundary every few hundred
/// updates (realistic mix of cheap steps and rebuild steps).
void mutate_values(std::vector<Value>& values, std::uint64_t t) {
  const std::size_t i = t % values.size();
  values[i] = static_cast<Value>((values[i] + 7919 * (t % 13 + 1)) %
                                 1'000'000);
}

void BM_ValidationFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Value> values(n);
  Rng rng(17);
  for (auto& v : values) v = rng.uniform_int(0, 1'000'000);
  std::uint64_t t = 0;
  for (auto _ : state) {
    mutate_values(values, ++t);
    // Pre-tracker shape: fresh id vector + partial sort every step.
    benchmark::DoNotOptimize(true_topk_set(values, 8));
  }
}
BENCHMARK(BM_ValidationFull)->Arg(256)->Arg(4096);

void BM_ValidationIncremental(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Value> values(n);
  Rng rng(17);
  for (auto& v : values) v = rng.uniform_int(0, 1'000'000);
  GroundTruthTracker tracker(n, 8);
  for (NodeId i = 0; i < n; ++i) tracker.set_value(i, values[i]);
  std::uint64_t t = 0;
  for (auto _ : state) {
    mutate_values(values, ++t);
    const auto i = static_cast<NodeId>(t % n);
    tracker.set_value(i, values[i]);
    benchmark::DoNotOptimize(tracker.topk_set());
  }
}
BENCHMARK(BM_ValidationIncremental)->Arg(256)->Arg(4096);

void BM_StreamScalar(benchmark::State& state) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  auto streams = make_stream_set(spec, 64, 13);
  std::vector<Value> out(64);
  for (auto _ : state) {
    streams.advance_all(out);  // no plan armed: one next() per value
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_StreamScalar);

void BM_StreamBatch(benchmark::State& state) {
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  auto streams = make_stream_set(spec, 64, 13);
  streams.plan_steps(~std::uint64_t{0} >> 1);  // effectively unbounded
  std::vector<Value> out(64);
  for (auto _ : state) {
    streams.advance_all(out);  // devirtualized 64-value refills
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_StreamBatch);

// -- PR4 pairs: activity-driven loop, timing wheel, lazy non-member heap --

/// One full simulation step (observe + event loop) of the native filter
/// monitor under a sparse workload, through either the activity-driven
/// sparse path or the legacy dense scan (state.range: n, activity %,
/// dense flag).
void BM_SimulationStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double activity = static_cast<double>(state.range(1)) / 100.0;
  const bool dense = state.range(2) != 0;
  StreamSpec spec;
  spec.family = StreamFamily::kSparse;
  spec.sparse.rate = activity;
  spec.sparse_inner = StreamFamily::kRandomWalk;
  spec.walk.hi = 100'000'000;
  spec.walk.max_step = 64;
  auto streams = make_stream_set(spec, n, 7);
  Cluster cluster(n, 7);
  auto pair = exp::make_role_pair(cluster, "topk_filter?nobeacon", 8);
  SimDriver driver(cluster, *pair.coordinator, pair.nodes, pair.native);
  driver.set_dense_loop(dense);
  std::vector<Value> values(n, 0);
  std::vector<NodeId> changed;
  const auto observe = [&] {
    streams.advance_all_active(values, changed);
    for (const NodeId id : changed) cluster.set_value(id, values[id]);
  };
  cluster.stats().begin_step(0);
  observe();
  driver.initialize();
  TimeStep t = 0;
  for (auto _ : state) {
    ++t;
    cluster.stats().begin_step(t);
    observe();
    driver.step(t, changed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulationStep)
    ->Args({1024, 1, 0})
    ->Args({1024, 1, 1})
    ->Args({1024, 100, 0})
    ->Args({1024, 100, 1})
    ->Args({65536, 1, 0})
    ->Args({65536, 1, 1})
    ->Args({65536, 100, 0})
    ->Args({65536, 100, 1});

// -- PR6 pair: serial vs sharded tick loop --

/// Same step loop as BM_SimulationStep's sparse path, but through the
/// worker-sharded driver (state.range: n, activity %, workers; workers=1
/// is the serial half of the pair). Speedup needs real cores — on a
/// 1-core host the W > 1 rows price the staging + barrier overhead.
void BM_ParallelTickStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double activity = static_cast<double>(state.range(1)) / 100.0;
  const auto workers = static_cast<std::size_t>(state.range(2));
  StreamSpec spec;
  spec.family = StreamFamily::kSparse;
  spec.sparse.rate = activity;
  spec.sparse_inner = StreamFamily::kRandomWalk;
  spec.walk.hi = 100'000'000;
  spec.walk.max_step = 64;
  auto streams = make_stream_set(spec, n, 7);
  Cluster cluster(n, 7);
  auto pair = exp::make_role_pair(cluster, "topk_filter?nobeacon", 8);
  SimDriver driver(cluster, *pair.coordinator, pair.nodes, pair.native,
                   workers);
  std::vector<Value> values(n, 0);
  std::vector<NodeId> changed;
  const auto observe = [&] {
    streams.advance_all_active(values, changed);
    for (const NodeId id : changed) cluster.set_value(id, values[id]);
  };
  cluster.stats().begin_step(0);
  observe();
  driver.initialize();
  TimeStep t = 0;
  for (auto _ : state) {
    ++t;
    cluster.stats().begin_step(t);
    observe();
    driver.step(t, changed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ParallelTickStep)
    ->Args({65536, 1, 1})
    ->Args({65536, 1, 4})
    ->Args({65536, 100, 1})
    ->Args({65536, 100, 4})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Pre-PR4 scheduled transport shape: a binary heap per recipient
/// (push_heap/pop_heap by (due, seq)), here collapsed to one queue — the
/// per-message cost the timing wheel replaces.
void BM_SchedHeapPushPop(benchmark::State& state) {
  struct Entry {
    SimTime due;
    std::uint64_t seq;
    Message msg;
  };
  const auto cmp = [](const Entry& a, const Entry& b) noexcept {
    return a.due != b.due ? a.due > b.due : a.seq > b.seq;
  };
  std::vector<Entry> heap;
  Rng rng(3);
  std::uint64_t seq = 0;
  SimTime now = 0;
  Message m;
  for (auto _ : state) {
    ++now;
    for (int i = 0; i < 8; ++i) {
      heap.push_back(
          Entry{now + 1 + rng.uniform_below(12), ++seq, m});
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
    while (!heap.empty() && heap.front().due <= now) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      benchmark::DoNotOptimize(heap.back().msg);
      heap.pop_back();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_SchedHeapPushPop);

/// The timing-wheel transport on the same send/advance/drain cadence.
void BM_SchedWheelPushPop(benchmark::State& state) {
  CommStats stats;
  NetworkSpec spec;
  spec.delay = 1;
  spec.jitter = 12;
  Network net(8, &stats, spec, 3);
  Message m;
  m.kind = MsgKind::kValueReport;
  std::vector<Message> buf;
  for (auto _ : state) {
    net.advance_clock();
    for (int i = 0; i < 8; ++i) net.node_send(static_cast<NodeId>(i), m);
    net.drain_coordinator(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_SchedWheelPushPop);

/// Shared decay schedule for the non-member boundary pair: the current
/// best outsider keeps sinking, so every query must re-find the maximum
/// over the n-k outsiders — the pre-PR4 tracker paid an O(n) scan per
/// decay, the lazy heap pays amortized pops.
void BM_NonmemberRescanScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kK = 8;
  std::vector<Value> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<Value>(2 * n - i);
  }
  std::size_t victim = kK;
  for (auto _ : state) {
    values[victim] = 0;  // the boundary outsider decays
    Value best = kMinusInf;
    std::size_t best_id = kK;
    for (std::size_t i = kK; i < n; ++i) {  // O(n) rescan
      if (values[i] > best) {
        best = values[i];
        best_id = i;
      }
    }
    benchmark::DoNotOptimize(best_id);
    if (++victim + 1 >= n) {  // nearly everyone decayed: restart
      for (std::size_t i = 0; i < n; ++i) {
        values[i] = static_cast<Value>(2 * n - i);
      }
      victim = kK;
    }
  }
}
BENCHMARK(BM_NonmemberRescanScan)->Arg(1024)->Arg(65536);

void BM_NonmemberRescanLazy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kK = 8;
  GroundTruthTracker tracker(n, kK);
  const auto reset = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      tracker.set_value(static_cast<NodeId>(i),
                        static_cast<Value>(2 * n - i));
    }
    benchmark::DoNotOptimize(tracker.topk_set());
  };
  reset();
  std::size_t victim = kK;
  for (auto _ : state) {
    tracker.set_value(static_cast<NodeId>(victim), 0);  // boundary decay
    benchmark::DoNotOptimize(tracker.topk_set());       // lazy repair
    if (++victim + 1 >= n) {
      reset();
      victim = kK;
    }
  }
}
BENCHMARK(BM_NonmemberRescanLazy)->Arg(1024)->Arg(65536);

void BM_EarliestPending(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CommStats stats;
  NetworkSpec spec;
  spec.delay = 4;
  spec.jitter = 8;
  Network net(n, &stats, spec, 99);
  Message m;
  m.kind = MsgKind::kRoundBeacon;
  // Realistic scheduled-mode state: several broadcasts in flight across
  // all n+1 queues.
  for (int b = 0; b < 4; ++b) net.coord_broadcast(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.earliest_pending());
  }
}
BENCHMARK(BM_EarliestPending)->Arg(64)->Arg(1024);

/// Paired cost of one observation step through the two-tier sharded
/// deployment: c = 1 (inert root — message-for-message the monolithic
/// single-coordinator path) versus c = 8 shard coordinators under the
/// root filter layer. n = 65536, k = 32, 1% of nodes drift per step —
/// e18's regime, so the delta between the two args is the sharding
/// subsystem's per-step overhead (root tier + per-shard routing).
void BM_ShardMergeStep(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kN = 65536;
  constexpr std::size_t kK = 32;
  ShardedSpec spec;
  spec.n = kN;
  spec.k = kK;
  spec.shards = shards;
  spec.seed = 7;
  ShardedDeployment dep(spec);
  Rng rng(11);
  std::vector<Value> values(kN);
  for (NodeId i = 0; i < kN; ++i) {
    values[i] = static_cast<Value>(rng.uniform_below(100'000'000));
    dep.set_value(i, values[i]);
  }
  dep.initialize();
  std::vector<NodeId> changed(kN / 100);
  TimeStep t = 0;
  for (auto _ : state) {
    for (auto& id : changed) {
      id = static_cast<NodeId>(rng.uniform_below(kN));
      values[id] += rng.uniform_int(-64, 64);
      dep.set_value(id, values[id]);
    }
    dep.step(++t, changed);
    benchmark::DoNotOptimize(dep.topk().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(changed.size()));
}
BENCHMARK(BM_ShardMergeStep)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace topkmon

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(micro, "google-benchmark CPU microbenchmarks") {
  ctx.out() << "micro: google-benchmark CPU throughput\n\n";
  int argc = 1;
  char arg0[] = "topkmon_bench";
  char* argv[] = {arg0, nullptr};
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
}

}  // namespace
}  // namespace topkmon::bench

#else  // !TOPKMON_HAVE_BENCHMARK

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(micro, "google-benchmark CPU microbenchmarks (unavailable)") {
  ctx.out() << "micro: google-benchmark was not found at build time; "
               "install libbenchmark-dev and reconfigure to enable this "
               "suite.\n";
}

}  // namespace
}  // namespace topkmon::bench

#endif  // TOPKMON_HAVE_BENCHMARK
