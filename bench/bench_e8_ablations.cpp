// E8 — design-choice ablations called out in DESIGN.md:
//  (a) §3.1: Lam-style full dominance tracking vs Algorithm 1 on inputs
//      with deep-order churn but a quiet k-boundary (not competitive);
//  (b) the randomized extremum protocol vs poll-based resolution
//      (slack/B&O style) as n grows — M(n) = O(log n) vs Θ(n);
//  (c) midpoint vs asymmetric/adaptive filter placement;
//  (d) idle-beacon suppression inside Algorithm 2;
//  (e) broadcast-cost sensitivity: total weighted cost at beta = 1 vs n.
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(e8, "design-choice ablations (placement, beacons, costs)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(1'000);

  ctx.out() << "E8: ablations\n\n";

  // ---- (a) dominance vs topk_filter on deep-churn inputs -------------------
  {
    ctx.out() << "(a) full-order tracking is not competitive for top-k "
                 "(§3.1): crossing pairs, k = 2, n sweep\n";
    const std::vector<std::size_t> ns{8, 16, 32, 64};
    struct Pair {
      std::uint64_t filter = 0, dominance = 0;
    };
    const auto pairs = ctx.runner().map<Pair>(ns.size(), [&](std::size_t i) {
      StreamSpec spec;
      spec.family = StreamFamily::kCrossingPairs;
      spec.crossing.period = 32;
      const auto ra = run_scenario(
          scenario("topk_filter", spec, ns[i], 2, steps, args.seed));
      const auto rb = run_scenario(
          scenario("dominance", spec, ns[i], 2, steps, args.seed));
      return Pair{ra.comm.total(), rb.comm.total()};
    });
    Table t({"n", "topk_filter msgs", "dominance msgs", "blowup"});
    for (std::size_t i = 0; i < ns.size(); ++i) {
      t.add_row({std::to_string(ns[i]), fmt_count(pairs[i].filter),
                 fmt_count(pairs[i].dominance),
                 fmt(static_cast<double>(pairs[i].dominance) /
                         static_cast<double>(
                             std::max<std::uint64_t>(1, pairs[i].filter)),
                     1)});
    }
    ctx.emit(t, "e8a_dominance");
    ctx.out() << "shape: blowup grows ~linearly in n (every pair's churn "
                 "costs messages; only the boundary pair matters for "
                 "top-k).\n\n";
  }

  // ---- (b) randomized protocol vs polling resolution -----------------------
  {
    ctx.out() << "(b) resolution machinery: Algorithm 2 (log n) vs polling "
                 "(n), random walk, k = 4\n";
    const std::vector<std::size_t> ns{16, 64, 256, 1024};
    struct Pair {
      std::uint64_t filter = 0, slack = 0;
    };
    const auto pairs = ctx.runner().map<Pair>(ns.size(), [&](std::size_t i) {
      StreamSpec spec;
      spec.family = StreamFamily::kRandomWalk;
      spec.walk.max_step = 5'000;
      const auto ra = run_scenario(scenario("topk_filter", spec, ns[i], 4,
                                            steps / 2, args.seed + ns[i]));
      const auto rb = run_scenario(
          scenario("slack", spec, ns[i], 4, steps / 2, args.seed + ns[i]));
      return Pair{ra.comm.total(), rb.comm.total()};
    });
    Table t({"n", "topk_filter msgs", "slack(poll) msgs", "poll/proto"});
    for (std::size_t i = 0; i < ns.size(); ++i) {
      t.add_row({std::to_string(ns[i]), fmt_count(pairs[i].filter),
                 fmt_count(pairs[i].slack),
                 fmt(static_cast<double>(pairs[i].slack) /
                         static_cast<double>(
                             std::max<std::uint64_t>(1, pairs[i].filter)),
                     2)});
    }
    ctx.emit(t, "e8b_protocol_vs_poll");
    ctx.out() << "shape: the poll/protocol ratio grows with n — the "
                 "O(log n) protocol is what makes Algorithm 1 scale.\n\n";
  }

  // ---- (c) filter placement ------------------------------------------------
  {
    ctx.out() << "(c) boundary placement within [T-, T+]: alpha sweep + "
                 "adaptive, biased upward-drift walk, k = 4, n = 32\n";
    struct Variant {
      const char* label;
      const char* spec;
    };
    const std::vector<Variant> variants{
        {"alpha=0.1", "slack?alpha=0.1"},
        {"alpha=0.5 (midpoint)", "slack?alpha=0.5"},
        {"alpha=0.9", "slack?alpha=0.9"},
        {"adaptive", "slack?alpha=0.5,adaptive"},
    };
    const auto rows = ctx.runner().map<RunResult>(
        variants.size(), [&](std::size_t i) {
          StreamSpec spec;
          spec.family = StreamFamily::kBursty;
          spec.bursty.p_enter_burst = 0.01;
          return run_scenario(
              scenario(variants[i].spec, spec, 32, 4, steps, args.seed));
        });
    Table t({"placement", "msgs", "violation steps", "resets"});
    for (std::size_t i = 0; i < variants.size(); ++i) {
      t.add_row({variants[i].label, fmt_count(rows[i].comm.total()),
                 fmt_count(rows[i].monitor.violation_steps),
                 fmt_count(rows[i].monitor.filter_resets)});
    }
    ctx.emit(t, "e8c_placement");
    ctx.out() << "shape: midpoint is a robust default; adaptive tracks the "
                 "violation mix within noise.\n\n";
  }

  // ---- (d) idle-beacon suppression ------------------------------------------
  {
    ctx.out() << "(d) Algorithm 2 idle-beacon suppression inside Algorithm 1, "
                 "random walk, n = 64, k = 4\n";
    const auto rows = ctx.runner().map<RunResult>(2, [&](std::size_t i) {
      StreamSpec spec;
      spec.family = StreamFamily::kRandomWalk;
      spec.walk.max_step = 5'000;
      return run_scenario(
          scenario(i == 1 ? "topk_filter?nobeacon" : "topk_filter", spec, 64,
                   4, steps, args.seed));
    });
    Table t({"variant", "total msgs", "broadcasts", "upstream"});
    for (std::size_t i = 0; i < 2; ++i) {
      t.add_row({i == 1 ? "suppressed" : "every round",
                 fmt_count(rows[i].comm.total()),
                 fmt_count(rows[i].comm.broadcast()),
                 fmt_count(rows[i].comm.upstream())});
    }
    ctx.emit(t, "e8d_beacons");
    ctx.out() << "shape: suppression trades beacon broadcasts for slightly "
                 "more reports (weaker deactivation); both stay correct.\n\n";
  }

  // ---- (e) broadcast weight sensitivity -------------------------------------
  {
    ctx.out() << "(e) broadcast-cost sensitivity: weighted cost with "
                 "beta = 1 (paper) vs beta = n (no broadcast channel)\n";
    constexpr std::size_t kN = 64;
    const std::vector<std::string> monitors{"topk_filter", "naive"};
    const auto rows = ctx.runner().map<RunResult>(
        monitors.size(), [&](std::size_t i) {
          StreamSpec spec;
          spec.family = StreamFamily::kRandomWalk;
          spec.walk.max_step = 2'000;
          return run_scenario(
              scenario(monitors[i], spec, kN, 4, steps, args.seed));
        });
    Table t({"monitor", "beta=1", "beta=n", "beta=n / beta=1"});
    for (std::size_t i = 0; i < monitors.size(); ++i) {
      const auto& r = rows[i];
      t.add_row({monitors[i], fmt(r.comm.weighted_total(1.0), 0),
                 fmt(r.comm.weighted_total(kN), 0),
                 fmt(r.comm.weighted_total(kN) / r.comm.weighted_total(1.0),
                     1)});
    }
    ctx.emit(t, "e8e_broadcast_weight");
    ctx.out() << "shape: Algorithm 1 leans on the broadcast channel "
                 "(Cormode et al. model); without it (beta = n) its "
                 "advantage shrinks but filters still avoid the naive "
                 "per-step flood.\n";
  }
}

}  // namespace
}  // namespace topkmon::bench
