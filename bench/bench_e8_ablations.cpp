// E8 — design-choice ablations called out in DESIGN.md:
//  (a) §3.1: Lam-style full dominance tracking vs Algorithm 1 on inputs
//      with deep-order churn but a quiet k-boundary (not competitive);
//  (b) the randomized extremum protocol vs poll-based resolution
//      (slack/B&O style) as n grows — M(n) = O(log n) vs Θ(n);
//  (c) midpoint vs asymmetric/adaptive filter placement;
//  (d) idle-beacon suppression inside Algorithm 2;
//  (e) broadcast-cost sensitivity: total weighted cost at beta = 1 vs n.
#include <iostream>

#include "bench_common.hpp"

using namespace topkmon;
using namespace topkmon::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  const std::uint64_t steps = args.steps_or(1'000);

  std::cout << "E8: ablations\n\n";

  // ---- (a) dominance vs topk_filter on deep-churn inputs -------------------
  {
    std::cout << "(a) full-order tracking is not competitive for top-k "
                 "(§3.1): crossing pairs, k = 2, n sweep\n";
    Table t({"n", "topk_filter msgs", "dominance msgs", "blowup"});
    for (const std::size_t n : {8u, 16u, 32u, 64u}) {
      StreamSpec spec;
      spec.family = StreamFamily::kCrossingPairs;
      spec.crossing.period = 32;
      TopkFilterMonitor a(2);
      RunConfig cfg;
      cfg.n = n;
      cfg.k = 2;
      cfg.steps = steps;
      cfg.seed = args.seed;
      const auto ra = run_once(a, spec, cfg);
      DominanceMonitor b(2);
      const auto rb = run_once(b, spec, cfg);
      t.add_row({std::to_string(n), fmt_count(ra.comm.total()),
                 fmt_count(rb.comm.total()),
                 fmt(static_cast<double>(rb.comm.total()) /
                         static_cast<double>(
                             std::max<std::uint64_t>(1, ra.comm.total())),
                     1)});
    }
    t.print(std::cout);
    maybe_csv(t, args, "e8a_dominance");
    std::cout << "shape: blowup grows ~linearly in n (every pair's churn "
                 "costs messages; only the boundary pair matters for "
                 "top-k).\n\n";
  }

  // ---- (b) randomized protocol vs polling resolution -----------------------
  {
    std::cout << "(b) resolution machinery: Algorithm 2 (log n) vs polling "
                 "(n), random walk, k = 4\n";
    Table t({"n", "topk_filter msgs", "slack(poll) msgs", "poll/proto"});
    for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
      StreamSpec spec;
      spec.family = StreamFamily::kRandomWalk;
      spec.walk.max_step = 5'000;
      RunConfig cfg;
      cfg.n = n;
      cfg.k = 4;
      cfg.steps = steps / 2;
      cfg.seed = args.seed + n;
      TopkFilterMonitor a(4);
      const auto ra = run_once(a, spec, cfg);
      SlackMonitor b(4);
      const auto rb = run_once(b, spec, cfg);
      t.add_row({std::to_string(n), fmt_count(ra.comm.total()),
                 fmt_count(rb.comm.total()),
                 fmt(static_cast<double>(rb.comm.total()) /
                         static_cast<double>(
                             std::max<std::uint64_t>(1, ra.comm.total())),
                     2)});
    }
    t.print(std::cout);
    maybe_csv(t, args, "e8b_protocol_vs_poll");
    std::cout << "shape: the poll/protocol ratio grows with n — the "
                 "O(log n) protocol is what makes Algorithm 1 scale.\n\n";
  }

  // ---- (c) filter placement ------------------------------------------------
  {
    std::cout << "(c) boundary placement within [T-, T+]: alpha sweep + "
                 "adaptive, biased upward-drift walk, k = 4, n = 32\n";
    Table t({"placement", "msgs", "violation steps", "resets"});
    auto run_with = [&](const char* label, SlackMonitor::Options o) {
      StreamSpec spec;
      spec.family = StreamFamily::kBursty;
      spec.bursty.p_enter_burst = 0.01;
      SlackMonitor m(4, o);
      RunConfig cfg;
      cfg.n = 32;
      cfg.k = 4;
      cfg.steps = steps;
      cfg.seed = args.seed;
      const auto r = run_once(m, spec, cfg);
      t.add_row({label, fmt_count(r.comm.total()),
                 fmt_count(r.monitor.violation_steps),
                 fmt_count(r.monitor.filter_resets)});
    };
    SlackMonitor::Options o;
    o.alpha = 0.1;
    run_with("alpha=0.1", o);
    o.alpha = 0.5;
    run_with("alpha=0.5 (midpoint)", o);
    o.alpha = 0.9;
    run_with("alpha=0.9", o);
    o.alpha = 0.5;
    o.adaptive = true;
    run_with("adaptive", o);
    t.print(std::cout);
    maybe_csv(t, args, "e8c_placement");
    std::cout << "shape: midpoint is a robust default; adaptive tracks the "
                 "violation mix within noise.\n\n";
  }

  // ---- (d) idle-beacon suppression ------------------------------------------
  {
    std::cout << "(d) Algorithm 2 idle-beacon suppression inside Algorithm 1, "
                 "random walk, n = 64, k = 4\n";
    Table t({"variant", "total msgs", "broadcasts", "upstream"});
    for (const bool suppress : {false, true}) {
      StreamSpec spec;
      spec.family = StreamFamily::kRandomWalk;
      spec.walk.max_step = 5'000;
      TopkFilterMonitor::Options o;
      o.suppress_idle_broadcasts = suppress;
      TopkFilterMonitor m(4, o);
      RunConfig cfg;
      cfg.n = 64;
      cfg.k = 4;
      cfg.steps = steps;
      cfg.seed = args.seed;
      const auto r = run_once(m, spec, cfg);
      t.add_row({suppress ? "suppressed" : "every round",
                 fmt_count(r.comm.total()), fmt_count(r.comm.broadcast()),
                 fmt_count(r.comm.upstream())});
    }
    t.print(std::cout);
    maybe_csv(t, args, "e8d_beacons");
    std::cout << "shape: suppression trades beacon broadcasts for slightly "
                 "more reports (weaker deactivation); both stay correct.\n\n";
  }

  // ---- (e) broadcast weight sensitivity -------------------------------------
  {
    std::cout << "(e) broadcast-cost sensitivity: weighted cost with "
                 "beta = 1 (paper) vs beta = n (no broadcast channel)\n";
    Table t({"monitor", "beta=1", "beta=n", "beta=n / beta=1"});
    constexpr std::size_t kN = 64;
    StreamSpec spec;
    spec.family = StreamFamily::kRandomWalk;
    spec.walk.max_step = 2'000;
    RunConfig cfg;
    cfg.n = kN;
    cfg.k = 4;
    cfg.steps = steps;
    cfg.seed = args.seed;
    {
      TopkFilterMonitor m(4);
      const auto r = run_once(m, spec, cfg);
      t.add_row({"topk_filter", fmt(r.comm.weighted_total(1.0), 0),
                 fmt(r.comm.weighted_total(kN), 0),
                 fmt(r.comm.weighted_total(kN) / r.comm.weighted_total(1.0),
                     1)});
    }
    {
      NaiveMonitor m(4);
      const auto r = run_once(m, spec, cfg);
      t.add_row({"naive", fmt(r.comm.weighted_total(1.0), 0),
                 fmt(r.comm.weighted_total(kN), 0),
                 fmt(r.comm.weighted_total(kN) / r.comm.weighted_total(1.0),
                     1)});
    }
    t.print(std::cout);
    maybe_csv(t, args, "e8e_broadcast_weight");
    std::cout << "shape: Algorithm 1 leans on the broadcast channel "
                 "(Cormode et al. model); without it (beta = n) its "
                 "advantage shrinks but filters still avoid the naive "
                 "per-step flood.\n";
  }
  return 0;
}
