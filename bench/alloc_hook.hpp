// Optional counting allocator hook for the perf suite.
//
// When compiled in (TOPKMON_ALLOC_HOOK, set for non-sanitized builds of
// topkmon_bench), global operator new/new[] are replaced with counting
// pass-throughs so a benchmark can measure how many heap allocations a
// region of code performs — the observable behind the "zero allocations
// at steady state" hot-path invariant. Under ASan/UBSan the overrides are
// compiled out (the sanitizer owns the allocator) and the accessors
// report the hook as disabled.
//
// The counter is thread-local: read it before and after a single-threaded
// region on the same thread (the SweepRunner executes each benchmark case
// on one worker thread, so per-case deltas are exact).
#pragma once

#include <cstdint>

namespace topkmon::bench {

/// True when the counting operator new/delete overrides are linked in.
bool alloc_hook_enabled() noexcept;

/// Number of allocations performed by the calling thread so far (0 when
/// the hook is disabled).
std::uint64_t thread_alloc_count() noexcept;

}  // namespace topkmon::bench
