// E12 — extension: the ε-approximation trade-off. The exact problem
// (ε = 0) is the paper's; widening the filters by ε buys message savings
// at a bounded, always-ε-valid answer quality (the knob Babcock–Olston's
// approximate variant exposes in their setting).
//
// Regenerates: messages, violation steps and worst observed regret as a
// function of ε on a confined random-walk workload, with the exact
// Algorithm 1 as the ε = 0 anchor.
#include <iostream>

#include "bench_common.hpp"

using namespace topkmon;
using namespace topkmon::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  const std::uint64_t steps = args.steps_or(3'000);
  constexpr std::size_t kN = 24;
  constexpr std::size_t kK = 4;

  std::cout << "E12: epsilon-approximate monitoring trade-off (extension)\n"
            << "n = " << kN << ", k = " << kK << ", steps = " << steps
            << ", confined random walk (value range ~80k)\n\n";

  Table t({"epsilon", "msgs", "msgs/step", "violation steps", "resets",
           "worst regret", "eps-valid"});

  for (const Value eps : {Value{0}, Value{64}, Value{512}, Value{4'096},
                          Value{16'384}, Value{65'536}}) {
    StreamSpec spec;
    spec.family = StreamFamily::kRandomWalk;
    spec.walk.max_step = 1'500;
    spec.walk.lo = 0;
    spec.walk.hi = 80'000;
    spec.enforce_distinct = false;  // keep eps on the raw value scale
    auto streams = make_stream_set(spec, kN, args.seed);

    ApproxTopkMonitor::Options o;
    o.epsilon = eps;
    ApproxTopkMonitor m(kK, o);
    Cluster c(kN, args.seed);
    for (NodeId i = 0; i < kN; ++i) c.set_value(i, streams.advance(i));
    m.initialize(c);

    Value worst_regret = 0;
    bool always_valid = true;
    std::vector<Value> values(kN);
    for (TimeStep step = 1; step <= steps; ++step) {
      for (NodeId i = 0; i < kN; ++i) {
        values[i] = streams.advance(i);
        c.set_value(i, values[i]);
      }
      m.step(c, step);
      worst_regret = std::max(worst_regret, topk_regret(values, m.topk()));
      always_valid = always_valid && is_valid_topk_eps(values, m.topk(), eps);
    }

    t.add_row({std::to_string(eps), fmt_count(c.stats().total()),
               fmt(static_cast<double>(c.stats().total()) /
                       static_cast<double>(steps),
                   2),
               fmt_count(m.monitor_stats().violation_steps),
               fmt_count(m.monitor_stats().filter_resets),
               std::to_string(worst_regret), always_valid ? "yes" : "NO"});
  }

  t.print(std::cout);
  maybe_csv(t, args, "e12_approx");
  std::cout << "\nshape check: messages fall steeply as epsilon grows while "
               "the worst regret stays <= epsilon; eps-validity holds in "
               "every cell.\n";
  return 0;
}
