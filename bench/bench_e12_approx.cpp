// E12 — extension: the ε-approximation trade-off. The exact problem
// (ε = 0) is the paper's; widening the filters by ε buys message savings
// at a bounded, always-ε-valid answer quality (the knob Babcock–Olston's
// approximate variant exposes in their setting).
//
// Regenerates: messages, violation steps and worst observed regret as a
// function of ε on a confined random-walk workload, with the exact
// Algorithm 1 as the ε = 0 anchor.
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(e12, "epsilon-approximate monitoring trade-off (extension)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(3'000);
  constexpr std::size_t kN = 24;
  constexpr std::size_t kK = 4;

  ctx.out() << "E12: epsilon-approximate monitoring trade-off (extension)\n"
            << "n = " << kN << ", k = " << kK << ", steps = " << steps
            << ", confined random walk (value range ~80k)\n\n";

  const std::vector<Value> epsilons{0, 64, 512, 4'096, 16'384, 65'536};

  struct EpsResult {
    std::uint64_t msgs = 0, violation_steps = 0, resets = 0;
    Value worst_regret = 0;
    bool always_valid = true;
  };
  const auto rows = ctx.runner().map<EpsResult>(
      epsilons.size(), [&](std::size_t ei) {
        const Value eps = epsilons[ei];
        StreamSpec spec;
        spec.family = StreamFamily::kRandomWalk;
        spec.walk.max_step = 1'500;
        spec.walk.lo = 0;
        spec.walk.hi = 80'000;
        spec.enforce_distinct = false;  // keep eps on the raw value scale

        EpsResult out;
        Scenario sc = scenario("approx?eps=" + std::to_string(eps), spec, kN,
                               kK, steps, args.seed);
        // ε-validity is the acceptance notion here, not exact set equality:
        // measure regret per step through the observer instead.
        sc.validation = RunConfig::Validation::kOff;
        sc.on_step = [&out, eps](TimeStep step,
                                 const std::vector<Value>& values,
                                 const std::vector<NodeId>& topk) {
          if (step == 0) return;
          out.worst_regret = std::max(out.worst_regret,
                                      topk_regret(values, topk));
          out.always_valid =
              out.always_valid && is_valid_topk_eps(values, topk, eps);
        };
        const auto r = run_scenario(sc);
        out.msgs = r.comm.total();
        out.violation_steps = r.monitor.violation_steps;
        out.resets = r.monitor.filter_resets;
        return out;
      });

  Table t({"epsilon", "msgs", "msgs/step", "violation steps", "resets",
           "worst regret", "eps-valid"});
  for (std::size_t ei = 0; ei < epsilons.size(); ++ei) {
    const auto& r = rows[ei];
    t.add_row({std::to_string(epsilons[ei]), fmt_count(r.msgs),
               fmt(static_cast<double>(r.msgs) / static_cast<double>(steps),
                   2),
               fmt_count(r.violation_steps), fmt_count(r.resets),
               std::to_string(r.worst_regret), r.always_valid ? "yes" : "NO"});
  }

  ctx.emit(t, "e12_approx");
  ctx.out() << "\nshape check: messages fall steeply as epsilon grows while "
               "the worst regret stays <= epsilon; eps-validity holds in "
               "every cell.\n";
}

}  // namespace
}  // namespace topkmon::bench
