// e18 — sharding suite: the two-tier hierarchical deployment
// (core/root_merge.hpp) swept over the shard count c, with per-tier
// message accounting.
//
// The claim under test: partitioning n nodes across c shard coordinators
// under a root coordinator keeps steady-state traffic *within* shards —
// the shard<->root tier only speaks when a shard's local top-k boundary
// crosses the root filter. The suite runs c ∈ {1, 2, 4, 8, 16} on the
// same paired streams (the shards axis never enters the seed) and prints
// both tiers side by side; on the default workload the node<->shard tier
// carries >= 10x the shard<->root tier from c >= 4 — the ratio column
// makes the hierarchy's locality visible.
//
// The c = 1 rows double as the equivalence pin: each is executed through
// run_sharded_scenario (inert root tier) AND the monolithic run_scenario
// path, and the suite hard-asserts identical message counts (total and
// per kind), identical divergence and an all-zero root tier — the
// "shards=1 is message-for-message the single-coordinator path" contract,
// asserted on every run (tests/core/test_shard_equivalence.cpp pins the
// same contract per answer step).
//
// Outputs:
//   * ctx.emit("e18_shards"): deterministic fingerprint (per-tier message
//     counts, error steps per case) — byte-identical across --jobs and
//     --workers, diffed by CI.
//   * BENCH_shards_<label>.json: wall-clock record (steps/sec per case),
//     next to e16/e17's BENCH files in the perf trajectory.
#include <fstream>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

using exp::run_sharded_scenario;

struct ShardCase {
  std::string name;
  std::size_t n;
  const char* monitor;
  const char* mon_tag;
  std::size_t shards;
};

/// Messages by direction and kind must match exactly (the per-kind array
/// is the finest accounting the CommStats surface exposes).
bool same_comm(const CommStats& a, const CommStats& b) {
  if (a.upstream() != b.upstream() || a.unicast() != b.unicast() ||
      a.broadcast() != b.broadcast()) {
    return false;
  }
  for (std::size_t i = 0; i < kNumMsgKinds; ++i) {
    const auto kind = static_cast<MsgKind>(i);
    if (a.by_kind(kind) != b.by_kind(kind)) return false;
  }
  return true;
}

TOPKMON_SUITE(e18_shards,
              "sharded two-tier deployment: per-tier messages vs shard "
              "count (c=1 pinned to the monolithic path)") {
  const std::uint64_t steps = ctx.opts().steps_or(120);
  const std::uint64_t seed = ctx.opts().seed;
  constexpr std::size_t kK = 32;

  const std::vector<std::size_t> ns = {1u << 12, 1u << 16, 1u << 20};
  const std::vector<std::size_t> cs = {1, 2, 4, 8, 16};
  const std::vector<std::pair<const char*, const char*>> monitors = {
      {"topk_filter?nobeacon", "filter"},
      {"naive_chg", "naive_chg"},
  };

  // c innermost: each (n, monitor) group is contiguous, its first row is
  // the c = 1 reference for the timing table.
  std::vector<ShardCase> cases;
  for (const std::size_t n : ns) {
    for (const auto& [mon, tag] : monitors) {
      for (const std::size_t c : cs) {
        cases.push_back(ShardCase{"n" + std::to_string(n) + "_" + tag + "_c" +
                                      std::to_string(c),
                                  n, mon, tag, c});
      }
    }
  }

  const auto outcomes =
      ctx.runner().map<RunResult>(cases.size(), [&](std::size_t i) {
        const ShardCase& c = cases[i];
        StreamSpec stream;
        stream.family = StreamFamily::kSparse;
        stream.sparse.rate = 0.01;
        stream.sparse_inner = StreamFamily::kRandomWalk;
        // e16/e17's drift regime: wide range (values stay pairwise
        // distinct in practice), gentle steps, 1% activity.
        stream.walk.hi = 100'000'000;
        stream.walk.max_step = 64;
        Scenario sc = scenario(c.monitor, stream, c.n, kK, steps, seed);
        sc.shards = c.shards;
        sc.workers = ctx.opts().workers;
        // Sharded exactness is an invariant, not an assumption: record
        // any divergence as error steps (part of the fingerprint, so a
        // regression shows up as a diff AND a nonzero column).
        sc.validation = RunConfig::Validation::kWeak;
        sc.throw_on_error = false;
        RunResult sharded = run_sharded_scenario(sc);
        if (c.shards == 1) {
          // Equivalence pin: the inert-root sharded path must be
          // message-for-message the monolithic path.
          const RunResult mono = run_scenario(sc);
          if (!same_comm(sharded.comm, mono.comm) ||
              sharded.error_steps != mono.error_steps ||
              sharded.root_comm.total() != 0) {
            throw std::logic_error("e18: shards=1 diverged from the "
                                   "monolithic path at " +
                                   c.name);
          }
        }
        return sharded;
      });

  Table fingerprint({"case", "n", "k", "monitor", "shards", "steps",
                     "msgs_node_shard", "msgs_shard_root", "tier_ratio",
                     "msgs_per_step", "error_steps"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ShardCase& c = cases[i];
    const RunResult& r = outcomes[i];
    const double ratio =
        r.root_comm.total() > 0
            ? static_cast<double>(r.comm.total()) /
                  static_cast<double>(r.root_comm.total())
            : 0.0;
    fingerprint.add_row(
        {c.name, std::to_string(c.n), std::to_string(kK), c.mon_tag,
         std::to_string(c.shards), std::to_string(r.steps_executed),
         std::to_string(r.comm.total()), std::to_string(r.root_comm.total()),
         r.root_comm.total() > 0 ? fmt(ratio, 1) : "inf",
         fmt(r.messages_per_step(), 3), std::to_string(r.error_steps)});
  }
  ctx.emit(fingerprint, "e18_shards");

  // Timing summary: steady-state steps/s per shard count (console + BENCH
  // file; machine-dependent, not diffed). Initialization excluded as in
  // e16/e17.
  const auto steady_sps = [](const RunResult& r) {
    const double seconds = r.wall_seconds - r.init_seconds;
    return seconds > 0.0 && r.steps_executed > 1
               ? static_cast<double>(r.steps_executed - 1) / seconds
               : 0.0;
  };
  std::vector<std::string> header = {"config"};
  for (const std::size_t c : cs) {
    header.push_back("c" + std::to_string(c) + " steps/s");
  }
  Table timing(header);
  for (std::size_t g = 0; g < cases.size(); g += cs.size()) {
    std::vector<std::string> row = {
        cases[g].name.substr(0, cases[g].name.rfind('_'))};
    for (std::size_t ci = 0; ci < cs.size(); ++ci) {
      row.push_back(fmt(steady_sps(outcomes[g + ci]), 0));
    }
    timing.add_row(row);
  }
  ctx.out() << "\n";
  timing.print(ctx.out());

  const std::string label = bench_label();
  const std::string dir =
      ctx.opts().out_dir.empty() ? std::string(".") : ctx.opts().out_dir;
  const std::string path = dir + "/BENCH_shards_" + label + ".json";
  std::ofstream out(path);
  if (!out) {
    ctx.out() << "e18: cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"topkmon-bench-v1\",\n";
  out << "  \"label\": \"" << label << "\",\n";
  out << "  \"alloc_hook\": " << (alloc_hook_enabled() ? "true" : "false")
      << ",\n";
  out << "  \"steps\": " << steps << ",\n";
  out << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ShardCase& c = cases[i];
    const RunResult& r = outcomes[i];
    const double sps = steady_sps(r);
    const double nsps = sps > 0.0 ? 1e9 / sps : 0.0;
    out << "    {\"name\": \"" << c.name << "\", \"n\": " << c.n
        << ", \"k\": " << kK << ", \"monitor\": \"" << c.mon_tag
        << "\", \"shards\": " << c.shards
        << ", \"wall_seconds\": " << fmt(r.wall_seconds, 6)
        << ", \"init_seconds\": " << fmt(r.init_seconds, 6)
        << ", \"steps_per_sec\": " << fmt(sps, 1)
        << ", \"ns_per_step\": " << fmt(nsps, 1)
        << ", \"messages_node_shard\": " << r.comm.total()
        << ", \"messages_shard_root\": " << r.root_comm.total()
        << ", \"error_steps\": " << r.error_steps << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  ctx.out() << "e18: wrote " << path << "\n";
}

}  // namespace
}  // namespace topkmon::bench
