// E2 — Theorem 4.2 (w.h.p. part): the message count of the
// MaximumProtocol is O(log N) with high probability; the proof uses a
// Chernoff bound over negatively-correlated indicators.
//
// Regenerates the concentration view: full distribution (quantiles,
// histogram) of report counts at fixed n, plus tail mass beyond c·E for
// growing c — which should decay geometrically.
#include <iostream>

#include "bench_common.hpp"

using namespace topkmon;
using namespace topkmon::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  const std::uint64_t trials = args.trials_or(20'000);
  constexpr std::size_t kN = 1 << 14;

  std::cout << "E2: MaximumProtocol concentration at n = 2^14 (Theorem 4.2 "
               "w.h.p.)\n"
            << "trials: " << trials << "\n\n";

  Quantiles reports;
  reports.reserve(trials);
  Histogram hist(0.0, 60.0, 30);
  Rng value_rng(args.seed);
  for (std::uint64_t t = 0; t < trials; ++t) {
    Cluster c(kN, args.seed * 31 + t);
    for (NodeId i = 0; i < kN; ++i) {
      c.set_value(i, value_rng.uniform_int(0, 1'000'000'000));
    }
    const auto r = run_max_protocol(c, c.all_ids(), kN);
    reports.add(static_cast<double>(r.reports));
    hist.add(static_cast<double>(r.reports));
  }

  const double mean = [&] {
    double s = 0;
    for (const double x : reports.sorted_samples()) s += x;
    return s / static_cast<double>(reports.count());
  }();

  Table q({"statistic", "reports"});
  q.add_row({"mean", fmt(mean)});
  q.add_row({"p50", fmt(reports.quantile(0.50))});
  q.add_row({"p90", fmt(reports.quantile(0.90))});
  q.add_row({"p99", fmt(reports.quantile(0.99))});
  q.add_row({"p99.9", fmt(reports.quantile(0.999))});
  q.add_row({"max", fmt(reports.quantile(1.0))});
  q.add_row({"bound 2logN+1", fmt(2.0 * 14 + 1)});
  q.print(std::cout);

  std::cout << "\ndistribution of report counts:\n" << hist.ascii(40) << "\n";

  Table tail({"c", "threshold c*E", "tail fraction"});
  for (const double c : {1.0, 1.25, 1.5, 2.0, 2.5, 3.0}) {
    tail.add_row({fmt(c), fmt(c * mean),
                  fmt(reports.tail_fraction_above(c * mean), 5)});
  }
  tail.print(std::cout);
  maybe_csv(q, args, "e2_quantiles");
  maybe_csv(tail, args, "e2_tail");
  std::cout << "\nshape check: tail mass decays geometrically in c "
               "(Chernoff-style concentration).\n";
  return 0;
}
