// E2 — Theorem 4.2 (w.h.p. part): the message count of the
// MaximumProtocol is O(log N) with high probability; the proof uses a
// Chernoff bound over negatively-correlated indicators.
//
// Regenerates the concentration view: full distribution (quantiles,
// histogram) of report counts at fixed n, plus tail mass beyond c·E for
// growing c — which should decay geometrically.
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(e2, "MaximumProtocol concentration / tail decay (Thm 4.2)") {
  const auto& args = ctx.opts();
  const std::uint64_t trials = args.trials_or(20'000);
  constexpr std::size_t kN = 1 << 14;

  ctx.out() << "E2: MaximumProtocol concentration at n = 2^14 (Theorem 4.2 "
               "w.h.p.)\n"
            << "trials: " << trials << "\n\n";

  // The trials are independent protocol executions with per-trial seeds:
  // fan them out in fixed-size batches and fold the samples in batch order
  // so the distribution is identical for any --jobs value.
  constexpr std::uint64_t kBatch = 512;
  const std::size_t batches =
      static_cast<std::size_t>((trials + kBatch - 1) / kBatch);
  const auto samples = ctx.runner().map<std::vector<double>>(
      batches, [&](std::size_t b) {
        const std::uint64_t lo = static_cast<std::uint64_t>(b) * kBatch;
        const std::uint64_t hi = std::min<std::uint64_t>(trials, lo + kBatch);
        // Per-trial value RNG (derived, not shared) keeps trials
        // independent of batch boundaries.
        std::vector<double> out;
        out.reserve(static_cast<std::size_t>(hi - lo));
        for (std::uint64_t t = lo; t < hi; ++t) {
          Rng value_rng(Rng(args.seed).derive(t).next_u64());
          Cluster c(kN, args.seed * 31 + t);
          for (NodeId i = 0; i < kN; ++i) {
            c.set_value(i, value_rng.uniform_int(0, 1'000'000'000));
          }
          out.push_back(static_cast<double>(
              run_max_protocol(c, c.all_ids(), kN).reports));
        }
        return out;
      });

  Quantiles reports;
  reports.reserve(trials);
  Histogram hist(0.0, 60.0, 30);
  double sum = 0;
  for (const auto& batch : samples) {
    for (const double x : batch) {
      reports.add(x);
      hist.add(x);
      sum += x;
    }
  }
  const double mean = sum / static_cast<double>(reports.count());

  Table q({"statistic", "reports"});
  q.add_row({"mean", fmt(mean)});
  q.add_row({"p50", fmt(reports.quantile(0.50))});
  q.add_row({"p90", fmt(reports.quantile(0.90))});
  q.add_row({"p99", fmt(reports.quantile(0.99))});
  q.add_row({"p99.9", fmt(reports.quantile(0.999))});
  q.add_row({"max", fmt(reports.quantile(1.0))});
  q.add_row({"bound 2logN+1", fmt(2.0 * 14 + 1)});
  ctx.emit(q, "e2_quantiles");

  ctx.out() << "\ndistribution of report counts:\n" << hist.ascii(40) << "\n";

  Table tail({"c", "threshold c*E", "tail fraction"});
  for (const double c : {1.0, 1.25, 1.5, 2.0, 2.5, 3.0}) {
    tail.add_row({fmt(c), fmt(c * mean),
                  fmt(reports.tail_fraction_above(c * mean), 5)});
  }
  ctx.emit(tail, "e2_tail");
  ctx.out() << "\nshape check: tail mass decays geometrically in c "
               "(Chernoff-style concentration).\n";
}

}  // namespace
}  // namespace topkmon::bench
