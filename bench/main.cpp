// topkmon_bench — the unified experiment CLI.
//
// Every paper experiment (e1..e13, micro) is a named suite registered via
// TOPKMON_SUITE; this driver parses the shared flags, builds one parallel
// SweepRunner, and executes the requested suites against it.
//
//   topkmon_bench --list
//   topkmon_bench --suite e7 --jobs 8
//   topkmon_bench --all --jobs 0 --out-dir results   (0 = all cores)
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using topkmon::exp::SuiteContext;
using topkmon::exp::SuiteInfo;
using topkmon::exp::SuiteOptions;
using topkmon::exp::SuiteRegistry;
using topkmon::exp::SweepRunner;

void print_usage(std::ostream& out) {
  out << "usage: topkmon_bench [--suite NAME]... [--all] [options]\n"
         "\n"
         "suite selection:\n"
         "  --suite NAME   run one suite (repeatable; comma lists work too)\n"
         "  --all          run every registered suite\n"
         "  --list         print the registered suites and exit\n"
         "\n"
         "options:\n"
         "  --jobs N       worker threads (default 1; 0 = all cores)\n"
         "  --trials N     override each suite's default trial count\n"
         "  --steps N      override each suite's default step count\n"
         "  --seed N       base seed (default 1)\n"
         "  --out-dir DIR  write each table as DIR/<name>.csv and .json\n"
         "  --help         this message\n";
}

/// std::stoull silently wraps "-1" to 2^64-1; reject signs up front so a
/// negative --jobs can't spawn billions of threads.
std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  if (value.empty() || value[0] == '-' || value[0] == '+') {
    throw std::invalid_argument("'" + value + "' is not a non-negative integer");
  }
  std::size_t used = 0;
  const std::uint64_t parsed = std::stoull(value, &used);
  if (used != value.size()) {
    throw std::invalid_argument("'" + value + "' is not a non-negative integer");
  }
  return parsed;
}

void list_suites(std::ostream& out) {
  out << "registered suites:\n";
  for (const auto& s : SuiteRegistry::instance().sorted()) {
    out << "  " << s.name;
    for (std::size_t pad = s.name.size(); pad < 8; ++pad) out << ' ';
    out << s.description << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  SuiteOptions opts;
  std::vector<std::string> requested;
  bool run_all = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (flag == "--suite") {
        // Accept comma-separated lists: --suite e5,e7
        std::string value = next();
        std::size_t start = 0;
        while (start <= value.size()) {
          const std::size_t comma = value.find(',', start);
          const std::string name =
              value.substr(start, comma == std::string::npos
                                      ? std::string::npos
                                      : comma - start);
          if (!name.empty()) requested.push_back(name);
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
      } else if (flag == "--all") {
        run_all = true;
      } else if (flag == "--list") {
        list_suites(std::cout);
        return 0;
      } else if (flag == "--jobs") {
        opts.jobs = static_cast<std::size_t>(parse_u64(flag, next()));
      } else if (flag == "--trials") {
        opts.trials = parse_u64(flag, next());
      } else if (flag == "--steps") {
        opts.steps = parse_u64(flag, next());
      } else if (flag == "--seed") {
        opts.seed = parse_u64(flag, next());
      } else if (flag == "--out-dir" || flag == "--csv-dir") {
        opts.out_dir = next();
      } else if (flag == "--help" || flag == "-h") {
        print_usage(std::cout);
        return 0;
      } else {
        std::cerr << "unknown flag " << flag << "\n";
        print_usage(std::cerr);
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "bad value for " << flag << ": " << e.what() << "\n";
      return 2;
    }
  }

  auto& registry = SuiteRegistry::instance();
  std::vector<const SuiteInfo*> to_run;
  if (run_all) {
    static const auto all = registry.sorted();
    for (const auto& s : all) to_run.push_back(&s);
  } else {
    for (const auto& name : requested) {
      const auto* s = registry.find(name);
      if (s == nullptr) {
        std::cerr << "unknown suite '" << name << "'\n\n";
        list_suites(std::cerr);
        return 2;
      }
      to_run.push_back(s);
    }
  }
  if (to_run.empty()) {
    print_usage(std::cerr);
    std::cerr << "\n";
    list_suites(std::cerr);
    return 2;
  }

  if (!opts.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.out_dir, ec);
    if (ec) {
      std::cerr << "cannot create --out-dir " << opts.out_dir << ": "
                << ec.message() << "\n";
      return 2;
    }
  }

  SweepRunner runner(opts.jobs);
  std::cout << "topkmon_bench: " << to_run.size() << " suite(s), "
            << runner.jobs() << " job(s), seed " << opts.seed << "\n\n";

  int failures = 0;
  for (const auto* suite : to_run) {
    std::cout << "==== " << suite->name << ": " << suite->description
              << " ====\n";
    const auto start = std::chrono::steady_clock::now();
    try {
      SuiteContext ctx(opts, runner, std::cout);
      suite->fn(ctx);
    } catch (const std::exception& e) {
      std::cerr << "suite " << suite->name << " FAILED: " << e.what() << "\n";
      ++failures;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    std::cout << "---- " << suite->name << " done in "
              << topkmon::fmt(elapsed.count(), 2) << "s ----\n\n";
  }
  return failures == 0 ? 0 : 1;
}
