// topkmon_bench — the unified experiment CLI.
//
// Every paper experiment (e1..e13, micro) is a named suite registered via
// TOPKMON_SUITE; this driver parses the shared flags, builds one parallel
// SweepRunner, and executes the requested suites against it.
//
//   topkmon_bench --list
//   topkmon_bench --suite e7 --jobs 8
//   topkmon_bench --all --jobs 0 --out-dir results   (0 = all cores)
#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"

namespace {

using topkmon::exp::SuiteContext;
using topkmon::exp::SuiteInfo;
using topkmon::exp::SuiteOptions;
using topkmon::exp::SuiteRegistry;
using topkmon::exp::SweepRunner;

void print_usage(std::ostream& out) {
  out << "usage: topkmon_bench [--suite NAME]... [--all] [options]\n"
         "\n"
         "suite selection:\n"
         "  --suite NAME   run one suite (repeatable; comma lists work too)\n"
         "  --all          run every registered suite\n"
         "  --list         print the registered suites and exit\n"
         "\n"
         "options:\n"
         "  --jobs N       worker threads across trials (default 1;\n"
         "                 0 = all cores)\n"
         "  --workers N    SimDriver tick-scan threads inside each\n"
         "                 simulation (default 1; 0 = all cores); output\n"
         "                 is byte-identical for every value\n"
         "  --trials N     override each suite's default trial count\n"
         "  --steps N      override each suite's default step count\n"
         "  --seed N       base seed (default 1)\n"
         "  --out-dir DIR  write each table as DIR/<name>.csv and .json\n"
         "  --compare F    perf suite: diff against a previous BENCH_*.json\n"
         "                 and exit non-zero on regression\n"
         "  --help         this message\n";
}

/// Strict full-string parse (to_u64 rejects signs, junk and overflow, so
/// a negative --jobs can't wrap into billions of threads).
std::uint64_t parse_u64(const std::string& value) {
  const auto parsed = topkmon::to_u64(value);
  if (!parsed) {
    throw std::invalid_argument("'" + value +
                                "' is not a non-negative integer");
  }
  return *parsed;
}

void list_suites(std::ostream& out) {
  // Pad to the widest registered name so long names ("e18_shards") don't
  // run into their descriptions.
  const auto& sorted = SuiteRegistry::instance().sorted();
  std::size_t width = 0;
  for (const auto& s : sorted) width = std::max(width, s.name.size());
  out << "registered suites:\n";
  for (const auto& s : sorted) {
    out << "  " << s.name;
    for (std::size_t pad = s.name.size(); pad < width + 2; ++pad) out << ' ';
    out << s.description << "\n";
  }
}

/// Registered suite names closest to `name` (util/strings.hpp edit
/// distance — the same tolerance as SweepGrid's axis-name hints).
std::vector<std::string> closest_suites(const std::string& name) {
  std::vector<std::string> candidates;
  for (const auto& s : SuiteRegistry::instance().sorted()) {
    candidates.push_back(s.name);
  }
  return topkmon::closest_matches(name, candidates);
}

}  // namespace

int main(int argc, char** argv) {
  SuiteOptions opts;
  std::vector<std::string> requested;
  bool run_all = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (flag == "--suite") {
        // Accept comma-separated lists: --suite e5,e7
        const std::string value = next();
        for (const std::string_view name : topkmon::split(value, ',')) {
          requested.emplace_back(name);
        }
      } else if (flag == "--all") {
        run_all = true;
      } else if (flag == "--list") {
        list_suites(std::cout);
        return 0;
      } else if (flag == "--jobs") {
        opts.jobs = static_cast<std::size_t>(parse_u64(next()));
      } else if (flag == "--workers") {
        opts.workers = static_cast<std::size_t>(parse_u64(next()));
      } else if (flag == "--trials") {
        opts.trials = parse_u64(next());
      } else if (flag == "--steps") {
        opts.steps = parse_u64(next());
      } else if (flag == "--seed") {
        opts.seed = parse_u64(next());
      } else if (flag == "--out-dir" || flag == "--csv-dir") {
        opts.out_dir = next();
      } else if (flag == "--compare") {
        opts.compare = next();
      } else if (flag == "--help" || flag == "-h") {
        print_usage(std::cout);
        return 0;
      } else {
        std::cerr << "unknown flag " << flag << "\n";
        print_usage(std::cerr);
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "bad value for " << flag << ": " << e.what() << "\n";
      return 2;
    }
  }

  auto& registry = SuiteRegistry::instance();
  std::vector<const SuiteInfo*> to_run;
  if (run_all) {
    static const auto all = registry.sorted();
    for (const auto& s : all) to_run.push_back(&s);
  } else {
    for (const auto& name : requested) {
      const auto* s = registry.find(name);
      if (s == nullptr) {
        std::cerr << "unknown suite '" << name << "'";
        const auto near = closest_suites(name);
        if (!near.empty()) {
          std::cerr << " — did you mean ";
          for (std::size_t i = 0; i < near.size(); ++i) {
            if (i != 0) std::cerr << (i + 1 == near.size() ? " or " : ", ");
            std::cerr << "'" << near[i] << "'";
          }
          std::cerr << "?";
        }
        std::cerr << "\n\n";
        list_suites(std::cerr);
        return 2;
      }
      to_run.push_back(s);
    }
  }
  if (to_run.empty()) {
    print_usage(std::cerr);
    std::cerr << "\n";
    list_suites(std::cerr);
    return 2;
  }

  if (!opts.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.out_dir, ec);
    if (ec) {
      std::cerr << "cannot create --out-dir " << opts.out_dir << ": "
                << ec.message() << "\n";
      return 2;
    }
  }

  SweepRunner runner(opts.jobs);
  std::cout << "topkmon_bench: " << to_run.size() << " suite(s), "
            << runner.jobs() << " job(s), seed " << opts.seed << "\n\n";

  int failures = 0;
  for (const auto* suite : to_run) {
    std::cout << "==== " << suite->name << ": " << suite->description
              << " ====\n";
    const auto start = std::chrono::steady_clock::now();
    try {
      SuiteContext ctx(opts, runner, std::cout);
      suite->fn(ctx);
    } catch (const std::exception& e) {
      std::cerr << "suite " << suite->name << " FAILED: " << e.what() << "\n";
      ++failures;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    std::cout << "---- " << suite->name << " done in "
              << topkmon::fmt(elapsed.count(), 2) << "s ----\n\n";
  }
  return failures == 0 ? 0 : 1;
}
