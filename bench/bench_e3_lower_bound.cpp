// E3 — Theorem 4.3 (lower bound): every randomized max-computation needs
// Ω(log n) messages in expectation. The proof distributes inputs as random
// permutations and observes that a deterministic probing algorithm's
// message count equals the length of the BST search path / the number of
// left-to-right maxima, with expectation H_n = Θ(log n).
//
// Regenerates: E[#reports] of the deterministic sequential-probe algorithm
// on random permutations vs the harmonic number H_n and vs ln n, for
// n = 2^4 .. 2^18 — alongside the randomized Algorithm 2 on the same
// inputs, showing both sit at Θ(log n) (the protocol is asymptotically
// optimal).
#include <numeric>
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

TOPKMON_SUITE(e3, "Ω(log n) lower-bound construction (Theorem 4.3)") {
  const auto& args = ctx.opts();
  const std::uint64_t trials = args.trials_or(2'000);

  ctx.out() << "E3: lower-bound construction (Theorem 4.3)\n"
            << "claim: E[probe reports] = H_n = Theta(log n); Algorithm 2 "
               "matches up to constants\n\n";

  std::vector<std::uint32_t> exps;
  for (std::uint32_t exp2 = 4; exp2 <= 18; exp2 += 2) exps.push_back(exp2);

  struct CellStats {
    OnlineStats probe_reports, alg2_reports;
  };
  const auto stats = ctx.runner().map<CellStats>(
      exps.size(), [&](std::size_t ci) {
        const std::uint32_t exp2 = exps[ci];
        const std::size_t n = 1ull << exp2;
        const std::uint64_t cell_trials =
            std::max<std::uint64_t>(30, trials >> (exp2 / 2));
        CellStats s;
        std::vector<Value> values(n);
        std::iota(values.begin(), values.end(), 1);
        Rng shuffle_rng(args.seed * 97 + exp2);
        for (std::uint64_t t = 0; t < cell_trials; ++t) {
          shuffle_rng.shuffle(values.begin(), values.end());
          Cluster c(n, args.seed * 13 + t);
          for (NodeId i = 0; i < n; ++i) c.set_value(i, values[i]);
          s.probe_reports.add(static_cast<double>(
              run_sequential_probe_max(c, c.all_ids()).reports));
          Cluster c2(n, args.seed * 17 + t);
          for (NodeId i = 0; i < n; ++i) c2.set_value(i, values[i]);
          s.alg2_reports.add(static_cast<double>(
              run_max_protocol(c2, c2.all_ids(), n).reports));
        }
        return s;
      });

  Table table({"n", "E[probe reports]", "H_n", "ratio", "E[alg2 reports]",
               "2logN+1"});
  for (std::size_t ci = 0; ci < exps.size(); ++ci) {
    const std::uint32_t exp2 = exps[ci];
    const std::size_t n = 1ull << exp2;
    const double hn = harmonic(n);
    table.add_row({std::to_string(n), fmt(stats[ci].probe_reports.mean()),
                   fmt(hn), fmt(stats[ci].probe_reports.mean() / hn, 3),
                   fmt(stats[ci].alg2_reports.mean()), fmt(2.0 * exp2 + 1)});
  }

  ctx.emit(table, "e3_lower_bound");
  ctx.out() << "\nshape check: probe reports track H_n (ratio ~1), i.e. "
               "Θ(log n) messages are necessary; Algorithm 2 stays within "
               "its 2logN+1 budget on the same inputs.\n";
}

}  // namespace
}  // namespace topkmon::bench
