// E3 — Theorem 4.3 (lower bound): every randomized max-computation needs
// Ω(log n) messages in expectation. The proof distributes inputs as random
// permutations and observes that a deterministic probing algorithm's
// message count equals the length of the BST search path / the number of
// left-to-right maxima, with expectation H_n = Θ(log n).
//
// Regenerates: E[#reports] of the deterministic sequential-probe algorithm
// on random permutations vs the harmonic number H_n and vs ln n, for
// n = 2^4 .. 2^18 — alongside the randomized Algorithm 2 on the same
// inputs, showing both sit at Θ(log n) (the protocol is asymptotically
// optimal).
#include <iostream>
#include <numeric>
#include <vector>

#include "bench_common.hpp"

using namespace topkmon;
using namespace topkmon::bench;

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  const std::uint64_t trials = args.trials_or(2'000);

  std::cout << "E3: lower-bound construction (Theorem 4.3)\n"
            << "claim: E[probe reports] = H_n = Theta(log n); Algorithm 2 "
               "matches up to constants\n\n";

  Table table({"n", "E[probe reports]", "H_n", "ratio", "E[alg2 reports]",
               "2logN+1"});

  for (std::uint32_t exp2 = 4; exp2 <= 18; exp2 += 2) {
    const std::size_t n = 1ull << exp2;
    const std::uint64_t cell_trials =
        std::max<std::uint64_t>(30, trials >> (exp2 / 2));
    OnlineStats probe_reports;
    OnlineStats alg2_reports;
    std::vector<Value> values(n);
    std::iota(values.begin(), values.end(), 1);
    Rng shuffle_rng(args.seed * 97 + exp2);
    for (std::uint64_t t = 0; t < cell_trials; ++t) {
      shuffle_rng.shuffle(values.begin(), values.end());
      Cluster c(n, args.seed * 13 + t);
      for (NodeId i = 0; i < n; ++i) c.set_value(i, values[i]);
      probe_reports.add(static_cast<double>(
          run_sequential_probe_max(c, c.all_ids()).reports));
      Cluster c2(n, args.seed * 17 + t);
      for (NodeId i = 0; i < n; ++i) c2.set_value(i, values[i]);
      alg2_reports.add(static_cast<double>(
          run_max_protocol(c2, c2.all_ids(), n).reports));
    }
    const double hn = harmonic(n);
    table.add_row({std::to_string(n), fmt(probe_reports.mean()), fmt(hn),
                   fmt(probe_reports.mean() / hn, 3),
                   fmt(alg2_reports.mean()), fmt(2.0 * exp2 + 1)});
  }

  table.print(std::cout);
  maybe_csv(table, args, "e3_lower_bound");
  std::cout << "\nshape check: probe reports track H_n (ratio ~1), i.e. "
               "Θ(log n) messages are necessary; Algorithm 2 stays within "
               "its 2logN+1 budget on the same inputs.\n";
  return 0;
}
