// E13 — extension: monitoring several k simultaneously. The multi-k
// monitor shares FILTERRESET work across boundaries (one top-(k_max+1)
// selection rebuilds all of them); the natural baseline runs one
// independent Algorithm 1 instance per k.
//
// Regenerates: total messages of MultiKMonitor vs the sum of independent
// instances, for growing boundary counts, on a reset-heavy and on a
// similar-inputs workload.
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace topkmon::bench {
namespace {

std::uint64_t run_multi(const StreamSpec& spec, std::size_t n,
                        const std::vector<std::size_t>& ks,
                        std::uint64_t steps, std::uint64_t seed) {
  std::string monitor = "multi_k?ks=";
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (i != 0) monitor += '+';
    monitor += std::to_string(ks[i]);
  }
  return run_scenario(scenario(std::move(monitor), spec, n, ks.front(), steps,
                               seed))
      .comm.total();
}

std::uint64_t run_independent(const StreamSpec& spec, std::size_t n,
                              const std::vector<std::size_t>& ks,
                              std::uint64_t steps, std::uint64_t seed) {
  std::uint64_t total = 0;
  for (const std::size_t k : ks) {
    total +=
        run_scenario(scenario("topk_filter", spec, n, k, steps, seed))
            .comm.total();
  }
  return total;
}

TOPKMON_SUITE(e13, "multi-k monitoring: shared vs independent (extension)") {
  const auto& args = ctx.opts();
  const std::uint64_t steps = args.steps_or(400);
  constexpr std::size_t kN = 64;

  ctx.out() << "E13: multi-k monitoring — shared vs independent machinery "
               "(extension)\n"
            << "n = " << kN << ", steps = " << steps
            << " (all boundaries validated in the test suite)\n\n";

  const std::vector<std::vector<std::size_t>> query_sets{
      {4}, {2, 8}, {2, 8, 16}, {1, 2, 4, 8, 16, 32}};
  const std::vector<StreamFamily> workloads{StreamFamily::kIidUniform,
                                            StreamFamily::kRandomWalk};

  struct Cell {
    std::uint64_t multi = 0, indep = 0;
  };
  const auto cells = ctx.runner().map<Cell>(
      workloads.size() * query_sets.size(), [&](std::size_t j) {
        StreamSpec spec;
        spec.family = workloads[j / query_sets.size()];
        spec.walk.max_step = 2'000;
        const auto& ks = query_sets[j % query_sets.size()];
        return Cell{run_multi(spec, kN, ks, steps, args.seed),
                    run_independent(spec, kN, ks, steps, args.seed)};
      });

  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    ctx.out() << "workload: " << family_name(workloads[wi]) << "\n";
    Table t({"monitored ks", "multi_k msgs", "independent msgs", "saving"});
    for (std::size_t qi = 0; qi < query_sets.size(); ++qi) {
      std::string label;
      for (const auto k : query_sets[qi]) {
        if (!label.empty()) label += ",";
        label += std::to_string(k);
      }
      const auto& cell = cells[wi * query_sets.size() + qi];
      t.add_row({label, fmt_count(cell.multi), fmt_count(cell.indep),
                 fmt(static_cast<double>(cell.indep) /
                         static_cast<double>(
                             std::max<std::uint64_t>(1, cell.multi)),
                     2)});
    }
    ctx.emit(t, std::string("e13_multik_") +
                    std::string(family_name(workloads[wi])));
    ctx.out() << "\n";
  }

  ctx.out()
      << "shape check: on reset-heavy inputs (iid) the saving grows with "
         "the number of monitored ks — one shared k_max+1 selection beats "
         "the sum of per-k selections. On localized churn (random walk) "
         "sharing can LOSE: a crossing at a small-k boundary triggers the "
         "full k_max+1 rebuild where an independent instance would only "
         "re-select k+1 nodes. A per-boundary local reset is the natural "
         "follow-up optimization (see DESIGN.md).\n";
}

}  // namespace
}  // namespace topkmon::bench
