// E13 — extension: monitoring several k simultaneously. The multi-k
// monitor shares FILTERRESET work across boundaries (one top-(k_max+1)
// selection rebuilds all of them); the natural baseline runs one
// independent Algorithm 1 instance per k.
//
// Regenerates: total messages of MultiKMonitor vs the sum of independent
// instances, for growing boundary counts, on a reset-heavy and on a
// similar-inputs workload.
#include <iostream>

#include "bench_common.hpp"

using namespace topkmon;
using namespace topkmon::bench;

namespace {

std::uint64_t run_multi(const StreamSpec& spec, std::size_t n,
                        const std::vector<std::size_t>& ks,
                        std::uint64_t steps, std::uint64_t seed) {
  auto streams = make_stream_set(spec, n, seed);
  MultiKMonitor m(ks);
  RunConfig cfg;
  cfg.n = n;
  cfg.k = ks.front();
  cfg.steps = steps;
  cfg.seed = seed;
  return run_monitor(m, streams, cfg).comm.total();
}

std::uint64_t run_independent(const StreamSpec& spec, std::size_t n,
                              const std::vector<std::size_t>& ks,
                              std::uint64_t steps, std::uint64_t seed) {
  std::uint64_t total = 0;
  for (const std::size_t k : ks) {
    auto streams = make_stream_set(spec, n, seed);
    TopkFilterMonitor m(k);
    RunConfig cfg;
    cfg.n = n;
    cfg.k = k;
    cfg.steps = steps;
    cfg.seed = seed;
    total += run_monitor(m, streams, cfg).comm.total();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  const std::uint64_t steps = args.steps_or(400);
  constexpr std::size_t kN = 64;

  std::cout << "E13: multi-k monitoring — shared vs independent machinery "
               "(extension)\n"
            << "n = " << kN << ", steps = " << steps
            << " (all boundaries validated in the test suite)\n\n";

  const std::vector<std::vector<std::size_t>> query_sets{
      {4}, {2, 8}, {2, 8, 16}, {1, 2, 4, 8, 16, 32}};

  for (const auto workload :
       {StreamFamily::kIidUniform, StreamFamily::kRandomWalk}) {
    StreamSpec spec;
    spec.family = workload;
    spec.walk.max_step = 2'000;
    std::cout << "workload: " << family_name(workload) << "\n";
    Table t({"monitored ks", "multi_k msgs", "independent msgs", "saving"});
    for (const auto& ks : query_sets) {
      std::string label;
      for (const auto k : ks) {
        if (!label.empty()) label += ",";
        label += std::to_string(k);
      }
      const auto multi = run_multi(spec, kN, ks, steps, args.seed);
      const auto indep = run_independent(spec, kN, ks, steps, args.seed);
      t.add_row({label, fmt_count(multi), fmt_count(indep),
                 fmt(static_cast<double>(indep) /
                         static_cast<double>(std::max<std::uint64_t>(1, multi)),
                     2)});
    }
    t.print(std::cout);
    maybe_csv(t, args,
              std::string("e13_multik_") + std::string(family_name(workload)));
    std::cout << "\n";
  }

  std::cout
      << "shape check: on reset-heavy inputs (iid) the saving grows with "
         "the number of monitored ks — one shared k_max+1 selection beats "
         "the sum of per-k selections. On localized churn (random walk) "
         "sharing can LOSE: a crossing at a small-k boundary triggers the "
         "full k_max+1 rebuild where an independent instance would only "
         "re-select k+1 nodes. A per-boundary local reset is the natural "
         "follow-up optimization (see DESIGN.md).\n";
  return 0;
}
