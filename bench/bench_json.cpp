#include "bench_json.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

namespace topkmon::bench {

namespace {

/// Value text of `"key": <value>` inside `obj`, or nullopt. String values
/// are returned without quotes (the writer never emits escapes).
std::optional<std::string> field_text(const std::string& obj,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = obj.find(':', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  ++pos;
  while (pos < obj.size() && (obj[pos] == ' ' || obj[pos] == '\n')) ++pos;
  if (pos >= obj.size()) return std::nullopt;
  if (obj[pos] == '"') {
    const std::size_t end = obj.find('"', pos + 1);
    if (end == std::string::npos) return std::nullopt;
    return obj.substr(pos + 1, end - pos - 1);
  }
  std::size_t end = pos;
  while (end < obj.size() && obj[end] != ',' && obj[end] != '}' &&
         obj[end] != '\n' && obj[end] != ']') {
    ++end;
  }
  return obj.substr(pos, end - pos);
}

std::optional<double> field_double(const std::string& obj,
                                   const std::string& key) {
  const auto text = field_text(obj, key);
  if (!text) return std::nullopt;
  double out = 0.0;
  const auto res =
      std::from_chars(text->data(), text->data() + text->size(), out);
  if (res.ec != std::errc{}) return std::nullopt;
  return out;
}

std::optional<std::uint64_t> field_u64(const std::string& obj,
                                       const std::string& key) {
  const auto text = field_text(obj, key);
  if (!text) return std::nullopt;
  std::uint64_t out = 0;
  const auto res =
      std::from_chars(text->data(), text->data() + text->size(), out);
  if (res.ec != std::errc{}) return std::nullopt;
  return out;
}

}  // namespace

std::optional<BenchFile> read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  if (doc.find("topkmon-bench-v1") == std::string::npos) return std::nullopt;

  BenchFile out;
  out.label = field_text(doc, "label").value_or("");
  out.alloc_hook = field_text(doc, "alloc_hook").value_or("false") == "true";
  out.steps = field_u64(doc, "steps").value_or(0);

  const std::size_t scenarios = doc.find("\"scenarios\"");
  if (scenarios == std::string::npos) return out;
  std::size_t pos = doc.find('[', scenarios);
  if (pos == std::string::npos) return out;
  // One flat object per scenario; the writer never nests braces inside.
  for (;;) {
    const std::size_t open = doc.find('{', pos);
    if (open == std::string::npos) break;
    const std::size_t close = doc.find('}', open);
    if (close == std::string::npos) break;
    const std::string obj = doc.substr(open, close - open + 1);
    BenchRecord rec;
    rec.name = field_text(obj, "name").value_or("");
    rec.steps_per_sec = field_double(obj, "steps_per_sec").value_or(0.0);
    rec.wall_seconds = field_double(obj, "wall_seconds").value_or(0.0);
    rec.messages_total = field_u64(obj, "messages_total").value_or(0);
    rec.error_steps = field_u64(obj, "error_steps").value_or(0);
    rec.allocs = field_u64(obj, "allocs");
    rec.max_recovery_ticks = field_u64(obj, "max_recovery_ticks");
    if (!rec.name.empty()) out.scenarios.push_back(std::move(rec));
    pos = close + 1;
    const std::size_t next = doc.find_first_not_of(",\n ", pos);
    if (next == std::string::npos || doc[next] == ']') break;
  }
  return out;
}

}  // namespace topkmon::bench
