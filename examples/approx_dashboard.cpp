// Approximate-monitoring dashboard: a fleet of 32 build machines reports
// queue depths; the dashboard needs the 5 busiest machines but tolerates
// being off by up to 3 jobs — an ε-approximate answer. Demonstrates the
// ApproxTopkMonitor trade-off and the EventLog tap for auditing exactly
// which messages flowed.
#include <iostream>

#include "topkmon.hpp"

int main() {
  using namespace topkmon;

  constexpr std::size_t kMachines = 32;
  constexpr std::size_t kBusiest = 5;
  constexpr std::size_t kSteps = 2'880;  // a day at 30s resolution
  constexpr Value kToleranceJobs = 3;
  constexpr std::uint64_t kSeed = 4242;

  // Queue depth: bursty walk in [0, 400] jobs.
  StreamSpec spec;
  spec.family = StreamFamily::kBursty;
  spec.bursty.lo = 0;
  spec.bursty.hi = 400;
  spec.bursty.start = 60;
  spec.bursty.calm_step = 2;
  spec.bursty.burst_step = 40;
  spec.bursty.p_enter_burst = 0.004;
  spec.bursty.p_exit_burst = 0.08;
  spec.enforce_distinct = false;  // keep the jobs scale for epsilon

  std::cout << "approx dashboard: " << kMachines << " machines, busiest-"
            << kBusiest << ", tolerance " << kToleranceJobs << " jobs, "
            << kSteps << " steps\n\n";

  Table t({"epsilon (jobs)", "msgs", "msgs/step", "worst regret (jobs)"});
  for (const Value eps : {Value{0}, kToleranceJobs, Value{10}, Value{40}}) {
    auto streams = make_stream_set(spec, kMachines, kSeed);
    Cluster cluster(kMachines, kSeed);
    EventLog log;
    cluster.net().set_tap(log.tap());

    ApproxTopkMonitor::Options o;
    o.epsilon = eps;
    ApproxTopkMonitor monitor(kBusiest, o);

    for (NodeId i = 0; i < kMachines; ++i) {
      cluster.set_value(i, streams.advance(i));
    }
    log.begin_step(0);
    monitor.initialize(cluster);

    Value worst_regret = 0;
    std::vector<Value> values(kMachines);
    for (TimeStep step = 1; step <= kSteps; ++step) {
      log.begin_step(step);
      for (NodeId i = 0; i < kMachines; ++i) {
        values[i] = streams.advance(i);
        cluster.set_value(i, values[i]);
      }
      monitor.step(cluster, step);
      worst_regret =
          std::max(worst_regret, topk_regret(values, monitor.topk()));
    }

    t.add_row({std::to_string(eps), fmt_count(cluster.stats().total()),
               fmt(static_cast<double>(cluster.stats().total()) / kSteps, 3),
               std::to_string(worst_regret)});

    if (eps == kToleranceJobs) {
      std::cout << "audit trail sample at tolerance " << eps
                << " (first 6 messages via EventLog tap):\n"
                << log.dump(6) << "\n";
    }
  }

  t.print(std::cout);
  std::cout << "\nThe 3-job tolerance dashboard never strays more than 3 "
               "jobs from the exact busiest set while sending a fraction of "
               "the exact monitor's messages.\n";
  return 0;
}
