// Datacenter scheduler scenario: a placement service must always know the
// k *least* loaded machines (top-k of negated load). Demonstrates
// (a) min-side monitoring by negation, (b) the ordered variant feeding a
// real decision loop (place each incoming job on the currently
// least-loaded machine), and (c) reading the coordinator's rank order.
#include <algorithm>
#include <iostream>
#include <memory>

#include "topkmon.hpp"

int main() {
  using namespace topkmon;

  constexpr std::size_t kMachines = 40;
  constexpr std::size_t kCandidates = 4;  // scheduler keeps 4 backups warm
  constexpr std::size_t kSteps = 3'000;
  constexpr std::uint64_t kSeed = 31337;

  // Machine load: bounded random walk per machine (CPU utilization in
  // millipercent); values are negated at observation time below so that
  // "largest" means "least loaded".
  StreamSpec spec;
  spec.family = StreamFamily::kRandomWalk;
  spec.walk.lo = 0;
  spec.walk.hi = 100'000;
  spec.walk.max_step = 300;
  auto raw = make_stream_set(spec, kMachines, kSeed);

  Cluster cluster(kMachines, kSeed);
  OrderedTopkMonitor monitor(kCandidates);

  auto observe = [&] {
    for (NodeId m = 0; m < kMachines; ++m) {
      cluster.set_value(m, -raw.advance(m));  // negate: min-load tracking
    }
  };

  observe();
  monitor.initialize(cluster);

  std::uint64_t placements = 0;
  std::vector<std::uint64_t> placed_on(kMachines, 0);
  for (TimeStep t = 1; t <= kSteps; ++t) {
    observe();
    monitor.step(cluster, t);
    // A job arrives every step; place it on the least-loaded machine (the
    // coordinator's rank-1 answer) without polling anyone.
    const NodeId target = monitor.ordered_topk().front();
    ++placed_on[target];
    ++placements;
  }

  std::cout << "datacenter scheduler: " << kMachines << " machines, "
            << placements << " placements over " << kSteps << " steps\n\n";

  std::cout << "communication: " << cluster.stats().summary() << " ("
            << fmt(static_cast<double>(cluster.stats().total()) / kSteps, 2)
            << " msgs/step; a poll-per-placement scheduler would pay >= "
            << kMachines << "/step)\n\n";

  // Show the most frequently chosen machines.
  std::vector<std::pair<std::uint64_t, NodeId>> ranking;
  for (NodeId m = 0; m < kMachines; ++m) {
    if (placed_on[m]) ranking.emplace_back(placed_on[m], m);
  }
  std::sort(ranking.rbegin(), ranking.rend());
  Table t({"machine", "placements", "share"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ranking.size()); ++i) {
    t.add_row({"M" + std::to_string(ranking[i].second),
               fmt_count(ranking[i].first),
               fmt(100.0 * static_cast<double>(ranking[i].first) /
                       static_cast<double>(placements),
                   1) + "%"});
  }
  t.print(std::cout);

  std::cout << "\ncurrent least-loaded candidates (best first):";
  for (const NodeId id : monitor.ordered_topk()) std::cout << " M" << id;
  std::cout << "\nplacement decisions were served entirely from coordinator "
               "state — no per-job polling.\n";
  return 0;
}
