// Parallel sweep in ~40 lines: expand a declarative grid (monitors ×
// workloads × trials), fan the trials out across all cores, aggregate
// into mean/stddev rows, and write CSV + JSON.
//
//   $ ./parallel_sweep [jobs]
//
// The same grid run with 1 job or 16 jobs produces identical message
// statistics (only the wall_ms column varies): every trial's seed is
// derived from its grid coordinates, and the result sink folds samples in
// grid order, not completion order.
#include <cstdlib>
#include <iostream>

#include "topkmon.hpp"

int main(int argc, char** argv) {
  using namespace topkmon;
  const std::size_t jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 0;

  // Grid: 3 algorithms × 3 workloads × 5 trials = 45 independent trials.
  exp::SweepGrid grid;
  grid.ns = {64};
  grid.ks = {4};
  grid.monitors = {"topk_filter", "recompute", "naive"};
  grid.families = {StreamFamily::kRandomWalk, StreamFamily::kBursty,
                   StreamFamily::kIidUniform};
  grid.trials = 5;
  grid.steps = 500;
  grid.base_seed = 7;

  exp::SweepRunner runner(jobs);  // 0 = one worker per hardware thread
  std::cout << "running " << grid.size() << " trials on " << runner.jobs()
            << " thread(s)...\n";

  const auto specs = grid.expand();
  const auto results = runner.run(specs);

  exp::ResultSink sink({"monitor", "workload"},
                       {"msgs_per_step", "wall_ms"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    sink.add({specs[i].monitor,
              std::string(family_name(specs[i].stream.family))},
             specs[i].ordinal,
             {results[i].messages_per_step(),
              results[i].wall_seconds * 1e3});
  }

  const Table table = sink.to_table(2);
  table.print(std::cout);
  exp::write_csv(table, "parallel_sweep.csv");
  exp::write_json(table, "parallel_sweep.json");
  std::cout << "\nwrote parallel_sweep.csv / parallel_sweep.json\n";
  return 0;
}
